// Ablation: the time/space tradeoff curve behind Table 2's three precheck
// rows — TPC-B throughput and codeword space overhead as the protection
// region size sweeps from 32 bytes to 8 KiB, for both the Read Prechecking
// scheme (read cost scales with region size) and plain Data Codeword
// (nearly flat). This is the "figure" form of the paper's observation that
// "prevention of transaction-carried corruption costs between 12% and 72%,
// with the space overheads increasing as performance improves".

#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "core/database.h"
#include "workload/tpcb.h"

namespace cwdb {
namespace {

struct Bench {
  std::unique_ptr<Database> db;
  std::unique_ptr<TpcbWorkload> workload;
};

Bench OpenOne(const std::string& dir, ProtectionScheme scheme,
              uint32_t region, const TpcbConfig& cfg, uint64_t ops) {
  DatabaseOptions opts;
  opts.path = dir;
  opts.page_size = 8192;
  opts.arena_size = (cfg.MinArenaSize(opts.page_size) + (4u << 20) + 8191) &
                    ~uint64_t{8191};
  opts.protection.scheme = scheme;
  opts.protection.region_size = region;
  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  Bench bench;
  bench.db = std::move(db).value();
  bench.workload = std::make_unique<TpcbWorkload>(bench.db.get(), cfg);
  if (!bench.workload->Setup().ok()) std::exit(1);
  if (!bench.workload->RunOps(ops / 5).ok()) std::exit(1);  // Warm-up.
  return bench;
}

}  // namespace
}  // namespace cwdb

int main() {
  cwdb::PinToCpu(0);
  using namespace cwdb;
  TpcbConfig cfg;
  cfg.accounts = 20000;
  cfg.tellers = 2000;
  cfg.branches = 200;
  cfg.ops_per_txn = 500;
  const uint64_t ops = 20000;
  constexpr int kReps = 3;
  cfg.history_capacity = kReps * ops + ops / 5 + 1000;

  char tmpl[] = "/dev/shm/cwdb_bench_sweep_XXXXXX";
  char* base = ::mkdtemp(tmpl);

  std::printf(
      "Ablation: protection-region size sweep (TPC-B, %llu ops; baseline\n"
      "re-measured per row, runs interleaved, medians of %d)\n\n",
      static_cast<unsigned long long>(ops), kReps);
  std::printf("  %8s | %12s %9s %8s | %12s %9s\n", "region", "precheck",
              "% slower", "space%", "data-cw", "% slower");
  std::printf("  %8s | %12s %9s %8s | %12s %9s\n", "bytes", "ops/sec", "",
              "", "ops/sec", "");
  std::printf(
      "  -------- | ------------ --------- -------- | ------------ "
      "---------\n");

  int idx = 0;
  // The baseline stays open for the whole sweep and is re-timed inside
  // every row, interleaved with that row's schemes — machine drift over
  // the sweep's several minutes would otherwise masquerade as a trend.
  // Its history table must hold every row's runs.
  TpcbConfig base_cfg = cfg;
  base_cfg.history_capacity = 9 * kReps * ops + ops / 5 + 1000;
  Bench baseline = OpenOne(std::string(base) + "/b", ProtectionScheme::kNone,
                           512, base_cfg, ops);

  for (uint32_t region : {32u, 64u, 128u, 256u, 512u, 1024u, 2048u, 4096u,
                          8192u}) {
    Bench precheck =
        OpenOne(std::string(base) + "/p" + std::to_string(idx++),
                ProtectionScheme::kReadPrecheck, region, cfg, ops);
    Bench datacw =
        OpenOne(std::string(base) + "/d" + std::to_string(idx++),
                ProtectionScheme::kDataCodeword, region, cfg, ops);

    std::array<double, kReps> base_rates, pre_rates, cw_rates;
    for (int rep = 0; rep < kReps; ++rep) {
      auto b = baseline.workload->RunTimed(ops);
      auto p = precheck.workload->RunTimed(ops);
      auto c = datacw.workload->RunTimed(ops);
      if (!b.ok() || !p.ok() || !c.ok()) return 1;
      base_rates[rep] = *b;
      pre_rates[rep] = *p;
      cw_rates[rep] = *c;
    }
    std::sort(base_rates.begin(), base_rates.end());
    std::sort(pre_rates.begin(), pre_rates.end());
    std::sort(cw_rates.begin(), cw_rates.end());
    double base_rate = base_rates[kReps / 2];
    double pre_rate = pre_rates[kReps / 2];
    double cw_rate = cw_rates[kReps / 2];
    uint64_t space =
        precheck.db->GetStats().protection_space_overhead_bytes;
    double arena = static_cast<double>(space) / sizeof(codeword_t) * region;
    std::printf("  %8u | %12.0f %8.1f%% %7.2f%% | %12.0f %8.1f%%\n", region,
                pre_rate, (1.0 - pre_rate / base_rate) * 100.0,
                100.0 * static_cast<double>(space) / arena, cw_rate,
                (1.0 - cw_rate / base_rate) * 100.0);
    std::fflush(stdout);
  }
  std::printf(
      "\nPrecheck cost rises with the region size (each read verifies the\n"
      "whole containing region) while space overhead falls — the paper's\n"
      "time/space tradeoff. Data Codeword, which never scans on reads,\n"
      "stays essentially flat.\n");

  baseline = Bench{};
  std::string cleanup = std::string("rm -rf '") + base + "'";
  [[maybe_unused]] int rc = ::system(cleanup.c_str());
  return 0;
}
