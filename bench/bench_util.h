#ifndef CWDB_BENCH_BENCH_UTIL_H_
#define CWDB_BENCH_BENCH_UTIL_H_

#include <sched.h>

#include <cstdio>

namespace cwdb {

/// Pins the calling thread to one CPU. The workload benches are
/// single-threaded; pinning removes cross-core migration noise, which on
/// small shared hosts is comparable to the effects being measured.
inline void PinToCpu(int cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  if (sched_setaffinity(0, sizeof(set), &set) != 0) {
    std::fprintf(stderr, "note: could not pin to cpu %d; timings may be "
                         "noisier\n", cpu);
  }
}

}  // namespace cwdb

#endif  // CWDB_BENCH_BENCH_UTIL_H_
