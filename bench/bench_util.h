#ifndef CWDB_BENCH_BENCH_UTIL_H_
#define CWDB_BENCH_BENCH_UTIL_H_

#include <sched.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace cwdb {

/// Pins the calling thread to one CPU. The workload benches are
/// single-threaded; pinning removes cross-core migration noise, which on
/// small shared hosts is comparable to the effects being measured.
inline void PinToCpu(int cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  if (sched_setaffinity(0, sizeof(set), &set) != 0) {
    std::fprintf(stderr, "note: could not pin to cpu %d; timings may be "
                         "noisier\n", cpu);
  }
}

/// True when `--json` appears in argv: the bench emits one JSON object per
/// line (the BENCH_*.json trajectory schema shared by bench_codeword and
/// bench_audit) instead of the human-readable table.
inline bool JsonMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return true;
  }
  return false;
}

/// One machine-readable measurement per line, same shape as the other
/// benches' --json output: a "name" key plus one numeric metric and the
/// thread count.
inline void PrintJsonMetricLine(const std::string& name, const char* metric,
                                double value, unsigned threads) {
  std::printf("{\"name\": \"%s\", \"%s\": %.3f, \"threads\": %u}\n",
              name.c_str(), metric, value, threads);
}

/// Post-run observability hook: when CWDB_BENCH_METRICS is set in the
/// environment, dumps the database's metrics snapshot to stderr — "json"
/// selects the stable JSON exporter, anything else the human table. A
/// template so benches that never call it don't need to link cwdb_core.
template <typename DB>
inline void DumpDbMetricsIfRequested(DB* db) {
  const char* mode = std::getenv("CWDB_BENCH_METRICS");
  if (mode == nullptr || *mode == '\0') return;
  if (std::strcmp(mode, "json") == 0) {
    auto json = db->DumpMetrics();
    if (json.ok()) std::fprintf(stderr, "%s\n", json->c_str());
    return;
  }
  std::fprintf(stderr, "%s", db->metrics()->Capture().ToText().c_str());
}

}  // namespace cwdb

#endif  // CWDB_BENCH_BENCH_UTIL_H_
