// Ablation: detection latency of the asynchronous auditor (§3.2). The
// Data Codeword scheme trades the read-path cost of prechecking for a
// *detection window*: corruption sits unnoticed until the sweep reaches
// it. This bench injects wild writes at random offsets while the
// background auditor sweeps, and reports the latency distribution from
// injection to detection for several slice sizes (larger slices sweep
// faster but hold protection latches longer per step).

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/auditor.h"
#include "core/database.h"
#include "faultinject/fault_injector.h"

namespace cwdb {
namespace {

void RunCase(const std::string& dir, uint64_t slice_bytes, int trials,
             bool json) {
  DatabaseOptions opts;
  opts.path = dir;
  opts.arena_size = 64ull << 20;
  opts.page_size = 8192;
  opts.protection.scheme = ProtectionScheme::kDataCodeword;
  opts.protection.region_size = 512;
  auto db = Database::Open(opts);
  if (!db.ok()) std::exit(1);
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 100, 50000);
  for (int i = 0; i < 50000; ++i) {
    (void)(*db)->Insert(*txn, *t, std::string(100, 'd'));
  }
  (void)(*db)->Commit(*txn);

  std::mutex mu;
  std::condition_variable cv;
  bool detected = false;

  BackgroundAuditor::Options aopts;
  aopts.interval = std::chrono::milliseconds(0);
  aopts.slice_bytes = slice_bytes;
  BackgroundAuditor auditor(db->get(), aopts, [&](const AuditReport&) {
    std::lock_guard<std::mutex> guard(mu);
    detected = true;
    cv.notify_all();
  });

  std::vector<double> latencies_ms;
  FaultInjector inject(db->get(), 777);
  for (int trial = 0; trial < trials; ++trial) {
    auditor.Start();
    auditor.WaitForFullSweep();  // Clean baseline.
    auto start = std::chrono::steady_clock::now();
    auto outcome = inject.WildWrite(32);
    if (!outcome.changed_bits) {
      auditor.Stop();
      continue;
    }
    {
      std::unique_lock<std::mutex> guard(mu);
      cv.wait(guard, [&] { return detected; });
      detected = false;
    }
    auto end = std::chrono::steady_clock::now();
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
    auditor.Stop();
    // Repair so the next trial starts clean.
    uint64_t region = opts.protection.region_size;
    uint64_t lo = outcome.off & ~(region - 1);
    uint64_t hi = std::min<uint64_t>(
        (outcome.off + outcome.len + region - 1) & ~(region - 1),
        (*db)->arena_size());
    if (!(*db)->CacheRecover({CorruptRange{lo, hi - lo}}).ok()) std::exit(1);
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto pct = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    return latencies_ms[static_cast<size_t>(p * (latencies_ms.size() - 1))];
  };
  if (json) {
    std::string name =
        "detection_latency/slice" + std::to_string(slice_bytes >> 10) + "k";
    PrintJsonMetricLine(name, "p50_ms", pct(0.5), 1);
    PrintJsonMetricLine(name, "p90_ms", pct(0.9), 1);
    PrintJsonMetricLine(name, "max_ms", pct(1.0), 1);
  } else {
    std::printf("  %9llu KiB | %6zu %9.1f %9.1f %9.1f\n",
                static_cast<unsigned long long>(slice_bytes >> 10),
                latencies_ms.size(), pct(0.5), pct(0.9), pct(1.0));
  }
  DumpDbMetricsIfRequested(db->get());
}

}  // namespace
}  // namespace cwdb

int main(int argc, char** argv) {
  using namespace cwdb;
  const bool json = JsonMode(argc, argv);
  if (!json) {
    std::printf(
        "Ablation: wild-write detection latency under the background "
        "auditor\n(64 MiB image, 512 B regions, sweeps back-to-back)\n\n");
    std::printf("  %13s | %6s %9s %9s %9s\n", "slice", "trials", "p50 ms",
                "p90 ms", "max ms");
    std::printf("  ------------- | ------ --------- --------- ---------\n");
  }

  char tmpl[] = "/dev/shm/cwdb_bench_latency_XXXXXX";
  char* base = ::mkdtemp(tmpl);
  int idx = 0;
  for (uint64_t slice : {256ull << 10, 1ull << 20, 4ull << 20}) {
    RunCase(std::string(base) + "/l" + std::to_string(idx++), slice, 12,
            json);
  }
  std::string cleanup = std::string("rm -rf '") + base + "'";
  [[maybe_unused]] int rc = ::system(cleanup.c_str());
  if (!json) {
    std::printf(
        "\nDetection latency is bounded by one full sweep; bigger slices\n"
        "shorten the sweep at the cost of longer exclusive-latch holds per\n"
        "step (worse tail latency for concurrent updaters).\n");
  }
  return 0;
}
