// Ablation A5: read-log volume — the space side of Table 2's time/space
// tradeoff. Runs the same TPC-B operation mix under each logging
// configuration and reports log bytes appended per operation, isolating
// what Read Logging (identity only) and Codeword Read Logging (identity +
// checksum) add to the redo stream (§4.2: "the data logged consists of the
// identity of the item and an optional checksum of the value, but not the
// value itself").

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/database.h"
#include "workload/tpcb.h"

namespace cwdb {
namespace {

struct Row {
  const char* name;
  ProtectionScheme scheme;
};

const Row kRows[] = {
    {"Baseline (no read logging)", ProtectionScheme::kNone},
    {"Data CW (no read logging)", ProtectionScheme::kDataCodeword},
    {"Data CW w/ReadLog", ProtectionScheme::kReadLog},
    {"Data CW w/CW ReadLog", ProtectionScheme::kCodewordReadLog},
};

}  // namespace
}  // namespace cwdb

int main() {
  cwdb::PinToCpu(0);
  using namespace cwdb;
  TpcbConfig cfg;
  cfg.accounts = 10000;
  cfg.tellers = 1000;
  cfg.branches = 100;
  cfg.ops_per_txn = 500;
  const uint64_t ops = 10000;
  cfg.history_capacity = ops + 1000;

  std::printf(
      "Ablation A5: log volume per TPC-B operation\n"
      "(each operation: 3 balance read+updates, 1 history insert)\n\n");
  std::printf("  %-30s %16s %18s\n", "Configuration", "log bytes/op",
              "delta vs baseline");
  std::printf("  %-30s %16s %18s\n", "------------------------------",
              "------------", "-----------------");

  char tmpl[] = "/dev/shm/cwdb_bench_readlog_XXXXXX";
  char* base = ::mkdtemp(tmpl);
  double baseline = 0;
  int idx = 0;
  for (const Row& row : kRows) {
    DatabaseOptions opts;
    opts.path = std::string(base) + "/r" + std::to_string(idx++);
    opts.page_size = 8192;
    opts.arena_size = (cfg.MinArenaSize(opts.page_size) + (4u << 20) + 8191) &
                      ~uint64_t{8191};
    opts.protection.scheme = row.scheme;
    opts.protection.region_size = 512;
    auto db = Database::Open(opts);
    if (!db.ok()) {
      std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
      return 1;
    }
    TpcbWorkload workload(db->get(), cfg);
    if (!workload.Setup().ok()) return 1;
    uint64_t before = (*db)->GetStats().log_bytes_appended;
    if (!workload.RunOps(ops).ok()) return 1;
    uint64_t bytes = (*db)->GetStats().log_bytes_appended - before;
    double per_op = static_cast<double>(bytes) / ops;
    if (row.scheme == ProtectionScheme::kNone) baseline = per_op;
    std::printf("  %-30s %16.1f %+17.1f\n", row.name, per_op,
                per_op - baseline);
  }
  std::string cleanup = std::string("rm -rf '") + base + "'";
  [[maybe_unused]] int rc = ::system(cleanup.c_str());

  std::printf(
      "\nRead log records carry (offset, length[, 4-byte codeword]) per\n"
      "read — never the value — so the log grows by tens of bytes per\n"
      "operation, not by the data volume read.\n");
  return 0;
}
