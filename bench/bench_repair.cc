// Ablation A7: in-place parity repair vs delete-transaction recovery.
// Both paths start from the same detected corruption (wild single-region
// writes located by a codeword audit); the parity tier reconstructs the
// regions in place while the database keeps its state, whereas the paper's
// delete-transaction algorithm reloads the checkpoint and replays the log.
// The gap is the point of the error-correcting tier: a detected single-
// region fault should cost microseconds, not a full recovery.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/database.h"
#include "faultinject/fault_injector.h"
#include "workload/tpcb.h"

namespace cwdb {
namespace {

struct Config {
  uint64_t corrupt_regions;
  uint64_t ops_after_checkpoint;
};

struct PreparedDb {
  Result<std::unique_ptr<Database>> db = Status::Internal("unprepared");
  TpcbConfig cfg;
  std::vector<CorruptRange> injected;
};

/// Opens a database, runs TPC-B history, checkpoints, runs more history,
/// then lands one wild write in each of `corrupt_regions` distinct parity
/// groups — the worst case the correction budget still covers.
void Prepare(const std::string& dir, const Config& c, PreparedDb* out) {
  out->cfg.accounts = 2000;
  out->cfg.tellers = 200;
  out->cfg.branches = 20;
  out->cfg.ops_per_txn = 50;
  out->cfg.history_capacity = 2 * c.ops_after_checkpoint + 4000;

  DatabaseOptions opts;
  opts.path = dir;
  opts.page_size = 8192;
  opts.arena_size =
      (out->cfg.MinArenaSize(opts.page_size) + (8u << 20) + 8191) &
      ~uint64_t{8191};
  opts.protection.scheme = ProtectionScheme::kReadLog;
  opts.protection.region_size = 512;
  opts.protection.parity_group_regions = 64;
  out->db = Database::Open(opts);
  if (!out->db.ok()) {
    std::fprintf(stderr, "open: %s\n", out->db.status().ToString().c_str());
    std::exit(1);
  }
  Database* db = out->db->get();
  TpcbWorkload workload(db, out->cfg);
  if (!workload.Setup().ok() || !workload.RunOps(1000).ok()) std::exit(1);
  if (!db->Checkpoint().ok()) std::exit(1);
  if (!workload.RunOps(c.ops_after_checkpoint).ok()) std::exit(1);

  const uint64_t group_bytes = 64ull * 512;  // One region per parity group.
  const uint64_t base =
      db->image()->RecordOff(workload.accounts(), 0) & ~uint64_t{511};
  FaultInjector inject(db, 7);
  out->injected.clear();
  for (uint64_t g = 0; g < c.corrupt_regions; ++g) {
    uint64_t off = base + g * group_bytes;
    if (off + 8 > db->arena_size()) {
      std::fprintf(stderr, "arena too small for %llu corrupt groups\n",
                   static_cast<unsigned long long>(c.corrupt_regions));
      std::exit(1);
    }
    uint64_t garbage = 0xBADBADBAD + g;
    inject.WildWriteAt(off, Slice(reinterpret_cast<const char*>(&garbage),
                                  sizeof(garbage)));
    out->injected.push_back(CorruptRange{off, 512});
  }
}

void RunCase(const std::string& dir, const Config& c, bool json) {
  // Arm A: detect with a full audit sweep, repair in place from parity.
  double repair_ms = 0;
  {
    PreparedDb prep;
    Prepare(dir + "_repair", c, &prep);
    Database* db = prep.db->get();
    std::vector<CorruptRange> corrupt;
    Status s = db->protection()->AuditAll(&corrupt);
    if (!s.IsCorruption() || corrupt.size() != c.corrupt_regions) {
      std::fprintf(stderr, "audit found %zu corrupt regions, expected %llu\n",
                   corrupt.size(),
                   static_cast<unsigned long long>(c.corrupt_regions));
      std::exit(1);
    }
    auto t0 = std::chrono::steady_clock::now();
    bool repaired = db->TryRepairRanges(corrupt, IncidentSource::kAudit);
    auto t1 = std::chrono::steady_clock::now();
    if (!repaired) {
      std::fprintf(stderr, "in-place repair failed\n");
      std::exit(1);
    }
    repair_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    auto audit = db->Audit();
    if (!audit.ok() || !audit->clean) {
      std::fprintf(stderr, "post-repair audit not clean\n");
      std::exit(1);
    }
    TpcbWorkload check(db, prep.cfg);
    if (!check.Attach().ok() || !check.CheckConsistency().ok()) {
      std::fprintf(stderr, "post-repair consistency violated\n");
      std::exit(1);
    }
    DumpDbMetricsIfRequested(db);
  }

  // Arm B: same damage, paper path — note the corruption and run
  // delete-transaction recovery (checkpoint reload + redo replay).
  double recovery_ms = 0;
  {
    PreparedDb prep;
    Config plain = c;
    Prepare(dir + "_recover", plain, &prep);
    Database* db = prep.db->get();
    auto audit = db->Audit();
    if (!audit.ok() || audit->clean) {
      std::fprintf(stderr, "audit did not detect corruption\n");
      std::exit(1);
    }
    auto t0 = std::chrono::steady_clock::now();
    Status s = db->CrashAndRecover();
    auto t1 = std::chrono::steady_clock::now();
    if (!s.ok()) {
      std::fprintf(stderr, "recovery: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    recovery_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    TpcbWorkload check(db, prep.cfg);
    if (!check.Attach().ok() || !check.CheckConsistency().ok()) {
      std::fprintf(stderr, "post-recovery consistency violated\n");
      std::exit(1);
    }
  }

  double speedup = recovery_ms / repair_ms;
  if (json) {
    std::string name = "repair/r" + std::to_string(c.corrupt_regions) +
                       "_ops" + std::to_string(c.ops_after_checkpoint);
    PrintJsonMetricLine(name, "repair_ms", repair_ms, 1);
    PrintJsonMetricLine(name, "recovery_ms", recovery_ms, 1);
    PrintJsonMetricLine(name, "speedup", speedup, 1);
  } else {
    std::printf("  %10llu %12llu %12.3f %14.1f %10.0fx\n",
                static_cast<unsigned long long>(c.corrupt_regions),
                static_cast<unsigned long long>(c.ops_after_checkpoint),
                repair_ms, recovery_ms, speedup);
  }
}

}  // namespace
}  // namespace cwdb

int main(int argc, char** argv) {
  cwdb::PinToCpu(0);
  using namespace cwdb;
  const bool json = JsonMode(argc, argv);
  if (!json) {
    std::printf(
        "Ablation A7: in-place parity repair vs delete-transaction "
        "recovery\n"
        "(TPC-B, Data CW w/ReadLog, region 512 B, parity group 64 "
        "regions)\n\n");
    std::printf("  %10s %12s %12s %14s %11s\n", "corrupt", "ops after",
                "repair", "recovery", "speedup");
    std::printf("  %10s %12s %12s %14s %11s\n", "regions", "checkpoint",
                "time (ms)", "time (ms)", "");
    std::printf("  ---------- ------------ ------------ -------------- "
                "-----------\n");
  }

  char tmpl[] = "/dev/shm/cwdb_bench_repair_XXXXXX";
  char* base = ::mkdtemp(tmpl);
  int idx = 0;
  for (uint64_t regions : {1ull, 8ull, 64ull}) {
    RunCase(std::string(base) + "/r" + std::to_string(idx++),
            Config{regions, 2000}, json);
  }
  std::string cleanup = std::string("rm -rf '") + base + "'";
  [[maybe_unused]] int rc = ::system(cleanup.c_str());

  if (!json) {
    std::printf(
        "\nRepair touches only the damaged groups (one column XOR per\n"
        "region plus a codeword re-verify); recovery reloads the whole\n"
        "checkpoint image and replays the log behind it. The gap is the\n"
        "case for correcting detected single-region faults in place.\n");
  }
  return 0;
}
