// Ablation A3: audit throughput (google-benchmark). The Data Codeword
// scheme's detection latency is bounded by how fast the auditor can sweep
// the database (§3.2), and checkpoint certification (§4.2) pays one full
// sweep per checkpoint. Measures full-database audits across region sizes
// and sweep-lane counts (ProtectionOptions::sweep_threads), plus the
// post-checkpoint full rebuild (ResetFromImage) that parallelizes the same
// way.
//
// `--json` switches to a machine-readable mode that sweeps a large image
// (default 256 MiB; override with CWDB_BENCH_AUDIT_MB) and prints one
//   {"name": ..., "bytes_per_sec": ..., "threads": ...}
// line per (operation, threads) point for BENCH_*.json trajectory tracking.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/codeword_kernel.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/database.h"
#include "protect/codeword_protection.h"
#include "storage/db_image.h"

namespace cwdb {
namespace {

void BM_AuditAll(benchmark::State& state) {
  const uint32_t region_size = static_cast<uint32_t>(state.range(0));
  const size_t sweep_threads = static_cast<size_t>(state.range(1));
  const uint64_t arena = 32ull << 20;

  char tmpl[] = "/dev/shm/cwdb_bench_audit_XXXXXX";
  char* dir = ::mkdtemp(tmpl);

  DatabaseOptions opts;
  opts.path = dir;
  opts.arena_size = arena;
  opts.page_size = 8192;
  opts.protection.scheme = ProtectionScheme::kDataCodeword;
  opts.protection.region_size = region_size;
  opts.protection.sweep_threads = sweep_threads;
  auto db = Database::Open(opts);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  // Put some real data in the image.
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 100, 10000);
  for (int i = 0; i < 10000; ++i) {
    (void)(*db)->Insert(*txn, *t, std::string(100, 'a' + i % 26));
  }
  (void)(*db)->Commit(*txn);

  for (auto _ : state) {
    Status s = (*db)->protection()->AuditAll(nullptr);
    if (!s.ok()) {
      state.SkipWithError("audit failed");
      return;
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(arena));
  state.counters["regions"] = static_cast<double>(arena / region_size);
  state.counters["threads"] =
      static_cast<double>(EffectiveConcurrency(sweep_threads));

  db->reset();
  std::string cleanup = std::string("rm -rf '") + dir + "'";
  [[maybe_unused]] int rc = ::system(cleanup.c_str());
}
BENCHMARK(BM_AuditAll)
    ->Args({64, 1})
    ->Args({512, 1})
    ->Args({512, 0})  // 0 = one sweep lane per hardware thread.
    ->Args({8192, 1})
    ->Args({8192, 0})
    ->Unit(benchmark::kMillisecond);

// The full codeword rebuild paid at checkpoint load and after recovery.
void BM_RebuildAll(benchmark::State& state) {
  const uint32_t region_size = static_cast<uint32_t>(state.range(0));
  const size_t sweep_threads = static_cast<size_t>(state.range(1));
  const uint64_t arena = 32ull << 20;

  auto image = DbImage::Create(arena, 8192);
  if (!image.ok()) {
    state.SkipWithError(image.status().ToString().c_str());
    return;
  }
  Random rng(1);
  uint8_t* base = (*image)->base();
  for (uint64_t i = 0; i < arena; i += 4) {
    uint32_t w = rng.Next32();
    std::memcpy(base + i, &w, 4);
  }
  ProtectionOptions popts;
  popts.scheme = ProtectionScheme::kDataCodeword;
  popts.region_size = region_size;
  popts.sweep_threads = sweep_threads;
  auto prot = CodewordProtection::Create(popts, image->get());
  if (!prot.ok()) {
    state.SkipWithError(prot.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Status s = (*prot)->ResetFromImage();
    if (!s.ok()) {
      state.SkipWithError("rebuild failed");
      return;
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(arena));
  state.counters["threads"] =
      static_cast<double>(EffectiveConcurrency(sweep_threads));
}
BENCHMARK(BM_RebuildAll)
    ->Args({512, 1})
    ->Args({512, 0})
    ->Args({8192, 1})
    ->Args({8192, 0})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json mode: sweep wall time over a large image, across thread counts.
// ---------------------------------------------------------------------------

void PrintJsonLine(const std::string& name, double bytes_per_sec,
                   unsigned threads) {
  std::printf("{\"name\": \"%s\", \"bytes_per_sec\": %.0f, \"threads\": %u}\n",
              name.c_str(), bytes_per_sec, threads);
}

int RunJsonMode() {
  uint64_t mb = 256;
  if (const char* env = std::getenv("CWDB_BENCH_AUDIT_MB")) {
    mb = std::strtoull(env, nullptr, 10);
    if (mb == 0) mb = 256;
  }
  const uint64_t arena = mb << 20;
  const uint32_t region_size = 8192;

  auto image = DbImage::Create(arena, 8192);
  if (!image.ok()) {
    std::fprintf(stderr, "image create failed: %s\n",
                 image.status().ToString().c_str());
    return 1;
  }
  Random rng(1);
  uint8_t* base = (*image)->base();
  for (uint64_t i = 0; i < arena; i += 4) {
    uint32_t w = rng.Next32();
    std::memcpy(base + i, &w, 4);
  }

  size_t hw = EffectiveConcurrency(0);
  std::vector<size_t> thread_counts = {1};
  for (size_t t : {size_t{2}, size_t{4}, hw}) {
    if (t > 1 && t <= hw && t != thread_counts.back()) {
      thread_counts.push_back(t);
    }
  }

  for (size_t threads : thread_counts) {
    ProtectionOptions popts;
    popts.scheme = ProtectionScheme::kDataCodeword;
    popts.region_size = region_size;
    popts.sweep_threads = threads;
    auto prot = CodewordProtection::Create(popts, image->get());
    if (!prot.ok()) {
      std::fprintf(stderr, "protection create failed: %s\n",
                   prot.status().ToString().c_str());
      return 1;
    }

    using clock = std::chrono::steady_clock;
    // AuditAll, best of 3 (sweeps are long; iteration counts stay small).
    double best_audit = 0;
    for (int rep = 0; rep < 3; ++rep) {
      auto start = clock::now();
      Status s = (*prot)->AuditAll(nullptr);
      double secs =
          std::chrono::duration<double>(clock::now() - start).count();
      if (!s.ok()) {
        std::fprintf(stderr, "audit failed: %s\n", s.ToString().c_str());
        return 1;
      }
      best_audit = std::max(best_audit, static_cast<double>(arena) / secs);
    }
    PrintJsonLine("audit_all/" + std::to_string(mb) + "mb", best_audit,
                  static_cast<unsigned>(threads));

    double best_rebuild = 0;
    for (int rep = 0; rep < 3; ++rep) {
      auto start = clock::now();
      Status s = (*prot)->ResetFromImage();
      double secs =
          std::chrono::duration<double>(clock::now() - start).count();
      if (!s.ok()) {
        std::fprintf(stderr, "rebuild failed: %s\n", s.ToString().c_str());
        return 1;
      }
      best_rebuild = std::max(best_rebuild, static_cast<double>(arena) / secs);
    }
    PrintJsonLine("rebuild_all/" + std::to_string(mb) + "mb", best_rebuild,
                  static_cast<unsigned>(threads));
  }
  return 0;
}

}  // namespace
}  // namespace cwdb

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return cwdb::RunJsonMode();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
