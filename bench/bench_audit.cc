// Ablation A3: audit throughput (google-benchmark). The Data Codeword
// scheme's detection latency is bounded by how fast the auditor can sweep
// the database (§3.2), and checkpoint certification (§4.2) pays one full
// sweep per checkpoint. Measures full-database audits across region sizes.

#include <benchmark/benchmark.h>

#include <string>

#include "core/database.h"

namespace cwdb {
namespace {

void BM_AuditAll(benchmark::State& state) {
  const uint32_t region_size = static_cast<uint32_t>(state.range(0));
  const uint64_t arena = 32ull << 20;

  char tmpl[] = "/dev/shm/cwdb_bench_audit_XXXXXX";
  char* dir = ::mkdtemp(tmpl);

  DatabaseOptions opts;
  opts.path = dir;
  opts.arena_size = arena;
  opts.page_size = 8192;
  opts.protection.scheme = ProtectionScheme::kDataCodeword;
  opts.protection.region_size = region_size;
  auto db = Database::Open(opts);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  // Put some real data in the image.
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 100, 10000);
  for (int i = 0; i < 10000; ++i) {
    (void)(*db)->Insert(*txn, *t, std::string(100, 'a' + i % 26));
  }
  (void)(*db)->Commit(*txn);

  for (auto _ : state) {
    Status s = (*db)->protection()->AuditAll(nullptr);
    if (!s.ok()) {
      state.SkipWithError("audit failed");
      return;
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(arena));
  state.counters["regions"] = static_cast<double>(arena / region_size);

  db->reset();
  std::string cleanup = std::string("rm -rf '") + dir + "'";
  [[maybe_unused]] int rc = ::system(cleanup.c_str());
}
BENCHMARK(BM_AuditAll)->Arg(64)->Arg(512)->Arg(8192)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cwdb
