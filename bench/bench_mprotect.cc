// Reproduces Table 1 / Figure 1 of the paper ("Performance of
// Protect/Unprotect", §5.1): 2000 pages are protected and then
// unprotected, repeated 50 times; the reported number is protect/unprotect
// pairs per second.
//
// The paper measured 1990s workstations (SPARCstation 20: 15,600 pairs/s;
// UltraSPARC 2: 43,000; HP 9000 C110: 3,300; SGI Challenge DM: 8,200) and
// used the spread to argue that mprotect cost is erratic across platforms.
// This binary measures the same microbenchmark on the current host and
// prints it next to the paper's rows.

#include <sys/mman.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace {

constexpr int kPages = 2000;
constexpr int kReps = 50;

double MeasurePairsPerSecond(bool per_page) {
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  const size_t bytes = page * kPages;
  void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    std::perror("mmap");
    std::exit(1);
  }
  // Touch every page so the measurement is not dominated by first-fault.
  for (size_t i = 0; i < bytes; i += page) {
    static_cast<volatile char*>(mem)[i] = 1;
  }

  auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    if (per_page) {
      // One syscall per page, matching a DBMS that exposes/reprotects
      // individual pages around updates.
      char* p = static_cast<char*>(mem);
      for (int i = 0; i < kPages; ++i) {
        ::mprotect(p + i * page, page, PROT_READ);
      }
      for (int i = 0; i < kPages; ++i) {
        ::mprotect(p + i * page, page, PROT_READ | PROT_WRITE);
      }
    } else {
      ::mprotect(mem, bytes, PROT_READ);
      ::mprotect(mem, bytes, PROT_READ | PROT_WRITE);
    }
  }
  auto end = std::chrono::steady_clock::now();
  double seconds = std::chrono::duration<double>(end - start).count();
  ::munmap(mem, bytes);
  return static_cast<double>(kPages) * kReps / seconds;
}

}  // namespace

int main() {
  std::printf(
      "Table 1 / Figure 1: Performance of Protect/Unprotect\n"
      "(%d pages protected+unprotected, %d repetitions; pairs/second)\n\n",
      kPages, kReps);
  std::printf("  %-28s %15s\n", "Platform", "pairs/second");
  std::printf("  %-28s %15s\n", "----------------------------",
              "------------");
  std::printf("  %-28s %15s   (paper)\n", "SPARCstation 20", "15,600");
  std::printf("  %-28s %15s   (paper)\n", "UltraSPARC 2", "43,000");
  std::printf("  %-28s %15s   (paper)\n", "HP 9000 C110", "3,300");
  std::printf("  %-28s %15s   (paper)\n", "SGI Challenge DM", "8,200");

  double per_page = MeasurePairsPerSecond(/*per_page=*/true);
  double whole_range = MeasurePairsPerSecond(/*per_page=*/false);
  std::printf("  %-28s %15.0f   (measured, per-page syscalls)\n",
              "this host", per_page);
  std::printf("  %-28s %15.0f   (measured, one syscall for all pages)\n",
              "this host (batched)", whole_range);
  std::printf(
      "\nThe paper's point: mprotect throughput varies wildly across\n"
      "platforms and does not track integer performance, so hardware\n"
      "protection has unpredictable cost while codeword schemes scale\n"
      "with plain integer speed.\n");
  return 0;
}
