// Ablation A1: pages touched per operation under Hardware Protection.
// The paper observes (§5.3): "on average operations updated about 11
// pages. Only 4 tuples are touched by an operation, and the extra page
// updates arise from updates to allocation information and control
// information not residing on the same page as the tuple." This bench
// reproduces that accounting: it runs TPC-B under the mprotect scheme and
// reports mprotect calls and pages exposed per operation.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/database.h"
#include "workload/tpcb.h"

int main() {
  cwdb::PinToCpu(0);
  using namespace cwdb;
  TpcbConfig cfg;
  cfg.accounts = 10000;
  cfg.tellers = 1000;
  cfg.branches = 100;
  cfg.ops_per_txn = 500;
  const uint64_t ops = 10000;
  cfg.history_capacity = ops + 1000;

  char tmpl[] = "/dev/shm/cwdb_bench_pages_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  DatabaseOptions opts;
  opts.path = dir;
  opts.page_size = 8192;
  opts.arena_size = (cfg.MinArenaSize(opts.page_size) + (4u << 20) + 8191) &
                    ~uint64_t{8191};
  opts.protection.scheme = ProtectionScheme::kHardware;
  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  TpcbWorkload workload(db->get(), cfg);
  if (!workload.Setup().ok()) return 1;

  (*db)->protection()->ResetStats();
  if (!workload.RunOps(ops).ok()) return 1;
  const ProtectionStats& stats = (*db)->GetStats().protection;

  std::printf(
      "Ablation A1: Hardware Protection page exposure per TPC-B operation\n"
      "(OS page size %zu; one operation = 3 balance updates + 1 history "
      "insert)\n\n",
      Arena::OsPageSize());
  std::printf("  updates (BeginUpdate calls) per op : %6.2f\n",
              static_cast<double>(stats.updates) / ops);
  std::printf("  pages exposed (unprotected) per op : %6.2f\n",
              static_cast<double>(stats.pages_unprotected) / ops);
  std::printf("  mprotect syscalls per op           : %6.2f\n",
              static_cast<double>(stats.mprotect_calls) / ops);
  std::printf("\n  paper (§5.3, 200MHz UltraSPARC)    : ~11 pages per op\n");
  std::printf(
      "\nOnly 4 records are logically touched; the rest is allocation\n"
      "bitmaps, the table directory and other control pages — the cost of\n"
      "a non-page-based layout under the expose-page update model.\n");

  db->reset();
  std::string cleanup = std::string("rm -rf '") + dir + "'";
  [[maybe_unused]] int rc = ::system(cleanup.c_str());
  return 0;
}
