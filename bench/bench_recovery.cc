// Ablation A4: delete-transaction recovery cost as corruption spreads.
// The paper does not measure recovery time ("Corruption recovery is
// expected to be relatively rare, and the time required is highly
// dependent on the application"); this ablation quantifies it for our
// substrate: wall-clock recovery time and number of deleted transactions
// as a function of how many hot records are corrupted and how long the
// post-corruption history is.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "core/database.h"
#include "faultinject/fault_injector.h"
#include "workload/tpcb.h"

namespace cwdb {
namespace {

struct Config {
  uint64_t corrupt_accounts;
  uint64_t ops_after_corruption;
};

void RunCase(const std::string& dir, const Config& c, bool json) {
  TpcbConfig cfg;
  cfg.accounts = 2000;
  cfg.tellers = 200;
  cfg.branches = 20;
  cfg.ops_per_txn = 50;
  cfg.history_capacity = 2 * c.ops_after_corruption + 4000;

  DatabaseOptions opts;
  opts.path = dir;
  opts.page_size = 8192;
  opts.arena_size = (cfg.MinArenaSize(opts.page_size) + (4u << 20) + 8191) &
                    ~uint64_t{8191};
  opts.protection.scheme = ProtectionScheme::kReadLog;
  opts.protection.region_size = 512;
  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  TpcbWorkload workload(db->get(), cfg);
  if (!workload.Setup().ok() || !workload.RunOps(1000).ok()) std::exit(1);
  if (!(*db)->Checkpoint().ok()) std::exit(1);

  // Corrupt the balances of the first K accounts, then keep running: every
  // operation that reads one of them becomes a carrier.
  FaultInjector inject(db->get(), 7);
  for (uint64_t i = 0; i < c.corrupt_accounts; ++i) {
    int64_t garbage = static_cast<int64_t>(0xBADBADBAD + i);
    inject.WildWriteAt(
        (*db)->image()->RecordOff(workload.accounts(),
                                  static_cast<uint32_t>(i)) +
            TpcbLayout::kBalanceOff,
        Slice(reinterpret_cast<const char*>(&garbage), 8));
  }
  if (!workload.RunOps(c.ops_after_corruption).ok()) std::exit(1);

  auto audit = (*db)->Audit();
  if (!audit.ok() || audit->clean) {
    std::fprintf(stderr, "audit did not detect corruption\n");
    std::exit(1);
  }
  auto start = std::chrono::steady_clock::now();
  Status s = (*db)->CrashAndRecover();
  auto end = std::chrono::steady_clock::now();
  if (!s.ok()) {
    std::fprintf(stderr, "recovery: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  const RecoveryReport& report = (*db)->last_recovery_report();
  double ms = std::chrono::duration<double, std::milli>(end - start).count();

  TpcbWorkload check(db->get(), cfg);
  if (!check.Attach().ok() || !check.CheckConsistency().ok()) {
    std::fprintf(stderr, "post-recovery consistency violated\n");
    std::exit(1);
  }

  if (json) {
    std::string name = "recovery/c" + std::to_string(c.corrupt_accounts) +
                       "_ops" + std::to_string(c.ops_after_corruption);
    PrintJsonMetricLine(name, "recovery_ms", ms, 1);
    PrintJsonMetricLine(name, "deleted_txns",
                        static_cast<double>(report.deleted_txns.size()), 1);
  } else {
    std::printf("  %10llu %12llu %14zu %14llu %12.1f\n",
                static_cast<unsigned long long>(c.corrupt_accounts),
                static_cast<unsigned long long>(c.ops_after_corruption),
                report.deleted_txns.size(),
                static_cast<unsigned long long>(report.redo_records_skipped),
                ms);
  }
  DumpDbMetricsIfRequested(db->get());
}

}  // namespace
}  // namespace cwdb

int main(int argc, char** argv) {
  cwdb::PinToCpu(0);
  using namespace cwdb;
  const bool json = JsonMode(argc, argv);
  if (!json) {
    std::printf(
        "Ablation A4: delete-transaction recovery vs corruption spread\n"
        "(TPC-B 2000 accounts, 50-op transactions, Data CW w/ReadLog)\n\n");
    std::printf("  %10s %12s %14s %14s %12s\n", "corrupted", "ops after",
                "txns deleted", "writes", "recovery");
    std::printf("  %10s %12s %14s %14s %12s\n", "accounts", "corruption",
                "", "suppressed", "time (ms)");
    std::printf("  ---------- ------------ -------------- -------------- "
                "------------\n");
  }

  char tmpl[] = "/dev/shm/cwdb_bench_recovery_XXXXXX";
  char* base = ::mkdtemp(tmpl);
  int idx = 0;
  for (uint64_t corrupt : {1ull, 8ull, 64ull}) {
    for (uint64_t ops : {1000ull, 5000ull}) {
      RunCase(std::string(base) + "/c" + std::to_string(idx++),
              Config{corrupt, ops}, json);
    }
  }
  std::string cleanup = std::string("rm -rf '") + base + "'";
  [[maybe_unused]] int rc = ::system(cleanup.c_str());

  if (!json) {
    std::printf(
        "\nDeleted-transaction count grows with both the number of corrupt\n"
        "records and the amount of history replayed over them; recovery "
        "time\nis dominated by the redo scan plus the final certifying "
        "checkpoint.\n");
  }
  return 0;
}
