// Ablation: read/write asymmetry of the schemes. The paper's Table 2
// workload is pure update; this sweep adds balance inquiries and shows
// where each scheme's cost lives — Read Prechecking taxes reads (overhead
// grows with the read fraction), codeword maintenance and read logging tax
// writes (overhead shrinks as reads displace writes), and the crossover
// between Precheck and ReadLog moves with the mix.

#include <algorithm>
#include <array>
#include <cstdio>
#include <iterator>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "core/database.h"
#include "workload/tpcb.h"

namespace cwdb {
namespace {

struct SchemeCol {
  const char* name;
  ProtectionScheme scheme;
  uint32_t region;
};

// Precheck shown at 8 KiB regions: on modern hardware a 512-byte region
// scan (~tens of ns) vanishes under per-operation locking/logging costs,
// so the read-side effect only rises above noise at page-sized regions
// (on the paper's 200 MHz UltraSPARC it was visible at 512 B already).
const SchemeCol kCols[] = {
    {"baseline", ProtectionScheme::kNone, 512},
    {"data-cw", ProtectionScheme::kDataCodeword, 512},
    {"precheck-8K", ProtectionScheme::kReadPrecheck, 8192},
    {"readlog", ProtectionScheme::kReadLog, 512},
};

struct Bench {
  std::unique_ptr<Database> db;
  std::unique_ptr<TpcbWorkload> workload;
  std::array<double, 3> rates{};
};

void SetupOne(const std::string& dir, const SchemeCol& col, TpcbConfig cfg,
              uint64_t ops, Bench* bench) {
  DatabaseOptions opts;
  opts.path = dir;
  opts.page_size = 8192;
  opts.arena_size = (cfg.MinArenaSize(opts.page_size) + (4u << 20) + 8191) &
                    ~uint64_t{8191};
  opts.protection.scheme = col.scheme;
  opts.protection.region_size = col.region;
  auto db = Database::Open(opts);
  if (!db.ok()) std::exit(1);
  bench->db = std::move(db).value();
  bench->workload = std::make_unique<TpcbWorkload>(bench->db.get(), cfg);
  if (!bench->workload->Setup().ok()) std::exit(1);
  if (!bench->workload->RunOps(ops / 5).ok()) std::exit(1);  // Warm-up.
}

}  // namespace
}  // namespace cwdb

int main(int argc, char** argv) {
  cwdb::PinToCpu(0);
  using namespace cwdb;
  const bool json = JsonMode(argc, argv);
  TpcbConfig base_cfg;
  base_cfg.accounts = 20000;
  base_cfg.tellers = 2000;
  base_cfg.branches = 200;
  base_cfg.ops_per_txn = 500;
  const uint64_t ops = 20000;
  base_cfg.history_capacity = 4 * ops + 1000;

  char tmpl[] = "/dev/shm/cwdb_bench_mix_XXXXXX";
  char* base = ::mkdtemp(tmpl);

  if (!json) {
    std::printf(
        "Ablation: scheme overhead vs read fraction (TPC-B + inquiries)\n"
        "(%% slower than the unprotected baseline at the same mix)\n\n");
    std::printf("  %6s |", "reads");
    for (const auto& col : kCols) {
      if (col.scheme == ProtectionScheme::kNone) continue;
      std::printf(" %12s", col.name);
    }
    std::printf("\n  ------ | ------------ ------------ ------------\n");
  }

  int idx = 0;
  constexpr size_t kColCount = std::size(kCols);
  for (double frac : {0.0, 0.5, 0.9}) {
    TpcbConfig cfg = base_cfg;
    cfg.read_fraction = frac;
    // All schemes of a row stay open; measured runs interleave round-robin
    // so machine drift cancels across the row (see bench_table2).
    Bench benches[kColCount];
    for (size_t i = 0; i < kColCount; ++i) {
      SetupOne(std::string(base) + "/m" + std::to_string(idx++), kCols[i],
               cfg, ops, &benches[i]);
    }
    for (size_t round = 0; round < benches[0].rates.size(); ++round) {
      for (size_t i = 0; i < kColCount; ++i) {
        auto rate = benches[i].workload->RunTimed(ops);
        if (!rate.ok()) return 1;
        benches[i].rates[round] = *rate;
      }
    }
    double baseline = 0;
    if (!json) std::printf("  %5.0f%% |", frac * 100);
    std::string mix = "r";
    mix += std::to_string(static_cast<int>(frac * 100));
    for (size_t i = 0; i < kColCount; ++i) {
      if (!benches[i].workload->CheckConsistency().ok()) return 1;
      std::sort(benches[i].rates.begin(), benches[i].rates.end());
      double rate = benches[i].rates[benches[i].rates.size() / 2];
      if (json) {
        PrintJsonMetricLine(
            std::string("read_mix/") + kCols[i].name + "/" + mix,
            "ops_per_sec", rate, 1);
      }
      if (kCols[i].scheme == ProtectionScheme::kNone) {
        baseline = rate;
        continue;
      }
      if (!json) {
        std::printf(" %11.1f%%", (1.0 - rate / baseline) * 100.0);
      }
      DumpDbMetricsIfRequested(benches[i].db.get());
    }
    if (!json) std::printf("\n");
    std::fflush(stdout);
  }
  std::string cleanup = std::string("rm -rf '") + base + "'";
  [[maybe_unused]] int rc = ::system(cleanup.c_str());

  if (!json) {
    std::printf(
        "\nAs inquiries displace updates, prechecking's relative cost grows\n"
        "(every read scans a region) while codeword maintenance and read\n"
        "logging shrink (fewer folds, shorter log).\n");
  }
  return 0;
}
