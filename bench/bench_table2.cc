// Reproduces Table 2 of the paper ("Cost of Corruption Protection", §5.3):
// a single process executing TPC-B style operations — 100,000 accounts,
// 10,000 tellers, 1,000 branches, 100-byte records, 50,000 operations per
// run, transactions committed every 500 operations — for each protection
// scheme, reporting operations/second and the slowdown relative to the
// unprotected baseline. Each configuration is run several times and
// averaged, as in the paper (6 runs there; see kRuns below).
//
// Absolute numbers are hardware-dependent (the paper used a 200 MHz
// UltraSPARC and reached 417 ops/sec; a modern machine is orders of
// magnitude faster). The reproduction target is the *ordering and shape*:
// Data CW cheapest, precheck cost exploding with region size, ReadLog <
// CW ReadLog, and hardware protection expensive relative to codewords.

#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/database.h"
#include "workload/tpcb.h"

namespace cwdb {
namespace {

struct Row {
  const char* name;
  const char* direct;    // Protection against direct corruption.
  const char* indirect;  // Protection against indirect corruption.
  ProtectionScheme scheme;
  uint32_t region_size;
  double paper_pct;  // Paper's "% slower" for reference.
};

const Row kRows[] = {
    {"Baseline", "None", "None", ProtectionScheme::kNone, 512, 0.0},
    {"Data CW", "Correct", "None", ProtectionScheme::kDataCodeword, 512, 8.5},
    {"Data CW w/Precheck, 64 byte", "Correct", "Prevent",
     ProtectionScheme::kReadPrecheck, 64, 12.2},
    {"Data CW w/ReadLog", "Correct", "Correct", ProtectionScheme::kReadLog,
     512, 17.1},
    {"Data CW w/CW ReadLog", "Correct", "Correct",
     ProtectionScheme::kCodewordReadLog, 512, 22.4},
    {"Data CW w/Precheck, 512 byte", "Correct", "Prevent",
     ProtectionScheme::kReadPrecheck, 512, 25.4},
    {"Memory Protection", "Prevent", "Unneeded", ProtectionScheme::kHardware,
     512, 38.2},
    {"Data CW w/Precheck, 8K byte", "Correct", "Prevent",
     ProtectionScheme::kReadPrecheck, 8192, 72.4},
};

/// One open database + workload per Table 2 row. All rows are set up
/// first and the measured runs are interleaved round-robin across rows so
/// machine-wide drift (page cache, frequency scaling, noisy neighbours)
/// averages out instead of biasing whichever row ran last.
struct Bench {
  std::unique_ptr<Database> db;
  std::unique_ptr<TpcbWorkload> workload;
  double total_rate = 0;
};

void SetupOne(const std::string& dir, const Row& row, const TpcbConfig& cfg,
              uint64_t ops, Bench* bench) {
  DatabaseOptions opts;
  opts.path = dir;
  opts.page_size = 8192;
  opts.arena_size = cfg.MinArenaSize(opts.page_size) + (8u << 20);
  // Round the arena to the page size.
  opts.arena_size = (opts.arena_size + opts.page_size - 1) &
                    ~uint64_t{opts.page_size - 1};
  opts.protection.scheme = row.scheme;
  opts.protection.region_size = row.region_size;

  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  bench->db = std::move(db).value();
  bench->workload = std::make_unique<TpcbWorkload>(bench->db.get(), cfg);
  Status s = bench->workload->Setup();
  if (!s.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  // Warm-up pass so steady-state cost is measured.
  s = bench->workload->RunOps(ops / 10);
  if (!s.ok()) {
    std::fprintf(stderr, "warmup failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace
}  // namespace cwdb

int main(int argc, char** argv) {
  cwdb::PinToCpu(0);
  using namespace cwdb;
  // --quick shrinks the run for smoke testing; default matches the paper.
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  TpcbConfig cfg;
  cfg.accounts = quick ? 10000 : 100000;
  cfg.tellers = quick ? 1000 : 10000;
  cfg.branches = quick ? 100 : 1000;
  cfg.ops_per_txn = 500;
  const uint64_t ops = quick ? 5000 : 50000;
  const int runs = quick ? 2 : 6;  // Paper: "Each test was run six times".
  // History must hold the warm-up pass plus every measured run.
  cfg.history_capacity = ops / 10 + static_cast<uint64_t>(runs) * ops + 1000;

  std::printf(
      "Table 2: Cost of Corruption Protection\n"
      "(TPC-B style: %llu accounts / %llu tellers / %llu branches, "
      "%llu ops per run,\n commit every %u ops, %d runs averaged)\n\n",
      static_cast<unsigned long long>(cfg.accounts),
      static_cast<unsigned long long>(cfg.tellers),
      static_cast<unsigned long long>(cfg.branches),
      static_cast<unsigned long long>(ops), cfg.ops_per_txn, runs);
  std::printf("  %-30s %-8s %-9s %12s %9s %14s\n", "Algorithm", "Direct",
              "Indirect", "Ops/Sec", "% Slower", "Paper % Slower");
  std::printf(
      "  ------------------------------ -------- --------- ------------ "
      "--------- --------------\n");

  char dir_template[] = "/dev/shm/cwdb_table2_XXXXXX";
  char* base_dir = ::mkdtemp(dir_template);
  constexpr int kRowCount = static_cast<int>(std::size(kRows));
  Bench benches[kRowCount];
  for (int i = 0; i < kRowCount; ++i) {
    SetupOne(std::string(base_dir) + "/run" + std::to_string(i), kRows[i],
             cfg, ops, &benches[i]);
  }
  for (int run = 0; run < runs; ++run) {
    for (int i = 0; i < kRowCount; ++i) {
      auto rate = benches[i].workload->RunTimed(ops);
      if (!rate.ok()) {
        std::fprintf(stderr, "run failed (%s): %s\n", kRows[i].name,
                     rate.status().ToString().c_str());
        return 1;
      }
      benches[i].total_rate += *rate;
    }
  }
  double baseline = 0;
  for (int i = 0; i < kRowCount; ++i) {
    Status s = benches[i].workload->CheckConsistency();
    if (!s.ok()) {
      std::fprintf(stderr, "consistency failed (%s): %s\n", kRows[i].name,
                   s.ToString().c_str());
      return 1;
    }
    double rate = benches[i].total_rate / runs;
    if (kRows[i].scheme == ProtectionScheme::kNone) baseline = rate;
    double pct = baseline > 0 ? (1.0 - rate / baseline) * 100.0 : 0.0;
    std::printf("  %-30s %-8s %-9s %12.0f %8.1f%% %13.1f%%\n", kRows[i].name,
                kRows[i].direct, kRows[i].indirect, rate, pct,
                kRows[i].paper_pct);
  }
  for (int i = 0; i < kRowCount; ++i) benches[i] = Bench{};
  std::string cleanup = std::string("rm -rf '") + base_dir + "'";
  [[maybe_unused]] int rc = ::system(cleanup.c_str());

  std::printf(
      "\nShape checks (paper §5.3): Data CW is the cheapest protection;\n"
      "precheck cost grows with region size (64B < 512B << 8K); ReadLog <\n"
      "CW ReadLog; small-region precheck beats Memory Protection on hosts\n"
      "with slow mprotect.\n");
  return 0;
}
