// Ablation A2: codeword maintenance microcosts (google-benchmark).
// Measures the primitives behind every scheme in Table 2: computing a
// region codeword from scratch, the incremental XOR fold used at
// endUpdate, and a read precheck of one region — across the paper's
// region sizes (64 / 512 / 8192) and typical update widths.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/codeword.h"
#include "common/crc32.h"
#include "common/random.h"

namespace cwdb {
namespace {

std::vector<uint8_t> RandomBuffer(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<uint8_t> buf(n);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next32());
  return buf;
}

void BM_CodewordCompute(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  auto buf = RandomBuffer(size, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CodewordCompute(buf.data(), size));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}
BENCHMARK(BM_CodewordCompute)->Arg(64)->Arg(512)->Arg(8192)->Arg(65536);

// The endUpdate path: fold(before) ^ fold(after) for an update of the
// given width — this is what every update pays regardless of region size.
void BM_IncrementalFold(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  auto before = RandomBuffer(len, 2);
  auto after = RandomBuffer(len, 3);
  codeword_t cw = 0;
  for (auto _ : state) {
    cw ^= CodewordDelta(0, before.data(), after.data(), len);
    benchmark::DoNotOptimize(cw);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * len * 2);
}
BENCHMARK(BM_IncrementalFold)->Arg(8)->Arg(100)->Arg(512)->Arg(4096);

// What maintenance would cost WITHOUT the incremental trick: recompute the
// whole region per update. Compare against BM_IncrementalFold/8 to see why
// the undo-image fold matters (§3.1).
void BM_RecomputeRegionPerUpdate(benchmark::State& state) {
  const size_t region = static_cast<size_t>(state.range(0));
  auto buf = RandomBuffer(region, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CodewordCompute(buf.data(), region));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * region);
}
BENCHMARK(BM_RecomputeRegionPerUpdate)->Arg(64)->Arg(512)->Arg(8192);

// The precheck path: verify a region against its codeword (compute +
// compare). Cost scales with region size — the source of Table 2's
// precheck blow-up at 8K regions.
void BM_PrecheckRegion(benchmark::State& state) {
  const size_t region = static_cast<size_t>(state.range(0));
  auto buf = RandomBuffer(region, 5);
  codeword_t stored = CodewordCompute(buf.data(), region);
  for (auto _ : state) {
    bool ok = CodewordCompute(buf.data(), region) == stored;
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * region);
}
BENCHMARK(BM_PrecheckRegion)->Arg(64)->Arg(512)->Arg(8192);

// CRC32C for contrast: the XOR parity codeword is ~an order of magnitude
// cheaper than a table-driven CRC, which is why the paper uses it on the
// update hot path.
void BM_Crc32cRegion(benchmark::State& state) {
  const size_t region = static_cast<size_t>(state.range(0));
  auto buf = RandomBuffer(region, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(buf.data(), region));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * region);
}
BENCHMARK(BM_Crc32cRegion)->Arg(64)->Arg(512)->Arg(8192);

}  // namespace
}  // namespace cwdb
