// Ablation A2: codeword maintenance microcosts (google-benchmark).
// Measures the primitives behind every scheme in Table 2: computing a
// region codeword from scratch, the incremental XOR fold used at
// endUpdate, and a read precheck of one region — across the paper's
// region sizes (64 / 512 / 8192) and typical update widths. Also reports
// per-kernel-tier GB/s (scalar reference vs wide64 vs SSE2 vs AVX2) so the
// runtime-dispatch speedup lands in the bench trajectory.
//
// `--json` switches to a machine-readable mode that prints one
//   {"name": ..., "bytes_per_sec": ..., "threads": ...}
// line per measurement (for BENCH_*.json trajectory tracking) instead of
// running google-benchmark.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/codeword.h"
#include "common/codeword_kernel.h"
#include "common/crc32.h"
#include "common/random.h"

namespace cwdb {
namespace {

std::vector<uint8_t> RandomBuffer(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<uint8_t> buf(n);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next32());
  return buf;
}

std::vector<CodewordKernelTier> SupportedTiers() {
  std::vector<CodewordKernelTier> tiers;
  for (CodewordKernelTier t :
       {CodewordKernelTier::kScalar, CodewordKernelTier::kWide64,
        CodewordKernelTier::kSSE2, CodewordKernelTier::kAVX2}) {
    if (CodewordKernelSupported(t)) tiers.push_back(t);
  }
  return tiers;
}

void BM_CodewordCompute(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  auto buf = RandomBuffer(size, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CodewordCompute(buf.data(), size));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
  state.SetLabel(CodewordKernelTierName(CodewordKernelActiveTier()));
}
BENCHMARK(BM_CodewordCompute)->Arg(64)->Arg(512)->Arg(8192)->Arg(65536);

// One fixed kernel tier, bypassing dispatch: the per-tier GB/s ladder.
void BM_KernelCompute(benchmark::State& state, CodewordKernelTier tier,
                      size_t size) {
  auto buf = RandomBuffer(size, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CodewordComputeTier(tier, buf.data(), size));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}

// The endUpdate path: fold(before) ^ fold(after) for an update of the
// given width — this is what every update pays regardless of region size.
void BM_IncrementalFold(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  auto before = RandomBuffer(len, 2);
  auto after = RandomBuffer(len, 3);
  codeword_t cw = 0;
  for (auto _ : state) {
    cw ^= CodewordDelta(0, before.data(), after.data(), len);
    benchmark::DoNotOptimize(cw);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * len * 2);
}
BENCHMARK(BM_IncrementalFold)->Arg(8)->Arg(100)->Arg(512)->Arg(4096);

// What maintenance would cost WITHOUT the incremental trick: recompute the
// whole region per update. Compare against BM_IncrementalFold/8 to see why
// the undo-image fold matters (§3.1).
void BM_RecomputeRegionPerUpdate(benchmark::State& state) {
  const size_t region = static_cast<size_t>(state.range(0));
  auto buf = RandomBuffer(region, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CodewordCompute(buf.data(), region));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * region);
}
BENCHMARK(BM_RecomputeRegionPerUpdate)->Arg(64)->Arg(512)->Arg(8192);

// The precheck path: verify a region against its codeword (compute +
// compare). Cost scales with region size — the source of Table 2's
// precheck blow-up at 8K regions.
void BM_PrecheckRegion(benchmark::State& state) {
  const size_t region = static_cast<size_t>(state.range(0));
  auto buf = RandomBuffer(region, 5);
  codeword_t stored = CodewordCompute(buf.data(), region);
  for (auto _ : state) {
    bool ok = CodewordCompute(buf.data(), region) == stored;
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * region);
}
BENCHMARK(BM_PrecheckRegion)->Arg(64)->Arg(512)->Arg(8192);

// CRC32C for contrast: the XOR parity codeword is ~an order of magnitude
// cheaper than a table-driven CRC, which is why the paper uses it on the
// update hot path.
void BM_Crc32cRegion(benchmark::State& state) {
  const size_t region = static_cast<size_t>(state.range(0));
  auto buf = RandomBuffer(region, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(buf.data(), region));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * region);
}
BENCHMARK(BM_Crc32cRegion)->Arg(64)->Arg(512)->Arg(8192);

void RegisterKernelBenchmarks() {
  for (CodewordKernelTier tier : SupportedTiers()) {
    for (size_t size : {64u, 512u, 8192u, 65536u}) {
      std::string name = std::string("BM_KernelCompute/") +
                         CodewordKernelTierName(tier) + "/" +
                         std::to_string(size);
      benchmark::RegisterBenchmark(name.c_str(), &BM_KernelCompute, tier,
                                   size);
    }
  }
}

// ---------------------------------------------------------------------------
// --json mode: self-timed measurements, one JSON object per line.
// ---------------------------------------------------------------------------

/// Calls fn(iters) in growing batches until ~200ms of wall time has
/// accumulated, then returns processed bytes per second.
template <typename Fn>
double MeasureBytesPerSec(uint64_t bytes_per_iter, Fn fn) {
  using clock = std::chrono::steady_clock;
  // Warm-up (page in the buffer, settle dispatch).
  fn(64);
  uint64_t iters = 256;
  double elapsed = 0;
  uint64_t total_iters = 0;
  auto start = clock::now();
  while (elapsed < 0.2) {
    fn(iters);
    total_iters += iters;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
    if (iters < (1ull << 30)) iters *= 2;
  }
  return static_cast<double>(total_iters) *
         static_cast<double>(bytes_per_iter) / elapsed;
}

void PrintJsonLine(const std::string& name, double bytes_per_sec,
                   unsigned threads) {
  std::printf("{\"name\": \"%s\", \"bytes_per_sec\": %.0f, \"threads\": %u}\n",
              name.c_str(), bytes_per_sec, threads);
}

int RunJsonMode() {
  for (CodewordKernelTier tier : SupportedTiers()) {
    for (size_t size : {64u, 512u, 8192u, 65536u}) {
      auto buf = RandomBuffer(size, 1);
      double bps = MeasureBytesPerSec(size, [&](uint64_t iters) {
        codeword_t cw = 0;
        for (uint64_t i = 0; i < iters; ++i) {
          cw ^= CodewordComputeTier(tier, buf.data(), size);
        }
        benchmark::DoNotOptimize(cw);
      });
      PrintJsonLine(std::string("codeword_compute/") +
                        CodewordKernelTierName(tier) + "/" +
                        std::to_string(size),
                    bps, 1);
    }
    // The fold path with a misaligned lane start, as EndUpdate sees it.
    for (size_t len : {100u, 4096u}) {
      auto buf = RandomBuffer(len + 4, 2);
      double bps = MeasureBytesPerSec(len, [&](uint64_t iters) {
        codeword_t cw = 0;
        for (uint64_t i = 0; i < iters; ++i) {
          cw ^= CodewordFoldTier(tier, 1, buf.data() + 1, len);
        }
        benchmark::DoNotOptimize(cw);
      });
      PrintJsonLine(std::string("codeword_fold/") +
                        CodewordKernelTierName(tier) + "/" +
                        std::to_string(len),
                    bps, 1);
    }
  }
  // The dispatched entry point (what production callers get).
  for (size_t size : {512u, 8192u}) {
    auto buf = RandomBuffer(size, 3);
    double bps = MeasureBytesPerSec(size, [&](uint64_t iters) {
      codeword_t cw = 0;
      for (uint64_t i = 0; i < iters; ++i) {
        cw ^= CodewordCompute(buf.data(), size);
      }
      benchmark::DoNotOptimize(cw);
    });
    PrintJsonLine(std::string("codeword_compute/dispatch-") +
                      CodewordKernelTierName(CodewordKernelActiveTier()) +
                      "/" + std::to_string(size),
                  bps, 1);
  }
  return 0;
}

}  // namespace
}  // namespace cwdb

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return cwdb::RunJsonMode();
  }
  benchmark::Initialize(&argc, argv);
  cwdb::RegisterKernelBenchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
