// TPC-B thread-scaling curve over the sharded engine: per-shard protection
// latches + codeword tables, per-shard lock-table segments, per-shard WAL
// append staging drained by one group-commit thread. Each transaction is a
// single TPC-B operation (ops_per_txn = 1), so every transaction ends in a
// log force — the configuration where the pre-sharding engine serializes
// completely. Throughput then scales with threads because concurrent
// committers piggyback on one fdatasync per group-commit round (the
// dominant cost on a disk-backed directory) while the sharded staging and
// lock tables keep the CPU side contention-free.
//
// Usage: bench_tpcb_scaling [--smoke] [--json] [--dir <path>] [--shards N]
//   --smoke   ~10x fewer transactions per point (CI budget).
//   --json    one {"name", "threads", "shards", "txns_per_sec",
//             "p99_commit_latency_ns"} object per line (the BENCH_*.json
//             trajectory schema).
//   --dir     parent directory for the per-point databases. Default
//             /var/tmp — a disk-backed filesystem; on tmpfs the fsync cost
//             this bench studies mostly vanishes.
//   --shards  engine shard count (default 4).
//   --trace   after the measured passes, run one extra traced pass at the
//             highest thread count (sample rate 1.0, fixed seed) and write
//             tpcb_spans.json (Chrome/Perfetto trace-event JSON — load at
//             https://ui.perfetto.dev) plus tpcb_attribution.json (the
//             per-stage p50/p99 latency shares CI diffs for drift) into
//             the --trace-out directory.
//   --trace-out <path>  output directory for the --trace artifacts
//             (default ".").
//   --history enable the metrics-history sampler + SLO engine on the
//             traced pass and copy metrics_history.bin, metrics.json and
//             slo_report.json into --trace-out, so CI can render
//             `cwdb_ctl top --once` and gate on the SLO report. Implies
//             nothing for the measured passes (they stay sampler-free).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ckpt/checkpoint.h"
#include "common/file_util.h"
#include "core/database.h"
#include "obs/trace_export.h"
#include "workload/tpcb.h"

namespace cwdb {
namespace {

struct Point {
  int threads = 0;
  size_t shards = 0;
  double txns_per_sec = 0;
  uint64_t p99_commit_ns = 0;
};

/// Span artifacts of a traced pass (--trace).
struct TraceArtifacts {
  std::string chrome_json;       ///< Perfetto-loadable trace-event JSON.
  std::string attribution_json;  ///< Per-stage p50/p99 shares.
  size_t spans = 0;
  bool history = false;        ///< Sample history + SLOs during the pass.
  std::string history_bin;     ///< metrics_history.bin contents (--history).
  std::string metrics_json;    ///< metrics.json contents (--history).
  std::string slo_json;        ///< slo_report.json contents (--history).
};

Point RunPoint(const std::string& dir, int threads, size_t shards,
               uint64_t txns, TraceArtifacts* trace_out = nullptr) {
  TpcbConfig cfg;
  cfg.accounts = 5000;
  cfg.tellers = 500;
  cfg.branches = 50;
  // One operation per transaction: every transaction pays a commit-time
  // log force, the worst case for an unsharded engine and the case the
  // group-commit drainer is built for.
  cfg.ops_per_txn = 1;
  cfg.history_capacity = 2 * txns + 1000;

  DatabaseOptions opts;
  opts.path = dir;
  opts.page_size = 8192;
  opts.arena_size = (cfg.MinArenaSize(opts.page_size) + (4u << 20) + 8191) &
                    ~uint64_t{8191};
  opts.protection.scheme = ProtectionScheme::kDataCodeword;
  opts.protection.region_size = 512;
  opts.shards = shards;
  if (trace_out != nullptr) {
    // Trace every transaction of the traced pass under the default fixed
    // seed, so two runs of the same binary sample identically and the
    // attribution artifact is comparable across CI runs.
    opts.trace_sample_rate = 1.0;
    opts.trace_ring_capacity = 1 << 16;
    if (trace_out->history) {
      // Fast cadence so even a --smoke traced pass (a few seconds) puts a
      // few dozen samples in the ring — enough for `top` sparklines and
      // multi-sample SLO windows.
      opts.history.interval_ms = 50;
      opts.slo.enabled = true;
    }
  }
  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  TpcbWorkload workload(db->get(), cfg);
  if (!workload.Setup().ok()) std::exit(1);

  // Warm-up outside the measurement, then drop its latency samples so the
  // p99 covers only the measured transactions.
  if (!workload.RunConcurrent(threads, 50 * threads).ok()) std::exit(1);
  (*db)->metrics()->histogram("txn.commit_latency_ns")->Reset();

  auto rate = workload.RunConcurrent(threads, txns);
  if (!rate.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 rate.status().ToString().c_str());
    std::exit(1);
  }

  Point p;
  p.threads = threads;
  p.shards = (*db)->shard_map().shard_count();
  p.txns_per_sec = *rate;  // ops/s == txn/s at one op per transaction.
  p.p99_commit_ns =
      (*db)->metrics()->histogram("txn.commit_latency_ns")->Capture().p99;
  if (trace_out != nullptr) {
    MetricsRegistry* metrics = (*db)->metrics();
    SpanDump dump;
    dump.captured_mono_ns = NowNs();
    dump.captured_wall_ns = WallNowNs();
    dump.boot_mono_ns = metrics->boot_mono_ns();
    dump.boot_wall_ns = metrics->boot_wall_ns();
    dump.spans = metrics->tracer()->Snapshot();
    trace_out->spans = dump.spans.size();
    trace_out->chrome_json = SpansToChromeJson(dump);
    trace_out->attribution_json =
        AttributionToJson(ComputeAttribution(dump.spans));
    if (trace_out->history) {
      // One last sample so the final transaction totals are in the ring,
      // then persist and grab the artifacts before the directory goes.
      (*db)->history()->SampleNow();
      auto json = (*db)->DumpMetrics();
      if (!json.ok()) {
        std::fprintf(stderr, "metrics dump failed: %s\n",
                     json.status().ToString().c_str());
        std::exit(1);
      }
      trace_out->metrics_json = *json;
      DbFiles files(dir);
      (void)ReadFileToString(files.MetricsHistoryFile(),
                             &trace_out->history_bin);
      (void)ReadFileToString(files.SloReportFile(), &trace_out->slo_json);
    }
  }
  DumpDbMetricsIfRequested(db->get());
  // Remove this point's database before the next one runs. The checkpoint
  // images are megabytes of dirty page cache per point; left on disk, their
  // background writeback competes with the next points' fdatasyncs and
  // skews the tail of every pass.
  db->reset();
  std::string cleanup = std::string("rm -rf '") + dir + "'";
  (void)std::system(cleanup.c_str());
  return p;
}

}  // namespace
}  // namespace cwdb

int main(int argc, char** argv) {
  using namespace cwdb;
  const bool json = JsonMode(argc, argv);
  bool smoke = false;
  bool trace = false;
  bool history = false;
  size_t shards = 4;
  int trials_override = 0;
  std::string parent = "/var/tmp";
  std::string trace_out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--trace") == 0) trace = true;
    if (std::strcmp(argv[i], "--history") == 0) history = true;
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out_dir = argv[++i];
    }
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      parent = argv[++i];
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<size_t>(std::atoi(argv[++i]));
    }
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials_override = std::atoi(argv[++i]);
    }
  }
  if (history) trace = true;  // History rides the traced pass.
  const uint64_t txns_per_thread = smoke ? 300 : 3000;
  const int trials = trials_override > 0 ? trials_override : (smoke ? 1 : 5);

  std::vector<int> thread_counts = {1, 2, 4};
  unsigned hw = std::thread::hardware_concurrency();
  int max_threads = static_cast<int>(hw > 8 ? hw : 8);
  if (max_threads > thread_counts.back()) {
    thread_counts.push_back(max_threads);
  }

  std::string tmpl = parent + "/cwdb_bench_scaling_XXXXXX";
  char* base = ::mkdtemp(tmpl.data());
  if (base == nullptr) {
    std::fprintf(stderr, "mkdtemp under %s failed\n", parent.c_str());
    return 1;
  }

  if (!json) {
    std::printf("TPC-B scaling, one op per transaction (commit-bound), "
                "%zu shards, %" PRIu64 " txns/thread\n",
                shards, txns_per_thread);
    std::printf("%8s %8s %12s %18s\n", "threads", "shards", "txn/s",
                "p99 commit (us)");
  }
  // The quantity this bench exists for is the speedup curve, and on a
  // virtual disk the absolute rates drift ±25% on a timescale of seconds
  // as host cache state changes. Points inside one pass run back to back,
  // so the drift is common mode there and cancels in the ratio; mixing
  // points from different passes does not. Hence: run whole passes, rank
  // them by their own 4-vs-1 speedup, and report the median pass as one
  // coherent snapshot.
  auto pass_speedup = [](const std::vector<Point>& pass) {
    double base = 0, at4 = 0;
    for (const Point& p : pass) {
      if (p.threads == 1) base = p.txns_per_sec;
      if (p.threads == 4) at4 = p.txns_per_sec;
    }
    return base > 0 ? at4 / base : 0.0;
  };
  std::vector<std::vector<Point>> passes(trials);
  for (int r = 0; r < trials; ++r) {
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      int t = thread_counts[i];
      std::string dir = std::string(base) + "/t" + std::to_string(t) + "_r" +
                        std::to_string(r);
      passes[r].push_back(RunPoint(dir, t, shards, txns_per_thread * t));
    }
    std::fprintf(stderr, "pass %d:", r);
    for (const Point& p : passes[r]) {
      std::fprintf(stderr, " %dT=%.0f", p.threads, p.txns_per_sec);
    }
    std::fprintf(stderr, "  (4T speedup %.2fx)\n", pass_speedup(passes[r]));
  }
  std::sort(passes.begin(), passes.end(),
            [&](const std::vector<Point>& a, const std::vector<Point>& b) {
              return pass_speedup(a) < pass_speedup(b);
            });
  const std::vector<Point>& chosen = passes[passes.size() / 2];

  double base_rate = 0;
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    int t = thread_counts[i];
    const Point& p = chosen[i];
    if (t == 1) base_rate = p.txns_per_sec;
    if (json) {
      std::printf("{\"name\": \"tpcb_scaling\", \"threads\": %d, "
                  "\"shards\": %zu, \"txns_per_sec\": %.1f, "
                  "\"p99_commit_latency_ns\": %" PRIu64 "}\n",
                  p.threads, p.shards, p.txns_per_sec, p.p99_commit_ns);
    } else {
      std::printf("%8d %8zu %12.1f %18.1f", p.threads, p.shards,
                  p.txns_per_sec, p.p99_commit_ns / 1000.0);
      if (t != 1 && base_rate > 0) {
        std::printf("   (%.2fx vs 1 thread)", p.txns_per_sec / base_rate);
      }
      std::printf("\n");
    }
    std::fflush(stdout);
  }
  if (trace) {
    // One extra pass, fully traced, outside the measured trials (the span
    // rings cost a little memory traffic; the timing points above stay
    // untouched). The attribution artifact is what CI diffs for drift.
    const int t = thread_counts.back();
    TraceArtifacts artifacts;
    artifacts.history = history;
    std::string dir = std::string(base) + "/traced";
    (void)RunPoint(dir, t, shards, txns_per_thread * t, &artifacts);
    Status s1 = WriteFileAtomic(trace_out_dir + "/tpcb_spans.json",
                                artifacts.chrome_json);
    Status s2 = WriteFileAtomic(trace_out_dir + "/tpcb_attribution.json",
                                artifacts.attribution_json);
    if (!s1.ok() || !s2.ok()) {
      std::fprintf(stderr, "trace artifacts: %s / %s\n",
                   s1.ToString().c_str(), s2.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "traced pass: %zu spans -> %s/tpcb_spans.json, "
                 "attribution -> %s/tpcb_attribution.json\n",
                 artifacts.spans, trace_out_dir.c_str(),
                 trace_out_dir.c_str());
    if (history) {
      // The history/SLO artifacts feed `cwdb_ctl top --once` and the CI
      // SLO gate. An empty ring here means the sampler never ran — fail
      // loudly rather than upload hollow artifacts.
      if (artifacts.history_bin.empty()) {
        std::fprintf(stderr, "--history produced no metrics_history.bin\n");
        return 1;
      }
      Status h1 = WriteFileAtomic(trace_out_dir + "/metrics_history.bin",
                                  artifacts.history_bin);
      Status h2 = WriteFileAtomic(trace_out_dir + "/metrics.json",
                                  artifacts.metrics_json);
      Status h3 = WriteFileAtomic(trace_out_dir + "/slo_report.json",
                                  artifacts.slo_json);
      if (!h1.ok() || !h2.ok() || !h3.ok()) {
        std::fprintf(stderr, "history artifacts: %s / %s / %s\n",
                     h1.ToString().c_str(), h2.ToString().c_str(),
                     h3.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "history: %zu-byte ring -> %s/metrics_history.bin, "
                   "slo report -> %s/slo_report.json\n",
                   artifacts.history_bin.size(), trace_out_dir.c_str(),
                   trace_out_dir.c_str());
    }
  }
  std::string cleanup = std::string("rm -rf '") + base + "'";
  (void)std::system(cleanup.c_str());
  return 0;
}
