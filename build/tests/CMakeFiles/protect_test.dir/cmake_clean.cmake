file(REMOVE_RECURSE
  "CMakeFiles/protect_test.dir/protect_test.cc.o"
  "CMakeFiles/protect_test.dir/protect_test.cc.o.d"
  "protect_test"
  "protect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
