# Empty dependencies file for prior_state_test.
# This may be replaced when dependencies are built.
