file(REMOVE_RECURSE
  "CMakeFiles/prior_state_test.dir/prior_state_test.cc.o"
  "CMakeFiles/prior_state_test.dir/prior_state_test.cc.o.d"
  "prior_state_test"
  "prior_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prior_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
