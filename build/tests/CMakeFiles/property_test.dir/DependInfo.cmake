
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/property_test.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blob/CMakeFiles/cwdb_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/cwdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cwdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/faultinject/CMakeFiles/cwdb_faultinject.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cwdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/cwdb_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/cwdb_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/cwdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/protect/CMakeFiles/cwdb_protect.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/cwdb_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cwdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cwdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
