file(REMOVE_RECURSE
  "CMakeFiles/corruption_structural_test.dir/corruption_structural_test.cc.o"
  "CMakeFiles/corruption_structural_test.dir/corruption_structural_test.cc.o.d"
  "corruption_structural_test"
  "corruption_structural_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corruption_structural_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
