file(REMOVE_RECURSE
  "CMakeFiles/corruption_recovery_test.dir/corruption_recovery_test.cc.o"
  "CMakeFiles/corruption_recovery_test.dir/corruption_recovery_test.cc.o.d"
  "corruption_recovery_test"
  "corruption_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corruption_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
