# Empty dependencies file for cwdb_ctl.
# This may be replaced when dependencies are built.
