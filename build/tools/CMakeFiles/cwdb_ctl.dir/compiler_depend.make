# Empty compiler generated dependencies file for cwdb_ctl.
# This may be replaced when dependencies are built.
