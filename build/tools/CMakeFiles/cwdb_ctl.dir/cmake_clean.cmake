file(REMOVE_RECURSE
  "CMakeFiles/cwdb_ctl.dir/cwdb_ctl.cc.o"
  "CMakeFiles/cwdb_ctl.dir/cwdb_ctl.cc.o.d"
  "cwdb_ctl"
  "cwdb_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwdb_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
