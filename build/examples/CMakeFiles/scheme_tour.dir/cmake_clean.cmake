file(REMOVE_RECURSE
  "CMakeFiles/scheme_tour.dir/scheme_tour.cpp.o"
  "CMakeFiles/scheme_tour.dir/scheme_tour.cpp.o.d"
  "scheme_tour"
  "scheme_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
