file(REMOVE_RECURSE
  "CMakeFiles/logical_corruption.dir/logical_corruption.cpp.o"
  "CMakeFiles/logical_corruption.dir/logical_corruption.cpp.o.d"
  "logical_corruption"
  "logical_corruption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_corruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
