# Empty compiler generated dependencies file for logical_corruption.
# This may be replaced when dependencies are built.
