file(REMOVE_RECURSE
  "CMakeFiles/corruption_forensics.dir/corruption_forensics.cpp.o"
  "CMakeFiles/corruption_forensics.dir/corruption_forensics.cpp.o.d"
  "corruption_forensics"
  "corruption_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corruption_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
