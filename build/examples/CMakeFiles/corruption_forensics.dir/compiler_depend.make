# Empty compiler generated dependencies file for corruption_forensics.
# This may be replaced when dependencies are built.
