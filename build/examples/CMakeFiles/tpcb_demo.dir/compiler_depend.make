# Empty compiler generated dependencies file for tpcb_demo.
# This may be replaced when dependencies are built.
