# Empty dependencies file for bench_readlog.
# This may be replaced when dependencies are built.
