file(REMOVE_RECURSE
  "CMakeFiles/bench_readlog.dir/bench_readlog.cc.o"
  "CMakeFiles/bench_readlog.dir/bench_readlog.cc.o.d"
  "bench_readlog"
  "bench_readlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_readlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
