# Empty dependencies file for bench_region_sweep.
# This may be replaced when dependencies are built.
