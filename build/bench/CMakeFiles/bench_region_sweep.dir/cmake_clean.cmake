file(REMOVE_RECURSE
  "CMakeFiles/bench_region_sweep.dir/bench_region_sweep.cc.o"
  "CMakeFiles/bench_region_sweep.dir/bench_region_sweep.cc.o.d"
  "bench_region_sweep"
  "bench_region_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_region_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
