file(REMOVE_RECURSE
  "CMakeFiles/bench_detection_latency.dir/bench_detection_latency.cc.o"
  "CMakeFiles/bench_detection_latency.dir/bench_detection_latency.cc.o.d"
  "bench_detection_latency"
  "bench_detection_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detection_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
