file(REMOVE_RECURSE
  "CMakeFiles/bench_codeword.dir/bench_codeword.cc.o"
  "CMakeFiles/bench_codeword.dir/bench_codeword.cc.o.d"
  "bench_codeword"
  "bench_codeword.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codeword.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
