# Empty dependencies file for bench_codeword.
# This may be replaced when dependencies are built.
