# Empty dependencies file for bench_audit.
# This may be replaced when dependencies are built.
