file(REMOVE_RECURSE
  "CMakeFiles/bench_mprotect.dir/bench_mprotect.cc.o"
  "CMakeFiles/bench_mprotect.dir/bench_mprotect.cc.o.d"
  "bench_mprotect"
  "bench_mprotect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mprotect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
