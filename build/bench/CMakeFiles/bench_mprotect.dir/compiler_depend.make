# Empty compiler generated dependencies file for bench_mprotect.
# This may be replaced when dependencies are built.
