# Empty dependencies file for bench_read_mix.
# This may be replaced when dependencies are built.
