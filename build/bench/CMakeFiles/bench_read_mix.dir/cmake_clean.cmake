file(REMOVE_RECURSE
  "CMakeFiles/bench_read_mix.dir/bench_read_mix.cc.o"
  "CMakeFiles/bench_read_mix.dir/bench_read_mix.cc.o.d"
  "bench_read_mix"
  "bench_read_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_read_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
