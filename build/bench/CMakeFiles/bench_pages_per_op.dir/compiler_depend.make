# Empty compiler generated dependencies file for bench_pages_per_op.
# This may be replaced when dependencies are built.
