file(REMOVE_RECURSE
  "CMakeFiles/bench_pages_per_op.dir/bench_pages_per_op.cc.o"
  "CMakeFiles/bench_pages_per_op.dir/bench_pages_per_op.cc.o.d"
  "bench_pages_per_op"
  "bench_pages_per_op.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pages_per_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
