
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protect/codeword_protection.cc" "src/protect/CMakeFiles/cwdb_protect.dir/codeword_protection.cc.o" "gcc" "src/protect/CMakeFiles/cwdb_protect.dir/codeword_protection.cc.o.d"
  "/root/repo/src/protect/codeword_table.cc" "src/protect/CMakeFiles/cwdb_protect.dir/codeword_table.cc.o" "gcc" "src/protect/CMakeFiles/cwdb_protect.dir/codeword_table.cc.o.d"
  "/root/repo/src/protect/hardware_protection.cc" "src/protect/CMakeFiles/cwdb_protect.dir/hardware_protection.cc.o" "gcc" "src/protect/CMakeFiles/cwdb_protect.dir/hardware_protection.cc.o.d"
  "/root/repo/src/protect/protection.cc" "src/protect/CMakeFiles/cwdb_protect.dir/protection.cc.o" "gcc" "src/protect/CMakeFiles/cwdb_protect.dir/protection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cwdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cwdb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
