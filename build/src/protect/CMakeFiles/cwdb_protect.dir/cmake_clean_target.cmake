file(REMOVE_RECURSE
  "libcwdb_protect.a"
)
