file(REMOVE_RECURSE
  "CMakeFiles/cwdb_protect.dir/codeword_protection.cc.o"
  "CMakeFiles/cwdb_protect.dir/codeword_protection.cc.o.d"
  "CMakeFiles/cwdb_protect.dir/codeword_table.cc.o"
  "CMakeFiles/cwdb_protect.dir/codeword_table.cc.o.d"
  "CMakeFiles/cwdb_protect.dir/hardware_protection.cc.o"
  "CMakeFiles/cwdb_protect.dir/hardware_protection.cc.o.d"
  "CMakeFiles/cwdb_protect.dir/protection.cc.o"
  "CMakeFiles/cwdb_protect.dir/protection.cc.o.d"
  "libcwdb_protect.a"
  "libcwdb_protect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwdb_protect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
