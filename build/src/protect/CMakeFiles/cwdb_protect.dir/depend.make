# Empty dependencies file for cwdb_protect.
# This may be replaced when dependencies are built.
