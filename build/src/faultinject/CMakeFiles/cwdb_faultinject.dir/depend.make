# Empty dependencies file for cwdb_faultinject.
# This may be replaced when dependencies are built.
