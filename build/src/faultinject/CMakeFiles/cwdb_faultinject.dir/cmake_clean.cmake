file(REMOVE_RECURSE
  "CMakeFiles/cwdb_faultinject.dir/fault_injector.cc.o"
  "CMakeFiles/cwdb_faultinject.dir/fault_injector.cc.o.d"
  "libcwdb_faultinject.a"
  "libcwdb_faultinject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwdb_faultinject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
