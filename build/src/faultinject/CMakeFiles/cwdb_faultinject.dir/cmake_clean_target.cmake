file(REMOVE_RECURSE
  "libcwdb_faultinject.a"
)
