file(REMOVE_RECURSE
  "libcwdb_workload.a"
)
