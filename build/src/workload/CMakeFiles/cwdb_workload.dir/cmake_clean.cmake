file(REMOVE_RECURSE
  "CMakeFiles/cwdb_workload.dir/tpcb.cc.o"
  "CMakeFiles/cwdb_workload.dir/tpcb.cc.o.d"
  "libcwdb_workload.a"
  "libcwdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
