# Empty compiler generated dependencies file for cwdb_workload.
# This may be replaced when dependencies are built.
