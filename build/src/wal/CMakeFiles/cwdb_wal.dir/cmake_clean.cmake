file(REMOVE_RECURSE
  "CMakeFiles/cwdb_wal.dir/log_record.cc.o"
  "CMakeFiles/cwdb_wal.dir/log_record.cc.o.d"
  "CMakeFiles/cwdb_wal.dir/system_log.cc.o"
  "CMakeFiles/cwdb_wal.dir/system_log.cc.o.d"
  "libcwdb_wal.a"
  "libcwdb_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwdb_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
