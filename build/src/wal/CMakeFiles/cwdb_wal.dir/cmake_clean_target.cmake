file(REMOVE_RECURSE
  "libcwdb_wal.a"
)
