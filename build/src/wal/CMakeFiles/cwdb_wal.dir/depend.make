# Empty dependencies file for cwdb_wal.
# This may be replaced when dependencies are built.
