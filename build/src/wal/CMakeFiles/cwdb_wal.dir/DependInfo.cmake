
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wal/log_record.cc" "src/wal/CMakeFiles/cwdb_wal.dir/log_record.cc.o" "gcc" "src/wal/CMakeFiles/cwdb_wal.dir/log_record.cc.o.d"
  "/root/repo/src/wal/system_log.cc" "src/wal/CMakeFiles/cwdb_wal.dir/system_log.cc.o" "gcc" "src/wal/CMakeFiles/cwdb_wal.dir/system_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cwdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cwdb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
