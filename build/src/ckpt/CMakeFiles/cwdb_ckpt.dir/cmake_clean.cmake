file(REMOVE_RECURSE
  "CMakeFiles/cwdb_ckpt.dir/archive.cc.o"
  "CMakeFiles/cwdb_ckpt.dir/archive.cc.o.d"
  "CMakeFiles/cwdb_ckpt.dir/att_codec.cc.o"
  "CMakeFiles/cwdb_ckpt.dir/att_codec.cc.o.d"
  "CMakeFiles/cwdb_ckpt.dir/checkpoint.cc.o"
  "CMakeFiles/cwdb_ckpt.dir/checkpoint.cc.o.d"
  "libcwdb_ckpt.a"
  "libcwdb_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwdb_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
