file(REMOVE_RECURSE
  "libcwdb_ckpt.a"
)
