# Empty compiler generated dependencies file for cwdb_ckpt.
# This may be replaced when dependencies are built.
