file(REMOVE_RECURSE
  "libcwdb_core.a"
)
