# Empty dependencies file for cwdb_core.
# This may be replaced when dependencies are built.
