file(REMOVE_RECURSE
  "CMakeFiles/cwdb_core.dir/auditor.cc.o"
  "CMakeFiles/cwdb_core.dir/auditor.cc.o.d"
  "CMakeFiles/cwdb_core.dir/database.cc.o"
  "CMakeFiles/cwdb_core.dir/database.cc.o.d"
  "CMakeFiles/cwdb_core.dir/lineage.cc.o"
  "CMakeFiles/cwdb_core.dir/lineage.cc.o.d"
  "libcwdb_core.a"
  "libcwdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
