file(REMOVE_RECURSE
  "CMakeFiles/cwdb_txn.dir/lock_manager.cc.o"
  "CMakeFiles/cwdb_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/cwdb_txn.dir/table_ops.cc.o"
  "CMakeFiles/cwdb_txn.dir/table_ops.cc.o.d"
  "CMakeFiles/cwdb_txn.dir/transaction.cc.o"
  "CMakeFiles/cwdb_txn.dir/transaction.cc.o.d"
  "CMakeFiles/cwdb_txn.dir/txn_manager.cc.o"
  "CMakeFiles/cwdb_txn.dir/txn_manager.cc.o.d"
  "libcwdb_txn.a"
  "libcwdb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwdb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
