file(REMOVE_RECURSE
  "libcwdb_txn.a"
)
