# Empty compiler generated dependencies file for cwdb_txn.
# This may be replaced when dependencies are built.
