
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/lock_manager.cc" "src/txn/CMakeFiles/cwdb_txn.dir/lock_manager.cc.o" "gcc" "src/txn/CMakeFiles/cwdb_txn.dir/lock_manager.cc.o.d"
  "/root/repo/src/txn/table_ops.cc" "src/txn/CMakeFiles/cwdb_txn.dir/table_ops.cc.o" "gcc" "src/txn/CMakeFiles/cwdb_txn.dir/table_ops.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "src/txn/CMakeFiles/cwdb_txn.dir/transaction.cc.o" "gcc" "src/txn/CMakeFiles/cwdb_txn.dir/transaction.cc.o.d"
  "/root/repo/src/txn/txn_manager.cc" "src/txn/CMakeFiles/cwdb_txn.dir/txn_manager.cc.o" "gcc" "src/txn/CMakeFiles/cwdb_txn.dir/txn_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cwdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cwdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/cwdb_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/protect/CMakeFiles/cwdb_protect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
