# Empty dependencies file for cwdb_index.
# This may be replaced when dependencies are built.
