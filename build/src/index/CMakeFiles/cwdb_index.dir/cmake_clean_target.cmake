file(REMOVE_RECURSE
  "libcwdb_index.a"
)
