file(REMOVE_RECURSE
  "CMakeFiles/cwdb_index.dir/hash_index.cc.o"
  "CMakeFiles/cwdb_index.dir/hash_index.cc.o.d"
  "CMakeFiles/cwdb_index.dir/ordered_index.cc.o"
  "CMakeFiles/cwdb_index.dir/ordered_index.cc.o.d"
  "libcwdb_index.a"
  "libcwdb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwdb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
