file(REMOVE_RECURSE
  "CMakeFiles/cwdb_blob.dir/blob_store.cc.o"
  "CMakeFiles/cwdb_blob.dir/blob_store.cc.o.d"
  "libcwdb_blob.a"
  "libcwdb_blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwdb_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
