file(REMOVE_RECURSE
  "libcwdb_blob.a"
)
