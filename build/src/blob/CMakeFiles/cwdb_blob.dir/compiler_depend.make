# Empty compiler generated dependencies file for cwdb_blob.
# This may be replaced when dependencies are built.
