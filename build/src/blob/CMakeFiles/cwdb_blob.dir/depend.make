# Empty dependencies file for cwdb_blob.
# This may be replaced when dependencies are built.
