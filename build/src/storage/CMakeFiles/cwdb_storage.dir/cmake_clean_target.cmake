file(REMOVE_RECURSE
  "libcwdb_storage.a"
)
