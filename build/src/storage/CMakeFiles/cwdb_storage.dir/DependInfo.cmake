
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/arena.cc" "src/storage/CMakeFiles/cwdb_storage.dir/arena.cc.o" "gcc" "src/storage/CMakeFiles/cwdb_storage.dir/arena.cc.o.d"
  "/root/repo/src/storage/db_image.cc" "src/storage/CMakeFiles/cwdb_storage.dir/db_image.cc.o" "gcc" "src/storage/CMakeFiles/cwdb_storage.dir/db_image.cc.o.d"
  "/root/repo/src/storage/integrity.cc" "src/storage/CMakeFiles/cwdb_storage.dir/integrity.cc.o" "gcc" "src/storage/CMakeFiles/cwdb_storage.dir/integrity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cwdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
