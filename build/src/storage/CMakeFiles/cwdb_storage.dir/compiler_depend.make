# Empty compiler generated dependencies file for cwdb_storage.
# This may be replaced when dependencies are built.
