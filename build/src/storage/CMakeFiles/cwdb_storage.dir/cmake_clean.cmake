file(REMOVE_RECURSE
  "CMakeFiles/cwdb_storage.dir/arena.cc.o"
  "CMakeFiles/cwdb_storage.dir/arena.cc.o.d"
  "CMakeFiles/cwdb_storage.dir/db_image.cc.o"
  "CMakeFiles/cwdb_storage.dir/db_image.cc.o.d"
  "CMakeFiles/cwdb_storage.dir/integrity.cc.o"
  "CMakeFiles/cwdb_storage.dir/integrity.cc.o.d"
  "libcwdb_storage.a"
  "libcwdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
