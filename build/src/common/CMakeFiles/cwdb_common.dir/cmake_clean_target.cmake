file(REMOVE_RECURSE
  "libcwdb_common.a"
)
