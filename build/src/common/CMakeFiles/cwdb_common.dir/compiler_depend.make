# Empty compiler generated dependencies file for cwdb_common.
# This may be replaced when dependencies are built.
