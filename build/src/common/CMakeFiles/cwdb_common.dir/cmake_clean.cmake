file(REMOVE_RECURSE
  "CMakeFiles/cwdb_common.dir/codeword.cc.o"
  "CMakeFiles/cwdb_common.dir/codeword.cc.o.d"
  "CMakeFiles/cwdb_common.dir/crc32.cc.o"
  "CMakeFiles/cwdb_common.dir/crc32.cc.o.d"
  "CMakeFiles/cwdb_common.dir/file_util.cc.o"
  "CMakeFiles/cwdb_common.dir/file_util.cc.o.d"
  "CMakeFiles/cwdb_common.dir/status.cc.o"
  "CMakeFiles/cwdb_common.dir/status.cc.o.d"
  "libcwdb_common.a"
  "libcwdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
