file(REMOVE_RECURSE
  "libcwdb_recovery.a"
)
