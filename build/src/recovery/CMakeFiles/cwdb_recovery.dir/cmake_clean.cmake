file(REMOVE_RECURSE
  "CMakeFiles/cwdb_recovery.dir/corrupt_note.cc.o"
  "CMakeFiles/cwdb_recovery.dir/corrupt_note.cc.o.d"
  "CMakeFiles/cwdb_recovery.dir/recovery.cc.o"
  "CMakeFiles/cwdb_recovery.dir/recovery.cc.o.d"
  "libcwdb_recovery.a"
  "libcwdb_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwdb_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
