# Empty compiler generated dependencies file for cwdb_recovery.
# This may be replaced when dependencies are built.
