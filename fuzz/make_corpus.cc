// Regenerates the checked-in seed corpora under fuzz/corpus/. Each seed is
// a *valid* artifact produced by the real encoder, so the fuzzers start
// from deep inside the accepting grammar instead of spending their budget
// rediscovering the magic bytes.
//
//   make_corpus <repo-root>
//
// writes fuzz/corpus/parity_sidecar/seed-valid and
// fuzz/corpus/history_load/seed-valid under <repo-root>.

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/file_util.h"
#include "obs/history.h"
#include "obs/metrics.h"
#include "protect/parity_repair.h"

namespace cwdb {
namespace {

int Run(const std::string& root) {
  // Parity sidecar: a small self-consistent geometry (4 KiB arena, 256 B
  // regions grouped 4-wide, one shard) over an all-zero image. The
  // codewords and parity columns of a zero arena are all zero, so the seed
  // both decodes and verifies clean.
  ParitySidecar sc;
  sc.ck_end = 4096;
  sc.arena_size = 4096;
  sc.region_size = 256;
  sc.group_regions = 4;
  sc.shards.emplace_back(0, 4096);
  sc.codewords.assign(sc.arena_size / sc.region_size, 0);
  sc.columns.assign(
      (sc.codewords.size() + sc.group_regions - 1) / sc.group_regions *
          sc.region_size,
      '\0');
  std::string blob = EncodeParitySidecar(sc);
  Status s = WriteFileAtomic(root + "/fuzz/corpus/parity_sidecar/seed-valid",
                             blob);
  if (!s.ok()) {
    std::fprintf(stderr, "parity seed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Metrics-history ring: a few samples of a registry with every metric
  // kind present, saved through the real delta/CRC codec.
  MetricsRegistry metrics;
  Counter* commits = metrics.counter("txn.commits");
  Gauge* active = metrics.gauge("txn.active");
  Histogram* latency = metrics.histogram("txn.commit_latency_ns");
  HistoryOptions opts;
  opts.retention = 16;
  MetricsHistory history(&metrics, opts);
  for (int i = 0; i < 8; ++i) {
    commits->Add(100 + i);
    active->Set(i % 3);
    latency->Record(1000u << i);
    history.SampleNow();
  }
  const std::string path = root + "/fuzz/corpus/history_load/seed-valid";
  s = history.SaveTo(path);
  if (!s.ok()) {
    std::fprintf(stderr, "history seed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("corpora written under %s/fuzz/corpus\n", root.c_str());
  return 0;
}

}  // namespace
}  // namespace cwdb

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_corpus <repo-root>\n");
    return 2;
  }
  return cwdb::Run(argv[1]);
}
