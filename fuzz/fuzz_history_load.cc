// Fuzzes the metrics_history.bin ring loader: LoadFromBuffer ingests a
// file written by a prior incarnation (so possibly torn at any byte or
// bit-flipped in place) and must load the longest valid prefix of any
// input without crashing. A loaded ring must also render and serialize.

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/history.h"
#include "obs/metrics.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  cwdb::MetricsRegistry metrics;
  cwdb::HistoryOptions opts;
  opts.retention = 64;  // Bounded ring however many samples the input holds.
  cwdb::MetricsHistory history(&metrics, opts);
  history.LoadFromBuffer(
      std::string(reinterpret_cast<const char*>(data), size));

  // Whatever loaded must be renderable and re-serializable.
  if (history.size() > 0) {
    (void)history.RenderTop(history.LatestMono());
    (void)history.QueryJson("series=txn.commits&window_s=60");
  }
  return 0;
}
