// Fuzzes the ckpt_{A,B}.parity sidecar codec: DecodeParitySidecar must
// reject or accept arbitrary bytes without crashing, and an accepted
// sidecar must survive a verify pass over a synthetic arena and re-encode
// to something that decodes again (round-trip sanity on whatever geometry
// the fuzzer synthesized).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "protect/parity_repair.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  cwdb::Result<cwdb::ParitySidecar> decoded =
      cwdb::DecodeParitySidecar(cwdb::Slice(
          reinterpret_cast<const char*>(data), size));
  if (!decoded.ok()) return 0;
  const cwdb::ParitySidecar& sc = decoded.value();

  // An accepted sidecar's geometry must be usable: run the verifier over a
  // zero arena (bounded — the decoder is supposed to reject absurd sizes).
  if (sc.arena_size > 0 && sc.arena_size <= (1u << 20) &&
      sc.region_size > 0) {
    std::vector<uint8_t> arena(sc.arena_size, 0);
    uint64_t verified = 0;
    std::vector<cwdb::CorruptRange> bad =
        cwdb::VerifyImageAgainstSidecar(sc, arena.data(), &verified);
    cwdb::ImageRepairReport report;
    cwdb::RepairImageWithSidecar(sc, arena.data(), bad, /*apply=*/true,
                                 &report);
  }

  // Round-trip: what we accepted must re-encode to valid bytes.
  std::string bytes = cwdb::EncodeParitySidecar(sc);
  cwdb::Result<cwdb::ParitySidecar> again =
      cwdb::DecodeParitySidecar(cwdb::Slice(bytes));
  if (!again.ok()) __builtin_trap();
  return 0;
}
