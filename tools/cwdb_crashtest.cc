// cwdb_crashtest: crash-point torture driver. Sweeps every compiled-in
// crash point across the crash modes (and optionally a randomized
// campaign), each case in a fresh subdirectory of the given work dir:
// fork a child running a scripted transactional workload, kill it (or
// fail its I/O) at the armed point, reopen, recover, and verify the
// durability invariants. Exit status 0 iff every case passed.
//
//   cwdb_crashtest <workdir> [--seed N] [--iters N]
//                  [--point NAME] [--mode abort|eio|torn|bitflip]
//                  [--countdown N]
//
// With --point (and optionally --mode / --countdown) only that case runs —
// the way to reproduce a single failure from a sweep.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/crashpoint.h"
#include "common/random.h"
#include "faultinject/crash_harness.h"

namespace {

using cwdb::Result;
using cwdb::crashharness::CaseResult;
using cwdb::crashharness::CaseSpec;
using cwdb::crashharness::RunCase;
using Mode = cwdb::crashpoint::Mode;

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kAbort: return "abort";
    case Mode::kEio: return "eio";
    case Mode::kTornWrite: return "torn";
    case Mode::kBitFlip: return "bitflip";
    case Mode::kOff: break;
  }
  return "off";
}

bool ParseMode(const std::string& name, Mode* mode) {
  if (name == "abort") *mode = Mode::kAbort;
  else if (name == "eio") *mode = Mode::kEio;
  else if (name == "torn") *mode = Mode::kTornWrite;
  else if (name == "bitflip") *mode = Mode::kBitFlip;
  else return false;
  return true;
}

CaseSpec MakeSpec(const std::string& point, Mode mode, uint32_t countdown) {
  CaseSpec spec;
  spec.point = point;
  spec.mode = mode;
  spec.countdown = countdown;
  spec.arm_before_open = point == "ckpt.image.setsize";
  return spec;
}

/// Runs one case, prints its row, and returns whether it passed.
bool RunOne(const std::string& workdir, int index, const CaseSpec& spec) {
  std::string dir = workdir + "/case_" + std::to_string(index);
  Result<CaseResult> r = RunCase(dir, spec);
  if (r.ok()) {
    std::printf("  PASS  %-28s %-8s countdown=%u  (%s)\n", spec.point.c_str(),
                ModeName(spec.mode), spec.countdown, r->detail.c_str());
    return true;
  }
  std::printf("  FAIL  %-28s %-8s countdown=%u  %s\n", spec.point.c_str(),
              ModeName(spec.mode), spec.countdown,
              r.status().ToString().c_str());
  return false;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <workdir> [--seed N] [--iters N] [--point NAME] "
               "[--mode abort|eio|torn|bitflip] [--countdown N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  std::string workdir = argv[1];
  uint64_t seed = 0xC0DEu;
  int iters = 8;
  std::string only_point;
  std::string only_mode;
  uint32_t countdown = 1;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--iters" && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (arg == "--point" && i + 1 < argc) {
      only_point = argv[++i];
    } else if (arg == "--mode" && i + 1 < argc) {
      only_mode = argv[++i];
    } else if (arg == "--countdown" && i + 1 < argc) {
      countdown = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      return Usage(argv[0]);
    }
  }

  int failures = 0;
  int index = 0;

  if (!only_point.empty()) {
    // Single-case reproduction mode.
    std::vector<Mode> modes;
    if (!only_mode.empty()) {
      Mode m;
      if (!ParseMode(only_mode, &m)) return Usage(argv[0]);
      modes.push_back(m);
    } else {
      modes = {Mode::kAbort, Mode::kEio, Mode::kTornWrite};
    }
    for (Mode m : modes) {
      if (!RunOne(workdir, index++, MakeSpec(only_point, m, countdown))) {
        ++failures;
      }
    }
  } else {
    std::printf("named sweep: %zu points x {abort, eio, torn}\n",
                cwdb::crashpoint::AllPoints().size());
    for (const std::string& point : cwdb::crashpoint::AllPoints()) {
      for (Mode m : {Mode::kAbort, Mode::kEio, Mode::kTornWrite}) {
        if (!RunOne(workdir, index++, MakeSpec(point, m, 1))) ++failures;
      }
    }
    if (iters > 0) {
      std::printf("randomized campaign: %d cases, seed %llu\n", iters,
                  static_cast<unsigned long long>(seed));
      cwdb::Random rng(seed);
      const std::vector<std::string>& points = cwdb::crashpoint::AllPoints();
      constexpr Mode kModes[] = {Mode::kAbort, Mode::kEio, Mode::kTornWrite};
      for (int i = 0; i < iters; ++i) {
        std::string point;
        do {
          point = points[rng.Uniform(points.size())];
          // Only hit during the fresh format; covered by the sweep.
        } while (point == "ckpt.image.setsize");
        Mode m = kModes[rng.Uniform(3)];
        uint32_t countdown = static_cast<uint32_t>(1 + rng.Uniform(2));
        if (!RunOne(workdir, index++, MakeSpec(point, m, countdown))) {
          ++failures;
        }
      }
    }
  }

  std::printf("%d case(s), %d failure(s)\n", index, failures);
  return failures == 0 ? 0 : 1;
}
