// cwdb_ctl — operator tool for cwdb database directories.
//
//   cwdb_ctl info <dir>                  checkpoint / log / audit overview
//   cwdb_ctl tables <dir>                table directory of the active image
//   cwdb_ctl check <dir>                 offline integrity check (meta CRCs,
//                                        image header, layout invariants,
//                                        log frame validity)
//   cwdb_ctl logdump <dir> [from-lsn]    decode the stable system log
//   cwdb_ctl recover <dir> [scheme]      open the database (running restart
//                                        or corruption recovery) and report
//   cwdb_ctl stats <dir>                 re-emit the metrics snapshot that
//                                        Database::DumpMetrics()/Close()
//                                        persisted (byte-identical JSON)
//
// All subcommands except `recover` are read-only and work on a cold
// directory without instantiating a Database.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "ckpt/att_codec.h"
#include "ckpt/checkpoint.h"
#include "common/file_util.h"
#include "core/database.h"
#include "recovery/corrupt_note.h"
#include "storage/integrity.h"
#include "wal/system_log.h"

namespace cwdb {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cwdb_ctl <info|tables|check|logdump|recover|stats> "
               "<dir> [args]\n");
  return 2;
}

/// Loads the active checkpoint image of a cold database directory.
Result<std::unique_ptr<DbImage>> LoadColdImage(const DbFiles& files,
                                               CheckpointMeta* meta_out,
                                               int* which_out) {
  std::string anchor;
  CWDB_RETURN_IF_ERROR(ReadFileToString(files.Anchor(), &anchor));
  int which = anchor == "A" ? 0 : anchor == "B" ? 1 : -1;
  if (which < 0) return Status::Corruption("bad anchor: " + anchor);

  // Geometry comes from the image header, but we need geometry to build
  // the DbImage first — so peek at the raw header in the checkpoint file.
  std::string head(sizeof(DbHeaderRaw), '\0');
  {
    std::string contents;
    CWDB_RETURN_IF_ERROR(ReadFileToString(files.CkptImage(which), &contents));
    if (contents.size() < sizeof(DbHeaderRaw)) {
      return Status::Corruption("checkpoint image too small");
    }
    DbHeaderRaw h;
    std::memcpy(&h, contents.data(), sizeof(h));
    if (h.magic != kDbMagic) return Status::Corruption("bad image magic");
    CWDB_ASSIGN_OR_RETURN(std::unique_ptr<DbImage> image,
                          DbImage::Create(h.arena_size, h.page_size));
    std::memcpy(image->base(), contents.data(),
                std::min<size_t>(contents.size(), image->size()));
    CWDB_RETURN_IF_ERROR(image->ValidateHeader());
    if (meta_out != nullptr) {
      // Reuse the Checkpointer's meta reader through a scratch instance.
      Checkpointer scratch(files, image.get(), nullptr, nullptr, nullptr);
      CWDB_ASSIGN_OR_RETURN(*meta_out, scratch.ReadActiveMeta());
    }
    if (which_out != nullptr) *which_out = which;
    return image;
  }
}

int CmdInfo(const std::string& dir) {
  DbFiles files(dir);
  CheckpointMeta meta;
  int which = 0;
  auto image = LoadColdImage(files, &meta, &which);
  if (!image.ok()) {
    std::fprintf(stderr, "cannot load checkpoint: %s\n",
                 image.status().ToString().c_str());
    return 1;
  }
  const DbHeaderRaw* h = (*image)->header();
  std::printf("database         : %s\n", dir.c_str());
  std::printf("arena            : %" PRIu64 " bytes, page %u\n",
              h->arena_size, h->page_size);
  std::printf("allocated        : %" PRIu64 " bytes (cursor)\n",
              h->alloc_cursor);
  std::printf("active checkpoint: Ckpt_%c, CK_end=%" PRIu64 "\n",
              which == 0 ? 'A' : 'B', meta.ck_end);

  // Checkpointed ATT summary (decode into a scratch manager-free count).
  std::printf("checkpointed ATT : %zu bytes\n", meta.att_blob.size());

  std::string log_contents;
  if (ReadFileToString(files.SystemLog(), &log_contents).ok()) {
    std::printf("stable log       : %zu bytes\n", log_contents.size());
  }
  auto audit_lsn = ReadAuditMeta(files.AuditMeta());
  if (audit_lsn.ok()) {
    std::printf("last clean audit : LSN %" PRIu64 "\n", *audit_lsn);
  }
  if (FileExists(files.CorruptNote())) {
    auto note = ReadCorruptionNote(files.CorruptNote());
    if (note.ok()) {
      std::printf("CORRUPTION NOTED : %zu region(s), Audit_SN %" PRIu64
                  " — next open runs delete-transaction recovery\n",
                  note->ranges.size(), note->last_clean_audit_lsn);
    }
  }
  return 0;
}

int CmdTables(const std::string& dir) {
  DbFiles files(dir);
  auto image = LoadColdImage(files, nullptr, nullptr);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  std::printf("%-4s %-32s %10s %10s %12s %12s\n", "id", "name", "recsize",
              "capacity", "data_off", "bitmap_off");
  for (TableId t = 0; t < kMaxTables; ++t) {
    const TableMetaRaw* m = (*image)->table_meta(t);
    if (!m->in_use) continue;
    std::printf("%-4u %-32.32s %10u %10" PRIu64 " %12" PRIu64 " %12" PRIu64
                "\n",
                t, m->name, m->record_size, m->capacity, m->data_off,
                m->bitmap_off);
  }
  return 0;
}

int CmdCheck(const std::string& dir) {
  DbFiles files(dir);
  int failures = 0;
  CheckpointMeta meta;
  auto image = LoadColdImage(files, &meta, nullptr);
  if (!image.ok()) {
    std::printf("checkpoint image : FAIL (%s)\n",
                image.status().ToString().c_str());
    return 1;
  }
  std::printf("checkpoint image : ok (meta CRC, header)\n");

  auto violations = CheckImageIntegrity(**image);
  if (violations.empty()) {
    std::printf("image layout     : ok\n");
  } else {
    ++failures;
    std::printf("image layout     : %zu violation(s)\n", violations.size());
    for (const auto& v : violations) {
      std::printf("  [%" PRIu64 ", +%" PRIu64 ") %s\n", v.off, v.len,
                  v.message.c_str());
    }
  }

  auto reader = LogReader::Open(files.SystemLog(), 0, kInvalidLsn);
  if (reader.ok()) {
    LogRecord rec;
    uint64_t n = 0;
    while ((*reader)->Next(&rec, nullptr)) ++n;
    std::string contents;
    (void)ReadFileToString(files.SystemLog(), &contents);
    bool torn = (*reader)->position() != contents.size();
    std::printf("stable log       : %" PRIu64 " records, valid prefix %" PRIu64
                "/%zu bytes%s\n",
                n, (*reader)->position(), contents.size(),
                torn ? " (torn tail will be discarded)" : "");
  } else {
    ++failures;
    std::printf("stable log       : FAIL (%s)\n",
                reader.status().ToString().c_str());
  }
  return failures == 0 ? 0 : 1;
}

const char* RecordName(LogRecordType type) {
  switch (type) {
    case LogRecordType::kBeginTxn: return "BEGIN_TXN ";
    case LogRecordType::kCommitTxn: return "COMMIT_TXN";
    case LogRecordType::kAbortTxn: return "ABORT_TXN ";
    case LogRecordType::kPhysRedo: return "PHYS_REDO ";
    case LogRecordType::kReadLog: return "READ_LOG  ";
    case LogRecordType::kBeginOp: return "BEGIN_OP  ";
    case LogRecordType::kCommitOp: return "COMMIT_OP ";
    case LogRecordType::kAuditBegin: return "AUDIT     ";
  }
  return "?";
}

int CmdLogDump(const std::string& dir, Lsn from) {
  DbFiles files(dir);
  auto reader = LogReader::Open(files.SystemLog(), from, kInvalidLsn);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  LogRecord rec;
  Lsn lsn;
  while ((*reader)->Next(&rec, &lsn)) {
    std::printf("%10" PRIu64 "  %s txn=%-6" PRIu64, lsn,
                RecordName(rec.type), rec.txn);
    switch (rec.type) {
      case LogRecordType::kPhysRedo:
        std::printf(" off=%" PRIu64 " len=%u%s", rec.off, rec.len,
                    rec.has_cksum ? " +cksum" : "");
        break;
      case LogRecordType::kReadLog:
        std::printf(" off=%" PRIu64 " len=%u%s", rec.off, rec.len,
                    rec.has_cksum ? " +cksum" : "");
        break;
      case LogRecordType::kBeginOp:
        std::printf(" op=%u code=%u table=%u slot=%d", rec.op_id,
                    static_cast<unsigned>(rec.opcode), rec.table,
                    static_cast<int32_t>(rec.slot));
        break;
      case LogRecordType::kCommitOp:
        std::printf(" op=%u undo=%u table=%u slot=%d payload=%zub",
                    rec.op_id, static_cast<unsigned>(rec.undo.code),
                    rec.undo.table, static_cast<int32_t>(rec.undo.slot),
                    rec.undo.payload.size());
        break;
      default:
        break;
    }
    std::printf("\n");
  }
  std::printf("-- end of valid log at %" PRIu64 " --\n", (*reader)->position());
  return 0;
}

int CmdRecover(const std::string& dir, const std::string& scheme_name) {
  DatabaseOptions opts;
  opts.path = dir;
  // Geometry must match the stored image: peek at it.
  DbFiles files(dir);
  CheckpointMeta meta;
  auto image = LoadColdImage(files, &meta, nullptr);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  opts.arena_size = (*image)->header()->arena_size;
  opts.page_size = (*image)->header()->page_size;
  if (scheme_name == "readlog") {
    opts.protection.scheme = ProtectionScheme::kReadLog;
  } else if (scheme_name == "cwreadlog") {
    opts.protection.scheme = ProtectionScheme::kCodewordReadLog;
  } else if (scheme_name == "datacw") {
    opts.protection.scheme = ProtectionScheme::kDataCodeword;
  } else {
    opts.protection.scheme = ProtectionScheme::kNone;
  }
  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  const RecoveryReport& report = (*db)->last_recovery_report();
  std::printf("recovery complete: redo [%" PRIu64 ", %" PRIu64 "), %" PRIu64
              " records applied, %" PRIu64 " suppressed\n",
              report.redo_start, report.redo_end,
              report.redo_records_applied, report.redo_records_skipped);
  std::printf("rolled back %zu incomplete transaction(s)\n",
              report.rolled_back_txns.size());
  if (!report.deleted_txns.empty()) {
    std::printf("DELETED %zu transaction(s) (compensate manually):",
                report.deleted_txns.size());
    for (TxnId id : report.deleted_txns) {
      std::printf(" %" PRIu64, id);
    }
    std::printf("\n");
  }
  return 0;
}

int CmdStats(const std::string& dir) {
  DbFiles files(dir);
  std::string json;
  Status s = ReadFileToString(files.MetricsFile(), &json);
  if (!s.ok()) {
    std::fprintf(stderr,
                 "no metrics snapshot at %s (run Database::DumpMetrics() or "
                 "Close() first): %s\n",
                 files.MetricsFile().c_str(), s.ToString().c_str());
    return 1;
  }
  // Verbatim: the contract is that this output is byte-identical to what
  // DumpMetrics() returned in-process.
  std::fwrite(json.data(), 1, json.size(), stdout);
  if (json.empty() || json.back() != '\n') std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace cwdb

int main(int argc, char** argv) {
  using namespace cwdb;
  if (argc < 3) return Usage();
  std::string cmd = argv[1];
  std::string dir = argv[2];
  if (cmd == "info") return CmdInfo(dir);
  if (cmd == "tables") return CmdTables(dir);
  if (cmd == "check") return CmdCheck(dir);
  if (cmd == "logdump") {
    Lsn from = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0;
    return CmdLogDump(dir, from);
  }
  if (cmd == "recover") {
    return CmdRecover(dir, argc > 3 ? argv[3] : "none");
  }
  if (cmd == "stats") return CmdStats(dir);
  return Usage();
}
