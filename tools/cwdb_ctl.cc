// cwdb_ctl — operator tool for cwdb database directories.
//
//   cwdb_ctl info <dir>                  checkpoint / log / audit overview
//   cwdb_ctl tables <dir>                table directory of the active image
//   cwdb_ctl check <dir> [--repair]      offline integrity check (meta CRCs,
//                                        image header, layout invariants,
//                                        log frame validity, parity-sidecar
//                                        verification of the image bytes);
//                                        --repair rewrites regions the
//                                        parity columns can reconstruct
//   cwdb_ctl logdump <dir> [from-lsn]    decode the stable system log
//   cwdb_ctl recover <dir> [scheme]      open the database (running restart
//                                        or corruption recovery) and report
//   cwdb_ctl stats <dir> [--per-shard]   re-emit the metrics snapshot that
//                                        Database::DumpMetrics()/Close()
//                                        persisted (byte-identical JSON);
//                                        --per-shard renders the sharded
//                                        counter families as a table
//                                        (one row per engine shard)
//   cwdb_ctl trace <dir>                 decode the flight-recorder events
//                                        of the persisted metrics snapshot
//   cwdb_ctl trace-export <dir>          emit the persisted span dump as
//                                        Chrome/Perfetto trace-event JSON
//                                        (load at https://ui.perfetto.dev);
//                                        a database that never traced
//                                        yields the valid empty document
//   cwdb_ctl spans <dir> [--attribute]   list the persisted spans grouped
//                                        by trace; --attribute renders the
//                                        per-stage latency shares of the
//                                        p50/p99 commit cohorts instead
//   cwdb_ctl incidents <dir>             render incidents.jsonl dossiers;
//                                        a detection dossier and the kRepair
//                                        dossier linked to it are rendered
//                                        together as one episode
//   cwdb_ctl repairs <dir>               in-place repair activity: repair.*
//                                        counters/latency from the metrics
//                                        snapshot plus every repair episode
//                                        from incidents.jsonl
//   cwdb_ctl explain-recovery <dir> [--dot]
//                                        per-deleted-txn implication chains
//                                        from the last corruption recovery
//   cwdb_ctl top <dir> [--once] [--interval-ms N]
//                                        live-refreshing terminal view of
//                                        the persisted metrics history:
//                                        commit rate, windowed p99, scrub
//                                        age, SLO budget, sparklines.
//                                        --once renders a single snapshot
//                                        (for scripts/CI)
//   cwdb_ctl scrub-map <dir>             per-shard audit-staleness heatmap
//                                        from the persisted scrub.* gauges
//   cwdb_ctl postmortem <dir>            render the flight recorder's black
//                                        box: the crash record, LSN
//                                        frontiers, trace tail and metrics
//                                        sample of the last unclean death
//                                        (blackbox.bin, or the rotated
//                                        blackbox.prev.bin after reopen),
//                                        plus the crash dossier the reopen
//                                        filed into incidents.jsonl
//
// All subcommands except `recover` are read-only and work on a cold
// directory without instantiating a Database.

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "ckpt/att_codec.h"
#include "ckpt/checkpoint.h"
#include "common/file_util.h"
#include "common/json.h"
#include "core/database.h"
#include "obs/forensics.h"
#include "obs/history.h"
#include "obs/postmortem.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "protect/parity_repair.h"
#include "recovery/corrupt_note.h"
#include "recovery/provenance.h"
#include "storage/integrity.h"
#include "wal/system_log.h"

namespace cwdb {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cwdb_ctl <info|tables|check|logdump|recover|stats|"
               "trace|trace-export|spans|incidents|repairs|explain-recovery|"
               "top|scrub-map|postmortem> <dir> [args]\n");
  return 2;
}

/// Loads the active checkpoint image of a cold database directory.
Result<std::unique_ptr<DbImage>> LoadColdImage(const DbFiles& files,
                                               CheckpointMeta* meta_out,
                                               int* which_out) {
  std::string anchor;
  CWDB_RETURN_IF_ERROR(ReadFileToString(files.Anchor(), &anchor));
  int which = anchor == "A" ? 0 : anchor == "B" ? 1 : -1;
  if (which < 0) return Status::Corruption("bad anchor: " + anchor);

  // Geometry comes from the image header, but we need geometry to build
  // the DbImage first — so peek at the raw header in the checkpoint file.
  std::string head(sizeof(DbHeaderRaw), '\0');
  {
    std::string contents;
    CWDB_RETURN_IF_ERROR(ReadFileToString(files.CkptImage(which), &contents));
    if (contents.size() < sizeof(DbHeaderRaw)) {
      return Status::Corruption("checkpoint image too small");
    }
    DbHeaderRaw h;
    std::memcpy(&h, contents.data(), sizeof(h));
    if (h.magic != kDbMagic) return Status::Corruption("bad image magic");
    CWDB_ASSIGN_OR_RETURN(std::unique_ptr<DbImage> image,
                          DbImage::Create(h.arena_size, h.page_size));
    std::memcpy(image->base(), contents.data(),
                std::min<size_t>(contents.size(), image->size()));
    CWDB_RETURN_IF_ERROR(image->ValidateHeader());
    if (meta_out != nullptr) {
      // Reuse the Checkpointer's meta reader through a scratch instance.
      Checkpointer scratch(files, image.get(), nullptr, nullptr, nullptr);
      CWDB_ASSIGN_OR_RETURN(*meta_out, scratch.ReadActiveMeta());
    }
    if (which_out != nullptr) *which_out = which;
    return image;
  }
}

int CmdInfo(const std::string& dir) {
  DbFiles files(dir);
  CheckpointMeta meta;
  int which = 0;
  auto image = LoadColdImage(files, &meta, &which);
  if (!image.ok()) {
    std::fprintf(stderr, "cannot load checkpoint: %s\n",
                 image.status().ToString().c_str());
    return 1;
  }
  const DbHeaderRaw* h = (*image)->header();
  std::printf("database         : %s\n", dir.c_str());
  std::printf("arena            : %" PRIu64 " bytes, page %u\n",
              h->arena_size, h->page_size);
  std::printf("allocated        : %" PRIu64 " bytes (cursor)\n",
              h->alloc_cursor);
  std::printf("active checkpoint: Ckpt_%c, CK_end=%" PRIu64 "\n",
              which == 0 ? 'A' : 'B', meta.ck_end);

  // Checkpointed ATT summary (decode into a scratch manager-free count).
  std::printf("checkpointed ATT : %zu bytes\n", meta.att_blob.size());

  std::string log_contents;
  if (ReadFileToString(files.SystemLog(), &log_contents).ok()) {
    std::printf("stable log       : %zu bytes\n", log_contents.size());
  }
  auto audit_lsn = ReadAuditMeta(files.AuditMeta());
  if (audit_lsn.ok()) {
    std::printf("last clean audit : LSN %" PRIu64 "\n", *audit_lsn);
  }
  if (FileExists(files.CorruptNote())) {
    auto note = ReadCorruptionNote(files.CorruptNote());
    if (note.ok()) {
      std::printf("CORRUPTION NOTED : %zu region(s), Audit_SN %" PRIu64
                  " — next open runs delete-transaction recovery\n",
                  note->ranges.size(), note->last_clean_audit_lsn);
    }
  }
  return 0;
}

int CmdTables(const std::string& dir) {
  DbFiles files(dir);
  auto image = LoadColdImage(files, nullptr, nullptr);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  std::printf("%-4s %-32s %10s %10s %12s %12s\n", "id", "name", "recsize",
              "capacity", "data_off", "bitmap_off");
  for (TableId t = 0; t < kMaxTables; ++t) {
    const TableMetaRaw* m = (*image)->table_meta(t);
    if (!m->in_use) continue;
    std::printf("%-4u %-32.32s %10u %10" PRIu64 " %12" PRIu64 " %12" PRIu64
                "\n",
                t, m->name, m->record_size, m->capacity, m->data_off,
                m->bitmap_off);
  }
  return 0;
}

int CmdCheck(const std::string& dir, bool repair) {
  DbFiles files(dir);
  int failures = 0;
  CheckpointMeta meta;
  int which = 0;
  auto image = LoadColdImage(files, &meta, &which);
  if (!image.ok()) {
    std::printf("checkpoint image : FAIL (%s)\n",
                image.status().ToString().c_str());
    return 1;
  }
  std::printf("checkpoint image : ok (meta CRC, header)\n");

  // Parity sidecar: verify the cold image bytes against the codewords it
  // was checkpointed under and report what the parity columns could
  // reconstruct; --repair rewrites those regions in the image file.
  std::string blob;
  Status ps = ReadFileToString(files.CkptParity(which), &blob,
                               MissingFile::kTreatAsEmpty);
  if (!ps.ok()) {
    ++failures;
    std::printf("parity sidecar   : FAIL (%s)\n", ps.ToString().c_str());
  } else if (blob.empty()) {
    std::printf("parity sidecar   : none (scheme without a parity tier)\n");
  } else if (Result<ParitySidecar> sc = DecodeParitySidecar(Slice(blob));
             !sc.ok()) {
    ++failures;
    std::printf("parity sidecar   : FAIL (%s)\n",
                sc.status().ToString().c_str());
  } else if (sc->ck_end != meta.ck_end || sc->arena_size != (*image)->size()) {
    std::printf("parity sidecar   : stale (CK_end %" PRIu64 " vs %" PRIu64
                ") — verification skipped\n",
                sc->ck_end, meta.ck_end);
  } else {
    uint64_t verified = 0;
    std::vector<CorruptRange> detected =
        VerifyImageAgainstSidecar(*sc, (*image)->base(), &verified);
    if (detected.empty()) {
      std::printf("parity sidecar   : ok (%" PRIu64 " regions verified)\n",
                  verified);
    } else {
      ImageRepairReport rep;
      RepairImageWithSidecar(*sc, (*image)->base(), detected, repair, &rep);
      std::printf("parity sidecar   : %zu corrupt region(s) — %zu "
                  "reconstructable, %zu beyond the correction budget\n",
                  detected.size(), rep.repaired.size(),
                  rep.unrepaired.size());
      for (size_t i = 0; i < rep.repaired.size(); ++i) {
        std::printf("  [%" PRIu64 ", +%" PRIu64 ") reconstructable "
                    "(delta 0x%08x)%s\n",
                    rep.repaired[i].off, rep.repaired[i].len,
                    rep.repair_deltas[i], repair ? " — repaired" : "");
      }
      for (const CorruptRange& r : rep.unrepaired) {
        std::printf("  [%" PRIu64 ", +%" PRIu64 ") NOT reconstructable\n",
                    r.off, r.len);
      }
      if (repair && !rep.repaired.empty()) {
        // Write the reconstructed regions back into the image file (file
        // offset == arena offset for the full-arena checkpoint image).
        int fd = ::open(files.CkptImage(which).c_str(), O_WRONLY);
        Status ws = fd < 0 ? Status::IoError("open for --repair failed")
                           : Status::OK();
        for (const CorruptRange& r : rep.repaired) {
          if (!ws.ok()) break;
          ws = PWriteAll(fd, (*image)->base() + r.off, r.len, r.off);
        }
        if (ws.ok() && fd >= 0) ws = FsyncFd(fd);
        if (fd >= 0) ::close(fd);
        if (!ws.ok()) {
          ++failures;
          std::printf("  write-back     : FAIL (%s)\n", ws.ToString().c_str());
        } else {
          std::printf("  write-back     : %zu region(s) repaired in %s\n",
                      rep.repaired.size(), files.CkptImage(which).c_str());
        }
      }
      if (!repair || !rep.unrepaired.empty()) ++failures;
    }
  }

  auto violations = CheckImageIntegrity(**image);
  if (violations.empty()) {
    std::printf("image layout     : ok\n");
  } else {
    ++failures;
    std::printf("image layout     : %zu violation(s)\n", violations.size());
    for (const auto& v : violations) {
      std::printf("  [%" PRIu64 ", +%" PRIu64 ") %s\n", v.off, v.len,
                  v.message.c_str());
    }
  }

  auto reader = LogReader::Open(files.SystemLog(), 0, kInvalidLsn);
  if (reader.ok()) {
    LogRecord rec;
    uint64_t n = 0;
    while ((*reader)->Next(&rec, nullptr)) ++n;
    std::string contents;
    (void)ReadFileToString(files.SystemLog(), &contents);
    // Past the valid prefix: all-zero bytes are the group-commit drainer's
    // preallocation (clean end of log); anything nonzero is a torn append.
    const char* tail_note = "";
    if ((*reader)->position() != contents.size()) {
      bool all_zero = true;
      for (size_t i = (*reader)->position(); i < contents.size(); ++i) {
        if (contents[i] != '\0') {
          all_zero = false;
          break;
        }
      }
      tail_note = all_zero ? " (+ preallocated tail)"
                           : " (torn tail will be discarded)";
    }
    std::printf("stable log       : %" PRIu64 " records, valid prefix %" PRIu64
                "/%zu bytes%s\n",
                n, (*reader)->position(), contents.size(), tail_note);
  } else {
    ++failures;
    std::printf("stable log       : FAIL (%s)\n",
                reader.status().ToString().c_str());
  }
  return failures == 0 ? 0 : 1;
}

const char* RecordName(LogRecordType type) {
  switch (type) {
    case LogRecordType::kBeginTxn: return "BEGIN_TXN ";
    case LogRecordType::kCommitTxn: return "COMMIT_TXN";
    case LogRecordType::kAbortTxn: return "ABORT_TXN ";
    case LogRecordType::kPhysRedo: return "PHYS_REDO ";
    case LogRecordType::kReadLog: return "READ_LOG  ";
    case LogRecordType::kBeginOp: return "BEGIN_OP  ";
    case LogRecordType::kCommitOp: return "COMMIT_OP ";
    case LogRecordType::kAuditBegin: return "AUDIT     ";
  }
  return "?";
}

int CmdLogDump(const std::string& dir, Lsn from) {
  DbFiles files(dir);
  auto reader = LogReader::Open(files.SystemLog(), from, kInvalidLsn);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  LogRecord rec;
  Lsn lsn;
  while ((*reader)->Next(&rec, &lsn)) {
    std::printf("%10" PRIu64 "  %s txn=%-6" PRIu64, lsn,
                RecordName(rec.type), rec.txn);
    switch (rec.type) {
      case LogRecordType::kPhysRedo:
        std::printf(" off=%" PRIu64 " len=%u%s", rec.off, rec.len,
                    rec.has_cksum ? " +cksum" : "");
        break;
      case LogRecordType::kReadLog:
        std::printf(" off=%" PRIu64 " len=%u%s", rec.off, rec.len,
                    rec.has_cksum ? " +cksum" : "");
        break;
      case LogRecordType::kBeginOp:
        std::printf(" op=%u code=%u table=%u slot=%d", rec.op_id,
                    static_cast<unsigned>(rec.opcode), rec.table,
                    static_cast<int32_t>(rec.slot));
        break;
      case LogRecordType::kCommitOp:
        std::printf(" op=%u undo=%u table=%u slot=%d payload=%zub",
                    rec.op_id, static_cast<unsigned>(rec.undo.code),
                    rec.undo.table, static_cast<int32_t>(rec.undo.slot),
                    rec.undo.payload.size());
        break;
      default:
        break;
    }
    std::printf("\n");
  }
  std::printf("-- end of valid log at %" PRIu64 " --\n", (*reader)->position());
  return 0;
}

int CmdRecover(const std::string& dir, const std::string& scheme_name) {
  DatabaseOptions opts;
  opts.path = dir;
  // Geometry must match the stored image: peek at it.
  DbFiles files(dir);
  CheckpointMeta meta;
  auto image = LoadColdImage(files, &meta, nullptr);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  opts.arena_size = (*image)->header()->arena_size;
  opts.page_size = (*image)->header()->page_size;
  if (scheme_name == "readlog") {
    opts.protection.scheme = ProtectionScheme::kReadLog;
  } else if (scheme_name == "cwreadlog") {
    opts.protection.scheme = ProtectionScheme::kCodewordReadLog;
  } else if (scheme_name == "datacw") {
    opts.protection.scheme = ProtectionScheme::kDataCodeword;
  } else {
    opts.protection.scheme = ProtectionScheme::kNone;
  }
  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  const RecoveryReport& report = (*db)->last_recovery_report();
  std::printf("recovery complete: redo [%" PRIu64 ", %" PRIu64 "), %" PRIu64
              " records applied, %" PRIu64 " suppressed\n",
              report.redo_start, report.redo_end,
              report.redo_records_applied, report.redo_records_skipped);
  std::printf("rolled back %zu incomplete transaction(s)\n",
              report.rolled_back_txns.size());
  if (!report.deleted_txns.empty()) {
    std::printf("DELETED %zu transaction(s) (compensate manually):",
                report.deleted_txns.size());
    for (TxnId id : report.deleted_txns) {
      std::printf(" %" PRIu64, id);
    }
    std::printf("\n");
  }
  return 0;
}

/// Renders the per-shard counter families of the persisted snapshot as one
/// row per shard. The families are the sharded hot paths: WAL append
/// staging, protection updates/prechecks, lock-segment waits and audit
/// slices. A skewed row is the first thing to look at when scaling
/// disappoints — it means the workload (or the ShardMap) is not spreading.
int CmdStatsPerShard(const JsonValue& doc) {
  const JsonValue* counters = doc.Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    std::fprintf(stderr, "snapshot has no counters object (schema %" PRIu64
                 ")\n", doc.U64("schema_version"));
    return 1;
  }
  struct Family {
    const char* prefix;   ///< Counter name up to the shard number.
    const char* suffix;   ///< Counter name after the shard number.
    const char* heading;
  };
  static constexpr Family kFamilies[] = {
      {"wal.shard", ".appends", "wal_appends"},
      {"protect.shard", ".updates", "protect_updates"},
      {"protect.shard", ".prechecks", "prechecks"},
      {"txn.lockshard", ".waits", "lock_waits"},
      {"audit.shard", ".slices", "audit_slices"},
  };
  constexpr size_t kNumFamilies = sizeof(kFamilies) / sizeof(kFamilies[0]);

  // shard index -> per-family value; sized by the largest index seen.
  std::vector<std::array<uint64_t, kNumFamilies>> rows;
  for (const auto& [name, value] : counters->members()) {
    for (size_t f = 0; f < kNumFamilies; ++f) {
      const std::string_view prefix = kFamilies[f].prefix;
      const std::string_view suffix = kFamilies[f].suffix;
      if (name.size() <= prefix.size() + suffix.size()) continue;
      if (name.compare(0, prefix.size(), prefix) != 0) continue;
      if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
          0) {
        continue;
      }
      char* end = nullptr;
      const char* digits = name.c_str() + prefix.size();
      unsigned long shard = std::strtoul(digits, &end, 10);
      if (end != name.c_str() + name.size() - suffix.size()) continue;
      if (shard >= rows.size()) rows.resize(shard + 1, {});
      rows[shard][f] = value.AsU64();
    }
  }
  if (rows.empty()) {
    std::fprintf(stderr,
                 "snapshot has no per-shard counters (single-shard database "
                 "or pre-shard snapshot)\n");
    return 1;
  }
  std::printf("%-6s", "shard");
  for (const Family& f : kFamilies) std::printf(" %15s", f.heading);
  std::printf("\n");
  for (size_t s = 0; s < rows.size(); ++s) {
    std::printf("%-6zu", s);
    for (size_t f = 0; f < kNumFamilies; ++f) {
      std::printf(" %15" PRIu64, rows[s][f]);
    }
    std::printf("\n");
  }
  return 0;
}

int CmdStats(const std::string& dir, bool per_shard) {
  DbFiles files(dir);
  std::string json;
  Status s = ReadFileToString(files.MetricsFile(), &json);
  if (!s.ok()) {
    std::fprintf(stderr,
                 "no metrics snapshot at %s (run Database::DumpMetrics() or "
                 "Close() first): %s\n",
                 files.MetricsFile().c_str(), s.ToString().c_str());
    return 1;
  }
  if (per_shard) {
    Result<JsonValue> doc = ParseJson(json);
    if (!doc.ok()) {
      std::fprintf(stderr, "cannot parse %s: %s\n",
                   files.MetricsFile().c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    return CmdStatsPerShard(*doc);
  }
  // Verbatim: the contract is that this output is byte-identical to what
  // DumpMetrics() returned in-process.
  std::fwrite(json.data(), 1, json.size(), stdout);
  if (json.empty() || json.back() != '\n') std::printf("\n");
  return 0;
}

int CmdTrace(const std::string& dir) {
  DbFiles files(dir);
  std::string json;
  Status s = ReadFileToString(files.MetricsFile(), &json);
  if (!s.ok()) {
    std::fprintf(stderr, "no metrics snapshot at %s: %s\n",
                 files.MetricsFile().c_str(), s.ToString().c_str());
    return 1;
  }
  Result<JsonValue> doc = ParseJson(json);
  if (!doc.ok()) {
    std::fprintf(stderr, "cannot parse %s: %s\n", files.MetricsFile().c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }
  const JsonValue* events = doc->Find("events");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "snapshot has no events array (schema %" PRIu64
                 ")\n", doc->U64("schema_version"));
    return 1;
  }
  const uint64_t boot_mono = doc->U64("boot_mono_ns");
  std::printf("%-8s %-12s %-12s %-20s %-10s %s\n", "seq", "t+ms",
              "wall", "type", "lsn", "detail");
  for (const JsonValue& ev : events->array()) {
    TraceEvent e;
    e.seq = ev.U64("seq");
    e.t_ns = ev.U64("t_ns");
    e.lsn = ev.U64("lsn");
    e.a = ev.U64("a");
    e.b = ev.U64("b");
    if (const JsonValue* sh = ev.Find("shard"); sh != nullptr) {
      e.shard = sh->AsU64();
    }
    std::string type_name = ev.Str("type");
    std::string detail;
    if (TraceEventTypeFromName(type_name, &e.type)) {
      detail = DescribeTraceEvent(e);
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "a=%" PRIu64 " b=%" PRIu64, e.a, e.b);
      detail = buf;
    }
    // Both time bases: milliseconds since registry boot (monotonic) and
    // the wall-clock stamp the snapshot derived from its boot anchor.
    const double rel_ms =
        e.t_ns >= boot_mono
            ? static_cast<double>(e.t_ns - boot_mono) / 1e6
            : static_cast<double>(e.t_ns) / 1e6;
    const uint64_t wall_ns = ev.U64("wall_ns");
    char wall[32];
    if (wall_ns != 0) {
      std::snprintf(wall, sizeof(wall), "%.3fs",
                    static_cast<double>(wall_ns % 1000000000000ull) / 1e9);
    } else {
      std::snprintf(wall, sizeof(wall), "-");
    }
    std::printf("%-8" PRIu64 " %-12.3f %-12s %-20s %-10" PRIu64 " %s\n",
                e.seq, rel_ms, wall, type_name.c_str(), e.lsn,
                detail.c_str());
  }
  return 0;
}

/// Loads <dir>/spans.json. A directory that never traced (file absent) is
/// not an error: every consumer of the dump renders a valid empty document
/// from the default SpanDump.
Result<SpanDump> LoadSpanDump(const std::string& dir) {
  DbFiles files(dir);
  std::string json;
  CWDB_RETURN_IF_ERROR(ReadFileToString(files.SpansFile(), &json,
                                        MissingFile::kTreatAsEmpty));
  if (json.empty()) return SpanDump{};
  return ParseSpansJson(json);
}

int CmdTraceExport(const std::string& dir) {
  Result<SpanDump> dump = LoadSpanDump(dir);
  if (!dump.ok()) {
    std::fprintf(stderr, "cannot load spans: %s\n",
                 dump.status().ToString().c_str());
    return 1;
  }
  std::string chrome = SpansToChromeJson(*dump);
  std::fwrite(chrome.data(), 1, chrome.size(), stdout);
  if (chrome.empty() || chrome.back() != '\n') std::printf("\n");
  return 0;
}

int CmdSpans(const std::string& dir, bool attribute) {
  Result<SpanDump> dump = LoadSpanDump(dir);
  if (!dump.ok()) {
    std::fprintf(stderr, "cannot load spans: %s\n",
                 dump.status().ToString().c_str());
    return 1;
  }
  if (attribute) {
    std::fputs(RenderAttribution(ComputeAttribution(dump->spans)).c_str(),
               stdout);
    return 0;
  }
  std::fputs(RenderSpanList(*dump).c_str(), stdout);
  return 0;
}

int CmdIncidents(const std::string& dir) {
  DbFiles files(dir);
  size_t skipped = 0;
  Result<std::vector<JsonValue>> incidents =
      LoadIncidentFile(files.IncidentsFile(), &skipped);
  if (!incidents.ok()) {
    std::fprintf(stderr, "%s\n", incidents.status().ToString().c_str());
    return 1;
  }
  if (incidents->empty()) {
    std::printf("no incidents recorded at %s\n",
                files.IncidentsFile().c_str());
    return 0;
  }
  // A kRepair dossier names the detection it continues via
  // linked_incident_id; render the pair as one episode at the detection's
  // position instead of as two unrelated dossiers.
  std::map<uint64_t, const JsonValue*> repair_for;  // detection id -> repair
  std::set<uint64_t> paired_repairs;
  for (const JsonValue& inc : *incidents) {
    uint64_t linked = inc.U64("linked_incident_id");
    if (inc.Str("source") == "repair" && linked != 0) {
      repair_for[linked] = &inc;
      paired_repairs.insert(inc.U64("id"));
    }
  }
  for (const JsonValue& inc : *incidents) {
    uint64_t id = inc.U64("id");
    if (paired_repairs.count(id) != 0) continue;  // Rendered with its pair.
    auto pair = repair_for.find(id);
    if (pair != repair_for.end()) {
      std::printf("━ episode: detection #%" PRIu64
                  " repaired in place by #%" PRIu64 " ━\n",
                  id, pair->second->U64("id"));
      std::fputs(RenderIncident(inc).c_str(), stdout);
      std::fputs(RenderIncident(*pair->second).c_str(), stdout);
    } else {
      std::fputs(RenderIncident(inc).c_str(), stdout);
    }
    std::printf("\n");
  }
  if (skipped > 0) {
    std::printf("(%zu unparseable line(s) skipped — torn tail?)\n", skipped);
  }
  return 0;
}

int CmdRepairs(const std::string& dir) {
  DbFiles files(dir);
  // repair.* instruments from the persisted metrics snapshot.
  std::string json;
  if (ReadFileToString(files.MetricsFile(), &json).ok()) {
    Result<JsonValue> doc = ParseJson(json);
    if (doc.ok()) {
      if (const JsonValue* counters = doc->Find("counters");
          counters != nullptr && counters->is_object()) {
        for (const auto& [name, value] : counters->members()) {
          if (name.rfind("repair.", 0) != 0) continue;
          std::printf("%-28s %12" PRIu64 "\n", name.c_str(), value.AsU64());
        }
      }
      if (const JsonValue* hists = doc->Find("histograms");
          hists != nullptr && hists->is_object()) {
        for (const auto& [name, h] : hists->members()) {
          if (name.rfind("repair.", 0) != 0 || h.U64("count") == 0) continue;
          std::printf("%-28s count=%" PRIu64 " p50=%" PRIu64 "ns p99=%" PRIu64
                      "ns max=%" PRIu64 "ns\n",
                      name.c_str(), h.U64("count"), h.U64("p50"), h.U64("p99"),
                      h.U64("max"));
        }
      }
    }
  } else {
    std::printf("no metrics snapshot at %s\n", files.MetricsFile().c_str());
  }

  // Repair episodes from the dossier file.
  Result<std::vector<JsonValue>> incidents =
      LoadIncidentFile(files.IncidentsFile());
  if (!incidents.ok()) {
    std::fprintf(stderr, "%s\n", incidents.status().ToString().c_str());
    return 1;
  }
  size_t episodes = 0;
  for (const JsonValue& inc : *incidents) {
    if (inc.Str("source") != "repair") continue;
    ++episodes;
    const JsonValue* regions = inc.Find("regions");
    size_t n = regions != nullptr ? regions->array().size() : 0;
    std::printf("episode: repair #%" PRIu64 " (detection #%" PRIu64
                ") at LSN %" PRIu64 " — %zu region(s)\n",
                inc.U64("id"), inc.U64("linked_incident_id"), inc.U64("lsn"),
                n);
    if (regions != nullptr) {
      for (const JsonValue& r : regions->array()) {
        std::printf("  [%" PRIu64 ", +%" PRIu64 ") delta=0x%08" PRIx64 "\n",
                    r.U64("off"), r.U64("len"), r.U64("repair_delta"));
      }
    }
  }
  if (episodes == 0) {
    std::printf("no repair episodes recorded at %s\n",
                files.IncidentsFile().c_str());
  }
  return 0;
}

int CmdExplainRecovery(const std::string& dir, bool dot) {
  DbFiles files(dir);
  std::string json;
  Status s = ReadFileToString(files.ProvenanceFile(), &json);
  if (!s.ok()) {
    std::fprintf(stderr,
                 "no recovery provenance at %s (no corruption recovery has "
                 "run): %s\n",
                 files.ProvenanceFile().c_str(), s.ToString().c_str());
    return 1;
  }
  if (dot) {
    // Re-emit as Graphviz from the parsed JSON so the output always
    // matches the persisted graph.
    Result<JsonValue> doc = ParseJson(json);
    if (!doc.ok()) {
      std::fprintf(stderr, "cannot parse %s: %s\n",
                   files.ProvenanceFile().c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    ProvenanceGraph g;
    g.incident_id = doc->U64("incident_id");
    g.last_clean_audit_lsn = doc->U64("last_clean_audit_lsn");
    if (const JsonValue* roots = doc->Find("roots"); roots != nullptr) {
      for (const JsonValue& r : roots->array()) {
        g.roots.push_back(CorruptRange{r.U64("off"), r.U64("len")});
      }
    }
    if (const JsonValue* edges = doc->Find("edges"); edges != nullptr) {
      for (const JsonValue& ej : edges->array()) {
        ProvenanceEdge e;
        e.txn = ej.U64("txn");
        e.at_lsn = ej.U64("at_lsn");
        e.via = CorruptRange{ej.U64("via_off"), ej.U64("via_len")};
        e.from_txn = ej.U64("from_txn");
        std::string reason = ej.Str("reason");
        for (int i = 0;
             i <= static_cast<int>(ProvenanceReason::kCommittedAfterLimit);
             ++i) {
          if (reason == ProvenanceReasonName(
                            static_cast<ProvenanceReason>(i))) {
            e.reason = static_cast<ProvenanceReason>(i);
            break;
          }
        }
        g.edges.push_back(e);
      }
    }
    std::fputs(g.ToDot().c_str(), stdout);
    return 0;
  }

  Result<JsonValue> doc = ParseJson(json);
  if (!doc.ok()) {
    std::fprintf(stderr, "cannot parse %s: %s\n",
                 files.ProvenanceFile().c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }
  std::printf("incident %" PRIu64 ", last clean audit LSN %" PRIu64 "\n",
              doc->U64("incident_id"), doc->U64("last_clean_audit_lsn"));

  // The incident's root attribution (page/table/record), straight from the
  // persisted graph.
  const JsonValue* roots = doc->Find("roots");
  if (roots != nullptr && !roots->array().empty()) {
    std::printf("corrupt ranges:\n");
    for (const JsonValue& r : roots->array()) {
      std::printf("  [%" PRIu64 ", +%" PRIu64 ")", r.U64("off"),
                  r.U64("len"));
      if (const JsonValue* attr = r.Find("attribution"); attr != nullptr) {
        for (const JsonValue& a : attr->array()) {
          std::printf(" %s", a.Str("kind").c_str());
          if (const JsonValue* tn = a.Find("table_name"); tn != nullptr) {
            std::printf("(table %s", tn->string_value().c_str());
            if (const JsonValue* fs = a.Find("first_slot"); fs != nullptr) {
              std::printf(", slots %" PRIu64 "-%" PRIu64, fs->AsU64(),
                          a.U64("last_slot"));
            }
            std::printf(")");
          }
        }
      }
      std::printf("\n");
    }
  }

  // Reconstruct the graph to walk PathFor per deleted transaction.
  ProvenanceGraph g;
  if (const JsonValue* edges = doc->Find("edges"); edges != nullptr) {
    for (const JsonValue& ej : edges->array()) {
      ProvenanceEdge e;
      e.txn = ej.U64("txn");
      e.at_lsn = ej.U64("at_lsn");
      e.via = CorruptRange{ej.U64("via_off"), ej.U64("via_len")};
      e.from_txn = ej.U64("from_txn");
      std::string reason = ej.Str("reason");
      for (int i = 0;
           i <= static_cast<int>(ProvenanceReason::kCommittedAfterLimit);
           ++i) {
        if (reason ==
            ProvenanceReasonName(static_cast<ProvenanceReason>(i))) {
          e.reason = static_cast<ProvenanceReason>(i);
          break;
        }
      }
      g.edges.push_back(e);
    }
  }
  if (g.edges.empty()) {
    std::printf("no transactions were implicated\n");
    return 0;
  }
  std::printf("deleted transactions:\n");
  for (const ProvenanceEdge& top : g.edges) {
    std::printf("  txn %" PRIu64 ":\n", top.txn);
    for (const ProvenanceEdge* e : g.PathFor(top.txn)) {
      std::printf("    %s via [%" PRIu64 ", +%" PRIu64 ") at LSN %" PRIu64,
                  ProvenanceReasonName(e->reason), e->via.off, e->via.len,
                  e->at_lsn);
      if (e->from_txn != 0) {
        std::printf(" (tainted by txn %" PRIu64 ")\n", e->from_txn);
      } else {
        std::printf(" (rooted in the incident's corrupt ranges)\n");
      }
    }
  }
  return 0;
}

int CmdTop(const std::string& dir, bool once, uint64_t interval_ms) {
  DbFiles files(dir);
  for (;;) {
    MetricsHistory history(nullptr, HistoryOptions{});
    Status s = history.LoadFrom(files.MetricsHistoryFile());
    if (!s.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n",
                   files.MetricsHistoryFile().c_str(), s.ToString().c_str());
      return 1;
    }
    if (history.size() == 0) {
      std::fprintf(stderr,
                   "no metrics history at %s (open the database with "
                   "history.interval_ms > 0 and flush or Close it)\n",
                   files.MetricsHistoryFile().c_str());
      return 1;
    }
    std::string view = history.RenderTop(history.LatestMono());
    if (once) {
      std::fwrite(view.data(), 1, view.size(), stdout);
      return 0;
    }
    // Clear + home, then the frame: a plain-ANSI refresh loop, no curses.
    std::printf("\x1b[2J\x1b[H%s\n(refreshing every %" PRIu64
                " ms from %s — Ctrl-C to quit)\n",
                view.c_str(), interval_ms, files.MetricsHistoryFile().c_str());
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

int CmdScrubMap(const std::string& dir) {
  DbFiles files(dir);
  std::string json;
  Status s = ReadFileToString(files.MetricsFile(), &json);
  if (!s.ok()) {
    std::fprintf(stderr, "no metrics snapshot at %s: %s\n",
                 files.MetricsFile().c_str(), s.ToString().c_str());
    return 1;
  }
  Result<JsonValue> doc = ParseJson(json);
  if (!doc.ok()) {
    std::fprintf(stderr, "cannot parse %s: %s\n", files.MetricsFile().c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }
  const JsonValue* gauges = doc->Find("gauges");
  if (gauges == nullptr || !gauges->is_object()) {
    std::fprintf(stderr, "snapshot has no gauges object (schema %" PRIu64
                 ")\n", doc->U64("schema_version"));
    return 1;
  }
  std::vector<std::pair<std::string, int64_t>> gauge_list;
  for (const auto& [name, value] : gauges->members()) {
    gauge_list.emplace_back(name, value.AsI64());
  }
  std::string map =
      RenderScrubMap(gauge_list, doc->U64("captured_wall_ns"));
  std::fwrite(map.data(), 1, map.size(), stdout);
  return 0;
}

/// Renders the most recent unclean black box of the directory. A live
/// blackbox.bin that records an unclean death is the freshest evidence (the
/// crashed incarnation has not been reopened yet); otherwise the rotated
/// blackbox.prev.bin holds the one the last reopen ingested. A clean
/// current box with no rotated predecessor means nothing ever crashed.
int CmdPostmortem(const std::string& dir) {
  DbFiles files(dir);
  Result<BlackBoxReport> cur = ReadBlackBox(files.BlackBox());
  Result<BlackBoxReport> prev = ReadBlackBox(files.BlackBoxPrev());

  const BlackBoxReport* box = nullptr;
  const char* which = nullptr;
  if (cur.ok() && !cur->clean_shutdown) {
    box = &*cur;
    which = "blackbox.bin (not yet ingested by a reopen)";
  } else if (prev.ok() && !prev->clean_shutdown) {
    box = &*prev;
    which = "blackbox.prev.bin (rotated at the reopen after the crash)";
  }

  if (box == nullptr) {
    if (!cur.ok() && !prev.ok()) {
      std::printf("no black box at %s (database opened without a flight "
                  "recorder, or never opened)\n",
                  files.BlackBox().c_str());
    } else {
      std::printf("clean shutdown; no crash recorded\n");
    }
    return 0;
  }

  std::printf("black box: %s\n\n", which);
  std::fputs(RenderBlackBox(*box).c_str(), stdout);

  // The dossier the reopen filed for this death, if one has happened yet.
  Result<std::vector<JsonValue>> incidents =
      LoadIncidentFile(files.IncidentsFile());
  if (incidents.ok()) {
    const JsonValue* latest_crash = nullptr;
    for (const JsonValue& inc : *incidents) {
      if (inc.Str("source") == "crash") latest_crash = &inc;
    }
    if (latest_crash != nullptr) {
      std::printf("\ncrash dossier (incidents.jsonl):\n");
      std::fputs(RenderIncident(*latest_crash).c_str(), stdout);
    } else {
      std::printf("\nno crash dossier yet (reopen the database to file "
                  "one)\n");
    }
  }
  return 0;
}

}  // namespace
}  // namespace cwdb

int main(int argc, char** argv) {
  using namespace cwdb;
  if (argc < 3) return Usage();
  std::string cmd = argv[1];
  std::string dir = argv[2];
  if (cmd == "info") return CmdInfo(dir);
  if (cmd == "tables") return CmdTables(dir);
  if (cmd == "check") {
    bool repair = argc > 3 && std::string(argv[3]) == "--repair";
    return CmdCheck(dir, repair);
  }
  if (cmd == "logdump") {
    Lsn from = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0;
    return CmdLogDump(dir, from);
  }
  if (cmd == "recover") {
    return CmdRecover(dir, argc > 3 ? argv[3] : "none");
  }
  if (cmd == "stats") {
    bool per_shard = argc > 3 && std::strcmp(argv[3], "--per-shard") == 0;
    return CmdStats(dir, per_shard);
  }
  if (cmd == "trace") return CmdTrace(dir);
  if (cmd == "trace-export") return CmdTraceExport(dir);
  if (cmd == "spans") {
    bool attribute = argc > 3 && std::strcmp(argv[3], "--attribute") == 0;
    return CmdSpans(dir, attribute);
  }
  if (cmd == "incidents") return CmdIncidents(dir);
  if (cmd == "repairs") return CmdRepairs(dir);
  if (cmd == "explain-recovery") {
    bool dot = argc > 3 && std::strcmp(argv[3], "--dot") == 0;
    return CmdExplainRecovery(dir, dot);
  }
  if (cmd == "top") {
    bool once = false;
    uint64_t interval_ms = 1000;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--once") == 0) {
        once = true;
      } else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
        interval_ms = std::strtoull(argv[++i], nullptr, 10);
        if (interval_ms == 0) interval_ms = 1000;
      } else {
        return Usage();
      }
    }
    return CmdTop(dir, once, interval_ms);
  }
  if (cmd == "scrub-map") return CmdScrubMap(dir);
  if (cmd == "postmortem") return CmdPostmortem(dir);
  return Usage();
}
