#!/usr/bin/env python3
"""Validate a BENCH_repair.json trajectory from bench_repair --json.

bench_repair measures, for the same detected corruption, the in-place
parity-repair path against the paper's delete-transaction recovery path
(checkpoint reload + redo replay). Its --json mode emits one object per
line — {"name": "repair/r<K>_ops<N>", "<metric>": v, "threads": t} — with
three metrics per case: repair_ms, recovery_ms and speedup. CI feeds the
artifact through this script so a change that silently breaks the repair
tier — no cases, a case missing an arm, repairs slower than recovery —
fails loudly instead of shipping a dead benchmark.

Usage:
  check_repair_report.py <BENCH_repair.json> [--min-speedup X] [--strict]

Structural problems (missing file, malformed lines, no cases, a case
without all three metrics, non-finite or non-positive timings) always
fail. A case below --min-speedup (default 10.0) prints a GitHub warning
annotation and, with --strict, fails the job; without it that part is
advisory (a loaded CI runner can legitimately flatten the gap).
"""

import argparse
import json
import math
import sys

METRICS = ("repair_ms", "recovery_ms", "speedup")


def fail(msg):
    print(f"::error title=repair report invalid::{msg}")
    return 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("report", help="BENCH_repair.json from bench_repair --json")
    ap.add_argument("--min-speedup", type=float, default=10.0,
                    help="slowest acceptable repair-vs-recovery ratio")
    ap.add_argument("--strict", action="store_true",
                    help="fail if any case is below --min-speedup")
    args = ap.parse_args()

    cases = {}
    try:
        with open(args.report, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except ValueError as e:
                    return fail(f"{args.report}:{lineno}: {e}")
                name = obj.get("name")
                if not isinstance(name, str) or not name.startswith("repair/"):
                    return fail(f"{args.report}:{lineno}: bad name {name!r}")
                case = cases.setdefault(name, {})
                for metric in METRICS:
                    if metric in obj:
                        case[metric] = obj[metric]
    except OSError as e:
        return fail(f"{args.report}: {e}")

    if not cases:
        return fail(f"{args.report} has no repair/* cases; did bench_repair "
                    "run with --json?")

    slow = []
    for name in sorted(cases):
        case = cases[name]
        missing = [m for m in METRICS if m not in case]
        if missing:
            return fail(f"{name} is missing metrics: {', '.join(missing)}")
        for metric in METRICS:
            v = case[metric]
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v <= 0:
                return fail(f"{name}: non-positive {metric} {v!r}")
        if case["speedup"] < args.min_speedup:
            slow.append((name, case["speedup"]))

    print(f"repair report: {len(cases)} cases")
    for name in sorted(cases):
        case = cases[name]
        mark = "ok" if case["speedup"] >= args.min_speedup else "SLOW"
        print(f"  {name:24s} {mark:5s} repair {case['repair_ms']:8.3f} ms  "
              f"recovery {case['recovery_ms']:10.1f} ms  "
              f"speedup {case['speedup']:7.1f}x")

    if not slow:
        return 0
    for name, speedup in slow:
        print(f"::warning title=repair speedup below gate::{name} repaired "
              f"only {speedup:.1f}x faster than delete-transaction recovery "
              f"(gate {args.min_speedup:.1f}x) — the parity tier may have "
              "regressed; inspect the BENCH_repair.json artifact")
    return 1 if args.strict else 0


if __name__ == "__main__":
    sys.exit(main())
