#!/usr/bin/env python3
"""Validate an slo_report.json produced by a cwdb run.

The SLO engine (src/obs/slo.*) persists its evaluation state to
slo_report.json on every metrics-history flush: one entry per declared
objective with the configured windows, the live multi-window burn rates,
and the episode history. CI runs the traced TPC-B smoke with --history and
feeds the resulting report through this script so a change that silently
breaks SLO evaluation — an empty report, NaN burn rates, a vanished
objective — fails loudly instead of shipping a dead dashboard.

Usage:
  check_slo_report.py <slo_report.json> [--expect NAME]... [--strict]

Structural problems (missing file, malformed JSON, empty "slos" array,
missing keys, non-finite burn rates) always fail. An objective still
burning at the end of the run prints a GitHub warning annotation and, with
--strict, fails the job; without it that part is advisory (a cold CI
runner can legitimately blow a latency objective).
"""

import argparse
import json
import math
import sys

REQUIRED_KEYS = ("name", "kind", "windows", "burning", "burn_episodes",
                 "budget_remaining_pct")
KINDS = ("latency_quantile", "max_scrub_age", "counter_budget")


def fail(msg):
    print(f"::error title=slo report invalid::{msg}")
    return 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("report", help="slo_report.json from the run under test")
    ap.add_argument("--expect", action="append", default=[],
                    help="objective name that must be present "
                         "(repeatable)")
    ap.add_argument("--strict", action="store_true",
                    help="fail if any objective is still burning")
    args = ap.parse_args()

    try:
        with open(args.report, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail(f"{args.report}: {e}")

    slos = doc.get("slos")
    if not isinstance(slos, list) or not slos:
        return fail(f"{args.report} has no objectives; was the run "
                    "started with slo.enabled?")

    names = set()
    burning = []
    for slo in slos:
        missing = [k for k in REQUIRED_KEYS if k not in slo]
        if missing:
            return fail(f"objective {slo.get('name', '?')!r} is missing "
                        f"keys: {', '.join(missing)}")
        name = slo["name"]
        names.add(name)
        if slo["kind"] not in KINDS:
            return fail(f"{name}: unknown kind {slo['kind']!r}")
        if not slo["windows"]:
            return fail(f"{name}: no evaluation windows")
        for w in slo["windows"]:
            burn = w.get("burn")
            if not isinstance(burn, (int, float)) or not math.isfinite(burn):
                return fail(f"{name}: non-finite burn rate {burn!r} in "
                            f"{w.get('window_ms')}ms window")
        if not math.isfinite(slo["budget_remaining_pct"]):
            return fail(f"{name}: non-finite budget_remaining_pct")
        if slo["burning"]:
            peak = max(w["burn"] for w in slo["windows"])
            burning.append((name, peak, slo["burn_episodes"]))

    for want in args.expect:
        if want not in names:
            return fail(f"expected objective {want!r} not in report "
                        f"(found: {', '.join(sorted(names))})")

    print(f"slo report: {len(slos)} objectives "
          f"({', '.join(sorted(names))})")
    for slo in slos:
        worst = max((w["burn"] for w in slo["windows"]), default=0.0)
        state = "BURNING" if slo["burning"] else "ok"
        print(f"  {slo['name']:24s} {state:8s} worst burn {worst:6.2f}x  "
              f"episodes {slo['burn_episodes']}  budget "
              f"{slo['budget_remaining_pct']:.1f}%")

    if not burning:
        return 0
    for name, peak, episodes in burning:
        print(f"::warning title=slo burning at end of run::{name} finished "
              f"the run burning at {peak:.2f}x (episode #{episodes}); "
              "a latency or scrub-age objective is blown — inspect the "
              "metrics_history.bin artifact with `cwdb_ctl top`")
    return 1 if args.strict else 0


if __name__ == "__main__":
    sys.exit(main())
