#!/usr/bin/env python3
"""Compare a fresh tpcb_attribution.json against a checked-in baseline.

The attribution artifact (bench_tpcb_scaling --trace) reports, per pipeline
stage, the share of total commit latency that stage's self time accounts
for in the fast (<= median) and slow (>= p99) commit cohorts. The p99
shares are the fingerprint of where tail latency lives; when a change moves
that fingerprint — fsync share collapsing because commits stopped batching,
queue-wait share exploding because the drainer fell behind — this check
surfaces it in CI before anyone has to eyeball a trace.

Usage:
  check_attribution_drift.py <fresh.json> <baseline.json> [--threshold PCT]
      [--strict]

A stage drifts when its p99 share moves by more than --threshold
(default 20) percentage points in either direction, or when a stage
appears/disappears with a share above the threshold. Drift prints GitHub
warning annotations and, with --strict, fails the job; without it the
check is advisory (CI runners have unpredictable fsync behaviour, so the
default gate is a human reading the warning).
"""

import argparse
import json
import sys


def load_shares(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    stages = doc.get("stages", {})
    shares = {name: float(s.get("p99_share", 0.0)) for name, s in stages.items()}
    return int(doc.get("traces", 0)), shares


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="attribution JSON from this run")
    ap.add_argument("baseline", help="checked-in reference attribution JSON")
    ap.add_argument("--threshold", type=float, default=20.0,
                    help="allowed p99 share drift in percentage points "
                         "(default: 20)")
    ap.add_argument("--strict", action="store_true",
                    help="exit nonzero on drift instead of warning")
    args = ap.parse_args()

    fresh_traces, fresh = load_shares(args.fresh)
    base_traces, base = load_shares(args.baseline)
    if fresh_traces == 0:
        print(f"::warning::{args.fresh} contains no traces; "
              "was the bench run with --trace?")
        return 1

    limit = args.threshold / 100.0
    drifted = []
    for stage in sorted(set(fresh) | set(base)):
        f, b = fresh.get(stage, 0.0), base.get(stage, 0.0)
        delta = f - b
        if abs(delta) > limit:
            drifted.append((stage, b, f, delta))

    print(f"p99 latency attribution: {fresh_traces} fresh traces vs "
          f"{base_traces} baseline traces, threshold "
          f"{args.threshold:.0f} share points")
    for stage in sorted(set(fresh) | set(base)):
        f, b = fresh.get(stage, 0.0), base.get(stage, 0.0)
        mark = " <-- drift" if any(d[0] == stage for d in drifted) else ""
        print(f"  {stage:24s} baseline {b:6.1%}  fresh {f:6.1%}{mark}")

    if not drifted:
        print("no stage drifted beyond the threshold")
        return 0
    for stage, b, f, delta in drifted:
        print(f"::warning title=p99 attribution drift::{stage} p99 share "
              f"moved {delta:+.1%} ({b:.1%} -> {f:.1%}); the tail latency "
              "profile changed — inspect tpcb_spans.json in Perfetto")
    return 1 if args.strict else 0


if __name__ == "__main__":
    sys.exit(main())
