#ifndef CWDB_WORKLOAD_TPCB_H_
#define CWDB_WORKLOAD_TPCB_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "core/database.h"

namespace cwdb {

/// TPC-B style workload (paper §5.2): four tables — Branch, Teller,
/// Account, History — with 100 bytes per record; 100,000 accounts, 10,000
/// tellers and 1,000 branches (the ratios are deliberately flattened from
/// TPC-B to limit CPU-cache effects on the small tables). An *operation*
/// updates the balance of one account, one teller and one branch and
/// appends a History record; transactions commit every 500 operations so
/// commit (log force) time does not dominate.
struct TpcbConfig {
  uint64_t accounts = 100000;
  uint64_t tellers = 10000;
  uint64_t branches = 1000;
  uint32_t record_size = 100;
  uint32_t ops_per_txn = 500;
  uint64_t seed = 42;
  /// Capacity of the History table (must cover all operations to be run).
  uint64_t history_capacity = 120000;

  /// Fraction of operations that are balance *inquiries* (read the account
  /// balance, write nothing). The paper's Table 2 workload is pure update
  /// (read_fraction = 0); the knob exposes the read/write asymmetry of the
  /// schemes — prechecking taxes reads, codeword maintenance taxes writes.
  double read_fraction = 0.0;

  /// Minimum arena size that fits the four tables (plus slack for layout).
  uint64_t MinArenaSize(uint32_t page_size) const;
};

/// Record layouts within the fixed 100 bytes.
struct TpcbLayout {
  static constexpr uint32_t kIdOff = 0;        // u64 key
  static constexpr uint32_t kBalanceOff = 8;   // i64 balance (non-key)
  // History record fields.
  static constexpr uint32_t kHistAccountOff = 0;
  static constexpr uint32_t kHistTellerOff = 8;
  static constexpr uint32_t kHistBranchOff = 16;
  static constexpr uint32_t kHistDeltaOff = 24;
};

class TpcbWorkload {
 public:
  TpcbWorkload(Database* db, const TpcbConfig& config)
      : db_(db), config_(config), rng_(config.seed) {}

  /// Creates the four tables and loads the initial records (balance 0).
  Status Setup();

  /// Binds to tables created by a previous Setup (e.g. after recovery).
  Status Attach();

  /// Runs `n` operations, committing every config.ops_per_txn. Any open
  /// transaction is committed at the end.
  Status RunOps(uint64_t n);

  /// Runs `n` operations and returns operations per second.
  Result<double> RunTimed(uint64_t n);

  /// Runs ~`n` operations split across `threads` concurrent workers, each
  /// committing every ops_per_txn operations. Deadlock victims retry their
  /// transaction. Returns aggregate operations per second. (The paper ran
  /// a single process — §5.2 footnote 3 — so this mode is an extension
  /// used for concurrency stress, not for Table 2.)
  Result<double> RunConcurrent(int threads, uint64_t n);

  /// Verifies the TPC-B invariants: the sum of account balance deltas, the
  /// sum of teller deltas, the sum of branch deltas and the sum of History
  /// deltas are all equal, and the History row count matches.
  Status CheckConsistency() const;

  /// Total operations successfully executed so far.
  uint64_t ops_done() const { return ops_done_; }

  TableId accounts() const { return accounts_; }
  TableId tellers() const { return tellers_; }
  TableId branches() const { return branches_; }
  TableId history() const { return history_; }

 private:
  /// One TPC-B operation inside `txn`, drawing randomness from `rng`.
  Status DoOperation(Transaction* txn, Random* rng);
  Status UpdateBalance(Transaction* txn, TableId table, uint32_t slot,
                       int64_t delta);
  int64_t SumBalances(TableId table, uint64_t n) const;

  Database* db_;
  TpcbConfig config_;
  Random rng_;
  TableId accounts_ = kMaxTables;
  TableId tellers_ = kMaxTables;
  TableId branches_ = kMaxTables;
  TableId history_ = kMaxTables;
  uint64_t ops_done_ = 0;
};

}  // namespace cwdb

#endif  // CWDB_WORKLOAD_TPCB_H_
