#include "workload/tpcb.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace cwdb {

namespace {

uint64_t RoundUpToPage(uint64_t n, uint32_t page) {
  return (n + page - 1) & ~(uint64_t{page} - 1);
}

uint64_t TableFootprint(uint64_t capacity, uint32_t record_size,
                        uint32_t page) {
  return RoundUpToPage(BitmapBytes(capacity), page) +
         RoundUpToPage(capacity * record_size, page);
}

}  // namespace

uint64_t TpcbConfig::MinArenaSize(uint32_t page_size) const {
  uint64_t total = RoundUpToPage(kTableDirOff + kTableDirBytes, page_size);
  total += TableFootprint(accounts, record_size, page_size);
  total += TableFootprint(tellers, record_size, page_size);
  total += TableFootprint(branches, record_size, page_size);
  total += TableFootprint(history_capacity, record_size, page_size);
  total += 8 * page_size;  // Layout slack.
  return total;
}

Status TpcbWorkload::Setup() {
  CWDB_ASSIGN_OR_RETURN(Transaction * txn, db_->Begin());
  auto create_and_load = [&](const char* name, uint64_t count,
                             uint64_t capacity,
                             TableId* out) -> Status {
    CWDB_ASSIGN_OR_RETURN(
        *out, db_->CreateTable(txn, name, config_.record_size, capacity));
    std::string record(config_.record_size, '\0');
    for (uint64_t i = 0; i < count; ++i) {
      std::memcpy(record.data() + TpcbLayout::kIdOff, &i, 8);
      int64_t balance = 0;
      std::memcpy(record.data() + TpcbLayout::kBalanceOff, &balance, 8);
      CWDB_ASSIGN_OR_RETURN(RecordId rid, db_->Insert(txn, *out, record));
      (void)rid;
      // Commit periodically so local logs stay bounded during the load.
      if ((i + 1) % 5000 == 0) {
        CWDB_RETURN_IF_ERROR(db_->Commit(txn));
        CWDB_ASSIGN_OR_RETURN(txn, db_->Begin());
      }
    }
    return Status::OK();
  };
  CWDB_RETURN_IF_ERROR(create_and_load("branch", config_.branches,
                                       config_.branches, &branches_));
  CWDB_RETURN_IF_ERROR(
      create_and_load("teller", config_.tellers, config_.tellers, &tellers_));
  CWDB_RETURN_IF_ERROR(create_and_load("account", config_.accounts,
                                       config_.accounts, &accounts_));
  CWDB_ASSIGN_OR_RETURN(
      history_, db_->CreateTable(txn, "history", config_.record_size,
                                 config_.history_capacity));
  return db_->Commit(txn);
}

Status TpcbWorkload::Attach() {
  CWDB_ASSIGN_OR_RETURN(branches_, db_->FindTable("branch"));
  CWDB_ASSIGN_OR_RETURN(tellers_, db_->FindTable("teller"));
  CWDB_ASSIGN_OR_RETURN(accounts_, db_->FindTable("account"));
  CWDB_ASSIGN_OR_RETURN(history_, db_->FindTable("history"));
  return Status::OK();
}

Status TpcbWorkload::UpdateBalance(Transaction* txn, TableId table,
                                   uint32_t slot, int64_t delta) {
  int64_t balance;
  CWDB_RETURN_IF_ERROR(db_->ReadField(txn, table, slot,
                                      TpcbLayout::kBalanceOff, 8, &balance));
  balance += delta;
  return db_->Update(txn, table, slot, TpcbLayout::kBalanceOff,
                     Slice(reinterpret_cast<const char*>(&balance), 8));
}

Status TpcbWorkload::DoOperation(Transaction* txn, Random* rng) {
  // Deltas in [-999999, +999999] as in TPC-B.
  int64_t delta =
      static_cast<int64_t>(rng->Uniform(1999999)) - 999999;
  uint64_t account = rng->Uniform(config_.accounts);
  uint64_t teller = rng->Uniform(config_.tellers);
  uint64_t branch = teller % config_.branches;

  if (config_.read_fraction > 0.0 &&
      rng->Uniform(1000000) <
          static_cast<uint64_t>(config_.read_fraction * 1000000)) {
    // Balance inquiry: a pure read.
    int64_t balance;
    return db_->ReadField(txn, accounts_, static_cast<uint32_t>(account),
                          TpcbLayout::kBalanceOff, 8, &balance);
  }

  CWDB_RETURN_IF_ERROR(
      UpdateBalance(txn, accounts_, static_cast<uint32_t>(account), delta));
  CWDB_RETURN_IF_ERROR(
      UpdateBalance(txn, tellers_, static_cast<uint32_t>(teller), delta));
  CWDB_RETURN_IF_ERROR(
      UpdateBalance(txn, branches_, static_cast<uint32_t>(branch), delta));

  std::string hist(config_.record_size, '\0');
  std::memcpy(hist.data() + TpcbLayout::kHistAccountOff, &account, 8);
  std::memcpy(hist.data() + TpcbLayout::kHistTellerOff, &teller, 8);
  std::memcpy(hist.data() + TpcbLayout::kHistBranchOff, &branch, 8);
  std::memcpy(hist.data() + TpcbLayout::kHistDeltaOff, &delta, 8);
  CWDB_ASSIGN_OR_RETURN(RecordId rid, db_->Insert(txn, history_, hist));
  (void)rid;
  return Status::OK();
}

Status TpcbWorkload::RunOps(uint64_t n) {
  CWDB_CHECK(accounts_ != kMaxTables) << "Setup()/Attach() not called";
  Transaction* txn = nullptr;
  for (uint64_t i = 0; i < n; ++i) {
    if (txn == nullptr) {
      CWDB_ASSIGN_OR_RETURN(txn, db_->Begin());
    }
    Status s = DoOperation(txn, &rng_);
    if (!s.ok()) {
      db_->Abort(txn);
      return s;
    }
    ++ops_done_;
    if ((i + 1) % config_.ops_per_txn == 0) {
      CWDB_RETURN_IF_ERROR(db_->Commit(txn));
      txn = nullptr;
    }
  }
  if (txn != nullptr) {
    CWDB_RETURN_IF_ERROR(db_->Commit(txn));
  }
  return Status::OK();
}

Result<double> TpcbWorkload::RunConcurrent(int threads, uint64_t n) {
  CWDB_CHECK(accounts_ != kMaxTables) << "Setup()/Attach() not called";
  CWDB_CHECK(threads > 0);
  std::atomic<uint64_t> remaining{n};
  std::atomic<uint64_t> done{0};
  std::vector<std::thread> workers;
  std::mutex err_mu;
  Status first_error;

  auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Random rng(config_.seed * 7919 + static_cast<uint64_t>(w) + 1);
      while (true) {
        // Claim a batch (one transaction's worth of operations).
        uint64_t want = config_.ops_per_txn;
        uint64_t old = remaining.load();
        do {
          if (old == 0) return;
          want = std::min<uint64_t>(config_.ops_per_txn, old);
        } while (!remaining.compare_exchange_weak(old, old - want));

        // Run the batch; a deadlock victim retries the whole transaction
        // (its effects rolled back, the batch re-claimed by this worker).
        while (true) {
          auto txn = db_->Begin();
          if (!txn.ok()) {
            std::lock_guard<std::mutex> guard(err_mu);
            if (first_error.ok()) first_error = txn.status();
            return;
          }
          Status s;
          for (uint64_t i = 0; i < want && s.ok(); ++i) {
            s = DoOperation(*txn, &rng);
          }
          if (s.ok()) s = db_->Commit(*txn);
          if (s.ok()) {
            done.fetch_add(want);
            break;
          }
          (void)db_->Abort(*txn);
          if (!s.IsDeadlock()) {
            std::lock_guard<std::mutex> guard(err_mu);
            if (first_error.ok()) first_error = s;
            return;
          }
          // Deadlock: back off briefly and retry the transaction.
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  auto end = std::chrono::steady_clock::now();
  if (!first_error.ok()) return first_error;
  ops_done_ += done.load();
  double seconds = std::chrono::duration<double>(end - start).count();
  return static_cast<double>(done.load()) / seconds;
}

Result<double> TpcbWorkload::RunTimed(uint64_t n) {
  auto start = std::chrono::steady_clock::now();
  CWDB_RETURN_IF_ERROR(RunOps(n));
  auto end = std::chrono::steady_clock::now();
  double seconds = std::chrono::duration<double>(end - start).count();
  return static_cast<double>(n) / seconds;
}

int64_t TpcbWorkload::SumBalances(TableId table, uint64_t n) const {
  int64_t sum = 0;
  const DbImage* image = db_->image();
  for (uint64_t i = 0; i < n; ++i) {
    int64_t balance;
    std::memcpy(&balance,
                image->At(image->RecordOff(table, static_cast<uint32_t>(i))) +
                    TpcbLayout::kBalanceOff,
                8);
    sum += balance;
  }
  return sum;
}

Status TpcbWorkload::CheckConsistency() const {
  const DbImage* image = db_->image();
  int64_t account_sum = SumBalances(accounts_, config_.accounts);
  int64_t teller_sum = SumBalances(tellers_, config_.tellers);
  int64_t branch_sum = SumBalances(branches_, config_.branches);

  int64_t history_sum = 0;
  uint64_t history_rows = 0;
  const TableMetaRaw* hm = image->table_meta(history_);
  for (uint64_t i = 0; i < hm->capacity; ++i) {
    if (!image->SlotAllocated(history_, static_cast<uint32_t>(i))) continue;
    ++history_rows;
    int64_t delta;
    std::memcpy(&delta,
                image->At(image->RecordOff(history_,
                                           static_cast<uint32_t>(i))) +
                    TpcbLayout::kHistDeltaOff,
                8);
    history_sum += delta;
  }
  if (account_sum != teller_sum || teller_sum != branch_sum ||
      branch_sum != history_sum) {
    return Status::Corruption("TPC-B balance invariant violated");
  }
  if (history_rows != table_ops::CountRecords(*image, history_)) {
    return Status::Corruption("history row count mismatch");
  }
  return Status::OK();
}

}  // namespace cwdb
