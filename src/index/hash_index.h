#ifndef CWDB_INDEX_HASH_INDEX_H_
#define CWDB_INDEX_HASH_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"

namespace cwdb {

/// A persistent, transactional hash index mapping 64-bit keys to record
/// slots — the kind of access structure the Dalí storage manager layers
/// over its tables. Built entirely *on top of* the table layer: the bucket
/// array and the entry pool are two ordinary fixed-size-record tables, so
/// every index maintenance step is a logged, codeword-protected,
/// logically-undoable record operation. That buys, with zero extra
/// machinery:
///
///  * atomicity — an aborted transaction's index changes roll back with
///    its data changes;
///  * crash recovery — restart replays index maintenance physically and
///    undoes incomplete operations logically;
///  * corruption protection — a wild write into a bucket or entry fails
///    the region codeword like any data page, and under the read-logging
///    schemes *index traversals are read-logged*, so the
///    delete-transaction algorithm traces corruption that propagated
///    through an index lookup just like corruption read from a record.
///
/// Layout: `<name>.buckets` holds one 8-byte record per bucket (head entry
/// slot + 1, 0 = empty); `<name>.entries` holds 16-byte records
/// {key, value_slot, next entry slot + 1} chained per bucket.
///
/// Keys are unique. Concurrency: chain mutations serialize per bucket via
/// the bucket record's exclusive lock; lookups take shared locks (strict
/// 2PL, like every record access).
class HashIndex {
 public:
  /// Creates the backing tables inside `txn`. `buckets` should be on the
  /// order of the expected key count; `capacity` bounds the total entries.
  static Result<HashIndex> Create(Database* db, Transaction* txn,
                                  const std::string& name, uint64_t buckets,
                                  uint64_t capacity);

  /// Opens an index created earlier.
  static Result<HashIndex> Open(Database* db, const std::string& name);

  /// Maps `key` to `value_slot`. kAlreadyExists if the key is present.
  Status Insert(Transaction* txn, uint64_t key, uint32_t value_slot);

  /// The slot mapped to `key`, or kNotFound.
  Result<uint32_t> Lookup(Transaction* txn, uint64_t key);

  /// Removes `key`. kNotFound if absent.
  Status Erase(Transaction* txn, uint64_t key);

  /// Re-points an existing key at a new slot. kNotFound if absent.
  Status Update(Transaction* txn, uint64_t key, uint32_t value_slot);

  /// Number of live entries (bitmap scan; not transactional).
  uint64_t EntryCount() const;

  TableId buckets_table() const { return buckets_; }
  TableId entries_table() const { return entries_; }

 private:
  struct Entry {
    uint64_t key;
    uint32_t value_slot;
    uint32_t next_plus_1;  ///< 0 = end of chain.
  };
  static_assert(sizeof(Entry) == 16);

  HashIndex(Database* db, TableId buckets, TableId entries,
            uint64_t bucket_count)
      : db_(db),
        buckets_(buckets),
        entries_(entries),
        bucket_count_(bucket_count) {}

  uint32_t BucketOf(uint64_t key) const {
    return static_cast<uint32_t>((key * 0x9E3779B97F4A7C15ull) %
                                 bucket_count_);
  }

  /// Reads the bucket head (entry slot + 1) under a lock of the given mode.
  Result<uint32_t> ReadHead(Transaction* txn, uint32_t bucket, bool exclusive);
  Result<Entry> ReadEntry(Transaction* txn, uint32_t entry_slot);

  Database* db_;
  TableId buckets_;
  TableId entries_;
  uint64_t bucket_count_;
};

}  // namespace cwdb

#endif  // CWDB_INDEX_HASH_INDEX_H_
