#include "index/hash_index.h"

#include <cstring>

namespace cwdb {

namespace {

std::string BucketsName(const std::string& name) { return name + ".buckets"; }
std::string EntriesName(const std::string& name) { return name + ".entries"; }

std::string EncodeEntry(uint64_t key, uint32_t value_slot,
                        uint32_t next_plus_1) {
  std::string out(16, '\0');
  std::memcpy(out.data(), &key, 8);
  std::memcpy(out.data() + 8, &value_slot, 4);
  std::memcpy(out.data() + 12, &next_plus_1, 4);
  return out;
}

}  // namespace

Result<HashIndex> HashIndex::Create(Database* db, Transaction* txn,
                                    const std::string& name, uint64_t buckets,
                                    uint64_t capacity) {
  if (buckets == 0 || capacity == 0) {
    return Status::InvalidArgument("buckets and capacity must be positive");
  }
  CWDB_ASSIGN_OR_RETURN(
      TableId buckets_table,
      db->CreateTable(txn, BucketsName(name), 8, buckets));
  CWDB_ASSIGN_OR_RETURN(
      TableId entries_table,
      db->CreateTable(txn, EntriesName(name), sizeof(Entry), capacity));
  // Materialize every bucket record (head = 0, empty chain). Slots are
  // assigned sequentially in a fresh table, so bucket b lives at slot b.
  const std::string empty(8, '\0');
  for (uint64_t b = 0; b < buckets; ++b) {
    CWDB_ASSIGN_OR_RETURN(RecordId rid,
                          db->Insert(txn, buckets_table, empty));
    CWDB_CHECK(rid.slot == b) << "bucket slots must be dense";
  }
  return HashIndex(db, buckets_table, entries_table, buckets);
}

Result<HashIndex> HashIndex::Open(Database* db, const std::string& name) {
  CWDB_ASSIGN_OR_RETURN(TableId buckets_table,
                        db->FindTable(BucketsName(name)));
  CWDB_ASSIGN_OR_RETURN(TableId entries_table,
                        db->FindTable(EntriesName(name)));
  uint64_t buckets = db->image()->table_meta(buckets_table)->capacity;
  return HashIndex(db, buckets_table, entries_table, buckets);
}

Result<uint32_t> HashIndex::ReadHead(Transaction* txn, uint32_t bucket,
                                     bool exclusive) {
  if (exclusive && !db_->txns()->recovery_mode()) {
    // Chain mutations serialize on the bucket record's exclusive lock
    // (acquired before the shared lock ReadField would take; re-entrant).
    CWDB_RETURN_IF_ERROR(db_->txns()->locks().Acquire(
        txn->id(), LockId::Record(buckets_, bucket), LockMode::kExclusive));
  }
  uint32_t head_plus_1 = 0;
  CWDB_RETURN_IF_ERROR(
      db_->ReadField(txn, buckets_, bucket, 0, 4, &head_plus_1));
  return head_plus_1;
}

Result<HashIndex::Entry> HashIndex::ReadEntry(Transaction* txn,
                                              uint32_t entry_slot) {
  Entry e;
  std::string bytes;
  CWDB_RETURN_IF_ERROR(db_->Read(txn, entries_, entry_slot, &bytes));
  std::memcpy(&e, bytes.data(), sizeof(e));
  return e;
}

Status HashIndex::Insert(Transaction* txn, uint64_t key,
                         uint32_t value_slot) {
  const uint32_t bucket = BucketOf(key);
  CWDB_ASSIGN_OR_RETURN(uint32_t head_plus_1,
                        ReadHead(txn, bucket, /*exclusive=*/true));
  for (uint32_t e = head_plus_1; e != 0;) {
    CWDB_ASSIGN_OR_RETURN(Entry entry, ReadEntry(txn, e - 1));
    if (entry.key == key) {
      return Status::AlreadyExists("key already indexed");
    }
    e = entry.next_plus_1;
  }
  // New entry becomes the chain head: link first, then swing the head.
  CWDB_ASSIGN_OR_RETURN(
      RecordId rid,
      db_->Insert(txn, entries_, EncodeEntry(key, value_slot, head_plus_1)));
  uint32_t new_head_plus_1 = rid.slot + 1;
  return db_->Update(txn, buckets_, bucket, 0,
                     Slice(reinterpret_cast<const char*>(&new_head_plus_1),
                           4));
}

Result<uint32_t> HashIndex::Lookup(Transaction* txn, uint64_t key) {
  const uint32_t bucket = BucketOf(key);
  CWDB_ASSIGN_OR_RETURN(uint32_t head_plus_1,
                        ReadHead(txn, bucket, /*exclusive=*/false));
  for (uint32_t e = head_plus_1; e != 0;) {
    CWDB_ASSIGN_OR_RETURN(Entry entry, ReadEntry(txn, e - 1));
    if (entry.key == key) return entry.value_slot;
    e = entry.next_plus_1;
  }
  return Status::NotFound("key not indexed");
}

Status HashIndex::Erase(Transaction* txn, uint64_t key) {
  const uint32_t bucket = BucketOf(key);
  CWDB_ASSIGN_OR_RETURN(uint32_t head_plus_1,
                        ReadHead(txn, bucket, /*exclusive=*/true));
  uint32_t prev = 0;  // Entry slot + 1 of the predecessor; 0 = head.
  for (uint32_t e = head_plus_1; e != 0;) {
    CWDB_ASSIGN_OR_RETURN(Entry entry, ReadEntry(txn, e - 1));
    if (entry.key == key) {
      // Unlink: predecessor's next (or the bucket head) skips `e`.
      if (prev == 0) {
        CWDB_RETURN_IF_ERROR(db_->Update(
            txn, buckets_, bucket, 0,
            Slice(reinterpret_cast<const char*>(&entry.next_plus_1), 4)));
      } else {
        CWDB_RETURN_IF_ERROR(db_->Update(
            txn, entries_, prev - 1, offsetof(Entry, next_plus_1),
            Slice(reinterpret_cast<const char*>(&entry.next_plus_1), 4)));
      }
      return db_->Delete(txn, entries_, e - 1);
    }
    prev = e;
    e = entry.next_plus_1;
  }
  return Status::NotFound("key not indexed");
}

Status HashIndex::Update(Transaction* txn, uint64_t key,
                         uint32_t value_slot) {
  const uint32_t bucket = BucketOf(key);
  CWDB_ASSIGN_OR_RETURN(uint32_t head_plus_1,
                        ReadHead(txn, bucket, /*exclusive=*/true));
  for (uint32_t e = head_plus_1; e != 0;) {
    CWDB_ASSIGN_OR_RETURN(Entry entry, ReadEntry(txn, e - 1));
    if (entry.key == key) {
      return db_->Update(
          txn, entries_, e - 1, offsetof(Entry, value_slot),
          Slice(reinterpret_cast<const char*>(&value_slot), 4));
    }
    e = entry.next_plus_1;
  }
  return Status::NotFound("key not indexed");
}

uint64_t HashIndex::EntryCount() const {
  return db_->CountRecords(entries_);
}

}  // namespace cwdb
