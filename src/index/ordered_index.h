#ifndef CWDB_INDEX_ORDERED_INDEX_H_
#define CWDB_INDEX_ORDERED_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>

#include "core/database.h"

namespace cwdb {

/// A persistent, transactional ordered index (B+-tree) over 64-bit keys —
/// the ordered access structure of a Dalí-style storage manager, enabling
/// range scans. Like HashIndex and BlobStore it is built entirely on the
/// table layer: nodes are fixed-size records, every structural mutation is
/// an ordinary logged record operation, and the LIFO logical undo of those
/// operations restores the exact pre-transaction tree. Index descents read
/// node records through the protected read path, so under the read-logging
/// schemes corruption inside the *tree* is traced to the transactions that
/// navigated through it.
///
/// Structure: classic B+-tree with fixed 256-byte nodes (fanout ~20),
/// right-sibling links on leaves for range scans, eager splits on insert
/// and lazy deletes (no merging — a valid if under-full tree; Dalí-era
/// main-memory trees made the same trade). The root slot lives in a
/// one-record meta table.
///
/// Concurrency: writers take the index's node table lock exclusively and
/// readers share it, for the transaction's duration (coarse two-phase
/// index locking: serializable, phantom-free range scans; per-node
/// latching is future work).
class OrderedIndex {
 public:
  static constexpr uint32_t kNodeBytes = 256;
  /// Max keys per node.
  static constexpr uint32_t kFanout = 19;

  /// Creates the backing node + meta tables inside `txn`. `max_nodes`
  /// bounds the tree size (roughly key_capacity / (kFanout/2)).
  static Result<OrderedIndex> Create(Database* db, Transaction* txn,
                                     const std::string& name,
                                     uint64_t max_nodes);

  static Result<OrderedIndex> Open(Database* db, const std::string& name);

  /// Maps `key` to `value`. kAlreadyExists if present.
  Status Insert(Transaction* txn, uint64_t key, uint32_t value);

  /// The value mapped to `key`, or kNotFound.
  Result<uint32_t> Lookup(Transaction* txn, uint64_t key);

  /// Removes `key` (lazy: no rebalancing). kNotFound if absent.
  Status Erase(Transaction* txn, uint64_t key);

  /// Re-points an existing key. kNotFound if absent.
  Status Update(Transaction* txn, uint64_t key, uint32_t value);

  /// In-order visit of every entry with lo <= key <= hi. A non-OK return
  /// from `fn` stops the scan and is propagated.
  Status Scan(Transaction* txn, uint64_t lo, uint64_t hi,
              const std::function<Status(uint64_t key, uint32_t value)>& fn);

  /// Number of live keys (leaf walk inside `txn`).
  Result<uint64_t> KeyCount(Transaction* txn);

  /// Validates the whole tree: key order within and across nodes,
  /// separator consistency, uniform leaf depth, sibling chain order.
  /// Returns the tree height or kCorruption with a diagnosis.
  Result<uint32_t> CheckTree(Transaction* txn);

  TableId nodes_table() const { return nodes_; }

 private:
  struct Node;  // Defined in the .cc; decoded view of a node record.

  OrderedIndex(Database* db, TableId nodes, TableId meta)
      : db_(db), nodes_(nodes), meta_(meta) {}

  Status LockIndex(Transaction* txn, bool exclusive);
  Result<uint32_t> RootSlot(Transaction* txn);
  Status SetRootSlot(Transaction* txn, uint32_t root);
  Result<Node> ReadNode(Transaction* txn, uint32_t slot);
  Status WriteNode(Transaction* txn, uint32_t slot, const Node& node);
  Result<uint32_t> AllocNode(Transaction* txn, const Node& node);

  /// Descends to the leaf that should hold `key`, recording the path of
  /// (node slot, child index) pairs from the root (exclusive of the leaf).
  Result<uint32_t> DescendToLeaf(
      Transaction* txn, uint64_t key,
      std::vector<std::pair<uint32_t, uint32_t>>* path);

  Status CheckSubtree(Transaction* txn, uint32_t slot, uint64_t lo,
                      uint64_t hi, bool has_lo, bool has_hi, uint32_t depth,
                      uint32_t* leaf_depth);

  Database* db_;
  TableId nodes_;
  TableId meta_;
};

}  // namespace cwdb

#endif  // CWDB_INDEX_ORDERED_INDEX_H_
