#include "index/ordered_index.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace cwdb {

namespace {

std::string NodesName(const std::string& name) { return name + ".nodes"; }
std::string MetaName(const std::string& name) { return name + ".meta"; }

// On-record node layout (256 bytes):
//   [0]   u8  is_leaf
//   [1]   u8  count
//   [2]   u16 pad
//   [4]   u32 right sibling slot + 1 (leaves; 0 = none)
//   [8]   u64 keys[kFanout]                          (8..160)
//   leaf:     u32 values[kFanout]                    (160..236)
//   internal: u32 children[kFanout + 1]              (160..240)
constexpr size_t kKeysOff = 8;
constexpr size_t kSlotsOff = 160;

}  // namespace

struct OrderedIndex::Node {
  bool is_leaf = true;
  uint8_t count = 0;
  uint32_t right_plus1 = 0;
  uint64_t keys[kFanout] = {};
  uint32_t vals[kFanout + 1] = {};  // Leaf values or internal children.

  std::string Encode() const {
    std::string out(kNodeBytes, '\0');
    out[0] = is_leaf ? 1 : 0;
    out[1] = static_cast<char>(count);
    std::memcpy(out.data() + 4, &right_plus1, 4);
    std::memcpy(out.data() + kKeysOff, keys, sizeof(uint64_t) * count);
    size_t nvals = is_leaf ? count : count + 1u;
    std::memcpy(out.data() + kSlotsOff, vals, sizeof(uint32_t) * nvals);
    return out;
  }

  static Node Decode(const std::string& bytes) {
    Node n;
    n.is_leaf = bytes[0] != 0;
    n.count = static_cast<uint8_t>(bytes[1]);
    if (n.count > kFanout) n.count = kFanout;  // Defensive clamp.
    std::memcpy(&n.right_plus1, bytes.data() + 4, 4);
    std::memcpy(n.keys, bytes.data() + kKeysOff, sizeof(uint64_t) * n.count);
    size_t nvals = n.is_leaf ? n.count : n.count + 1u;
    std::memcpy(n.vals, bytes.data() + kSlotsOff, sizeof(uint32_t) * nvals);
    return n;
  }
};

Result<OrderedIndex> OrderedIndex::Create(Database* db, Transaction* txn,
                                          const std::string& name,
                                          uint64_t max_nodes) {
  if (max_nodes < 2) {
    return Status::InvalidArgument("ordered index needs at least 2 nodes");
  }
  CWDB_ASSIGN_OR_RETURN(
      TableId nodes,
      db->CreateTable(txn, NodesName(name), kNodeBytes, max_nodes));
  CWDB_ASSIGN_OR_RETURN(TableId meta,
                        db->CreateTable(txn, MetaName(name), 8, 1));
  OrderedIndex index(db, nodes, meta);
  Node root;  // Empty leaf.
  CWDB_ASSIGN_OR_RETURN(uint32_t root_slot, index.AllocNode(txn, root));
  std::string meta_rec(8, '\0');
  uint32_t root_plus1 = root_slot + 1;
  std::memcpy(meta_rec.data(), &root_plus1, 4);
  CWDB_ASSIGN_OR_RETURN(RecordId rid, db->Insert(txn, meta, meta_rec));
  CWDB_CHECK(rid.slot == 0);
  return index;
}

Result<OrderedIndex> OrderedIndex::Open(Database* db,
                                        const std::string& name) {
  CWDB_ASSIGN_OR_RETURN(TableId nodes, db->FindTable(NodesName(name)));
  CWDB_ASSIGN_OR_RETURN(TableId meta, db->FindTable(MetaName(name)));
  return OrderedIndex(db, nodes, meta);
}

Status OrderedIndex::LockIndex(Transaction* txn, bool exclusive) {
  if (db_->txns()->recovery_mode()) return Status::OK();
  return db_->txns()->locks().Acquire(
      txn->id(), LockId::Table(nodes_),
      exclusive ? LockMode::kExclusive : LockMode::kShared);
}

Result<uint32_t> OrderedIndex::RootSlot(Transaction* txn) {
  uint32_t root_plus1 = 0;
  CWDB_RETURN_IF_ERROR(db_->ReadField(txn, meta_, 0, 0, 4, &root_plus1));
  if (root_plus1 == 0) return Status::Corruption("ordered index has no root");
  return root_plus1 - 1;
}

Status OrderedIndex::SetRootSlot(Transaction* txn, uint32_t root) {
  uint32_t root_plus1 = root + 1;
  return db_->Update(txn, meta_, 0, 0,
                     Slice(reinterpret_cast<const char*>(&root_plus1), 4));
}

Result<OrderedIndex::Node> OrderedIndex::ReadNode(Transaction* txn,
                                                  uint32_t slot) {
  std::string bytes;
  CWDB_RETURN_IF_ERROR(db_->Read(txn, nodes_, slot, &bytes));
  return Node::Decode(bytes);
}

Status OrderedIndex::WriteNode(Transaction* txn, uint32_t slot,
                               const Node& node) {
  return db_->Update(txn, nodes_, slot, 0, node.Encode());
}

Result<uint32_t> OrderedIndex::AllocNode(Transaction* txn, const Node& node) {
  CWDB_ASSIGN_OR_RETURN(RecordId rid, db_->Insert(txn, nodes_, node.Encode()));
  return rid.slot;
}

Result<uint32_t> OrderedIndex::DescendToLeaf(
    Transaction* txn, uint64_t key,
    std::vector<std::pair<uint32_t, uint32_t>>* path) {
  CWDB_ASSIGN_OR_RETURN(uint32_t slot, RootSlot(txn));
  for (int depth = 0; depth < 64; ++depth) {  // Defensive bound.
    CWDB_ASSIGN_OR_RETURN(Node node, ReadNode(txn, slot));
    if (node.is_leaf) return slot;
    uint32_t ci = static_cast<uint32_t>(
        std::upper_bound(node.keys, node.keys + node.count, key) - node.keys);
    if (path != nullptr) path->push_back({slot, ci});
    slot = node.vals[ci];
  }
  return Status::Corruption("ordered index deeper than 64 levels (cycle?)");
}

Status OrderedIndex::Insert(Transaction* txn, uint64_t key, uint32_t value) {
  CWDB_RETURN_IF_ERROR(LockIndex(txn, /*exclusive=*/true));
  std::vector<std::pair<uint32_t, uint32_t>> path;
  CWDB_ASSIGN_OR_RETURN(uint32_t leaf_slot, DescendToLeaf(txn, key, &path));
  CWDB_ASSIGN_OR_RETURN(Node leaf, ReadNode(txn, leaf_slot));

  uint32_t pos = static_cast<uint32_t>(
      std::lower_bound(leaf.keys, leaf.keys + leaf.count, key) - leaf.keys);
  if (pos < leaf.count && leaf.keys[pos] == key) {
    return Status::AlreadyExists("key already indexed");
  }
  if (leaf.count < kFanout) {
    for (uint32_t i = leaf.count; i > pos; --i) {
      leaf.keys[i] = leaf.keys[i - 1];
      leaf.vals[i] = leaf.vals[i - 1];
    }
    leaf.keys[pos] = key;
    leaf.vals[pos] = value;
    ++leaf.count;
    return WriteNode(txn, leaf_slot, leaf);
  }

  // Leaf split: distribute kFanout+1 entries across the old and a new
  // right sibling; the separator is the right sibling's first key.
  uint64_t tmp_keys[kFanout + 1];
  uint32_t tmp_vals[kFanout + 1];
  std::memcpy(tmp_keys, leaf.keys, sizeof(uint64_t) * pos);
  std::memcpy(tmp_vals, leaf.vals, sizeof(uint32_t) * pos);
  tmp_keys[pos] = key;
  tmp_vals[pos] = value;
  std::memcpy(tmp_keys + pos + 1, leaf.keys + pos,
              sizeof(uint64_t) * (leaf.count - pos));
  std::memcpy(tmp_vals + pos + 1, leaf.vals + pos,
              sizeof(uint32_t) * (leaf.count - pos));
  const uint32_t total = kFanout + 1;
  const uint32_t left_n = total / 2;

  Node right;
  right.is_leaf = true;
  right.count = static_cast<uint8_t>(total - left_n);
  std::memcpy(right.keys, tmp_keys + left_n,
              sizeof(uint64_t) * right.count);
  std::memcpy(right.vals, tmp_vals + left_n,
              sizeof(uint32_t) * right.count);
  right.right_plus1 = leaf.right_plus1;
  CWDB_ASSIGN_OR_RETURN(uint32_t right_slot, AllocNode(txn, right));

  leaf.count = static_cast<uint8_t>(left_n);
  std::memcpy(leaf.keys, tmp_keys, sizeof(uint64_t) * left_n);
  std::memcpy(leaf.vals, tmp_vals, sizeof(uint32_t) * left_n);
  leaf.right_plus1 = right_slot + 1;
  CWDB_RETURN_IF_ERROR(WriteNode(txn, leaf_slot, leaf));

  uint64_t sep = right.keys[0];
  uint32_t new_child = right_slot;

  // Propagate the separator up the recorded path.
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    auto [parent_slot, ci] = *it;
    CWDB_ASSIGN_OR_RETURN(Node parent, ReadNode(txn, parent_slot));
    if (parent.count < kFanout) {
      for (uint32_t i = parent.count; i > ci; --i) {
        parent.keys[i] = parent.keys[i - 1];
      }
      for (uint32_t i = parent.count + 1; i > ci + 1; --i) {
        parent.vals[i] = parent.vals[i - 1];
      }
      parent.keys[ci] = sep;
      parent.vals[ci + 1] = new_child;
      ++parent.count;
      return WriteNode(txn, parent_slot, parent);
    }
    // Internal split: kFanout+1 keys, kFanout+2 children; the middle key
    // is promoted (not kept in either half).
    uint64_t ikeys[kFanout + 1];
    uint32_t ichildren[kFanout + 2];
    std::memcpy(ikeys, parent.keys, sizeof(uint64_t) * ci);
    ikeys[ci] = sep;
    std::memcpy(ikeys + ci + 1, parent.keys + ci,
                sizeof(uint64_t) * (parent.count - ci));
    std::memcpy(ichildren, parent.vals, sizeof(uint32_t) * (ci + 1));
    ichildren[ci + 1] = new_child;
    std::memcpy(ichildren + ci + 2, parent.vals + ci + 1,
                sizeof(uint32_t) * (parent.count - ci));
    const uint32_t nkeys = kFanout + 1;
    const uint32_t mid = nkeys / 2;

    Node iright;
    iright.is_leaf = false;
    iright.count = static_cast<uint8_t>(nkeys - mid - 1);
    std::memcpy(iright.keys, ikeys + mid + 1,
                sizeof(uint64_t) * iright.count);
    std::memcpy(iright.vals, ichildren + mid + 1,
                sizeof(uint32_t) * (iright.count + 1u));
    CWDB_ASSIGN_OR_RETURN(uint32_t iright_slot, AllocNode(txn, iright));

    parent.count = static_cast<uint8_t>(mid);
    std::memcpy(parent.keys, ikeys, sizeof(uint64_t) * mid);
    std::memcpy(parent.vals, ichildren, sizeof(uint32_t) * (mid + 1u));
    CWDB_RETURN_IF_ERROR(WriteNode(txn, parent_slot, parent));

    sep = ikeys[mid];
    new_child = iright_slot;
  }

  // The root itself split: grow the tree by one level.
  CWDB_ASSIGN_OR_RETURN(uint32_t old_root, RootSlot(txn));
  Node new_root;
  new_root.is_leaf = false;
  new_root.count = 1;
  new_root.keys[0] = sep;
  new_root.vals[0] = old_root;
  new_root.vals[1] = new_child;
  CWDB_ASSIGN_OR_RETURN(uint32_t new_root_slot, AllocNode(txn, new_root));
  return SetRootSlot(txn, new_root_slot);
}

Result<uint32_t> OrderedIndex::Lookup(Transaction* txn, uint64_t key) {
  CWDB_RETURN_IF_ERROR(LockIndex(txn, /*exclusive=*/false));
  CWDB_ASSIGN_OR_RETURN(uint32_t leaf_slot,
                        DescendToLeaf(txn, key, nullptr));
  CWDB_ASSIGN_OR_RETURN(Node leaf, ReadNode(txn, leaf_slot));
  uint32_t pos = static_cast<uint32_t>(
      std::lower_bound(leaf.keys, leaf.keys + leaf.count, key) - leaf.keys);
  if (pos < leaf.count && leaf.keys[pos] == key) return leaf.vals[pos];
  return Status::NotFound("key not indexed");
}

Status OrderedIndex::Erase(Transaction* txn, uint64_t key) {
  CWDB_RETURN_IF_ERROR(LockIndex(txn, /*exclusive=*/true));
  CWDB_ASSIGN_OR_RETURN(uint32_t leaf_slot,
                        DescendToLeaf(txn, key, nullptr));
  CWDB_ASSIGN_OR_RETURN(Node leaf, ReadNode(txn, leaf_slot));
  uint32_t pos = static_cast<uint32_t>(
      std::lower_bound(leaf.keys, leaf.keys + leaf.count, key) - leaf.keys);
  if (pos >= leaf.count || leaf.keys[pos] != key) {
    return Status::NotFound("key not indexed");
  }
  for (uint32_t i = pos + 1; i < leaf.count; ++i) {
    leaf.keys[i - 1] = leaf.keys[i];
    leaf.vals[i - 1] = leaf.vals[i];
  }
  --leaf.count;  // Lazy delete: no merge, the tree stays valid.
  return WriteNode(txn, leaf_slot, leaf);
}

Status OrderedIndex::Update(Transaction* txn, uint64_t key, uint32_t value) {
  CWDB_RETURN_IF_ERROR(LockIndex(txn, /*exclusive=*/true));
  CWDB_ASSIGN_OR_RETURN(uint32_t leaf_slot,
                        DescendToLeaf(txn, key, nullptr));
  CWDB_ASSIGN_OR_RETURN(Node leaf, ReadNode(txn, leaf_slot));
  uint32_t pos = static_cast<uint32_t>(
      std::lower_bound(leaf.keys, leaf.keys + leaf.count, key) - leaf.keys);
  if (pos >= leaf.count || leaf.keys[pos] != key) {
    return Status::NotFound("key not indexed");
  }
  leaf.vals[pos] = value;
  return WriteNode(txn, leaf_slot, leaf);
}

Status OrderedIndex::Scan(
    Transaction* txn, uint64_t lo, uint64_t hi,
    const std::function<Status(uint64_t, uint32_t)>& fn) {
  CWDB_RETURN_IF_ERROR(LockIndex(txn, /*exclusive=*/false));
  CWDB_ASSIGN_OR_RETURN(uint32_t slot, DescendToLeaf(txn, lo, nullptr));
  while (true) {
    CWDB_ASSIGN_OR_RETURN(Node leaf, ReadNode(txn, slot));
    for (uint32_t i = 0; i < leaf.count; ++i) {
      if (leaf.keys[i] < lo) continue;
      if (leaf.keys[i] > hi) return Status::OK();
      CWDB_RETURN_IF_ERROR(fn(leaf.keys[i], leaf.vals[i]));
    }
    if (leaf.right_plus1 == 0) return Status::OK();
    slot = leaf.right_plus1 - 1;
  }
}

Result<uint64_t> OrderedIndex::KeyCount(Transaction* txn) {
  uint64_t count = 0;
  CWDB_RETURN_IF_ERROR(
      Scan(txn, 0, ~0ull, [&](uint64_t, uint32_t) {
        ++count;
        return Status::OK();
      }));
  return count;
}

Status OrderedIndex::CheckSubtree(Transaction* txn, uint32_t slot,
                                  uint64_t lo, uint64_t hi, bool has_lo,
                                  bool has_hi, uint32_t depth,
                                  uint32_t* leaf_depth) {
  if (depth > 64) return Status::Corruption("tree too deep (cycle?)");
  CWDB_ASSIGN_OR_RETURN(Node node, ReadNode(txn, slot));
  for (uint32_t i = 0; i < node.count; ++i) {
    if (i > 0 && node.keys[i] <= node.keys[i - 1]) {
      return Status::Corruption("keys out of order in node");
    }
    if (has_lo && node.keys[i] < lo) {
      return Status::Corruption("key below subtree bound");
    }
    if (has_hi && node.keys[i] >= hi) {
      return Status::Corruption("key above subtree bound");
    }
  }
  if (node.is_leaf) {
    if (*leaf_depth == ~0u) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at different depths");
    }
    return Status::OK();
  }
  for (uint32_t i = 0; i <= node.count; ++i) {
    uint64_t child_lo = i == 0 ? lo : node.keys[i - 1];
    bool child_has_lo = i == 0 ? has_lo : true;
    uint64_t child_hi = i == node.count ? hi : node.keys[i];
    bool child_has_hi = i == node.count ? has_hi : true;
    CWDB_RETURN_IF_ERROR(CheckSubtree(txn, node.vals[i], child_lo, child_hi,
                                      child_has_lo, child_has_hi, depth + 1,
                                      leaf_depth));
  }
  return Status::OK();
}

Result<uint32_t> OrderedIndex::CheckTree(Transaction* txn) {
  CWDB_RETURN_IF_ERROR(LockIndex(txn, /*exclusive=*/false));
  CWDB_ASSIGN_OR_RETURN(uint32_t root, RootSlot(txn));
  uint32_t leaf_depth = ~0u;
  CWDB_RETURN_IF_ERROR(
      CheckSubtree(txn, root, 0, 0, false, false, 0, &leaf_depth));
  // The leaf chain must visit keys in strictly increasing order and agree
  // with the recursive walk's count.
  uint64_t recursive_count = 0;
  std::function<Status(uint32_t)> count_rec = [&](uint32_t s) -> Status {
    CWDB_ASSIGN_OR_RETURN(Node n, ReadNode(txn, s));
    if (n.is_leaf) {
      recursive_count += n.count;
      return Status::OK();
    }
    for (uint32_t i = 0; i <= n.count; ++i) {
      CWDB_RETURN_IF_ERROR(count_rec(n.vals[i]));
    }
    return Status::OK();
  };
  CWDB_RETURN_IF_ERROR(count_rec(root));

  uint64_t chain_count = 0;
  uint64_t prev = 0;
  bool first = true;
  CWDB_RETURN_IF_ERROR(Scan(txn, 0, ~0ull, [&](uint64_t k, uint32_t) {
    if (!first && k <= prev) {
      return Status::Corruption("leaf chain out of order");
    }
    first = false;
    prev = k;
    ++chain_count;
    return Status::OK();
  }));
  if (chain_count != recursive_count) {
    return Status::Corruption("leaf chain does not reach every leaf");
  }
  return leaf_depth + 1;
}

}  // namespace cwdb
