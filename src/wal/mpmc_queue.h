#ifndef CWDB_WAL_MPMC_QUEUE_H_
#define CWDB_WAL_MPMC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <memory>

#include "common/logging.h"

namespace cwdb {

/// Bounded lock-free multi-producer/multi-consumer queue (Vyukov's bounded
/// MPMC design): a power-of-two ring of cells, each carrying a sequence
/// number that encodes whose turn the cell is.
///
/// Invariants (the memory-ordering argument, see DESIGN.md §10):
///  * A producer claims cell `pos` when `cell.seq == pos` (the cell is
///    empty and it is this lap's turn). It CASes enqueue_pos_ to own the
///    claim, stores the value, then *releases* `cell.seq = pos + 1` —
///    publishing the value to the consumer that observes the new seq with
///    an *acquire* load.
///  * A consumer claims cell `pos` when `cell.seq == pos + 1` (a value is
///    present). After reading the value it releases `cell.seq = pos +
///    capacity`, handing the cell to the producer of the next lap.
///  * enqueue_pos_/dequeue_pos_ are claim tickets only; the seq handshake
///    is what transfers the data, so no value is ever read before its
///    store is visible, and no cell is reused before its value is taken.
///
/// TryPush/TryPop never block and never spin unboundedly: they fail when
/// the queue is full/empty, and the caller decides (the WAL's group-commit
/// path falls back to yielding, see system_log.cc).
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity) : mask_(capacity - 1) {
    CWDB_CHECK(capacity >= 2 && (capacity & mask_) == 0)
        << "MpmcQueue capacity must be a power of two >= 2";
    cells_.reset(new Cell[capacity]);
    for (size_t i = 0; i < capacity; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Enqueues `value`; false if the queue is full.
  bool TryPush(T value) {
    Cell* cell;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->seq.load(std::memory_order_acquire);
      intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        // Our turn: claim the ticket. Weak CAS — a spurious failure just
        // re-reads pos and retries.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // Cell still holds last lap's value: full.
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeues into *value; false if the queue is empty.
  bool TryPop(T* value) {
    Cell* cell;
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->seq.load(std::memory_order_acquire);
      intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // Producer has not published this cell yet: empty.
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    *value = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

 private:
  /// Cache-line padding keeps the producer and consumer tickets (and each
  /// cell's seq) off each other's lines — the queue is contended by design.
  struct alignas(64) Cell {
    std::atomic<size_t> seq;
    T value;
  };

  const size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};
};

}  // namespace cwdb

#endif  // CWDB_WAL_MPMC_QUEUE_H_
