#include "wal/log_record.h"

#include "common/coding.h"

namespace cwdb {

namespace {

void PutHeader(std::string* dst, LogRecordType type, TxnId txn) {
  PutFixed8(dst, static_cast<uint8_t>(type));
  PutFixed64(dst, txn);
}

}  // namespace

void EncodeBeginTxn(std::string* dst, TxnId txn) {
  PutHeader(dst, LogRecordType::kBeginTxn, txn);
}

void EncodeCommitTxn(std::string* dst, TxnId txn) {
  PutHeader(dst, LogRecordType::kCommitTxn, txn);
}

void EncodeAbortTxn(std::string* dst, TxnId txn) {
  PutHeader(dst, LogRecordType::kAbortTxn, txn);
}

void EncodePhysRedo(std::string* dst, TxnId txn, DbPtr off, Slice after,
                    const codeword_t* before_cksum) {
  PutHeader(dst, LogRecordType::kPhysRedo, txn);
  PutFixed64(dst, off);
  PutFixed32(dst, static_cast<uint32_t>(after.size()));
  PutFixed8(dst, before_cksum != nullptr ? 1 : 0);
  if (before_cksum != nullptr) PutFixed32(dst, *before_cksum);
  dst->append(after.data(), after.size());
}

void EncodeReadLog(std::string* dst, TxnId txn, DbPtr off, uint32_t len,
                   const codeword_t* cksum) {
  PutHeader(dst, LogRecordType::kReadLog, txn);
  PutFixed64(dst, off);
  PutFixed32(dst, len);
  PutFixed8(dst, cksum != nullptr ? 1 : 0);
  if (cksum != nullptr) PutFixed32(dst, *cksum);
}

void EncodeBeginOp(std::string* dst, TxnId txn, uint32_t op_id, uint8_t level,
                   OpCode opcode, TableId table, uint32_t slot, DbPtr raw_off,
                   uint32_t raw_len) {
  PutHeader(dst, LogRecordType::kBeginOp, txn);
  PutFixed32(dst, op_id);
  PutFixed8(dst, level);
  PutFixed8(dst, static_cast<uint8_t>(opcode));
  PutFixed16(dst, table);
  PutFixed32(dst, slot);
  PutFixed64(dst, raw_off);
  PutFixed32(dst, raw_len);
}

void EncodeCommitOp(std::string* dst, TxnId txn, uint32_t op_id,
                    uint8_t level, const LogicalUndo& undo) {
  PutHeader(dst, LogRecordType::kCommitOp, txn);
  PutFixed32(dst, op_id);
  PutFixed8(dst, level);
  PutFixed8(dst, static_cast<uint8_t>(undo.code));
  PutFixed16(dst, undo.table);
  PutFixed32(dst, undo.slot);
  PutFixed32(dst, undo.field_off);
  PutFixed64(dst, undo.raw_off);
  PutLengthPrefixed(dst, undo.payload);
}

void EncodeAuditBegin(std::string* dst) {
  PutHeader(dst, LogRecordType::kAuditBegin, 0);
}

bool DecodeLogRecord(Slice payload, LogRecord* out) {
  Decoder dec(payload);
  *out = LogRecord();
  uint8_t type = dec.GetFixed8();
  if (type < static_cast<uint8_t>(LogRecordType::kBeginTxn) ||
      type > static_cast<uint8_t>(LogRecordType::kAuditBegin)) {
    return false;
  }
  out->type = static_cast<LogRecordType>(type);
  out->txn = dec.GetFixed64();
  switch (out->type) {
    case LogRecordType::kBeginTxn:
    case LogRecordType::kCommitTxn:
    case LogRecordType::kAbortTxn:
    case LogRecordType::kAuditBegin:
      break;
    case LogRecordType::kPhysRedo: {
      out->off = dec.GetFixed64();
      out->len = dec.GetFixed32();
      out->has_cksum = dec.GetFixed8() != 0;
      if (out->has_cksum) out->cksum = dec.GetFixed32();
      Slice after = dec.GetBytes(out->len);
      out->after.assign(after.data(), after.size());
      break;
    }
    case LogRecordType::kReadLog:
      out->off = dec.GetFixed64();
      out->len = dec.GetFixed32();
      out->has_cksum = dec.GetFixed8() != 0;
      if (out->has_cksum) out->cksum = dec.GetFixed32();
      break;
    case LogRecordType::kBeginOp:
      out->op_id = dec.GetFixed32();
      out->level = dec.GetFixed8();
      out->opcode = static_cast<OpCode>(dec.GetFixed8());
      out->table = dec.GetFixed16();
      out->slot = dec.GetFixed32();
      out->off = dec.GetFixed64();
      out->len = dec.GetFixed32();
      break;
    case LogRecordType::kCommitOp: {
      out->op_id = dec.GetFixed32();
      out->level = dec.GetFixed8();
      out->undo.code = static_cast<UndoCode>(dec.GetFixed8());
      out->undo.table = dec.GetFixed16();
      out->undo.slot = dec.GetFixed32();
      out->undo.field_off = dec.GetFixed32();
      out->undo.raw_off = dec.GetFixed64();
      Slice payload_bytes = dec.GetLengthPrefixed();
      out->undo.payload.assign(payload_bytes.data(), payload_bytes.size());
      break;
    }
  }
  return dec.ok();
}

}  // namespace cwdb
