#include "wal/system_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/coding.h"
#include "common/crashpoint.h"
#include "common/crc32.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "obs/flight_recorder.h"

namespace cwdb {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc.

/// A shard publishes its staged frames to the drainer queue once they pass
/// this size, so a long transaction's redo streams out incrementally
/// instead of arriving as one giant batch at commit.
constexpr size_t kPublishThresholdBytes = 32 << 10;

/// Upper bound on one pwrite chunk. A round with a larger backlog writes
/// multiple chunks (and only fsyncs after the last one it needs).
constexpr size_t kMaxWriteChunkBytes = 4 << 20;

/// Capacity of the lock-free batch queue (batches, not bytes). At the
/// publish threshold this is ~32 MB of backlog before producers have to
/// yield to the drainer.
constexpr size_t kQueueCapacity = 1024;

/// The stable file is zero-extended this far past the write frontier
/// before frames land there. A small append-then-fdatasync to an
/// *unallocated* region must commit an ext4 journal transaction for the
/// block allocation and i_size change — measured at 2x the cost of the
/// pure data writeback that suffices once the blocks exist, and with far
/// heavier tails. Preallocating in big strides keeps the journal out of
/// the commit path entirely; ScanTail classifies a zero tail as clean
/// preallocation, so a crash anywhere in the scheme recovers as before.
constexpr uint64_t kPreallocChunkBytes = 1 << 20;

/// Group-commit dally tuning: the hold ends when a quiet window passes
/// with no new registration, when as many registrations have arrived as
/// the previous round absorbed, or at the hard deadline.
constexpr auto kDallyQuietWindow = std::chrono::microseconds(50);
constexpr auto kDallyDeadline = std::chrono::microseconds(300);

/// Length of the valid frame prefix of `contents`.
uint64_t ValidPrefix(const std::string& contents) {
  uint64_t pos = 0;
  while (pos + kFrameHeaderBytes <= contents.size()) {
    uint32_t len = DecodeFixed32(contents.data() + pos);
    uint32_t crc = DecodeFixed32(contents.data() + pos + 4);
    // A zero header is preallocated file space, never a frame: appends are
    // always non-empty (enforced at staging), and Crc32c of nothing is 0,
    // so without this check eight zero bytes would verify as a valid empty
    // frame and the scan would walk the whole preallocated tail.
    if (len == 0 && crc == 0) break;
    if (pos + kFrameHeaderBytes + len > contents.size()) break;
    if (Crc32c(contents.data() + pos + kFrameHeaderBytes, len) != crc) break;
    pos += kFrameHeaderBytes + len;
  }
  return pos;
}

/// Classifies the invalid suffix (if any): torn append vs in-place damage.
/// A torn tail is an *incomplete* final frame with nothing valid after it —
/// the only shape a crashed append can leave, since nothing beyond the torn
/// write was ever issued. Anything else (a complete frame failing its CRC,
/// or a later frame that still verifies) means stable bytes were altered
/// after they were made durable.
WalTailScan ScanTail(const std::string& contents) {
  WalTailScan scan;
  scan.file_bytes = contents.size();
  scan.valid_bytes = ValidPrefix(contents);
  if (scan.valid_bytes >= contents.size()) return scan;
  const uint64_t bad = scan.valid_bytes;
  bool zero_header = false;
  if (bad + kFrameHeaderBytes <= contents.size()) {
    uint32_t len = DecodeFixed32(contents.data() + bad);
    uint32_t crc = DecodeFixed32(contents.data() + bad + 4);
    zero_header = len == 0 && crc == 0;
    if (!zero_header && bad + kFrameHeaderBytes + len <= contents.size()) {
      scan.damaged = true;  // Complete frame, bad CRC: payload damage.
      scan.damage_off = bad;
      return scan;
    }
  }
  // A zero header is normally clean preallocated space; still resync-scan
  // below, because a valid frame *after* the zeros would mean stable bytes
  // were wiped in place rather than never written.
  // The frame header itself may hold the damaged bytes (a flipped length
  // word looks torn). Resync-scan a bounded window for any later frame
  // that still verifies; finding one proves the log continued past the
  // "tear". Bounded: 1 MiB of candidate offsets, 1024 CRC evaluations.
  const uint64_t window_end =
      std::min<uint64_t>(contents.size(), bad + (1ull << 20));
  size_t crc_attempts = 0;
  for (uint64_t off = bad + 1;
       off + kFrameHeaderBytes <= window_end && crc_attempts < 1024; ++off) {
    uint32_t len = DecodeFixed32(contents.data() + off);
    uint32_t crc = DecodeFixed32(contents.data() + off + 4);
    if (len == 0 || len > contents.size() ||
        off + kFrameHeaderBytes + len > contents.size()) {
      continue;
    }
    ++crc_attempts;
    if (Crc32c(contents.data() + off + kFrameHeaderBytes, len) == crc) {
      scan.damaged = true;
      scan.damage_off = bad;
      return scan;
    }
  }
  return scan;
}

}  // namespace

SystemLog::SystemLog(std::string path, int fd, uint64_t stable_size,
                     MetricsRegistry* metrics, size_t shards)
    : path_(std::move(path)),
      fd_(fd),
      metrics_(FallbackRegistry(metrics, &own_metrics_)),
      logical_end_(stable_size),
      durable_(stable_size),
      queue_(kQueueCapacity),
      write_pos_(stable_size),
      alloc_end_(stable_size) {
  ins_.appends = metrics_->counter("wal.appends");
  ins_.bytes_appended = metrics_->counter("wal.bytes_appended");
  ins_.flushes = metrics_->counter("wal.flushes");
  ins_.flush_failures = metrics_->counter("wal.flush_failures");
  ins_.flush_piggybacks = metrics_->counter("wal.flush_piggybacks");
  ins_.tail_bytes = metrics_->gauge("wal.tail_bytes");
  ins_.flush_latency_ns = metrics_->histogram("wal.flush_latency_ns");
  ins_.flush_batch_bytes = metrics_->histogram("wal.flush_batch_bytes");
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<AppendShard>();
    char name[48];
    std::snprintf(name, sizeof(name), "wal.shard%zu.appends", s);
    shard->appends = metrics_->counter(name);
    shard->index = s;
    shards_.push_back(std::move(shard));
  }
  drainer_ = std::thread([this] { DrainerLoop(); });
}

SystemLog::~SystemLog() {
  {
    std::lock_guard<std::mutex> guard(drain_mu_);
    stop_ = true;
  }
  drain_cv_.notify_all();
  if (drainer_.joinable()) drainer_.join();
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<SystemLog>> SystemLog::Open(const std::string& path,
                                                   MetricsRegistry* metrics,
                                                   size_t shards,
                                                   FlightRecorder* recorder) {
  std::string contents;
  CWDB_RETURN_IF_ERROR(
      ReadFileToString(path, &contents, MissingFile::kTreatAsEmpty));
  WalTailScan scan = ScanTail(contents);
  const uint64_t stable = scan.valid_bytes;
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  // Physically drop any torn tail so appends continue from the valid prefix.
  if (stable < contents.size()) {
    if (::ftruncate(fd, static_cast<off_t>(stable)) != 0) {
      Status s =
          Status::IoError("ftruncate " + path + ": " + std::strerror(errno));
      ::close(fd);
      return s;
    }
  }
  auto log = std::unique_ptr<SystemLog>(
      new SystemLog(path, fd, stable, metrics, shards));
  log->recorder_ = recorder;
  if (recorder != nullptr) {
    // Seed the black box's frontiers with the recovered stable state so a
    // crash before the first append still reads sensibly.
    recorder->NoteDurableLsn(stable, stable);
  }
  log->tail_scan_ = scan;
  if (scan.damaged) {
    // The caller (Database recovery) files the incident dossier; the
    // counter and trace entry are recorded here so standalone opens (tools,
    // tests) still leave evidence.
    log->metrics_->counter("wal.crc_damaged_tail")->Add();
    log->metrics_->trace().Record(TraceEventType::kWalTailDamage, stable,
                                  scan.damage_off, scan.file_bytes);
  }
  return log;
}

size_t SystemLog::ShardIndex() const {
  // Round-robin thread-to-shard assignment, sticky per thread: appends by
  // one thread always stage in order on one shard, which (with the LSN
  // fetch_add under the shard mutex) keeps every shard buffer LSN-sorted.
  static std::atomic<size_t> next_token{0};
  thread_local size_t token =
      next_token.fetch_add(1, std::memory_order_relaxed);
  return token % shards_.size();
}

Lsn SystemLog::StageFrameLocked(AppendShard& sh, Slice payload) {
  // Empty frames are indistinguishable from preallocated zeros on disk
  // (Crc32c of nothing is 0), so the recovery scan treats a zero header as
  // end of log; staging one would silently end the log early.
  CWDB_DCHECK(!payload.empty()) << "empty log payload";
  const uint64_t frame_bytes = kFrameHeaderBytes + payload.size();
  Lsn lsn = logical_end_.fetch_add(frame_bytes, std::memory_order_acq_rel);
  std::string frame;
  frame.reserve(frame_bytes);
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Crc32c(payload.data(), payload.size()));
  frame.append(payload.data(), payload.size());
  sh.frames.emplace_back(lsn, std::move(frame));
  sh.bytes += frame_bytes;
  ins_.bytes_appended->Add(frame_bytes);
  if (recorder_ != nullptr) {
    // Mirror the staged frontier into the black box: one relaxed store on
    // a path that already holds the shard mutex — no new synchronization.
    recorder_->NoteStagedLsn(sh.index, lsn + frame_bytes);
  }
  return lsn;
}

void SystemLog::PublishLocked(AppendShard& sh) {
  if (sh.frames.empty()) return;
  auto batch = std::make_unique<Batch>();
  batch->frames = std::move(sh.frames);
  batch->tags = std::move(sh.tags);
  sh.frames.clear();
  sh.tags.clear();
  sh.bytes = 0;
  // The queue-wait clock starts now: the tag is in flight to the drainer.
  if (!batch->tags.empty()) {
    const uint64_t now = NowNs();
    for (WalTraceTag& tag : batch->tags) tag.publish_ns = now;
  }
  // The queue is bounded; when it is full the drainer is far behind, so
  // yielding to it is the right (and rare) backpressure.
  while (!queue_.TryPush(batch.get())) std::this_thread::yield();
  batch.release();
}

Lsn SystemLog::Append(Slice payload) {
  AppendShard& sh = *shards_[ShardIndex()];
  std::lock_guard<std::mutex> guard(sh.mu);
  Lsn lsn = StageFrameLocked(sh, payload);
  ins_.appends->Add();
  sh.appends->Add();
  if (sh.bytes >= kPublishThresholdBytes) PublishLocked(sh);
  ins_.tail_bytes->Set(static_cast<int64_t>(
      logical_end_.load(std::memory_order_relaxed) -
      durable_.load(std::memory_order_relaxed)));
  return lsn;
}

Lsn SystemLog::AppendAll(const std::vector<std::string>& payloads,
                         const SpanContext* trace) {
  if (payloads.empty()) return CurrentLsn();
  AppendShard& sh = *shards_[ShardIndex()];
  std::lock_guard<std::mutex> guard(sh.mu);
  Lsn first = kInvalidLsn;
  Lsn end = 0;
  for (const std::string& payload : payloads) {
    Lsn lsn = StageFrameLocked(sh, payload);
    if (first == kInvalidLsn) first = lsn;
    end = lsn + kFrameHeaderBytes + payload.size();
  }
  if (trace != nullptr && trace->sampled()) {
    sh.tags.push_back(WalTraceTag{*trace, 0, end});
  }
  ins_.appends->Add(payloads.size());
  sh.appends->Add(payloads.size());
  if (sh.bytes >= kPublishThresholdBytes) PublishLocked(sh);
  ins_.tail_bytes->Set(static_cast<int64_t>(
      logical_end_.load(std::memory_order_relaxed) -
      durable_.load(std::memory_order_relaxed)));
  return first;
}

Status SystemLog::Preallocate(uint64_t new_end) {
  std::string zeros(64 << 10, '\0');
  uint64_t at = alloc_end_;
  while (at < new_end) {
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(zeros.size(), new_end - at));
    const ssize_t w = ::pwrite(fd_, zeros.data(), n, static_cast<off_t>(at));
    if (w < 0) {
      return Status::IoError("preallocate " + path_ + ": " +
                             std::strerror(errno));
    }
    at += static_cast<uint64_t>(w);
  }
  alloc_end_ = new_end;
  return Status::OK();
}

Status SystemLog::Flush() {
  // Everything appended before this call has an LSN below `target` (the
  // fetch_add happened before this load), and its frame reached its shard
  // buffer under the shard mutex — so the sweep below is guaranteed to see
  // it. Frames appended concurrently get LSNs at or above target and may
  // ride along; they never create a gap below it.
  const Lsn target = logical_end_.load(std::memory_order_acquire);
  if (target <= durable_.load(std::memory_order_acquire)) return Status::OK();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard->mu);
    PublishLocked(*shard);
  }
  std::unique_lock<std::mutex> guard(drain_mu_);
  const uint64_t my_req = ++request_seq_;
  if (flush_target_ < target) flush_target_ = target;
  if (in_round_) {
    ins_.flush_piggybacks->Add();
    ++round_piggybacks_;
  }
  drain_cv_.notify_one();
  flush_cv_.wait(guard, [&] {
    return durable_.load(std::memory_order_relaxed) >= target ||
           error_seq_ >= my_req;
  });
  if (durable_.load(std::memory_order_relaxed) >= target) return Status::OK();
  return last_error_;
}

void SystemLog::DrainerLoop() {
  std::unique_lock<std::mutex> guard(drain_mu_);
  for (;;) {
    drain_cv_.wait(guard, [&] {
      return stop_ || (flush_target_ > durable_.load(std::memory_order_relaxed) &&
                       request_seq_ > failed_req_);
    });
    if (stop_) return;

    // Group-commit dally: the committers the previous round woke are about
    // to run one transaction each and register again; without a short hold
    // the round latches its target before they arrive and every burst of N
    // commits splits across two fsyncs. Piggybacked registrations (or ≥2
    // arrivals since the last latch) are the evidence a burst exists; a
    // single committer never piggybacks, so the unconcurrent path pays no
    // extra latency. The estimate includes last round's stragglers so it
    // grows to the true concurrency instead of locking in whatever the
    // first undersized round happened to catch.
    if (last_round_reqs_ >= 2 || piggybacks_last_round_ > 0 ||
        request_seq_ - last_latch_seq_ >= 2) {
      const uint64_t expected = std::max<uint64_t>(
          last_round_reqs_ + piggybacks_last_round_, 2);
      const auto deadline = std::chrono::steady_clock::now() + kDallyDeadline;
      while (request_seq_ - last_latch_seq_ < expected) {
        const uint64_t seen = request_seq_;
        drain_cv_.wait_for(guard, kDallyQuietWindow);
        if (stop_) return;
        if (request_seq_ == seen) break;  // Quiet window: burst is in.
        if (std::chrono::steady_clock::now() >= deadline) break;
      }
    }

    // Merge everything queued so far into the reorder buffer. Trace tags
    // close their queue-wait span here (publish -> pop is the cross-thread
    // hop) and park in traced_ until the durable frontier passes them.
    bool popped = false;
    Batch* batch = nullptr;
    while (queue_.TryPop(&batch)) {
      popped = true;
      for (auto& f : batch->frames) {
        pending_.emplace(f.first, std::move(f.second));
      }
      if (!batch->tags.empty()) {
        const uint64_t now = NowNs();
        for (WalTraceTag& tag : batch->tags) {
          tag.ctx.tracer->Record(tag.ctx, SpanKind::kQueueWait, tag.publish_ns,
                                 now, tag.end_lsn, 0);
          traced_.push_back(tag);
        }
      }
      delete batch;
    }

    // Coalesce the contiguous prefix at write_pos_ into one write chunk.
    // Writing only the contiguous prefix keeps the on-disk file a valid
    // frame prefix plus at most one torn frame at every instant — the
    // shape ScanTail's torn-vs-damaged classification relies on.
    std::string chunk;
    auto end_it = pending_.begin();
    const uint64_t base = write_pos_;
    uint64_t pos = base;
    while (end_it != pending_.end() && end_it->first == pos &&
           chunk.size() < kMaxWriteChunkBytes) {
      chunk.append(end_it->second);
      pos += end_it->second.size();
      ++end_it;
    }
    const bool do_sync = pos >= flush_target_;
    if (chunk.empty() && !do_sync) {
      // Transient gap: a publisher has reserved LSNs at write_pos_ but its
      // TryPush has not landed yet. Yield briefly and re-pop.
      if (!popped) {
        drain_cv_.wait_for(guard, std::chrono::microseconds(20));
      }
      continue;
    }

    // Latch the round: remember how many registrations it absorbs (the
    // next dally's burst-size estimate) and start counting piggybacks.
    last_round_reqs_ = request_seq_ - last_latch_seq_;
    last_latch_seq_ = request_seq_;
    piggybacks_last_round_ = round_piggybacks_;
    round_piggybacks_ = 0;
    in_round_ = true;
    guard.unlock();

    const uint64_t t0 = NowNs();
    Status io;
    bool wrote_ok = true;
    if (!chunk.empty() && base + chunk.size() + kFrameHeaderBytes >
                              alloc_end_) {
      // Zero-extend a full stride past the frontier so this round's
      // fdatasync is the only one that pays the allocation's journal
      // commit; the rounds that follow sync pure data. A crash between
      // the extension and the sync leaves a zero tail (or a shorter
      // file), both of which ScanTail reads as clean end of log.
      io = Preallocate(base + chunk.size() + kPreallocChunkBytes);
      wrote_ok = io.ok();
    }
    if (io.ok() && !chunk.empty()) {
      io = crashpoint::InjectedPWrite("wal.flush.pwrite", fd_, chunk.data(),
                                      chunk.size(), base);
      wrote_ok = io.ok();
    }
    const uint64_t t_write_end = NowNs();
    if (io.ok() && do_sync) {
      io = crashpoint::Check("wal.flush.fdatasync");
      if (io.ok() && ::fdatasync(fd_) != 0) {
        io = Status::IoError("fdatasync " + path_ + ": " +
                             std::strerror(errno));
      }
    }
    const uint64_t t_sync_end = NowNs();

    guard.lock();
    in_round_ = false;
    if (wrote_ok && !chunk.empty()) {
      // The bytes are in the file (synced or not); the frames need never
      // be rewritten, so a failed fsync retries as a pure-sync round.
      write_pos_ = pos;
      pending_.erase(pending_.begin(), end_it);
    }
    if (io.ok()) {
      if (do_sync) {
        const uint64_t advance =
            write_pos_ - durable_.load(std::memory_order_relaxed);
        durable_.store(write_pos_, std::memory_order_release);
        if (recorder_ != nullptr) {
          recorder_->NoteDurableLsn(
              write_pos_, logical_end_.load(std::memory_order_relaxed));
        }
        ins_.flushes->Add();
        ins_.flush_latency_ns->Record(NowNs() - t0);
        ins_.flush_batch_bytes->Record(advance);
        ins_.tail_bytes->Set(static_cast<int64_t>(
            logical_end_.load(std::memory_order_relaxed) - write_pos_));
        metrics_->trace().Record(TraceEventType::kGroupCommitFlush,
                                 write_pos_, advance, 0);
        if (!traced_.empty()) {
          // Tags whose frames this round made durable get their drainer-side
          // write and fsync spans (children of the originating commit's
          // flush-wait span) and retire; tags beyond the frontier wait for
          // a later round.
          auto keep = traced_.begin();
          for (auto it = traced_.begin(); it != traced_.end(); ++it) {
            if (it->end_lsn > write_pos_) {
              *keep++ = *it;
              continue;
            }
            if (!chunk.empty()) {
              it->ctx.tracer->Record(it->ctx, SpanKind::kDrainBatch, t0,
                                     t_write_end, chunk.size(), 0);
            }
            it->ctx.tracer->Record(it->ctx, SpanKind::kFsync, t_write_end,
                                   t_sync_end, advance, 0);
          }
          traced_.erase(keep, traced_.end());
        }
      }
    } else {
      // One failure per round, however many waiters it disappoints; the
      // frames stay staged at their LSNs, so the retry (triggered by the
      // next Flush call) covers the batch exactly once.
      ins_.flush_failures->Add();
      last_error_ = io;
      error_seq_ = request_seq_;
      failed_req_ = request_seq_;
    }
    flush_cv_.notify_all();
  }
}

void SystemLog::DiscardTail() {
  // Volatile staging dies first (what a process failure loses)...
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard->mu);
    shard->frames.clear();
    shard->tags.clear();
    shard->bytes = 0;
  }
  std::unique_lock<std::mutex> guard(drain_mu_);
  // ...then wait out any in-flight I/O round and drop everything that is
  // written but not yet durable: a crash loses unsynced bytes too, so the
  // conservative simulation truncates back to the fsync'd prefix.
  flush_cv_.wait(guard, [&] { return !in_round_; });
  Batch* batch = nullptr;
  while (queue_.TryPop(&batch)) delete batch;
  pending_.clear();
  traced_.clear();
  const uint64_t durable = durable_.load(std::memory_order_relaxed);
  if (write_pos_ > durable || alloc_end_ > durable) {
    CWDB_CHECK(::ftruncate(fd_, static_cast<off_t>(durable)) == 0)
        << "ftruncate " << path_ << ": " << std::strerror(errno);
  }
  alloc_end_ = durable;
  write_pos_ = durable;
  flush_target_ = durable;
  logical_end_.store(durable, std::memory_order_release);
  ins_.tail_bytes->Set(0);
}

Result<std::unique_ptr<LogReader>> LogReader::Open(const std::string& path,
                                                   Lsn start, Lsn limit) {
  std::string contents;
  CWDB_RETURN_IF_ERROR(
      ReadFileToString(path, &contents, MissingFile::kTreatAsEmpty));
  return std::unique_ptr<LogReader>(
      new LogReader(std::move(contents), start, limit));
}

bool LogReader::Next(LogRecord* record, Lsn* lsn) {
  while (true) {
    if (limit_ != kInvalidLsn && pos_ >= limit_) return false;
    if (pos_ + kFrameHeaderBytes > contents_.size()) return false;
    uint32_t len = DecodeFixed32(contents_.data() + pos_);
    uint32_t crc = DecodeFixed32(contents_.data() + pos_ + 4);
    // Zero header: preallocated space past the last frame (see ValidPrefix).
    if (len == 0 && crc == 0) return false;
    if (pos_ + kFrameHeaderBytes + len > contents_.size()) return false;
    const char* payload = contents_.data() + pos_ + kFrameHeaderBytes;
    if (Crc32c(payload, len) != crc) return false;  // Torn/corrupt tail.
    Lsn this_lsn = pos_;
    pos_ += kFrameHeaderBytes + len;
    if (!DecodeLogRecord(Slice(payload, len), record)) {
      // Framed but undecodable: treat as end of log (defensive).
      return false;
    }
    if (lsn != nullptr) *lsn = this_lsn;
    return true;
  }
}

}  // namespace cwdb
