#include "wal/system_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>

#include "common/coding.h"
#include "common/crashpoint.h"
#include "common/crc32.h"
#include "common/file_util.h"
#include "common/logging.h"

namespace cwdb {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc.

/// Length of the valid frame prefix of `contents`.
uint64_t ValidPrefix(const std::string& contents) {
  uint64_t pos = 0;
  while (pos + kFrameHeaderBytes <= contents.size()) {
    uint32_t len = DecodeFixed32(contents.data() + pos);
    uint32_t crc = DecodeFixed32(contents.data() + pos + 4);
    if (pos + kFrameHeaderBytes + len > contents.size()) break;
    if (Crc32c(contents.data() + pos + kFrameHeaderBytes, len) != crc) break;
    pos += kFrameHeaderBytes + len;
  }
  return pos;
}

/// Classifies the invalid suffix (if any): torn append vs in-place damage.
/// A torn tail is an *incomplete* final frame with nothing valid after it —
/// the only shape a crashed append can leave, since nothing beyond the torn
/// write was ever issued. Anything else (a complete frame failing its CRC,
/// or a later frame that still verifies) means stable bytes were altered
/// after they were made durable.
WalTailScan ScanTail(const std::string& contents) {
  WalTailScan scan;
  scan.file_bytes = contents.size();
  scan.valid_bytes = ValidPrefix(contents);
  if (scan.valid_bytes >= contents.size()) return scan;
  const uint64_t bad = scan.valid_bytes;
  if (bad + kFrameHeaderBytes <= contents.size()) {
    uint32_t len = DecodeFixed32(contents.data() + bad);
    if (bad + kFrameHeaderBytes + len <= contents.size()) {
      scan.damaged = true;  // Complete frame, bad CRC: payload damage.
      scan.damage_off = bad;
      return scan;
    }
  }
  // The frame header itself may hold the damaged bytes (a flipped length
  // word looks torn). Resync-scan a bounded window for any later frame
  // that still verifies; finding one proves the log continued past the
  // "tear". Bounded: 1 MiB of candidate offsets, 1024 CRC evaluations.
  const uint64_t window_end =
      std::min<uint64_t>(contents.size(), bad + (1ull << 20));
  size_t crc_attempts = 0;
  for (uint64_t off = bad + 1;
       off + kFrameHeaderBytes <= window_end && crc_attempts < 1024; ++off) {
    uint32_t len = DecodeFixed32(contents.data() + off);
    uint32_t crc = DecodeFixed32(contents.data() + off + 4);
    if (len == 0 || len > contents.size() ||
        off + kFrameHeaderBytes + len > contents.size()) {
      continue;
    }
    ++crc_attempts;
    if (Crc32c(contents.data() + off + kFrameHeaderBytes, len) == crc) {
      scan.damaged = true;
      scan.damage_off = bad;
      return scan;
    }
  }
  return scan;
}

}  // namespace

SystemLog::SystemLog(std::string path, int fd, uint64_t stable_size,
                     MetricsRegistry* metrics)
    : path_(std::move(path)),
      fd_(fd),
      stable_size_(stable_size),
      metrics_(FallbackRegistry(metrics, &own_metrics_)) {
  ins_.appends = metrics_->counter("wal.appends");
  ins_.bytes_appended = metrics_->counter("wal.bytes_appended");
  ins_.flushes = metrics_->counter("wal.flushes");
  ins_.flush_failures = metrics_->counter("wal.flush_failures");
  ins_.flush_piggybacks = metrics_->counter("wal.flush_piggybacks");
  ins_.tail_bytes = metrics_->gauge("wal.tail_bytes");
  ins_.flush_latency_ns = metrics_->histogram("wal.flush_latency_ns");
  ins_.flush_batch_bytes = metrics_->histogram("wal.flush_batch_bytes");
}

SystemLog::~SystemLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<SystemLog>> SystemLog::Open(const std::string& path,
                                                   MetricsRegistry* metrics) {
  std::string contents;
  CWDB_RETURN_IF_ERROR(
      ReadFileToString(path, &contents, MissingFile::kTreatAsEmpty));
  WalTailScan scan = ScanTail(contents);
  const uint64_t stable = scan.valid_bytes;
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  // Physically drop any torn tail so appends continue from the valid prefix.
  if (stable < contents.size()) {
    if (::ftruncate(fd, static_cast<off_t>(stable)) != 0) {
      Status s =
          Status::IoError("ftruncate " + path + ": " + std::strerror(errno));
      ::close(fd);
      return s;
    }
  }
  auto log =
      std::unique_ptr<SystemLog>(new SystemLog(path, fd, stable, metrics));
  log->tail_scan_ = scan;
  if (scan.damaged) {
    // The caller (Database recovery) files the incident dossier; the
    // counter and trace entry are recorded here so standalone opens (tools,
    // tests) still leave evidence.
    log->metrics_->counter("wal.crc_damaged_tail")->Add();
    log->metrics_->trace().Record(TraceEventType::kWalTailDamage, stable,
                                  scan.damage_off, scan.file_bytes);
  }
  return log;
}

Lsn SystemLog::Append(Slice payload) {
  std::lock_guard<std::mutex> guard(latch_);
  Lsn lsn = stable_size_ + flushing_bytes_ + tail_.size();
  PutFixed32(&tail_, static_cast<uint32_t>(payload.size()));
  PutFixed32(&tail_, Crc32c(payload.data(), payload.size()));
  tail_.append(payload.data(), payload.size());
  ins_.appends->Add();
  ins_.bytes_appended->Add(kFrameHeaderBytes + payload.size());
  ins_.tail_bytes->Set(static_cast<int64_t>(tail_.size()));
  return lsn;
}

Status SystemLog::Flush() {
  std::unique_lock<std::mutex> guard(latch_);
  const Lsn target = stable_size_ + flushing_bytes_ + tail_.size();
  Status status;
  bool piggybacked = false;
  while (stable_size_ < target) {
    if (flush_in_progress_) {
      // Another thread is writing a batch that (at least partly) covers
      // us; piggyback on its fsync instead of issuing our own.
      if (!piggybacked) {
        piggybacked = true;
        ins_.flush_piggybacks->Add();
      }
      flush_cv_.wait(guard);
      continue;
    }
    if (tail_.empty()) break;  // Batch that covered us already landed.
    // Become the flusher: take the whole pending tail as one batch and do
    // the I/O outside the latch so appenders keep running.
    flush_in_progress_ = true;
    std::string batch = std::move(tail_);
    tail_.clear();
    flushing_bytes_ = batch.size();
    const uint64_t base = stable_size_;
    ins_.tail_bytes->Set(0);
    guard.unlock();

    const uint64_t t0 = NowNs();
    Status io = crashpoint::InjectedPWrite("wal.flush.pwrite", fd_,
                                           batch.data(), batch.size(), base);
    if (io.ok()) io = crashpoint::Check("wal.flush.fdatasync");
    if (io.ok() && ::fdatasync(fd_) != 0) {
      io = Status::IoError("fdatasync " + path_ + ": " +
                           std::strerror(errno));
    }

    guard.lock();
    flush_in_progress_ = false;
    flushing_bytes_ = 0;
    if (io.ok()) {
      stable_size_ = base + batch.size();
      ins_.flushes->Add();
      ins_.flush_latency_ns->Record(NowNs() - t0);
      ins_.flush_batch_bytes->Record(batch.size());
      metrics_->trace().Record(TraceEventType::kGroupCommitFlush, stable_size_,
                               batch.size(), 0);
    } else {
      // Put the batch back in front of whatever accumulated meanwhile so
      // LSNs stay dense and a retry covers everything. The failure is
      // accounted separately from wal.flushes so a retried batch is not
      // double-counted as two successful flushes.
      batch.append(tail_);
      tail_ = std::move(batch);
      ins_.flush_failures->Add();
      ins_.tail_bytes->Set(static_cast<int64_t>(tail_.size()));
      status = io;
    }
    flush_cv_.notify_all();
    if (!status.ok()) return status;
  }
  return status;
}

Lsn SystemLog::CurrentLsn() const {
  std::lock_guard<std::mutex> guard(latch_);
  return stable_size_ + flushing_bytes_ + tail_.size();
}

Lsn SystemLog::end_of_stable_log() const {
  std::lock_guard<std::mutex> guard(latch_);
  return stable_size_;
}

void SystemLog::DiscardTail() {
  std::lock_guard<std::mutex> guard(latch_);
  tail_.clear();
  ins_.tail_bytes->Set(0);
}

Result<std::unique_ptr<LogReader>> LogReader::Open(const std::string& path,
                                                   Lsn start, Lsn limit) {
  std::string contents;
  CWDB_RETURN_IF_ERROR(
      ReadFileToString(path, &contents, MissingFile::kTreatAsEmpty));
  return std::unique_ptr<LogReader>(
      new LogReader(std::move(contents), start, limit));
}

bool LogReader::Next(LogRecord* record, Lsn* lsn) {
  while (true) {
    if (limit_ != kInvalidLsn && pos_ >= limit_) return false;
    if (pos_ + kFrameHeaderBytes > contents_.size()) return false;
    uint32_t len = DecodeFixed32(contents_.data() + pos_);
    uint32_t crc = DecodeFixed32(contents_.data() + pos_ + 4);
    if (pos_ + kFrameHeaderBytes + len > contents_.size()) return false;
    const char* payload = contents_.data() + pos_ + kFrameHeaderBytes;
    if (Crc32c(payload, len) != crc) return false;  // Torn/corrupt tail.
    Lsn this_lsn = pos_;
    pos_ += kFrameHeaderBytes + len;
    if (!DecodeLogRecord(Slice(payload, len), record)) {
      // Framed but undecodable: treat as end of log (defensive).
      return false;
    }
    if (lsn != nullptr) *lsn = this_lsn;
    return true;
  }
}

}  // namespace cwdb
