#ifndef CWDB_WAL_LOG_RECORD_H_
#define CWDB_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>

#include "common/codeword.h"
#include "common/slice.h"
#include "storage/layout.h"

namespace cwdb {

/// Log sequence number: byte offset of a record's frame in the system log
/// (stable prefix first, then the in-memory tail).
using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = ~0ull;

/// Record types in the system log and in per-transaction local logs.
///
/// The redo stream is purely physical (kPhysRedo) except for the
/// multi-level-recovery bookkeeping records (kBeginOp / kCommitOp carrying
/// the logical undo description) and transaction brackets — exactly the
/// Dalí model described in Section 2.1 of the paper. kReadLog is the
/// paper's contribution (Section 4.2): the identity of data read by a
/// transaction, optionally with a checksum of the bytes read, but never the
/// value itself.
enum class LogRecordType : uint8_t {
  kBeginTxn = 1,
  kCommitTxn = 2,
  kAbortTxn = 3,
  kPhysRedo = 4,
  kReadLog = 5,
  kBeginOp = 6,
  kCommitOp = 7,
  kAuditBegin = 8,
};

/// Logical operation codes (level-1 operations over tables).
enum class OpCode : uint8_t {
  kInsert = 1,
  kDelete = 2,
  kUpdate = 3,
  kCreateTable = 4,
};

/// Logical undo actions recorded in operation-commit records.
enum class UndoCode : uint8_t {
  kNone = 0,
  kDeleteSlot = 1,    ///< Undo of insert: delete record at (table, slot).
  kReinsertSlot = 2,  ///< Undo of delete: re-insert payload at (table, slot).
  kWriteField = 3,    ///< Undo of update: restore payload at field_off.
  kDropTable = 4,     ///< Undo of create-table: free the directory slot.
  kWriteRaw = 5,      ///< Undo of a raw region update: restore payload at
                      ///< absolute image offset raw_off.
};

/// Logical undo description stored in a kCommitOp record (and in the local
/// undo log once the operation commits).
struct LogicalUndo {
  UndoCode code = UndoCode::kNone;
  TableId table = 0;
  uint32_t slot = kInvalidSlot;
  uint32_t field_off = 0;
  DbPtr raw_off = 0;  ///< kWriteRaw only.
  std::string payload;
};

/// Decoded form of any log record. Encoding functions write only the
/// fields meaningful for the record type; the decoder fills the rest with
/// defaults.
struct LogRecord {
  LogRecordType type = LogRecordType::kBeginTxn;
  TxnId txn = 0;

  // kPhysRedo / kReadLog.
  DbPtr off = 0;
  uint32_t len = 0;
  bool has_cksum = false;      ///< Codeword Read Logging extension (§4.3).
  codeword_t cksum = 0;        ///< Fold of the bytes read / overwritten.
  std::string after;           ///< kPhysRedo only: the new bytes.

  // kBeginOp / kCommitOp.
  uint32_t op_id = 0;
  uint8_t level = 0;
  OpCode opcode = OpCode::kInsert;
  TableId table = 0;
  uint32_t slot = kInvalidSlot;
  LogicalUndo undo;  ///< kCommitOp only.
};

// -- Encoders (append the record payload, without framing, to *dst) --

void EncodeBeginTxn(std::string* dst, TxnId txn);
void EncodeCommitTxn(std::string* dst, TxnId txn);
void EncodeAbortTxn(std::string* dst, TxnId txn);

/// Physical redo: after-image of [off, off+len). If `before_cksum` is
/// non-null the record carries a codeword of the overwritten bytes, making
/// the write double as a read for corruption tracing ("a codeword stored in
/// a write log record indicates that it should be treated as a read
/// followed by a write", §4.3).
void EncodePhysRedo(std::string* dst, TxnId txn, DbPtr off, Slice after,
                    const codeword_t* before_cksum);

/// Read log record: identity of the bytes read, optional checksum, never
/// the value (§4.2).
void EncodeReadLog(std::string* dst, TxnId txn, DbPtr off, uint32_t len,
                   const codeword_t* cksum);

/// Begin-operation record. `table`/`slot` identify the logical target for
/// the corruption-recovery conflict check (§4.3); raw-region operations
/// additionally carry the physical range [raw_off, raw_off+raw_len).
void EncodeBeginOp(std::string* dst, TxnId txn, uint32_t op_id, uint8_t level,
                   OpCode opcode, TableId table, uint32_t slot, DbPtr raw_off,
                   uint32_t raw_len);
void EncodeCommitOp(std::string* dst, TxnId txn, uint32_t op_id,
                    uint8_t level, const LogicalUndo& undo);

void EncodeAuditBegin(std::string* dst);

/// Decodes one record payload. Returns false on malformed input.
bool DecodeLogRecord(Slice payload, LogRecord* out);

}  // namespace cwdb

#endif  // CWDB_WAL_LOG_RECORD_H_
