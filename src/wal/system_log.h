#ifndef CWDB_WAL_SYSTEM_LOG_H_
#define CWDB_WAL_SYSTEM_LOG_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "wal/log_record.h"

namespace cwdb {

/// What SystemLog::Open found past the valid frame prefix. A clean shutdown
/// or an ordinary crash leaves `valid_bytes == file_bytes` or a *torn* tail
/// (an incomplete final frame with nothing after it). `damaged` means the
/// invalid bytes are not explainable as a torn append: either a complete
/// frame failed its CRC, or valid frames exist beyond the bad region —
/// i.e. stable log contents were corrupted in place (media/wild write),
/// which costs committed transactions and deserves an incident dossier.
struct WalTailScan {
  uint64_t valid_bytes = 0;  ///< End of the valid frame prefix.
  uint64_t file_bytes = 0;   ///< File size before truncation.
  bool damaged = false;
  uint64_t damage_off = 0;   ///< First bad frame offset when damaged.
};

/// The system log (paper §2.1): an in-memory tail plus a stable log file on
/// disk. Redo records are appended to the tail when operations commit; the
/// tail is flushed (written and fsync'd) at transaction commit and at
/// checkpoints, under the system log latch. `end_of_stable_log` is the LSN
/// up to which records are known durable.
///
/// Framing on disk and in the tail: [u32 payload_len][u32 crc32c][payload].
/// The LSN of a record is the byte offset of its frame; a torn final frame
/// after a crash is detected by the CRC and treated as the end of log.
class SystemLog {
 public:
  /// Opens (creating if needed) the stable log at `path`. Scans existing
  /// contents to find the end of the valid prefix; a torn tail is truncated
  /// logically (subsequent appends overwrite it). Flush latency, batch
  /// sizes and append volume are reported into `metrics` (nullptr = a
  /// private registry, for standalone construction in tests).
  static Result<std::unique_ptr<SystemLog>> Open(
      const std::string& path, MetricsRegistry* metrics = nullptr);

  ~SystemLog();
  SystemLog(const SystemLog&) = delete;
  SystemLog& operator=(const SystemLog&) = delete;

  /// Appends one encoded record payload to the in-memory tail. Returns the
  /// record's LSN. Thread-safe.
  Lsn Append(Slice payload);

  /// Makes every record appended before this call durable. Group commit:
  /// one caller writes and fsyncs the whole pending batch while the I/O
  /// happens *outside* the latch (appends continue into a fresh tail);
  /// concurrent flushers piggyback on the in-flight batch instead of
  /// issuing their own fsync. (The paper commits every 500 operations
  /// precisely to keep commit cost off the critical path — §5.2 fn. 3
  /// avoids group commit in the *benchmark*; the engine supports it.)
  Status Flush();

  /// LSN one past the last appended record (tail included).
  Lsn CurrentLsn() const;

  /// LSN up to which the log is durable.
  Lsn end_of_stable_log() const;

  /// Crash simulation: discards the un-flushed tail, exactly what a process
  /// failure would lose.
  void DiscardTail();

  /// Classification of what Open() found at the end of the stable file
  /// (before truncating it back to the valid prefix).
  const WalTailScan& tail_scan() const { return tail_scan_; }

  /// Total bytes appended to the tail since open (read-log volume studies).
  uint64_t bytes_appended() const { return ins_.bytes_appended->Value(); }
  uint64_t flush_count() const { return ins_.flushes->Value(); }
  /// Flushes that failed with an I/O error; the batch was restored to the
  /// tail and the next Flush() covers it exactly once.
  uint64_t flush_failures() const { return ins_.flush_failures->Value(); }

 private:
  SystemLog(std::string path, int fd, uint64_t stable_size,
            MetricsRegistry* metrics);

  struct Instruments {
    Counter* appends;
    Counter* bytes_appended;
    Counter* flushes;
    Counter* flush_failures;
    Counter* flush_piggybacks;
    Gauge* tail_bytes;
    Histogram* flush_latency_ns;
    Histogram* flush_batch_bytes;
  };

  std::string path_;
  int fd_;
  WalTailScan tail_scan_;
  mutable std::mutex latch_;  ///< The paper's "system log latch".
  std::condition_variable flush_cv_;
  uint64_t stable_size_;        ///< Bytes of valid stable log.
  uint64_t flushing_bytes_ = 0; ///< Bytes of the batch being written now.
  bool flush_in_progress_ = false;
  std::string tail_;            ///< Encoded frames not yet flushed.
  std::unique_ptr<MetricsRegistry> own_metrics_;
  MetricsRegistry* metrics_;
  Instruments ins_;
};

/// Sequential reader over the stable system log. Stops cleanly at the first
/// torn or corrupt frame (end of log after a crash).
class LogReader {
 public:
  /// Reads the stable log file at `path`, starting at LSN `start`. If
  /// `limit` is not kInvalidLsn, records at or beyond it are not returned.
  static Result<std::unique_ptr<LogReader>> Open(const std::string& path,
                                                 Lsn start, Lsn limit);

  /// Returns the next record; false at end of log. `lsn` receives the
  /// record's LSN.
  bool Next(LogRecord* record, Lsn* lsn);

  /// LSN one past the last valid frame read so far (after exhausting the
  /// reader: the end of the valid prefix).
  Lsn position() const { return pos_; }

 private:
  LogReader(std::string contents, Lsn start, Lsn limit)
      : contents_(std::move(contents)), pos_(start), limit_(limit) {}

  std::string contents_;
  Lsn pos_;
  Lsn limit_;
};

}  // namespace cwdb

#endif  // CWDB_WAL_SYSTEM_LOG_H_
