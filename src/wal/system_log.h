#ifndef CWDB_WAL_SYSTEM_LOG_H_
#define CWDB_WAL_SYSTEM_LOG_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "wal/log_record.h"
#include "wal/mpmc_queue.h"

namespace cwdb {

class FlightRecorder;

/// Trace tag riding a published batch through the group-commit queue (the
/// cross-thread hop of a sampled commit's trace): the commit's span
/// context — already re-parented at the client-side flush-wait span — the
/// publish timestamp, and the LSN one past the tagged frames, so the
/// drainer can attach queue-wait / write / fsync spans to the originating
/// trace and fire them when the durable frontier passes `end_lsn`.
struct WalTraceTag {
  SpanContext ctx;
  uint64_t publish_ns = 0;
  Lsn end_lsn = 0;
};

/// What SystemLog::Open found past the valid frame prefix. A clean shutdown
/// or an ordinary crash leaves `valid_bytes == file_bytes` or a *torn* tail
/// (an incomplete final frame with nothing after it). `damaged` means the
/// invalid bytes are not explainable as a torn append: either a complete
/// frame failed its CRC, or valid frames exist beyond the bad region —
/// i.e. stable log contents were corrupted in place (media/wild write),
/// which costs committed transactions and deserves an incident dossier.
struct WalTailScan {
  uint64_t valid_bytes = 0;  ///< End of the valid frame prefix.
  uint64_t file_bytes = 0;   ///< File size before truncation.
  bool damaged = false;
  uint64_t damage_off = 0;   ///< First bad frame offset when damaged.
};

/// The system log (paper §2.1): in-memory append staging plus a stable log
/// file on disk. Redo records are appended when operations commit; the
/// staged frames are made durable at transaction commit and at checkpoints.
///
/// Sharded append path: LSNs are assigned by a single fetch-and-add on the
/// logical end of the log, but the encoded frames are staged in per-shard
/// buffers (the calling thread picks a shard once and sticks to it), so
/// concurrent appenders on different shards never touch the same mutex.
/// This is sound because the transaction layer moves an operation's redo to
/// the system log *before* releasing the operation's locks (§2.1): any two
/// conflicting operations are already serialized when they append, so their
/// LSN order equals their conflict order no matter which shard staged them.
///
/// Group commit: staged batches flow through a lock-free MPMC queue to one
/// drainer thread, which reorders them by LSN, writes only the contiguous
/// prefix of the log (so the on-disk file is always a valid prefix plus at
/// most one torn frame) and issues a single fdatasync per round. Flush()
/// registers a durability target and waits; every Flush caller that arrives
/// while a round is in flight piggybacks on its fsync.
///
/// Framing on disk and in staging: [u32 payload_len][u32 crc32c][payload].
/// The LSN of a record is the byte offset of its frame; a torn final frame
/// after a crash is detected by the CRC and treated as the end of log.
class SystemLog {
 public:
  /// Opens (creating if needed) the stable log at `path`. Scans existing
  /// contents to find the end of the valid prefix; a torn tail is truncated
  /// physically (appends continue from the valid prefix). Flush latency,
  /// batch sizes and append volume are reported into `metrics` (nullptr = a
  /// private registry, for standalone construction in tests). `shards` is
  /// the number of append staging buffers (1 = a single buffer, the
  /// pre-sharding behavior). `recorder`, when given, mirrors the staged and
  /// durable LSN frontiers into the crash-surviving black box on the
  /// existing hot-path stores (two relaxed writes per event, no new locks).
  static Result<std::unique_ptr<SystemLog>> Open(
      const std::string& path, MetricsRegistry* metrics = nullptr,
      size_t shards = 1, FlightRecorder* recorder = nullptr);

  ~SystemLog();
  SystemLog(const SystemLog&) = delete;
  SystemLog& operator=(const SystemLog&) = delete;

  /// Appends one encoded record payload to this thread's staging shard.
  /// Returns the record's LSN. Thread-safe.
  Lsn Append(Slice payload);

  /// Appends several payloads as one staging operation: one LSN reservation
  /// and one shard-mutex acquisition for the lot, and the frames occupy
  /// contiguous LSNs. Returns the LSN of the first payload (CurrentLsn()
  /// when `payloads` is empty). Used by operation commit, which moves the
  /// whole local redo buffer at once. When `trace` is a sampled span
  /// context, a WalTraceTag rides the staged frames through the
  /// group-commit queue so the drainer-side spans attach to the trace.
  Lsn AppendAll(const std::vector<std::string>& payloads,
                const SpanContext* trace = nullptr);

  /// Makes every record appended before this call durable. Group commit:
  /// the drainer thread writes the whole pending prefix and fsyncs once
  /// per round while appenders keep running; concurrent flushers piggyback
  /// on the in-flight round instead of issuing their own fsync. (The paper
  /// commits every 500 operations precisely to keep commit cost off the
  /// critical path — §5.2 fn. 3 avoids group commit in the *benchmark*;
  /// the engine supports it.)
  Status Flush();

  /// LSN one past the last appended record (staged frames included).
  Lsn CurrentLsn() const {
    return logical_end_.load(std::memory_order_acquire);
  }

  /// LSN up to which the log is durable.
  Lsn end_of_stable_log() const {
    return durable_.load(std::memory_order_acquire);
  }

  /// True while a requested flush has not yet reached durability. This is
  /// the watchdog's drainer-probe gate: staged bytes with no flush request
  /// are not "pending" (nothing is waiting on them), so only a stuck
  /// requested round reads as a stall.
  bool flush_pending() const {
    std::lock_guard<std::mutex> guard(drain_mu_);
    return flush_target_ > durable_.load(std::memory_order_relaxed);
  }

  /// Crash simulation: discards everything not yet durable — staged
  /// frames, queued batches, and written-but-unsynced bytes — exactly what
  /// a process failure would lose. Requires external quiescence (no
  /// concurrent Append/Flush).
  void DiscardTail();

  /// Classification of what Open() found at the end of the stable file
  /// (before truncating it back to the valid prefix).
  const WalTailScan& tail_scan() const { return tail_scan_; }

  /// Total bytes appended since open (read-log volume studies).
  uint64_t bytes_appended() const { return ins_.bytes_appended->Value(); }
  uint64_t flush_count() const { return ins_.flushes->Value(); }
  /// Flush rounds that failed with an I/O error; the frames stay staged at
  /// their LSNs and the next Flush() covers them exactly once.
  uint64_t flush_failures() const { return ins_.flush_failures->Value(); }

 private:
  /// One publication unit: frames staged by one shard, in LSN order, plus
  /// the trace tags of any sampled commits among them.
  struct Batch {
    std::vector<std::pair<Lsn, std::string>> frames;
    std::vector<WalTraceTag> tags;
  };

  /// Per-shard append staging. Appenders on different shards share nothing
  /// but the LSN counter (one fetch_add) and the lock-free queue.
  struct alignas(64) AppendShard {
    std::mutex mu;
    std::vector<std::pair<Lsn, std::string>> frames;
    std::vector<WalTraceTag> tags;
    size_t bytes = 0;
    size_t index = 0;  ///< Position in shards_, for black-box attribution.
    Counter* appends = nullptr;
  };

  SystemLog(std::string path, int fd, uint64_t stable_size,
            MetricsRegistry* metrics, size_t shards);

  /// The calling thread's staging shard (round-robin assignment at first
  /// use, sticky thereafter).
  size_t ShardIndex() const;

  /// Stages one frame into `sh` (sh.mu held) and returns its LSN.
  Lsn StageFrameLocked(AppendShard& sh, Slice payload);

  /// Moves sh's staged frames into the MPMC queue (sh.mu held).
  void PublishLocked(AppendShard& sh);

  /// Drainer thread: merges queued batches, writes the contiguous prefix,
  /// fsyncs on demand.
  void DrainerLoop();

  /// Zero-extends the stable file to `new_end` (drainer only). Writing real
  /// zero blocks ahead of the frontier keeps block allocation and i_size
  /// changes out of the per-round fdatasync, which then syncs pure data.
  Status Preallocate(uint64_t new_end);

  struct Instruments {
    Counter* appends;
    Counter* bytes_appended;
    Counter* flushes;
    Counter* flush_failures;
    Counter* flush_piggybacks;
    Gauge* tail_bytes;
    Histogram* flush_latency_ns;
    Histogram* flush_batch_bytes;
  };

  std::string path_;
  int fd_;
  WalTailScan tail_scan_;
  std::unique_ptr<MetricsRegistry> own_metrics_;
  MetricsRegistry* metrics_;
  FlightRecorder* recorder_ = nullptr;  ///< May be null (no black box).
  Instruments ins_;

  /// Next LSN to assign; advanced by fetch_add under the owning shard's mu
  /// (the mu makes "LSN order == buffer order" hold within a shard).
  std::atomic<uint64_t> logical_end_;
  /// End of the durable prefix. Written by the drainer under drain_mu_,
  /// read lock-free by CurrentLsn()/end_of_stable_log()/Append.
  std::atomic<uint64_t> durable_;

  std::vector<std::unique_ptr<AppendShard>> shards_;
  MpmcQueue<Batch*> queue_;

  /// Drainer state, guarded by drain_mu_.
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;  ///< Wakes the drainer.
  std::condition_variable flush_cv_;  ///< Wakes Flush waiters.
  std::map<Lsn, std::string> pending_;  ///< Reorder buffer, keyed by LSN.
  /// Tags popped from the queue, waiting for the durable frontier to pass
  /// their end_lsn (at which point the drainer emits their write/fsync
  /// spans and retires them). Guarded by drain_mu_.
  std::vector<WalTraceTag> traced_;
  uint64_t write_pos_;     ///< Bytes written (not necessarily synced).
  uint64_t alloc_end_;     ///< Zero-preallocated file extent (drainer only).
  uint64_t flush_target_ = 0;
  uint64_t request_seq_ = 0;  ///< Bumped by every Flush() registration.
  uint64_t last_latch_seq_ = 0;     ///< request_seq_ at the last round latch.
  uint64_t last_round_reqs_ = 0;    ///< Registrations the last round absorbed.
  uint64_t round_piggybacks_ = 0;   ///< Registrations during the open round.
  uint64_t piggybacks_last_round_ = 0;  ///< ...and the previous round's count.
  uint64_t error_seq_ = 0;    ///< request_seq_ when the last round failed.
  uint64_t failed_req_ = 0;   ///< Retry only once a newer request arrives.
  Status last_error_;
  bool in_round_ = false;     ///< Drainer I/O in flight (latch released).
  bool stop_ = false;
  std::thread drainer_;
};

/// Sequential reader over the stable system log. Stops cleanly at the first
/// torn or corrupt frame (end of log after a crash).
class LogReader {
 public:
  /// Reads the stable log file at `path`, starting at LSN `start`. If
  /// `limit` is not kInvalidLsn, records at or beyond it are not returned.
  static Result<std::unique_ptr<LogReader>> Open(const std::string& path,
                                                 Lsn start, Lsn limit);

  /// Returns the next record; false at end of log. `lsn` receives the
  /// record's LSN.
  bool Next(LogRecord* record, Lsn* lsn);

  /// LSN one past the last valid frame read so far (after exhausting the
  /// reader: the end of the valid prefix).
  Lsn position() const { return pos_; }

 private:
  LogReader(std::string contents, Lsn start, Lsn limit)
      : contents_(std::move(contents)), pos_(start), limit_(limit) {}

  std::string contents_;
  Lsn pos_;
  Lsn limit_;
};

}  // namespace cwdb

#endif  // CWDB_WAL_SYSTEM_LOG_H_
