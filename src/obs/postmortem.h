#ifndef CWDB_OBS_POSTMORTEM_H_
#define CWDB_OBS_POSTMORTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/trace.h"

namespace cwdb {

/// Decoded contents of a blackbox.bin (see obs/flight_recorder.h for the
/// on-disk layout). The decoder is tolerant by design: a slot torn at
/// death, a CRC mismatch or a truncated file drop the affected entries and
/// keep the rest — only a bad magic/header refuses the whole file.

struct BlackBoxCrash {
  bool valid = false;        ///< A crash record was fully published.
  int signal = 0;
  int si_code = 0;
  uint64_t fault_addr = 0;   ///< Raw faulting address (0 when unknown).
  bool fault_in_arena = false;
  uint64_t fault_off = 0;    ///< Arena offset, when fault_in_arena.
  uint64_t fault_shard = 0;  ///< Owning shard, when fault_in_arena.
  uint64_t mono_ns = 0;
  uint64_t wall_ns = 0;
  std::string backtrace;     ///< backtrace_symbols_fd text ("" if none).
};

struct BlackBoxSampleEntry {
  std::string name;
  char kind = 'c';           ///< 'c' counter, 'g' gauge, 'h' histogram p99.
  uint64_t bits = 0;         ///< Raw value ('g': bit-cast int64_t).
};

struct BlackBoxReport {
  // Identity (header).
  uint32_t version = 0;
  uint64_t pid = 0;
  uint64_t boot_mono_ns = 0;
  uint64_t boot_wall_ns = 0;
  uint64_t open_wall_ns = 0;
  uint64_t arena_size = 0;
  uint32_t page_size = 0;
  uint32_t shard_count = 0;
  std::string scheme;
  bool clean_shutdown = false;

  // LSN frontiers as of death.
  uint64_t durable_lsn = 0;
  uint64_t logical_end_lsn = 0;
  std::vector<uint64_t> shard_staged_lsns;  ///< One per shard (<= 64).

  // Status text (dropped when its seqlock was torn at death).
  std::string armed_crashpoints;
  std::string watchdog_status;
  std::string slo_status;

  // Mirrored trace-ring tail, consistent slots only, ascending seq.
  std::vector<TraceEvent> events;

  // Latest metrics sample (empty when torn or never written).
  uint64_t sample_mono_ns = 0;
  uint64_t sample_wall_ns = 0;
  std::vector<BlackBoxSampleEntry> sample;

  BlackBoxCrash crash;

  /// Projects a prior-life monotonic stamp to wall time via the boot
  /// anchors recorded in the header; 0 stays 0.
  uint64_t WallFromMono(uint64_t mono_ns) const {
    if (mono_ns == 0 || boot_wall_ns == 0) return 0;
    return boot_wall_ns + (mono_ns - boot_mono_ns);
  }
};

/// Decodes the raw bytes of a black box. Corruption if the magic, version
/// or header CRC does not verify (the file is not a v1 black box);
/// everything else degrades gracefully.
Result<BlackBoxReport> DecodeBlackBox(const std::string& bytes);

/// Reads and decodes `path`. NotFound when the file does not exist.
Result<BlackBoxReport> ReadBlackBox(const std::string& path);

/// Operator-readable rendering of one decoded box (the `cwdb_ctl
/// postmortem` body): identity, crash record + backtrace, LSN frontiers,
/// status text, the trace tail and the top of the last metrics sample.
std::string RenderBlackBox(const BlackBoxReport& report);

}  // namespace cwdb

#endif  // CWDB_OBS_POSTMORTEM_H_
