#include "obs/flight_recorder.h"

#include <execinfo.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/crc32.h"

namespace cwdb {

using namespace blackbox;

namespace blackbox {

uint32_t TraceSlotCrc(const TraceEvent& e) {
  char buf[44];
  std::memcpy(buf + 0, &e.t_ns, 8);
  std::memcpy(buf + 8, &e.lsn, 8);
  std::memcpy(buf + 16, &e.a, 8);
  std::memcpy(buf + 24, &e.b, 8);
  std::memcpy(buf + 32, &e.shard, 8);
  uint32_t type = static_cast<uint32_t>(e.type);
  std::memcpy(buf + 40, &type, 4);
  return Crc32c(buf, sizeof(buf));
}

}  // namespace blackbox

namespace {

/// Process-global fatal-signal registration. Leaked (like the crash-point
/// registry) so the state survives into _exit and handler paths that run
/// during static destruction.
struct FatalState {
  static constexpr int kSignalCount = 5;
  static constexpr int kSignals[kSignalCount] = {SIGSEGV, SIGBUS, SIGABRT,
                                                 SIGILL, SIGFPE};
  std::atomic<FlightRecorder*> recorder{nullptr};
  struct sigaction old_actions[kSignalCount] = {};
  bool installed = false;
  std::atomic<int> entered{0};
  void* altstack = nullptr;
  std::mutex mu;  ///< Guards install/uninstall (never taken in the handler).
};

FatalState& Fatal() {
  static FatalState* s = new FatalState;
  return *s;
}

uint64_t RawMonoNs() {
  struct timespec ts;
  if (::clock_gettime(CLOCK_MONOTONIC, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

uint64_t RawWallNs() {
  struct timespec ts;
  if (::clock_gettime(CLOCK_REALTIME, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

/// The installed sigaction handler. Restores the prior dispositions first
/// (so a fault inside the handler, or the re-raise below, reaches them),
/// writes the crash record once, then lets the signal re-raise: fault
/// signals (SEGV/BUS/ILL/FPE) re-execute the faulting instruction on
/// return and are re-delivered under the restored disposition; SIGABRT is
/// re-raised by hand. Everything called here is async-signal-safe —
/// sigaction, raise, clock_gettime, lseek, write (via
/// backtrace_symbols_fd), and plain/atomic stores into the mapping.
void FlightRecorderSignalTrampoline(int sig, void* info, void* /*ucontext*/) {
  FatalState& st = Fatal();
  for (int i = 0; i < FatalState::kSignalCount; ++i) {
    ::sigaction(FatalState::kSignals[i], &st.old_actions[i], nullptr);
  }
  if (st.entered.fetch_add(1, std::memory_order_acq_rel) == 0) {
    FlightRecorder* fr = st.recorder.load(std::memory_order_acquire);
    if (fr != nullptr) {
      siginfo_t* si = static_cast<siginfo_t*>(info);
      fr->WriteCrashRecord(sig, si != nullptr ? si->si_code : 0,
                           si != nullptr ? si->si_addr : nullptr);
    }
  }
  if (sig == SIGABRT) ::raise(SIGABRT);
}

namespace {

extern "C" void CwdbFatalSigaction(int sig, siginfo_t* si, void* uc) {
  FlightRecorderSignalTrampoline(sig, si, uc);
}

}  // namespace

FlightRecorder::FlightRecorder(std::string path, int fd, uint8_t* map)
    : path_(std::move(path)), fd_(fd), map_(map) {}

FlightRecorder::~FlightRecorder() {
  UninstallFatalHandler();
  if (map_ != nullptr) ::munmap(map_, kTotalBytes);
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<FlightRecorder>> FlightRecorder::Create(
    const std::string& path, const FlightRecorderInfo& info) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(kTotalBytes)) != 0) {
    Status s =
        Status::IoError("ftruncate " + path + ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  void* map = ::mmap(nullptr, kTotalBytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    Status s = Status::IoError("mmap " + path + ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  std::memset(map, 0, kTotalBytes);
  uint8_t* base = static_cast<uint8_t*>(map);

  char header[blackbox::kHeaderBytes] = {};
  std::memcpy(header + kHdrMagic, kMagic, sizeof(kMagic));
  uint32_t version = kVersion;
  std::memcpy(header + kHdrVersion, &version, 4);
  uint64_t total = kTotalBytes;
  std::memcpy(header + kHdrTotalBytes, &total, 8);
  std::memcpy(header + kHdrBootMono, &info.boot_mono_ns, 8);
  std::memcpy(header + kHdrBootWall, &info.boot_wall_ns, 8);
  uint64_t pid = static_cast<uint64_t>(::getpid());
  std::memcpy(header + kHdrPid, &pid, 8);
  std::memcpy(header + kHdrArenaSize, &info.arena_size, 8);
  std::memcpy(header + kHdrPageSize, &info.page_size, 4);
  std::memcpy(header + kHdrShardCount, &info.shard_count, 4);
  std::strncpy(header + kHdrScheme, info.scheme.c_str(), kHdrSchemeBytes - 1);
  uint32_t crc = Crc32c(header, kHeaderCrcBytes);
  std::memcpy(header + kHdrCrc, &crc, 4);
  uint64_t open_wall = RawWallNs();
  std::memcpy(header + kHdrOpenWall, &open_wall, 8);
  std::memcpy(base, header, blackbox::kHeaderBytes);

  return std::unique_ptr<FlightRecorder>(
      new FlightRecorder(path, fd, base));
}

void FlightRecorder::OnTraceEvent(const TraceEvent& e) noexcept {
  const uint64_t slot =
      kTraceOff + (e.seq & (kTraceSlots - 1)) * kTraceSlotBytes;
  Word64(slot + kTsTicket)->store(2 * e.seq + 1, std::memory_order_release);
  Word64(slot + kTsTNs)->store(e.t_ns, std::memory_order_relaxed);
  Word64(slot + kTsLsn)->store(e.lsn, std::memory_order_relaxed);
  Word64(slot + kTsA)->store(e.a, std::memory_order_relaxed);
  Word64(slot + kTsB)->store(e.b, std::memory_order_relaxed);
  Word64(slot + kTsShard)->store(e.shard, std::memory_order_relaxed);
  Word32(slot + kTsType)
      ->store(static_cast<uint32_t>(e.type), std::memory_order_relaxed);
  Word32(slot + kTsCrc)->store(TraceSlotCrc(e), std::memory_order_relaxed);
  Word64(slot + kTsTicket)->store(2 * e.seq + 2, std::memory_order_release);
}

void FlightRecorder::NoteStagedLsn(size_t shard, uint64_t lsn_end) noexcept {
  if (shard >= kMaxShards) return;
  Word64(kShardLsnOff + shard * 16)
      ->store(lsn_end, std::memory_order_relaxed);
}

void FlightRecorder::NoteDurableLsn(uint64_t durable,
                                    uint64_t logical_end) noexcept {
  Word64(kGlobalLsnOff + 0)->store(durable, std::memory_order_relaxed);
  Word64(kGlobalLsnOff + 8)->store(logical_end, std::memory_order_relaxed);
}

void FlightRecorder::NoteStatusText(blackbox::StatusSlot slot,
                                    std::string_view text) noexcept {
  const uint64_t base =
      kStatusOff + static_cast<uint32_t>(slot) * kStatusSlotBytes;
  if (text.size() > kStatusTextBytes) text = text.substr(0, kStatusTextBytes);
  std::atomic<uint32_t>* seq = Word32(base + 0);
  const uint32_t s = seq->load(std::memory_order_relaxed);
  seq->store(s + 1, std::memory_order_release);  // Odd: write in progress.
  Word32(base + 4)->store(static_cast<uint32_t>(text.size()),
                          std::memory_order_relaxed);
  std::memcpy(map_ + base + 8, text.data(), text.size());
  if (text.size() < kStatusTextBytes) {
    std::memset(map_ + base + 8 + text.size(), 0,
                kStatusTextBytes - text.size());
  }
  seq->store(s + 2, std::memory_order_release);  // Even: published.
}

void FlightRecorder::WriteMetricsSample(const MetricsSnapshot& snap) noexcept {
  std::lock_guard<std::mutex> guard(sample_mu_);
  std::atomic<uint32_t>* seq = Word32(kSampleOff + 0);
  const uint32_t s = seq->load(std::memory_order_relaxed);
  seq->store(s + 1, std::memory_order_release);
  uint32_t count = 0;
  uint8_t* entries = map_ + kSampleOff + kSampleHeaderBytes;
  auto put = [&](const std::string& name, char kind, uint64_t bits) {
    if (count >= kMaxSampleEntries) return;
    uint8_t* e = entries + count * kSampleEntryBytes;
    std::memset(e, 0, kSampleNameBytes);
    std::memcpy(e, name.data(),
                std::min<size_t>(name.size(), kSampleNameBytes - 1));
    uint32_t k = static_cast<uint32_t>(kind);
    std::memcpy(e + kSampleNameBytes, &k, 4);
    std::memcpy(e + kSampleNameBytes + 4, &bits, 8);
    ++count;
  };
  for (const auto& [name, v] : snap.counters) put(name, 'c', v);
  for (const auto& [name, v] : snap.gauges) {
    put(name, 'g', static_cast<uint64_t>(v));
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    put(h.name + ".p99", 'h', h.h.p99);
  }
  Word32(kSampleOff + 4)->store(count, std::memory_order_relaxed);
  Word64(kSampleOff + 8)->store(snap.captured_mono_ns,
                                std::memory_order_relaxed);
  Word64(kSampleOff + 16)->store(snap.captured_wall_ns,
                                 std::memory_order_relaxed);
  seq->store(s + 2, std::memory_order_release);
}

void FlightRecorder::MarkCleanShutdown() noexcept {
  Word32(kHdrCleanShutdown)->store(1, std::memory_order_release);
  // Process-crash durability needs nothing (the dirty pages are in the
  // page cache); the async msync only helps a subsequent machine crash.
  ::msync(map_, kTotalBytes, MS_ASYNC);
}

void FlightRecorder::WriteCrashRecord(int sig, int code,
                                      const void* addr) noexcept {
  std::atomic<uint32_t>* state = Word32(kCrashOff + kCrState);
  state->store(kCrashWriting, std::memory_order_release);
  Word32(kCrashOff + kCrSignal)
      ->store(static_cast<uint32_t>(sig), std::memory_order_relaxed);
  Word32(kCrashOff + kCrCode)
      ->store(static_cast<uint32_t>(code), std::memory_order_relaxed);
  Word64(kCrashOff + kCrFaultAddr)
      ->store(reinterpret_cast<uint64_t>(addr), std::memory_order_relaxed);
  uint64_t fault_off = kNoFaultOff;
  uint64_t fault_shard = kNoFaultOff;
  const uint8_t* a = static_cast<const uint8_t*>(addr);
  if (arena_base_ != nullptr && a >= arena_base_ &&
      a < arena_base_ + arena_size_) {
    fault_off = static_cast<uint64_t>(a - arena_base_);
    if (shard_map_ != nullptr) fault_shard = shard_map_->ShardOf(fault_off);
  }
  Word64(kCrashOff + kCrFaultOff)
      ->store(fault_off, std::memory_order_relaxed);
  Word64(kCrashOff + kCrFaultShard)
      ->store(fault_shard, std::memory_order_relaxed);
  Word64(kCrashOff + kCrMonoNs)->store(RawMonoNs(), std::memory_order_relaxed);
  Word64(kCrashOff + kCrWallNs)->store(RawWallNs(), std::memory_order_relaxed);
  uint32_t backtrace_len = 0;
  if (fd_ >= 0) {
    // backtrace() was preloaded at install time (its first call may
    // malloc inside the dynamic linker); from here on it is signal-safe,
    // and backtrace_symbols_fd is documented as such.
    void* frames[48];
    int n = ::backtrace(frames, 48);
    off_t start = ::lseek(fd_, static_cast<off_t>(kBacktraceOff), SEEK_SET);
    if (start == static_cast<off_t>(kBacktraceOff) && n > 0) {
      ::backtrace_symbols_fd(frames, n, fd_);
      off_t end = ::lseek(fd_, 0, SEEK_CUR);
      if (end > start) {
        backtrace_len = static_cast<uint32_t>(end - start);
      }
    }
  }
  Word32(kCrashOff + kCrBacktraceLen)
      ->store(backtrace_len, std::memory_order_relaxed);
  state->store(kCrashValid, std::memory_order_release);
}

Status FlightRecorder::InstallFatalHandler() {
  FatalState& st = Fatal();
  std::lock_guard<std::mutex> guard(st.mu);
  // Preload backtrace's lazy initialization while malloc is still legal.
  void* frames[4];
  (void)::backtrace(frames, 4);
  if (st.altstack == nullptr) {
    const size_t stack_bytes = 64 * 1024;
    st.altstack = std::malloc(stack_bytes);
    if (st.altstack == nullptr) {
      return Status::IoError("flight recorder: sigaltstack allocation failed");
    }
    stack_t ss = {};
    ss.ss_sp = st.altstack;
    ss.ss_size = stack_bytes;
    if (::sigaltstack(&ss, nullptr) != 0) {
      return Status::IoError(std::string("sigaltstack: ") +
                             std::strerror(errno));
    }
  }
  if (!st.installed) {
    struct sigaction sa = {};
    sa.sa_sigaction = &CwdbFatalSigaction;
    sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
    sigemptyset(&sa.sa_mask);
    for (int i = 0; i < FatalState::kSignalCount; ++i) {
      if (::sigaction(FatalState::kSignals[i], &sa, &st.old_actions[i]) != 0) {
        return Status::IoError(std::string("sigaction: ") +
                               std::strerror(errno));
      }
    }
    st.installed = true;
  }
  st.recorder.store(this, std::memory_order_release);
  return Status::OK();
}

void FlightRecorder::UninstallFatalHandler() {
  FatalState& st = Fatal();
  std::lock_guard<std::mutex> guard(st.mu);
  if (st.recorder.load(std::memory_order_acquire) != this) return;
  st.recorder.store(nullptr, std::memory_order_release);
  if (st.installed) {
    for (int i = 0; i < FatalState::kSignalCount; ++i) {
      ::sigaction(FatalState::kSignals[i], &st.old_actions[i], nullptr);
    }
    st.installed = false;
  }
}

bool FlightRecorder::FatalHandlerInstalled() {
  FatalState& st = Fatal();
  return st.recorder.load(std::memory_order_acquire) != nullptr;
}

}  // namespace cwdb
