#ifndef CWDB_OBS_STATS_SERVER_H_
#define CWDB_OBS_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace cwdb {

/// Renders a MetricsSnapshot in Prometheus text exposition format 0.0.4:
/// counters as `cwdb_<name>_total`, gauges as gauges, histograms as native
/// histogram series (cumulative `_bucket{le="2^i"}` from the log2 buckets,
/// plus `_sum`/`_count`). Metric-name dots become underscores; every
/// series gets HELP/TYPE lines exactly once.
std::string RenderPrometheus(const MetricsSnapshot& snap);

struct StatsServerOptions {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port (read
  /// it back from StatsServer::port()). Binds 127.0.0.1 only — the
  /// endpoint is unauthenticated and strictly read-only, so it must never
  /// face a network.
  uint16_t port = 0;
};

/// Minimal blocking HTTP/1.0 stats endpoint on a background thread.
///
///   GET /metrics    Prometheus text from a fresh registry capture
///   GET /incidents  raw incidents.jsonl (application/jsonl)
///   GET /spans      Chrome/Perfetto trace-event JSON of the live span
///                   rings ({"traceEvents":[]} when tracing is off)
///   GET /query?metric=<name>&window=<60s|500ms|5m>
///                   time-series JSON from the metrics history (400 on a
///                   malformed query or unknown metric; 404 with no
///                   history wired)
///   GET /healthz    200 "ok" / 503 "corrupt", "stalled: ..." or
///                   "slo: ..." per the health/degraded/slo hooks
///
/// Query strings are split off before route dispatch (GET /metrics?x=y is
/// still /metrics) and handed to the route handler.
///
/// One connection is served at a time (close-after-response); this is an
/// operator/scraper endpoint, not a data path. Stop() is prompt: the accept
/// loop polls a self-pipe alongside the listen socket.
class StatsServer {
 public:
  struct Hooks {
    std::function<MetricsSnapshot()> snapshot;       ///< Required.
    std::function<std::string()> incidents_jsonl;    ///< May be empty.
    std::function<bool()> healthy;                   ///< Empty = always ok.
    /// Chrome trace JSON of the live spans. Empty hook = tracing not wired;
    /// /spans still answers with a valid empty document.
    std::function<std::string()> spans_json;
    /// Stall description ("" = not degraded). Empty hook = no watchdog.
    std::function<std::string()> degraded;
    /// Answers /query given the raw query string ("metric=...&window=...").
    /// An error Status becomes a 400 with the message as the body. Empty
    /// hook = no history wired; /query answers 404.
    std::function<Result<std::string>(std::string_view query)> query;
    /// SLO burn description ("slo: commit_p99 burn 8.1x", "" = budgets
    /// healthy). Empty hook = no SLO engine.
    std::function<std::string()> slo;
  };

  StatsServer() = default;
  ~StatsServer() { Stop(); }
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  Status Start(const StatsServerOptions& options, Hooks hooks);
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolved when options.port was 0). 0 until started.
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

 private:
  void Serve();
  void HandleConnection(int fd);

  Hooks hooks_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
};

}  // namespace cwdb

#endif  // CWDB_OBS_STATS_SERVER_H_
