#include "obs/process_stats.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

#include "obs/metrics.h"

namespace cwdb {

namespace {

/// Resident-set bytes from /proc/self/statm (second field, in pages).
int64_t ReadRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size_pages = 0, rss_pages = 0;
  const int n = std::fscanf(f, "%lld %lld", &size_pages, &rss_pages);
  std::fclose(f);
  if (n != 2 || rss_pages < 0) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return static_cast<int64_t>(rss_pages) * (page > 0 ? page : 4096);
}

int64_t CountOpenFds() {
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  int64_t n = 0;
  while (struct dirent* e = ::readdir(d)) {
    if (e->d_name[0] == '.') continue;
    ++n;
  }
  ::closedir(d);
  // The opendir itself holds one descriptor; don't count it.
  return n > 0 ? n - 1 : 0;
}

/// Recursive byte total of regular files under `dir`. The DB data dir is
/// flat-ish (one level of files plus nothing deep), so plain recursion is
/// fine; symlinks are not followed.
int64_t DirBytes(const std::string& dir, int depth) {
  if (depth > 8) return 0;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  int64_t total = 0;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    struct stat st;
    if (::lstat(path.c_str(), &st) != 0) continue;
    if (S_ISREG(st.st_mode)) {
      total += static_cast<int64_t>(st.st_size);
    } else if (S_ISDIR(st.st_mode)) {
      total += DirBytes(path, depth + 1);
    }
  }
  ::closedir(d);
  return total;
}

}  // namespace

ProcessStats SampleProcessStats(const std::string& data_dir,
                                uint64_t boot_mono_ns) {
  ProcessStats s;
  const uint64_t now = NowNs();
  if (boot_mono_ns != 0 && now > boot_mono_ns) {
    s.uptime_ms = static_cast<int64_t>((now - boot_mono_ns) / 1'000'000ull);
  }
  s.rss_bytes = ReadRssBytes();
  s.open_fds = CountOpenFds();
  if (!data_dir.empty()) s.data_dir_bytes = DirBytes(data_dir, 0);
  return s;
}

void PublishProcessStats(MetricsRegistry* metrics, const ProcessStats& stats) {
  if (metrics == nullptr) return;
  metrics->gauge("process.uptime_ms")->Set(stats.uptime_ms);
  metrics->gauge("process.rss_bytes")->Set(stats.rss_bytes);
  metrics->gauge("process.open_fds")->Set(stats.open_fds);
  metrics->gauge("process.data_dir_bytes")->Set(stats.data_dir_bytes);
}

}  // namespace cwdb
