#ifndef CWDB_OBS_FLIGHT_RECORDER_H_
#define CWDB_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/shard_map.h"

namespace cwdb {

/// Crash-surviving black box (DESIGN.md §13): a small mmap'd MAP_SHARED
/// file (`blackbox.bin`) in the database directory that mirrors the
/// volatile diagnostic state a crash would otherwise destroy — the tail of
/// the event-trace ring, the latest metrics sample, per-shard WAL staging
/// frontiers and the durable LSN, the armed crash points, and the
/// watchdog/SLO degradation strings. Because the mapping is shared, every
/// store lands in the page cache immediately; a process death at any
/// instant (SIGKILL, _exit at a crash point, a wild store taking the
/// process down) leaves the bytes for the kernel to write back. All
/// mirrors are written with the same lock-free disciplines as their live
/// counterparts (sequence-ticketed slots, seqlocks, release-publish) so
/// the hot paths take no new locks and a torn-at-death slot is detected,
/// not misread.
///
/// The optional fatal-signal tier (InstallFatalHandler) appends a crash
/// record — signal, faulting address, arena attribution by ShardMap
/// arithmetic, and a backtrace via backtrace_symbols_fd on the pre-opened
/// fd — then restores the prior disposition and lets the signal re-raise,
/// so sanitizer/injector handlers installed earlier keep working. The
/// handler is async-signal-safe: it runs on a sigaltstack, performs only
/// plain stores into the mapping plus write/lseek on the kept-open fd,
/// and never allocates or takes a lock (backtrace() is preloaded at
/// install time, where its one-time dynamic-linker allocation is legal).
///
/// Full table/record attribution of an arena fault needs the recovered
/// image and therefore happens at the *next* open: Database stashes an
/// unclean black box, rotates it to `blackbox.prev.bin`, and files an
/// IncidentSource::kCrash dossier once recovery has rebuilt the image
/// (src/obs/postmortem.h decodes; `cwdb_ctl postmortem` renders).
namespace blackbox {

/// File layout, version 1. Fixed offsets so the decoder, the signal
/// handler and the hot-path mirrors agree without any runtime framing.
inline constexpr char kMagic[8] = {'C', 'W', 'B', 'B', 'O', 'X', '0', '1'};
inline constexpr uint32_t kVersion = 1;
inline constexpr uint64_t kTotalBytes = 64 * 1024;

inline constexpr uint64_t kHeaderOff = 0;
inline constexpr uint64_t kHeaderBytes = 256;
/// The header CRC covers only the immutable identity prefix; fields at or
/// past kHeaderMutableOff (clean-shutdown flag) change after create.
inline constexpr uint64_t kHeaderCrcBytes = 96;
inline constexpr uint64_t kShardLsnOff = 256;    ///< kMaxShards u64 pairs.
inline constexpr uint64_t kMaxShards = 64;
inline constexpr uint64_t kGlobalLsnOff = 1280;  ///< durable, logical end.
inline constexpr uint64_t kStatusOff = 2048;     ///< 3 seqlock'd text slots.
inline constexpr uint64_t kStatusSlotBytes = 512;
inline constexpr uint64_t kStatusTextBytes = kStatusSlotBytes - 8;
inline constexpr uint64_t kCrashOff = 4096;      ///< One crash record.
inline constexpr uint64_t kTraceOff = 8192;      ///< Mirrored event ring.
inline constexpr uint64_t kTraceSlots = 256;     ///< Power of two.
inline constexpr uint64_t kTraceSlotBytes = 64;
inline constexpr uint64_t kSampleOff = 24576;    ///< Latest metrics sample.
inline constexpr uint64_t kSampleBytes = 24576;
inline constexpr uint64_t kSampleEntryBytes = 64;
inline constexpr uint64_t kSampleNameBytes = 52;
inline constexpr uint64_t kSampleHeaderBytes = 32;
inline constexpr uint64_t kMaxSampleEntries =
    (kSampleBytes - kSampleHeaderBytes) / kSampleEntryBytes;
/// Last section on purpose: backtrace_symbols_fd writes through the fd at
/// this offset, and a pathologically long symbol dump then spills past EOF
/// (extending the file) instead of overwriting a live section.
inline constexpr uint64_t kBacktraceOff = 49152;
inline constexpr uint64_t kBacktraceBytes = kTotalBytes - kBacktraceOff;

/// Header field offsets (within [0, kHeaderBytes)). The prefix up to
/// kHeaderCrcBytes is immutable after create and covered by the CRC at
/// kHdrCrc (computed with the CRC field itself zeroed); the mutable
/// fields (clean-shutdown flag, open wall time) live past it.
inline constexpr uint64_t kHdrMagic = 0;
inline constexpr uint64_t kHdrVersion = 8;
inline constexpr uint64_t kHdrCrc = 12;
inline constexpr uint64_t kHdrTotalBytes = 16;
inline constexpr uint64_t kHdrBootMono = 24;
inline constexpr uint64_t kHdrBootWall = 32;
inline constexpr uint64_t kHdrPid = 40;
inline constexpr uint64_t kHdrArenaSize = 48;
inline constexpr uint64_t kHdrPageSize = 56;
inline constexpr uint64_t kHdrShardCount = 60;
inline constexpr uint64_t kHdrScheme = 64;  ///< 31 chars + NUL.
inline constexpr uint64_t kHdrSchemeBytes = 32;
inline constexpr uint64_t kHdrCleanShutdown = 96;
inline constexpr uint64_t kHdrOpenWall = 104;

/// Crash-record field offsets (within [kCrashOff, kCrashOff + 256)).
inline constexpr uint64_t kCrState = 0;
inline constexpr uint64_t kCrSignal = 4;
inline constexpr uint64_t kCrCode = 8;
inline constexpr uint64_t kCrBacktraceLen = 12;
inline constexpr uint64_t kCrFaultAddr = 16;
inline constexpr uint64_t kCrFaultOff = 24;
inline constexpr uint64_t kCrFaultShard = 32;
inline constexpr uint64_t kCrMonoNs = 40;
inline constexpr uint64_t kCrWallNs = 48;

/// Trace-slot field offsets (within one kTraceSlotBytes slot). The CRC
/// covers the payload bytes [kTsTNs, kTsCrc) so a slot torn by page
/// writeback after a machine crash is rejected, not misdecoded; ordinary
/// process death can't tear it (the ticket protocol covers in-progress
/// writes).
inline constexpr uint64_t kTsTicket = 0;
inline constexpr uint64_t kTsTNs = 8;
inline constexpr uint64_t kTsLsn = 16;
inline constexpr uint64_t kTsA = 24;
inline constexpr uint64_t kTsB = 32;
inline constexpr uint64_t kTsShard = 40;
inline constexpr uint64_t kTsType = 48;
inline constexpr uint64_t kTsCrc = 52;

/// Status-slot indices.
enum class StatusSlot : uint32_t {
  kArmedCrashpoints = 0,
  kWatchdog = 1,
  kSlo = 2,
};
inline constexpr uint32_t kStatusSlots = 3;

/// Crash-record publication states (the `state` word).
inline constexpr uint32_t kCrashEmpty = 0;
inline constexpr uint32_t kCrashWriting = 1;
inline constexpr uint32_t kCrashValid = 2;

/// `fault_off` / `fault_shard` value meaning "not in the arena".
inline constexpr uint64_t kNoFaultOff = UINT64_MAX;

/// CRC over a trace slot's payload fields — shared by the mirror writer
/// and the postmortem decoder so the framing can't drift.
uint32_t TraceSlotCrc(const TraceEvent& e);

}  // namespace blackbox

/// Static identity written into the black-box header at create time, so
/// the postmortem decoder can interpret offsets without the database.
struct FlightRecorderInfo {
  uint64_t arena_size = 0;
  uint32_t page_size = 0;
  uint32_t shard_count = 0;
  std::string scheme;  ///< ProtectionSchemeName (truncated to 31 chars).
  uint64_t boot_mono_ns = 0;
  uint64_t boot_wall_ns = 0;
};

struct FlightRecorderOptions {
  /// Maintain blackbox.bin. Costs one mmap'd 64 KiB file per database and
  /// a handful of plain stores on the instrumented hot paths.
  bool enabled = true;
  /// Install the process-wide fatal-signal handler (SIGSEGV, SIGBUS,
  /// SIGABRT, SIGILL, SIGFPE) that appends a crash record before chaining
  /// to the prior disposition. Process-global state: the last database to
  /// install wins; off by default so embedding applications opt in.
  bool install_fatal_handler = false;
};

class FlightRecorder : public TraceSink {
 public:
  /// Creates (truncating) `path` and maps it. The caller is responsible
  /// for rotating any prior incarnation's box first (see Database::Open).
  static Result<std::unique_ptr<FlightRecorder>> Create(
      const std::string& path, const FlightRecorderInfo& info);

  ~FlightRecorder() override;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // -- Hot-path mirrors (lock-free, called from instrumented sites) --

  /// TraceSink: mirrors one published event into the mmap'd ring.
  void OnTraceEvent(const TraceEvent& e) noexcept override;

  /// Last LSN staged by WAL append shard `shard` (one relaxed store).
  void NoteStagedLsn(size_t shard, uint64_t lsn_end) noexcept;

  /// Durable frontier / logical end after a group-commit round.
  void NoteDurableLsn(uint64_t durable, uint64_t logical_end) noexcept;

  /// Replaces one seqlock'd status text (armed crash points, watchdog
  /// degradation, SLO burn). Truncates to the slot size.
  void NoteStatusText(blackbox::StatusSlot slot,
                      std::string_view text) noexcept;

  /// Rewrites the latest-sample section (seqlock-framed name/value table)
  /// from a registry snapshot. Called on the history tick cadence and on
  /// DumpMetrics — not a hot path.
  void WriteMetricsSample(const MetricsSnapshot& snap) noexcept;

  /// Marks the box as cleanly shut down (Database::Close). A box without
  /// this mark is ingested as a crash by the next open.
  void MarkCleanShutdown() noexcept;

  // -- Fatal-signal tier --

  /// Registers the arena so the handler can attribute an in-arena faulting
  /// address to (offset, shard) with pure arithmetic.
  void SetArena(const uint8_t* base, uint64_t size, const ShardMap* map) {
    arena_base_ = base;
    arena_size_ = size;
    shard_map_ = map;
  }

  /// Installs the fatal-signal handler chain for this recorder (replacing
  /// any previously registered recorder). Preloads backtrace(), sets up a
  /// sigaltstack, and saves the prior sigactions for chaining.
  Status InstallFatalHandler();

  /// Restores the prior sigactions if this recorder's handler is the one
  /// installed. Called automatically from the destructor.
  void UninstallFatalHandler();

  /// True while any FlightRecorder's fatal handler is registered.
  static bool FatalHandlerInstalled();

  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

 private:
  FlightRecorder(std::string path, int fd, uint8_t* map);

  /// Raw little-endian store/load helpers into the mapping. The mirrors
  /// use C++ atomics over properly aligned mapped words; the signal
  /// handler uses the same helpers (relaxed atomic stores are
  /// async-signal-safe).
  std::atomic<uint64_t>* Word64(uint64_t off) noexcept {
    return reinterpret_cast<std::atomic<uint64_t>*>(map_ + off);
  }
  std::atomic<uint32_t>* Word32(uint64_t off) noexcept {
    return reinterpret_cast<std::atomic<uint32_t>*>(map_ + off);
  }

  /// The sigaction-registered handler forwards here (file-local friend).
  friend void FlightRecorderSignalTrampoline(int, void*, void*);

  /// Signal-handler body: fills the crash record for `sig` at `addr`.
  /// Async-signal-safe (plain/atomic stores, write/lseek on fd_).
  void WriteCrashRecord(int sig, int code, const void* addr) noexcept;

  std::string path_;
  int fd_ = -1;
  uint8_t* map_ = nullptr;

  /// Serializes whole-sample rewrites (history tick vs DumpMetrics); the
  /// seqlock framing is for the crash-time reader, not these writers.
  std::mutex sample_mu_;

  const uint8_t* arena_base_ = nullptr;
  uint64_t arena_size_ = 0;
  const ShardMap* shard_map_ = nullptr;
};

}  // namespace cwdb

#endif  // CWDB_OBS_FLIGHT_RECORDER_H_
