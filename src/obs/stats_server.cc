#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace cwdb {
namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

/// "txn.commit_latency_ns" -> "cwdb_txn_commit_latency_ns".
std::string PromName(std::string_view name) {
  std::string out = "cwdb_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void WriteAll(int fd, std::string_view data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n <= 0) return;  // Peer went away; nothing to salvage.
    done += static_cast<size_t>(n);
  }
}

void SendResponse(int fd, int code, const char* reason,
                  const char* content_type, std::string_view body) {
  std::string head;
  Appendf(&head,
          "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
          "Connection: close\r\n\r\n",
          code, reason, content_type, body.size());
  WriteAll(fd, head);
  WriteAll(fd, body);
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, v] : snap.counters) {
    std::string p = PromName(name);
    Appendf(&out, "# HELP %s_total cwdb counter %s\n", p.c_str(),
            name.c_str());
    Appendf(&out, "# TYPE %s_total counter\n", p.c_str());
    Appendf(&out, "%s_total %" PRIu64 "\n", p.c_str(), v);
  }
  for (const auto& [name, v] : snap.gauges) {
    std::string p = PromName(name);
    Appendf(&out, "# HELP %s cwdb gauge %s\n", p.c_str(), name.c_str());
    Appendf(&out, "# TYPE %s gauge\n", p.c_str());
    Appendf(&out, "%s %" PRId64 "\n", p.c_str(), v);
  }
  for (const HistogramSnapshot& hs : snap.histograms) {
    std::string p = PromName(hs.name);
    Appendf(&out, "# HELP %s cwdb histogram %s\n", p.c_str(),
            hs.name.c_str());
    Appendf(&out, "# TYPE %s histogram\n", p.c_str());
    // Native histogram series from the log2 buckets: cumulative counts at
    // each power-of-two upper bound up to the highest populated bucket,
    // then +Inf. Grafana heatmaps and arbitrary histogram_quantile()
    // queries work on these where the old summary quantiles could not.
    size_t top = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (hs.h.buckets[i] != 0) top = i;
    }
    uint64_t cum = 0;
    for (size_t i = 0; i <= top && hs.h.count != 0; ++i) {
      cum += hs.h.buckets[i];
      Appendf(&out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", p.c_str(),
              Histogram::BucketUpperBound(i), cum);
    }
    Appendf(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", p.c_str(),
            hs.h.count);
    Appendf(&out, "%s_sum %" PRIu64 "\n", p.c_str(), hs.h.sum);
    Appendf(&out, "%s_count %" PRIu64 "\n", p.c_str(), hs.h.count);
  }
  // Scrape-time anchor so dashboards can align with incident wall stamps.
  Appendf(&out, "# HELP cwdb_boot_wall_seconds wall clock at registry boot\n");
  Appendf(&out, "# TYPE cwdb_boot_wall_seconds gauge\n");
  Appendf(&out, "cwdb_boot_wall_seconds %.3f\n",
          static_cast<double>(snap.boot_wall_ns) / 1e9);
  return out;
}

Status StatsServer::Start(const StatsServerOptions& options, Hooks hooks) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Busy("stats server already running");
  }
  if (!hooks.snapshot) {
    return Status::InvalidArgument("stats server needs a snapshot hook");
  }
  hooks_ = std::move(hooks);

  if (::pipe(wake_pipe_) != 0) return Status::IoError("pipe");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    Stop();
    return Status::IoError("socket");
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // Localhost only — see .h.
  addr.sin_port = htons(options.port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    Stop();
    return Status::IoError("bind/listen 127.0.0.1");
  }
  socklen_t alen = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &alen) != 0) {
    Stop();
    return Status::IoError("getsockname");
  }
  port_.store(ntohs(addr.sin_port), std::memory_order_release);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&StatsServer::Serve, this);
  return Status::OK();
}

void StatsServer::Stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    char b = 'q';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
  if (thread_.joinable()) thread_.join();
  for (int* fd : {&listen_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  port_.store(0, std::memory_order_release);
}

void StatsServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    struct pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() poked the pipe.
    if ((fds[0].revents & POLLIN) == 0) continue;
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void StatsServer::HandleConnection(int fd) {
  // Read until the end of the request head (or a sane cap). HTTP/1.0,
  // GET only, no body expected.
  struct timeval tv = {2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string req;
  char buf[1024];
  while (req.size() < 8192 && req.find("\r\n\r\n") == std::string::npos &&
         req.find("\n\n") == std::string::npos) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    req.append(buf, static_cast<size_t>(n));
    if (req.find('\n') != std::string::npos &&
        req.compare(0, 4, "GET ") != 0) {
      break;  // First line is in; not a GET — no point reading more.
    }
  }
  size_t eol = req.find_first_of("\r\n");
  if (eol == std::string::npos) return;
  std::string line = req.substr(0, eol);
  if (line.compare(0, 4, "GET ") != 0) {
    SendResponse(fd, 405, "Method Not Allowed", "text/plain", "GET only\n");
    return;
  }
  size_t sp = line.find(' ', 4);
  std::string path = line.substr(4, sp == std::string::npos ? std::string::npos
                                                            : sp - 4);
  // Route on the path alone; the query string (if any) goes to the
  // handler. GET /metrics?x=y must dispatch exactly like GET /metrics.
  std::string query;
  if (size_t q = path.find('?'); q != std::string::npos) {
    query = path.substr(q + 1);
    path.resize(q);
  }

  if (path == "/metrics") {
    SendResponse(fd, 200, "OK",
                 "text/plain; version=0.0.4; charset=utf-8",
                 RenderPrometheus(hooks_.snapshot()));
  } else if (path == "/incidents") {
    std::string body =
        hooks_.incidents_jsonl ? hooks_.incidents_jsonl() : std::string();
    SendResponse(fd, 200, "OK", "application/jsonl", body);
  } else if (path == "/spans") {
    // Always a valid (possibly empty) Chrome trace document, even when
    // tracing was never enabled.
    std::string body = hooks_.spans_json ? hooks_.spans_json() : std::string();
    if (body.empty()) body = "{\"traceEvents\":[]}\n";
    SendResponse(fd, 200, "OK", "application/json", body);
  } else if (path == "/query") {
    if (!hooks_.query) {
      SendResponse(fd, 404, "Not Found", "text/plain",
                   "no metrics history wired\n");
    } else {
      Result<std::string> r = hooks_.query(query);
      if (r.ok()) {
        SendResponse(fd, 200, "OK", "application/json", *r);
      } else {
        SendResponse(fd, 400, "Bad Request", "text/plain",
                     r.status().ToString() + "\n");
      }
    }
  } else if (path == "/healthz") {
    bool ok = hooks_.healthy ? hooks_.healthy() : true;
    std::string stalled = hooks_.degraded ? hooks_.degraded() : std::string();
    std::string slo = hooks_.slo ? hooks_.slo() : std::string();
    if (!ok) {
      SendResponse(fd, 503, "Service Unavailable", "text/plain", "corrupt\n");
    } else if (!stalled.empty()) {
      SendResponse(fd, 503, "Service Unavailable", "text/plain",
                   "stalled: " + stalled + "\n");
    } else if (!slo.empty()) {
      SendResponse(fd, 503, "Service Unavailable", "text/plain", slo + "\n");
    } else {
      SendResponse(fd, 200, "OK", "text/plain", "ok\n");
    }
  } else {
    SendResponse(fd, 404, "Not Found", "text/plain", "not found\n");
  }
}

}  // namespace cwdb
