#ifndef CWDB_OBS_HISTORY_H_
#define CWDB_OBS_HISTORY_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace cwdb {

/// Integrity coverage map (the "scrub map"): per engine shard, when the
/// background auditor (or a foreground full audit) last certified the
/// shard's bytes, at what LSN, and how far the current sweep cursor has
/// advanced. The paper's operational promise is *bounded detection latency*
/// (§3.2, §5: auditing is "an asynchronous check of consistency"); this map
/// is the live answer to "how stale is the least-recently-audited region
/// right now?".
///
/// Scrub age of a shard = now - the end of the last *complete* pass over
/// that shard (a pass certifies the shard's data as of its beginning, so
/// this is the upper bound on how long corruption in the shard could have
/// gone undetected). Before the first complete pass the age is measured
/// from the map's construction (database open). The max over shards is the
/// database's detection-latency exposure.
///
/// Publishes gauges into the registry so the map survives in metrics.json
/// (rendered by `cwdb_ctl scrub-map`) and is scraped over /metrics:
///   scrub.shard<N>.last_pass_wall_ms   wall clock of the last complete pass
///   scrub.shard<N>.last_audit_lsn      log position that pass certified
///   scrub.shard<N>.cursor_pct          current sweep cursor, percent
///   scrub.max_age_ms                   max staleness (refreshed by
///                                      UpdateGauges — the history sampler
///                                      calls it every tick)
class ScrubMap {
 public:
  struct ShardState {
    uint64_t last_pass_mono_ns = 0;  ///< 0 = no complete pass yet.
    uint64_t last_pass_wall_ns = 0;
    uint64_t last_audit_lsn = 0;
    uint64_t cursor_off = 0;     ///< Next in-shard offset the sweep audits.
    uint64_t shard_len = 0;
    uint64_t slices = 0;         ///< Cursor advances observed.
  };

  ScrubMap(MetricsRegistry* metrics, const std::vector<uint64_t>& shard_lens);

  /// The sweep audited [cursor_off - bytes, cursor_off) of `shard` while
  /// the log stood at `lsn`.
  void NoteSlice(size_t shard, uint64_t cursor_off, uint64_t lsn);
  /// A full pass over `shard` completed; its data as of `lsn` is certified.
  void NotePassComplete(size_t shard, uint64_t lsn);
  /// A foreground full audit certified every shard at `lsn`.
  void NoteFullAudit(uint64_t lsn);

  std::vector<ShardState> Snapshot() const;
  /// Staleness of shard `s` at `now_mono` (ns).
  uint64_t AgeNs(size_t shard, uint64_t now_mono) const;
  /// Max staleness across shards at `now_mono` (ns); 0 for an empty map.
  uint64_t MaxAgeNs(uint64_t now_mono) const;

  /// Refreshes the age-derived gauges (scrub.max_age_ms). The per-shard
  /// gauges are updated inline by the Note* calls.
  void UpdateGauges(uint64_t now_mono);

  size_t shard_count() const { return shards_.size(); }

 private:
  uint64_t AgeNsLocked(size_t shard, uint64_t now_mono) const;

  MetricsRegistry* metrics_;
  const uint64_t birth_mono_ns_;
  Gauge* max_age_ms_;
  mutable std::mutex mu_;
  std::vector<ShardState> shards_;
  /// Per-shard gauge triples, resolved once at construction.
  struct ShardGauges {
    Gauge* last_pass_wall_ms;
    Gauge* last_audit_lsn;
    Gauge* cursor_pct;
  };
  std::vector<ShardGauges> gauges_;
};

/// Metrics time-series history: a background sampler scrapes the registry
/// every interval_ms into a fixed-size in-process ring of samples, giving
/// every counter, gauge and histogram a queryable recent past — rates,
/// windowed quantiles, sparklines — where the registry alone only answers
/// "what is the total right now".
///
/// The ring is persisted (delta-encoded, CRC-framed records) to
/// metrics_history.bin on Database::DumpMetrics()/Close() and reloaded on
/// reopen, so `cwdb_ctl top` works on a cold directory and history spans
/// process restarts. Torn or truncated files load to their last valid
/// record; a corrupt header loads as empty. Neither fails the open.
struct HistoryOptions {
  /// Sampling cadence. 0 = no background sampler (SampleNow() still works,
  /// which is what deterministic tests use).
  uint64_t interval_ms = 0;
  /// Samples retained in the ring (oldest evicted first). At the default
  /// 1 s cadence, 512 samples ≈ 8.5 minutes of history.
  size_t retention = 512;
};

class MetricsHistory {
 public:
  /// One metric's value at one sample instant.
  struct Point {
    uint64_t mono_ns = 0;
    uint64_t wall_ns = 0;
    double value = 0;
  };

  enum class MetricType { kNone, kCounter, kGauge, kHistogram };

  /// Histogram activity over a query window: the difference between the
  /// cumulative log2 buckets at the window's edges.
  struct WindowedHist {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t buckets[Histogram::kBuckets] = {};
    /// Upper bound of the bucket holding rank ceil(q*count); 0 when empty.
    uint64_t Quantile(double q) const;
    /// Samples recorded in buckets strictly above the one holding
    /// `threshold` — i.e. values guaranteed > threshold (the SLO engine's
    /// "bad event" count; exact to the log2 bucket resolution).
    uint64_t CountAbove(uint64_t threshold) const;
  };

  MetricsHistory(MetricsRegistry* registry, HistoryOptions options);
  ~MetricsHistory();
  MetricsHistory(const MetricsHistory&) = delete;
  MetricsHistory& operator=(const MetricsHistory&) = delete;

  /// Starts the background sampler (no-op when interval_ms == 0).
  void Start();
  void Stop();

  /// Takes one sample now (the sampler thread calls this; tests and
  /// benchmarks call it directly for deterministic histories). Tick hooks
  /// run after the sample is in the ring.
  void SampleNow();

  /// Runs after every sample on the sampling thread (the SLO engine and
  /// the scrub-gauge refresh ride here). Install before Start().
  using TickHook = std::function<void(uint64_t now_mono_ns)>;
  void AddTickHook(TickHook hook);

  size_t size() const;
  /// Monotonic stamp of the newest sample (0 when empty) — the "now" to
  /// query a cold-loaded history at.
  uint64_t LatestMono() const;
  uint64_t samples_taken() const { return samples_taken_; }
  const HistoryOptions& options() const { return options_; }

  // -- Queries (all thread-safe) --

  MetricType TypeOf(std::string_view metric) const;
  /// Every sample of `metric` within [now - window, now] (monotonic).
  /// Counters and gauges yield their sampled value; histograms yield their
  /// cumulative count. Empty when the metric is unknown.
  std::vector<Point> Series(std::string_view metric, uint64_t window_ns,
                            uint64_t now_mono) const;
  /// Average increase of counter `metric` per second over the window
  /// (last - first sample in window over their time distance). 0 when
  /// fewer than two samples cover the window.
  double Rate(std::string_view metric, uint64_t window_ns,
              uint64_t now_mono) const;
  /// Histogram activity between the window's edge samples. False when the
  /// histogram is unknown or fewer than two samples cover the window.
  bool Windowed(std::string_view metric, uint64_t window_ns,
                uint64_t now_mono, WindowedHist* out) const;
  /// Latest sampled value of a counter/gauge (0 / false when unknown or
  /// the ring is empty).
  bool Latest(std::string_view metric, double* value) const;

  /// Answers a `GET /query` string ("metric=txn.commits&window=60s"):
  /// time-series JSON with the points, and for counters a rate, for
  /// histograms windowed p50/p95/p99. InvalidArgument on a malformed
  /// query or unknown metric.
  Result<std::string> QueryJson(std::string_view query) const;

  // -- Persistence --

  Status SaveTo(const std::string& path) const;
  /// Loads a saved ring, replacing the current contents. Tolerates torn,
  /// truncated and bit-flipped files (valid prefix wins; a bad header
  /// loads as empty). Only a filesystem error (not corruption) fails.
  Status LoadFrom(const std::string& path);

  /// LoadFrom's parsing core on in-memory bytes, factored out so the ring
  /// codec can be fuzzed without touching the filesystem. Never fails:
  /// arbitrary input loads to its longest valid prefix (possibly empty).
  void LoadFromBuffer(const std::string& data);

  /// Renders the operator "top" view: uptime, commit rate, commit p99,
  /// scrub age, SLO budget remaining, sparklines over the ring. `now_mono`
  /// = the render instant; use the latest sample's stamp for a cold
  /// directory (see cwdb_ctl top).
  std::string RenderTop(uint64_t now_mono) const;

 private:
  struct HistPoint {
    uint64_t count = 0;
    uint64_t sum = 0;
    /// Only the populated log2 buckets (typically < 16 of 64).
    std::vector<std::pair<uint8_t, uint64_t>> buckets;
  };
  /// One scrape. Value vectors align with the name tables below; a sample
  /// taken before a name was registered is shorter — missing = 0.
  struct Sample {
    uint64_t mono_ns = 0;
    uint64_t wall_ns = 0;
    std::vector<uint64_t> counters;
    std::vector<int64_t> gauges;
    std::vector<HistPoint> hists;
  };

  void SamplerLoop();
  void AppendSampleLocked(Sample sample);
  /// Index of the oldest sample with mono_ns >= cutoff; size() if none.
  size_t LowerBoundLocked(uint64_t cutoff_mono) const;
  int FindName(const std::vector<std::string>& names,
               std::string_view name) const;
  static void FillBuckets(const HistPoint& h,
                          uint64_t (&out)[Histogram::kBuckets]);

  MetricsRegistry* registry_;
  const HistoryOptions options_;

  mutable std::mutex mu_;
  /// Append-only name tables; sample value vectors index into these.
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::deque<Sample> ring_;
  uint64_t samples_taken_ = 0;

  std::vector<TickHook> hooks_;  ///< Written before Start(), read after.

  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  bool sampler_running_ = false;
  std::thread sampler_;
};

/// Renders the per-shard scrub-map heatmap from a persisted metrics
/// snapshot's gauges (`cwdb_ctl scrub-map`). `gauges` is the snapshot's
/// gauge list; `captured_wall_ns` its capture stamp, against which ages
/// are computed.
std::string RenderScrubMap(
    const std::vector<std::pair<std::string, int64_t>>& gauges,
    uint64_t captured_wall_ns);

}  // namespace cwdb

#endif  // CWDB_OBS_HISTORY_H_
