#ifndef CWDB_OBS_SLO_H_
#define CWDB_OBS_SLO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/forensics.h"
#include "obs/history.h"
#include "obs/metrics.h"

namespace cwdb {

/// What an SloSpec measures.
enum class SloKind : uint8_t {
  /// A latency histogram against a threshold: the bad-event fraction is the
  /// share of window samples in buckets strictly above the threshold's
  /// bucket, the burn rate that fraction over the allowed (1 - objective).
  kLatencyQuantile = 0,
  /// The scrub map's max staleness against a ceiling: burn = age / ceiling.
  kMaxScrubAge = 1,
  /// A counter against an absolute per-window budget: burn = increase /
  /// budget (watchdog stalls: any stall burns the whole budget).
  kCounterBudget = 2,
};

/// One evaluation window with its firing threshold, SRE-multiwindow style:
/// a spec fires only when EVERY window's burn rate exceeds its max_burn —
/// the short window proves the problem is still happening, the long one
/// that enough budget is gone to matter.
struct SloWindow {
  uint64_t window_ms = 60000;
  double max_burn = 6.0;
};

/// A declarative objective the engine evaluates continuously.
struct SloSpec {
  std::string name;          ///< Metric-safe slug ("commit_p99").
  SloKind kind = SloKind::kLatencyQuantile;
  std::string metric;        ///< Histogram or counter being judged.
  uint64_t threshold_ns = 0; ///< kLatencyQuantile: the latency bound.
  double objective = 0.99;   ///< kLatencyQuantile: good-event target.
  uint64_t max_age_ms = 0;   ///< kMaxScrubAge: staleness ceiling.
  double budget = 1;         ///< kCounterBudget: events allowed per window.
  std::vector<SloWindow> windows;  ///< Empty = SloOptions defaults.
};

struct SloOptions {
  bool enabled = false;
  /// Thresholds for the four built-in objectives (0 disables that SLO).
  uint64_t commit_p99_ns = 100ull * 1000 * 1000;       ///< 100 ms.
  uint64_t detection_p99_ns = 5ull * 1000 * 1000 * 1000;  ///< 5 s.
  uint64_t max_scrub_age_ms = 60000;
  double stall_budget = 1;   ///< Watchdog stalls tolerated per window.
  /// Default multi-window pair applied to specs that don't bring their own:
  /// fast 10 s window at 14.4x burn, slow 60 s window at 6x.
  std::vector<SloWindow> windows = {{10000, 14.4}, {60000, 6.0}};
  /// Additional caller-defined objectives.
  std::vector<SloSpec> extra;
};

/// Expands options into the concrete spec list the engine evaluates.
std::vector<SloSpec> BuildDefaultSlos(const SloOptions& options);

/// Declarative SLO engine: each EvaluateOnce computes every spec's burn
/// rate per window from the metrics history (and scrub map), latches
/// burn/recovery edges with hysteresis, files one kSloBurn dossier per
/// burn episode through the forensics pipeline, and publishes per-SLO
/// gauges the history then samples:
///   slo.<name>.burning                0/1
///   slo.<name>.burn_rate_x1000        slow-window burn rate, milli-units
///   slo.<name>.budget_remaining_pct   100 * (1 - burn/max_burn), clamped
/// Wired as a history tick hook, so evaluation rides the sampler cadence;
/// tests call EvaluateOnce directly for determinism.
class SloEngine {
 public:
  struct SloState {
    SloSpec spec;
    bool burning = false;
    uint64_t burn_episodes = 0;
    uint64_t last_incident_id = 0;
    std::vector<double> burn;  ///< Last burn rate per window.
    double budget_remaining_pct = 100;
  };

  /// `forensics` may be null (no dossiers filed — standalone tests).
  /// `scrub` may be null (kMaxScrubAge specs evaluate to 0 burn).
  SloEngine(MetricsRegistry* metrics, MetricsHistory* history,
            ScrubMap* scrub, ForensicsRecorder* forensics,
            std::vector<SloSpec> specs);

  /// Evaluates every spec at `now_mono`. Called from the history tick hook
  /// (after the sample lands, so windows include it).
  void EvaluateOnce(uint64_t now_mono);

  /// Non-empty while any SLO burns: "slo: commit_p99 burn 8.1x" — the
  /// /healthz degradation string.
  std::string BurnReason() const;
  bool AnyBurning() const;

  std::vector<SloState> Snapshot() const;

  /// The slo_report.json document: per-SLO config, live burn rates, budget
  /// remaining, episode count. Written next to metrics.json on flush/Close.
  std::string ReportJson() const;

  /// LSN context stamped onto burn dossiers (the owning Database points
  /// this at the stable log end).
  using LsnFn = std::function<uint64_t()>;
  void set_lsn_fn(LsnFn fn) { lsn_fn_ = std::move(fn); }

 private:
  struct Instruments {
    Gauge* burning;
    Gauge* burn_rate_x1000;
    Gauge* budget_remaining_pct;
    Counter* burn_episodes;
  };

  /// Burn rate of `spec` over one window ending at now_mono.
  double BurnRate(const SloSpec& spec, const SloWindow& window,
                  uint64_t now_mono) const;

  MetricsRegistry* metrics_;
  MetricsHistory* history_;
  ScrubMap* scrub_;
  ForensicsRecorder* forensics_;
  LsnFn lsn_fn_;

  mutable std::mutex mu_;
  std::vector<SloState> states_;
  std::vector<Instruments> instruments_;
};

}  // namespace cwdb

#endif  // CWDB_OBS_SLO_H_
