#ifndef CWDB_OBS_METRICS_H_
#define CWDB_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "obs/tracer.h"

namespace cwdb {

/// Nanoseconds on the process-wide monotonic clock. All latency metrics
/// and trace timestamps use this time base.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Nanoseconds since the Unix epoch on the wall clock. Never used for
/// latency math (it can step); only for stamping output an operator reads.
inline uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Monotonic 64-bit counter sharded across cache-line-padded atomic slots.
/// Each thread is assigned one slot round-robin at first use, so concurrent
/// transactions on different threads never contend on (or false-share) a
/// cache line; Value() folds the slots. Add is a single relaxed fetch_add —
/// cheap enough for the update hot path, and race-free where the old plain
/// `uint64_t` stats fields were not.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1) {
    slots_[ThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  /// Zeroes every shard. Not atomic with respect to concurrent Add: a reset
  /// racing an increment may keep or drop that single increment, which is
  /// the same contract ResetStats() always had — reset between workloads.
  void Reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };

  static size_t ThreadShard();

  Slot slots_[kShards];
};

/// Point-in-time signed value (queue depths, active transactions).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-bucketed latency/size histogram: one bucket per power of two (bucket
/// i holds values with bit_width == i, i.e. [2^(i-1), 2^i)). Recording is a
/// relaxed fetch_add plus a CAS-loop max update; percentiles are resolved
/// to the upper bound of the bucket holding the rank, which is exact to a
/// factor of two — plenty for p50/p95/p99 of latencies spanning decades.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t value);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
    uint64_t buckets[kBuckets] = {};

    /// Value at quantile q in [0,1]: upper bound of the bucket containing
    /// ceil(q * count); 0 when empty.
    uint64_t Quantile(double q) const;
  };

  Snapshot Capture() const;
  uint64_t Count() const;
  void Reset();

  /// Upper bound (exclusive) of bucket `i`: 2^i, saturating at UINT64_MAX.
  static uint64_t BucketUpperBound(size_t i) {
    return i >= 63 ? UINT64_MAX : (uint64_t{1} << i);
  }
  /// Bucket index a value lands in.
  static size_t BucketOf(uint64_t value);

 private:
  std::atomic<uint64_t> counts_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
};

/// One named-histogram snapshot inside a MetricsSnapshot.
struct HistogramSnapshot {
  std::string name;
  Histogram::Snapshot h;
};

/// Point-in-time copy of every instrument in a registry, with stable JSON
/// and human-text exporters. Instrument vectors are sorted by name so two
/// snapshots of the same state serialize identically.
struct MetricsSnapshot {
  /// Version of the JSON schema ToJson emits. Bumped to 2 when the
  /// timestamp block and per-event wall_ns were added; to 3 when events
  /// gained the optional per-shard attribution word.
  static constexpr uint32_t kSchemaVersion = 3;

  /// When this snapshot was taken, in both time bases, plus the registry's
  /// boot anchor pair that converts any monotonic stamp in `events` to wall
  /// time: wall = boot_wall_ns + (mono - boot_mono_ns).
  uint64_t captured_mono_ns = 0;
  uint64_t captured_wall_ns = 0;
  uint64_t boot_mono_ns = 0;
  uint64_t boot_wall_ns = 0;

  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<TraceEvent> events;

  /// Projects a monotonic stamp through the boot anchor; 0 stays 0.
  uint64_t WallFromMono(uint64_t mono_ns) const {
    if (mono_ns == 0 || boot_wall_ns == 0) return 0;
    return boot_wall_ns + (mono_ns - boot_mono_ns);
  }

  /// Stable machine-readable form: keys sorted, fixed field order, one
  /// entry per line. This is the schema `cwdb_ctl stats` re-emits.
  std::string ToJson() const;
  /// Human-readable table.
  std::string ToText() const;

  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
};

/// Registry of named, typed instruments plus the engine event trace. One
/// registry per Database (a process may hold several databases — benches
/// compare schemes side by side — so a process-global registry would
/// conflate them); components constructed standalone in tests fall back to
/// a private registry via FallbackRegistry below.
///
/// Instrument lookup takes a mutex and is meant for construction time:
/// components resolve their instruments once and keep the pointers, which
/// stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry()
      : boot_mono_ns_(NowNs()),
        boot_wall_ns_(WallNowNs()),
        trace_(kDefaultTraceCapacity) {}
  explicit MetricsRegistry(size_t trace_capacity)
      : boot_mono_ns_(NowNs()),
        boot_wall_ns_(WallNowNs()),
        trace_(trace_capacity) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);
  EventTrace& trace() { return trace_; }

  /// The database's span tracer. Disabled (and allocation-free) until the
  /// owner calls tracer()->Configure with a nonzero sample rate; components
  /// cache the pointer like any instrument.
  Tracer* tracer() { return &tracer_; }

  MetricsSnapshot Capture() const;

  /// Boot-time anchor pair sampled once at construction: the same instant
  /// on both clocks, letting operators convert steady-clock stamps
  /// (NowNs(), trace events) into wall-clock time.
  uint64_t boot_mono_ns() const { return boot_mono_ns_; }
  uint64_t boot_wall_ns() const { return boot_wall_ns_; }
  uint64_t WallFromMono(uint64_t mono_ns) const {
    return mono_ns == 0 ? 0 : boot_wall_ns_ + (mono_ns - boot_mono_ns_);
  }

  /// Resets every counter and histogram whose name starts with `prefix`
  /// (all of them for an empty prefix). Gauges and the trace are left
  /// alone: they describe current state, not accumulated history.
  void Reset(std::string_view prefix = {});

  // -- Fault-injection detection-latency support (paper §3.2/§5) --
  //
  // The FaultInjector stamps every corrupting write here; whichever layer
  // later implicates an overlapping byte range (audit, read precheck,
  // hardware trap) calls NoteDetection, and the elapsed time lands in the
  // `protect.detection_latency_ns` histogram. The pending set is bounded:
  // past kMaxPendingFaults the oldest entry is dropped.

  void NoteInjectedFault(uint64_t off, uint64_t len);
  /// Matches [off, off+len) against pending injected faults; records one
  /// detection-latency sample per match (>= 1 ns) and retires the fault.
  /// Returns the number of faults matched.
  size_t NoteDetection(uint64_t off, uint64_t len);

  static constexpr size_t kDefaultTraceCapacity = 1024;
  static constexpr size_t kMaxPendingFaults = 4096;

 private:
  struct PendingFault {
    uint64_t off;
    uint64_t len;
    uint64_t t_ns;
  };

  const uint64_t boot_mono_ns_;
  const uint64_t boot_wall_ns_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;

  std::mutex faults_mu_;
  std::vector<PendingFault> pending_faults_;

  EventTrace trace_;
  Tracer tracer_;
};

/// Returns `reg` when the caller was given one (the Database's registry);
/// otherwise lazily creates a private registry in *owned so standalone
/// component construction (unit tests, micro-benches) needs no ceremony.
inline MetricsRegistry* FallbackRegistry(
    MetricsRegistry* reg, std::unique_ptr<MetricsRegistry>* owned) {
  if (reg != nullptr) return reg;
  if (*owned == nullptr) *owned = std::make_unique<MetricsRegistry>();
  return owned->get();
}

}  // namespace cwdb

#endif  // CWDB_OBS_METRICS_H_
