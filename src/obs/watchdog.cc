#include "obs/watchdog.h"

#include <cinttypes>
#include <cstdio>

namespace cwdb {

Watchdog::Watchdog(MetricsRegistry* metrics, ForensicsRecorder* forensics,
                   std::function<uint64_t()> stable_lsn)
    : metrics_(metrics),
      forensics_(forensics),
      stable_lsn_(std::move(stable_lsn)),
      stalls_(metrics->counter("watchdog.stalls")),
      degraded_(metrics->gauge("watchdog.degraded")) {}

Watchdog::~Watchdog() { Stop(); }

uint64_t Watchdog::AddProbe(WatchdogProbe probe) {
  std::lock_guard<std::mutex> guard(mu_);
  ProbeState st;
  st.id = next_probe_id_++;
  st.probe = std::move(probe);
  probes_.push_back(std::move(st));
  return probes_.back().id;
}

void Watchdog::RemoveProbe(uint64_t id) {
  std::lock_guard<std::mutex> guard(mu_);
  for (size_t i = 0; i < probes_.size(); ++i) {
    if (probes_[i].id == id) {
      probes_.erase(probes_.begin() + i);
      break;
    }
  }
  int64_t fired = 0;
  for (const ProbeState& st : probes_) fired += st.fired ? 1 : 0;
  degraded_->Set(fired);
}

void Watchdog::Start(uint64_t poll_interval_ms) {
  std::lock_guard<std::mutex> guard(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  poll_interval_ms_ = poll_interval_ms == 0 ? 100 : poll_interval_ms;
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> guard(mu_);
  running_ = false;
}

void Watchdog::PollOnce() {
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t now = NowNs();
  int64_t fired_count = 0;
  for (ProbeState& st : probes_) {
    bool active = st.probe.active ? st.probe.active() : false;
    if (!active) {
      // Nothing outstanding: the probe is healthy and re-armed.
      st.last_change_ns = 0;
      st.fired = false;
      continue;
    }
    uint64_t progress = st.probe.progress ? st.probe.progress() : 0;
    if (st.last_change_ns == 0 || progress != st.last_progress) {
      st.last_progress = progress;
      st.last_change_ns = now;
      st.fired = false;
      continue;
    }
    uint64_t stuck_ns = now - st.last_change_ns;
    if (stuck_ns < st.probe.stall_ns) {
      fired_count += st.fired ? 1 : 0;
      continue;
    }
    if (!st.fired) {
      st.fired = true;
      stalls_->Add();
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "watchdog: %s stalled for %" PRIu64
                    " ms at progress=%" PRIu64,
                    st.probe.name.c_str(), stuck_ns / 1000000, progress);
      if (forensics_ != nullptr) {
        uint64_t lsn = stable_lsn_ ? stable_lsn_() : 0;
        forensics_->RecordIncident(IncidentSource::kStallWatchdog, lsn, 0,
                                   {}, detail);
      }
    }
    ++fired_count;
  }
  degraded_->Set(fired_count);
}

std::string Watchdog::DegradedReason() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::string out;
  const uint64_t now = NowNs();
  for (const ProbeState& st : probes_) {
    if (!st.fired) continue;
    if (!out.empty()) out += ", ";
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s stalled %" PRIu64 "ms",
                  st.probe.name.c_str(),
                  st.last_change_ns != 0 && now > st.last_change_ns
                      ? (now - st.last_change_ns) / 1000000
                      : 0);
    out += buf;
  }
  return out;
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> guard(mu_);
  while (!stop_) {
    uint64_t interval = poll_interval_ms_;
    guard.unlock();
    PollOnce();
    guard.lock();
    cv_.wait_for(guard, std::chrono::milliseconds(interval),
                 [this] { return stop_; });
  }
}

}  // namespace cwdb
