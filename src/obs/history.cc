#include "obs/history.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/file_util.h"
#include "common/json.h"
#include "common/slice.h"

namespace cwdb {

// ---------------------------------------------------------------------------
// ScrubMap

ScrubMap::ScrubMap(MetricsRegistry* metrics,
                   const std::vector<uint64_t>& shard_lens)
    : metrics_(metrics),
      birth_mono_ns_(NowNs()),
      max_age_ms_(metrics->gauge("scrub.max_age_ms")) {
  shards_.resize(shard_lens.size());
  gauges_.resize(shard_lens.size());
  char name[64];
  for (size_t s = 0; s < shard_lens.size(); ++s) {
    shards_[s].shard_len = shard_lens[s];
    std::snprintf(name, sizeof(name), "scrub.shard%zu.last_pass_wall_ms", s);
    gauges_[s].last_pass_wall_ms = metrics->gauge(name);
    std::snprintf(name, sizeof(name), "scrub.shard%zu.last_audit_lsn", s);
    gauges_[s].last_audit_lsn = metrics->gauge(name);
    std::snprintf(name, sizeof(name), "scrub.shard%zu.cursor_pct", s);
    gauges_[s].cursor_pct = metrics->gauge(name);
  }
}

void ScrubMap::NoteSlice(size_t shard, uint64_t cursor_off, uint64_t lsn) {
  if (shard >= shards_.size()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& st = shards_[shard];
  st.cursor_off = cursor_off;
  st.slices++;
  (void)lsn;  // The pass-completion LSN is what certifies; slices just move.
  gauges_[shard].cursor_pct->Set(
      st.shard_len == 0
          ? 0
          : static_cast<int64_t>(cursor_off * 100 / st.shard_len));
}

void ScrubMap::NotePassComplete(size_t shard, uint64_t lsn) {
  if (shard >= shards_.size()) return;
  uint64_t mono = NowNs();
  uint64_t wall = metrics_->WallFromMono(mono);
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& st = shards_[shard];
  st.last_pass_mono_ns = mono;
  st.last_pass_wall_ns = wall;
  st.last_audit_lsn = lsn;
  st.cursor_off = 0;
  gauges_[shard].last_pass_wall_ms->Set(
      static_cast<int64_t>(wall / 1000000));
  gauges_[shard].last_audit_lsn->Set(static_cast<int64_t>(lsn));
  gauges_[shard].cursor_pct->Set(0);
}

void ScrubMap::NoteFullAudit(uint64_t lsn) {
  for (size_t s = 0; s < shards_.size(); ++s) NotePassComplete(s, lsn);
  UpdateGauges(NowNs());
}

std::vector<ScrubMap::ShardState> ScrubMap::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_;
}

uint64_t ScrubMap::AgeNsLocked(size_t shard, uint64_t now_mono) const {
  uint64_t anchor = shards_[shard].last_pass_mono_ns;
  if (anchor == 0) anchor = birth_mono_ns_;
  return now_mono > anchor ? now_mono - anchor : 0;
}

uint64_t ScrubMap::AgeNs(size_t shard, uint64_t now_mono) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard >= shards_.size()) return 0;
  return AgeNsLocked(shard, now_mono);
}

uint64_t ScrubMap::MaxAgeNs(uint64_t now_mono) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t max_age = 0;
  for (size_t s = 0; s < shards_.size(); ++s)
    max_age = std::max(max_age, AgeNsLocked(s, now_mono));
  return max_age;
}

void ScrubMap::UpdateGauges(uint64_t now_mono) {
  max_age_ms_->Set(static_cast<int64_t>(MaxAgeNs(now_mono) / 1000000));
}

// ---------------------------------------------------------------------------
// MetricsHistory — persistence format
//
//   "CWHIST01"                                    8-byte magic
//   repeated records:  [u32 len][u32 crc32c(payload)][payload]
//     payload = [u8 type][body]
//       kNamesRecord: [u8 section][varint n][n * length-prefixed name]
//                     (appended to that section's name table)
//       kSampleRecord, delta-coded against the previous sample record:
//         [varint d_mono_ns][svarint d_wall_ns]
//         [varint nc][nc * svarint counter delta]
//         [varint ng][ng * svarint gauge delta]
//         [varint nh][nh * ([svarint d_count][svarint d_sum]
//                           [varint nb][nb * ([u8 bucket][svarint d_val])])]
//         The first sample deltas against an all-zero sample, so its
//         "deltas" are absolute values. Histogram bucket deltas are sparse:
//         only buckets whose value changed are present.
//
// The loader keeps every record up to the first frame whose length runs
// past EOF or whose CRC mismatches — the torn-write contract shared with
// the WAL tail.

namespace {

constexpr char kHistoryMagic[8] = {'C', 'W', 'H', 'I', 'S', 'T', '0', '1'};
constexpr uint8_t kNamesRecord = 1;
constexpr uint8_t kSampleRecord = 2;

void AppendRecord(std::string* out, const std::string& payload) {
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  PutFixed32(out, Crc32c(payload.data(), payload.size()));
  out->append(payload);
}

std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "ns", ns);
  }
  return buf;
}

/// Eight-level unicode sparkline of `vals`, empty values rendered as the
/// lowest bar. All-equal series render mid-height.
std::string Sparkline(const std::vector<double>& vals) {
  static const char* kBars[8] = {"▁", "▂", "▃", "▄",
                                 "▅", "▆", "▇", "█"};
  if (vals.empty()) return "";
  double lo = vals[0], hi = vals[0];
  for (double v : vals) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (double v : vals) {
    int level = 3;
    if (hi > lo)
      level = static_cast<int>((v - lo) / (hi - lo) * 7.0 + 0.5);
    out += kBars[std::clamp(level, 0, 7)];
  }
  return out;
}

/// "500ms" / "60s" / "5m" / plain seconds → nanoseconds; 0 on parse error.
uint64_t ParseWindow(std::string_view s) {
  if (s.empty()) return 0;
  size_t i = 0;
  uint64_t n = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    n = n * 10 + static_cast<uint64_t>(s[i] - '0');
    ++i;
  }
  if (i == 0) return 0;
  std::string_view unit = s.substr(i);
  if (unit == "ms") return n * 1000000ull;
  if (unit == "s" || unit.empty()) return n * 1000000000ull;
  if (unit == "m") return n * 60ull * 1000000000ull;
  if (unit == "h") return n * 3600ull * 1000000000ull;
  return 0;
}

}  // namespace

uint64_t MetricsHistory::WindowedHist::Quantile(double q) const {
  if (count == 0) return 0;
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return Histogram::BucketUpperBound(i);
  }
  return Histogram::BucketUpperBound(Histogram::kBuckets - 1);
}

uint64_t MetricsHistory::WindowedHist::CountAbove(uint64_t threshold) const {
  size_t b = Histogram::BucketOf(threshold);
  uint64_t n = 0;
  for (size_t i = b + 1; i < Histogram::kBuckets; ++i) n += buckets[i];
  return n;
}

MetricsHistory::MetricsHistory(MetricsRegistry* registry,
                               HistoryOptions options)
    : registry_(registry), options_(options) {}

MetricsHistory::~MetricsHistory() { Stop(); }

void MetricsHistory::Start() {
  if (options_.interval_ms == 0 || registry_ == nullptr) return;
  std::lock_guard<std::mutex> lock(sampler_mu_);
  if (sampler_running_) return;
  sampler_stop_ = false;
  sampler_running_ = true;
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void MetricsHistory::Stop() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    if (!sampler_running_) return;
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  sampler_.join();
  std::lock_guard<std::mutex> lock(sampler_mu_);
  sampler_running_ = false;
}

void MetricsHistory::SamplerLoop() {
  std::unique_lock<std::mutex> lock(sampler_mu_);
  while (!sampler_stop_) {
    lock.unlock();
    SampleNow();
    lock.lock();
    sampler_cv_.wait_for(lock,
                         std::chrono::milliseconds(options_.interval_ms),
                         [this] { return sampler_stop_; });
  }
}

void MetricsHistory::AddTickHook(TickHook hook) {
  hooks_.push_back(std::move(hook));
}

void MetricsHistory::SampleNow() {
  if (registry_ == nullptr) return;
  MetricsSnapshot snap = registry_->Capture();
  Sample sample;
  sample.mono_ns = snap.captured_mono_ns;
  sample.wall_ns = snap.captured_wall_ns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Align the snapshot's (sorted) instruments with the append-only name
    // tables. Names the tables don't know yet are appended; names the
    // snapshot lacks (never happens today — instruments are never removed)
    // would read as their previous value staying flat, which value vectors
    // of the right length can't express, so fill with 0.
    sample.counters.assign(counter_names_.size(), 0);
    for (const auto& [name, value] : snap.counters) {
      int idx = FindName(counter_names_, name);
      if (idx < 0) {
        counter_names_.push_back(name);
        sample.counters.push_back(value);
      } else {
        sample.counters[static_cast<size_t>(idx)] = value;
      }
    }
    sample.gauges.assign(gauge_names_.size(), 0);
    for (const auto& [name, value] : snap.gauges) {
      int idx = FindName(gauge_names_, name);
      if (idx < 0) {
        gauge_names_.push_back(name);
        sample.gauges.push_back(value);
      } else {
        sample.gauges[static_cast<size_t>(idx)] = value;
      }
    }
    sample.hists.assign(hist_names_.size(), HistPoint{});
    for (const HistogramSnapshot& hs : snap.histograms) {
      HistPoint hp;
      hp.count = hs.h.count;
      hp.sum = hs.h.sum;
      for (size_t i = 0; i < Histogram::kBuckets; ++i)
        if (hs.h.buckets[i] != 0)
          hp.buckets.emplace_back(static_cast<uint8_t>(i), hs.h.buckets[i]);
      int idx = FindName(hist_names_, hs.name);
      if (idx < 0) {
        hist_names_.push_back(hs.name);
        sample.hists.push_back(std::move(hp));
      } else {
        sample.hists[static_cast<size_t>(idx)] = std::move(hp);
      }
    }
    AppendSampleLocked(std::move(sample));
    samples_taken_++;
  }
  for (const TickHook& hook : hooks_) hook(snap.captured_mono_ns);
}

void MetricsHistory::AppendSampleLocked(Sample sample) {
  ring_.push_back(std::move(sample));
  while (ring_.size() > options_.retention) ring_.pop_front();
}

size_t MetricsHistory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t MetricsHistory::LatestMono() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? 0 : ring_.back().mono_ns;
}

size_t MetricsHistory::LowerBoundLocked(uint64_t cutoff_mono) const {
  size_t lo = 0, hi = ring_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (ring_[mid].mono_ns < cutoff_mono)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

int MetricsHistory::FindName(const std::vector<std::string>& names,
                             std::string_view name) const {
  for (size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return static_cast<int>(i);
  return -1;
}

void MetricsHistory::FillBuckets(const HistPoint& h,
                                 uint64_t (&out)[Histogram::kBuckets]) {
  std::memset(out, 0, sizeof(out));
  for (const auto& [idx, val] : h.buckets)
    if (idx < Histogram::kBuckets) out[idx] = val;
}

MetricsHistory::MetricType MetricsHistory::TypeOf(
    std::string_view metric) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (FindName(counter_names_, metric) >= 0) return MetricType::kCounter;
  if (FindName(gauge_names_, metric) >= 0) return MetricType::kGauge;
  if (FindName(hist_names_, metric) >= 0) return MetricType::kHistogram;
  return MetricType::kNone;
}

std::vector<MetricsHistory::Point> MetricsHistory::Series(
    std::string_view metric, uint64_t window_ns, uint64_t now_mono) const {
  std::vector<Point> out;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t cutoff = now_mono > window_ns ? now_mono - window_ns : 0;
  size_t start = LowerBoundLocked(cutoff);
  int cidx = FindName(counter_names_, metric);
  int gidx = cidx < 0 ? FindName(gauge_names_, metric) : -1;
  int hidx = (cidx < 0 && gidx < 0) ? FindName(hist_names_, metric) : -1;
  if (cidx < 0 && gidx < 0 && hidx < 0) return out;
  for (size_t i = start; i < ring_.size(); ++i) {
    const Sample& s = ring_[i];
    Point p;
    p.mono_ns = s.mono_ns;
    p.wall_ns = s.wall_ns;
    if (cidx >= 0) {
      size_t j = static_cast<size_t>(cidx);
      p.value = j < s.counters.size()
                    ? static_cast<double>(s.counters[j])
                    : 0;
    } else if (gidx >= 0) {
      size_t j = static_cast<size_t>(gidx);
      p.value = j < s.gauges.size() ? static_cast<double>(s.gauges[j]) : 0;
    } else {
      size_t j = static_cast<size_t>(hidx);
      p.value = j < s.hists.size() ? static_cast<double>(s.hists[j].count)
                                   : 0;
    }
    out.push_back(p);
  }
  return out;
}

double MetricsHistory::Rate(std::string_view metric, uint64_t window_ns,
                            uint64_t now_mono) const {
  std::vector<Point> pts = Series(metric, window_ns, now_mono);
  if (pts.size() < 2) return 0;
  const Point& a = pts.front();
  const Point& b = pts.back();
  if (b.mono_ns <= a.mono_ns) return 0;
  double dt_s = static_cast<double>(b.mono_ns - a.mono_ns) / 1e9;
  return (b.value - a.value) / dt_s;
}

bool MetricsHistory::Windowed(std::string_view metric, uint64_t window_ns,
                              uint64_t now_mono, WindowedHist* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  int hidx = FindName(hist_names_, metric);
  if (hidx < 0 || ring_.size() < 2) return false;
  uint64_t cutoff = now_mono > window_ns ? now_mono - window_ns : 0;
  size_t start = LowerBoundLocked(cutoff);
  if (start >= ring_.size()) return false;
  // Diff against the sample just *before* the window when one exists, so a
  // window covering the whole ring still has a baseline (all-zero implicit
  // baseline for the ring's first sample).
  const Sample& newest = ring_.back();
  size_t j = static_cast<size_t>(hidx);
  HistPoint zero;
  const HistPoint& hi_h =
      j < newest.hists.size() ? newest.hists[j] : zero;
  const HistPoint& lo_h = start == 0
                              ? zero
                              : (j < ring_[start - 1].hists.size()
                                     ? ring_[start - 1].hists[j]
                                     : zero);
  uint64_t hi_b[Histogram::kBuckets], lo_b[Histogram::kBuckets];
  FillBuckets(hi_h, hi_b);
  FillBuckets(lo_h, lo_b);
  *out = WindowedHist{};
  out->count = hi_h.count >= lo_h.count ? hi_h.count - lo_h.count : 0;
  out->sum = hi_h.sum >= lo_h.sum ? hi_h.sum - lo_h.sum : 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i)
    out->buckets[i] = hi_b[i] >= lo_b[i] ? hi_b[i] - lo_b[i] : 0;
  return true;
}

bool MetricsHistory::Latest(std::string_view metric, double* value) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return false;
  const Sample& s = ring_.back();
  int idx = FindName(counter_names_, metric);
  if (idx >= 0) {
    size_t j = static_cast<size_t>(idx);
    *value = j < s.counters.size() ? static_cast<double>(s.counters[j]) : 0;
    return true;
  }
  idx = FindName(gauge_names_, metric);
  if (idx >= 0) {
    size_t j = static_cast<size_t>(idx);
    *value = j < s.gauges.size() ? static_cast<double>(s.gauges[j]) : 0;
    return true;
  }
  return false;
}

Result<std::string> MetricsHistory::QueryJson(std::string_view query) const {
  std::string metric;
  std::string window_str = "60s";
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    std::string_view kv = query.substr(pos, amp - pos);
    pos = amp + 1;
    size_t eq = kv.find('=');
    if (eq == std::string_view::npos) continue;
    std::string_view key = kv.substr(0, eq);
    std::string_view val = kv.substr(eq + 1);
    if (key == "metric")
      metric.assign(val);
    else if (key == "window")
      window_str.assign(val);
  }
  if (metric.empty())
    return Status::InvalidArgument("query: missing metric=<name>");
  uint64_t window_ns = ParseWindow(window_str);
  if (window_ns == 0)
    return Status::InvalidArgument("query: bad window '" + window_str +
                                   "' (want e.g. 500ms, 60s, 5m)");
  MetricType type = TypeOf(metric);
  if (type == MetricType::kNone)
    return Status::InvalidArgument("query: unknown metric '" + metric + "'");

  uint64_t now_mono;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.empty())
      return Status::InvalidArgument("query: history is empty");
    now_mono = ring_.back().mono_ns;
  }
  std::vector<Point> pts = Series(metric, window_ns, now_mono);

  const char* type_name = type == MetricType::kCounter   ? "counter"
                          : type == MetricType::kGauge   ? "gauge"
                                                         : "histogram";
  char buf[160];
  std::string out = "{\n";
  out += "  \"metric\": " + JsonQuote(metric) + ",\n";
  out += std::string("  \"type\": \"") + type_name + "\",\n";
  std::snprintf(buf, sizeof(buf), "  \"window_ns\": %" PRIu64 ",\n",
                window_ns);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"samples\": %zu,\n", pts.size());
  out += buf;
  if (type == MetricType::kCounter) {
    std::snprintf(buf, sizeof(buf), "  \"rate_per_s\": %.6g,\n",
                  Rate(metric, window_ns, now_mono));
    out += buf;
  }
  if (type == MetricType::kHistogram) {
    WindowedHist wh;
    if (Windowed(metric, window_ns, now_mono, &wh)) {
      std::snprintf(buf, sizeof(buf),
                    "  \"windowed\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                    ", \"p50\": %" PRIu64 ", \"p95\": %" PRIu64
                    ", \"p99\": %" PRIu64 "},\n",
                    wh.count, wh.sum, wh.Quantile(0.50), wh.Quantile(0.95),
                    wh.Quantile(0.99));
      out += buf;
    }
  }
  out += "  \"points\": [";
  for (size_t i = 0; i < pts.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"wall_ms\": %" PRIu64 ", \"value\": %.6g}",
                  i == 0 ? "" : ",", pts[i].wall_ns / 1000000, pts[i].value);
    out += buf;
  }
  out += pts.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Persistence

Status MetricsHistory::SaveTo(const std::string& path) const {
  std::string data(kHistoryMagic, sizeof(kHistoryMagic));
  std::lock_guard<std::mutex> lock(mu_);
  for (uint8_t section = 0; section < 3; ++section) {
    const std::vector<std::string>& names =
        section == 0 ? counter_names_
                     : (section == 1 ? gauge_names_ : hist_names_);
    if (names.empty()) continue;
    std::string payload;
    PutFixed8(&payload, kNamesRecord);
    PutFixed8(&payload, section);
    PutVarint64(&payload, names.size());
    for (const std::string& n : names) PutLengthPrefixed(&payload, Slice(n));
    AppendRecord(&data, payload);
  }
  Sample prev;  // All-zero baseline for the first sample.
  for (const Sample& s : ring_) {
    std::string payload;
    PutFixed8(&payload, kSampleRecord);
    PutVarint64(&payload, s.mono_ns - prev.mono_ns);
    PutVarintSigned(&payload, static_cast<int64_t>(s.wall_ns) -
                                  static_cast<int64_t>(prev.wall_ns));
    PutVarint64(&payload, s.counters.size());
    for (size_t i = 0; i < s.counters.size(); ++i) {
      uint64_t p = i < prev.counters.size() ? prev.counters[i] : 0;
      PutVarintSigned(&payload, static_cast<int64_t>(s.counters[i]) -
                                    static_cast<int64_t>(p));
    }
    PutVarint64(&payload, s.gauges.size());
    for (size_t i = 0; i < s.gauges.size(); ++i) {
      int64_t p = i < prev.gauges.size() ? prev.gauges[i] : 0;
      PutVarintSigned(&payload, s.gauges[i] - p);
    }
    PutVarint64(&payload, s.hists.size());
    for (size_t i = 0; i < s.hists.size(); ++i) {
      static const HistPoint kZero;
      const HistPoint& cur = s.hists[i];
      const HistPoint& p = i < prev.hists.size() ? prev.hists[i] : kZero;
      PutVarintSigned(&payload, static_cast<int64_t>(cur.count) -
                                    static_cast<int64_t>(p.count));
      PutVarintSigned(&payload, static_cast<int64_t>(cur.sum) -
                                    static_cast<int64_t>(p.sum));
      uint64_t cb[Histogram::kBuckets], pb[Histogram::kBuckets];
      FillBuckets(cur, cb);
      FillBuckets(p, pb);
      std::string deltas;
      uint64_t nb = 0;
      for (size_t b = 0; b < Histogram::kBuckets; ++b) {
        if (cb[b] == pb[b]) continue;
        PutFixed8(&deltas, static_cast<uint8_t>(b));
        PutVarintSigned(&deltas, static_cast<int64_t>(cb[b]) -
                                     static_cast<int64_t>(pb[b]));
        nb++;
      }
      PutVarint64(&payload, nb);
      payload += deltas;
    }
    AppendRecord(&data, payload);
    prev = s;
  }
  return WriteFileAtomic(path, data, "obs.history");
}

Status MetricsHistory::LoadFrom(const std::string& path) {
  std::string data;
  Status s =
      ReadFileToString(path, &data, MissingFile::kTreatAsEmpty);
  if (!s.ok()) return s;
  LoadFromBuffer(data);
  return Status::OK();
}

void MetricsHistory::LoadFromBuffer(const std::string& data) {
  std::vector<std::string> counters, gauges, hists;
  std::deque<Sample> ring;

  if (data.size() >= sizeof(kHistoryMagic) &&
      std::memcmp(data.data(), kHistoryMagic, sizeof(kHistoryMagic)) == 0) {
    size_t off = sizeof(kHistoryMagic);
    Sample prev;
    while (off + 8 <= data.size()) {
      uint32_t len = DecodeFixed32(data.data() + off);
      uint32_t crc = DecodeFixed32(data.data() + off + 4);
      if (off + 8 + len > data.size()) break;  // Torn tail.
      const char* payload = data.data() + off + 8;
      if (Crc32c(payload, len) != crc) break;  // Bit-flipped record.
      Decoder dec(Slice(payload, len));
      uint8_t type = dec.GetFixed8();
      if (type == kNamesRecord) {
        uint8_t section = dec.GetFixed8();
        uint64_t n = dec.GetVarint64();
        std::vector<std::string>* names =
            section == 0 ? &counters
                         : (section == 1 ? &gauges
                                         : (section == 2 ? &hists : nullptr));
        if (names == nullptr) break;
        for (uint64_t i = 0; i < n && dec.ok(); ++i) {
          Slice name = dec.GetLengthPrefixed();
          if (dec.ok()) names->emplace_back(name.data(), name.size());
        }
        if (!dec.ok()) break;
      } else if (type == kSampleRecord) {
        Sample cur;
        cur.mono_ns = prev.mono_ns + dec.GetVarint64();
        cur.wall_ns = static_cast<uint64_t>(
            static_cast<int64_t>(prev.wall_ns) + dec.GetVarintSigned());
        uint64_t nc = dec.GetVarint64();
        if (!dec.ok() || nc > counters.size()) break;
        cur.counters.resize(nc);
        for (uint64_t i = 0; i < nc; ++i) {
          int64_t p = i < prev.counters.size()
                          ? static_cast<int64_t>(prev.counters[i])
                          : 0;
          cur.counters[i] =
              static_cast<uint64_t>(p + dec.GetVarintSigned());
        }
        uint64_t ng = dec.GetVarint64();
        if (!dec.ok() || ng > gauges.size()) break;
        cur.gauges.resize(ng);
        for (uint64_t i = 0; i < ng; ++i) {
          int64_t p = i < prev.gauges.size() ? prev.gauges[i] : 0;
          cur.gauges[i] = p + dec.GetVarintSigned();
        }
        uint64_t nh = dec.GetVarint64();
        if (!dec.ok() || nh > hists.size()) break;
        cur.hists.resize(nh);
        bool bad = false;
        for (uint64_t i = 0; i < nh && !bad; ++i) {
          static const HistPoint kZero;
          const HistPoint& p = i < prev.hists.size() ? prev.hists[i] : kZero;
          HistPoint& h = cur.hists[i];
          h.count = static_cast<uint64_t>(static_cast<int64_t>(p.count) +
                                          dec.GetVarintSigned());
          h.sum = static_cast<uint64_t>(static_cast<int64_t>(p.sum) +
                                        dec.GetVarintSigned());
          uint64_t nb = dec.GetVarint64();
          if (!dec.ok() || nb > Histogram::kBuckets) {
            bad = true;
            break;
          }
          uint64_t buckets[Histogram::kBuckets];
          FillBuckets(p, buckets);
          for (uint64_t b = 0; b < nb; ++b) {
            uint8_t idx = dec.GetFixed8();
            int64_t d = dec.GetVarintSigned();
            if (idx >= Histogram::kBuckets) {
              bad = true;
              break;
            }
            buckets[idx] =
                static_cast<uint64_t>(static_cast<int64_t>(buckets[idx]) + d);
          }
          h.buckets.clear();
          for (size_t b = 0; b < Histogram::kBuckets; ++b)
            if (buckets[b] != 0)
              h.buckets.emplace_back(static_cast<uint8_t>(b), buckets[b]);
        }
        if (bad || !dec.ok()) break;
        prev = cur;
        ring.push_back(std::move(cur));
      } else {
        break;  // Unknown record type: future format or corruption.
      }
      off += 8 + len;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  counter_names_ = std::move(counters);
  gauge_names_ = std::move(gauges);
  hist_names_ = std::move(hists);
  ring_ = std::move(ring);
  while (ring_.size() > options_.retention) ring_.pop_front();
}

// ---------------------------------------------------------------------------
// Rendering

std::string MetricsHistory::RenderTop(uint64_t now_mono) const {
  constexpr uint64_t kWindowNs = 60ull * 1000000000ull;
  constexpr size_t kSparkWidth = 32;
  char buf[256];
  std::string out;

  uint64_t wall_ms = 0, first_mono = 0;
  size_t nsamples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    nsamples = ring_.size();
    if (!ring_.empty()) {
      wall_ms = ring_.back().wall_ns / 1000000;
      first_mono = ring_.front().mono_ns;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "cwdb top — %zu samples spanning %s (wall %" PRIu64 " ms)\n",
                nsamples,
                FormatNs(now_mono > first_mono ? now_mono - first_mono : 0)
                    .c_str(),
                wall_ms);
  out += buf;
  if (nsamples == 0) {
    out += "  (history empty — run with history_interval_ms > 0)\n";
    return out;
  }

  // Per-interval commit rate over the last kSparkWidth samples.
  std::vector<Point> commits =
      Series("txn.commits", UINT64_MAX / 2, now_mono);
  std::vector<double> rates;
  for (size_t i = commits.size() > kSparkWidth ? commits.size() - kSparkWidth
                                               : 1;
       i < commits.size(); ++i) {
    double dt =
        static_cast<double>(commits[i].mono_ns - commits[i - 1].mono_ns) /
        1e9;
    rates.push_back(dt > 0 ? (commits[i].value - commits[i - 1].value) / dt
                           : 0);
  }
  std::snprintf(buf, sizeof(buf), "  commit rate   %10.1f /s   %s\n",
                Rate("txn.commits", kWindowNs, now_mono),
                Sparkline(rates).c_str());
  out += buf;

  WindowedHist wh;
  if (Windowed("txn.commit_latency_ns", kWindowNs, now_mono, &wh) &&
      wh.count > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  commit p50/p99 %9s / %s  (%" PRIu64 " in window)\n",
                  FormatNs(wh.Quantile(0.50)).c_str(),
                  FormatNs(wh.Quantile(0.99)).c_str(), wh.count);
    out += buf;
  }
  if (Windowed("protect.detection_latency_ns", kWindowNs, now_mono, &wh) &&
      wh.count > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  detect p99    %10s      (%" PRIu64 " detections)\n",
                  FormatNs(wh.Quantile(0.99)).c_str(), wh.count);
    out += buf;
  }

  double v;
  if (Latest("scrub.max_age_ms", &v)) {
    std::vector<Point> ages =
        Series("scrub.max_age_ms", UINT64_MAX / 2, now_mono);
    std::vector<double> age_vals;
    for (size_t i = ages.size() > kSparkWidth ? ages.size() - kSparkWidth : 0;
         i < ages.size(); ++i)
      age_vals.push_back(ages[i].value);
    std::snprintf(buf, sizeof(buf), "  scrub age max %9.1fs    %s\n",
                  v / 1000.0, Sparkline(age_vals).c_str());
    out += buf;
  }
  if (Latest("audit.background_sweeps", &v)) {
    std::snprintf(buf, sizeof(buf), "  sweeps done   %10.0f      (%.2f /s)\n",
                  v, Rate("audit.background_sweeps", kWindowNs, now_mono));
    out += buf;
  }

  // SLO status lines ride the slo.* gauges the engine samples into history.
  std::vector<std::string> slo_names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& n : gauge_names_) {
      constexpr std::string_view kPrefix = "slo.";
      constexpr std::string_view kSuffix = ".burning";
      if (n.size() > kPrefix.size() + kSuffix.size() &&
          n.compare(0, kPrefix.size(), kPrefix) == 0 &&
          n.compare(n.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0)
        slo_names.push_back(
            n.substr(kPrefix.size(),
                     n.size() - kPrefix.size() - kSuffix.size()));
    }
  }
  for (const std::string& name : slo_names) {
    double burning = 0, budget = 100;
    Latest("slo." + name + ".burning", &burning);
    Latest("slo." + name + ".budget_remaining_pct", &budget);
    std::snprintf(buf, sizeof(buf), "  slo %-18s %s  budget %3.0f%%\n",
                  name.c_str(), burning != 0 ? "BURNING" : "ok     ",
                  budget);
    out += buf;
  }
  return out;
}

std::string RenderScrubMap(
    const std::vector<std::pair<std::string, int64_t>>& gauges,
    uint64_t captured_wall_ns) {
  // Collect shard ids present in the scrub.shardN.* family.
  struct Row {
    int64_t last_pass_wall_ms = 0;
    int64_t last_audit_lsn = 0;
    int64_t cursor_pct = 0;
  };
  std::vector<std::pair<size_t, Row>> rows;
  auto row_for = [&rows](size_t shard) -> Row& {
    for (auto& [id, row] : rows)
      if (id == shard) return row;
    rows.emplace_back(shard, Row{});
    return rows.back().second;
  };
  for (const auto& [name, value] : gauges) {
    constexpr std::string_view kPrefix = "scrub.shard";
    if (name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    size_t pos = kPrefix.size();
    size_t shard = 0;
    bool have_digit = false;
    while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
      shard = shard * 10 + static_cast<size_t>(name[pos] - '0');
      ++pos;
      have_digit = true;
    }
    if (!have_digit || pos >= name.size() || name[pos] != '.') continue;
    std::string_view field(name.data() + pos + 1, name.size() - pos - 1);
    Row& row = row_for(shard);
    if (field == "last_pass_wall_ms")
      row.last_pass_wall_ms = value;
    else if (field == "last_audit_lsn")
      row.last_audit_lsn = value;
    else if (field == "cursor_pct")
      row.cursor_pct = value;
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::string out;
  if (rows.empty()) {
    out += "scrub map: no shards reported (auditor never ran?)\n";
    return out;
  }
  int64_t now_ms = static_cast<int64_t>(captured_wall_ns / 1000000);
  out += "shard      age     cursor  audit-lsn   heat\n";
  char buf[160];
  for (const auto& [shard, row] : rows) {
    double age_s =
        row.last_pass_wall_ms == 0
            ? -1.0
            : static_cast<double>(now_ms - row.last_pass_wall_ms) / 1000.0;
    if (age_s < 0 && row.last_pass_wall_ms != 0) age_s = 0;
    // Heat: one block per ~2s of staleness, capped at 20; never-audited
    // shards render a full bar.
    int heat = row.last_pass_wall_ms == 0
                   ? 20
                   : std::clamp(static_cast<int>(age_s / 2.0), 0, 20);
    std::string bar;
    for (int i = 0; i < heat; ++i) bar += "▓";
    for (int i = heat; i < 20; ++i) bar += "░";
    if (row.last_pass_wall_ms == 0) {
      std::snprintf(buf, sizeof(buf),
                    "%5zu    never     %5" PRId64 "%%  %9" PRId64 "   %s\n",
                    shard, row.cursor_pct, row.last_audit_lsn, bar.c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%5zu  %6.1fs     %5" PRId64 "%%  %9" PRId64 "   %s\n",
                    shard, age_s, row.cursor_pct, row.last_audit_lsn,
                    bar.c_str());
    }
    out += buf;
  }
  return out;
}

}  // namespace cwdb
