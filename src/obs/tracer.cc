#include "obs/tracer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/metrics.h"

namespace cwdb {

namespace {

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer. Feeding it
/// seed ^ candidate-index gives an i.i.d.-looking but fully deterministic
/// sampling sequence.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Per-thread ordinal, for the exported Perfetto tid. Ordinals are small
/// and stable for the life of the thread.
uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t ord = next.fetch_add(1, std::memory_order_relaxed);
  return ord;
}

thread_local SpanContext g_current_ctx;

}  // namespace

void Tracer::Configure(const TracerOptions& options) {
  CWDB_CHECK(rings_.empty()) << "Tracer::Configure called twice";
  if (options.sample_rate <= 0.0) return;
  seed_ = options.seed;
  double rate = std::min(options.sample_rate, 1.0);
  sample_threshold_ =
      rate >= 1.0 ? UINT64_MAX
                  : static_cast<uint64_t>(
                        rate * static_cast<double>(UINT64_MAX));
  size_t cap = RoundUpPow2(std::max<size_t>(options.ring_capacity, 64));
  rings_.reserve(kRings);
  for (size_t i = 0; i < kRings; ++i) {
    auto ring = std::make_unique<Ring>();
    ring->slots = std::vector<Slot>(cap);
    rings_.push_back(std::move(ring));
  }
  enabled_.store(true, std::memory_order_release);
}

size_t Tracer::RingIndex() const {
  // Same sticky round-robin assignment Counter::ThreadShard uses: each
  // thread picks the next ring at first use and keeps it, so committers on
  // different threads publish into disjoint rings.
  static std::atomic<size_t> next{0};
  thread_local size_t ring = next.fetch_add(1, std::memory_order_relaxed);
  return ring % kRings;
}

SpanContext Tracer::StartTraceLockedFree(uint64_t* root_span_id) {
  SpanContext ctx;
  ctx.tracer = this;
  ctx.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  ctx.span_id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  *root_span_id = ctx.span_id;
  return ctx;
}

SpanContext Tracer::MaybeStartTrace(uint64_t* root_span_id) {
  if (!enabled()) return SpanContext{};
  uint64_t n = candidates_.fetch_add(1, std::memory_order_relaxed);
  if (Mix64(seed_ ^ n) >= sample_threshold_) return SpanContext{};
  return StartTraceLockedFree(root_span_id);
}

SpanContext Tracer::StartForcedTrace(uint64_t* root_span_id) {
  if (!enabled()) return SpanContext{};
  return StartTraceLockedFree(root_span_id);
}

void Tracer::Record(const SpanContext& ctx, SpanKind kind, uint64_t start_ns,
                    uint64_t end_ns, uint64_t a, uint64_t b) {
  RecordWithId(ctx, next_span_id_.fetch_add(1, std::memory_order_relaxed),
               kind, start_ns, end_ns, a, b);
}

void Tracer::RecordWithId(const SpanContext& ctx, uint64_t span_id,
                          SpanKind kind, uint64_t start_ns, uint64_t end_ns,
                          uint64_t a, uint64_t b) {
  if (!ctx.sampled()) return;
  Ring& ring = *rings_[RingIndex()];
  uint64_t seq = ring.head.fetch_add(1, std::memory_order_relaxed);
  Slot& s = ring.slots[seq & (ring.slots.size() - 1)];
  s.ticket.store(2 * seq + 1, std::memory_order_release);
  s.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  s.span_id.store(span_id, std::memory_order_relaxed);
  s.parent_id.store(ctx.span_id, std::memory_order_relaxed);
  s.start_ns.store(start_ns, std::memory_order_relaxed);
  s.dur_ns.store(end_ns > start_ns ? end_ns - start_ns : 0,
                 std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.tid.store(ThreadOrdinal(), std::memory_order_relaxed);
  s.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  s.ticket.store(2 * seq + 2, std::memory_order_release);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  for (const auto& ring : rings_) {
    for (const Slot& s : ring->slots) {
      uint64_t ticket = s.ticket.load(std::memory_order_acquire);
      if (ticket == 0 || (ticket & 1) != 0) continue;
      SpanRecord r;
      r.trace_id = s.trace_id.load(std::memory_order_relaxed);
      r.span_id = s.span_id.load(std::memory_order_relaxed);
      r.parent_id = s.parent_id.load(std::memory_order_relaxed);
      r.start_ns = s.start_ns.load(std::memory_order_relaxed);
      r.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      r.a = s.a.load(std::memory_order_relaxed);
      r.b = s.b.load(std::memory_order_relaxed);
      r.tid = s.tid.load(std::memory_order_relaxed);
      r.kind = static_cast<SpanKind>(s.kind.load(std::memory_order_relaxed));
      // Keep the span only if the slot still belongs to the seq we started
      // reading (a writer may have lapped us mid-copy).
      if (s.ticket.load(std::memory_order_acquire) != ticket) continue;
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& x, const SpanRecord& y) {
              return x.start_ns != y.start_ns ? x.start_ns < y.start_ns
                                              : x.span_id < y.span_id;
            });
  return out;
}

uint64_t Tracer::recorded() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->head.load(std::memory_order_relaxed);
  }
  return total;
}

SpanContext Tracer::Current() { return g_current_ctx; }

ScopedSpanContext::ScopedSpanContext(const SpanContext& ctx)
    : prev_(g_current_ctx) {
  g_current_ctx = ctx;
}

ScopedSpanContext::~ScopedSpanContext() { g_current_ctx = prev_; }

ScopedSpan::ScopedSpan(const SpanContext& ctx, SpanKind kind, uint64_t a,
                       uint64_t b)
    : ctx_(ctx), kind_(kind), a_(a), b_(b) {
  if (ctx_.sampled()) start_ns_ = NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (ctx_.sampled()) {
    ctx_.tracer->Record(ctx_, kind_, start_ns_, NowNs(), a_, b_);
  }
}

}  // namespace cwdb
