#ifndef CWDB_OBS_TRACE_EXPORT_H_
#define CWDB_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/span.h"

namespace cwdb {

/// A captured set of spans plus the clock anchors needed to interpret
/// them offline. This is the schema of <dir>/spans.json (written by
/// Database::DumpMetrics when tracing is enabled) and the input to every
/// exporter below.
struct SpanDump {
  static constexpr uint32_t kSchemaVersion = 1;

  uint64_t captured_mono_ns = 0;
  uint64_t captured_wall_ns = 0;
  /// Boot anchor pair (same instant on both clocks): wall time of a span
  /// is boot_wall_ns + (start_ns - boot_mono_ns).
  uint64_t boot_mono_ns = 0;
  uint64_t boot_wall_ns = 0;

  std::vector<SpanRecord> spans;
};

/// Stable machine-readable spans.json form (keys in fixed order, one span
/// per line). An empty dump serializes to a valid document.
std::string SpansToJson(const SpanDump& dump);

/// Inverse of SpansToJson. Spans with an unknown kind name are skipped.
Result<SpanDump> ParseSpansJson(std::string_view text);

/// Chrome/Perfetto trace-event JSON ({"traceEvents":[...]}; complete "X"
/// events, ts/dur in microseconds, tid = the tracer's thread ordinal).
/// Loadable directly in https://ui.perfetto.dev. An empty dump yields the
/// valid empty document {"traceEvents":[]}.
std::string SpansToChromeJson(const SpanDump& dump);

/// Operator-readable span listing, one line per span, grouped by trace.
std::string RenderSpanList(const SpanDump& dump);

/// Per-stage latency attribution over the sampled transaction traces.
///
/// For each trace rooted at a `txn` span, every span is charged its *self*
/// time — duration minus the duration of its children (clamped at zero),
/// so a stage is never double-counted against the stages nested inside it
/// and the per-trace stage self-times sum to the trace's end-to-end time
/// (untracked gaps are charged to the root's own stage). Traces are then
/// split into two cohorts by end-to-end duration — those at or below the
/// median, and those at or above p99 — and each stage's share is its
/// summed self time over the cohort's summed end-to-end time, so the
/// shares of each cohort sum to ~100% by construction.
struct StageShare {
  SpanKind kind = SpanKind::kTxn;
  uint64_t p50_self_ns = 0;  ///< Mean self time per trace in the cohort.
  uint64_t p99_self_ns = 0;
  double p50_share = 0.0;    ///< Fraction of cohort end-to-end time.
  double p99_share = 0.0;
};

struct AttributionTable {
  size_t traces = 0;        ///< Complete txn traces that contributed.
  size_t p50_cohort = 0;    ///< Traces in the at-or-below-median cohort.
  size_t p99_cohort = 0;    ///< Traces in the at-or-above-p99 cohort.
  uint64_t p50_total_ns = 0;  ///< Mean end-to-end time, p50 cohort.
  uint64_t p99_total_ns = 0;  ///< Mean end-to-end time, p99 cohort.
  std::vector<StageShare> rows;  ///< Descending p99 share.
};

AttributionTable ComputeAttribution(const std::vector<SpanRecord>& spans);

/// `cwdb_ctl spans --attribute` table.
std::string RenderAttribution(const AttributionTable& table);

/// Compact JSON object ({"traces":N,"stages":{"wal.fsync":{"p50_share":..,
/// "p99_share":..},...}}) — the form bench_tpcb_scaling embeds per point
/// and scripts/check_attribution_drift.py diffs.
std::string AttributionToJson(const AttributionTable& table);

}  // namespace cwdb

#endif  // CWDB_OBS_TRACE_EXPORT_H_
