#ifndef CWDB_OBS_WATCHDOG_H_
#define CWDB_OBS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/forensics.h"
#include "obs/metrics.h"

namespace cwdb {

/// Stall-watchdog configuration (DatabaseOptions::watchdog). Thresholds are
/// generous by default: the watchdog exists to catch a *wedged* pipeline —
/// a drainer that stopped advancing the stable LSN, an auditor whose cursor
/// is stuck, a checkpoint past its SLO, a transaction left open — not to
/// page on ordinary latency.
struct WatchdogOptions {
  bool enabled = false;
  uint64_t poll_interval_ms = 100;
  /// Stable LSN not advancing while staged/queued bytes are outstanding.
  uint64_t drainer_stall_ms = 2000;
  /// Background-audit slice counter not advancing while the auditor runs.
  uint64_t auditor_stall_ms = 10000;
  /// A single checkpoint exceeding this wall time.
  uint64_t checkpoint_slo_ms = 30000;
  /// Oldest active transaction unchanged for this long. 0 = probe off
  /// (legitimate long-running transactions exist; opt in per deployment).
  uint64_t txn_age_limit_ms = 0;
};

/// One progress probe. The watchdog polls it: while `active` returns true
/// and `progress` has not changed for `stall_ns`, the probe is stalled.
/// Both callbacks are invoked with the watchdog mutex held and must not
/// call back into the watchdog; they should be cheap atomic reads.
struct WatchdogProbe {
  std::string name;
  std::function<bool()> active;
  std::function<uint64_t()> progress;
  uint64_t stall_ns = 0;
};

/// Polls a set of progress probes from a background thread. The first poll
/// that finds a probe stalled files a CorruptionIncident-style stall
/// dossier (IncidentSource::kStallWatchdog; the dossier carries the
/// trace-ring tail like every other incident) and bumps watchdog.stalls;
/// the probe then stays quiet until it makes progress again (or goes
/// inactive), which re-arms it. DegradedReason() lists the currently
/// stalled probes — the stats server's /healthz surfaces it.
class Watchdog {
 public:
  /// `forensics` may be null (no dossiers, detection still works);
  /// `stable_lsn` (may be empty) stamps dossiers with the log position.
  Watchdog(MetricsRegistry* metrics, ForensicsRecorder* forensics,
           std::function<uint64_t()> stable_lsn = {});
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a probe; returns an id for RemoveProbe. Safe while running.
  uint64_t AddProbe(WatchdogProbe probe);
  /// Unregisters (component shutting down before the watchdog does).
  void RemoveProbe(uint64_t id);

  void Start(uint64_t poll_interval_ms);
  void Stop();

  /// One synchronous poll pass (the background loop calls this; tests call
  /// it directly for deterministic stall checks).
  void PollOnce();

  /// Empty when healthy; otherwise "name stalled Nms" per stalled probe,
  /// comma-joined.
  std::string DegradedReason() const;

  uint64_t stalls() const { return stalls_->Value(); }

 private:
  struct ProbeState {
    uint64_t id = 0;
    WatchdogProbe probe;
    uint64_t last_progress = 0;
    uint64_t last_change_ns = 0;  ///< 0 = not currently observed active.
    bool fired = false;
  };

  void Loop();

  MetricsRegistry* metrics_;
  ForensicsRecorder* forensics_;
  std::function<uint64_t()> stable_lsn_;
  Counter* stalls_;
  Gauge* degraded_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ProbeState> probes_;
  uint64_t next_probe_id_ = 1;
  bool running_ = false;
  bool stop_ = false;
  uint64_t poll_interval_ms_ = 100;
  std::thread thread_;
};

}  // namespace cwdb

#endif  // CWDB_OBS_WATCHDOG_H_
