#ifndef CWDB_OBS_SPAN_H_
#define CWDB_OBS_SPAN_H_

#include <cstdint>
#include <string>

namespace cwdb {

class Tracer;

/// Pipeline stages a span can describe. One trace is one transaction (or
/// one background pass: checkpoint, audit sweep, recovery run); its spans
/// form a tree rooted at the kind listed first in each group. The `a`/`b`
/// payload words are kind-specific (documented per enumerator).
enum class SpanKind : uint8_t {
  // -- Transaction pipeline (root: kTxn) --
  kTxn = 0,           ///< Whole transaction, Begin() to retire. a=txn id.
  kTxnBegin = 1,      ///< Begin() call: id assignment + begin record.
  kLockWait = 2,      ///< Blocked in LockManager::Acquire. a=table, b=slot.
  kReadPrecheck = 3,  ///< Codeword precheck on the read path. a=off, b=len.
  kCodewordFold = 4,  ///< Codeword maintenance at EndUpdate. a=off, b=len.
  kWalStage = 5,      ///< Commit-record staging into the WAL shard buffer.
  kFlushWait = 6,     ///< Client-side wait inside SystemLog::Flush().
  kQueueWait = 7,     ///< Batch publish -> drainer pop (drainer thread).
  kDrainBatch = 8,    ///< Drainer write window covering the commit. a=bytes.
  kFsync = 9,         ///< The fsync that made the commit durable.
  kCommitAck = 10,    ///< Post-flush lock release + ATT retire.

  // -- Checkpoint pipeline (root: kCheckpoint) --
  kCheckpoint = 11,      ///< Whole checkpoint. a=pages written.
  kCheckpointCopy = 12,  ///< Copy phase under the exclusive latch.
  kCheckpointWrite = 13, ///< Image page pwrites. a=bytes, b=pages.
  kCheckpointFsync = 14, ///< Image + meta durability.
  kCheckpointCertify = 15,  ///< Post-write certification audit.

  // -- Background / recovery (roots: kAuditSweep, kRecovery) --
  kAuditSweep = 16,    ///< One full audit sweep of the arena.
  kAuditSlice = 17,    ///< One per-round slice. a=bytes, b=shard lanes.
  kRecovery = 18,      ///< Whole recovery run.
  kRecoveryPhase = 19, ///< One phase. a=RecoveryPhase.
};

/// Stable lowercase dotted name ("wal.fsync") used by the exporters and the
/// attribution table.
const char* SpanKindName(SpanKind kind);

/// Inverse of SpanKindName; false for an unknown name.
bool SpanKindFromName(const std::string& name, SpanKind* kind);

/// One completed span. Spans are recorded at completion only (there is no
/// open-span registry): the instrumentation site reads the clock at entry
/// and exit and publishes one record, so an abandoned site leaks nothing.
/// `tid` is a small per-thread ordinal assigned by the tracer (stable
/// within a process run; exported as the Perfetto thread id).
struct SpanRecord {
  uint64_t trace_id = 0;   ///< Groups spans of one transaction/pass.
  uint64_t span_id = 0;    ///< Unique within the tracer's lifetime.
  uint64_t parent_id = 0;  ///< 0 = root of its trace.
  uint64_t start_ns = 0;   ///< NowNs() at entry.
  uint64_t dur_ns = 0;     ///< Exit - entry.
  uint64_t a = 0;          ///< Kind-specific payload.
  uint64_t b = 0;
  uint32_t tid = 0;
  SpanKind kind = SpanKind::kTxn;
};

/// Sampling decision plus addressing for one trace: carried by value on the
/// transaction (and on WAL queue entries for the cross-thread hop). A
/// default-constructed context is unsampled; every instrumentation site
/// guards on sampled(), which is a single pointer test — the whole span
/// layer costs one branch per site when tracing is off.
struct SpanContext {
  Tracer* tracer = nullptr;  ///< Null = not sampled.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;      ///< The span new children should parent to.

  bool sampled() const { return tracer != nullptr; }

  /// The same trace, re-parented under `parent` (for handing a specific
  /// parent span to a child site, e.g. the flush-wait span id to the
  /// drainer-side spans).
  SpanContext Under(uint64_t parent) const {
    return SpanContext{tracer, trace_id, parent};
  }
};

}  // namespace cwdb

#endif  // CWDB_OBS_SPAN_H_
