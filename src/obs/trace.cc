#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "obs/metrics.h"

namespace cwdb {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kFaultInjected: return "fault_injected";
    case TraceEventType::kWritePrevented: return "write_prevented";
    case TraceEventType::kCorruptionDetected: return "corruption_detected";
    case TraceEventType::kPrecheckFailed: return "precheck_failed";
    case TraceEventType::kAuditPassBegin: return "audit_pass_begin";
    case TraceEventType::kAuditPassEnd: return "audit_pass_end";
    case TraceEventType::kRecoveryPhase: return "recovery_phase";
    case TraceEventType::kTxnDeleted: return "txn_deleted";
    case TraceEventType::kGroupCommitFlush: return "group_commit_flush";
    case TraceEventType::kCheckpoint: return "checkpoint";
    case TraceEventType::kMprotectFault: return "mprotect_fault";
    case TraceEventType::kWalTailDamage: return "wal_tail_damage";
    case TraceEventType::kRepair: return "repair";
  }
  return "?";
}

bool TraceEventTypeFromName(const std::string& name, TraceEventType* type) {
  for (int i = 0; i <= static_cast<int>(TraceEventType::kRepair); ++i) {
    TraceEventType t = static_cast<TraceEventType>(i);
    if (name == TraceEventTypeName(t)) {
      *type = t;
      return true;
    }
  }
  return false;
}

std::string DescribeTraceEvent(const TraceEvent& e) {
  char buf[128];
  switch (e.type) {
    case TraceEventType::kFaultInjected:
    case TraceEventType::kWritePrevented:
    case TraceEventType::kCorruptionDetected:
    case TraceEventType::kPrecheckFailed:
    case TraceEventType::kMprotectFault:
    case TraceEventType::kRepair:
      std::snprintf(buf, sizeof(buf), "off=%llu len=%llu",
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b));
      break;
    case TraceEventType::kAuditPassBegin:
      std::snprintf(buf, sizeof(buf), "audit_sn=%llu",
                    static_cast<unsigned long long>(e.lsn));
      break;
    case TraceEventType::kAuditPassEnd:
      std::snprintf(buf, sizeof(buf), "regions=%llu corrupt=%llu",
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b));
      break;
    case TraceEventType::kRecoveryPhase:
      std::snprintf(buf, sizeof(buf), "phase=%s",
                    RecoveryPhaseName(static_cast<RecoveryPhase>(e.a)));
      break;
    case TraceEventType::kTxnDeleted:
      std::snprintf(buf, sizeof(buf), "txn=%llu",
                    static_cast<unsigned long long>(e.a));
      break;
    case TraceEventType::kGroupCommitFlush:
      std::snprintf(buf, sizeof(buf), "stable_end=%llu batch_bytes=%llu",
                    static_cast<unsigned long long>(e.lsn),
                    static_cast<unsigned long long>(e.a));
      break;
    case TraceEventType::kCheckpoint:
      std::snprintf(buf, sizeof(buf), "ck_end=%llu pages=%llu",
                    static_cast<unsigned long long>(e.lsn),
                    static_cast<unsigned long long>(e.a));
      break;
    case TraceEventType::kWalTailDamage:
      std::snprintf(buf, sizeof(buf), "damage_off=%llu file_bytes=%llu",
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b));
      break;
    default:
      std::snprintf(buf, sizeof(buf), "a=%llu b=%llu",
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b));
  }
  std::string out = buf;
  if (e.shard != kNoTraceShard) {
    std::snprintf(buf, sizeof(buf), " shard=%llu",
                  static_cast<unsigned long long>(e.shard));
    out += buf;
  }
  return out;
}

const char* RecoveryPhaseName(RecoveryPhase phase) {
  switch (phase) {
    case RecoveryPhase::kLoadCheckpoint: return "load_checkpoint";
    case RecoveryPhase::kRedo: return "redo";
    case RecoveryPhase::kUndo: return "undo";
    case RecoveryPhase::kFinalCheckpoint: return "final_checkpoint";
    case RecoveryPhase::kDone: return "done";
  }
  return "?";
}

EventTrace::EventTrace(size_t capacity) : slots_(capacity) {
  CWDB_CHECK(capacity > 0 && (capacity & (capacity - 1)) == 0)
      << "trace capacity must be a power of two";
}

void EventTrace::Record(TraceEventType type, uint64_t lsn, uint64_t a,
                        uint64_t b, uint64_t shard) {
  uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[seq & (slots_.size() - 1)];
  const uint64_t t_ns = NowNs();
  s.ticket.store(2 * seq + 1, std::memory_order_release);
  s.t_ns.store(t_ns, std::memory_order_relaxed);
  s.lsn.store(lsn, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.shard.store(shard, std::memory_order_relaxed);
  s.type.store(static_cast<uint8_t>(type), std::memory_order_relaxed);
  s.ticket.store(2 * seq + 2, std::memory_order_release);
  if (TraceSink* sink = sink_.load(std::memory_order_acquire)) {
    TraceEvent e;
    e.seq = seq;
    e.t_ns = t_ns;
    e.lsn = lsn;
    e.a = a;
    e.b = b;
    e.shard = shard;
    e.type = type;
    sink->OnTraceEvent(e);
  }
}

std::vector<TraceEvent> EventTrace::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    uint64_t ticket = s.ticket.load(std::memory_order_acquire);
    if (ticket == 0 || (ticket & 1) != 0) continue;  // Empty or mid-write.
    TraceEvent e;
    e.seq = ticket / 2 - 1;
    e.t_ns = s.t_ns.load(std::memory_order_relaxed);
    e.lsn = s.lsn.load(std::memory_order_relaxed);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    e.shard = s.shard.load(std::memory_order_relaxed);
    e.type = static_cast<TraceEventType>(s.type.load(std::memory_order_relaxed));
    // A writer may have lapped us mid-copy; keep the event only if the
    // slot still belongs to the seq we started reading.
    if (s.ticket.load(std::memory_order_acquire) != ticket) continue;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

}  // namespace cwdb
