#ifndef CWDB_OBS_TRACER_H_
#define CWDB_OBS_TRACER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/span.h"

namespace cwdb {

/// Tracer configuration. A zero sample rate disables tracing entirely: no
/// buffers are allocated and every hot-path site reduces to one branch.
struct TracerOptions {
  /// Fraction of transactions to trace, in [0, 1]. Background passes
  /// (checkpoints, audit sweeps, recovery) are always traced once the
  /// tracer is enabled — they are rare and each one is interesting.
  double sample_rate = 0.0;
  /// Seed for the deterministic sampler: the same seed and the same
  /// candidate sequence yield the same sampling decisions, so traced runs
  /// are reproducible.
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Capacity of each per-thread span ring (rounded up to a power of two).
  /// The rings are the bounded in-memory store: old spans are overwritten
  /// in place once a ring wraps.
  size_t ring_capacity = 4096;
};

/// Sampling span tracer. One per MetricsRegistry (i.e. per Database).
///
/// Writers publish completed spans into one of a fixed set of lock-free
/// ring buffers — each thread is assigned a ring round-robin at first use
/// and sticks to it, so concurrent committers never touch the same slot —
/// using the same ticket discipline as EventTrace (odd ticket = write in
/// progress, even = published; see DESIGN.md §11 for the memory-ordering
/// argument). Snapshot() merges the rings, dropping slots a writer lapped
/// mid-copy.
///
/// Sampling is deterministic: candidate n is traced iff
/// splitmix64(seed ^ n) < rate * 2^64, so a fixed seed replays the same
/// decision sequence. Trace and span ids are process-lifetime ordinals.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Enables the tracer. Must be called before any span can be recorded
  /// and at most once, before concurrent use (the Database configures its
  /// tracer during Open, before transactions exist).
  void Configure(const TracerOptions& options);

  /// Single relaxed load — the whole cost of the tracing layer when
  /// disabled.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Sampling decision for the next transaction: an unsampled (default)
  /// context when disabled or the sampler says no; otherwise a context
  /// with a fresh trace id whose parent is the root span id passed back
  /// via `root_span_id` (the caller records the root span itself when the
  /// transaction retires).
  SpanContext MaybeStartTrace(uint64_t* root_span_id);

  /// Starts a trace unconditionally (background passes). Unsampled when
  /// the tracer is disabled.
  SpanContext StartForcedTrace(uint64_t* root_span_id);

  /// Allocates a span id without recording anything — for sites that need
  /// to hand a parent id to another thread before the span completes
  /// (the flush-wait span parents the drainer-side spans).
  uint64_t NewSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Publishes one completed span as a child of `ctx.span_id`.
  void Record(const SpanContext& ctx, SpanKind kind, uint64_t start_ns,
              uint64_t end_ns, uint64_t a = 0, uint64_t b = 0);

  /// Publishes a completed span under a pre-allocated id (NewSpanId) so
  /// children recorded elsewhere can already reference it.
  void RecordWithId(const SpanContext& ctx, uint64_t span_id, SpanKind kind,
                    uint64_t start_ns, uint64_t end_ns, uint64_t a = 0,
                    uint64_t b = 0);

  /// Consistent published spans currently resident across all rings,
  /// ascending start_ns.
  std::vector<SpanRecord> Snapshot() const;

  /// Total spans ever recorded (the excess over Snapshot().size() wrapped).
  uint64_t recorded() const;

  /// The calling thread's ambient span context (unsampled by default).
  /// Lets deep sites — the lock manager's blocking path — attach spans
  /// without threading a context through every signature.
  static SpanContext Current();

  static constexpr size_t kRings = 16;

 private:
  struct Slot {
    std::atomic<uint64_t> ticket{0};  ///< 2*seq+1 writing, 2*seq+2 done.
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_id{0};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint32_t> tid{0};
    std::atomic<uint8_t> kind{0};
  };

  struct Ring {
    std::vector<Slot> slots;
    std::atomic<uint64_t> head{0};
  };

  friend class ScopedSpanContext;

  size_t RingIndex() const;
  SpanContext StartTraceLockedFree(uint64_t* root_span_id);

  std::atomic<bool> enabled_{false};
  uint64_t sample_threshold_ = 0;  ///< Sample iff hash < threshold.
  uint64_t seed_ = 0;
  std::atomic<uint64_t> candidates_{0};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_span_id_{1};
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII installer for the thread's ambient context (Tracer::Current).
/// Installed around code whose callees may record spans against the
/// current transaction without having a Transaction* in scope.
class ScopedSpanContext {
 public:
  explicit ScopedSpanContext(const SpanContext& ctx);
  ~ScopedSpanContext();
  ScopedSpanContext(const ScopedSpanContext&) = delete;
  ScopedSpanContext& operator=(const ScopedSpanContext&) = delete;

 private:
  SpanContext prev_;
};

/// RAII span: stamps the clock at construction and records at destruction
/// when the context is sampled (and the clock is only read when it is).
class ScopedSpan {
 public:
  ScopedSpan(const SpanContext& ctx, SpanKind kind, uint64_t a = 0,
             uint64_t b = 0);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_payload(uint64_t a, uint64_t b) {
    a_ = a;
    b_ = b;
  }

 private:
  SpanContext ctx_;
  SpanKind kind_;
  uint64_t start_ns_ = 0;
  uint64_t a_;
  uint64_t b_;
};

}  // namespace cwdb

#endif  // CWDB_OBS_TRACER_H_
