#include "obs/slo.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/json.h"

namespace cwdb {

std::vector<SloSpec> BuildDefaultSlos(const SloOptions& options) {
  std::vector<SloSpec> specs;
  if (options.commit_p99_ns > 0) {
    SloSpec s;
    s.name = "commit_p99";
    s.kind = SloKind::kLatencyQuantile;
    s.metric = "txn.commit_latency_ns";
    s.threshold_ns = options.commit_p99_ns;
    s.objective = 0.99;
    specs.push_back(std::move(s));
  }
  if (options.detection_p99_ns > 0) {
    SloSpec s;
    s.name = "detection_p99";
    s.kind = SloKind::kLatencyQuantile;
    s.metric = "protect.detection_latency_ns";
    s.threshold_ns = options.detection_p99_ns;
    s.objective = 0.99;
    specs.push_back(std::move(s));
  }
  if (options.max_scrub_age_ms > 0) {
    SloSpec s;
    s.name = "scrub_age";
    s.kind = SloKind::kMaxScrubAge;
    s.max_age_ms = options.max_scrub_age_ms;
    specs.push_back(std::move(s));
  }
  if (options.stall_budget > 0) {
    SloSpec s;
    s.name = "watchdog_stalls";
    s.kind = SloKind::kCounterBudget;
    s.metric = "watchdog.stalls";
    s.budget = options.stall_budget;
    specs.push_back(std::move(s));
  }
  for (const SloSpec& extra : options.extra) specs.push_back(extra);
  for (SloSpec& s : specs)
    if (s.windows.empty()) s.windows = options.windows;
  return specs;
}

SloEngine::SloEngine(MetricsRegistry* metrics, MetricsHistory* history,
                     ScrubMap* scrub, ForensicsRecorder* forensics,
                     std::vector<SloSpec> specs)
    : metrics_(metrics),
      history_(history),
      scrub_(scrub),
      forensics_(forensics) {
  for (SloSpec& spec : specs) {
    SloState st;
    st.spec = std::move(spec);
    st.burn.assign(st.spec.windows.size(), 0);
    Instruments ins;
    const std::string prefix = "slo." + st.spec.name;
    ins.burning = metrics_->gauge(prefix + ".burning");
    ins.burn_rate_x1000 = metrics_->gauge(prefix + ".burn_rate_x1000");
    ins.budget_remaining_pct =
        metrics_->gauge(prefix + ".budget_remaining_pct");
    ins.budget_remaining_pct->Set(100);
    ins.burn_episodes = metrics_->counter(prefix + ".burn_episodes");
    states_.push_back(std::move(st));
    instruments_.push_back(ins);
  }
}

double SloEngine::BurnRate(const SloSpec& spec, const SloWindow& window,
                           uint64_t now_mono) const {
  uint64_t window_ns = window.window_ms * 1000000ull;
  switch (spec.kind) {
    case SloKind::kLatencyQuantile: {
      MetricsHistory::WindowedHist wh;
      if (!history_->Windowed(spec.metric, window_ns, now_mono, &wh) ||
          wh.count == 0)
        return 0;
      double bad_fraction = static_cast<double>(wh.CountAbove(
                                spec.threshold_ns)) /
                            static_cast<double>(wh.count);
      double allowed = 1.0 - spec.objective;
      return allowed > 0 ? bad_fraction / allowed : 0;
    }
    case SloKind::kMaxScrubAge: {
      if (scrub_ == nullptr || spec.max_age_ms == 0) return 0;
      double age_ms =
          static_cast<double>(scrub_->MaxAgeNs(now_mono)) / 1e6;
      // Staleness is a level, not an event stream: the window doesn't
      // change what "too old" means, so burn is simply age over ceiling.
      return age_ms / static_cast<double>(spec.max_age_ms);
    }
    case SloKind::kCounterBudget: {
      std::vector<MetricsHistory::Point> pts =
          history_->Series(spec.metric, window_ns, now_mono);
      if (pts.size() < 2 || spec.budget <= 0) return 0;
      double increase = pts.back().value - pts.front().value;
      return increase / spec.budget;
    }
  }
  return 0;
}

void SloEngine::EvaluateOnce(uint64_t now_mono) {
  struct Fired {
    std::string name;
    std::string detail;
  };
  std::vector<Fired> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < states_.size(); ++i) {
      SloState& st = states_[i];
      const SloSpec& spec = st.spec;
      bool all_over = true;
      double slow_burn = 0, slow_max = 1;
      for (size_t w = 0; w < spec.windows.size(); ++w) {
        st.burn[w] = BurnRate(spec, spec.windows[w], now_mono);
        if (st.burn[w] <= spec.windows[w].max_burn) all_over = false;
      }
      // Budget remaining tracks the last (longest) window.
      if (!spec.windows.empty()) {
        slow_burn = st.burn.back();
        slow_max = spec.windows.back().max_burn;
      }
      st.budget_remaining_pct = std::clamp(
          100.0 * (1.0 - slow_burn / std::max(slow_max, 1e-9)), 0.0, 100.0);

      bool was_burning = st.burning;
      if (!was_burning && all_over && !spec.windows.empty()) {
        st.burning = true;
        st.burn_episodes++;
        instruments_[i].burn_episodes->Add();
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "slo %s burning: burn %.2fx over %" PRIu64
                      "ms window (max %.2fx)%s%s",
                      spec.name.c_str(), st.burn.back(),
                      spec.windows.back().window_ms,
                      spec.windows.back().max_burn,
                      spec.metric.empty() ? "" : " metric=",
                      spec.metric.c_str());
        fired.push_back({spec.name, buf});
      } else if (was_burning) {
        // Recover with hysteresis: every window must drop below 90% of its
        // firing threshold so a burn flickering around the line doesn't
        // file a dossier per tick.
        bool all_under = true;
        for (size_t w = 0; w < spec.windows.size(); ++w)
          if (st.burn[w] > 0.9 * spec.windows[w].max_burn) all_under = false;
        if (all_under) st.burning = false;
      }
      instruments_[i].burning->Set(st.burning ? 1 : 0);
      instruments_[i].burn_rate_x1000->Set(
          static_cast<int64_t>(slow_burn * 1000));
      instruments_[i].budget_remaining_pct->Set(
          static_cast<int64_t>(st.budget_remaining_pct));
    }
  }
  // File dossiers outside mu_: the recorder takes its own lock and probes
  // engine state.
  for (const Fired& f : fired) {
    if (forensics_ == nullptr) continue;
    uint64_t lsn = lsn_fn_ ? lsn_fn_() : 0;
    uint64_t id = forensics_->RecordIncident(IncidentSource::kSloBurn, lsn,
                                             0, {}, f.detail);
    std::lock_guard<std::mutex> lock(mu_);
    for (SloState& st : states_)
      if (st.spec.name == f.name) st.last_incident_id = id;
  }
}

bool SloEngine::AnyBurning() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SloState& st : states_)
    if (st.burning) return true;
  return false;
}

std::string SloEngine::BurnReason() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const SloState& st : states_) {
    if (!st.burning) continue;
    if (!out.empty()) out += ", ";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s burn %.1fx", st.spec.name.c_str(),
                  st.burn.empty() ? 0.0 : st.burn.back());
    out += buf;
  }
  return out.empty() ? out : "slo: " + out;
}

std::vector<SloEngine::SloState> SloEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_;
}

std::string SloEngine::ReportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"slos\": [";
  char buf[200];
  for (size_t i = 0; i < states_.size(); ++i) {
    const SloState& st = states_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + JsonQuote(st.spec.name);
    const char* kind = st.spec.kind == SloKind::kLatencyQuantile
                           ? "latency_quantile"
                           : (st.spec.kind == SloKind::kMaxScrubAge
                                  ? "max_scrub_age"
                                  : "counter_budget");
    out += std::string(", \"kind\": \"") + kind + "\"";
    if (!st.spec.metric.empty())
      out += ", \"metric\": " + JsonQuote(st.spec.metric);
    if (st.spec.kind == SloKind::kLatencyQuantile) {
      std::snprintf(buf, sizeof(buf),
                    ", \"threshold_ns\": %" PRIu64 ", \"objective\": %g",
                    st.spec.threshold_ns, st.spec.objective);
      out += buf;
    } else if (st.spec.kind == SloKind::kMaxScrubAge) {
      std::snprintf(buf, sizeof(buf), ", \"max_age_ms\": %" PRIu64,
                    st.spec.max_age_ms);
      out += buf;
    } else {
      std::snprintf(buf, sizeof(buf), ", \"budget\": %g", st.spec.budget);
      out += buf;
    }
    out += ", \"windows\": [";
    for (size_t w = 0; w < st.spec.windows.size(); ++w) {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"window_ms\": %" PRIu64 ", \"max_burn\": %g"
                    ", \"burn\": %.6g}",
                    w == 0 ? "" : ", ", st.spec.windows[w].window_ms,
                    st.spec.windows[w].max_burn,
                    w < st.burn.size() ? st.burn[w] : 0.0);
      out += buf;
    }
    out += "]";
    std::snprintf(buf, sizeof(buf),
                  ", \"burning\": %s, \"burn_episodes\": %" PRIu64
                  ", \"budget_remaining_pct\": %.1f, \"last_incident_id\": "
                  "%" PRIu64 "}",
                  st.burning ? "true" : "false", st.burn_episodes,
                  st.budget_remaining_pct, st.last_incident_id);
    out += buf;
  }
  out += states_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace cwdb
