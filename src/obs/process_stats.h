#ifndef CWDB_OBS_PROCESS_STATS_H_
#define CWDB_OBS_PROCESS_STATS_H_

#include <cstdint>
#include <string>

namespace cwdb {

class MetricsRegistry;

/// Point-in-time process-level facts, sampled from /proc and the data
/// directory. Fields are best-effort: a field that could not be read
/// stays at its zero value (containers occasionally hide /proc views).
struct ProcessStats {
  int64_t uptime_ms = 0;        ///< Since `boot_mono_ns`.
  int64_t rss_bytes = 0;        ///< Resident set, from /proc/self/statm.
  int64_t open_fds = 0;         ///< Entries in /proc/self/fd.
  int64_t data_dir_bytes = 0;   ///< Recursive byte total under the DB dir.
};

/// Samples the current process. `boot_mono_ns` is the engine's monotonic
/// open anchor; `data_dir` may be empty to skip the directory walk.
ProcessStats SampleProcessStats(const std::string& data_dir,
                                uint64_t boot_mono_ns);

/// Publishes a sample as gauges (process.uptime_ms, process.rss_bytes,
/// process.open_fds, process.data_dir_bytes) so it reaches /metrics,
/// `cwdb_ctl stats` and the flight recorder's mirrored sample for free.
void PublishProcessStats(MetricsRegistry* metrics, const ProcessStats& stats);

}  // namespace cwdb

#endif  // CWDB_OBS_PROCESS_STATS_H_
