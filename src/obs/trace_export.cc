#include "obs/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "common/json.h"

namespace cwdb {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

/// Nanoseconds as a microsecond decimal ("1234.567") — the unit Chrome
/// trace events use.
void AppendMicros(std::string* out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  *out += buf;
}

std::string HumanNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  } else if (ns >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else if (ns >= 1000ull) {
    std::snprintf(buf, sizeof(buf), "%.1f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " ns", ns);
  }
  return buf;
}

}  // namespace

std::string SpansToJson(const SpanDump& dump) {
  std::string out;
  out.reserve(128 + dump.spans.size() * 120);
  out += "{\n\"schema\": ";
  AppendU64(&out, SpanDump::kSchemaVersion);
  out += ",\n\"captured_mono_ns\": ";
  AppendU64(&out, dump.captured_mono_ns);
  out += ",\n\"captured_wall_ns\": ";
  AppendU64(&out, dump.captured_wall_ns);
  out += ",\n\"boot_mono_ns\": ";
  AppendU64(&out, dump.boot_mono_ns);
  out += ",\n\"boot_wall_ns\": ";
  AppendU64(&out, dump.boot_wall_ns);
  out += ",\n\"spans\": [";
  for (size_t i = 0; i < dump.spans.size(); ++i) {
    const SpanRecord& s = dump.spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"trace\":";
    AppendU64(&out, s.trace_id);
    out += ",\"span\":";
    AppendU64(&out, s.span_id);
    out += ",\"parent\":";
    AppendU64(&out, s.parent_id);
    out += ",\"kind\":\"";
    out += SpanKindName(s.kind);
    out += "\",\"tid\":";
    AppendU64(&out, s.tid);
    out += ",\"start_ns\":";
    AppendU64(&out, s.start_ns);
    out += ",\"dur_ns\":";
    AppendU64(&out, s.dur_ns);
    out += ",\"a\":";
    AppendU64(&out, s.a);
    out += ",\"b\":";
    AppendU64(&out, s.b);
    out += "}";
  }
  out += "\n]\n}\n";
  return out;
}

Result<SpanDump> ParseSpansJson(std::string_view text) {
  CWDB_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(text));
  if (!doc.is_object()) {
    return Status::InvalidArgument("spans.json: not a JSON object");
  }
  SpanDump dump;
  dump.captured_mono_ns = doc.U64("captured_mono_ns");
  dump.captured_wall_ns = doc.U64("captured_wall_ns");
  dump.boot_mono_ns = doc.U64("boot_mono_ns");
  dump.boot_wall_ns = doc.U64("boot_wall_ns");
  const JsonValue* spans = doc.Find("spans");
  if (spans != nullptr && spans->is_array()) {
    for (const JsonValue& e : spans->array()) {
      SpanKind kind;
      if (!SpanKindFromName(e.Str("kind"), &kind)) continue;
      SpanRecord r;
      r.trace_id = e.U64("trace");
      r.span_id = e.U64("span");
      r.parent_id = e.U64("parent");
      r.kind = kind;
      r.tid = static_cast<uint32_t>(e.U64("tid"));
      r.start_ns = e.U64("start_ns");
      r.dur_ns = e.U64("dur_ns");
      r.a = e.U64("a");
      r.b = e.U64("b");
      dump.spans.push_back(r);
    }
  }
  return dump;
}

std::string SpansToChromeJson(const SpanDump& dump) {
  std::string out;
  out.reserve(64 + dump.spans.size() * 160);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  for (size_t i = 0; i < dump.spans.size(); ++i) {
    const SpanRecord& s = dump.spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"name\":\"";
    out += SpanKindName(s.kind);
    out += "\",\"cat\":\"cwdb\",\"ph\":\"X\",\"ts\":";
    AppendMicros(&out, s.start_ns);
    out += ",\"dur\":";
    AppendMicros(&out, s.dur_ns);
    out += ",\"pid\":1,\"tid\":";
    AppendU64(&out, s.tid);
    out += ",\"args\":{\"trace_id\":";
    AppendU64(&out, s.trace_id);
    out += ",\"span_id\":";
    AppendU64(&out, s.span_id);
    out += ",\"parent_id\":";
    AppendU64(&out, s.parent_id);
    out += ",\"a\":";
    AppendU64(&out, s.a);
    out += ",\"b\":";
    AppendU64(&out, s.b);
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

std::string RenderSpanList(const SpanDump& dump) {
  std::vector<SpanRecord> spans = dump.spans;
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& x, const SpanRecord& y) {
                     if (x.trace_id != y.trace_id)
                       return x.trace_id < y.trace_id;
                     return x.start_ns < y.start_ns;
                   });
  std::string out;
  char line[192];
  uint64_t current_trace = 0;
  uint64_t trace_start = 0;
  for (const SpanRecord& s : spans) {
    if (s.trace_id != current_trace) {
      current_trace = s.trace_id;
      trace_start = s.start_ns;
      std::snprintf(line, sizeof(line), "trace %" PRIu64 "\n", s.trace_id);
      out += line;
    }
    std::snprintf(line, sizeof(line),
                  "  +%-12s %-16s dur=%-10s tid=%-3u span=%" PRIu64
                  " parent=%" PRIu64 " a=%" PRIu64 " b=%" PRIu64 "\n",
                  HumanNs(s.start_ns - trace_start).c_str(),
                  SpanKindName(s.kind), HumanNs(s.dur_ns).c_str(), s.tid,
                  s.span_id, s.parent_id, s.a, s.b);
    out += line;
  }
  if (out.empty()) out = "(no spans)\n";
  return out;
}

AttributionTable ComputeAttribution(const std::vector<SpanRecord>& spans) {
  // Bucket spans by trace, keeping only traces rooted at a txn span.
  std::unordered_map<uint64_t, std::vector<const SpanRecord*>> traces;
  for (const SpanRecord& s : spans) traces[s.trace_id].push_back(&s);

  struct TraceSelf {
    uint64_t total = 0;
    std::map<SpanKind, uint64_t> self;
  };
  std::vector<TraceSelf> done;
  for (auto& [id, members] : traces) {
    const SpanRecord* root = nullptr;
    for (const SpanRecord* s : members) {
      if (s->parent_id == 0 && s->kind == SpanKind::kTxn) root = s;
    }
    if (root == nullptr || root->dur_ns == 0) continue;

    // Self time: duration minus the summed duration of direct children,
    // clamped at zero (cross-thread children can overhang their parent by
    // a few clock reads).
    std::unordered_map<uint64_t, uint64_t> child_sum;
    for (const SpanRecord* s : members) {
      if (s->parent_id != 0) child_sum[s->parent_id] += s->dur_ns;
    }
    TraceSelf ts;
    uint64_t accounted = 0;
    for (const SpanRecord* s : members) {
      uint64_t children = 0;
      auto it = child_sum.find(s->span_id);
      if (it != child_sum.end()) children = it->second;
      uint64_t self = s->dur_ns > children ? s->dur_ns - children : 0;
      ts.self[s->kind] += self;
      accounted += self;
    }
    // Charge everything to the trace's own end-to-end time so cohort
    // shares sum to ~100% of it: if clamping lost time against the root's
    // duration, put the remainder back on the root stage.
    ts.total = std::max(root->dur_ns, accounted);
    if (ts.total > accounted) {
      ts.self[root->kind] += ts.total - accounted;
    }
    done.push_back(std::move(ts));
  }

  AttributionTable table;
  table.traces = done.size();
  if (done.empty()) return table;

  std::vector<uint64_t> totals;
  totals.reserve(done.size());
  for (const TraceSelf& t : done) totals.push_back(t.total);
  std::sort(totals.begin(), totals.end());
  uint64_t median = totals[(totals.size() - 1) / 2];
  size_t p99_idx = totals.size() * 99 / 100;
  if (p99_idx >= totals.size()) p99_idx = totals.size() - 1;
  uint64_t p99 = totals[p99_idx];

  std::map<SpanKind, StageShare> stages;
  uint64_t p50_sum = 0, p99_sum = 0;
  for (const TraceSelf& t : done) {
    bool in_p50 = t.total <= median;
    bool in_p99 = t.total >= p99;
    if (in_p50) {
      ++table.p50_cohort;
      p50_sum += t.total;
    }
    if (in_p99) {
      ++table.p99_cohort;
      p99_sum += t.total;
    }
    for (const auto& [kind, self] : t.self) {
      StageShare& row = stages[kind];
      row.kind = kind;
      if (in_p50) row.p50_self_ns += self;
      if (in_p99) row.p99_self_ns += self;
    }
  }
  table.p50_total_ns = table.p50_cohort ? p50_sum / table.p50_cohort : 0;
  table.p99_total_ns = table.p99_cohort ? p99_sum / table.p99_cohort : 0;
  for (auto& [kind, row] : stages) {
    row.p50_share = p50_sum ? static_cast<double>(row.p50_self_ns) / p50_sum
                            : 0.0;
    row.p99_share = p99_sum ? static_cast<double>(row.p99_self_ns) / p99_sum
                            : 0.0;
    if (table.p50_cohort) row.p50_self_ns /= table.p50_cohort;
    if (table.p99_cohort) row.p99_self_ns /= table.p99_cohort;
    table.rows.push_back(row);
  }
  std::sort(table.rows.begin(), table.rows.end(),
            [](const StageShare& x, const StageShare& y) {
              return x.p99_share > y.p99_share;
            });
  return table;
}

std::string RenderAttribution(const AttributionTable& table) {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "traces=%zu  p50 cohort=%zu (mean %s)  p99 cohort=%zu "
                "(mean %s)\n",
                table.traces, table.p50_cohort,
                HumanNs(table.p50_total_ns).c_str(), table.p99_cohort,
                HumanNs(table.p99_total_ns).c_str());
  out += line;
  if (table.traces == 0) return out;
  std::snprintf(line, sizeof(line), "%-16s %10s %12s %10s %12s\n", "stage",
                "p50 share", "p50 self", "p99 share", "p99 self");
  out += line;
  double p50_sum = 0.0, p99_sum = 0.0;
  for (const StageShare& row : table.rows) {
    std::snprintf(line, sizeof(line), "%-16s %9.1f%% %12s %9.1f%% %12s\n",
                  SpanKindName(row.kind), row.p50_share * 100.0,
                  HumanNs(row.p50_self_ns).c_str(), row.p99_share * 100.0,
                  HumanNs(row.p99_self_ns).c_str());
    out += line;
    p50_sum += row.p50_share;
    p99_sum += row.p99_share;
  }
  std::snprintf(line, sizeof(line), "%-16s %9.1f%% %12s %9.1f%%\n", "total",
                p50_sum * 100.0, "", p99_sum * 100.0);
  out += line;
  return out;
}

std::string AttributionToJson(const AttributionTable& table) {
  // Rows re-sorted by stage name so the document is stable across runs
  // (the in-table order is by share, which jitters).
  std::vector<StageShare> rows = table.rows;
  std::sort(rows.begin(), rows.end(),
            [](const StageShare& x, const StageShare& y) {
              return std::string_view(SpanKindName(x.kind)) <
                     std::string_view(SpanKindName(y.kind));
            });
  std::string out = "{\"traces\":";
  AppendU64(&out, table.traces);
  out += ",\"p50_total_ns\":";
  AppendU64(&out, table.p50_total_ns);
  out += ",\"p99_total_ns\":";
  AppendU64(&out, table.p99_total_ns);
  out += ",\"stages\":{";
  for (size_t i = 0; i < rows.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"p50_share\":%.4f,\"p99_share\":%.4f,"
                  "\"p50_self_ns\":%" PRIu64 ",\"p99_self_ns\":%" PRIu64 "}",
                  i == 0 ? "" : ",", SpanKindName(rows[i].kind),
                  rows[i].p50_share, rows[i].p99_share, rows[i].p50_self_ns,
                  rows[i].p99_self_ns);
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace cwdb
