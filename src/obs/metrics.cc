#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace cwdb {

namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

}  // namespace

size_t Counter::ThreadShard() {
  static std::atomic<size_t> next_thread{0};
  thread_local size_t shard =
      next_thread.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

size_t Histogram::BucketOf(uint64_t value) {
  // bit_width(v) is 64 for v >= 2^63; those share the saturated top bucket.
  const size_t w = static_cast<size_t>(std::bit_width(value));
  return w < kBuckets ? w : kBuckets - 1;
}

void Histogram::Record(uint64_t value) {
  counts_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Clamp the bucket's upper bound by the observed max so a one-sample
      // histogram reports the sample's magnitude, not 2x it.
      return std::min(Histogram::BucketUpperBound(i), max);
    }
  }
  return max;
}

Histogram::Snapshot Histogram::Capture() const {
  Snapshot s;
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = counts_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  s.min = (s.count == 0 || min == UINT64_MAX) ? 0 : min;
  s.p50 = s.Quantile(0.50);
  s.p95 = s.Quantile(0.95);
  s.p99 = s.Quantile(0.99);
  return s;
}

uint64_t Histogram::Count() const {
  uint64_t n = 0;
  for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
  return n;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Capture() const {
  MetricsSnapshot snap;
  snap.captured_mono_ns = NowNs();
  snap.captured_wall_ns = WallNowNs();
  snap.boot_mono_ns = boot_mono_ns_;
  snap.boot_wall_ns = boot_wall_ns_;
  {
    std::lock_guard<std::mutex> guard(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      snap.counters.emplace_back(name, c->Value());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
      snap.gauges.emplace_back(name, g->Value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      snap.histograms.push_back(HistogramSnapshot{name, h->Capture()});
    }
  }
  snap.events = trace_.Snapshot();
  return snap;
}

void MetricsRegistry::Reset(std::string_view prefix) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& [name, c] : counters_) {
    if (name.compare(0, prefix.size(), prefix) == 0) c->Reset();
  }
  for (auto& [name, h] : histograms_) {
    if (name.compare(0, prefix.size(), prefix) == 0) h->Reset();
  }
}

void MetricsRegistry::NoteInjectedFault(uint64_t off, uint64_t len) {
  std::lock_guard<std::mutex> guard(faults_mu_);
  if (pending_faults_.size() >= kMaxPendingFaults) {
    pending_faults_.erase(pending_faults_.begin());
  }
  pending_faults_.push_back(PendingFault{off, len, NowNs()});
}

size_t MetricsRegistry::NoteDetection(uint64_t off, uint64_t len) {
  std::vector<uint64_t> latencies;
  {
    std::lock_guard<std::mutex> guard(faults_mu_);
    uint64_t now = NowNs();
    for (auto it = pending_faults_.begin(); it != pending_faults_.end();) {
      bool overlaps = it->off < off + len && off < it->off + it->len;
      if (overlaps) {
        latencies.push_back(std::max<uint64_t>(1, now - it->t_ns));
        it = pending_faults_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (!latencies.empty()) {
    Histogram* h = histogram("protect.detection_latency_ns");
    for (uint64_t ns : latencies) h->Record(ns);
  }
  return latencies.size();
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n";
  Appendf(&out, "  \"schema_version\": %u,\n", kSchemaVersion);
  Appendf(&out,
          "  \"captured_mono_ns\": %" PRIu64 ",\n  \"captured_wall_ns\": %" PRIu64
          ",\n  \"boot_mono_ns\": %" PRIu64 ",\n  \"boot_wall_ns\": %" PRIu64
          ",\n",
          captured_mono_ns, captured_wall_ns, boot_mono_ns, boot_wall_ns);
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    Appendf(&out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",", name.c_str(),
            v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    Appendf(&out, "%s\n    \"%s\": %" PRId64, first ? "" : ",", name.c_str(),
            v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& hs : histograms) {
    Appendf(&out,
            "%s\n    \"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
            ", \"min\": %" PRIu64 ", \"p50\": %" PRIu64 ", \"p95\": %" PRIu64
            ", \"p99\": %" PRIu64 ", \"max\": %" PRIu64 "}",
            first ? "" : ",", hs.name.c_str(), hs.h.count, hs.h.sum, hs.h.min,
            hs.h.p50, hs.h.p95, hs.h.p99, hs.h.max);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"events\": [";
  first = true;
  for (const TraceEvent& e : events) {
    Appendf(&out,
            "%s\n    {\"seq\": %" PRIu64 ", \"t_ns\": %" PRIu64
            ", \"wall_ns\": %" PRIu64 ", \"type\": \"%s\", \"lsn\": %" PRIu64
            ", \"a\": %" PRIu64 ", \"b\": %" PRIu64,
            first ? "" : ",", e.seq, e.t_ns, WallFromMono(e.t_ns),
            TraceEventTypeName(e.type), e.lsn, e.a, e.b);
    if (e.shard != kNoTraceShard) {
      Appendf(&out, ", \"shard\": %" PRIu64, e.shard);
    }
    out += "}";
    first = false;
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    Appendf(&out, "%-36s %20" PRIu64 "\n", name.c_str(), v);
  }
  for (const auto& [name, v] : gauges) {
    Appendf(&out, "%-36s %20" PRId64 "\n", name.c_str(), v);
  }
  for (const HistogramSnapshot& hs : histograms) {
    Appendf(&out,
            "%-36s n=%" PRIu64 " p50=%" PRIu64 " p95=%" PRIu64 " p99=%" PRIu64
            " max=%" PRIu64 "\n",
            hs.name.c_str(), hs.h.count, hs.h.p50, hs.h.p95, hs.h.p99,
            hs.h.max);
  }
  for (const TraceEvent& e : events) {
    Appendf(&out,
            "event %-8" PRIu64 " +%.3fms %-20s lsn=%" PRIu64 " a=%" PRIu64
            " b=%" PRIu64 "\n",
            e.seq, static_cast<double>(e.t_ns) / 1e6,
            TraceEventTypeName(e.type), e.lsn, e.a, e.b);
  }
  return out;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSnapshot& hs : histograms) {
    if (hs.name == name) return &hs;
  }
  return nullptr;
}

}  // namespace cwdb
