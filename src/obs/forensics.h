#ifndef CWDB_OBS_FORENSICS_H_
#define CWDB_OBS_FORENSICS_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/codeword.h"
#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/attribution.h"
#include "storage/db_image.h"
#include "storage/layout.h"

namespace cwdb {

/// Which detection path filed an incident (paper §3/§4.3: audits, read
/// prechecks, hardware traps; plus the recovery-time CRC checks the
/// implementation layers on top).
enum class IncidentSource : uint8_t {
  kAudit = 0,           ///< Full/range audit implicated regions.
  kCertification = 1,   ///< Pre-checkpoint certification audit.
  kReadPrecheck = 2,    ///< Read Prechecking mismatch on the read path.
  kMprotectTrap = 3,    ///< Hardware scheme trapped an unprescribed write.
  kWalCrc = 4,          ///< A complete WAL frame failed its CRC at open.
  kCheckpointMeta = 5,  ///< Checkpoint meta/image unusable at recovery.
  kOperator = 6,        ///< Filed manually (cwdb_ctl / API).
  kStallWatchdog = 7,   ///< Watchdog: a pipeline stage stopped progressing.
  kSloBurn = 8,         ///< SLO engine: an error budget is burning.
  kRepair = 9,          ///< Parity tier reconstructed region(s) in place.
  kCkptLoad = 10,       ///< Checkpoint-load sidecar verification mismatch.
  kCrash = 11,          ///< Prior incarnation died uncleanly (black box).
};

const char* IncidentSourceName(IncidentSource s);

/// One implicated byte range of a dossier, carried with everything needed
/// to diagnose it offline: the attribution through the table directory, the
/// codeword evidence (stored vs recomputed — their XOR is the corruption
/// delta), and a bounded hexdump of the bytes as found.
struct IncidentRegion {
  CorruptRange range;
  std::vector<RangeAttribution> attribution;

  bool have_codewords = false;
  codeword_t codeword_stored = 0;
  codeword_t codeword_computed = 0;
  codeword_t codeword_delta() const {
    return codeword_stored ^ codeword_computed;
  }

  DbPtr hexdump_off = 0;     ///< Image offset of the first dumped byte.
  std::string hexdump;       ///< Lowercase hex, 2 chars/byte, no spacing.

  /// kRepair dossiers: XOR of the region codeword before and after the
  /// reconstruction — the codeword-space image of the bytes the repair
  /// removed.
  bool have_repair_delta = false;
  codeword_t repair_delta = 0;
};

/// A structured corruption-incident dossier: the durable record of one
/// detection, written to incidents.jsonl before the deliberate crash so the
/// post-restart operator (and recovery itself) can see what was known at
/// detection time.
struct CorruptionIncident {
  uint64_t id = 0;          ///< 1-based ordinal within incidents.jsonl.
  uint64_t mono_ns = 0;     ///< NowNs() at detection.
  uint64_t wall_ns = 0;     ///< WallNowNs() at detection.
  uint64_t boot_mono_ns = 0;  ///< Registry anchor pair, for converting the
  uint64_t boot_wall_ns = 0;  ///< monotonic stamps in recent_events.
  IncidentSource source = IncidentSource::kOperator;
  std::string scheme;       ///< ProtectionSchemeName of the active scheme.
  uint64_t lsn = 0;         ///< Stable log end at detection (0 = unknown).
  uint64_t last_clean_audit_lsn = 0;  ///< Audit_SN of the last clean audit.
  std::vector<IncidentRegion> regions;
  std::vector<TxnId> active_txns;      ///< ATT at detection time.
  std::vector<TraceEvent> recent_events;  ///< Tail of the trace ring.
  std::string detail;       ///< Free-form context from the detection site.
  /// Id of the incident this one continues (a kRepair dossier links back to
  /// the detection dossier that triggered it). 0 = standalone.
  uint64_t linked_incident_id = 0;

  /// Single-line JSON (the incidents.jsonl record format).
  std::string ToJson() const;
};

/// Files incident dossiers. One recorder per Database; detection sites call
/// RecordIncident, which assembles the dossier (attribution, codeword
/// probe, hexdump, ATT snapshot, trace tail) and appends it durably —
/// open(O_APPEND) + write + fsync — to <dir>/incidents.jsonl. Thread-safe;
/// the append lock also serializes id assignment. Failure to persist never
/// fails the caller: detection paths must keep working with a full disk.
struct ForensicsOptions {
  size_t trace_events = 32;    ///< Trace-ring tail length per dossier.
  size_t hexdump_bytes = 64;   ///< Hexdump window cap per region.
  size_t max_regions = 64;     ///< Regions detailed per dossier.
  size_t max_active_txns = 256;
};

class ForensicsRecorder {
 public:
  using Options = ForensicsOptions;

  /// Probes installed by the owning Database. Each may be empty.
  using CodewordProbeFn =
      std::function<bool(DbPtr off, codeword_t* stored, codeword_t* computed)>;
  using ActiveTxnsFn = std::function<std::vector<TxnId>()>;

  ForensicsRecorder(std::string dir, const DbImage* image,
                    MetricsRegistry* metrics, Options options = Options());

  void set_scheme_name(std::string name) { scheme_name_ = std::move(name); }
  void set_codeword_probe(CodewordProbeFn fn) {
    codeword_probe_ = std::move(fn);
  }
  void set_active_txns_fn(ActiveTxnsFn fn) { active_txns_fn_ = std::move(fn); }

  /// Optional extras a detection site can attach to a dossier.
  struct IncidentExtras {
    /// Links this dossier to an earlier one (repair -> detection).
    uint64_t linked_incident_id = 0;
    /// Per-range repair XOR deltas, parallel to `ranges` (kRepair only).
    std::vector<codeword_t> repair_deltas;
    /// Replaces the live trace-ring tail with events recovered from a
    /// prior incarnation (kCrash dossiers: the black box's mirrored tail).
    bool override_recent_events = false;
    std::vector<TraceEvent> recent_events;
  };

  /// Assembles and durably appends a dossier. Returns the assigned id
  /// (also on persistence failure — the id is still burned and the failure
  /// is counted in obs.incident_append_failures).
  uint64_t RecordIncident(IncidentSource source, uint64_t lsn,
                          uint64_t last_clean_audit_lsn,
                          const std::vector<CorruptRange>& ranges,
                          std::string_view detail);

  /// Same, with extras (linked incident, repair deltas).
  uint64_t RecordIncident(IncidentSource source, uint64_t lsn,
                          uint64_t last_clean_audit_lsn,
                          const std::vector<CorruptRange>& ranges,
                          std::string_view detail,
                          const IncidentExtras& extras);

  /// Id the next incident will get (1-based; seeded from the existing
  /// incidents.jsonl line count at construction).
  uint64_t next_id() const;

  const std::string& path() const { return path_; }

 private:
  Status AppendLine(const std::string& line);

  const std::string path_;
  const DbImage* image_;       ///< May be null (no attribution / hexdump).
  MetricsRegistry* metrics_;
  const Options options_;
  std::string scheme_name_ = "none";
  CodewordProbeFn codeword_probe_;
  ActiveTxnsFn active_txns_fn_;

  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
};

/// Parses every line of an incidents.jsonl file (e.g. for `cwdb_ctl
/// incidents`). Unparseable lines are skipped with a count in
/// *skipped (may be null). Missing file -> empty vector.
Result<std::vector<JsonValue>> LoadIncidentFile(const std::string& path,
                                                size_t* skipped = nullptr);

/// Renders one parsed dossier as an operator-readable block.
std::string RenderIncident(const JsonValue& incident);

}  // namespace cwdb

#endif  // CWDB_OBS_FORENSICS_H_
