#include "obs/forensics.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <ctime>

#include "common/file_util.h"

namespace cwdb {
namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

/// "2026-08-06T12:34:56.789Z" from nanoseconds since the Unix epoch.
std::string Iso8601Utc(uint64_t wall_ns) {
  if (wall_ns == 0) return "unknown";
  time_t secs = static_cast<time_t>(wall_ns / 1000000000ull);
  unsigned millis = static_cast<unsigned>((wall_ns % 1000000000ull) / 1000000);
  struct tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03uZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  return buf;
}

void AppendAttributionJson(std::string* out, const RangeAttribution& a) {
  Appendf(out,
          "{\"kind\":\"%s\",\"off\":%" PRIu64 ",\"len\":%" PRIu64
          ",\"page_first\":%" PRIu64 ",\"page_last\":%" PRIu64,
          ImageAreaKindName(a.kind), a.off, a.len, a.page_first, a.page_last);
  if (a.kind == ImageAreaKind::kBitmap || a.kind == ImageAreaKind::kRecordData ||
      a.kind == ImageAreaKind::kTableDir) {
    Appendf(out, ",\"table\":%u,\"table_name\":", static_cast<unsigned>(a.table));
    out->append(JsonQuote(a.table_name));
  }
  if (a.kind == ImageAreaKind::kRecordData && a.first_slot != kInvalidSlot) {
    Appendf(out, ",\"first_slot\":%u,\"last_slot\":%u", a.first_slot,
            a.last_slot);
  }
  out->push_back('}');
}

}  // namespace

const char* IncidentSourceName(IncidentSource s) {
  switch (s) {
    case IncidentSource::kAudit: return "audit";
    case IncidentSource::kCertification: return "certification";
    case IncidentSource::kReadPrecheck: return "read_precheck";
    case IncidentSource::kMprotectTrap: return "mprotect_trap";
    case IncidentSource::kWalCrc: return "wal_crc";
    case IncidentSource::kCheckpointMeta: return "checkpoint_meta";
    case IncidentSource::kOperator: return "operator";
    case IncidentSource::kStallWatchdog: return "stall_watchdog";
    case IncidentSource::kSloBurn: return "slo_burn";
    case IncidentSource::kRepair: return "repair";
    case IncidentSource::kCkptLoad: return "ckpt_load";
    case IncidentSource::kCrash: return "crash";
  }
  return "unknown";
}

std::string CorruptionIncident::ToJson() const {
  std::string out;
  out.reserve(1024);
  Appendf(&out,
          "{\"id\":%" PRIu64 ",\"mono_ns\":%" PRIu64 ",\"wall_ns\":%" PRIu64
          ",\"boot_mono_ns\":%" PRIu64 ",\"boot_wall_ns\":%" PRIu64
          ",\"source\":\"%s\",\"scheme\":",
          id, mono_ns, wall_ns, boot_mono_ns, boot_wall_ns,
          IncidentSourceName(source));
  out.append(JsonQuote(scheme));
  Appendf(&out, ",\"lsn\":%" PRIu64 ",\"last_clean_audit_lsn\":%" PRIu64
          ",\"detail\":", lsn, last_clean_audit_lsn);
  out.append(JsonQuote(detail));
  if (linked_incident_id != 0) {
    Appendf(&out, ",\"linked_incident_id\":%" PRIu64, linked_incident_id);
  }
  out.append(",\"regions\":[");
  bool first = true;
  for (const IncidentRegion& r : regions) {
    if (!first) out.push_back(',');
    first = false;
    Appendf(&out, "{\"off\":%" PRIu64 ",\"len\":%" PRIu64, r.range.off,
            r.range.len);
    if (r.have_codewords) {
      Appendf(&out,
              ",\"codeword_stored\":%u,\"codeword_computed\":%u"
              ",\"codeword_delta\":%u",
              r.codeword_stored, r.codeword_computed, r.codeword_delta());
    }
    if (r.have_repair_delta) {
      Appendf(&out, ",\"repair_delta\":%u", r.repair_delta);
    }
    if (!r.hexdump.empty()) {
      Appendf(&out, ",\"hexdump_off\":%" PRIu64 ",\"hexdump\":\"%s\"",
              r.hexdump_off, r.hexdump.c_str());
    }
    out.append(",\"attribution\":[");
    bool afirst = true;
    for (const RangeAttribution& a : r.attribution) {
      if (!afirst) out.push_back(',');
      afirst = false;
      AppendAttributionJson(&out, a);
    }
    out.append("]}");
  }
  out.append("],\"active_txns\":[");
  first = true;
  for (TxnId t : active_txns) {
    Appendf(&out, "%s%" PRIu64, first ? "" : ",", t);
    first = false;
  }
  out.append("],\"recent_events\":[");
  first = true;
  for (const TraceEvent& e : recent_events) {
    uint64_t ev_wall =
        (e.t_ns == 0 || boot_wall_ns == 0)
            ? 0
            : boot_wall_ns + (e.t_ns - boot_mono_ns);
    if (!first) out.push_back(',');
    first = false;
    Appendf(&out,
            "{\"seq\":%" PRIu64 ",\"t_ns\":%" PRIu64 ",\"wall_ns\":%" PRIu64
            ",\"type\":\"%s\",\"lsn\":%" PRIu64 ",\"a\":%" PRIu64
            ",\"b\":%" PRIu64 ",\"desc\":",
            e.seq, e.t_ns, ev_wall, TraceEventTypeName(e.type), e.lsn, e.a,
            e.b);
    out.append(JsonQuote(DescribeTraceEvent(e)));
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

ForensicsRecorder::ForensicsRecorder(std::string dir, const DbImage* image,
                                     MetricsRegistry* metrics, Options options)
    : path_(dir + "/incidents.jsonl"),
      image_(image),
      metrics_(metrics),
      options_(options) {
  // Seed the id counter past any dossiers a previous incarnation filed, so
  // ids stay unique across the crash/restart an incident causes.
  std::string existing;
  if (ReadFileToString(path_, &existing, MissingFile::kTreatAsEmpty).ok()) {
    uint64_t lines = 0;
    for (char c : existing) {
      if (c == '\n') ++lines;
    }
    next_id_ = lines + 1;
  }
}

uint64_t ForensicsRecorder::next_id() const {
  std::lock_guard<std::mutex> guard(mu_);
  return next_id_;
}

uint64_t ForensicsRecorder::RecordIncident(
    IncidentSource source, uint64_t lsn, uint64_t last_clean_audit_lsn,
    const std::vector<CorruptRange>& ranges, std::string_view detail) {
  return RecordIncident(source, lsn, last_clean_audit_lsn, ranges, detail,
                        IncidentExtras());
}

uint64_t ForensicsRecorder::RecordIncident(
    IncidentSource source, uint64_t lsn, uint64_t last_clean_audit_lsn,
    const std::vector<CorruptRange>& ranges, std::string_view detail,
    const IncidentExtras& extras) {
  CorruptionIncident inc;
  inc.linked_incident_id = extras.linked_incident_id;
  inc.mono_ns = NowNs();
  inc.wall_ns = WallNowNs();
  if (metrics_ != nullptr) {
    inc.boot_mono_ns = metrics_->boot_mono_ns();
    inc.boot_wall_ns = metrics_->boot_wall_ns();
  }
  inc.source = source;
  inc.scheme = scheme_name_;
  inc.lsn = lsn;
  inc.last_clean_audit_lsn = last_clean_audit_lsn;
  inc.detail = std::string(detail);

  size_t n = std::min(ranges.size(), options_.max_regions);
  for (size_t i = 0; i < n; ++i) {
    IncidentRegion r;
    r.range = ranges[i];
    if (image_ != nullptr) {
      r.attribution = AttributeRange(*image_, r.range.off, r.range.len);
      // Bounded window of the bytes as found — the "actual" side of the
      // evidence; the codeword delta is the only record of "expected".
      uint64_t dump_len = std::min<uint64_t>(r.range.len,
                                             options_.hexdump_bytes);
      if (image_->InBounds(r.range.off, dump_len) && dump_len > 0) {
        r.hexdump_off = r.range.off;
        r.hexdump.reserve(2 * dump_len);
        const uint8_t* p = image_->At(r.range.off);
        static const char* kHex = "0123456789abcdef";
        for (uint64_t j = 0; j < dump_len; ++j) {
          r.hexdump.push_back(kHex[p[j] >> 4]);
          r.hexdump.push_back(kHex[p[j] & 0xf]);
        }
      }
    }
    if (codeword_probe_) {
      r.have_codewords = codeword_probe_(r.range.off, &r.codeword_stored,
                                         &r.codeword_computed);
    }
    if (i < extras.repair_deltas.size()) {
      r.have_repair_delta = true;
      r.repair_delta = extras.repair_deltas[i];
    }
    inc.regions.push_back(std::move(r));
  }
  if (ranges.size() > n && !inc.detail.empty()) {
    Appendf(&inc.detail, " (+%zu more ranges elided)", ranges.size() - n);
  }

  if (active_txns_fn_) {
    inc.active_txns = active_txns_fn_();
    std::sort(inc.active_txns.begin(), inc.active_txns.end());
    if (inc.active_txns.size() > options_.max_active_txns) {
      inc.active_txns.resize(options_.max_active_txns);
    }
  }
  if (extras.override_recent_events) {
    // kCrash dossiers: the events belong to the prior incarnation (its black
    // box's mirrored tail), not to this process's trace ring.
    inc.recent_events = extras.recent_events;
    if (inc.recent_events.size() > options_.trace_events) {
      inc.recent_events.erase(
          inc.recent_events.begin(),
          inc.recent_events.end() - options_.trace_events);
    }
  } else if (metrics_ != nullptr) {
    std::vector<TraceEvent> events = metrics_->trace().Snapshot();
    size_t keep = std::min(events.size(), options_.trace_events);
    inc.recent_events.assign(events.end() - keep, events.end());
  }

  std::lock_guard<std::mutex> guard(mu_);
  inc.id = next_id_++;
  Status s = AppendLine(inc.ToJson());
  if (metrics_ != nullptr) {
    metrics_->counter("obs.incidents_recorded")->Add();
    if (!s.ok()) metrics_->counter("obs.incident_append_failures")->Add();
  }
  return inc.id;
}

Status ForensicsRecorder::AppendLine(const std::string& line) {
  int fd = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                  0644);
  if (fd < 0) return Status::IoError("open " + path_);
  std::string buf = line;
  buf.push_back('\n');
  size_t done = 0;
  while (done < buf.size()) {
    ssize_t n = ::write(fd, buf.data() + done, buf.size() - done);
    if (n < 0) {
      ::close(fd);
      return Status::IoError("write " + path_);
    }
    done += static_cast<size_t>(n);
  }
  // The dossier must survive the deliberate crash that follows detection.
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IoError("fsync " + path_);
  }
  ::close(fd);
  return Status::OK();
}

Result<std::vector<JsonValue>> LoadIncidentFile(const std::string& path,
                                                size_t* skipped) {
  if (skipped != nullptr) *skipped = 0;
  std::string text;
  Status s = ReadFileToString(path, &text, MissingFile::kTreatAsEmpty);
  if (!s.ok()) return s;
  std::vector<JsonValue> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string_view line(text.data() + pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    Result<JsonValue> parsed = ParseJson(line);
    if (parsed.ok()) {
      out.push_back(std::move(parsed.value()));
    } else if (skipped != nullptr) {
      ++*skipped;  // E.g. a torn final line from a crash mid-append.
    }
  }
  return out;
}

std::string RenderIncident(const JsonValue& incident) {
  std::string out;
  Appendf(&out,
          "incident #%" PRIu64 "  source=%s  scheme=%s  %s  lsn=%" PRIu64
          "  last_clean_audit_lsn=%" PRIu64 "\n",
          incident.U64("id"), incident.Str("source").c_str(),
          incident.Str("scheme").c_str(),
          Iso8601Utc(incident.U64("wall_ns")).c_str(), incident.U64("lsn"),
          incident.U64("last_clean_audit_lsn"));
  if (incident.U64("linked_incident_id") != 0) {
    Appendf(&out, "  linked to incident #%" PRIu64 "\n",
            incident.U64("linked_incident_id"));
  }
  std::string detail = incident.Str("detail");
  if (!detail.empty()) Appendf(&out, "  detail: %s\n", detail.c_str());

  if (const JsonValue* regions = incident.Find("regions");
      regions != nullptr && regions->is_array()) {
    for (const JsonValue& r : regions->array()) {
      Appendf(&out, "  region [%" PRIu64 ",+%" PRIu64 ")", r.U64("off"),
              r.U64("len"));
      if (r.Find("codeword_delta") != nullptr) {
        Appendf(&out, "  delta=0x%08x stored=0x%08x computed=0x%08x",
                static_cast<unsigned>(r.U64("codeword_delta")),
                static_cast<unsigned>(r.U64("codeword_stored")),
                static_cast<unsigned>(r.U64("codeword_computed")));
      }
      if (r.Find("repair_delta") != nullptr) {
        Appendf(&out, "  repaired delta=0x%08x",
                static_cast<unsigned>(r.U64("repair_delta")));
      }
      out.push_back('\n');
      if (const JsonValue* attr = r.Find("attribution");
          attr != nullptr && attr->is_array()) {
        for (const JsonValue& a : attr->array()) {
          Appendf(&out, "    -> %s [%" PRIu64 ",+%" PRIu64 ") pages %" PRIu64
                  "..%" PRIu64,
                  a.Str("kind").c_str(), a.U64("off"), a.U64("len"),
                  a.U64("page_first"), a.U64("page_last"));
          if (a.Find("table_name") != nullptr) {
            Appendf(&out, " table '%s' (id %" PRIu64 ")",
                    a.Str("table_name").c_str(), a.U64("table"));
          }
          if (a.Find("first_slot") != nullptr) {
            Appendf(&out, " records %" PRIu64 "..%" PRIu64,
                    a.U64("first_slot"), a.U64("last_slot"));
          }
          out.push_back('\n');
        }
      }
      std::string hexdump = r.Str("hexdump");
      if (!hexdump.empty()) {
        Appendf(&out, "    bytes @%" PRIu64 ": %s\n", r.U64("hexdump_off"),
                hexdump.c_str());
      }
    }
  }

  if (const JsonValue* txns = incident.Find("active_txns");
      txns != nullptr && txns->is_array() && !txns->array().empty()) {
    Appendf(&out, "  active txns (%zu):", txns->array().size());
    for (const JsonValue& t : txns->array()) {
      Appendf(&out, " %" PRIu64, t.AsU64());
    }
    out.push_back('\n');
  }

  if (const JsonValue* events = incident.Find("recent_events");
      events != nullptr && events->is_array() && !events->array().empty()) {
    Appendf(&out, "  recent events (%zu):\n", events->array().size());
    for (const JsonValue& e : events->array()) {
      Appendf(&out, "    seq=%-8" PRIu64 " %s %-20s %s lsn=%" PRIu64 "\n",
              e.U64("seq"), Iso8601Utc(e.U64("wall_ns")).c_str(),
              e.Str("type").c_str(), e.Str("desc").c_str(), e.U64("lsn"));
    }
  }
  return out;
}

}  // namespace cwdb
