#ifndef CWDB_OBS_TRACE_H_
#define CWDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cwdb {

/// Engine events worth a flight-recorder entry. The `a`/`b` payload words
/// are type-specific (documented per enumerator).
enum class TraceEventType : uint8_t {
  kFaultInjected = 0,      ///< a=off, b=len — unprescribed write landed.
  kWritePrevented = 1,     ///< a=off, b=len — hardware scheme trapped it.
  kCorruptionDetected = 2, ///< a=off, b=len — audit implicated this range.
  kPrecheckFailed = 3,     ///< a=off, b=len — read precheck mismatch.
  kAuditPassBegin = 4,     ///< lsn=Audit_SN candidate.
  kAuditPassEnd = 5,       ///< a=regions audited, b=corrupt regions.
  kRecoveryPhase = 6,      ///< a=RecoveryPhase.
  kTxnDeleted = 7,         ///< a=txn id — delete-transaction recovery.
  kGroupCommitFlush = 8,   ///< lsn=new stable end, a=batch bytes.
  kCheckpoint = 9,         ///< lsn=CK_end, a=pages written.
  kMprotectFault = 10,     ///< a=off, b=len — SIGSEGV on protected page.
  kWalTailDamage = 11,     ///< a=damage offset, b=file bytes — a complete
                           ///< WAL frame failed its CRC at open (not a torn
                           ///< tail: valid frames follow the bad one).
  kRepair = 12,            ///< a=off, b=len — region reconstructed in place
                           ///< from its parity group.
};

const char* TraceEventTypeName(TraceEventType type);

/// Inverse of TraceEventTypeName (e.g. for re-decoding persisted metrics
/// JSON). Returns false for an unknown name.
bool TraceEventTypeFromName(const std::string& name, TraceEventType* type);

/// Phases recorded via kRecoveryPhase events.
enum class RecoveryPhase : uint8_t {
  kLoadCheckpoint = 0,
  kRedo = 1,
  kUndo = 2,
  kFinalCheckpoint = 3,
  kDone = 4,
};

const char* RecoveryPhaseName(RecoveryPhase phase);

/// Shard payload value meaning "not attributed to any shard" (events from
/// cross-shard paths: group commit, sweep-wide audit marks).
inline constexpr uint64_t kNoTraceShard = UINT64_MAX;

/// One recorded event. `seq` is a process-lifetime ordinal (older events
/// are overwritten in place once the ring wraps); `t_ns` is NowNs() at
/// record time; `lsn` is the log position the event is anchored to (0 when
/// not applicable); `shard` is the engine shard the event attributes to
/// (kNoTraceShard when the path is not shard-local).
struct TraceEvent {
  uint64_t seq = 0;
  uint64_t t_ns = 0;
  uint64_t lsn = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t shard = kNoTraceShard;
  TraceEventType type = TraceEventType::kFaultInjected;
};

/// Decodes an event's type-specific `a`/`b` payload into operator-readable
/// text, e.g. "off=73728 len=64" or "phase=redo". Used by `cwdb_ctl trace`
/// and the dossier's trace-snapshot rendering.
std::string DescribeTraceEvent(const TraceEvent& e);

/// Receives every recorded trace event on the recording thread, after the
/// slot publishes. Implementations must be lock-free and non-blocking (the
/// hot paths record events while holding shard latches): the flight
/// recorder mirrors events into its mmap'd ring with plain stores.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnTraceEvent(const TraceEvent& e) noexcept = 0;
};

/// Fixed-capacity lock-light flight recorder. Writers claim a slot with one
/// atomic fetch_add and publish it with a per-slot ticket (odd = write in
/// progress, even = complete); every payload field is a relaxed atomic, so
/// recording takes no lock and readers never block writers. Snapshot()
/// drops slots whose ticket changed mid-copy (a writer lapped the reader),
/// so it returns only consistent events, oldest first.
class EventTrace {
 public:
  /// `capacity` must be a power of two.
  explicit EventTrace(size_t capacity);
  EventTrace(const EventTrace&) = delete;
  EventTrace& operator=(const EventTrace&) = delete;

  void Record(TraceEventType type, uint64_t lsn = 0, uint64_t a = 0,
              uint64_t b = 0, uint64_t shard = kNoTraceShard);

  /// Consistent events currently resident in the ring, ascending seq.
  std::vector<TraceEvent> Snapshot() const;

  /// Total events ever recorded (>= Snapshot().size(); the excess wrapped).
  uint64_t recorded() const { return head_.load(std::memory_order_relaxed); }

  size_t capacity() const { return slots_.size(); }

  /// Installs (or clears, with nullptr) the mirror sink. The owner must
  /// guarantee the sink outlives every Record() call that can observe it —
  /// Database clears the sink before the flight recorder is destroyed.
  void set_sink(TraceSink* sink) {
    sink_.store(sink, std::memory_order_release);
  }

 private:
  struct Slot {
    /// 2*seq+1 while the writer of `seq` is filling the slot, 2*seq+2 once
    /// published. 0 = never written.
    std::atomic<uint64_t> ticket{0};
    std::atomic<uint64_t> t_ns{0};
    std::atomic<uint64_t> lsn{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint64_t> shard{kNoTraceShard};
    std::atomic<uint8_t> type{0};
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> head_{0};
  std::atomic<TraceSink*> sink_{nullptr};
};

}  // namespace cwdb

#endif  // CWDB_OBS_TRACE_H_
