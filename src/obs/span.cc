#include "obs/span.h"

namespace cwdb {

namespace {

struct KindName {
  SpanKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {SpanKind::kTxn, "txn"},
    {SpanKind::kTxnBegin, "txn.begin"},
    {SpanKind::kLockWait, "lock.wait"},
    {SpanKind::kReadPrecheck, "read.precheck"},
    {SpanKind::kCodewordFold, "codeword.fold"},
    {SpanKind::kWalStage, "wal.stage"},
    {SpanKind::kFlushWait, "wal.flush_wait"},
    {SpanKind::kQueueWait, "wal.queue_wait"},
    {SpanKind::kDrainBatch, "wal.drain_batch"},
    {SpanKind::kFsync, "wal.fsync"},
    {SpanKind::kCommitAck, "commit.ack"},
    {SpanKind::kCheckpoint, "ckpt"},
    {SpanKind::kCheckpointCopy, "ckpt.copy"},
    {SpanKind::kCheckpointWrite, "ckpt.write"},
    {SpanKind::kCheckpointFsync, "ckpt.fsync"},
    {SpanKind::kCheckpointCertify, "ckpt.certify"},
    {SpanKind::kAuditSweep, "audit.sweep"},
    {SpanKind::kAuditSlice, "audit.slice"},
    {SpanKind::kRecovery, "recovery"},
    {SpanKind::kRecoveryPhase, "recovery.phase"},
};

}  // namespace

const char* SpanKindName(SpanKind kind) {
  for (const KindName& k : kKindNames) {
    if (k.kind == kind) return k.name;
  }
  return "unknown";
}

bool SpanKindFromName(const std::string& name, SpanKind* kind) {
  for (const KindName& k : kKindNames) {
    if (name == k.name) {
      *kind = k.kind;
      return true;
    }
  }
  return false;
}

}  // namespace cwdb
