#include "obs/postmortem.h"

#include <csignal>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "common/crc32.h"
#include "common/file_util.h"
#include "obs/flight_recorder.h"

namespace cwdb {

namespace {

using namespace blackbox;

uint32_t Read32(const std::string& b, uint64_t off) {
  uint32_t v = 0;
  std::memcpy(&v, b.data() + off, 4);
  return v;
}

uint64_t Read64(const std::string& b, uint64_t off) {
  uint64_t v = 0;
  std::memcpy(&v, b.data() + off, 8);
  return v;
}

/// NUL-terminated (or length-capped) string out of a fixed field.
std::string ReadText(const std::string& b, uint64_t off, uint64_t max_len) {
  const char* p = b.data() + off;
  size_t n = 0;
  while (n < max_len && p[n] != '\0') ++n;
  return std::string(p, n);
}

/// Seqlock'd status slot: "" when the writer died mid-update (odd seq).
std::string ReadStatusSlot(const std::string& b, StatusSlot slot) {
  const uint64_t base =
      kStatusOff + static_cast<uint32_t>(slot) * kStatusSlotBytes;
  const uint32_t seq = Read32(b, base + 0);
  if (seq % 2 != 0) return std::string();
  uint32_t len = Read32(b, base + 4);
  if (len > kStatusTextBytes) len = kStatusTextBytes;
  return std::string(b.data() + base + 8, len);
}

std::string FormatWallNs(uint64_t wall_ns) {
  if (wall_ns == 0) return "unknown";
  time_t secs = static_cast<time_t>(wall_ns / 1'000'000'000ull);
  struct tm tm_buf;
  char buf[64];
  if (gmtime_r(&secs, &tm_buf) == nullptr) return "unknown";
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm_buf);
  char out[96];
  std::snprintf(out, sizeof(out), "%s.%03lluZ", buf,
                static_cast<unsigned long long>(wall_ns / 1'000'000 % 1000));
  return out;
}

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGABRT: return "SIGABRT";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    default: return "signal";
  }
}

}  // namespace

Result<BlackBoxReport> DecodeBlackBox(const std::string& bytes) {
  if (bytes.size() < kTotalBytes) {
    return Status::Corruption("black box truncated: " +
                              std::to_string(bytes.size()) + " bytes");
  }
  if (std::memcmp(bytes.data() + kHdrMagic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("black box magic mismatch");
  }
  BlackBoxReport r;
  r.version = Read32(bytes, kHdrVersion);
  if (r.version != kVersion) {
    return Status::Corruption("black box version " +
                              std::to_string(r.version) + " unsupported");
  }
  char header[kHeaderCrcBytes];
  std::memcpy(header, bytes.data(), kHeaderCrcBytes);
  std::memset(header + kHdrCrc, 0, 4);
  if (Crc32c(header, kHeaderCrcBytes) != Read32(bytes, kHdrCrc)) {
    return Status::Corruption("black box header CRC mismatch");
  }
  r.boot_mono_ns = Read64(bytes, kHdrBootMono);
  r.boot_wall_ns = Read64(bytes, kHdrBootWall);
  r.pid = Read64(bytes, kHdrPid);
  r.arena_size = Read64(bytes, kHdrArenaSize);
  r.page_size = Read32(bytes, kHdrPageSize);
  r.shard_count = Read32(bytes, kHdrShardCount);
  r.scheme = ReadText(bytes, kHdrScheme, kHdrSchemeBytes - 1);
  r.clean_shutdown = Read32(bytes, kHdrCleanShutdown) != 0;
  r.open_wall_ns = Read64(bytes, kHdrOpenWall);

  r.durable_lsn = Read64(bytes, kGlobalLsnOff + 0);
  r.logical_end_lsn = Read64(bytes, kGlobalLsnOff + 8);
  const uint64_t shards = std::min<uint64_t>(r.shard_count, kMaxShards);
  for (uint64_t s = 0; s < shards; ++s) {
    r.shard_staged_lsns.push_back(Read64(bytes, kShardLsnOff + s * 16));
  }

  r.armed_crashpoints =
      ReadStatusSlot(bytes, StatusSlot::kArmedCrashpoints);
  r.watchdog_status = ReadStatusSlot(bytes, StatusSlot::kWatchdog);
  r.slo_status = ReadStatusSlot(bytes, StatusSlot::kSlo);

  // Trace mirror: keep published slots whose CRC verifies.
  for (uint64_t i = 0; i < kTraceSlots; ++i) {
    const uint64_t slot = kTraceOff + i * kTraceSlotBytes;
    const uint64_t ticket = Read64(bytes, slot + kTsTicket);
    if (ticket == 0 || ticket % 2 != 0) continue;
    TraceEvent e;
    e.seq = ticket / 2 - 1;
    e.t_ns = Read64(bytes, slot + kTsTNs);
    e.lsn = Read64(bytes, slot + kTsLsn);
    e.a = Read64(bytes, slot + kTsA);
    e.b = Read64(bytes, slot + kTsB);
    e.shard = Read64(bytes, slot + kTsShard);
    const uint32_t type = Read32(bytes, slot + kTsType);
    if (type > static_cast<uint32_t>(TraceEventType::kRepair)) continue;
    e.type = static_cast<TraceEventType>(type);
    if (TraceSlotCrc(e) != Read32(bytes, slot + kTsCrc)) continue;
    r.events.push_back(e);
  }
  std::sort(r.events.begin(), r.events.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });

  // Latest metrics sample (seqlock'd: dropped wholesale when torn).
  if (Read32(bytes, kSampleOff + 0) % 2 == 0) {
    uint32_t count = Read32(bytes, kSampleOff + 4);
    if (count > kMaxSampleEntries) count = 0;  // Never written / garbage.
    r.sample_mono_ns = Read64(bytes, kSampleOff + 8);
    r.sample_wall_ns = Read64(bytes, kSampleOff + 16);
    for (uint32_t i = 0; i < count; ++i) {
      const uint64_t e = kSampleOff + kSampleHeaderBytes +
                         static_cast<uint64_t>(i) * kSampleEntryBytes;
      BlackBoxSampleEntry entry;
      entry.name = ReadText(bytes, e, kSampleNameBytes - 1);
      entry.kind = static_cast<char>(Read32(bytes, e + kSampleNameBytes));
      entry.bits = Read64(bytes, e + kSampleNameBytes + 4);
      if (entry.name.empty()) continue;
      r.sample.push_back(std::move(entry));
    }
  }

  // Crash record.
  if (Read32(bytes, kCrashOff + kCrState) == kCrashValid) {
    r.crash.valid = true;
    r.crash.signal = static_cast<int>(Read32(bytes, kCrashOff + kCrSignal));
    r.crash.si_code = static_cast<int>(Read32(bytes, kCrashOff + kCrCode));
    r.crash.fault_addr = Read64(bytes, kCrashOff + kCrFaultAddr);
    const uint64_t off = Read64(bytes, kCrashOff + kCrFaultOff);
    if (off != kNoFaultOff) {
      r.crash.fault_in_arena = true;
      r.crash.fault_off = off;
      r.crash.fault_shard = Read64(bytes, kCrashOff + kCrFaultShard);
    }
    r.crash.mono_ns = Read64(bytes, kCrashOff + kCrMonoNs);
    r.crash.wall_ns = Read64(bytes, kCrashOff + kCrWallNs);
    uint64_t bt_len = Read32(bytes, kCrashOff + kCrBacktraceLen);
    bt_len = std::min<uint64_t>(bt_len, bytes.size() - kBacktraceOff);
    if (bt_len > 0) {
      r.crash.backtrace.assign(bytes.data() + kBacktraceOff,
                               static_cast<size_t>(bt_len));
    }
  }
  return r;
}

Result<BlackBoxReport> ReadBlackBox(const std::string& path) {
  if (!FileExists(path)) {
    return Status::NotFound("no black box at " + path);
  }
  std::string bytes;
  CWDB_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  return DecodeBlackBox(bytes);
}

std::string RenderBlackBox(const BlackBoxReport& r) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "incarnation: pid=%" PRIu64 " opened=%s scheme=%s shards=%u "
                "arena=%" PRIu64 " page=%u\n",
                r.pid, FormatWallNs(r.open_wall_ns).c_str(), r.scheme.c_str(),
                r.shard_count, r.arena_size, r.page_size);
  out += line;
  std::snprintf(line, sizeof(line), "shutdown: %s\n",
                r.clean_shutdown ? "clean (marked at Close)"
                                 : "UNCLEAN (process died with the box open)");
  out += line;

  if (r.crash.valid) {
    std::snprintf(line, sizeof(line),
                  "crash: %s (si_code=%d) at addr=0x%" PRIx64 " time=%s\n",
                  SignalName(r.crash.signal), r.crash.si_code,
                  r.crash.fault_addr, FormatWallNs(r.crash.wall_ns).c_str());
    out += line;
    if (r.crash.fault_in_arena) {
      std::snprintf(line, sizeof(line),
                    "  faulting address is IN the arena: offset=%" PRIu64
                    " shard=%" PRIu64 "\n",
                    r.crash.fault_off, r.crash.fault_shard);
      out += line;
    } else {
      out += "  faulting address is outside the arena\n";
    }
    if (!r.crash.backtrace.empty()) {
      out += "  backtrace:\n";
      size_t pos = 0;
      while (pos < r.crash.backtrace.size()) {
        size_t eol = r.crash.backtrace.find('\n', pos);
        if (eol == std::string::npos) eol = r.crash.backtrace.size();
        out += "    " + r.crash.backtrace.substr(pos, eol - pos) + "\n";
        pos = eol + 1;
      }
    }
  } else if (!r.clean_shutdown) {
    out +=
        "crash: no fatal-signal record (killed outright, _exit at a crash "
        "point, or the handler was not installed)\n";
  }

  std::snprintf(line, sizeof(line),
                "log frontiers: durable=%" PRIu64 " logical_end=%" PRIu64 "\n",
                r.durable_lsn, r.logical_end_lsn);
  out += line;
  for (size_t s = 0; s < r.shard_staged_lsns.size(); ++s) {
    if (r.shard_staged_lsns[s] == 0) continue;
    std::snprintf(line, sizeof(line),
                  "  wal shard %zu staged through lsn=%" PRIu64 "\n", s,
                  r.shard_staged_lsns[s]);
    out += line;
  }
  out += "armed crash points: " +
         (r.armed_crashpoints.empty() ? std::string("(none)")
                                      : r.armed_crashpoints) +
         "\n";
  if (!r.watchdog_status.empty()) {
    out += "watchdog: " + r.watchdog_status + "\n";
  }
  if (!r.slo_status.empty()) {
    out += "slo: " + r.slo_status + "\n";
  }

  std::snprintf(line, sizeof(line), "trace tail: %zu event(s)\n",
                r.events.size());
  out += line;
  for (const TraceEvent& e : r.events) {
    std::snprintf(line, sizeof(line), "  [%" PRIu64 "] t=%s %s %s\n", e.seq,
                  FormatWallNs(r.WallFromMono(e.t_ns)).c_str(),
                  TraceEventTypeName(e.type), DescribeTraceEvent(e).c_str());
    out += line;
  }

  if (!r.sample.empty()) {
    std::snprintf(line, sizeof(line),
                  "last metrics sample (%s): %zu series\n",
                  FormatWallNs(r.sample_wall_ns).c_str(), r.sample.size());
    out += line;
    // A few headliners; the full set is in the decoded report.
    for (const BlackBoxSampleEntry& e : r.sample) {
      if (e.name != "txn.commits" && e.name != "txn.aborts" &&
          e.name != "wal.flushes" && e.name != "ckpt.checkpoints" &&
          e.name.rfind("process.", 0) != 0) {
        continue;
      }
      if (e.kind == 'g') {
        std::snprintf(line, sizeof(line), "  %s = %lld\n", e.name.c_str(),
                      static_cast<long long>(static_cast<int64_t>(e.bits)));
      } else {
        std::snprintf(line, sizeof(line), "  %s = %" PRIu64 "\n",
                      e.name.c_str(), e.bits);
      }
      out += line;
    }
  }
  return out;
}

}  // namespace cwdb
