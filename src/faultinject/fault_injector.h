#ifndef CWDB_FAULTINJECT_FAULT_INJECTOR_H_
#define CWDB_FAULTINJECT_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/slice.h"
#include "core/database.h"

namespace cwdb {

/// Injects the paper's class of software errors — addressing errors such
/// as wild writes through uninitialized pointers and copy overruns — by
/// writing to the mapped database image *without* the prescribed
/// BeginUpdate/EndUpdate interface. This is direct physical corruption.
///
/// Under the Hardware Protection scheme such a write raises SIGSEGV; the
/// injector installs a scoped signal handler so the attempt is recorded as
/// "prevented" instead of killing the process (modelling the paper's "a
/// trap is issued to the process and the offending write is not
/// completed").
class FaultInjector {
 public:
  struct Outcome {
    DbPtr off = 0;
    uint32_t len = 0;
    bool prevented = false;     ///< Trapped by hardware protection.
    bool changed_bits = false;  ///< At least one bit actually differs.
  };

  FaultInjector(Database* db, uint64_t seed) : db_(db), rng_(seed) {}

  /// Writes `bytes` at image offset `off`, bypassing the update interface.
  Outcome WildWriteAt(DbPtr off, Slice bytes);

  /// Wild write of random bytes (1..max_len) at a uniformly random image
  /// offset.
  Outcome WildWrite(uint32_t max_len);

  /// Copy overrun: writes `overrun_len` bytes past the end of a record,
  /// clobbering whatever lives there.
  Outcome CopyOverrun(TableId table, uint32_t slot, uint32_t overrun_len);

  /// Flips a single random bit somewhere in the image.
  Outcome BitFlip();

  /// Injection campaign: `n` random wild writes. Returns the outcomes.
  std::vector<Outcome> Campaign(uint64_t n, uint32_t max_len);

 private:
  Database* db_;
  Random rng_;
};

}  // namespace cwdb

#endif  // CWDB_FAULTINJECT_FAULT_INJECTOR_H_
