#include "faultinject/fault_injector.h"

#include <unistd.h>

#include <csetjmp>
#include <csignal>
#include <cstdint>
#include <cstring>

#include "common/logging.h"
#include "obs/forensics.h"

namespace cwdb {

namespace {

// Scoped SIGSEGV/SIGBUS trap used while attempting an injected write. The
// handler longjmps out of the faulting store; the write is then known to
// have been prevented by page protection. Not thread-safe by design: fault
// injection is a single-threaded test harness activity.
//
// The trap only claims faults inside the injected write's page window.
// Anything else (a genuine bug, a store the flight recorder's fatal
// handler should record) chains: the handler restores the previously
// installed actions and returns, so the faulting instruction re-executes
// under the prior handler — without this, installing a global fatal
// handler would make the scoped trap swallow real crashes as "prevented".
sigjmp_buf g_fault_jmp;
uintptr_t g_trap_lo = 0;
uintptr_t g_trap_hi = 0;
struct sigaction g_old_segv;
struct sigaction g_old_bus;

void FaultHandler(int, siginfo_t* si, void*) {
  const uintptr_t addr = reinterpret_cast<uintptr_t>(si->si_addr);
  if (addr >= g_trap_lo && addr < g_trap_hi) siglongjmp(g_fault_jmp, 1);
  ::sigaction(SIGSEGV, &g_old_segv, nullptr);
  ::sigaction(SIGBUS, &g_old_bus, nullptr);
}

class ScopedTrap {
 public:
  /// Claims faults on the pages of [target, target+len) — the protection
  /// granularity of the hardware scheme — for the trap's lifetime.
  ScopedTrap(const void* target, size_t len) {
    const uintptr_t page = static_cast<uintptr_t>(::sysconf(_SC_PAGESIZE));
    const uintptr_t t = reinterpret_cast<uintptr_t>(target);
    g_trap_lo = t & ~(page - 1);
    g_trap_hi = (t + len + page - 1) & ~(page - 1);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = FaultHandler;
    sa.sa_flags = SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGSEGV, &sa, &g_old_segv);
    ::sigaction(SIGBUS, &sa, &g_old_bus);
  }
  ~ScopedTrap() {
    ::sigaction(SIGSEGV, &g_old_segv, nullptr);
    ::sigaction(SIGBUS, &g_old_bus, nullptr);
    g_trap_lo = 0;
    g_trap_hi = 0;
  }
};

}  // namespace

FaultInjector::Outcome FaultInjector::WildWriteAt(DbPtr off, Slice bytes) {
  Outcome out;
  out.off = off;
  out.len = static_cast<uint32_t>(bytes.size());
  CWDB_CHECK(off + bytes.size() <= db_->arena_size());
  uint8_t* target = db_->UnsafeRawBase() + off;
  // Reading is always permitted (pages are PROT_READ at minimum).
  std::string before(reinterpret_cast<const char*>(target), bytes.size());

  ScopedTrap trap(target, bytes.size());
  if (sigsetjmp(g_fault_jmp, 1) == 0) {
    std::memcpy(target, bytes.data(), bytes.size());
    out.prevented = false;
  } else {
    out.prevented = true;
  }
  out.changed_bits =
      std::memcmp(target, before.data(), bytes.size()) != 0;

  MetricsRegistry* metrics = db_->metrics();
  const uint64_t shard = db_->shard_map().ShardOf(off);
  metrics->counter("faultinject.writes_injected")->Add();
  metrics->trace().Record(TraceEventType::kFaultInjected, 0, off, out.len,
                          shard);
  if (out.prevented) {
    // Hardware scheme: the wild store faulted before touching the image —
    // prevention *is* detection, at (essentially) zero latency.
    metrics->counter("faultinject.writes_prevented")->Add();
    metrics->trace().Record(TraceEventType::kWritePrevented, 0, off, out.len,
                            shard);
    metrics->NoteInjectedFault(off, out.len);
    metrics->NoteDetection(off, out.len);
    if (ForensicsRecorder* forensics = db_->forensics()) {
      forensics->RecordIncident(
          IncidentSource::kMprotectTrap, /*lsn=*/0,
          /*last_clean_audit_lsn=*/0, {CorruptRange{off, out.len}},
          "hardware protection trapped an unprescribed write; "
          "image bytes unchanged");
    }
  } else if (out.changed_bits) {
    // Arm the detection-latency clock: whichever layer later implicates
    // this range (audit, precheck, recovery) stops it.
    metrics->NoteInjectedFault(off, out.len);
  }
  return out;
}

FaultInjector::Outcome FaultInjector::WildWrite(uint32_t max_len) {
  uint32_t len = static_cast<uint32_t>(rng_.Range(1, max_len));
  DbPtr off = rng_.Uniform(db_->arena_size() - len);
  std::string garbage(len, '\0');
  for (uint32_t i = 0; i < len; ++i) {
    garbage[i] = static_cast<char>(rng_.Next32());
  }
  return WildWriteAt(off, garbage);
}

FaultInjector::Outcome FaultInjector::CopyOverrun(TableId table,
                                                  uint32_t slot,
                                                  uint32_t overrun_len) {
  const TableMetaRaw* meta = db_->image()->table_meta(table);
  CWDB_CHECK(meta->in_use);
  // A copy that was meant to fill the record but ran `overrun_len` bytes
  // past its end.
  DbPtr end_of_record =
      db_->image()->RecordOff(table, slot) + meta->record_size;
  std::string garbage(overrun_len, '\0');
  for (uint32_t i = 0; i < overrun_len; ++i) {
    garbage[i] = static_cast<char>(rng_.Next32());
  }
  return WildWriteAt(end_of_record, garbage);
}

FaultInjector::Outcome FaultInjector::BitFlip() {
  DbPtr off = rng_.Uniform(db_->arena_size());
  uint8_t byte = db_->UnsafeRawBase()[off];
  byte ^= static_cast<uint8_t>(1u << rng_.Uniform(8));
  return WildWriteAt(off, Slice(reinterpret_cast<const char*>(&byte), 1));
}

std::vector<FaultInjector::Outcome> FaultInjector::Campaign(uint64_t n,
                                                            uint32_t max_len) {
  std::vector<Outcome> outcomes;
  outcomes.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    outcomes.push_back(WildWrite(max_len));
  }
  return outcomes;
}

}  // namespace cwdb
