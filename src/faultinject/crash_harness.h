#ifndef CWDB_FAULTINJECT_CRASH_HARNESS_H_
#define CWDB_FAULTINJECT_CRASH_HARNESS_H_

#include <string>

#include "common/crashpoint.h"
#include "common/result.h"
#include "common/status.h"

namespace cwdb {
namespace crashharness {

/// Fork-based crash-point torture harness, shared by the crash-matrix test
/// and the cwdb_crashtest tool. One case = fork a child that runs a
/// scripted transactional workload with one crash point armed, wait for it
/// to die (or finish), then reopen the database in the parent, run
/// recovery, and assert the durability invariants:
///
///   1. every transaction whose Commit() returned OK before the crash is
///      fully present (the child fsyncs a progress record after each ack);
///   2. every other transaction is all-or-nothing — in particular the
///      deliberately-uncommitted and the explicitly-aborted script
///      transactions are absent;
///   3. a full codeword audit of the recovered image is clean, i.e. the
///      stored codeword table equals what a from-scratch rebuild of the
///      recovered bytes produces;
///   4. the structural integrity sweep reports no violations.

/// Child exit codes (crashpoint::kCrashExitCode = injected crash).
constexpr int kDoneExitCode = 7;      ///< Script ran to the end.
constexpr int kOpenFailExitCode = 9;  ///< Database::Open failed (injected).
constexpr int kWorkloadErrorExitCode = 11;  ///< Unexpected script failure.

struct CaseSpec {
  std::string point;
  crashpoint::Mode mode = crashpoint::Mode::kAbort;
  uint32_t countdown = 1;
  /// Arm before Database::Open so points only reached during initial
  /// formatting (ckpt.image.setsize) can fire; otherwise the child arms
  /// after open, so the scripted workload is what drives the point.
  bool arm_before_open = false;
};

struct CaseResult {
  bool crashed = false;   ///< Child died at the injected point.
  int child_exit = -1;    ///< Raw exit code.
  uint64_t committed = 0; ///< Commits acked before the crash.
  std::string detail;     ///< Human-readable summary of the run.
};

/// Runs the scripted workload in `dir` (created if needed), recording
/// commit progress to `progress_path`. Never returns; exits with one of
/// the codes above or dies at the armed crash point.
[[noreturn]] void RunWorkloadChild(const std::string& dir,
                                   const std::string& progress_path,
                                   const CaseSpec& spec);

/// Reopens `dir` (running restart recovery) and checks the invariants
/// against the progress file. `require_committed_survive` is false only
/// for bit-flip cases, where a detected-and-truncated log tail may
/// legitimately drop acked commits (the CRC turns the flip into a torn
/// tail); atomicity and audit cleanliness must still hold.
/// `expect_unclean_box` is true for modes that kill the child at the fire
/// point (abort, torn write): those children `_exit` without destructors,
/// so the flight recorder must read back unclean. Survivable modes (eio,
/// bit flip) may instead fail Database::Open with the injected error and
/// tear down orderly — a clean box, and no crash to verify.
Status VerifyAfterCrash(const std::string& dir,
                        const std::string& progress_path,
                        bool require_committed_survive,
                        bool expect_unclean_box,
                        uint64_t* committed_out = nullptr);

/// Fork + workload + wait + verify for one case. `dir` must be fresh.
/// Returns an error Status if the child exited abnormally for the mode,
/// the armed point was never reached, or verification failed.
Result<CaseResult> RunCase(const std::string& dir, const CaseSpec& spec);

}  // namespace crashharness
}  // namespace cwdb

#endif  // CWDB_FAULTINJECT_CRASH_HARNESS_H_
