#include "faultinject/crash_harness.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "ckpt/checkpoint.h"
#include "common/coding.h"
#include "common/file_util.h"
#include "core/database.h"
#include "obs/postmortem.h"

namespace cwdb {
namespace crashharness {

namespace {

constexpr uint32_t kRecordSize = 64;
constexpr int kRecsPerTxn = 4;
/// Script transaction indices. 0..8 commit; 90 is left open across a
/// checkpoint (must be rolled back), 91 is explicitly aborted.
constexpr uint64_t kOpenTxnIndex = 90;
constexpr uint64_t kAbortTxnIndex = 91;
constexpr uint64_t kCommittedTxns = 9;

/// Child exits when the script finished but the armed point never fired —
/// the workload does not reach that boundary, so the case proves nothing.
constexpr int kPointMissedExitCode = 13;

DatabaseOptions HarnessOptions(const std::string& dir) {
  DatabaseOptions opts;
  opts.path = dir;
  opts.arena_size = 2ull << 20;
  opts.page_size = 4096;
  opts.protection.scheme = ProtectionScheme::kDataCodeword;
  opts.protection.region_size = 512;
  return opts;
}

/// Deterministic record payload: [txn index u64][record ordinal u64]
/// [pattern bytes] — verification recomputes the pattern and detects any
/// torn, lost or corrupted record byte.
std::string RecordBytes(uint64_t txn_index, uint64_t ordinal) {
  std::string rec;
  PutFixed64(&rec, txn_index);
  PutFixed64(&rec, ordinal);
  while (rec.size() < kRecordSize) {
    rec.push_back(static_cast<char>(
        (txn_index * 131 + ordinal * 17 + rec.size()) & 0xff));
  }
  return rec;
}

/// Appends one line to the progress file and fsyncs it, so the parent can
/// trust every recorded commit ack even across an immediate crash.
void AppendProgress(const std::string& path, const std::string& line) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) ::_exit(kWorkloadErrorExitCode);
  std::string data = line + "\n";
  if (::write(fd, data.data(), data.size()) !=
      static_cast<ssize_t>(data.size())) {
    ::_exit(kWorkloadErrorExitCode);
  }
  ::fsync(fd);
  ::close(fd);
}

/// One scripted transaction: S <i> before the commit attempt, C <i> after
/// a successful ack. A failed commit (injected EIO surfacing through
/// Flush) is recorded as a comment and the script carries on — the batch
/// stays in the tail and the next flush must cover it exactly once.
void CommitOneTxn(Database* db, TableId table, uint64_t i,
                  const std::string& progress) {
  Result<Transaction*> txn = db->Begin();
  if (!txn.ok()) ::_exit(kWorkloadErrorExitCode);
  for (int j = 0; j < kRecsPerTxn; ++j) {
    if (!db->Insert(*txn, table, RecordBytes(i, j)).ok()) {
      ::_exit(kWorkloadErrorExitCode);
    }
  }
  AppendProgress(progress, "S " + std::to_string(i));
  Status s = db->Commit(*txn);
  if (s.ok()) {
    AppendProgress(progress, "C " + std::to_string(i));
  } else {
    AppendProgress(progress, "# commit " + std::to_string(i) +
                                 " failed: " + s.ToString());
  }
}

}  // namespace

void RunWorkloadChild(const std::string& dir,
                      const std::string& progress_path,
                      const CaseSpec& spec) {
  crashpoint::Spec arm;
  arm.mode = spec.mode;
  arm.countdown = spec.countdown;
  if (spec.arm_before_open) crashpoint::Arm(spec.point, arm);

  Result<std::unique_ptr<Database>> db = Database::Open(HarnessOptions(dir));
  if (!db.ok()) ::_exit(kOpenFailExitCode);
  if (!spec.arm_before_open) crashpoint::Arm(spec.point, arm);

  // Txn 0: schema + first records.
  Result<Transaction*> txn0 = (*db)->Begin();
  if (!txn0.ok()) ::_exit(kWorkloadErrorExitCode);
  Result<TableId> table = (*db)->CreateTable(*txn0, "t", kRecordSize, 512);
  if (!table.ok()) ::_exit(kWorkloadErrorExitCode);
  for (int j = 0; j < kRecsPerTxn; ++j) {
    if (!(*db)->Insert(*txn0, *table, RecordBytes(0, j)).ok()) {
      ::_exit(kWorkloadErrorExitCode);
    }
  }
  AppendProgress(progress_path, "S 0");
  if ((*db)->Commit(*txn0).ok()) AppendProgress(progress_path, "C 0");

  for (uint64_t i = 1; i <= 3; ++i) {
    CommitOneTxn(db->get(), *table, i, progress_path);
  }

  // A transaction deliberately left open across a checkpoint: its redo
  // reaches the stable log and the checkpointed ATT, so recovery must
  // roll it back.
  Result<Transaction*> open_txn = (*db)->Begin();
  if (!open_txn.ok()) ::_exit(kWorkloadErrorExitCode);
  for (int j = 0; j < kRecsPerTxn; ++j) {
    if (!(*db)->Insert(*open_txn, *table, RecordBytes(kOpenTxnIndex, j))
             .ok()) {
      ::_exit(kWorkloadErrorExitCode);
    }
  }

  Status ck1 = (*db)->Checkpoint();
  if (!ck1.ok()) {
    AppendProgress(progress_path, "# checkpoint 1 failed: " + ck1.ToString());
  }

  for (uint64_t i = 4; i <= 6; ++i) {
    CommitOneTxn(db->get(), *table, i, progress_path);
  }

  // An explicitly aborted transaction: undone before the crash, must stay
  // absent after it.
  Result<Transaction*> abort_txn = (*db)->Begin();
  if (!abort_txn.ok()) ::_exit(kWorkloadErrorExitCode);
  for (int j = 0; j < kRecsPerTxn; ++j) {
    if (!(*db)->Insert(*abort_txn, *table, RecordBytes(kAbortTxnIndex, j))
             .ok()) {
      ::_exit(kWorkloadErrorExitCode);
    }
  }
  if (!(*db)->Abort(*abort_txn).ok()) ::_exit(kWorkloadErrorExitCode);

  Status ck2 = (*db)->Checkpoint();  // Ping-pong: targets the other image.
  if (!ck2.ok()) {
    AppendProgress(progress_path, "# checkpoint 2 failed: " + ck2.ToString());
  }

  Result<Lsn> arch = (*db)->Archive(dir + "/archive");
  if (!arch.ok()) {
    AppendProgress(progress_path,
                   "# archive failed: " + arch.status().ToString());
  }

  for (uint64_t i = 7; i < kCommittedTxns; ++i) {
    CommitOneTxn(db->get(), *table, i, progress_path);
  }

  // Exit without Close(): the parent always recovers from a "crash".
  // Reaching this line in a crashing mode means the point never fired;
  // the distinct exit code lets RunCase report "point missed" precisely.
  ::_exit(crashpoint::Fired() > 0 ? kDoneExitCode : kPointMissedExitCode);
}

Status VerifyAfterCrash(const std::string& dir,
                        const std::string& progress_path,
                        bool require_committed_survive,
                        bool expect_unclean_box,
                        uint64_t* committed_out) {
  std::string progress;
  CWDB_RETURN_IF_ERROR(ReadFileToString(progress_path, &progress,
                                        MissingFile::kTreatAsEmpty));
  std::set<uint64_t> committed;
  std::set<uint64_t> attempted;
  std::istringstream lines(progress);
  std::string tag;
  uint64_t idx;
  for (std::string line; std::getline(lines, line);) {
    std::istringstream fields(line);
    if (!(fields >> tag >> idx)) continue;
    if (tag == "S") attempted.insert(idx);
    if (tag == "C") committed.insert(idx);
  }
  if (committed_out != nullptr) *committed_out = committed.size();

  // The dead child must have left a decodable, unclean black box (the
  // flight recorder is on by default and the child exits without Close()).
  // Read it before the reopen rotates it to blackbox.prev.bin. Absence is
  // tolerated only for children that died before the recorder existed
  // (points armed before Database::Open).
  DbFiles files(dir);
  std::optional<BlackBoxReport> box;
  if (FileExists(files.BlackBox())) {
    Result<BlackBoxReport> decoded = ReadBlackBox(files.BlackBox());
    if (!decoded.ok()) {
      return Status::Internal("black box of the dead child does not decode: " +
                              decoded.status().ToString());
    }
    if (decoded->clean_shutdown) {
      // Dying modes _exit at the fire point — no destructor, so a clean
      // mark there is a recorder bug. A survivable mode can instead fail
      // Database::Open with the injected error; the half-built Database is
      // destructed orderly, the box is honestly clean, and there is no
      // crash for the reopen to ingest.
      if (expect_unclean_box) {
        return Status::Internal("black box claims a clean shutdown of a "
                                "child that never called Close()");
      }
    } else {
      box = std::move(*decoded);
    }
  }

  Result<std::unique_ptr<Database>> db = Database::Open(HarnessOptions(dir));
  if (!db.ok()) {
    // Only a bit-flip case may fail to reopen, and only with a clean
    // Corruption diagnosis — never a crash or a garbled state.
    if (!require_committed_survive && db.status().IsCorruption()) {
      return Status::OK();
    }
    return Status::Internal("reopen after crash failed: " +
                            db.status().ToString());
  }

  if (box.has_value()) {
    // Postmortem consistency: the reopen must have filed a crash dossier,
    // and the durable frontier the drainer last mirrored into the box can
    // never exceed the log prefix recovery replayed. (A bit-flip case may
    // legitimately truncate the valid prefix below the mirror.)
    if ((*db)->crash_incident_id() == 0) {
      return Status::Internal(
          "reopen after an unclean death filed no crash dossier");
    }
    const RecoveryReport& rec = (*db)->last_recovery_report();
    if (require_committed_survive && box->durable_lsn > rec.redo_end) {
      return Status::Internal(
          "black box durable LSN " + std::to_string(box->durable_lsn) +
          " exceeds the recovered log end " + std::to_string(rec.redo_end));
    }
  }

  Result<TableId> table = (*db)->FindTable("t");
  std::map<uint64_t, std::set<uint64_t>> groups;  // txn index -> ordinals.
  if (table.ok()) {
    Result<Transaction*> txn = (*db)->Begin();
    if (!txn.ok()) return txn.status();
    Status s = (*db)->Scan(
        *txn, *table, [&](uint32_t slot, Slice rec) -> Status {
          (void)slot;
          if (rec.size() != kRecordSize) {
            return Status::Internal("bad record size");
          }
          uint64_t i = DecodeFixed64(rec.data());
          uint64_t j = DecodeFixed64(rec.data() + 8);
          std::string expect = RecordBytes(i, j);
          if (Slice(expect) != rec) {
            return Status::Internal("record bytes of txn " +
                                    std::to_string(i) + " do not match");
          }
          if (!groups[i].insert(j).second) {
            return Status::Internal("duplicate record " + std::to_string(i) +
                                    "/" + std::to_string(j));
          }
          return Status::OK();
        });
    CWDB_RETURN_IF_ERROR((*db)->Abort(*txn));
    CWDB_RETURN_IF_ERROR(s);
  } else if (require_committed_survive && !committed.empty()) {
    return Status::Internal("table lost despite acked commits");
  }

  // 1. Acked commits are fully present.
  if (require_committed_survive) {
    for (uint64_t i : committed) {
      if (groups.count(i) == 0) {
        return Status::Internal("committed txn " + std::to_string(i) +
                                " lost");
      }
    }
  }
  // 2. All-or-nothing per transaction; no records from transactions that
  // never attempted a commit (the open and the aborted script txns).
  for (const auto& [i, ordinals] : groups) {
    if (ordinals.size() != kRecsPerTxn) {
      return Status::Internal("txn " + std::to_string(i) + " is partial (" +
                              std::to_string(ordinals.size()) + "/" +
                              std::to_string(kRecsPerTxn) + " records)");
    }
    if (committed.count(i) == 0 && attempted.count(i) == 0) {
      return Status::Internal("records of never-committed txn " +
                              std::to_string(i) + " survived");
    }
  }

  // 3. Clean full audit: every stored codeword equals the codeword a
  // from-scratch rebuild of the recovered bytes would produce.
  Result<AuditReport> audit = (*db)->Audit();
  CWDB_RETURN_IF_ERROR(audit.status());
  if (!audit->clean) {
    return Status::Internal("audit found " +
                            std::to_string(audit->ranges.size()) +
                            " corrupt region(s) after recovery");
  }
  // 4. Structural invariants of the recovered image.
  if (!(*db)->VerifyIntegrity().empty()) {
    return Status::Internal("structural integrity violations after recovery");
  }
  return Status::OK();
}

Result<CaseResult> RunCase(const std::string& dir, const CaseSpec& spec) {
  const std::string progress = dir + "/progress.txt";
  CWDB_RETURN_IF_ERROR(MakeDirs(dir));
  pid_t pid = ::fork();
  if (pid < 0) return Status::Internal("fork failed");
  if (pid == 0) RunWorkloadChild(dir, progress, spec);

  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) {
    return Status::Internal("waitpid failed");
  }
  CaseResult result;
  if (!WIFEXITED(status)) {
    return Status::Internal("child died abnormally (signal " +
                            std::to_string(WTERMSIG(status)) + ")");
  }
  result.child_exit = WEXITSTATUS(status);
  result.crashed = result.child_exit == crashpoint::kCrashExitCode;

  using crashpoint::Mode;
  const bool expect_crash =
      spec.mode == Mode::kAbort || spec.mode == Mode::kTornWrite;
  if (expect_crash && !result.crashed) {
    return Status::Internal("point " + spec.point +
                            " never fired (child exit " +
                            std::to_string(result.child_exit) + ")");
  }
  if (!expect_crash && result.child_exit != kDoneExitCode &&
      result.child_exit != kOpenFailExitCode) {
    return Status::Internal("child exit " +
                            std::to_string(result.child_exit) + " for " +
                            spec.point);
  }

  const bool require_committed = spec.mode != Mode::kBitFlip;
  CWDB_RETURN_IF_ERROR(VerifyAfterCrash(dir, progress, require_committed,
                                        /*expect_unclean_box=*/expect_crash,
                                        &result.committed));
  result.detail = spec.point + ": child exit " +
                  std::to_string(result.child_exit) + ", " +
                  std::to_string(result.committed) +
                  " acked commit(s), invariants hold";
  return result;
}

}  // namespace crashharness
}  // namespace cwdb
