#ifndef CWDB_PROTECT_HARDWARE_PROTECTION_H_
#define CWDB_PROTECT_HARDWARE_PROTECTION_H_

#include <map>
#include <memory>
#include <mutex>

#include "protect/protection.h"

namespace cwdb {

/// Hardware (memory-protection) scheme, after Sullivan & Stonebraker [21]
/// and the paper's §3 "Hardware Protection": the image is kept read-only;
/// BeginUpdate mprotects the page(s) being updated writable ("expose page
/// update model") and EndUpdate re-protects them. A wild write outside an
/// exposed window faults, preventing direct physical corruption.
///
/// Overlapping exposures from concurrent updates are handled with a
/// per-page pin count; a page is re-protected when its last exposure ends.
/// The mprotect call and page counters feed the Table 1 / pages-per-op
/// experiments.
class HardwareProtection : public ProtectionManager {
 public:
  static Result<std::unique_ptr<ProtectionManager>> Create(
      const ProtectionOptions& options, DbImage* image,
      MetricsRegistry* metrics = nullptr);

  Status BeginUpdate(DbPtr off, uint32_t len, UpdateHandle* h) override;
  void EndUpdate(const UpdateHandle& h, const uint8_t* before) override;
  void AbortUpdate(const UpdateHandle& h) override;
  Status PrecheckRead(DbPtr, uint32_t) override { return Status::OK(); }
  /// The hardware scheme has no codewords: audits vacuously pass. Direct
  /// corruption is prevented, not detected (Table 2: "Prevent"/"Unneeded").
  Status AuditAll(std::vector<CorruptRange>*) override { return Status::OK(); }
  Status AuditRange(DbPtr, uint64_t, std::vector<CorruptRange>*) override {
    return Status::OK();
  }
  Status ResetFromImage() override { return Status::OK(); }

  Status ExposeAll() override;
  Status ReprotectAll() override;

  bool armed() const { return armed_; }

 private:
  HardwareProtection(const ProtectionOptions& options, DbImage* image,
                     MetricsRegistry* metrics)
      : ProtectionManager(options, image, metrics) {}

  Status ReleasePages(const UpdateHandle& h);

  std::mutex mu_;
  /// OS page index -> number of in-flight updates exposing it.
  std::map<uint64_t, int> exposed_;
  bool armed_ = false;
};

}  // namespace cwdb

#endif  // CWDB_PROTECT_HARDWARE_PROTECTION_H_
