#include "protect/hardware_protection.h"

#include "storage/arena.h"

namespace cwdb {

Result<std::unique_ptr<ProtectionManager>> HardwareProtection::Create(
    const ProtectionOptions& options, DbImage* image,
    MetricsRegistry* metrics) {
  std::unique_ptr<HardwareProtection> p(
      new HardwareProtection(options, image, metrics));
  // The image starts writable (formatting/recovery); the database arms the
  // scheme with ReprotectAll once it is open for business.
  return std::unique_ptr<ProtectionManager>(std::move(p));
}

Status HardwareProtection::BeginUpdate(DbPtr off, uint32_t len,
                                       UpdateHandle* h) {
  h->off = off;
  h->len = len;
  ins_.updates->Add();
  if (!armed_) return Status::OK();
  const uint64_t page_bytes = Arena::OsPageSize();
  uint64_t first = off / page_bytes;
  uint64_t last = (off + (len == 0 ? 0 : len - 1)) / page_bytes;
  std::lock_guard<std::mutex> guard(mu_);
  h->stripes.clear();
  for (uint64_t p = first; p <= last; ++p) {
    h->stripes.push_back(p);
    int& pins = exposed_[p];
    if (pins++ == 0) {
      CWDB_RETURN_IF_ERROR(
          image_->arena()->Protect(p * page_bytes, page_bytes, true));
      ins_.mprotect_calls->Add();
      ins_.pages_unprotected->Add();
    }
  }
  return Status::OK();
}

Status HardwareProtection::ReleasePages(const UpdateHandle& h) {
  if (!armed_) return Status::OK();
  const uint64_t page_bytes = Arena::OsPageSize();
  std::lock_guard<std::mutex> guard(mu_);
  for (uint64_t p : h.stripes) {
    auto it = exposed_.find(p);
    CWDB_CHECK(it != exposed_.end()) << "unbalanced page exposure";
    if (--it->second == 0) {
      exposed_.erase(it);
      CWDB_RETURN_IF_ERROR(
          image_->arena()->Protect(p * page_bytes, page_bytes, false));
      ins_.mprotect_calls->Add();
    }
  }
  return Status::OK();
}

void HardwareProtection::EndUpdate(const UpdateHandle& h, const uint8_t*) {
  Status s = ReleasePages(h);
  CWDB_CHECK(s.ok()) << "reprotect failed: " << s.ToString();
}

void HardwareProtection::AbortUpdate(const UpdateHandle& h) {
  Status s = ReleasePages(h);
  CWDB_CHECK(s.ok()) << "reprotect failed: " << s.ToString();
}

Status HardwareProtection::ExposeAll() {
  std::lock_guard<std::mutex> guard(mu_);
  CWDB_RETURN_IF_ERROR(image_->arena()->Protect(0, image_->size(), true));
  ins_.mprotect_calls->Add();
  exposed_.clear();
  armed_ = false;
  return Status::OK();
}

Status HardwareProtection::ReprotectAll() {
  std::lock_guard<std::mutex> guard(mu_);
  CWDB_RETURN_IF_ERROR(image_->arena()->Protect(0, image_->size(), false));
  ins_.mprotect_calls->Add();
  exposed_.clear();
  armed_ = true;
  return Status::OK();
}

}  // namespace cwdb
