#ifndef CWDB_PROTECT_PROTECTION_H_
#define CWDB_PROTECT_PROTECTION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/codeword.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "protect/options.h"
#include "storage/db_image.h"
#include "storage/layout.h"

namespace cwdb {

class ForensicsRecorder;
class Latch;
enum class IncidentSource : uint8_t;

/// Hook points of the prescribed update interface. The transaction layer
/// calls BeginUpdate / EndUpdate (or AbortUpdate) around every in-place
/// physical update and PrecheckRead before returning read data; the
/// concrete manager implements a protection scheme from the paper.
///
/// Contract: at most one update handle may be outstanding per thread of
/// control, and no PrecheckRead may be issued by a transaction between its
/// own BeginUpdate and EndUpdate (the region latches are not reentrant).
class ProtectionManager {
 public:
  /// Opaque per-update state carried from BeginUpdate to EndUpdate.
  struct UpdateHandle {
    DbPtr off = 0;
    uint32_t len = 0;
    std::vector<size_t> stripes;  ///< Held latch stripes, ascending.
  };

  virtual ~ProtectionManager() = default;

  const ProtectionOptions& options() const { return options_; }
  /// Point-in-time snapshot of the scheme's counters (race-free: the
  /// underlying instruments are sharded atomics on the registry).
  ProtectionStats stats() const;
  /// Zeroes every protect.* counter and histogram on the registry.
  void ResetStats() { metrics_->Reset("protect."); }
  /// The registry this scheme reports into (the owning Database's, or a
  /// private one when constructed standalone).
  MetricsRegistry* metrics() const { return metrics_; }

  /// Called before the bytes of [off, off+len) are modified. Acquires
  /// whatever latches / page permissions the scheme needs.
  virtual Status BeginUpdate(DbPtr off, uint32_t len, UpdateHandle* h) = 0;

  /// Called after the bytes are modified, with the undo image (`before`,
  /// h->len bytes). Performs codeword maintenance and releases latches.
  /// This is the point where the paper's codeword-applied flag is cleared.
  virtual void EndUpdate(const UpdateHandle& h, const uint8_t* before) = 0;

  /// Rollback of an in-flight update: the caller restored the undo image
  /// already; the codeword was never advanced, so only latches / page
  /// permissions are released (paper §3.1: "the undo image for this update
  /// should be applied without updating the codeword").
  virtual void AbortUpdate(const UpdateHandle& h) = 0;

  /// Read Prechecking (§3.1): verifies every region covering [off,
  /// off+len) against its codeword under an exclusive protection latch.
  /// Returns Corruption on mismatch. No-op for non-precheck schemes.
  virtual Status PrecheckRead(DbPtr off, uint32_t len) = 0;

  /// Audits every region of the image (§3.2). Appends failing regions to
  /// *corrupt (may be null to just get the status). Returns Corruption if
  /// any region failed. For schemes without codewords, returns OK.
  virtual Status AuditAll(std::vector<CorruptRange>* corrupt) = 0;

  /// Audits only the regions covering [off, off+len).
  virtual Status AuditRange(DbPtr off, uint64_t len,
                            std::vector<CorruptRange>* corrupt) = 0;

  /// Parallel variant of AuditRange: partitions the covered regions across
  /// up to `width` sweep lanes (capped by the scheme's sweep pool). Same
  /// contract as AuditRange — corrupt ranges arrive in ascending offset
  /// order and stats totals match the sequential pass. Schemes without a
  /// pool fall back to the sequential audit.
  virtual Status AuditRangeParallel(DbPtr off, uint64_t len, size_t width,
                                    std::vector<CorruptRange>* corrupt) {
    (void)width;
    return AuditRange(off, len, corrupt);
  }

  /// Re-derives all protection state from the current image bytes (called
  /// after a checkpoint image is loaded and after recovery writes).
  virtual Status ResetFromImage() = 0;

  /// Recomputes only the codewords of the regions covering [off, off+len)
  /// from the image bytes (cache recovery after a region repair; other
  /// regions keep their detection state). Default no-op.
  virtual Status RecomputeRegions(DbPtr off, uint64_t len) {
    (void)off;
    (void)len;
    return Status::OK();
  }

  /// Hardware scheme: temporarily make the whole image writable (recovery,
  /// checkpoint load, fault injection harness teardown). No-op otherwise.
  virtual Status ExposeAll() { return Status::OK(); }
  /// Re-arm protection after ExposeAll.
  virtual Status ReprotectAll() { return Status::OK(); }

  /// Bytes of memory the scheme spends outside the image (codeword table).
  virtual uint64_t SpaceOverheadBytes() const { return 0; }

  /// Forensics probe: for the protection region containing `off`, reports
  /// the stored codeword and the codeword recomputed from the current image
  /// bytes (their XOR is the corruption delta a dossier records). Returns
  /// false for schemes that keep no codeword table. Takes the region's
  /// protection latch exclusively (the auditor's consistent-snapshot
  /// protocol); must not be called while holding it.
  virtual bool RegionCodewords(DbPtr off, codeword_t* stored,
                               codeword_t* computed) {
    (void)off;
    (void)stored;
    (void)computed;
    return false;
  }

  /// Detection paths inside the scheme (read prechecks) file incident
  /// dossiers here when set. Owned by the Database; may be null.
  void set_forensics(ForensicsRecorder* forensics) { forensics_ = forensics; }
  ForensicsRecorder* forensics() const { return forensics_; }

  /// What one in-place repair attempt did. `repair_deltas[i]` is the XOR of
  /// `repaired[i]`'s codeword before and after reconstruction — the
  /// codeword-space image of the corruption the repair removed.
  struct RepairOutcome {
    std::vector<CorruptRange> repaired;    ///< Ascending offset order.
    std::vector<CorruptRange> unrepaired;  ///< Beyond the correction budget.
    std::vector<codeword_t> repair_deltas; ///< Parallel to `repaired`.
  };

  /// The linked dossier pair one RepairWithForensics call files.
  struct RepairEpisode {
    uint64_t detection_incident = 0;  ///< Dossier of the bytes as found.
    uint64_t repair_incident = 0;     ///< kRepair dossier (0 = none filed).
    RepairOutcome outcome;
    bool fully_repaired = false;
  };

  /// Engine latches a live repair must respect, installed by the owning
  /// Database. The checkpoint latch (taken shared) orders the repair's
  /// image write against the checkpointer's exclusive copy phase, exactly
  /// like a prescribed update window. Null entries are skipped — standalone
  /// managers (tests, cwdb_ctl cold images) repair without them.
  struct RepairHooks {
    Latch* checkpoint_latch = nullptr;
  };
  void set_repair_hooks(const RepairHooks& hooks) { repair_hooks_ = hooks; }

  /// True when the scheme maintains an error-correcting parity tier and can
  /// attempt in-place reconstruction of flagged regions.
  virtual bool CanRepair() const { return false; }

  /// Attempts in-place reconstruction of the given corrupt ranges. Every
  /// input range lands in outcome->repaired or outcome->unrepaired; image
  /// bytes are only modified for repaired ranges, and only with
  /// reconstructions that re-verified against the stored codeword. Default:
  /// nothing is repairable.
  virtual Status TryRepair(const std::vector<CorruptRange>& ranges,
                           RepairOutcome* outcome) {
    outcome->unrepaired = ranges;
    return Status::OK();
  }

  /// Serializes the codeword table + parity columns into the checkpoint
  /// sidecar format (protect/parity_repair.h), stamped with `ck_end`.
  /// Returns false when the scheme keeps no parity tier. Caller must hold
  /// the checkpoint latch exclusively (the copy phase), which quiesces
  /// every update window.
  virtual bool SnapshotSidecar(uint64_t ck_end, std::string* blob) {
    (void)ck_end;
    (void)blob;
    return false;
  }

  /// The detect→locate→repair driver every detection path funnels through:
  /// files a detection dossier for `ranges` *before* touching the bytes
  /// (the dossier's hexdump is the only record of the corrupt state), runs
  /// TryRepair, and files a linked kRepair dossier for whatever was
  /// reconstructed. Returns true when every range was repaired — the caller
  /// may then proceed as if the corruption never happened; false means fall
  /// back to delete-transaction recovery with episode->outcome.unrepaired.
  /// `episode` may be null.
  bool RepairWithForensics(IncidentSource source, uint64_t lsn,
                           uint64_t last_clean_audit_lsn,
                           const std::vector<CorruptRange>& ranges,
                           std::string_view detail, RepairEpisode* episode);

  /// Recomputes the codeword of the bytes at [off, off+len) in `image`
  /// *without* consulting the stored table — used by recovery to evaluate
  /// logged read checksums against a recovered image. Folds from lane 0.
  static codeword_t ChecksumBytes(const DbImage& image, DbPtr off,
                                  uint32_t len);

  /// Creates the manager for `options.scheme`, reporting into `metrics`
  /// (nullptr = a private registry, for standalone construction).
  static Result<std::unique_ptr<ProtectionManager>> Create(
      const ProtectionOptions& options, DbImage* image,
      MetricsRegistry* metrics = nullptr);

 protected:
  /// Hot-path instruments, resolved once at construction.
  struct Instruments {
    Counter* updates;
    Counter* codeword_folds;
    Counter* prechecks;
    Counter* precheck_failures;
    Counter* regions_audited;
    Counter* audit_failures;
    Counter* mprotect_calls;
    Counter* pages_unprotected;
    Histogram* fold_latency_ns;      ///< Sampled 1-in-64.
    Histogram* precheck_latency_ns;  ///< Sampled 1-in-64.
    Counter* repair_attempts;        ///< RepairWithForensics invocations.
    Counter* repair_success;         ///< Regions reconstructed in place.
    Counter* repair_failed;          ///< Regions beyond the budget.
    Histogram* repair_latency_ns;    ///< Per TryRepair call.
  };

  ProtectionManager(const ProtectionOptions& options, DbImage* image,
                    MetricsRegistry* metrics);

  ProtectionOptions options_;
  DbImage* image_;
  std::unique_ptr<MetricsRegistry> own_metrics_;
  MetricsRegistry* metrics_;
  ForensicsRecorder* forensics_ = nullptr;
  RepairHooks repair_hooks_;
  Instruments ins_;
};

}  // namespace cwdb

#endif  // CWDB_PROTECT_PROTECTION_H_
