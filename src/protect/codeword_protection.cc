#include "protect/codeword_protection.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>

#include "obs/forensics.h"

// The optimistic (seqlock-validated) read path races plain image loads
// against concurrent updaters by design; the epoch check discards every
// torn result. ThreadSanitizer has no way to see that reasoning, so the
// optimistic path is compiled out under TSan and prechecks always take the
// protection latch there.
#if defined(__SANITIZE_THREAD__)
#define CWDB_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CWDB_TSAN_ENABLED 1
#endif
#endif
#ifndef CWDB_TSAN_ENABLED
#define CWDB_TSAN_ENABLED 0
#endif

namespace cwdb {

namespace {

/// Optimistic verify attempts before giving up and taking the latch.
constexpr int kValidatedReadAttempts = 4;

}  // namespace

CodewordProtection::CodewordProtection(const ProtectionOptions& options,
                                       DbImage* image,
                                       MetricsRegistry* metrics)
    : ProtectionManager(options, image, metrics),
      exclusive_updates_(options.PrechecksReads()),
      region_shift_(std::countr_zero(options.region_size)),
      shard_map_(image->size(), options.shards,
                 std::max<uint64_t>(options.shard_align, options.region_size)) {
  size_t n = shard_map_.shard_count();
  stripes_per_shard_ =
      std::bit_floor(std::max<size_t>(1, options.latch_stripes / n));
  shards_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    auto sh = std::make_unique<Shard>(shard_map_.ShardStart(s),
                                      shard_map_.ShardLen(s),
                                      options.region_size, stripes_per_shard_);
    char name[48];
    std::snprintf(name, sizeof(name), "protect.shard%zu.updates", s);
    sh->updates = metrics_->counter(name);
    std::snprintf(name, sizeof(name), "protect.shard%zu.prechecks", s);
    sh->prechecks = metrics_->counter(name);
    shards_.push_back(std::move(sh));
  }
  validated_reads_ = metrics_->counter("protect.validated_reads");
  validated_fallbacks_ = metrics_->counter("protect.validated_fallbacks");
  if (options.parity_group_regions >= 2) {
    parity_ = std::make_unique<ParityTier>(shard_map_, options.region_size,
                                           options.parity_group_regions);
  }
}

Result<std::unique_ptr<ProtectionManager>> CodewordProtection::Create(
    const ProtectionOptions& options, DbImage* image,
    MetricsRegistry* metrics) {
  if (options.region_size < 8 ||
      (options.region_size & (options.region_size - 1)) != 0) {
    return Status::InvalidArgument("region size must be a power of two >= 8");
  }
  if (image->size() % options.region_size != 0) {
    return Status::InvalidArgument("arena size not a multiple of region size");
  }
  if (options.shard_align != 0 &&
      (options.shard_align & (options.shard_align - 1)) != 0) {
    return Status::InvalidArgument("shard alignment must be a power of two");
  }
  std::unique_ptr<CodewordProtection> p(
      new CodewordProtection(options, image, metrics));
  p->RebuildAllShards();
  return std::unique_ptr<ProtectionManager>(std::move(p));
}

void CodewordProtection::RebuildAllShards() {
  // Each shard's table covers a disjoint slice; the pool (when any)
  // partitions within a shard, so lanes still write disjoint slots.
  ThreadPool* pool = sweep_pool();
  for (auto& sh : shards_) {
    sh->codewords.RebuildAll(image_->base(), pool);
  }
  if (parity_ != nullptr) parity_->RebuildAll(image_->base());
}

uint64_t CodewordProtection::SpaceOverheadBytes() const {
  uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->codewords.space_overhead_bytes();
  if (parity_ != nullptr) total += parity_->space_overhead_bytes();
  return total;
}

ThreadPool* CodewordProtection::sweep_pool() {
  size_t lanes = EffectiveConcurrency(options_.sweep_threads);
  if (lanes <= 1) return nullptr;
  std::call_once(sweep_pool_once_, [&] {
    sweep_pool_ = std::make_unique<ThreadPool>(lanes);
  });
  return sweep_pool_.get();
}

void CodewordProtection::StripesFor(DbPtr off, uint32_t len,
                                    std::vector<size_t>* stripes) const {
  uint64_t first = RegionOf(off);
  uint64_t last = RegionOf(off + (len == 0 ? 0 : len - 1));
  stripes->clear();
  for (uint64_t r = first; r <= last; ++r) {
    stripes->push_back(StripeOfRegion(r));
  }
  std::sort(stripes->begin(), stripes->end());
  stripes->erase(std::unique(stripes->begin(), stripes->end()),
                 stripes->end());
}

Status CodewordProtection::BeginUpdate(DbPtr off, uint32_t len,
                                       UpdateHandle* h) {
  h->off = off;
  h->len = len;
  StripesFor(off, len, &h->stripes);
  for (size_t s : h->stripes) {
    if (exclusive_updates_) {
      ProtectionLatchAt(s).LockExclusive();
      // Odd epoch = update in flight: optimistic readers of this stripe
      // back off or retry (the latch alone is invisible to them).
      EpochAt(s).fetch_add(1, std::memory_order_release);
    } else {
      ProtectionLatchAt(s).LockShared();
    }
  }
  ins_.updates->Add();
  shards_[shard_map_.ShardOf(off)]->updates->Add();
  return Status::OK();
}

void CodewordProtection::EndUpdate(const UpdateHandle& h,
                                   const uint8_t* before) {
  // Codeword maintenance from the undo image and the current bytes
  // (paper §3.1). Under exclusive updates the protection latch already
  // serializes us; otherwise take the codeword latches for the brief fold.
  // Fold latency is sampled 1-in-64 so the clock reads stay off most
  // updates (a fold of a few hundred bytes costs about as much as one
  // clock call).
  thread_local uint32_t fold_sample = 0;
  const bool timed = (fold_sample++ & 63) == 0;
  const uint64_t t0 = timed ? NowNs() : 0;
  if (!exclusive_updates_) {
    for (size_t s : h.stripes) CodewordLatchAt(s).LockExclusive();
  }
  // A physical update may cross a shard boundary (spans are page/region
  // aligned, update ranges are not); fold each shard's slice into its own
  // table.
  DbPtr pos = h.off;
  const uint8_t* undo = before;
  uint32_t remaining = h.len;
  while (remaining > 0) {
    size_t s = shard_map_.ShardOf(pos);
    uint64_t shard_end = shard_map_.ShardStart(s) + shard_map_.ShardLen(s);
    uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(remaining, shard_end - pos));
    shards_[s]->codewords.ApplyDelta(pos, undo, image_->At(pos), chunk);
    // The same delta feeds the parity column — the write path's entire
    // cost for the error-correcting tier is this one extra fold.
    if (parity_ != nullptr) {
      parity_->ApplyDelta(pos, undo, image_->At(pos), chunk);
    }
    pos += chunk;
    undo += chunk;
    remaining -= chunk;
  }
  ins_.codeword_folds->Add();
  if (timed) ins_.fold_latency_ns->Record(NowNs() - t0);
  if (!exclusive_updates_) {
    for (auto it = h.stripes.rbegin(); it != h.stripes.rend(); ++it) {
      CodewordLatchAt(*it).UnlockExclusive();
    }
  }
  for (auto it = h.stripes.rbegin(); it != h.stripes.rend(); ++it) {
    if (exclusive_updates_) {
      // Even epoch again — bytes and codeword are consistent from here on.
      EpochAt(*it).fetch_add(1, std::memory_order_release);
      ProtectionLatchAt(*it).UnlockExclusive();
    } else {
      ProtectionLatchAt(*it).UnlockShared();
    }
  }
}

void CodewordProtection::AbortUpdate(const UpdateHandle& h) {
  // The caller restored the undo image; the codeword still describes that
  // image (it is only advanced at EndUpdate), so just release latches.
  for (auto it = h.stripes.rbegin(); it != h.stripes.rend(); ++it) {
    if (exclusive_updates_) {
      EpochAt(*it).fetch_add(1, std::memory_order_release);
      ProtectionLatchAt(*it).UnlockExclusive();
    } else {
      ProtectionLatchAt(*it).UnlockShared();
    }
  }
}

bool CodewordProtection::RegionCleanForRead(uint64_t region) {
  size_t stripe = StripeOfRegion(region);
#if !CWDB_TSAN_ENABLED
  // Optimistic path: verify against the codeword with no latch, accept the
  // verdict only if the stripe's epoch was even (no updater) and unchanged
  // across the whole verify. A torn read can produce a bogus verdict, but
  // the epoch check then rejects it, so correctness never depends on the
  // racy loads.
  std::atomic<uint64_t>& epoch = EpochAt(stripe);
  for (int attempt = 0; attempt < kValidatedReadAttempts; ++attempt) {
    uint64_t e1 = epoch.load(std::memory_order_acquire);
    if ((e1 & 1) == 0) {
      bool ok = VerifyRegion(region);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (epoch.load(std::memory_order_relaxed) == e1) {
        validated_reads_->Add();
        return ok;
      }
    }
    std::this_thread::yield();
  }
  validated_fallbacks_->Add();
#endif
  ExclusiveGuard guard(ProtectionLatchAt(stripe));
  return VerifyRegion(region);
}

Status CodewordProtection::PrecheckRead(DbPtr off, uint32_t len) {
  if (!options_.PrechecksReads()) return Status::OK();
  uint64_t first = RegionOf(off);
  uint64_t last = RegionOf(off + (len == 0 ? 0 : len - 1));
  thread_local uint32_t precheck_sample = 0;
  const bool timed = (precheck_sample++ & 63) == 0;
  const uint64_t t0 = timed ? NowNs() : 0;
  for (uint64_t r = first; r <= last; ++r) {
    ins_.prechecks->Add();
    shards_[ShardOfRegion(r)]->prechecks->Add();
    if (RegionCleanForRead(r)) continue;
    // Read-time detection (§3.1). Stamp the detection for latency
    // accounting and the flight recorder, then try to make the read
    // succeed anyway: reconstruct the region from its parity group and
    // re-verify. The dossier pair (detection + kRepair) is filed by
    // RepairWithForensics after the latches are released — the dossier's
    // codeword probe re-takes the failing region's latch.
    metrics_->NoteDetection(off, len);
    metrics_->trace().Record(TraceEventType::kPrecheckFailed, 0, off, len,
                             ShardOfRegion(r));
    char detail[128];
    std::snprintf(detail, sizeof(detail),
                  "read precheck refused read of [%" PRIu64
                  ",+%u); attempting parity repair",
                  static_cast<uint64_t>(off), len);
    std::vector<CorruptRange> ranges{
        CorruptRange{RegionStart(r), options_.region_size}};
    if (RepairWithForensics(IncidentSource::kReadPrecheck, /*lsn=*/0,
                            /*last_clean_audit_lsn=*/0, ranges, detail,
                            nullptr) &&
        RegionCleanForRead(r)) {
      continue;  // Repaired in place: the read proceeds transparently.
    }
    // Beyond the correction budget: the read is refused before corrupt
    // data can reach the transaction.
    ins_.precheck_failures->Add();
    if (timed) ins_.precheck_latency_ns->Record(NowNs() - t0);
    return Status::Corruption("read precheck failed: codeword mismatch");
  }
  if (timed) ins_.precheck_latency_ns->Record(NowNs() - t0);
  return Status::OK();
}

bool CodewordProtection::RegionCodewords(DbPtr off, codeword_t* stored,
                                         codeword_t* computed) {
  uint64_t region = RegionOf(off);
  ExclusiveGuard guard(ProtectionLatchAt(StripeOfRegion(region)));
  const CodewordTable& table = TableForRegion(region);
  *stored = table.Get(region);
  *computed = table.ComputeFromImage(image_->base(), region);
  return true;
}

void CodewordProtection::AuditSpan(uint64_t first, uint64_t last,
                                   std::vector<CorruptRange>* corrupt,
                                   SweepCounts* counts) {
  for (uint64_t r = first; r <= last; ++r) {
    // Exclusive protection latch per region: the paper's consistent
    // (region, codeword) snapshot for the audit (§3.2). Holding at most
    // one latch at a time keeps concurrent sweep lanes deadlock-free even
    // when striping maps their regions onto the same latch.
    ExclusiveGuard guard(ProtectionLatchAt(StripeOfRegion(r)));
    ++counts->audited;
    if (!VerifyRegion(r)) {
      ++counts->failures;
      corrupt->push_back(CorruptRange{RegionStart(r), options_.region_size});
    }
  }
}

Status CodewordProtection::AuditRegions(DbPtr off, uint64_t len, size_t width,
                                        std::vector<CorruptRange>* corrupt) {
  if (len == 0) return Status::OK();
  uint64_t first = RegionOf(off);
  uint64_t last = RegionOf(off + len - 1);
  uint64_t n = last - first + 1;

  SweepCounts total;
  std::vector<CorruptRange> found;
  ThreadPool* pool = width > 1 ? sweep_pool() : nullptr;
  if (pool != nullptr && n > 1) {
    std::mutex merge_mu;
    pool->ParallelFor(n, width, [&](uint64_t begin, uint64_t end) {
      std::vector<CorruptRange> local;
      SweepCounts counts;
      AuditSpan(first + begin, first + end - 1, &local, &counts);
      std::lock_guard<std::mutex> guard(merge_mu);
      found.insert(found.end(), local.begin(), local.end());
      total.audited += counts.audited;
      total.failures += counts.failures;
    });
    // Lanes finish out of order; restore the sequential report order.
    std::sort(found.begin(), found.end(),
              [](const CorruptRange& a, const CorruptRange& b) {
                return a.off < b.off;
              });
  } else {
    AuditSpan(first, last, &found, &total);
  }
  // One merged stats update per sweep keeps the per-region loop free of
  // shared-counter traffic even though the instruments are atomic.
  ins_.regions_audited->Add(total.audited);
  ins_.audit_failures->Add(total.failures);
  if (corrupt != nullptr) {
    corrupt->insert(corrupt->end(), found.begin(), found.end());
  }
  if (total.failures != 0) {
    return Status::Corruption("audit found codeword mismatches");
  }
  return Status::OK();
}

Status CodewordProtection::AuditRange(DbPtr off, uint64_t len,
                                      std::vector<CorruptRange>* corrupt) {
  return AuditRegions(off, len, 1, corrupt);
}

Status CodewordProtection::AuditRangeParallel(
    DbPtr off, uint64_t len, size_t width,
    std::vector<CorruptRange>* corrupt) {
  return AuditRegions(off, len, EffectiveConcurrency(width), corrupt);
}

Status CodewordProtection::AuditAll(std::vector<CorruptRange>* corrupt) {
  return AuditRegions(0, image_->size(),
                      EffectiveConcurrency(options_.sweep_threads), corrupt);
}

Status CodewordProtection::ResetFromImage() {
  RebuildAllShards();
  return Status::OK();
}

Status CodewordProtection::RecomputeRegions(DbPtr off, uint64_t len) {
  if (len == 0) return Status::OK();
  uint64_t first = RegionOf(off);
  uint64_t last = RegionOf(off + len - 1);
  for (uint64_t r = first; r <= last; ++r) {
    size_t stripe = StripeOfRegion(r);
    ExclusiveGuard guard(ProtectionLatchAt(stripe));
    // Epoch bump: an optimistic reader must not validate against a
    // codeword this repair is in the middle of rewriting.
    if (exclusive_updates_) {
      EpochAt(stripe).fetch_add(1, std::memory_order_release);
    }
    CodewordTable& table = TableForRegion(r);
    table.Set(r, table.ComputeFromImage(image_->base(), r));
    if (exclusive_updates_) {
      EpochAt(stripe).fetch_add(1, std::memory_order_release);
    }
  }
  // The parity columns describe the same bytes the codewords do; an
  // out-of-band image write (cache recovery) invalidates both.
  if (parity_ != nullptr) parity_->RecomputeGroups(image_->base(), off, len);
  return Status::OK();
}

bool CodewordProtection::RepairRegionInPlace(uint64_t region,
                                             codeword_t* delta) {
  std::vector<uint64_t> members;
  parity_->GroupMembers(region, &members);
  // Every member's protection latch, exclusive, ascending global stripe
  // order (the update path's own discipline, so this composes with it).
  std::vector<size_t> stripes;
  stripes.reserve(members.size());
  for (uint64_t m : members) stripes.push_back(StripeOfRegion(m));
  std::sort(stripes.begin(), stripes.end());
  stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());
  for (size_t s : stripes) ProtectionLatchAt(s).LockExclusive();

  bool ok = false;
  do {
    bool region_bad = false;
    uint64_t others_bad = 0;
    for (uint64_t m : members) {
      if (!VerifyRegion(m)) {
        if (m == region) {
          region_bad = true;
        } else {
          ++others_bad;
        }
      }
    }
    if (!region_bad && others_bad == 0) {
      // Raced with another repairer, or the flag was stale: already clean.
      *delta = 0;
      ok = true;
      break;
    }
    if (others_bad != 0) break;  // >= 2 corrupt regions: budget exceeded.
    std::vector<uint8_t> recon(options_.region_size);
    parity_->ReconstructRegion(image_->base(), region, recon.data());
    CodewordTable& table = TableForRegion(region);
    const codeword_t stored = table.Get(region);
    if (CodewordCompute(recon.data(), options_.region_size) != stored) {
      // The reconstruction fails the locator: the parity column itself is
      // damaged (or a second, codeword-canceling corruption hides in the
      // group). Fall back rather than write unverified bytes.
      break;
    }
    const codeword_t computed = table.ComputeFromImage(image_->base(), region);
    const size_t stripe = StripeOfRegion(region);
    if (exclusive_updates_) {
      // Odd epoch while the bytes are in flux, exactly like an update
      // window, so optimistic prechecks discard what they saw.
      EpochAt(stripe).fetch_add(1, std::memory_order_release);
    }
    std::memcpy(image_->base() + RegionStart(region), recon.data(),
                options_.region_size);
    if (exclusive_updates_) {
      EpochAt(stripe).fetch_add(1, std::memory_order_release);
    }
    // The stored codeword and the parity column both already describe the
    // restored bytes — neither needs a write. The image does: the repair
    // must reach the next checkpoint.
    image_->MarkDirty(RegionStart(region), options_.region_size);
    *delta = computed ^ stored;
    ok = true;
  } while (false);

  for (auto it = stripes.rbegin(); it != stripes.rend(); ++it) {
    ProtectionLatchAt(*it).UnlockExclusive();
  }
  return ok;
}

Status CodewordProtection::TryRepair(const std::vector<CorruptRange>& ranges,
                                     RepairOutcome* outcome) {
  if (parity_ == nullptr) {
    outcome->unrepaired = ranges;
    return Status::OK();
  }
  // A repair writes image bytes, so it must order against the
  // checkpointer's copy phase like any prescribed update window does.
  Latch* ck = repair_hooks_.checkpoint_latch;
  if (ck != nullptr) ck->LockShared();
  std::vector<uint64_t> regions;
  for (const CorruptRange& range : ranges) {
    if (range.len == 0) continue;
    uint64_t first = RegionOf(range.off);
    uint64_t last = RegionOf(range.off + range.len - 1);
    for (uint64_t r = first; r <= last; ++r) regions.push_back(r);
  }
  std::sort(regions.begin(), regions.end());
  regions.erase(std::unique(regions.begin(), regions.end()), regions.end());
  for (uint64_t r : regions) {
    codeword_t delta = 0;
    if (RepairRegionInPlace(r, &delta)) {
      outcome->repaired.push_back(
          CorruptRange{RegionStart(r), options_.region_size});
      outcome->repair_deltas.push_back(delta);
    } else {
      outcome->unrepaired.push_back(
          CorruptRange{RegionStart(r), options_.region_size});
    }
  }
  if (ck != nullptr) ck->UnlockShared();
  return Status::OK();
}

bool CodewordProtection::SnapshotSidecar(uint64_t ck_end, std::string* blob) {
  if (parity_ == nullptr) return false;
  ParitySidecar s;
  s.ck_end = ck_end;
  s.arena_size = image_->size();
  s.region_size = options_.region_size;
  s.group_regions = parity_->group_regions();
  for (size_t i = 0; i < shard_map_.shard_count(); ++i) {
    s.shards.emplace_back(shard_map_.ShardStart(i), shard_map_.ShardLen(i));
  }
  const uint64_t region_count = image_->size() >> region_shift_;
  s.codewords.resize(region_count);
  for (uint64_t r = 0; r < region_count; ++r) {
    s.codewords[r] = TableForRegion(r).Get(r);
  }
  parity_->AppendColumns(&s.columns);
  *blob = EncodeParitySidecar(s);
  return true;
}

}  // namespace cwdb
