#include "protect/codeword_protection.h"

#include <algorithm>

namespace cwdb {

CodewordProtection::CodewordProtection(const ProtectionOptions& options,
                                       DbImage* image)
    : ProtectionManager(options, image),
      exclusive_updates_(options.PrechecksReads()),
      codewords_(image->size(), options.region_size),
      protection_latches_(options.latch_stripes),
      codeword_latches_(options.latch_stripes) {}

Result<std::unique_ptr<ProtectionManager>> CodewordProtection::Create(
    const ProtectionOptions& options, DbImage* image) {
  if (options.region_size < 8 ||
      (options.region_size & (options.region_size - 1)) != 0) {
    return Status::InvalidArgument("region size must be a power of two >= 8");
  }
  if (image->size() % options.region_size != 0) {
    return Status::InvalidArgument("arena size not a multiple of region size");
  }
  std::unique_ptr<CodewordProtection> p(
      new CodewordProtection(options, image));
  p->codewords_.RebuildAll(image->base());
  return std::unique_ptr<ProtectionManager>(std::move(p));
}

void CodewordProtection::StripesFor(DbPtr off, uint32_t len,
                                    std::vector<size_t>* stripes) const {
  uint64_t first = codewords_.RegionOf(off);
  uint64_t last = codewords_.RegionOf(off + (len == 0 ? 0 : len - 1));
  stripes->clear();
  for (uint64_t r = first; r <= last; ++r) {
    stripes->push_back(protection_latches_.StripeOf(r));
  }
  std::sort(stripes->begin(), stripes->end());
  stripes->erase(std::unique(stripes->begin(), stripes->end()),
                 stripes->end());
}

Status CodewordProtection::BeginUpdate(DbPtr off, uint32_t len,
                                       UpdateHandle* h) {
  h->off = off;
  h->len = len;
  StripesFor(off, len, &h->stripes);
  for (size_t s : h->stripes) {
    if (exclusive_updates_) {
      protection_latches_.LatchAt(s).LockExclusive();
    } else {
      protection_latches_.LatchAt(s).LockShared();
    }
  }
  ++stats_.updates;
  return Status::OK();
}

void CodewordProtection::EndUpdate(const UpdateHandle& h,
                                   const uint8_t* before) {
  // Codeword maintenance from the undo image and the current bytes
  // (paper §3.1). Under exclusive updates the protection latch already
  // serializes us; otherwise take the codeword latches for the brief fold.
  if (!exclusive_updates_) {
    for (size_t s : h.stripes) codeword_latches_.LatchAt(s).LockExclusive();
  }
  codewords_.ApplyDelta(h.off, before, image_->At(h.off), h.len);
  ++stats_.codeword_folds;
  if (!exclusive_updates_) {
    for (auto it = h.stripes.rbegin(); it != h.stripes.rend(); ++it) {
      codeword_latches_.LatchAt(*it).UnlockExclusive();
    }
  }
  for (auto it = h.stripes.rbegin(); it != h.stripes.rend(); ++it) {
    if (exclusive_updates_) {
      protection_latches_.LatchAt(*it).UnlockExclusive();
    } else {
      protection_latches_.LatchAt(*it).UnlockShared();
    }
  }
}

void CodewordProtection::AbortUpdate(const UpdateHandle& h) {
  // The caller restored the undo image; the codeword still describes that
  // image (it is only advanced at EndUpdate), so just release latches.
  for (auto it = h.stripes.rbegin(); it != h.stripes.rend(); ++it) {
    if (exclusive_updates_) {
      protection_latches_.LatchAt(*it).UnlockExclusive();
    } else {
      protection_latches_.LatchAt(*it).UnlockShared();
    }
  }
}

Status CodewordProtection::PrecheckRead(DbPtr off, uint32_t len) {
  if (!options_.PrechecksReads()) return Status::OK();
  uint64_t first = codewords_.RegionOf(off);
  uint64_t last = codewords_.RegionOf(off + (len == 0 ? 0 : len - 1));
  thread_local std::vector<size_t> stripes;  // Reused: no hot-path alloc.
  StripesFor(off, len, &stripes);
  for (size_t s : stripes) protection_latches_.LatchAt(s).LockExclusive();
  bool clean = true;
  for (uint64_t r = first; r <= last; ++r) {
    ++stats_.prechecks;
    if (!VerifyRegionLocked(r)) {
      clean = false;
      break;
    }
  }
  for (auto it = stripes.rbegin(); it != stripes.rend(); ++it) {
    protection_latches_.LatchAt(*it).UnlockExclusive();
  }
  if (!clean) {
    return Status::Corruption("read precheck failed: codeword mismatch");
  }
  return Status::OK();
}

Status CodewordProtection::AuditRange(DbPtr off, uint64_t len,
                                      std::vector<CorruptRange>* corrupt) {
  if (len == 0) return Status::OK();
  uint64_t first = codewords_.RegionOf(off);
  uint64_t last = codewords_.RegionOf(off + len - 1);
  bool clean = true;
  for (uint64_t r = first; r <= last; ++r) {
    // Exclusive protection latch per region: the paper's consistent
    // (region, codeword) snapshot for the audit (§3.2).
    size_t s = protection_latches_.StripeOf(r);
    ExclusiveGuard guard(protection_latches_.LatchAt(s));
    ++stats_.regions_audited;
    if (!VerifyRegionLocked(r)) {
      clean = false;
      ++stats_.audit_failures;
      if (corrupt != nullptr) {
        corrupt->push_back(
            CorruptRange{codewords_.RegionStart(r), codewords_.region_size()});
      }
    }
  }
  if (!clean) return Status::Corruption("audit found codeword mismatches");
  return Status::OK();
}

Status CodewordProtection::AuditAll(std::vector<CorruptRange>* corrupt) {
  return AuditRange(0, image_->size(), corrupt);
}

Status CodewordProtection::ResetFromImage() {
  codewords_.RebuildAll(image_->base());
  return Status::OK();
}

Status CodewordProtection::RecomputeRegions(DbPtr off, uint64_t len) {
  if (len == 0) return Status::OK();
  uint64_t first = codewords_.RegionOf(off);
  uint64_t last = codewords_.RegionOf(off + len - 1);
  for (uint64_t r = first; r <= last; ++r) {
    size_t s = protection_latches_.StripeOf(r);
    ExclusiveGuard guard(protection_latches_.LatchAt(s));
    codewords_.Set(r, codewords_.ComputeFromImage(image_->base(), r));
  }
  return Status::OK();
}

}  // namespace cwdb
