#include "protect/codeword_protection.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/forensics.h"

namespace cwdb {

CodewordProtection::CodewordProtection(const ProtectionOptions& options,
                                       DbImage* image,
                                       MetricsRegistry* metrics)
    : ProtectionManager(options, image, metrics),
      exclusive_updates_(options.PrechecksReads()),
      codewords_(image->size(), options.region_size),
      protection_latches_(options.latch_stripes),
      codeword_latches_(options.latch_stripes) {}

Result<std::unique_ptr<ProtectionManager>> CodewordProtection::Create(
    const ProtectionOptions& options, DbImage* image,
    MetricsRegistry* metrics) {
  if (options.region_size < 8 ||
      (options.region_size & (options.region_size - 1)) != 0) {
    return Status::InvalidArgument("region size must be a power of two >= 8");
  }
  if (image->size() % options.region_size != 0) {
    return Status::InvalidArgument("arena size not a multiple of region size");
  }
  std::unique_ptr<CodewordProtection> p(
      new CodewordProtection(options, image, metrics));
  p->codewords_.RebuildAll(image->base(), p->sweep_pool());
  return std::unique_ptr<ProtectionManager>(std::move(p));
}

ThreadPool* CodewordProtection::sweep_pool() {
  size_t lanes = EffectiveConcurrency(options_.sweep_threads);
  if (lanes <= 1) return nullptr;
  std::call_once(sweep_pool_once_, [&] {
    sweep_pool_ = std::make_unique<ThreadPool>(lanes);
  });
  return sweep_pool_.get();
}

void CodewordProtection::StripesFor(DbPtr off, uint32_t len,
                                    std::vector<size_t>* stripes) const {
  uint64_t first = codewords_.RegionOf(off);
  uint64_t last = codewords_.RegionOf(off + (len == 0 ? 0 : len - 1));
  stripes->clear();
  for (uint64_t r = first; r <= last; ++r) {
    stripes->push_back(protection_latches_.StripeOf(r));
  }
  std::sort(stripes->begin(), stripes->end());
  stripes->erase(std::unique(stripes->begin(), stripes->end()),
                 stripes->end());
}

Status CodewordProtection::BeginUpdate(DbPtr off, uint32_t len,
                                       UpdateHandle* h) {
  h->off = off;
  h->len = len;
  StripesFor(off, len, &h->stripes);
  for (size_t s : h->stripes) {
    if (exclusive_updates_) {
      protection_latches_.LatchAt(s).LockExclusive();
    } else {
      protection_latches_.LatchAt(s).LockShared();
    }
  }
  ins_.updates->Add();
  return Status::OK();
}

void CodewordProtection::EndUpdate(const UpdateHandle& h,
                                   const uint8_t* before) {
  // Codeword maintenance from the undo image and the current bytes
  // (paper §3.1). Under exclusive updates the protection latch already
  // serializes us; otherwise take the codeword latches for the brief fold.
  // Fold latency is sampled 1-in-64 so the clock reads stay off most
  // updates (a fold of a few hundred bytes costs about as much as one
  // clock call).
  thread_local uint32_t fold_sample = 0;
  const bool timed = (fold_sample++ & 63) == 0;
  const uint64_t t0 = timed ? NowNs() : 0;
  if (!exclusive_updates_) {
    for (size_t s : h.stripes) codeword_latches_.LatchAt(s).LockExclusive();
  }
  codewords_.ApplyDelta(h.off, before, image_->At(h.off), h.len);
  ins_.codeword_folds->Add();
  if (timed) ins_.fold_latency_ns->Record(NowNs() - t0);
  if (!exclusive_updates_) {
    for (auto it = h.stripes.rbegin(); it != h.stripes.rend(); ++it) {
      codeword_latches_.LatchAt(*it).UnlockExclusive();
    }
  }
  for (auto it = h.stripes.rbegin(); it != h.stripes.rend(); ++it) {
    if (exclusive_updates_) {
      protection_latches_.LatchAt(*it).UnlockExclusive();
    } else {
      protection_latches_.LatchAt(*it).UnlockShared();
    }
  }
}

void CodewordProtection::AbortUpdate(const UpdateHandle& h) {
  // The caller restored the undo image; the codeword still describes that
  // image (it is only advanced at EndUpdate), so just release latches.
  for (auto it = h.stripes.rbegin(); it != h.stripes.rend(); ++it) {
    if (exclusive_updates_) {
      protection_latches_.LatchAt(*it).UnlockExclusive();
    } else {
      protection_latches_.LatchAt(*it).UnlockShared();
    }
  }
}

Status CodewordProtection::PrecheckRead(DbPtr off, uint32_t len) {
  if (!options_.PrechecksReads()) return Status::OK();
  uint64_t first = codewords_.RegionOf(off);
  uint64_t last = codewords_.RegionOf(off + (len == 0 ? 0 : len - 1));
  thread_local std::vector<size_t> stripes;  // Reused: no hot-path alloc.
  StripesFor(off, len, &stripes);
  thread_local uint32_t precheck_sample = 0;
  const bool timed = (precheck_sample++ & 63) == 0;
  const uint64_t t0 = timed ? NowNs() : 0;
  for (size_t s : stripes) protection_latches_.LatchAt(s).LockExclusive();
  bool clean = true;
  uint64_t bad_region = 0;
  for (uint64_t r = first; r <= last; ++r) {
    ins_.prechecks->Add();
    if (!VerifyRegionLocked(r)) {
      clean = false;
      bad_region = r;
      break;
    }
  }
  for (auto it = stripes.rbegin(); it != stripes.rend(); ++it) {
    protection_latches_.LatchAt(*it).UnlockExclusive();
  }
  if (timed) ins_.precheck_latency_ns->Record(NowNs() - t0);
  if (!clean) {
    // Read-time detection (§3.1): the read is refused before corrupt data
    // can reach the transaction. Stamp the detection for latency
    // accounting and the flight recorder.
    ins_.precheck_failures->Add();
    metrics_->NoteDetection(off, len);
    metrics_->trace().Record(TraceEventType::kPrecheckFailed, 0, off, len);
    if (forensics_ != nullptr) {
      // Filed after the latches are released: the dossier's codeword probe
      // re-takes the failing region's latch.
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "read precheck refused read of [%" PRIu64 ",+%u)",
                    static_cast<uint64_t>(off), len);
      forensics_->RecordIncident(
          IncidentSource::kReadPrecheck, /*lsn=*/0,
          /*last_clean_audit_lsn=*/0,
          {CorruptRange{codewords_.RegionStart(bad_region),
                        codewords_.region_size()}},
          detail);
    }
    return Status::Corruption("read precheck failed: codeword mismatch");
  }
  return Status::OK();
}

bool CodewordProtection::RegionCodewords(DbPtr off, codeword_t* stored,
                                         codeword_t* computed) {
  uint64_t region = codewords_.RegionOf(off);
  size_t s = protection_latches_.StripeOf(region);
  ExclusiveGuard guard(protection_latches_.LatchAt(s));
  *stored = codewords_.Get(region);
  *computed = codewords_.ComputeFromImage(image_->base(), region);
  return true;
}

void CodewordProtection::AuditSpan(uint64_t first, uint64_t last,
                                   std::vector<CorruptRange>* corrupt,
                                   SweepCounts* counts) {
  for (uint64_t r = first; r <= last; ++r) {
    // Exclusive protection latch per region: the paper's consistent
    // (region, codeword) snapshot for the audit (§3.2). Holding at most
    // one latch at a time keeps concurrent sweep lanes deadlock-free even
    // when striping maps their regions onto the same latch.
    size_t s = protection_latches_.StripeOf(r);
    ExclusiveGuard guard(protection_latches_.LatchAt(s));
    ++counts->audited;
    if (!VerifyRegionLocked(r)) {
      ++counts->failures;
      corrupt->push_back(
          CorruptRange{codewords_.RegionStart(r), codewords_.region_size()});
    }
  }
}

Status CodewordProtection::AuditRegions(DbPtr off, uint64_t len, size_t width,
                                        std::vector<CorruptRange>* corrupt) {
  if (len == 0) return Status::OK();
  uint64_t first = codewords_.RegionOf(off);
  uint64_t last = codewords_.RegionOf(off + len - 1);
  uint64_t n = last - first + 1;

  SweepCounts total;
  std::vector<CorruptRange> found;
  ThreadPool* pool = width > 1 ? sweep_pool() : nullptr;
  if (pool != nullptr && n > 1) {
    std::mutex merge_mu;
    pool->ParallelFor(n, width, [&](uint64_t begin, uint64_t end) {
      std::vector<CorruptRange> local;
      SweepCounts counts;
      AuditSpan(first + begin, first + end - 1, &local, &counts);
      std::lock_guard<std::mutex> guard(merge_mu);
      found.insert(found.end(), local.begin(), local.end());
      total.audited += counts.audited;
      total.failures += counts.failures;
    });
    // Lanes finish out of order; restore the sequential report order.
    std::sort(found.begin(), found.end(),
              [](const CorruptRange& a, const CorruptRange& b) {
                return a.off < b.off;
              });
  } else {
    AuditSpan(first, last, &found, &total);
  }
  // One merged stats update per sweep keeps the per-region loop free of
  // shared-counter traffic even though the instruments are atomic.
  ins_.regions_audited->Add(total.audited);
  ins_.audit_failures->Add(total.failures);
  if (corrupt != nullptr) {
    corrupt->insert(corrupt->end(), found.begin(), found.end());
  }
  if (total.failures != 0) {
    return Status::Corruption("audit found codeword mismatches");
  }
  return Status::OK();
}

Status CodewordProtection::AuditRange(DbPtr off, uint64_t len,
                                      std::vector<CorruptRange>* corrupt) {
  return AuditRegions(off, len, 1, corrupt);
}

Status CodewordProtection::AuditRangeParallel(
    DbPtr off, uint64_t len, size_t width,
    std::vector<CorruptRange>* corrupt) {
  return AuditRegions(off, len, EffectiveConcurrency(width), corrupt);
}

Status CodewordProtection::AuditAll(std::vector<CorruptRange>* corrupt) {
  return AuditRegions(0, image_->size(),
                      EffectiveConcurrency(options_.sweep_threads), corrupt);
}

Status CodewordProtection::ResetFromImage() {
  codewords_.RebuildAll(image_->base(), sweep_pool());
  return Status::OK();
}

Status CodewordProtection::RecomputeRegions(DbPtr off, uint64_t len) {
  if (len == 0) return Status::OK();
  uint64_t first = codewords_.RegionOf(off);
  uint64_t last = codewords_.RegionOf(off + len - 1);
  for (uint64_t r = first; r <= last; ++r) {
    size_t s = protection_latches_.StripeOf(r);
    ExclusiveGuard guard(protection_latches_.LatchAt(s));
    codewords_.Set(r, codewords_.ComputeFromImage(image_->base(), r));
  }
  return Status::OK();
}

}  // namespace cwdb
