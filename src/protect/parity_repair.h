#ifndef CWDB_PROTECT_PARITY_REPAIR_H_
#define CWDB_PROTECT_PARITY_REPAIR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/codeword.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/layout.h"
#include "storage/shard_map.h"

namespace cwdb {

/// Error-*correcting* tier layered over the paper's error-*detecting*
/// codewords. Each shard's regions are split into fixed groups of
/// `group_regions` consecutive regions; a group carries one XOR parity
/// column of region_size bytes (byte j of the column is the XOR of byte j
/// of every member region). The per-region codeword is the *locator*: when
/// an audit / precheck / checkpoint-load verification flags exactly one
/// region of a group, its bytes are reconstructed as
///
///     column  XOR  (bytes of every other member region)
///
/// and the reconstruction is accepted only if its codeword equals the
/// stored codeword of the flagged region — which also covers the "parity
/// itself corrupt" case without a separate parity checksum. Two or more
/// corrupt regions in one group exceed the correction budget and fall back
/// to delete-transaction recovery.
///
/// Maintenance is incremental and rides the same region deltas that feed
/// the CodewordTable: an update folds (before XOR after) into the column
/// slice at the update's region-relative offset, so XOR linearity makes
/// repairs commute with concurrent legitimate updates — a reconstruction
/// restores the bytes "as if the corruption never happened" even when other
/// group members were updated after the wild write landed.
///
/// Like the codeword table, the columns live *outside* the protected arena,
/// so the class of software errors under study cannot silently patch the
/// parity that would expose them.
///
/// Synchronization: ApplyDelta serializes concurrent folds into one column
/// with a per-group mutex (codeword latch stripes do not serialize
/// different-stripe regions of the same group). Reconstruction call sites
/// must hold every member region's protection latch exclusively — that
/// excludes in-flight folds, so ReconstructRegion takes no locks itself.
class ParityTier {
 public:
  ParityTier(const ShardMap& shards, uint32_t region_size,
             uint32_t group_regions);

  uint32_t region_size() const { return region_size_; }
  uint32_t group_regions() const { return group_regions_; }
  uint64_t space_overhead_bytes() const;

  /// Folds an update of [off, off+len) (before -> after) into the covering
  /// columns. The range must not cross a shard boundary (the protection
  /// manager's per-shard chunk loop guarantees this). Thread-safe.
  void ApplyDelta(DbPtr off, const uint8_t* before, const uint8_t* after,
                  uint32_t len);

  /// Recomputes every column of every group overlapping [off, off+len)
  /// from the image bytes (recovery writes / cache-recovery restores that
  /// bypass the update interface). Call sites are quiesced; the group
  /// mutexes are still taken for form's sake.
  void RecomputeGroups(const uint8_t* base, DbPtr off, uint64_t len);

  /// Recomputes every column from the image (checkpoint load / recovery
  /// reset). Caller quiesced.
  void RebuildAll(const uint8_t* base);

  /// Global region ids of the group containing `region` (including it).
  void GroupMembers(uint64_t region, std::vector<uint64_t>* members) const;

  /// Reconstructs `region`'s bytes into `out` (region_size bytes) assuming
  /// only it is corrupt. Caller holds all member protection latches
  /// exclusively (see class comment).
  void ReconstructRegion(const uint8_t* base, uint64_t region,
                         uint8_t* out) const;

  /// Appends every column in (shard, group) order — the sidecar layout.
  /// Caller quiesced (checkpoint copy phase under the exclusive latch).
  void AppendColumns(std::string* out) const;

 private:
  struct ShardParity {
    uint64_t base_region = 0;   ///< First global region of the shard.
    uint64_t region_count = 0;
    uint64_t group_count = 0;
    std::vector<uint8_t> columns;  ///< group_count * region_size bytes.
    std::unique_ptr<std::mutex[]> mus;  ///< One per group.
  };

  size_t ShardOfRegion(uint64_t region) const {
    return shard_map_.ShardOf(static_cast<DbPtr>(region) << shift_);
  }

  ShardMap shard_map_;
  uint32_t region_size_;
  uint32_t group_regions_;
  int shift_;
  std::vector<ShardParity> shards_;
};

/// Persisted snapshot of the protection state a checkpoint image was
/// written under: the per-region codewords and the parity columns, with
/// enough geometry to verify and repair the image bytes standalone (no
/// live database — `cwdb_ctl check` runs it against a cold image). The
/// sidecar is CRC-framed and stamped with the checkpoint's CK_end, so a
/// stale or torn sidecar is recognized and treated as "no verification
/// possible", never as damage.
struct ParitySidecar {
  uint64_t ck_end = 0;
  uint64_t arena_size = 0;
  uint32_t region_size = 0;
  uint32_t group_regions = 0;
  /// Shard spans (start, len), in ascending order, covering the arena.
  std::vector<std::pair<uint64_t, uint64_t>> shards;
  /// One codeword per region in global region order.
  std::vector<codeword_t> codewords;
  /// Parity columns in (shard, group) order, concatenated.
  std::string columns;
};

std::string EncodeParitySidecar(const ParitySidecar& sidecar);
/// Fails (Corruption) on bad magic / CRC / truncation / inconsistent
/// geometry — callers skip verification rather than failing the load.
Result<ParitySidecar> DecodeParitySidecar(Slice blob);

/// What a sidecar verification + repair pass did to an image.
struct ImageRepairReport {
  uint64_t regions_verified = 0;
  std::vector<CorruptRange> detected;    ///< Codeword mismatches found.
  std::vector<CorruptRange> repaired;    ///< Reconstructed in place.
  std::vector<codeword_t> repair_deltas; ///< Parallel to `repaired`:
                                         ///< codeword(corrupt) XOR
                                         ///< codeword(repaired).
  std::vector<CorruptRange> unrepaired;  ///< Beyond the correction budget.
};

/// Verifies every region of `base` against the sidecar codewords. Returns
/// the mismatching regions in ascending order; *regions_verified counts the
/// regions checked.
std::vector<CorruptRange> VerifyImageAgainstSidecar(
    const ParitySidecar& sidecar, const uint8_t* base,
    uint64_t* regions_verified);

/// Repairs previously-detected regions of `base` from the sidecar parity:
/// groups with exactly one corrupt region are reconstructed, re-verified
/// against the stored codeword, and (when `apply`) written back into the
/// image; everything else lands in report->unrepaired. `detected` must
/// come from VerifyImageAgainstSidecar over the same bytes.
void RepairImageWithSidecar(const ParitySidecar& sidecar, uint8_t* base,
                            const std::vector<CorruptRange>& detected,
                            bool apply, ImageRepairReport* report);

}  // namespace cwdb

#endif  // CWDB_PROTECT_PARITY_REPAIR_H_
