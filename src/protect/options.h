#ifndef CWDB_PROTECT_OPTIONS_H_
#define CWDB_PROTECT_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace cwdb {

/// The protection schemes studied in the paper (Sections 3 and 5.3).
/// Every codeword scheme includes Data Codeword maintenance and audits;
/// the enum picks what happens *in addition* on the read/write paths.
enum class ProtectionScheme : uint8_t {
  /// Baseline: no protection at all.
  kNone = 0,
  /// "Data CW": codewords maintained on update, corruption detected by
  /// asynchronous audits only (§3.2). Detects direct corruption.
  kDataCodeword = 1,
  /// "Data CW w/Precheck": every read verifies the containing region(s)
  /// against the codeword under the protection latch (§3.1). Prevents
  /// transaction-carried (indirect) corruption.
  kReadPrecheck = 2,
  /// "Data CW w/ReadLog": the identity of every read is logged (§4.2),
  /// enabling delete-transaction corruption recovery (§4.3).
  kReadLog = 3,
  /// "Data CW w/CW ReadLog": read log records additionally carry a codeword
  /// of the bytes read, and physical redo records carry a codeword of the
  /// overwritten bytes; recovery becomes view-consistent and needs no
  /// CorruptDataTable (§4.3, Extension).
  kCodewordReadLog = 4,
  /// "Memory Protection": mprotect expose-page update model, after
  /// Sullivan & Stonebraker [21]. Prevents direct corruption.
  kHardware = 5,
};

const char* ProtectionSchemeName(ProtectionScheme scheme);

struct ProtectionOptions {
  ProtectionScheme scheme = ProtectionScheme::kNone;

  /// Protection region size in bytes (power of two, >= 8). The paper's
  /// Table 2 uses 64, 512 and 8192.
  uint32_t region_size = 512;

  /// Number of protection-latch (and codeword-latch) stripes, divided
  /// evenly over the shards.
  size_t latch_stripes = 1024;

  /// Number of protection shards. Each shard owns a contiguous span of the
  /// arena with its own codeword table, latch stripes and read-validation
  /// epochs, so transactions on disjoint shards share no protection state.
  /// 1 = the pre-sharding layout.
  size_t shards = 1;

  /// Shard span alignment (power of two). 0 = region_size. The database
  /// passes max(page size, region size) so protection shard boundaries
  /// coincide with the storage shard map.
  uint64_t shard_align = 0;

  /// Regions per XOR parity group of the error-correcting repair tier.
  /// Every group of this many consecutive regions (within one shard)
  /// carries one parity column of region_size bytes, maintained from the
  /// same deltas that feed the codeword table; a single corrupt region per
  /// group can be reconstructed in place instead of falling back to
  /// delete-transaction recovery. 0 disables the tier. Space overhead is
  /// roughly region_size / (group * region_size) = 1/group of the arena
  /// (~1.6% at the default 64), plus one extra XOR fold per update.
  /// Only meaningful for codeword schemes.
  uint32_t parity_group_regions = 64;

  /// Worker lanes for the bulk codeword sweeps — full-image rebuilds
  /// (checkpoint load / recovery) and AuditAll / parallel audit slices.
  /// Regions are independent, so the sweeps partition embarrassingly.
  /// 0 = one lane per hardware thread; 1 = fully single-threaded (no pool
  /// is even created). Per-update codeword maintenance is never affected.
  size_t sweep_threads = 0;

  bool UsesCodewords() const {
    return scheme == ProtectionScheme::kDataCodeword ||
           scheme == ProtectionScheme::kReadPrecheck ||
           scheme == ProtectionScheme::kReadLog ||
           scheme == ProtectionScheme::kCodewordReadLog;
  }
  bool PrechecksReads() const {
    return scheme == ProtectionScheme::kReadPrecheck;
  }
  bool LogsReads() const {
    return scheme == ProtectionScheme::kReadLog ||
           scheme == ProtectionScheme::kCodewordReadLog;
  }
  bool LogsReadChecksums() const {
    return scheme == ProtectionScheme::kCodewordReadLog;
  }
};

/// Point-in-time snapshot of a ProtectionManager's counters, assembled
/// from the metrics registry by stats(). The live instruments are sharded
/// atomics (obs/metrics.h), so concurrent transactions update them
/// race-free; this struct is a plain copy for callers.
struct ProtectionStats {
  uint64_t updates = 0;           ///< BeginUpdate/EndUpdate pairs.
  uint64_t codeword_folds = 0;    ///< Incremental codeword maintenances.
  uint64_t prechecks = 0;         ///< Read-time verifications.
  uint64_t regions_audited = 0;
  uint64_t audit_failures = 0;
  uint64_t mprotect_calls = 0;    ///< Hardware scheme only.
  uint64_t pages_unprotected = 0; ///< Pages made writable (hardware).
};

}  // namespace cwdb

#endif  // CWDB_PROTECT_OPTIONS_H_
