#ifndef CWDB_PROTECT_CODEWORD_PROTECTION_H_
#define CWDB_PROTECT_CODEWORD_PROTECTION_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/latch.h"
#include "common/parallel.h"
#include "protect/codeword_table.h"
#include "protect/protection.h"

namespace cwdb {

/// Codeword-based protection (paper §3.1 and §3.2), covering the Data
/// Codeword, Read Prechecking, Read Logging and Codeword Read Logging
/// configurations. All four maintain region codewords incrementally from
/// the undo image at EndUpdate; they differ on the read path (precheck vs.
/// read logging — read logging itself is emitted by the transaction layer,
/// which consults options().LogsReads()).
///
/// Latching follows the paper:
///  * Read Prechecking (§3.1): the protection latch is held *exclusively*
///    for the whole BeginUpdate..EndUpdate window, and readers take it
///    exclusively while verifying the region against its codeword.
///  * Data Codeword and the read-logging variants (§3.2): updaters hold the
///    protection latch in *shared* mode and serialize only the brief
///    codeword adjustment on a separate codeword latch; the auditor takes
///    the protection latch exclusively per region to obtain a consistent
///    (region, codeword) snapshot.
/// Latches are striped (see StripedLatchTable); multi-stripe acquisitions
/// are made in ascending stripe order to stay deadlock-free.
class CodewordProtection : public ProtectionManager {
 public:
  static Result<std::unique_ptr<ProtectionManager>> Create(
      const ProtectionOptions& options, DbImage* image,
      MetricsRegistry* metrics = nullptr);

  Status BeginUpdate(DbPtr off, uint32_t len, UpdateHandle* h) override;
  void EndUpdate(const UpdateHandle& h, const uint8_t* before) override;
  void AbortUpdate(const UpdateHandle& h) override;
  Status PrecheckRead(DbPtr off, uint32_t len) override;
  Status AuditAll(std::vector<CorruptRange>* corrupt) override;
  Status AuditRange(DbPtr off, uint64_t len,
                    std::vector<CorruptRange>* corrupt) override;
  Status AuditRangeParallel(DbPtr off, uint64_t len, size_t width,
                            std::vector<CorruptRange>* corrupt) override;
  Status ResetFromImage() override;
  Status RecomputeRegions(DbPtr off, uint64_t len) override;
  bool RegionCodewords(DbPtr off, codeword_t* stored,
                       codeword_t* computed) override;
  uint64_t SpaceOverheadBytes() const override {
    return codewords_.space_overhead_bytes();
  }

  /// Direct access for tests and the auditor.
  const CodewordTable& codeword_table() const { return codewords_; }
  CodewordTable& mutable_codeword_table() { return codewords_; }

 private:
  CodewordProtection(const ProtectionOptions& options, DbImage* image,
                     MetricsRegistry* metrics = nullptr);

  /// Fills *stripes with the ascending unique latch stripes for the
  /// regions covering [off, len). Reuses the vector's capacity — callers
  /// keep a long-lived vector so the hot path does not allocate.
  void StripesFor(DbPtr off, uint32_t len, std::vector<size_t>* stripes) const;

  /// Audits one region, protection latch held by caller.
  bool VerifyRegionLocked(uint64_t region) const {
    return codewords_.Verify(image_->base(), region);
  }

  /// Per-lane tallies of a sweep span, merged into stats_ once per call so
  /// parallel lanes never race on the shared counters.
  struct SweepCounts {
    uint64_t audited = 0;
    uint64_t failures = 0;
  };

  /// Audits regions [first, last], taking each region's protection latch
  /// exclusively. Appends failures to *corrupt (never null here) and
  /// tallies into *counts; no shared state is touched.
  void AuditSpan(uint64_t first, uint64_t last,
                 std::vector<CorruptRange>* corrupt, SweepCounts* counts);

  /// Audits the regions covering [off, off+len) across up to `width` sweep
  /// lanes; shared implementation of AuditRange / AuditRangeParallel /
  /// AuditAll.
  Status AuditRegions(DbPtr off, uint64_t len, size_t width,
                      std::vector<CorruptRange>* corrupt);

  /// Sweep pool for RebuildAll / AuditAll partitions, created on first use
  /// (never created when options.sweep_threads == 1). Lanes only ever run
  /// whole-region work under the region's own protection latch, so pool
  /// parallelism composes with foreground updates exactly like the
  /// sequential auditor does.
  ThreadPool* sweep_pool();

  const bool exclusive_updates_;  ///< True for the Precheck scheme.
  CodewordTable codewords_;
  StripedLatchTable protection_latches_;
  StripedLatchTable codeword_latches_;

  std::once_flag sweep_pool_once_;
  std::unique_ptr<ThreadPool> sweep_pool_;
};

}  // namespace cwdb

#endif  // CWDB_PROTECT_CODEWORD_PROTECTION_H_
