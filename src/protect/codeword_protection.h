#ifndef CWDB_PROTECT_CODEWORD_PROTECTION_H_
#define CWDB_PROTECT_CODEWORD_PROTECTION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/latch.h"
#include "common/parallel.h"
#include "protect/codeword_table.h"
#include "protect/parity_repair.h"
#include "protect/protection.h"
#include "storage/shard_map.h"

namespace cwdb {

/// Codeword-based protection (paper §3.1 and §3.2), covering the Data
/// Codeword, Read Prechecking, Read Logging and Codeword Read Logging
/// configurations. All four maintain region codewords incrementally from
/// the undo image at EndUpdate; they differ on the read path (precheck vs.
/// read logging — read logging itself is emitted by the transaction layer,
/// which consults options().LogsReads()).
///
/// Latching follows the paper:
///  * Read Prechecking (§3.1): the protection latch is held *exclusively*
///    for the whole BeginUpdate..EndUpdate window. Readers, however, do not
///    take it on the happy path: each latch stripe carries a seqlock-style
///    epoch (odd while an updater holds the stripe), and PrecheckRead
///    verifies the region optimistically, accepting the result only when
///    the epoch was even and unchanged across the verify. Contended or
///    repeatedly-interrupted reads fall back to the exclusive latch.
///  * Data Codeword and the read-logging variants (§3.2): updaters hold the
///    protection latch in *shared* mode and serialize only the brief
///    codeword adjustment on a separate codeword latch; the auditor takes
///    the protection latch exclusively per region to obtain a consistent
///    (region, codeword) snapshot.
///
/// The arena is partitioned into shards (ShardMap): each shard owns its own
/// codeword table, protection/codeword latch stripes, epochs and counters,
/// so updates on different shards touch disjoint cache lines end to end.
/// Region ids and latch-stripe indices stay *global* (stripe index =
/// shard * stripes_per_shard + local stripe), so UpdateHandle and the
/// ascending-order multi-stripe latch discipline are unchanged — ascending
/// global stripe order is deadlock-free across shards too.
class CodewordProtection : public ProtectionManager {
 public:
  static Result<std::unique_ptr<ProtectionManager>> Create(
      const ProtectionOptions& options, DbImage* image,
      MetricsRegistry* metrics = nullptr);

  Status BeginUpdate(DbPtr off, uint32_t len, UpdateHandle* h) override;
  void EndUpdate(const UpdateHandle& h, const uint8_t* before) override;
  void AbortUpdate(const UpdateHandle& h) override;
  Status PrecheckRead(DbPtr off, uint32_t len) override;
  Status AuditAll(std::vector<CorruptRange>* corrupt) override;
  Status AuditRange(DbPtr off, uint64_t len,
                    std::vector<CorruptRange>* corrupt) override;
  Status AuditRangeParallel(DbPtr off, uint64_t len, size_t width,
                            std::vector<CorruptRange>* corrupt) override;
  Status ResetFromImage() override;
  Status RecomputeRegions(DbPtr off, uint64_t len) override;
  bool RegionCodewords(DbPtr off, codeword_t* stored,
                       codeword_t* computed) override;
  uint64_t SpaceOverheadBytes() const override;
  bool CanRepair() const override { return parity_ != nullptr; }
  Status TryRepair(const std::vector<CorruptRange>& ranges,
                   RepairOutcome* outcome) override;
  bool SnapshotSidecar(uint64_t ck_end, std::string* blob) override;

  const ShardMap& shard_map() const { return shard_map_; }
  /// The error-correcting tier (null when parity_group_regions == 0 in the
  /// options).
  const ParityTier* parity() const { return parity_.get(); }
  /// Reads that verified a region without touching a latch / that gave up
  /// and took the latch (tests, bench).
  uint64_t validated_reads() const { return validated_reads_->Value(); }
  uint64_t validated_fallbacks() const {
    return validated_fallbacks_->Value();
  }

 private:
  /// One shard's protection state. Padded so the hot latch/epoch state of
  /// neighboring shards never shares a cache line.
  struct alignas(64) Shard {
    Shard(uint64_t base, uint64_t len, uint32_t region_size, size_t stripes)
        : codewords(base, len, region_size),
          protection(stripes),
          codeword(stripes),
          epochs(new std::atomic<uint64_t>[stripes]) {
      for (size_t i = 0; i < stripes; ++i) epochs[i].store(0);
    }
    CodewordTable codewords;
    StripedLatchTable protection;
    StripedLatchTable codeword;
    /// Seqlock epochs, one per protection-latch stripe: odd while an
    /// exclusive updater holds the stripe (Precheck scheme only).
    std::unique_ptr<std::atomic<uint64_t>[]> epochs;
    Counter* updates = nullptr;     ///< Per-shard update windows.
    Counter* prechecks = nullptr;   ///< Per-shard read prechecks.
  };

  CodewordProtection(const ProtectionOptions& options, DbImage* image,
                     MetricsRegistry* metrics = nullptr);

  // -- Shard/stripe geometry. Region ids and stripe indices are global. --

  uint64_t RegionOf(DbPtr off) const { return off >> region_shift_; }
  DbPtr RegionStart(uint64_t region) const {
    return static_cast<DbPtr>(region) << region_shift_;
  }
  size_t ShardOfRegion(uint64_t region) const {
    return shard_map_.ShardOf(RegionStart(region));
  }
  /// Global stripe index of a region's protection/codeword/epoch slot.
  size_t StripeOfRegion(uint64_t region) const {
    size_t s = ShardOfRegion(region);
    return s * stripes_per_shard_ + shards_[s]->protection.StripeOf(region);
  }
  Shard& ShardAt(size_t stripe) const {
    return *shards_[stripe / stripes_per_shard_];
  }
  Latch& ProtectionLatchAt(size_t stripe) const {
    return ShardAt(stripe).protection.LatchAt(stripe % stripes_per_shard_);
  }
  Latch& CodewordLatchAt(size_t stripe) const {
    return ShardAt(stripe).codeword.LatchAt(stripe % stripes_per_shard_);
  }
  std::atomic<uint64_t>& EpochAt(size_t stripe) const {
    return ShardAt(stripe).epochs[stripe % stripes_per_shard_];
  }
  CodewordTable& TableForRegion(uint64_t region) const {
    return shards_[ShardOfRegion(region)]->codewords;
  }

  /// Fills *stripes with the ascending unique global latch stripes for the
  /// regions covering [off, len). Reuses the vector's capacity — callers
  /// keep a long-lived vector so the hot path does not allocate.
  void StripesFor(DbPtr off, uint32_t len, std::vector<size_t>* stripes) const;

  /// Audits one region, protection latch held by caller (or epoch-validated
  /// by the caller on the optimistic read path).
  bool VerifyRegion(uint64_t region) const {
    return TableForRegion(region).Verify(image_->base(), region);
  }

  /// Read Precheck verification of one region: optimistic epoch-validated
  /// verify first (a few attempts), exclusive-latch fallback. Returns true
  /// if the region's codeword matches.
  bool RegionCleanForRead(uint64_t region);

  /// Per-lane tallies of a sweep span, merged into stats_ once per call so
  /// parallel lanes never race on the shared counters.
  struct SweepCounts {
    uint64_t audited = 0;
    uint64_t failures = 0;
  };

  /// Audits regions [first, last], taking each region's protection latch
  /// exclusively. Appends failures to *corrupt (never null here) and
  /// tallies into *counts; no shared state is touched.
  void AuditSpan(uint64_t first, uint64_t last,
                 std::vector<CorruptRange>* corrupt, SweepCounts* counts);

  /// Audits the regions covering [off, off+len) across up to `width` sweep
  /// lanes; shared implementation of AuditRange / AuditRangeParallel /
  /// AuditAll.
  Status AuditRegions(DbPtr off, uint64_t len, size_t width,
                      std::vector<CorruptRange>* corrupt);

  /// Rebuilds every shard's table from the image (Create/ResetFromImage).
  void RebuildAllShards();

  /// In-place reconstruction of one flagged region from its parity group.
  /// Takes every member region's protection latch exclusively (ascending
  /// global stripe order) — that alone excludes concurrent folds into the
  /// group's column, so no group mutex is needed and the lock order stays
  /// checkpoint latch -> protection latch -> {codeword latch, group mutex}.
  /// On success *delta is the XOR of the region codeword computed from the
  /// corrupt bytes and from the reconstruction. Caller must hold no
  /// latches.
  bool RepairRegionInPlace(uint64_t region, codeword_t* delta);

  /// Sweep pool for RebuildAll / AuditAll partitions, created on first use
  /// (never created when options.sweep_threads == 1). Lanes only ever run
  /// whole-region work under the region's own protection latch, so pool
  /// parallelism composes with foreground updates exactly like the
  /// sequential auditor does.
  ThreadPool* sweep_pool();

  const bool exclusive_updates_;  ///< True for the Precheck scheme.
  const int region_shift_;
  ShardMap shard_map_;
  size_t stripes_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ParityTier> parity_;  ///< Null when the tier is disabled.

  Counter* validated_reads_;
  Counter* validated_fallbacks_;

  std::once_flag sweep_pool_once_;
  std::unique_ptr<ThreadPool> sweep_pool_;
};

}  // namespace cwdb

#endif  // CWDB_PROTECT_CODEWORD_PROTECTION_H_
