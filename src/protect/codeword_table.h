#ifndef CWDB_PROTECT_CODEWORD_TABLE_H_
#define CWDB_PROTECT_CODEWORD_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/codeword.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "storage/layout.h"

namespace cwdb {

/// One codeword per protection region of the database image. The table
/// lives *outside* the protected arena, so a wild write into the database
/// cannot silently fix up its own codeword. Synchronization is the caller's
/// job (the ProtectionManager's protection / codeword latches).
///
/// Space overhead is sizeof(codeword_t) / region_size: 6.25% at 64 bytes,
/// 0.78% at 512 bytes, 0.05% at 8K — the time/space tradeoff of Table 2.
class CodewordTable {
 public:
  /// `arena_size` must be a multiple of `region_size`; `region_size` must
  /// be a power of two >= 8.
  CodewordTable(uint64_t arena_size, uint32_t region_size);

  uint32_t region_size() const { return region_size_; }
  uint64_t region_count() const { return codewords_.size(); }

  uint64_t RegionOf(DbPtr off) const { return off >> shift_; }
  DbPtr RegionStart(uint64_t region) const {
    return static_cast<DbPtr>(region) << shift_;
  }

  codeword_t Get(uint64_t region) const { return codewords_[region]; }
  void Set(uint64_t region, codeword_t cw) { codewords_[region] = cw; }

  /// Folds the change (before -> after, len bytes at image offset off) into
  /// the codewords of every region the range covers. `before` and `after`
  /// both have `len` bytes.
  void ApplyDelta(DbPtr off, const uint8_t* before, const uint8_t* after,
                  uint32_t len);

  /// Recomputes the codeword of `region` from the image bytes.
  codeword_t ComputeFromImage(const uint8_t* arena_base,
                              uint64_t region) const;

  /// True if the stored codeword matches the image bytes.
  bool Verify(const uint8_t* arena_base, uint64_t region) const {
    return ComputeFromImage(arena_base, region) == codewords_[region];
  }

  /// Recomputes every codeword from the image (after checkpoint load /
  /// recovery, and at creation). With a pool, the region range is
  /// partitioned across its lanes — each lane writes a disjoint slice of
  /// the table, so the pass is data-race free by construction. The caller
  /// must ensure no concurrent updates (all rebuild sites run with the
  /// image quiesced).
  void RebuildAll(const uint8_t* arena_base, ThreadPool* pool = nullptr);

  uint64_t space_overhead_bytes() const {
    return codewords_.size() * sizeof(codeword_t);
  }

 private:
  uint32_t region_size_;
  int shift_;
  std::vector<codeword_t> codewords_;
};

}  // namespace cwdb

#endif  // CWDB_PROTECT_CODEWORD_TABLE_H_
