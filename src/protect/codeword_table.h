#ifndef CWDB_PROTECT_CODEWORD_TABLE_H_
#define CWDB_PROTECT_CODEWORD_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/codeword.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "storage/layout.h"

namespace cwdb {

/// One codeword per protection region of a span of the database image. The
/// table lives *outside* the protected arena, so a wild write into the
/// database cannot silently fix up its own codeword. Synchronization is the
/// caller's job (the ProtectionManager's protection / codeword latches).
///
/// A table may cover the whole arena (base 0) or one shard's span of it.
/// Region ids are always *global* — `RegionOf(off)` is the same number no
/// matter which shard's table answers — so shard-local tables slot into
/// audit cursors, forensics dossiers and recovery without translation; only
/// the backing vector is shard-local.
///
/// Space overhead is sizeof(codeword_t) / region_size: 6.25% at 64 bytes,
/// 0.78% at 512 bytes, 0.05% at 8K — the time/space tradeoff of Table 2.
class CodewordTable {
 public:
  /// Table covering [base_off, base_off + len) of the image. Both bounds
  /// must be multiples of `region_size` (a power of two >= 8).
  CodewordTable(uint64_t base_off, uint64_t len, uint32_t region_size);

  /// Whole-arena table (base 0) — the pre-sharding constructor.
  CodewordTable(uint64_t arena_size, uint32_t region_size)
      : CodewordTable(0, arena_size, region_size) {}

  uint32_t region_size() const { return region_size_; }
  uint64_t region_count() const { return codewords_.size(); }

  uint64_t RegionOf(DbPtr off) const { return off >> shift_; }
  DbPtr RegionStart(uint64_t region) const {
    return static_cast<DbPtr>(region) << shift_;
  }

  /// First (global) region id this table covers.
  uint64_t base_region() const { return base_region_; }

  codeword_t Get(uint64_t region) const { return codewords_[Index(region)]; }
  void Set(uint64_t region, codeword_t cw) { codewords_[Index(region)] = cw; }

  /// Folds the change (before -> after, len bytes at image offset off) into
  /// the codewords of every region the range covers. `before` and `after`
  /// both have `len` bytes.
  void ApplyDelta(DbPtr off, const uint8_t* before, const uint8_t* after,
                  uint32_t len);

  /// Recomputes the codeword of `region` from the image bytes.
  codeword_t ComputeFromImage(const uint8_t* arena_base,
                              uint64_t region) const;

  /// True if the stored codeword matches the image bytes.
  bool Verify(const uint8_t* arena_base, uint64_t region) const {
    return ComputeFromImage(arena_base, region) == codewords_[Index(region)];
  }

  /// Recomputes every codeword from the image (after checkpoint load /
  /// recovery, and at creation). With a pool, the region range is
  /// partitioned across its lanes — each lane writes a disjoint slice of
  /// the table, so the pass is data-race free by construction. The caller
  /// must ensure no concurrent updates (all rebuild sites run with the
  /// image quiesced).
  void RebuildAll(const uint8_t* arena_base, ThreadPool* pool = nullptr);

  uint64_t space_overhead_bytes() const {
    return codewords_.size() * sizeof(codeword_t);
  }

 private:
  /// Backing-vector slot of a global region id.
  size_t Index(uint64_t region) const {
    CWDB_DCHECK(region >= base_region_ &&
                region - base_region_ < codewords_.size())
        << "region " << region << " outside this table's span";
    return static_cast<size_t>(region - base_region_);
  }

  uint32_t region_size_;
  int shift_;
  uint64_t base_region_;
  std::vector<codeword_t> codewords_;
};

}  // namespace cwdb

#endif  // CWDB_PROTECT_CODEWORD_TABLE_H_
