#include "protect/codeword_table.h"

#include <bit>

namespace cwdb {

CodewordTable::CodewordTable(uint64_t base_off, uint64_t len,
                             uint32_t region_size)
    : region_size_(region_size) {
  CWDB_CHECK(region_size >= 8 && std::has_single_bit(region_size))
      << "region size must be a power of two >= 8, got " << region_size;
  CWDB_CHECK(base_off % region_size == 0)
      << "table base must be region-aligned";
  CWDB_CHECK(len % region_size == 0)
      << "table span must be a multiple of the region size";
  shift_ = std::countr_zero(region_size);
  base_region_ = base_off >> shift_;
  codewords_.assign(len / region_size, 0);
}

void CodewordTable::ApplyDelta(DbPtr off, const uint8_t* before,
                               const uint8_t* after, uint32_t len) {
  uint32_t done = 0;
  while (done < len) {
    DbPtr cur = off + done;
    uint64_t region = RegionOf(cur);
    DbPtr region_end = RegionStart(region) + region_size_;
    uint32_t chunk = static_cast<uint32_t>(
        std::min<uint64_t>(len - done, region_end - cur));
    // The lane within the word is determined by the offset from the region
    // start; regions are word-aligned so (cur & 3) is the lane.
    codewords_[Index(region)] ^=
        CodewordDelta(cur & 3, before + done, after + done, chunk);
    done += chunk;
  }
}

codeword_t CodewordTable::ComputeFromImage(const uint8_t* arena_base,
                                           uint64_t region) const {
  return CodewordCompute(arena_base + RegionStart(region), region_size_);
}

void CodewordTable::RebuildAll(const uint8_t* arena_base, ThreadPool* pool) {
  auto rebuild_span = [&](uint64_t first, uint64_t last) {
    for (uint64_t i = first; i < last; ++i) {
      codewords_[i] = ComputeFromImage(arena_base, base_region_ + i);
    }
  };
  if (pool == nullptr || pool->concurrency() <= 1) {
    rebuild_span(0, codewords_.size());
    return;
  }
  pool->ParallelFor(codewords_.size(), pool->concurrency(), rebuild_span);
}

}  // namespace cwdb
