#include "protect/parity_repair.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/logging.h"

namespace cwdb {

namespace {

constexpr uint64_t kParityMagic = 0x4357504152495459ull;  // "CWPARITY"
constexpr uint32_t kParityVersion = 1;

/// XORs `len` bytes of `src` into `dst`.
void XorInto(uint8_t* dst, const uint8_t* src, uint64_t len) {
  uint64_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t a, b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

}  // namespace

ParityTier::ParityTier(const ShardMap& shards, uint32_t region_size,
                       uint32_t group_regions)
    : shard_map_(shards),
      region_size_(region_size),
      group_regions_(group_regions),
      shift_(std::countr_zero(region_size)) {
  CWDB_CHECK(group_regions_ > 1) << "a parity group needs >= 2 regions";
  shards_.resize(shard_map_.shard_count());
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardParity& sp = shards_[s];
    sp.base_region = shard_map_.ShardStart(s) >> shift_;
    sp.region_count = shard_map_.ShardLen(s) >> shift_;
    sp.group_count = (sp.region_count + group_regions_ - 1) / group_regions_;
    sp.columns.assign(sp.group_count * region_size_, 0);
    sp.mus = std::make_unique<std::mutex[]>(sp.group_count);
  }
}

uint64_t ParityTier::space_overhead_bytes() const {
  uint64_t total = 0;
  for (const ShardParity& sp : shards_) total += sp.columns.size();
  return total;
}

void ParityTier::ApplyDelta(DbPtr off, const uint8_t* before,
                            const uint8_t* after, uint32_t len) {
  // Walk the range one region slice at a time; slices are ascending, so
  // locking one group at a time (never two) keeps the fold deadlock-free
  // against every other lock order in the engine.
  ShardParity& sp = shards_[shard_map_.ShardOf(off)];
  uint32_t done = 0;
  while (done < len) {
    DbPtr cur = off + done;
    uint64_t region = cur >> shift_;
    uint64_t in_region = cur & (region_size_ - 1);
    uint32_t chunk = static_cast<uint32_t>(
        std::min<uint64_t>(len - done, region_size_ - in_region));
    uint64_t group = (region - sp.base_region) / group_regions_;
    uint8_t* col = sp.columns.data() + group * region_size_ + in_region;
    {
      std::lock_guard<std::mutex> guard(sp.mus[group]);
      for (uint32_t i = 0; i < chunk; ++i) {
        col[i] ^= before[done + i] ^ after[done + i];
      }
    }
    done += chunk;
  }
}

void ParityTier::RecomputeGroups(const uint8_t* base, DbPtr off,
                                 uint64_t len) {
  if (len == 0) return;
  uint64_t first = off >> shift_;
  uint64_t last = (off + len - 1) >> shift_;
  for (uint64_t r = first; r <= last;) {
    size_t s = ShardOfRegion(r);
    ShardParity& sp = shards_[s];
    uint64_t group = (r - sp.base_region) / group_regions_;
    uint64_t group_first = sp.base_region + group * group_regions_;
    uint64_t members =
        std::min<uint64_t>(group_regions_, sp.region_count -
                                               group * group_regions_);
    uint8_t* col = sp.columns.data() + group * region_size_;
    {
      std::lock_guard<std::mutex> guard(sp.mus[group]);
      std::memset(col, 0, region_size_);
      for (uint64_t m = 0; m < members; ++m) {
        XorInto(col, base + ((group_first + m) << shift_), region_size_);
      }
    }
    r = group_first + members;  // Next group (possibly next shard).
  }
}

void ParityTier::RebuildAll(const uint8_t* base) {
  RecomputeGroups(base, 0, shard_map_.arena_size());
}

void ParityTier::GroupMembers(uint64_t region,
                              std::vector<uint64_t>* members) const {
  const ShardParity& sp = shards_[ShardOfRegion(region)];
  uint64_t group = (region - sp.base_region) / group_regions_;
  uint64_t first = sp.base_region + group * group_regions_;
  uint64_t count = std::min<uint64_t>(
      group_regions_, sp.region_count - group * group_regions_);
  members->clear();
  for (uint64_t m = 0; m < count; ++m) members->push_back(first + m);
}

void ParityTier::ReconstructRegion(const uint8_t* base, uint64_t region,
                                   uint8_t* out) const {
  const ShardParity& sp = shards_[ShardOfRegion(region)];
  uint64_t group = (region - sp.base_region) / group_regions_;
  uint64_t first = sp.base_region + group * group_regions_;
  uint64_t count = std::min<uint64_t>(
      group_regions_, sp.region_count - group * group_regions_);
  std::memcpy(out, sp.columns.data() + group * region_size_, region_size_);
  for (uint64_t m = 0; m < count; ++m) {
    uint64_t r = first + m;
    if (r == region) continue;
    XorInto(out, base + (r << shift_), region_size_);
  }
}

void ParityTier::AppendColumns(std::string* out) const {
  for (const ShardParity& sp : shards_) {
    out->append(reinterpret_cast<const char*>(sp.columns.data()),
                sp.columns.size());
  }
}

std::string EncodeParitySidecar(const ParitySidecar& sidecar) {
  std::string body;
  PutFixed64(&body, kParityMagic);
  PutFixed32(&body, kParityVersion);
  PutFixed64(&body, sidecar.ck_end);
  PutFixed64(&body, sidecar.arena_size);
  PutFixed32(&body, sidecar.region_size);
  PutFixed32(&body, sidecar.group_regions);
  PutFixed64(&body, sidecar.shards.size());
  for (const auto& [start, len] : sidecar.shards) {
    PutFixed64(&body, start);
    PutFixed64(&body, len);
  }
  body.append(reinterpret_cast<const char*>(sidecar.codewords.data()),
              sidecar.codewords.size() * sizeof(codeword_t));
  body.append(sidecar.columns);
  std::string out = body;
  PutFixed32(&out, Crc32c(body.data(), body.size()));
  return out;
}

Result<ParitySidecar> DecodeParitySidecar(Slice blob) {
  if (blob.size() < 4) return Status::Corruption("parity sidecar too short");
  Slice body(blob.data(), blob.size() - 4);
  uint32_t crc = DecodeFixed32(blob.data() + blob.size() - 4);
  if (Crc32c(body.data(), body.size()) != crc) {
    return Status::Corruption("parity sidecar CRC mismatch");
  }
  Decoder dec(body);
  if (dec.GetFixed64() != kParityMagic) {
    return Status::Corruption("parity sidecar bad magic");
  }
  if (dec.GetFixed32() != kParityVersion) {
    return Status::Corruption("parity sidecar unknown version");
  }
  ParitySidecar s;
  s.ck_end = dec.GetFixed64();
  s.arena_size = dec.GetFixed64();
  s.region_size = dec.GetFixed32();
  s.group_regions = dec.GetFixed32();
  if (!dec.ok() || s.region_size < 8 ||
      (s.region_size & (s.region_size - 1)) != 0 || s.group_regions < 2 ||
      s.arena_size == 0 || s.arena_size % s.region_size != 0) {
    return Status::Corruption("parity sidecar bad geometry");
  }
  uint64_t shard_count = dec.GetFixed64();
  if (shard_count == 0 || shard_count > s.arena_size / s.region_size) {
    return Status::Corruption("parity sidecar bad shard count");
  }
  uint64_t covered = 0;
  uint64_t columns_len = 0;
  for (uint64_t i = 0; i < shard_count; ++i) {
    uint64_t start = dec.GetFixed64();
    uint64_t len = dec.GetFixed64();
    if (!dec.ok() || start != covered || len == 0 ||
        len % s.region_size != 0) {
      return Status::Corruption("parity sidecar bad shard span");
    }
    covered += len;
    uint64_t regions = len / s.region_size;
    uint64_t groups = (regions + s.group_regions - 1) / s.group_regions;
    columns_len += groups * s.region_size;
    s.shards.emplace_back(start, len);
  }
  if (covered != s.arena_size) {
    return Status::Corruption("parity sidecar spans do not cover the arena");
  }
  uint64_t region_count = s.arena_size / s.region_size;
  Slice cw = dec.GetBytes(region_count * sizeof(codeword_t));
  Slice cols = dec.GetBytes(columns_len);
  if (!dec.ok() || dec.remaining() != 0) {
    return Status::Corruption("parity sidecar truncated");
  }
  s.codewords.resize(region_count);
  std::memcpy(s.codewords.data(), cw.data(), cw.size());
  s.columns.assign(cols.data(), cols.size());
  return s;
}

std::vector<CorruptRange> VerifyImageAgainstSidecar(
    const ParitySidecar& sidecar, const uint8_t* base,
    uint64_t* regions_verified) {
  std::vector<CorruptRange> bad;
  const uint64_t region_count = sidecar.arena_size / sidecar.region_size;
  for (uint64_t r = 0; r < region_count; ++r) {
    codeword_t computed =
        CodewordCompute(base + r * sidecar.region_size, sidecar.region_size);
    if (computed != sidecar.codewords[r]) {
      bad.push_back(
          CorruptRange{r * sidecar.region_size, sidecar.region_size});
    }
  }
  if (regions_verified != nullptr) *regions_verified = region_count;
  return bad;
}

void RepairImageWithSidecar(const ParitySidecar& sidecar, uint8_t* base,
                            const std::vector<CorruptRange>& detected,
                            bool apply, ImageRepairReport* report) {
  report->detected = detected;
  const uint32_t rs = sidecar.region_size;
  // Locate each corrupt region's (shard, group); count corruption per
  // group — the correction budget is one region per group.
  struct GroupKey {
    uint64_t first_region;  ///< First global region of the group.
    uint64_t members;
    uint64_t column_off;    ///< Offset of the column in sidecar.columns.
  };
  auto locate = [&](uint64_t region) {
    GroupKey key{};
    uint64_t column_base = 0;
    for (const auto& [start, len] : sidecar.shards) {
      uint64_t base_region = start / rs;
      uint64_t regions = len / rs;
      uint64_t groups = (regions + sidecar.group_regions - 1) /
                        sidecar.group_regions;
      if (region >= base_region && region < base_region + regions) {
        uint64_t g = (region - base_region) / sidecar.group_regions;
        key.first_region = base_region + g * sidecar.group_regions;
        key.members = std::min<uint64_t>(sidecar.group_regions,
                                         regions - g * sidecar.group_regions);
        key.column_off = column_base + g * rs;
        return key;
      }
      column_base += groups * rs;
    }
    CWDB_CHECK(false) << "region " << region << " outside every shard span";
    return key;
  };

  std::vector<std::pair<GroupKey, std::vector<uint64_t>>> groups;
  for (const CorruptRange& range : detected) {
    uint64_t region = range.off / rs;
    GroupKey key = locate(region);
    auto it = std::find_if(groups.begin(), groups.end(), [&](const auto& g) {
      return g.first.first_region == key.first_region;
    });
    if (it == groups.end()) {
      groups.push_back({key, {region}});
    } else {
      it->second.push_back(region);
    }
  }

  std::vector<uint8_t> recon(rs);
  for (const auto& [key, corrupt_regions] : groups) {
    if (corrupt_regions.size() != 1) {
      // Beyond the budget: >= 2 corrupt regions in one parity group.
      for (uint64_t r : corrupt_regions) {
        report->unrepaired.push_back(CorruptRange{r * rs, rs});
      }
      continue;
    }
    uint64_t region = corrupt_regions[0];
    std::memcpy(recon.data(), sidecar.columns.data() + key.column_off, rs);
    for (uint64_t m = 0; m < key.members; ++m) {
      uint64_t r = key.first_region + m;
      if (r == region) continue;
      const uint8_t* src = base + r * rs;
      for (uint32_t i = 0; i < rs; ++i) recon[i] ^= src[i];
    }
    codeword_t recon_cw = CodewordCompute(recon.data(), rs);
    if (recon_cw != sidecar.codewords[region]) {
      // The reconstruction itself fails the locator: the parity column (or
      // a second, codeword-canceling corruption) is damaged — fall back.
      report->unrepaired.push_back(CorruptRange{region * rs, rs});
      continue;
    }
    codeword_t corrupt_cw = CodewordCompute(base + region * rs, rs);
    if (apply) std::memcpy(base + region * rs, recon.data(), rs);
    report->repaired.push_back(CorruptRange{region * rs, rs});
    report->repair_deltas.push_back(corrupt_cw ^ recon_cw);
  }
  std::sort(report->repaired.begin(), report->repaired.end(),
            [](const CorruptRange& a, const CorruptRange& b) {
              return a.off < b.off;
            });
  std::sort(report->unrepaired.begin(), report->unrepaired.end(),
            [](const CorruptRange& a, const CorruptRange& b) {
              return a.off < b.off;
            });
}

}  // namespace cwdb
