#include "protect/protection.h"

#include <cinttypes>
#include <cstdio>

#include "common/codeword.h"
#include "obs/forensics.h"
#include "protect/codeword_protection.h"
#include "protect/hardware_protection.h"

namespace cwdb {

const char* ProtectionSchemeName(ProtectionScheme scheme) {
  switch (scheme) {
    case ProtectionScheme::kNone:
      return "Baseline";
    case ProtectionScheme::kDataCodeword:
      return "Data CW";
    case ProtectionScheme::kReadPrecheck:
      return "Data CW w/Precheck";
    case ProtectionScheme::kReadLog:
      return "Data CW w/ReadLog";
    case ProtectionScheme::kCodewordReadLog:
      return "Data CW w/CW ReadLog";
    case ProtectionScheme::kHardware:
      return "Memory Protection";
  }
  return "Unknown";
}

ProtectionManager::ProtectionManager(const ProtectionOptions& options,
                                     DbImage* image, MetricsRegistry* metrics)
    : options_(options),
      image_(image),
      metrics_(FallbackRegistry(metrics, &own_metrics_)) {
  ins_.updates = metrics_->counter("protect.updates");
  ins_.codeword_folds = metrics_->counter("protect.codeword_folds");
  ins_.prechecks = metrics_->counter("protect.prechecks");
  ins_.precheck_failures = metrics_->counter("protect.precheck_failures");
  ins_.regions_audited = metrics_->counter("protect.regions_audited");
  ins_.audit_failures = metrics_->counter("protect.audit_failures");
  ins_.mprotect_calls = metrics_->counter("protect.mprotect_calls");
  ins_.pages_unprotected = metrics_->counter("protect.pages_unprotected");
  ins_.fold_latency_ns = metrics_->histogram("protect.fold_latency_ns");
  ins_.precheck_latency_ns =
      metrics_->histogram("protect.precheck_latency_ns");
  ins_.repair_attempts = metrics_->counter("repair.attempts");
  ins_.repair_success = metrics_->counter("repair.success");
  ins_.repair_failed = metrics_->counter("repair.failed");
  ins_.repair_latency_ns = metrics_->histogram("repair.latency_ns");
  // Pre-register so every snapshot carries the histogram (empty until a
  // fault is detected) — the stats schema shouldn't depend on whether an
  // injection campaign ran.
  metrics_->histogram("protect.detection_latency_ns");
}

ProtectionStats ProtectionManager::stats() const {
  ProtectionStats s;
  s.updates = ins_.updates->Value();
  s.codeword_folds = ins_.codeword_folds->Value();
  s.prechecks = ins_.prechecks->Value();
  s.regions_audited = ins_.regions_audited->Value();
  s.audit_failures = ins_.audit_failures->Value();
  s.mprotect_calls = ins_.mprotect_calls->Value();
  s.pages_unprotected = ins_.pages_unprotected->Value();
  return s;
}

namespace {

/// Baseline: the prescribed interface exists but does nothing extra.
class NoProtection : public ProtectionManager {
 public:
  NoProtection(const ProtectionOptions& options, DbImage* image,
               MetricsRegistry* metrics)
      : ProtectionManager(options, image, metrics) {}

  Status BeginUpdate(DbPtr off, uint32_t len, UpdateHandle* h) override {
    h->off = off;
    h->len = len;
    ins_.updates->Add();
    return Status::OK();
  }
  void EndUpdate(const UpdateHandle&, const uint8_t*) override {}
  void AbortUpdate(const UpdateHandle&) override {}
  Status PrecheckRead(DbPtr, uint32_t) override { return Status::OK(); }
  Status AuditAll(std::vector<CorruptRange>*) override { return Status::OK(); }
  Status AuditRange(DbPtr, uint64_t, std::vector<CorruptRange>*) override {
    return Status::OK();
  }
  Status ResetFromImage() override { return Status::OK(); }
};

}  // namespace

bool ProtectionManager::RepairWithForensics(
    IncidentSource source, uint64_t lsn, uint64_t last_clean_audit_lsn,
    const std::vector<CorruptRange>& ranges, std::string_view detail,
    RepairEpisode* episode) {
  RepairEpisode local;
  RepairEpisode* ep = episode != nullptr ? episode : &local;
  *ep = RepairEpisode();
  // The detection dossier is filed before anything touches the image: its
  // hexdump captures the bytes as found, and a repair would destroy that
  // evidence.
  if (forensics_ != nullptr) {
    ep->detection_incident = forensics_->RecordIncident(
        source, lsn, last_clean_audit_lsn, ranges, detail);
  }
  if (!CanRepair()) {
    ep->outcome.unrepaired = ranges;
    return false;
  }
  ins_.repair_attempts->Add();
  uint64_t t0 = NowNs();
  Status s = TryRepair(ranges, &ep->outcome);
  ins_.repair_latency_ns->Record(NowNs() - t0);
  ep->fully_repaired = s.ok() && ep->outcome.unrepaired.empty();
  ins_.repair_success->Add(ep->outcome.repaired.size());
  ins_.repair_failed->Add(ep->outcome.unrepaired.size());
  for (const CorruptRange& r : ep->outcome.repaired) {
    metrics_->trace().Record(TraceEventType::kRepair, lsn, r.off, r.len);
  }
  if (!ep->outcome.repaired.empty() && forensics_ != nullptr) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "reconstructed %zu region(s) in place from parity "
                  "(%zu beyond the correction budget)",
                  ep->outcome.repaired.size(),
                  ep->outcome.unrepaired.size());
    ForensicsRecorder::IncidentExtras extras;
    extras.linked_incident_id = ep->detection_incident;
    extras.repair_deltas = ep->outcome.repair_deltas;
    ep->repair_incident =
        forensics_->RecordIncident(IncidentSource::kRepair, lsn,
                                   last_clean_audit_lsn,
                                   ep->outcome.repaired, buf, extras);
  }
  return ep->fully_repaired;
}

codeword_t ProtectionManager::ChecksumBytes(const DbImage& image, DbPtr off,
                                            uint32_t len) {
  // Lane convention shared with read-time checksum computation: fold with
  // the lane of the absolute offset so identical bytes at the same image
  // offset always produce the same checksum.
  return CodewordFold(off & 3, image.At(off), len);
}

Result<std::unique_ptr<ProtectionManager>> ProtectionManager::Create(
    const ProtectionOptions& options, DbImage* image,
    MetricsRegistry* metrics) {
  switch (options.scheme) {
    case ProtectionScheme::kNone:
      return std::unique_ptr<ProtectionManager>(
          new NoProtection(options, image, metrics));
    case ProtectionScheme::kDataCodeword:
    case ProtectionScheme::kReadPrecheck:
    case ProtectionScheme::kReadLog:
    case ProtectionScheme::kCodewordReadLog:
      return CodewordProtection::Create(options, image, metrics);
    case ProtectionScheme::kHardware:
      return HardwareProtection::Create(options, image, metrics);
  }
  return Status::InvalidArgument("unknown protection scheme");
}

}  // namespace cwdb
