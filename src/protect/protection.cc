#include "protect/protection.h"

#include "common/codeword.h"
#include "protect/codeword_protection.h"
#include "protect/hardware_protection.h"

namespace cwdb {

const char* ProtectionSchemeName(ProtectionScheme scheme) {
  switch (scheme) {
    case ProtectionScheme::kNone:
      return "Baseline";
    case ProtectionScheme::kDataCodeword:
      return "Data CW";
    case ProtectionScheme::kReadPrecheck:
      return "Data CW w/Precheck";
    case ProtectionScheme::kReadLog:
      return "Data CW w/ReadLog";
    case ProtectionScheme::kCodewordReadLog:
      return "Data CW w/CW ReadLog";
    case ProtectionScheme::kHardware:
      return "Memory Protection";
  }
  return "Unknown";
}

namespace {

/// Baseline: the prescribed interface exists but does nothing extra.
class NoProtection : public ProtectionManager {
 public:
  NoProtection(const ProtectionOptions& options, DbImage* image)
      : ProtectionManager(options, image) {}

  Status BeginUpdate(DbPtr off, uint32_t len, UpdateHandle* h) override {
    h->off = off;
    h->len = len;
    ++stats_.updates;
    return Status::OK();
  }
  void EndUpdate(const UpdateHandle&, const uint8_t*) override {}
  void AbortUpdate(const UpdateHandle&) override {}
  Status PrecheckRead(DbPtr, uint32_t) override { return Status::OK(); }
  Status AuditAll(std::vector<CorruptRange>*) override { return Status::OK(); }
  Status AuditRange(DbPtr, uint64_t, std::vector<CorruptRange>*) override {
    return Status::OK();
  }
  Status ResetFromImage() override { return Status::OK(); }
};

}  // namespace

codeword_t ProtectionManager::ChecksumBytes(const DbImage& image, DbPtr off,
                                            uint32_t len) {
  // Lane convention shared with read-time checksum computation: fold with
  // the lane of the absolute offset so identical bytes at the same image
  // offset always produce the same checksum.
  return CodewordFold(off & 3, image.At(off), len);
}

Result<std::unique_ptr<ProtectionManager>> ProtectionManager::Create(
    const ProtectionOptions& options, DbImage* image) {
  switch (options.scheme) {
    case ProtectionScheme::kNone:
      return std::unique_ptr<ProtectionManager>(
          new NoProtection(options, image));
    case ProtectionScheme::kDataCodeword:
    case ProtectionScheme::kReadPrecheck:
    case ProtectionScheme::kReadLog:
    case ProtectionScheme::kCodewordReadLog:
      return CodewordProtection::Create(options, image);
    case ProtectionScheme::kHardware:
      return HardwareProtection::Create(options, image);
  }
  return Status::InvalidArgument("unknown protection scheme");
}

}  // namespace cwdb
