#include "ckpt/att_codec.h"

#include "common/coding.h"

namespace cwdb {

std::string EncodeAtt(const TxnManager& mgr) {
  std::string out;
  const auto& att = mgr.att();
  PutFixed32(&out, static_cast<uint32_t>(att.size()));
  for (const auto& [id, txn] : att) {
    PutFixed64(&out, id);
    const auto& undo = txn->undo_log();
    PutFixed32(&out, static_cast<uint32_t>(undo.size()));
    for (const UndoRecord& u : undo) {
      PutFixed8(&out, static_cast<uint8_t>(u.kind));
      if (u.kind == UndoRecord::Kind::kPhysical) {
        // codeword_applied is always false here: the checkpoint latch
        // excludes in-flight updates.
        PutFixed64(&out, u.off);
        PutLengthPrefixed(&out, u.before);
      } else {
        PutFixed32(&out, u.op_id);
        PutFixed8(&out, u.level);
        PutFixed8(&out, static_cast<uint8_t>(u.undo.code));
        PutFixed16(&out, u.undo.table);
        PutFixed32(&out, u.undo.slot);
        PutFixed32(&out, u.undo.field_off);
        PutFixed64(&out, u.undo.raw_off);
        PutLengthPrefixed(&out, u.undo.payload);
      }
    }
  }
  return out;
}

Status DecodeAttInto(const std::string& blob, TxnManager* mgr) {
  Decoder dec(blob);
  uint32_t txn_count = dec.GetFixed32();
  for (uint32_t i = 0; i < txn_count && dec.ok(); ++i) {
    TxnId id = dec.GetFixed64();
    Transaction* txn = mgr->GetOrCreateRecovered(id);
    uint32_t undo_count = dec.GetFixed32();
    auto& undo_log = txn->mutable_undo_log();
    undo_log.clear();
    undo_log.reserve(undo_count);
    for (uint32_t j = 0; j < undo_count && dec.ok(); ++j) {
      UndoRecord u;
      u.kind = static_cast<UndoRecord::Kind>(dec.GetFixed8());
      if (u.kind == UndoRecord::Kind::kPhysical) {
        u.off = dec.GetFixed64();
        Slice before = dec.GetLengthPrefixed();
        u.before.assign(before.data(), before.size());
      } else if (u.kind == UndoRecord::Kind::kLogical) {
        u.op_id = dec.GetFixed32();
        u.level = dec.GetFixed8();
        u.undo.code = static_cast<UndoCode>(dec.GetFixed8());
        u.undo.table = dec.GetFixed16();
        u.undo.slot = dec.GetFixed32();
        u.undo.field_off = dec.GetFixed32();
        u.undo.raw_off = dec.GetFixed64();
        Slice payload = dec.GetLengthPrefixed();
        u.undo.payload.assign(payload.data(), payload.size());
      } else {
        return Status::Corruption("bad undo record kind in checkpointed ATT");
      }
      undo_log.push_back(std::move(u));
    }
  }
  if (!dec.ok()) return Status::Corruption("truncated checkpointed ATT");
  return Status::OK();
}

}  // namespace cwdb
