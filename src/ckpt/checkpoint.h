#ifndef CWDB_CKPT_CHECKPOINT_H_
#define CWDB_CKPT_CHECKPOINT_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "protect/protection.h"
#include "storage/db_image.h"
#include "txn/txn_manager.h"
#include "wal/system_log.h"

namespace cwdb {

/// Per-database file layout inside the database directory.
struct DbFiles {
  explicit DbFiles(const std::string& dir) : dir_(dir) {}
  std::string SystemLog() const { return dir_ + "/system.log"; }
  std::string CkptImage(int which) const {
    return dir_ + (which == 0 ? "/ckpt_A.img" : "/ckpt_B.img");
  }
  std::string CkptMeta(int which) const {
    return dir_ + (which == 0 ? "/ckpt_A.meta" : "/ckpt_B.meta");
  }
  /// Parity sidecar snapshotted with each checkpoint image: the per-region
  /// codewords + XOR parity columns the image was written under, used to
  /// verify (and repair) the image bytes at load time. Stale/missing/torn
  /// sidecars are ignored, never an error.
  std::string CkptParity(int which) const {
    return dir_ + (which == 0 ? "/ckpt_A.parity" : "/ckpt_B.parity");
  }
  std::string Anchor() const { return dir_ + "/cur_ckpt"; }
  std::string CorruptNote() const { return dir_ + "/corrupt.note"; }
  std::string AuditMeta() const { return dir_ + "/audit.meta"; }
  /// Metrics snapshot persisted by Database::DumpMetrics / Close, re-emitted
  /// by `cwdb_ctl stats`.
  std::string MetricsFile() const { return dir_ + "/metrics.json"; }
  /// Durable corruption-incident dossiers, one JSON object per line,
  /// appended by the ForensicsRecorder at every detection.
  std::string IncidentsFile() const { return dir_ + "/incidents.jsonl"; }
  /// Implication-chain graph written by the last corruption recovery,
  /// rendered by `cwdb_ctl explain-recovery`.
  std::string ProvenanceFile() const {
    return dir_ + "/recovery_provenance.json";
  }
  /// Span dump written by Database::DumpMetrics / Close when tracing is
  /// enabled; `cwdb_ctl trace-export` / `spans` read it back.
  std::string SpansFile() const { return dir_ + "/spans.json"; }
  /// Delta-encoded metrics time-series ring persisted on flush/Close and
  /// reloaded on reopen; `cwdb_ctl top` reads it cold.
  std::string MetricsHistoryFile() const {
    return dir_ + "/metrics_history.bin";
  }
  /// SLO engine report (per-objective burn rates, budget remaining),
  /// written next to metrics.json; gated by scripts/check_slo_report.py.
  std::string SloReportFile() const { return dir_ + "/slo_report.json"; }
  /// Crash-surviving flight-recorder mapping for the live incarnation.
  std::string BlackBox() const { return dir_ + "/blackbox.bin"; }
  /// Prior incarnation's box, rotated aside at reopen after an unclean
  /// death so `cwdb_ctl postmortem` can read the episode offline.
  std::string BlackBoxPrev() const { return dir_ + "/blackbox.prev.bin"; }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

/// Metadata stored alongside each checkpoint image.
struct CheckpointMeta {
  /// The checkpoint image is update-consistent with the log at CK_end:
  /// every record below CK_end that reached the stable log is reflected in
  /// the image, and no partial physical update is (paper §4.3 requires an
  /// update-consistent checkpoint for delete-transaction recovery).
  Lsn ck_end = 0;
  std::string att_blob;  ///< Checkpointed ATT with local undo logs.
};

/// Ping-pong checkpointer (paper §2.1): dirty pages are written alternately
/// to two checkpoint images Ckpt_A / Ckpt_B; the anchor file cur_ckpt names
/// the most recent complete one and is toggled atomically after the image,
/// the ATT and the metadata are durable.
///
/// A checkpoint here is update-consistent by construction: the image pages
/// and the ATT are copied while the checkpoint latch is held exclusively
/// (physical updates hold it shared for their whole update window), so no
/// partial update is ever captured. Disk writes and the certifying audit
/// happen after the latch is released.
class Checkpointer {
 public:
  Checkpointer(const DbFiles& files, DbImage* image, TxnManager* txns,
               SystemLog* log, ProtectionManager* protection,
               MetricsRegistry* metrics = nullptr);

  /// For a fresh database: writes a full checkpoint to image A and points
  /// the anchor at it.
  Status InitializeFresh();

  /// Takes one checkpoint. If `certify` is true, the entire database is
  /// audited after the image is written (paper §4.2, "Generating
  /// Checkpoints Free of Corruption"); on audit failure the anchor is NOT
  /// toggled, the failing regions are reported through *corrupt, and
  /// kCorruption is returned.
  Status Checkpoint(bool certify, std::vector<CorruptRange>* corrupt);

  /// Reads the anchor; returns 0 (A) or 1 (B), or NotFound if none.
  Result<int> ReadAnchor() const;

  /// Loads the active checkpoint image into the live arena and returns its
  /// metadata. Used by restart recovery.
  Result<CheckpointMeta> LoadActive();

  /// Reads only the metadata of the active checkpoint (cache recovery).
  Result<CheckpointMeta> ReadActiveMeta() const;

  /// Reads bytes [off, off+len) of the active checkpoint image into *out
  /// without touching the live arena (cache recovery repairs regions from
  /// the certified-clean disk image).
  Status ReadImageBytes(DbPtr off, uint64_t len, void* out) const;

  uint64_t checkpoints_taken() const { return ins_.checkpoints->Value(); }
  uint64_t pages_written_last() const { return pages_written_last_; }

  /// True while a checkpoint pass is running — the watchdog's checkpoint
  /// probe pairs this with checkpoints_taken() as the progress value.
  bool in_flight() const { return in_flight_.load(std::memory_order_acquire); }

 private:
  Status WriteCheckpointTo(int which, bool certify,
                           std::vector<CorruptRange>* corrupt);
  /// The durability half of a checkpoint: log flush, page writes, fsync,
  /// certification audit, metadata, anchor toggle. On failure the caller
  /// restores the cleared dirty bits. `trace` carries the pass's span
  /// context (unsampled when the tracer is off).
  Status WriteDurable(int which, const std::vector<uint64_t>& pages,
                      const std::string& page_bytes, Lsn ck_end,
                      std::string att_blob, bool have_sidecar,
                      const std::string& sidecar_blob, bool certify,
                      std::vector<CorruptRange>* corrupt,
                      const SpanContext& trace);
  Status WriteMeta(int which, const CheckpointMeta& meta);
  Result<CheckpointMeta> ReadMeta(int which) const;
  /// Closes the DESIGN §8 hole: verifies the freshly-loaded arena bytes
  /// against image `which`'s parity sidecar, repairs what the correction
  /// budget covers (filing a linked detection + kRepair dossier pair), and
  /// fails loudly (Corruption) only when damage exceeds the budget. A
  /// missing, torn or stale sidecar means "no verification possible" and
  /// returns OK.
  Status VerifyLoadedImage(int which, const CheckpointMeta& meta);

  struct Instruments {
    Counter* checkpoints;
    Counter* pages_written;
    Histogram* latency_ns;
  };

  DbFiles files_;
  DbImage* image_;
  TxnManager* txns_;
  SystemLog* log_;
  ProtectionManager* protection_;
  std::unique_ptr<MetricsRegistry> own_metrics_;
  MetricsRegistry* metrics_;
  Instruments ins_;
  uint64_t pages_written_last_ = 0;
  std::atomic<bool> in_flight_{false};
};

}  // namespace cwdb

#endif  // CWDB_CKPT_CHECKPOINT_H_
