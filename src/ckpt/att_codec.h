#ifndef CWDB_CKPT_ATT_CODEC_H_
#define CWDB_CKPT_ATT_CODEC_H_

#include <string>

#include "common/status.h"
#include "txn/txn_manager.h"

namespace cwdb {

/// Serialization of the active transaction table with its per-transaction
/// local undo logs, stored with every checkpoint (paper §2.1: "a copy of
/// the ATT with the local undo logs ... are stored with each checkpoint";
/// physical undo reaches disk only this way).

/// Serializes every active transaction's id and undo log. Must be called
/// with the checkpoint latch held exclusively (no local-log mutation in
/// flight).
std::string EncodeAtt(const TxnManager& mgr);

/// Rebuilds ATT entries from a checkpointed blob (restart recovery).
/// Existing ATT contents are preserved; decoded transactions are created
/// via GetOrCreateRecovered.
Status DecodeAttInto(const std::string& blob, TxnManager* mgr);

}  // namespace cwdb

#endif  // CWDB_CKPT_ATT_CODEC_H_
