#include "ckpt/archive.h"

#include "common/file_util.h"

namespace cwdb {

namespace {

constexpr char kArchiveImage[] = "/archived.img";
constexpr char kArchiveMeta[] = "/archived.meta";
constexpr char kArchiveLog[] = "/system.log";
constexpr char kArchiveAudit[] = "/audit.meta";

Status CopyFile(const std::string& from, const std::string& to) {
  std::string contents;
  CWDB_RETURN_IF_ERROR(ReadFileToString(from, &contents));
  return WriteFileAtomic(to, contents, "archive.file");
}

}  // namespace

Result<CheckpointMeta> CreateArchive(const DbFiles& db_files,
                                     const std::string& archive_dir) {
  CWDB_RETURN_IF_ERROR(MakeDirs(archive_dir));
  std::string anchor;
  CWDB_RETURN_IF_ERROR(ReadFileToString(db_files.Anchor(), &anchor));
  int which = anchor == "A" ? 0 : anchor == "B" ? 1 : -1;
  if (which < 0) return Status::Corruption("bad checkpoint anchor");

  CWDB_RETURN_IF_ERROR(
      CopyFile(db_files.CkptImage(which), archive_dir + kArchiveImage));
  CWDB_RETURN_IF_ERROR(
      CopyFile(db_files.CkptMeta(which), archive_dir + kArchiveMeta));
  CWDB_RETURN_IF_ERROR(
      CopyFile(db_files.SystemLog(), archive_dir + kArchiveLog));
  if (FileExists(db_files.AuditMeta())) {
    CWDB_RETURN_IF_ERROR(
        CopyFile(db_files.AuditMeta(), archive_dir + kArchiveAudit));
  }
  // Re-read the archived meta through a throwaway DbFiles view is not
  // possible (names differ), so parse nothing here: the caller can read
  // CK_end from the database. For convenience, decode the copied meta by
  // writing it under a temp DbFiles-compatible name... simpler: read the
  // live meta again via its own path using the image-independent part.
  // The meta file format is validated on restore; here we only report the
  // ck_end by scanning the copy for the caller.
  std::string meta_contents;
  CWDB_RETURN_IF_ERROR(
      ReadFileToString(archive_dir + kArchiveMeta, &meta_contents));
  CheckpointMeta meta;
  // Layout: magic(8) ck_end(8) ... (see Checkpointer::WriteMeta).
  if (meta_contents.size() < 16) {
    return Status::Corruption("archived meta too small");
  }
  std::memcpy(&meta.ck_end, meta_contents.data() + 8, 8);
  return meta;
}

Status RestoreArchive(const std::string& archive_dir,
                      const DbFiles& db_files) {
  if (!FileExists(archive_dir + kArchiveImage) ||
      !FileExists(archive_dir + kArchiveMeta)) {
    return Status::NotFound("no archive at " + archive_dir);
  }
  // Install as checkpoint A and point the anchor at it. The live log stays
  // in place: it is a superset of what the archive saw (append-only). If
  // the live log is damaged or missing, fall back to the archived copy.
  CWDB_RETURN_IF_ERROR(
      CopyFile(archive_dir + kArchiveImage, db_files.CkptImage(0)));
  CWDB_RETURN_IF_ERROR(
      CopyFile(archive_dir + kArchiveMeta, db_files.CkptMeta(0)));
  if (!FileExists(db_files.SystemLog())) {
    CWDB_RETURN_IF_ERROR(
        CopyFile(archive_dir + kArchiveLog, db_files.SystemLog()));
  }
  if (FileExists(archive_dir + kArchiveAudit)) {
    CWDB_RETURN_IF_ERROR(
        CopyFile(archive_dir + kArchiveAudit, db_files.AuditMeta()));
  }
  return WriteFileAtomic(db_files.Anchor(), "A");
}

}  // namespace cwdb
