#ifndef CWDB_CKPT_ARCHIVE_H_
#define CWDB_CKPT_ARCHIVE_H_

#include <string>

#include "ckpt/checkpoint.h"
#include "common/result.h"
#include "common/status.h"

namespace cwdb {

/// Checkpoint archives. The paper's prior-state recovery model (§4.1)
/// rewinds by "replaying logs which were generated prior to that point" —
/// which needs a checkpoint no newer than the rewind point. Since ping-pong
/// checkpointing overwrites the two live images, rewinding past them
/// requires an archived copy. (It also notes the post-recovery checkpoint
/// "invalidates all archives": after any corruption recovery, take fresh
/// archives.)
///
/// An archive is a directory holding a copy of the then-active checkpoint
/// image + metadata and the stable log prefix it refers to. The database's
/// own log is append-only and never truncated, so restoring an archive
/// only rewinds the *checkpoint*; redo replays forward from the archived
/// CK_end over the live log (optionally bounded by a prior-state limit).

/// Copies the active checkpoint (image, meta, anchor, audit meta, and the
/// stable log as a safety copy) from `db_files` into `archive_dir`
/// (created if absent). Call after Database::Checkpoint() for a fresh
/// archive point. Returns the archived checkpoint's metadata.
Result<CheckpointMeta> CreateArchive(const DbFiles& db_files,
                                     const std::string& archive_dir);

/// Installs the archived checkpoint into a COLD database directory (no
/// Database may have it open): the archived image/meta become the active
/// checkpoint; the live stable log is left untouched. A subsequent
/// Database::Open replays forward from the archived CK_end — combine with
/// RecoverToPriorState to stop at a rewind point.
Status RestoreArchive(const std::string& archive_dir,
                      const DbFiles& db_files);

}  // namespace cwdb

#endif  // CWDB_CKPT_ARCHIVE_H_
