#include "ckpt/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ckpt/att_codec.h"
#include "common/coding.h"
#include "common/crashpoint.h"
#include "common/crc32.h"
#include "common/file_util.h"
#include "obs/forensics.h"
#include "protect/parity_repair.h"

namespace cwdb {

namespace {

constexpr uint64_t kMetaMagic = 0x434B50544D455441ull;  // "CKPTMETA"

}  // namespace

Checkpointer::Checkpointer(const DbFiles& files, DbImage* image,
                           TxnManager* txns, SystemLog* log,
                           ProtectionManager* protection,
                           MetricsRegistry* metrics)
    : files_(files),
      image_(image),
      txns_(txns),
      log_(log),
      protection_(protection),
      metrics_(FallbackRegistry(metrics, &own_metrics_)) {
  ins_.checkpoints = metrics_->counter("ckpt.checkpoints");
  ins_.pages_written = metrics_->counter("ckpt.pages_written");
  ins_.latency_ns = metrics_->histogram("ckpt.latency_ns");
}

Status Checkpointer::InitializeFresh() {
  image_->MarkAllDirty();
  CWDB_RETURN_IF_ERROR(crashpoint::Check("ckpt.image.setsize"));
  CWDB_RETURN_IF_ERROR(EnsureFileSize(files_.CkptImage(0), image_->size()));
  CWDB_RETURN_IF_ERROR(crashpoint::Check("ckpt.image.setsize"));
  CWDB_RETURN_IF_ERROR(EnsureFileSize(files_.CkptImage(1), image_->size()));
  // Full first checkpoint into A; B stays all-dirty so the next checkpoint
  // writes it completely.
  return WriteCheckpointTo(0, /*certify=*/false, nullptr);
}

Status Checkpointer::Checkpoint(bool certify,
                                std::vector<CorruptRange>* corrupt) {
  CWDB_ASSIGN_OR_RETURN(int active, ReadAnchor());
  return WriteCheckpointTo(1 - active, certify, corrupt);
}

Status Checkpointer::WriteCheckpointTo(int which, bool certify,
                                       std::vector<CorruptRange>* corrupt) {
  const uint32_t page_size = image_->page_size();
  const uint64_t t0 = NowNs();
  in_flight_.store(true, std::memory_order_release);
  // Checkpoints are rare and each one is interesting: trace every pass
  // (forced; unsampled context when the tracer is off).
  Tracer* tracer = metrics_->tracer();
  uint64_t root_span = 0;
  SpanContext ctx = tracer->StartForcedTrace(&root_span);

  // --- Copy phase, under the exclusive checkpoint latch: no physical
  // update is in flight and no local log is mid-mutation, so the copied
  // pages + ATT are update-consistent with the log at CK_end. ---
  std::vector<uint64_t> pages;
  std::string page_bytes;
  std::string att_blob;
  std::string sidecar_blob;
  bool have_sidecar = false;
  Lsn ck_end;
  {
    ExclusiveGuard guard(txns_->checkpoint_latch());
    ck_end = log_->CurrentLsn();
    pages = image_->DirtyPages(which);
    page_bytes.resize(pages.size() * static_cast<size_t>(page_size));
    for (size_t i = 0; i < pages.size(); ++i) {
      std::memcpy(page_bytes.data() + i * page_size,
                  image_->At(pages[i] * page_size), page_size);
    }
    att_blob = EncodeAtt(*txns_);
    // Under the exclusive latch no update window (and no repair — repairs
    // take the latch shared) is in flight, so the codewords and parity
    // columns snapshotted here describe exactly the arena bytes the image
    // file will hold once the captured pages land.
    have_sidecar = protection_->SnapshotSidecar(ck_end, &sidecar_blob);
    // The snapshot is taken; pages dirtied from here on belong to the next
    // checkpoint of this image. If any durability step below fails, the
    // snapshot's bits are restored (see the failure path at the end) so
    // the next checkpoint to this image rewrites every captured page —
    // otherwise it would silently skip them and certify a stale image.
    image_->ClearDirty(which);
  }
  pages_written_last_ = pages.size();
  if (ctx.sampled()) {
    tracer->Record(ctx, SpanKind::kCheckpointCopy, t0, NowNs(), pages.size(),
                   page_size);
  }

  // --- Durability phase, off the critical path. ---
  Status s = WriteDurable(which, pages, page_bytes, ck_end,
                          std::move(att_blob), have_sidecar, sidecar_blob,
                          certify, corrupt, ctx);
  if (ctx.sampled()) {
    tracer->RecordWithId(ctx.Under(0), root_span, SpanKind::kCheckpoint, t0,
                         NowNs(), pages.size(),
                         static_cast<uint64_t>(which));
  }
  in_flight_.store(false, std::memory_order_release);
  if (!s.ok()) {
    // Nothing certified: the anchor still names the previous image. Put
    // the captured pages back in the dirty set (under the latch — the
    // bitmaps race with concurrent MarkDirty otherwise). Re-marking a
    // page that was re-dirtied meanwhile is a harmless superset.
    ExclusiveGuard guard(txns_->checkpoint_latch());
    image_->MarkPagesDirty(which, pages);
    return s;
  }
  ins_.checkpoints->Add();
  ins_.pages_written->Add(pages.size());
  ins_.latency_ns->Record(NowNs() - t0);
  metrics_->trace().Record(TraceEventType::kCheckpoint, ck_end, pages.size(),
                           static_cast<uint64_t>(which));
  return Status::OK();
}

Status Checkpointer::WriteDurable(int which,
                                  const std::vector<uint64_t>& pages,
                                  const std::string& page_bytes,
                                  Lsn ck_end, std::string att_blob,
                                  bool have_sidecar,
                                  const std::string& sidecar_blob,
                                  bool certify,
                                  std::vector<CorruptRange>* corrupt,
                                  const SpanContext& trace) {
  const uint32_t page_size = image_->page_size();
  Tracer* tracer = metrics_->tracer();
  const bool traced = trace.sampled();
  CWDB_RETURN_IF_ERROR(log_->Flush());

  const uint64_t t_write = traced ? NowNs() : 0;
  int fd = ::open(files_.CkptImage(which).c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::IoError("open " + files_.CkptImage(which) + ": " +
                           std::strerror(errno));
  }
  for (size_t i = 0; i < pages.size(); ++i) {
    Status s = crashpoint::InjectedPWrite("ckpt.page.pwrite", fd,
                                          page_bytes.data() + i * page_size,
                                          page_size, pages[i] * page_size);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
  }
  if (traced) {
    tracer->Record(trace, SpanKind::kCheckpointWrite, t_write, NowNs(),
                   page_bytes.size(), pages.size());
  }
  const uint64_t t_fsync = traced ? NowNs() : 0;
  Status s = crashpoint::Check("ckpt.image.fsync");
  if (s.ok()) s = FsyncFd(fd);
  ::close(fd);
  if (traced) {
    tracer->Record(trace, SpanKind::kCheckpointFsync, t_fsync, NowNs());
  }
  CWDB_RETURN_IF_ERROR(s);

  // --- Certification audit (paper §4.2): after the checkpoint is written,
  // audit every page of the database. A clean full audit implies the
  // checkpoint is free of direct AND indirect corruption. The anchor is
  // only toggled on a clean audit. ---
  if (certify) {
    const uint64_t t_cert = traced ? NowNs() : 0;
    Status audit = protection_->AuditAll(corrupt);
    if (traced) {
      tracer->Record(trace, SpanKind::kCheckpointCertify, t_cert, NowNs(),
                     corrupt != nullptr ? corrupt->size() : 0);
    }
    if (!audit.ok()) return audit;
  }

  // The sidecar lands after the certified image and before the meta/anchor
  // toggle. Atomic replace with no crash point: a crash mid-write leaves
  // the previous sidecar, whose CK_end no longer matches the meta, so load
  // recognizes it as stale and simply skips verification.
  if (have_sidecar) {
    CWDB_RETURN_IF_ERROR(WriteFileAtomic(files_.CkptParity(which),
                                         sidecar_blob));
  } else {
    CWDB_RETURN_IF_ERROR(RemoveFileIfExists(files_.CkptParity(which)));
  }

  CheckpointMeta meta;
  meta.ck_end = ck_end;
  meta.att_blob = std::move(att_blob);
  CWDB_RETURN_IF_ERROR(WriteMeta(which, meta));

  return WriteFileAtomic(files_.Anchor(), which == 0 ? "A" : "B",
                         "ckpt.anchor");
}

Status Checkpointer::WriteMeta(int which, const CheckpointMeta& meta) {
  std::string body;
  PutFixed64(&body, kMetaMagic);
  PutFixed64(&body, meta.ck_end);
  PutFixed64(&body, image_->size());
  PutFixed32(&body, image_->page_size());
  PutLengthPrefixed(&body, meta.att_blob);
  std::string out = body;
  PutFixed32(&out, Crc32c(body.data(), body.size()));
  return WriteFileAtomic(files_.CkptMeta(which), out, "ckpt.meta");
}

Result<CheckpointMeta> Checkpointer::ReadMeta(int which) const {
  std::string contents;
  CWDB_RETURN_IF_ERROR(ReadFileToString(files_.CkptMeta(which), &contents));
  if (contents.size() < 4) {
    return Status::Corruption("checkpoint meta too short");
  }
  std::string body = contents.substr(0, contents.size() - 4);
  uint32_t crc = DecodeFixed32(contents.data() + contents.size() - 4);
  if (Crc32c(body.data(), body.size()) != crc) {
    return Status::Corruption("checkpoint meta CRC mismatch");
  }
  Decoder dec(body);
  if (dec.GetFixed64() != kMetaMagic) {
    return Status::Corruption("checkpoint meta bad magic");
  }
  CheckpointMeta meta;
  meta.ck_end = dec.GetFixed64();
  uint64_t arena_size = dec.GetFixed64();
  uint32_t page_size = dec.GetFixed32();
  if (arena_size != image_->size() || page_size != image_->page_size()) {
    return Status::Corruption("checkpoint geometry mismatch");
  }
  Slice att = dec.GetLengthPrefixed();
  meta.att_blob.assign(att.data(), att.size());
  if (!dec.ok()) return Status::Corruption("checkpoint meta truncated");
  return meta;
}

Result<int> Checkpointer::ReadAnchor() const {
  std::string contents;
  Status s = ReadFileToString(files_.Anchor(), &contents);
  if (!s.ok()) return s;
  if (contents == "A") return 0;
  if (contents == "B") return 1;
  return Status::Corruption("bad checkpoint anchor: " + contents);
}

Result<CheckpointMeta> Checkpointer::ReadActiveMeta() const {
  CWDB_ASSIGN_OR_RETURN(int which, ReadAnchor());
  return ReadMeta(which);
}

Status Checkpointer::ReadImageBytes(DbPtr off, uint64_t len,
                                    void* out) const {
  CWDB_ASSIGN_OR_RETURN(int which, ReadAnchor());
  int fd = ::open(files_.CkptImage(which).c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open " + files_.CkptImage(which) + ": " +
                           std::strerror(errno));
  }
  Status s = PReadAll(fd, out, len, off);
  ::close(fd);
  return s;
}

Result<CheckpointMeta> Checkpointer::LoadActive() {
  CWDB_ASSIGN_OR_RETURN(int which, ReadAnchor());
  CWDB_ASSIGN_OR_RETURN(CheckpointMeta meta, ReadMeta(which));
  int fd = ::open(files_.CkptImage(which).c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open " + files_.CkptImage(which) + ": " +
                           std::strerror(errno));
  }
  Status s = PReadAll(fd, image_->base(), image_->size(), 0);
  ::close(fd);
  CWDB_RETURN_IF_ERROR(s);
  CWDB_RETURN_IF_ERROR(image_->ValidateHeader());
  // The old DESIGN §8 hole: certification audited the in-memory image, not
  // the bytes that landed on disk, so a flip during the image write was
  // loaded silently. Verify the loaded bytes against the checkpoint's
  // parity sidecar and repair in place what the budget covers.
  CWDB_RETURN_IF_ERROR(VerifyLoadedImage(which, meta));
  // Everything is dirty relative to both images until proven otherwise —
  // after a crash the volatile dirty sets are gone, so the next checkpoint
  // to each image must be full. (This also carries any load-time repair
  // into the next certified checkpoint.)
  image_->MarkAllDirty();
  return meta;
}

Status Checkpointer::VerifyLoadedImage(int which, const CheckpointMeta& meta) {
  std::string blob;
  Status read = ReadFileToString(files_.CkptParity(which), &blob,
                                 MissingFile::kTreatAsEmpty);
  if (!read.ok() || blob.empty()) return Status::OK();  // No sidecar.
  Result<ParitySidecar> decoded = DecodeParitySidecar(blob);
  if (!decoded.ok()) {
    // Torn or damaged sidecar: no verification possible, never a failure.
    metrics_->counter("repair.sidecar_invalid")->Add();
    return Status::OK();
  }
  const ParitySidecar& sidecar = decoded.value();
  if (sidecar.ck_end != meta.ck_end || sidecar.arena_size != image_->size()) {
    // A crash between the image write and the sidecar replace leaves the
    // previous checkpoint's sidecar behind; its CK_end gives it away.
    metrics_->counter("repair.sidecar_stale")->Add();
    return Status::OK();
  }

  uint64_t regions_verified = 0;
  std::vector<CorruptRange> detected =
      VerifyImageAgainstSidecar(sidecar, image_->base(), &regions_verified);
  metrics_->counter("repair.load_verified_regions")->Add(regions_verified);
  if (detected.empty()) return Status::OK();

  ForensicsRecorder* forensics = protection_->forensics();
  // Detection dossier before the repair touches anything: its hexdump is
  // the only durable record of the corrupt bytes. (The codeword probe may
  // report stale live-table values here — the table still describes the
  // pre-load arena — which is accepted noise; the sidecar evidence is
  // what located the damage.)
  uint64_t detection_id = 0;
  if (forensics != nullptr) {
    char detail[128];
    std::snprintf(detail, sizeof(detail),
                  "checkpoint image %c failed parity-sidecar verification at "
                  "load; attempting repair",
                  which == 0 ? 'A' : 'B');
    detection_id = forensics->RecordIncident(
        IncidentSource::kCkptLoad, meta.ck_end, /*last_clean_audit_lsn=*/0,
        detected, detail);
  }

  ImageRepairReport report;
  RepairImageWithSidecar(sidecar, image_->base(), detected, /*apply=*/true,
                         &report);
  metrics_->counter("repair.load_repaired")->Add(report.repaired.size());
  metrics_->counter("repair.load_unrepaired")->Add(report.unrepaired.size());
  for (const CorruptRange& r : report.repaired) {
    metrics_->trace().Record(TraceEventType::kRepair, meta.ck_end, r.off,
                             r.len);
  }
  if (!report.repaired.empty() && forensics != nullptr) {
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "reconstructed %zu checkpoint-load region(s) in place from "
                  "the parity sidecar (%zu beyond the correction budget)",
                  report.repaired.size(), report.unrepaired.size());
    ForensicsRecorder::IncidentExtras extras;
    extras.linked_incident_id = detection_id;
    extras.repair_deltas = report.repair_deltas;
    forensics->RecordIncident(IncidentSource::kRepair, meta.ck_end,
                              /*last_clean_audit_lsn=*/0, report.repaired,
                              detail, extras);
  }
  if (!report.unrepaired.empty()) {
    // Delete-transaction recovery presumes a clean checkpoint, so it cannot
    // paper over this. The silent load is gone; what remains is loud.
    return Status::Corruption(
        "checkpoint image corrupt beyond parity correction budget");
  }
  return Status::OK();
}

}  // namespace cwdb
