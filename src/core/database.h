#ifndef CWDB_CORE_DATABASE_H_
#define CWDB_CORE_DATABASE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <condition_variable>
#include <mutex>
#include <thread>

#include "ckpt/checkpoint.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/forensics.h"
#include "obs/history.h"
#include "obs/postmortem.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/stats_server.h"
#include "obs/watchdog.h"
#include "protect/options.h"
#include "protect/protection.h"
#include "recovery/recovery.h"
#include "storage/db_image.h"
#include "storage/integrity.h"
#include "storage/shard_map.h"
#include "txn/table_ops.h"
#include "txn/txn_manager.h"
#include "wal/system_log.h"

namespace cwdb {

/// Background metrics persistence. With a nonzero interval a flusher
/// thread re-captures the registry and rewrites <dir>/metrics.json on that
/// cadence, so the snapshot (schema-versioned, wall-clock stamped) survives
/// a process death between explicit DumpMetrics() calls.
struct MetricsOptions {
  uint64_t flush_interval_ms = 0;  ///< 0 = no background flushing.
};

/// Configuration for opening a cwdb database.
struct DatabaseOptions {
  /// Directory holding the stable log, the two checkpoint images and the
  /// anchor. Created if absent.
  std::string path;

  /// Size of the in-memory database image. The whole database lives in
  /// memory (Dalí model); disk is only for the log and checkpoints.
  uint64_t arena_size = 64ull << 20;

  /// Database page size (dirty tracking / checkpoint granularity). Must be
  /// a power of two and a multiple of the OS page size.
  uint32_t page_size = 8192;

  /// Number of engine shards. The arena is partitioned into this many
  /// contiguous page/region-aligned spans (ShardMap); the protection
  /// latches and codeword tables, the lock-manager segments and the WAL
  /// append staging are all instantiated per shard, so transactions on
  /// disjoint shards share no hot state. 0 = one shard per hardware
  /// thread; 1 = the pre-sharding single-shard layout.
  size_t shards = 0;

  /// Corruption-protection scheme and region size (paper §3, Table 2).
  ProtectionOptions protection;

  /// Audit the whole database after writing each checkpoint and certify it
  /// free of corruption (§4.2). Only meaningful for codeword schemes.
  bool certify_checkpoints = true;

  /// Prior-state recovery at open (§4.1): replay the log only up to this
  /// LSN, discarding (and reporting) every transaction that committed at
  /// or after it. Use together with RestoreArchive to rewind past the
  /// live checkpoints. kInvalidLsn = recover to the latest state.
  Lsn recover_to_lsn = kInvalidLsn;

  /// Periodic metrics flushing (see MetricsOptions).
  MetricsOptions metrics;

  /// Metrics time-series history (src/obs/history.h): with a nonzero
  /// interval a background sampler scrapes the registry into an in-process
  /// ring, persisted to <dir>/metrics_history.bin on flush/Close and
  /// reloaded on reopen — what `cwdb_ctl top` and GET /query serve.
  HistoryOptions history;

  /// Declarative SLO engine (src/obs/slo.h): when enabled, evaluates
  /// multi-window burn rates on every history tick, files kSloBurn
  /// dossiers and degrades /healthz to `503 slo: ...` while burning.
  SloOptions slo;

  /// Span tracing (src/obs/tracer.h). Fraction of transactions whose whole
  /// commit pipeline — begin, lock waits, read prechecks, codeword folds,
  /// WAL staging, the cross-thread group-commit hop, fsync, ack — is
  /// recorded as a span tree. 0 (the default) compiles the hot path down to
  /// one relaxed load per instrumentation site; 1.0 traces everything.
  /// Checkpoints, audit sweeps and recovery are always traced while the
  /// rate is nonzero (forced roots — rare and each one interesting).
  double trace_sample_rate = 0.0;
  /// Seed for the deterministic sampler: the same seed and rate pick the
  /// same transactions on every run (reproducible traces).
  uint64_t trace_seed = 0x9e3779b97f4a7c15ull;
  /// Capacity (spans) of each thread's lock-free span ring.
  size_t trace_ring_capacity = 4096;

  /// Stall watchdog over the commit pipeline (see WatchdogOptions). Off by
  /// default; when enabled it watches the group-commit drainer, the
  /// background auditor, checkpoint wall time and (opt-in) transaction age,
  /// filing a stall dossier into incidents.jsonl and degrading /healthz.
  WatchdogOptions watchdog;

  /// Serve GET /metrics, /incidents and /healthz on 127.0.0.1 from a
  /// background thread (see StatsServer). The bound port is available from
  /// stats_port() once open.
  bool serve_stats = false;
  StatsServerOptions stats_server;

  /// Crash-surviving flight recorder (src/obs/flight_recorder.h): a
  /// mmap-backed black box at <dir>/blackbox.bin mirroring the trace-ring
  /// tail, LSN frontiers, armed crash points and watchdog/SLO state, plus
  /// an optional fatal-signal handler that appends a crash record. At
  /// reopen after an unclean death the box is rotated aside, a kCrash
  /// dossier is filed, and `cwdb_ctl postmortem` renders the episode.
  FlightRecorderOptions flight_recorder;
};

/// Result of an explicit audit (§3.2).
struct AuditReport {
  bool clean = true;
  Lsn audit_lsn = 0;  ///< Log position at which this audit began.
  std::vector<CorruptRange> ranges;
  uint64_t regions_audited = 0;
};

/// Aggregate counters for experiments.
struct DatabaseStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t checkpoints = 0;
  uint64_t log_bytes_appended = 0;
  uint64_t log_flushes = 0;
  ProtectionStats protection;
  uint64_t protection_space_overhead_bytes = 0;
};

/// cwdb: a Dalí-style main-memory storage manager whose persistent data is
/// guarded against addressing errors by the codeword schemes of Bohannon et
/// al., ICDE 1999.
///
/// Typical use:
///
///   cwdb::DatabaseOptions opts;
///   opts.path = "/tmp/mydb";
///   opts.protection.scheme = cwdb::ProtectionScheme::kReadLog;
///   opts.protection.region_size = 512;
///   auto db = cwdb::Database::Open(opts);
///   auto txn = (*db)->Begin();
///   auto table = (*db)->CreateTable(*txn, "accounts", 100, 1000);
///   ...
///   (*db)->Commit(*txn);
///
/// Thread-safety: distinct transactions may run on distinct threads;
/// a single Transaction must not be used concurrently. Audit() and
/// Checkpoint() may run concurrently with transactions. CrashAndRecover()
/// requires external quiescence (no in-flight calls on other threads).
class Database {
 public:
  /// Opens (creating or recovering) the database. If the previous incarnation
  /// noted corruption (a failed audit wrote corrupt.note), or the scheme is
  /// Codeword Read Logging (which per §4.3 runs corruption recovery on every
  /// restart), the delete-transaction recovery algorithm runs and its report
  /// is available via last_recovery_report().
  static Result<std::unique_ptr<Database>> Open(const DatabaseOptions& options);

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // -- Transactions --

  Result<Transaction*> Begin();
  /// Commits (forcing the log) and invalidates `txn`.
  Status Commit(Transaction* txn);
  /// Rolls back and invalidates `txn`.
  Status Abort(Transaction* txn);

  // -- Schema and records --

  /// Savepoints: partial rollback within a transaction. The savepoint id
  /// is valid until the transaction ends or a rollback passes it; rolling
  /// back keeps the transaction active (and its locks held) while the
  /// work after the savepoint is undone through the normal logged-
  /// compensation machinery — so a crash mid-partial-rollback recovers
  /// like any other.
  Result<uint64_t> CreateSavepoint(Transaction* txn) {
    return txns_->CreateSavepoint(txn);
  }
  Status RollbackToSavepoint(Transaction* txn, uint64_t savepoint) {
    return txns_->RollbackToSavepoint(txn, savepoint);
  }

  Result<TableId> CreateTable(Transaction* txn, const std::string& name,
                              uint32_t record_size, uint64_t capacity);
  /// Looks up a table by name (NotFound if absent).
  Result<TableId> FindTable(const std::string& name) const;
  Result<RecordId> Insert(Transaction* txn, TableId table, Slice record);
  Status Delete(Transaction* txn, TableId table, uint32_t slot);
  Status Update(Transaction* txn, TableId table, uint32_t slot,
                uint32_t field_off, Slice data);
  Status Read(Transaction* txn, TableId table, uint32_t slot,
              std::string* out);
  Status ReadField(Transaction* txn, TableId table, uint32_t slot,
                   uint32_t field_off, uint32_t len, void* out);
  /// Iterates the live records of a table in slot order through the
  /// protected read path (see table_ops::Scan).
  Status Scan(Transaction* txn, TableId table,
              const std::function<Status(uint32_t slot, Slice record)>& fn) {
    return table_ops::Scan(*txns_, txn, table, fn);
  }

  /// Raw in-place update of mapped bytes (application direct access). Goes
  /// through the prescribed interface; takes no record locks.
  Status RawUpdate(Transaction* txn, DbPtr off, Slice data);
  uint64_t CountRecords(TableId table) const;

  // -- Maintenance --

  /// Takes a ping-pong checkpoint (certified by a full audit when the
  /// scheme has codewords and certify_checkpoints is set). On a failed
  /// certification the corruption is noted and kCorruption returned; call
  /// CrashAndRecover() to run corruption recovery.
  Status Checkpoint();

  /// Audits every protection region now (§3.2). On failure the corruption
  /// note is written so that CrashAndRecover() (or the next Open) runs the
  /// delete-transaction algorithm.
  Result<AuditReport> Audit();

  /// Cache-recovery model (§4.1): repairs the given directly-corrupted
  /// regions in place from the checkpoint + redo log. Requires no active
  /// transactions. Valid when indirect corruption is impossible (Read
  /// Prechecking) or known absent.
  Status CacheRecover(const std::vector<CorruptRange>& ranges);

  /// Durably notes externally-detected corruption (a failed background
  /// audit slice, an application integrity check, an operator) so the next
  /// recovery — crash-induced or explicit — runs the delete-transaction
  /// algorithm over it.
  Status ReportCorruption(const std::vector<CorruptRange>& ranges);

  /// In-place error-correcting repair of detected-corrupt ranges from the
  /// parity tier. Files a detection dossier (as `source`), attempts the
  /// reconstruction, and on any success files a linked kRepair dossier.
  /// Returns true when every range was repaired (the codewords re-verify
  /// and no corruption note is needed); ranges beyond the correction
  /// budget are returned through *unrepaired (may be null) and still need
  /// delete-transaction recovery.
  bool TryRepairRanges(const std::vector<CorruptRange>& ranges,
                       IncidentSource source,
                       std::vector<CorruptRange>* unrepaired = nullptr);

  /// Explicit corruption recovery for errors found by means other than a
  /// codeword audit (§4: "if other audit mechanisms ... are available to
  /// determine the location and a lower bound on the time of the error,
  /// the recovery mechanisms described in this section can aid in the
  /// subsequent recovery"). `not_before_lsn`, if given, is that lower
  /// bound (e.g. from CurrentLsn() before a suspect deployment); otherwise
  /// the last clean audit is assumed.
  Status RecoverFromCorruption(const std::vector<CorruptRange>& ranges,
                               std::optional<Lsn> not_before_lsn = {});

  /// Durably records that a clean full audit began at `audit_lsn`
  /// (advances Audit_SN). Used by the background auditor.
  Status RecordCleanAudit(Lsn audit_lsn);

  /// Prior-state corruption recovery model (§4.1): returns the database to
  /// a transaction-consistent state as of `point` (an earlier CurrentLsn
  /// value) by replaying only the log below it. Every transaction that
  /// committed at or after `point` is discarded and listed in
  /// last_recovery_report().deleted_txns — unlike the delete-transaction
  /// model, which removes only the provably affected ones. Fails if the
  /// active checkpoint postdates `point` (an archived checkpoint would be
  /// needed). Like the paper, the log is not amended: a crash before this
  /// call's final checkpoint completes reverts to latest-state recovery.
  Status RecoverToPriorState(Lsn point);

  /// Takes a fresh certified checkpoint and copies it (image, metadata,
  /// stable log) into `archive_dir`, returning the archive's CK_end.
  /// Restoring the archive into a cold database directory (see
  /// ckpt/archive.h RestoreArchive) enables RecoverToPriorState for points
  /// older than the live ping-pong checkpoints (§4.1).
  Result<Lsn> Archive(const std::string& archive_dir);

  /// Current end of the system log — usable as a logical timestamp for
  /// RecoverFromCorruption / lineage queries.
  Lsn CurrentLsn() const { return log_->CurrentLsn(); }

  /// Küspert-style structural audit of the image's control structures
  /// (§4, [10]): layout invariants of the header, table directory and
  /// allocation bitmaps. Complements the codeword audit with a semantic
  /// diagnosis; the implicated ranges can be fed to RecoverFromCorruption.
  std::vector<IntegrityViolation> VerifyIntegrity() const {
    return CheckImageIntegrity(*image_);
  }

  /// Simulates a process crash and runs restart recovery in place: the
  /// un-flushed log tail, the ATT, lock tables and (if noted) corruption
  /// state are discarded exactly as a real crash would, then recovery
  /// rebuilds the image from the active checkpoint and the stable log.
  /// All outstanding Transaction* become invalid.
  Status CrashAndRecover();

  /// Clean shutdown: takes a final checkpoint, flushes the log so the next
  /// Open recovers instantly (nothing to redo), and persists the metrics
  /// snapshot for post-mortem `cwdb_ctl stats`. Optional — destroying the
  /// Database without it is always safe (recovery replays the log) and is
  /// exactly what a crash looks like.
  ///
  /// Ordering matters: the log flush drains the group-commit queue (every
  /// staged shard batch reaches the stable file), and the background
  /// workers (stats server, metrics flusher) are stopped *before* the
  /// final metrics dump — otherwise the flusher could overwrite the
  /// shutdown snapshot with a stale capture, or the dump could miss flush
  /// counters still being bumped by in-flight background work.
  Status Close() {
    CWDB_CHECK(txns_->att().empty())
        << "Close() with active transactions; commit or abort them first";
    CWDB_RETURN_IF_ERROR(Checkpoint());
    CWDB_RETURN_IF_ERROR(log_->Flush());
    StopBackgroundWork();
    Result<std::string> snap = DumpMetrics();
    // Marked last: everything above can still die mid-write and the box
    // would rightly read as unclean.
    if (flight_recorder_ != nullptr) flight_recorder_->MarkCleanShutdown();
    return snap.ok() ? Status::OK() : snap.status();
  }

  /// Report of the most recent recovery (empty if none ran).
  const RecoveryReport& last_recovery_report() const { return last_report_; }

  DatabaseStats GetStats() const;

  /// Captures the full metrics snapshot (counters, gauges, histograms and
  /// the event trace), persists it as JSON to <dir>/metrics.json — which is
  /// what `cwdb_ctl stats <dir>` re-emits — and returns the same JSON.
  Result<std::string> DumpMetrics();

  /// The database-wide metrics registry. Every component of this database
  /// (txn manager, system log, protection, checkpointer, auditor) reports
  /// into it; per-database rather than process-global so benchmarks can
  /// compare schemes across several open databases in one process.
  MetricsRegistry* metrics() { return &metrics_; }

  /// Corruption-incident dossier recorder (always present once open; every
  /// detection path files into <dir>/incidents.jsonl through it).
  ForensicsRecorder* forensics() { return forensics_.get(); }

  /// Stall watchdog, or nullptr when options.watchdog.enabled is false.
  /// Components (the background auditor) register probes against it.
  Watchdog* watchdog() { return watchdog_.get(); }

  /// Integrity coverage map: per-shard last-audited LSN/wall-time and the
  /// live sweep cursor (always present; the background auditor and full
  /// audits publish into it).
  ScrubMap* scrub() { return scrub_.get(); }

  /// Metrics time-series history (always present; the sampler thread only
  /// runs when options.history.interval_ms > 0).
  MetricsHistory* history() { return history_.get(); }

  /// SLO engine, or nullptr when options.slo.enabled is false.
  SloEngine* slo() { return slo_.get(); }

  /// The crash-surviving black box, or nullptr when
  /// options.flight_recorder.enabled is false (or its mapping failed —
  /// the database runs fine without one).
  FlightRecorder* flight_recorder() { return flight_recorder_.get(); }

  /// Decoded black box of the previous incarnation when it died uncleanly
  /// (rotated to blackbox.prev.bin at this open); nullptr otherwise.
  const BlackBoxReport* prior_blackbox() const {
    return prior_blackbox_ ? &*prior_blackbox_ : nullptr;
  }
  /// Id of the kCrash dossier filed for that death (0 = none filed).
  uint64_t crash_incident_id() const { return crash_incident_id_; }

  /// Port of the live stats endpoint, or 0 when serve_stats is off.
  uint16_t stats_port() const {
    return stats_server_ != nullptr ? stats_server_->port() : 0;
  }

  // -- Direct access (application code, fault injection, tests) --

  /// Base of the mapped database image. Writing through this pointer
  /// without BeginUpdate/EndUpdate is exactly the class of software error
  /// the paper studies.
  uint8_t* UnsafeRawBase() { return image_->base(); }
  uint64_t arena_size() const { return image_->size(); }

  /// The static shard partition of the arena (single-shard when
  /// options.shards resolved to 1).
  const ShardMap& shard_map() const { return shard_map_; }

  DbImage* image() { return image_.get(); }
  ProtectionManager* protection() { return protection_.get(); }
  TxnManager* txns() { return txns_.get(); }
  SystemLog* log() { return log_.get(); }
  Checkpointer* checkpointer() { return checkpointer_.get(); }
  const DatabaseOptions& options() const { return options_; }

 private:
  explicit Database(const DatabaseOptions& options);

  Status OpenImpl();
  Status RunRecovery();
  /// Writes the corruption note for a failed audit/certification, filing
  /// the incident dossier whose id the note carries.
  Status NoteCorruption(const std::vector<CorruptRange>& ranges,
                        IncidentSource source = IncidentSource::kAudit);
  Lsn LastCleanAuditLsn() const;
  /// Joins the metrics flusher and stops the stats server (idempotent).
  void StopBackgroundWork();
  void MetricsFlusherLoop();

  DatabaseOptions options_;
  DbFiles files_;
  ShardMap shard_map_;
  /// Declared before the components so it is destroyed after them — every
  /// component holds bare Counter*/Histogram* pointers into it.
  MetricsRegistry metrics_;
  /// Right after metrics_, so it outlives every component that mirrors
  /// into it (the system log holds a bare pointer; the trace sink and the
  /// crashpoint observer are cleared in ~Database before teardown).
  std::unique_ptr<FlightRecorder> flight_recorder_;
  std::optional<BlackBoxReport> prior_blackbox_;
  uint64_t crash_incident_id_ = 0;
  std::unique_ptr<DbImage> image_;
  /// Before protection_ (which keeps a bare pointer to it) so it outlives
  /// every component that files incidents.
  std::unique_ptr<ForensicsRecorder> forensics_;
  std::unique_ptr<ProtectionManager> protection_;
  std::unique_ptr<SystemLog> log_;
  std::unique_ptr<TxnManager> txns_;
  std::unique_ptr<Checkpointer> checkpointer_;
  /// After the components it probes (destroyed first, so no probe callback
  /// can outlive its target); probes hold bare pointers into log_/
  /// checkpointer_/txns_.
  std::unique_ptr<Watchdog> watchdog_;
  /// Coverage map, history ring and SLO engine, in dependency order: the
  /// SLO engine reads the history and scrub map, and the history's tick
  /// hooks call into both — all are stopped (StopBackgroundWork joins the
  /// sampler) before any is destroyed.
  std::unique_ptr<ScrubMap> scrub_;
  std::unique_ptr<MetricsHistory> history_;
  std::unique_ptr<SloEngine> slo_;
  RecoveryReport last_report_;

  std::unique_ptr<StatsServer> stats_server_;
  std::thread metrics_flusher_;
  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  bool stop_flusher_ = false;
};

}  // namespace cwdb

#endif  // CWDB_CORE_DATABASE_H_
