#include "core/auditor.h"

#include <algorithm>
#include <cstdio>

namespace cwdb {

BackgroundAuditor::BackgroundAuditor(Database* db, const Options& options,
                                     CorruptionCallback on_corruption)
    : db_(db), options_(options), on_corruption_(std::move(on_corruption)) {}

BackgroundAuditor::~BackgroundAuditor() { Stop(); }

void BackgroundAuditor::Start() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
    thread_ = std::thread([this] { Loop(); });
  }
  if (Watchdog* wd = db_->watchdog(); wd != nullptr) {
    // Progress = rounds run. After a corruption verdict the loop idles
    // deliberately, so the probe goes inactive rather than reading as a
    // stall.
    WatchdogProbe probe;
    probe.name = "auditor";
    probe.active = [this] { return !corruption_seen_.load(); };
    probe.progress = [this] { return slices_.load(); };
    probe.stall_ns = db_->options().watchdog.auditor_stall_ms * 1'000'000ull;
    watchdog_probe_ = wd->AddProbe(std::move(probe));
  }
}

void BackgroundAuditor::Stop() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!running_) return;
    stop_ = true;
  }
  if (watchdog_probe_ != 0) {
    if (Watchdog* wd = db_->watchdog(); wd != nullptr) {
      wd->RemoveProbe(watchdog_probe_);
    }
    watchdog_probe_ = 0;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> guard(mu_);
  running_ = false;
}

void BackgroundAuditor::WaitForFullSweep() {
  uint64_t target = sweeps_completed_.load() + 2;  // One may be mid-flight.
  std::unique_lock<std::mutex> guard(mu_);
  cv_.wait(guard, [&] {
    return stop_ || sweeps_completed_.load() >= target ||
           corruption_seen_.load();
  });
}

ThreadPool* BackgroundAuditor::shard_pool() {
  size_t lanes = EffectiveConcurrency(options_.threads);
  if (lanes <= 1 || db_->shard_map().shard_count() <= 1) return nullptr;
  std::call_once(pool_once_, [&] {
    pool_ = std::make_unique<ThreadPool>(
        std::min(lanes, db_->shard_map().shard_count()));
  });
  return pool_.get();
}

bool BackgroundAuditor::AuditSlice() {
  const ShardMap& shards = db_->shard_map();
  const size_t n = shards.shard_count();
  const uint64_t arena = db_->arena_size();
  const uint64_t region = db_->options().protection.region_size;
  // The per-round budget is split across the shards, each advancing its
  // own cursor, so a round costs the same as before sharding but the whole
  // arena is covered in 1/n as many rounds.
  uint64_t slice = std::max<uint64_t>(options_.slice_bytes / n, region);
  slice = slice / region * region;

  struct Span {
    uint64_t off = 0;
    uint64_t len = 0;
    uint64_t cursor_after = 0;  ///< In-shard cursor once this slice lands.
    bool completes_pass = false;
  };
  std::vector<Span> spans(n);
  Lsn sweep_begin_lsn = 0;
  bool wrapped = false;
  Tracer* tracer = db_->metrics()->tracer();
  SpanContext sweep_ctx;
  uint64_t sweep_root = 0;
  uint64_t sweep_t0 = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (cursors_.size() != n) cursors_.assign(n, 0);
    bool fresh = std::all_of(cursors_.begin(), cursors_.end(),
                             [](uint64_t c) { return c == 0; });
    if (fresh) {
      // Starting a sweep: record where the log stood (§3.2 — a clean full
      // sweep certifies data as of its beginning; this becomes Audit_SN).
      sweep_start_lsn_ = db_->log()->CurrentLsn();
      db_->metrics()->trace().Record(TraceEventType::kAuditPassBegin,
                                     sweep_start_lsn_, 0, 0);
      // Every sweep gets a (forced) trace: rare and each one interesting.
      sweep_ctx_ = tracer->StartForcedTrace(&sweep_root_span_);
      sweep_start_ns_ = NowNs();
    }
    wrapped = true;
    for (size_t s = 0; s < n; ++s) {
      uint64_t shard_len = shards.ShardLen(s);
      if (cursors_[s] < shard_len) {
        uint64_t take = std::min(slice, shard_len - cursors_[s]);
        spans[s].off = shards.ShardStart(s) + cursors_[s];
        spans[s].len = take;
        cursors_[s] += take;
        spans[s].cursor_after = cursors_[s];
        spans[s].completes_pass = cursors_[s] >= shard_len;
      }
      if (cursors_[s] < shard_len) wrapped = false;
    }
    if (wrapped) std::fill(cursors_.begin(), cursors_.end(), 0);
    sweep_begin_lsn = sweep_start_lsn_;
    sweep_ctx = sweep_ctx_;
    sweep_root = sweep_root_span_;
    sweep_t0 = sweep_start_ns_;
  }
  const uint64_t slice_t0 = sweep_ctx.sampled() ? NowNs() : 0;

  std::vector<CorruptRange> corrupt;
  bool bad = false;
  std::mutex merge_mu;
  auto audit_shard = [&](size_t s) {
    if (spans[s].len == 0) return;
    std::vector<CorruptRange> local;
    Status st = n == 1 && options_.threads != 1
                    ? db_->protection()->AuditRangeParallel(
                          spans[s].off, spans[s].len, options_.threads,
                          &local)
                    : db_->protection()->AuditRange(spans[s].off,
                                                    spans[s].len, &local);
    char name[40];
    std::snprintf(name, sizeof(name), "audit.shard%zu.slices", s);
    db_->metrics()->counter(name)->Add();
    if (st.IsCorruption()) {
      std::lock_guard<std::mutex> guard(merge_mu);
      bad = true;
      corrupt.insert(corrupt.end(), local.begin(), local.end());
    }
  };
  ThreadPool* pool = shard_pool();
  if (pool != nullptr) {
    pool->ParallelFor(n, pool->concurrency(), [&](uint64_t b, uint64_t e) {
      for (uint64_t s = b; s < e; ++s) audit_shard(s);
    });
  } else {
    for (size_t s = 0; s < n; ++s) audit_shard(s);
  }
  slices_.fetch_add(1);
  db_->metrics()->counter("auditor.slices")->Add();
  if (!bad) {
    // Publish sweep progress into the coverage map: cursor position per
    // slice; pass completion certifies the shard as of the sweep's begin
    // LSN. A bad round publishes nothing — corrupt data certifies nothing.
    ScrubMap* scrub = db_->scrub();
    if (scrub != nullptr) {
      for (size_t s = 0; s < n; ++s) {
        if (spans[s].len == 0) continue;
        scrub->NoteSlice(s, spans[s].cursor_after, sweep_begin_lsn);
        if (spans[s].completes_pass)
          scrub->NotePassComplete(s, sweep_begin_lsn);
      }
    }
  }
  if (slice_t0 != 0) {
    uint64_t round_bytes = 0;
    for (const Span& sp : spans) round_bytes += sp.len;
    tracer->Record(sweep_ctx, SpanKind::kAuditSlice, slice_t0, NowNs(),
                   round_bytes, n);
  }
  if (wrapped && sweep_ctx.sampled()) {
    tracer->RecordWithId(sweep_ctx.Under(0), sweep_root,
                         SpanKind::kAuditSweep, sweep_t0, NowNs(),
                         sweep_begin_lsn, bad ? 1 : 0);
  }

  if (bad) {
    // Shard lanes finish out of order; the callback contract is ascending.
    std::sort(corrupt.begin(), corrupt.end(),
              [](const CorruptRange& a, const CorruptRange& b) {
                return a.off < b.off;
              });
    // The codewords located the damage; before escalating to the fatal
    // path, try the error-correcting tier. A full in-place repair means
    // the arena is clean again: no corruption note, no callback, and the
    // auditor keeps sweeping. The round still publishes nothing into the
    // coverage map — the slice observed corrupt data, so it certifies
    // nothing; the next pass over these regions does.
    std::vector<CorruptRange> unrepaired;
    if (db_->TryRepairRanges(corrupt, IncidentSource::kAudit, &unrepaired)) {
      db_->metrics()->counter("auditor.repaired_rounds")->Add();
      return false;
    }
    if (!unrepaired.empty()) corrupt = std::move(unrepaired);
    corruption_seen_.store(true);
    AuditReport report;
    report.clean = false;
    report.audit_lsn = sweep_begin_lsn;
    report.ranges = std::move(corrupt);
    // Make the detection durable before telling anyone (§4.3: "we simply
    // note the region(s) failing the audit, and cause the database to
    // crash" — the callback decides how to "crash").
    (void)db_->ReportCorruption(report.ranges);
    if (on_corruption_) on_corruption_(report);
    cv_.notify_all();
    return true;
  }
  if (wrapped) {
    // A complete sweep came back clean: data as of the sweep's start is
    // certified. Advance the durable Audit_SN.
    (void)db_->RecordCleanAudit(sweep_begin_lsn);
    db_->metrics()->counter("audit.background_sweeps")->Add();
    db_->metrics()->counter("auditor.sweeps_completed")->Add();
    db_->metrics()
        ->histogram("auditor.sweep_duration_ns")
        ->Record(NowNs() - sweep_t0);
    db_->metrics()->trace().Record(TraceEventType::kAuditPassEnd,
                                   sweep_begin_lsn, arena / region, 0);
    sweeps_completed_.fetch_add(1);
    cv_.notify_all();
  }
  return false;
}

void BackgroundAuditor::Loop() {
  std::unique_lock<std::mutex> guard(mu_);
  while (!stop_) {
    guard.unlock();
    bool corrupt = AuditSlice();
    guard.lock();
    if (corrupt) {
      // Stay alive but idle: the user decides how to recover.
      cv_.wait(guard, [this] { return stop_; });
      break;
    }
    cv_.wait_for(guard, options_.interval, [this] { return stop_; });
  }
}

}  // namespace cwdb
