#include "core/auditor.h"

#include <algorithm>

namespace cwdb {

BackgroundAuditor::BackgroundAuditor(Database* db, const Options& options,
                                     CorruptionCallback on_corruption)
    : db_(db), options_(options), on_corruption_(std::move(on_corruption)) {}

BackgroundAuditor::~BackgroundAuditor() { Stop(); }

void BackgroundAuditor::Start() {
  std::lock_guard<std::mutex> guard(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void BackgroundAuditor::Stop() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> guard(mu_);
  running_ = false;
}

void BackgroundAuditor::WaitForFullSweep() {
  uint64_t target = sweeps_completed_.load() + 2;  // One may be mid-flight.
  std::unique_lock<std::mutex> guard(mu_);
  cv_.wait(guard, [&] {
    return stop_ || sweeps_completed_.load() >= target ||
           corruption_seen_.load();
  });
}

bool BackgroundAuditor::AuditSlice() {
  const uint64_t arena = db_->arena_size();
  const uint64_t region = db_->options().protection.region_size;
  uint64_t slice = std::max<uint64_t>(options_.slice_bytes, region);
  slice = slice / region * region;

  uint64_t start;
  bool wrapped = false;
  Lsn sweep_begin_lsn = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (cursor_ == 0) {
      // Starting a sweep: record where the log stood (§3.2 — a clean full
      // sweep certifies data as of its beginning; this becomes Audit_SN).
      sweep_start_lsn_ = db_->log()->CurrentLsn();
      db_->metrics()->trace().Record(TraceEventType::kAuditPassBegin,
                                     sweep_start_lsn_, 0, 0);
    }
    start = cursor_;
    cursor_ += slice;
    if (cursor_ >= arena) {
      cursor_ = 0;
      wrapped = true;
    }
    sweep_begin_lsn = sweep_start_lsn_;
  }
  uint64_t len = std::min(slice, arena - start);

  std::vector<CorruptRange> corrupt;
  Status s =
      options_.threads == 1
          ? db_->protection()->AuditRange(start, len, &corrupt)
          : db_->protection()->AuditRangeParallel(start, len,
                                                  options_.threads, &corrupt);
  if (s.IsCorruption()) {
    corruption_seen_.store(true);
    AuditReport report;
    report.clean = false;
    report.audit_lsn = sweep_begin_lsn;
    report.ranges = std::move(corrupt);
    // Make the detection durable before telling anyone (§4.3: "we simply
    // note the region(s) failing the audit, and cause the database to
    // crash" — the callback decides how to "crash").
    (void)db_->ReportCorruption(report.ranges);
    if (on_corruption_) on_corruption_(report);
    cv_.notify_all();
    return true;
  }
  if (wrapped) {
    // A complete sweep came back clean: data as of the sweep's start is
    // certified. Advance the durable Audit_SN.
    (void)db_->RecordCleanAudit(sweep_begin_lsn);
    db_->metrics()->counter("audit.background_sweeps")->Add();
    db_->metrics()->trace().Record(TraceEventType::kAuditPassEnd,
                                   sweep_begin_lsn, arena / region, 0);
    sweeps_completed_.fetch_add(1);
    cv_.notify_all();
  }
  return false;
}

void BackgroundAuditor::Loop() {
  std::unique_lock<std::mutex> guard(mu_);
  while (!stop_) {
    guard.unlock();
    bool corrupt = AuditSlice();
    guard.lock();
    if (corrupt) {
      // Stay alive but idle: the user decides how to recover.
      cv_.wait(guard, [this] { return stop_; });
      break;
    }
    cv_.wait_for(guard, options_.interval, [this] { return stop_; });
  }
}

}  // namespace cwdb
