#ifndef CWDB_CORE_LINEAGE_H_
#define CWDB_CORE_LINEAGE_H_

#include <set>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "recovery/interval_set.h"

namespace cwdb {

/// Lineage (audit-trail) queries over the system log. With Read Logging
/// enabled the log records the identity of every item each transaction
/// read — "the addition of information about reads allows the database log
/// to function as a limited form of audit trail" (§1, after Bjork [2]).
/// This module exploits that: who read these bytes, who wrote them, and —
/// the paper's future-work scenario (§7) — which transactions were
/// transitively influenced by a value now known to be wrong (logical
/// corruption), without running recovery.
class LineageTracer {
 public:
  /// One read or write touching the queried range.
  struct Access {
    TxnId txn = 0;
    Lsn lsn = 0;
    DbPtr off = 0;
    uint32_t len = 0;
    bool is_write = false;
  };

  /// Result of a forward taint propagation.
  struct Taint {
    /// Committed transactions that read tainted data.
    std::set<TxnId> affected_txns;
    /// Every byte range tainted by the closure (seed + derived writes).
    IntervalSet tainted_data;
    uint64_t log_records_scanned = 0;
  };

  explicit LineageTracer(Database* db) : db_(db) {}

  /// Transactions that read bytes overlapping [off, off+len) at or after
  /// `since`. Requires a read-logging scheme (reads are otherwise not in
  /// the log); writes are reported regardless.
  Result<std::vector<Access>> Readers(DbPtr off, uint64_t len, Lsn since);

  /// Transactions that wrote bytes overlapping [off, off+len) at or after
  /// `since`.
  Result<std::vector<Access>> Writers(DbPtr off, uint64_t len, Lsn since);

  /// Forward taint closure: starting from `seeds` (bytes known to be wrong
  /// from `since` onward — e.g. a mis-entered value), marks every
  /// committed transaction that read tainted bytes as affected, and all
  /// data such a transaction wrote after its first tainted read as tainted
  /// in turn — the §4.1 delete-set computation, run as a read-only query.
  /// Rolled-back transactions do not propagate (strict 2PL: nobody saw
  /// their writes).
  Result<Taint> TaintClosure(const std::vector<CorruptRange>& seeds,
                             Lsn since);

  /// Convenience: the byte range of a record, for record-granularity
  /// queries.
  CorruptRange RecordRange(TableId table, uint32_t slot) const;

 private:
  /// Flushes the tail so the scan sees everything, then opens a reader.
  Result<std::unique_ptr<LogReader>> OpenReader(Lsn since);

  Database* db_;
};

}  // namespace cwdb

#endif  // CWDB_CORE_LINEAGE_H_
