#include "core/lineage.h"

#include <map>

#include "ckpt/checkpoint.h"

namespace cwdb {

Result<std::unique_ptr<LogReader>> LineageTracer::OpenReader(Lsn since) {
  CWDB_RETURN_IF_ERROR(db_->log()->Flush());
  DbFiles files(db_->options().path);
  return LogReader::Open(files.SystemLog(), since, kInvalidLsn);
}

Result<std::vector<LineageTracer::Access>> LineageTracer::Readers(
    DbPtr off, uint64_t len, Lsn since) {
  if (!db_->options().protection.LogsReads()) {
    return Status::InvalidArgument(
        "reader lineage requires a read-logging scheme");
  }
  CWDB_ASSIGN_OR_RETURN(std::unique_ptr<LogReader> reader, OpenReader(since));
  std::vector<Access> out;
  LogRecord rec;
  Lsn lsn;
  while (reader->Next(&rec, &lsn)) {
    if (rec.type != LogRecordType::kReadLog) continue;
    if (rec.off < off + len && off < rec.off + rec.len) {
      out.push_back(Access{rec.txn, lsn, rec.off, rec.len, false});
    }
  }
  return out;
}

Result<std::vector<LineageTracer::Access>> LineageTracer::Writers(
    DbPtr off, uint64_t len, Lsn since) {
  CWDB_ASSIGN_OR_RETURN(std::unique_ptr<LogReader> reader, OpenReader(since));
  std::vector<Access> out;
  LogRecord rec;
  Lsn lsn;
  while (reader->Next(&rec, &lsn)) {
    if (rec.type != LogRecordType::kPhysRedo) continue;
    if (rec.off < off + len && off < rec.off + rec.len) {
      out.push_back(Access{rec.txn, lsn, rec.off, rec.len, true});
    }
  }
  return out;
}

Result<LineageTracer::Taint> LineageTracer::TaintClosure(
    const std::vector<CorruptRange>& seeds, Lsn since) {
  if (!db_->options().protection.LogsReads()) {
    return Status::InvalidArgument(
        "taint closure requires a read-logging scheme");
  }
  CWDB_ASSIGN_OR_RETURN(std::unique_ptr<LogReader> reader, OpenReader(since));

  Taint taint;
  for (const CorruptRange& r : seeds) {
    taint.tainted_data.Insert(r.off, r.len);
  }

  // Per in-flight transaction: whether it has read tainted bytes, and the
  // writes it performed after that moment. The writes only become globally
  // tainted when the transaction commits (a rolled-back transaction's
  // writes were never visible under strict 2PL).
  struct Pending {
    bool tainted = false;
    std::vector<CorruptRange> writes_after_taint;
  };
  std::map<TxnId, Pending> pending;

  LogRecord rec;
  Lsn lsn;
  while (reader->Next(&rec, &lsn)) {
    ++taint.log_records_scanned;
    switch (rec.type) {
      case LogRecordType::kReadLog: {
        if (taint.tainted_data.Overlaps(rec.off, rec.len)) {
          pending[rec.txn].tainted = true;
        }
        break;
      }
      case LogRecordType::kPhysRedo: {
        Pending& p = pending[rec.txn];
        // A write is also a read of the bytes it replaces when the write
        // value was derived from them; the delete-transaction algorithm
        // treats overlapping writes as reads (§4.3) and so do we.
        if (!p.tainted && taint.tainted_data.Overlaps(rec.off, rec.len)) {
          p.tainted = true;
        }
        if (p.tainted) {
          p.writes_after_taint.push_back(CorruptRange{rec.off, rec.len});
        }
        break;
      }
      case LogRecordType::kCommitTxn: {
        auto it = pending.find(rec.txn);
        if (it != pending.end()) {
          if (it->second.tainted) {
            taint.affected_txns.insert(rec.txn);
            for (const CorruptRange& w : it->second.writes_after_taint) {
              taint.tainted_data.Insert(w.off, w.len);
            }
          }
          pending.erase(it);
        }
        break;
      }
      case LogRecordType::kAbortTxn: {
        pending.erase(rec.txn);
        break;
      }
      default:
        break;
    }
  }
  // Transactions still in flight at the end of the log: report them as
  // affected if tainted (their fate is undecided), but do not propagate
  // their writes (not yet visible).
  for (const auto& [id, p] : pending) {
    if (p.tainted) taint.affected_txns.insert(id);
  }
  return taint;
}

CorruptRange LineageTracer::RecordRange(TableId table, uint32_t slot) const {
  const TableMetaRaw* meta = db_->image()->table_meta(table);
  return CorruptRange{db_->image()->RecordOff(table, slot),
                      meta->record_size};
}

}  // namespace cwdb
