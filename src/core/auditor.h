#ifndef CWDB_CORE_AUDITOR_H_
#define CWDB_CORE_AUDITOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/database.h"

namespace cwdb {

/// Background auditor for the Data Codeword scheme (§3.2): "the process of
/// auditing is nothing more than an asynchronous check of consistency
/// between the contents of a protection region and the codeword for that
/// region". Sweeps the database in slices on its own thread so detection
/// latency is bounded without a stop-the-world pass, throttled to a
/// configurable fraction of the region space per round.
///
/// The sweep is shard-aware: one cursor per engine shard (Database::
/// shard_map), each round auditing one slice from every shard — fanned
/// over a ThreadPool when `threads` > 1 — so detection latency shrinks
/// with the shard count and each lane stays inside one shard's codeword
/// table and latch stripes. A sweep completes when every shard's cursor
/// has wrapped; Audit_SN advancement, the one-callback-per-bad-round
/// contract and ascending-range reports are unchanged.
///
/// On a failed audit the paper's protocol is to note the corrupt regions
/// and crash; the auditor instead invokes a user callback (which may call
/// Database::CrashAndRecover, abort the process, or page an operator) —
/// the note is already durable by then, so a real crash at any point still
/// recovers correctly.
class BackgroundAuditor {
 public:
  struct Options {
    /// Pause between audit slices.
    std::chrono::milliseconds interval{10};
    /// Bytes audited per slice (rounded to whole regions).
    uint64_t slice_bytes = 1 << 20;
    /// Sweep lanes per round. With several shards the lanes run on the
    /// auditor's ThreadPool, one shard slice per lane; with a single shard
    /// the slice is fanned through the protection scheme's sweep pool
    /// (AuditRangeParallel). Neither changes the cursor/LSN sweep
    /// semantics or the corruption-callback contract (one callback per bad
    /// round, ranges in ascending order). 1 = sequential (the default);
    /// 0 = one lane per hardware thread.
    size_t threads = 1;
  };

  using CorruptionCallback = std::function<void(const AuditReport&)>;

  BackgroundAuditor(Database* db, const Options& options,
                    CorruptionCallback on_corruption);
  ~BackgroundAuditor();

  BackgroundAuditor(const BackgroundAuditor&) = delete;
  BackgroundAuditor& operator=(const BackgroundAuditor&) = delete;

  void Start();
  void Stop();

  /// Blocks until at least one complete sweep of the database has finished
  /// since this call (tests; bounded-latency demonstrations).
  void WaitForFullSweep();

  uint64_t sweeps_completed() const { return sweeps_completed_.load(); }
  bool corruption_seen() const { return corruption_seen_.load(); }
  /// Audit rounds run (monotone; the watchdog's auditor probe reads this as
  /// its progress value).
  uint64_t slices() const { return slices_.load(); }

 private:
  void Loop();
  /// Audits one slice from every shard's cursor; returns true if
  /// corruption was found (after noting it and firing the callback).
  bool AuditSlice();
  /// Lazily-built pool for fanning shard slices (nullptr = sequential).
  ThreadPool* shard_pool();

  Database* db_;
  Options options_;
  CorruptionCallback on_corruption_;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_ = false;
  /// Per-shard sweep cursors: next offset to audit, relative to the
  /// shard's start. A sweep is complete when every cursor has reached its
  /// shard's length; all reset to zero together.
  std::vector<uint64_t> cursors_;
  Lsn sweep_start_lsn_ = 0;    ///< Log position when the current sweep began.
  /// Span context of the current sweep's (forced) trace; set when a fresh
  /// sweep begins, its root recorded when the sweep wraps. Guarded by mu_.
  SpanContext sweep_ctx_;
  uint64_t sweep_root_span_ = 0;
  uint64_t sweep_start_ns_ = 0;
  std::atomic<uint64_t> sweeps_completed_{0};
  std::atomic<uint64_t> slices_{0};
  std::atomic<bool> corruption_seen_{false};
  uint64_t watchdog_probe_ = 0;  ///< Probe id while registered, else 0.

  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace cwdb

#endif  // CWDB_CORE_AUDITOR_H_
