#include "core/database.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "ckpt/archive.h"
#include "common/crashpoint.h"
#include "common/file_util.h"
#include "common/parallel.h"
#include "obs/process_stats.h"
#include "obs/trace_export.h"

namespace cwdb {

namespace {

/// Live span rings + the registry's clock anchors, ready for export.
SpanDump CaptureSpans(MetricsRegistry* metrics) {
  SpanDump dump;
  dump.captured_mono_ns = NowNs();
  dump.captured_wall_ns = WallNowNs();
  dump.boot_mono_ns = metrics->boot_mono_ns();
  dump.boot_wall_ns = metrics->boot_wall_ns();
  dump.spans = metrics->tracer()->Snapshot();
  return dump;
}

}  // namespace

Database::Database(const DatabaseOptions& options)
    : options_(options), files_(options.path) {}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("database path required");
  }
  CWDB_RETURN_IF_ERROR(MakeDirs(options.path));
  std::unique_ptr<Database> db(new Database(options));
  CWDB_RETURN_IF_ERROR(db->OpenImpl());
  return db;
}

Database::~Database() {
  StopBackgroundWork();
  if (flight_recorder_ != nullptr) {
    // Detach the process-wide hooks before any member dies; the recorder
    // itself (and its fatal handler) is torn down by member destruction,
    // after the components that mirror into it.
    metrics_.trace().set_sink(nullptr);
    crashpoint::SetArmObserver(nullptr);
    // An orderly destructor is not a crash, even without Close(): the
    // "unclean" signal means the process died with this incarnation still
    // live. (Unflushed work is a durability question the WAL answers; the
    // black box answers "did we die mid-flight".)
    flight_recorder_->MarkCleanShutdown();
  }
}

void Database::StopBackgroundWork() {
  // The history sampler first: its tick hooks call into the SLO engine and
  // scrub map, so no hook may run once teardown proceeds past here.
  if (history_ != nullptr) history_->Stop();
  if (watchdog_ != nullptr) watchdog_->Stop();
  if (stats_server_ != nullptr) stats_server_->Stop();
  {
    std::lock_guard<std::mutex> guard(flusher_mu_);
    stop_flusher_ = true;
  }
  flusher_cv_.notify_all();
  if (metrics_flusher_.joinable()) metrics_flusher_.join();
}

void Database::MetricsFlusherLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.metrics.flush_interval_ms);
  std::unique_lock<std::mutex> lock(flusher_mu_);
  while (!flusher_cv_.wait_for(lock, interval,
                               [this] { return stop_flusher_; })) {
    lock.unlock();
    // Identical to DumpMetrics(), but a failure (full disk) only counts —
    // a background flusher must never take the database down.
    MetricsSnapshot snap = metrics_.Capture();
    bool failed = !WriteFileAtomic(files_.MetricsFile(), snap.ToJson()).ok();
    // The history ring and SLO report ride the same cadence so `cwdb_ctl
    // top` on a live directory is at most one flush interval stale.
    if (history_->size() > 0 &&
        !history_->SaveTo(files_.MetricsHistoryFile()).ok()) {
      failed = true;
    }
    if (slo_ != nullptr &&
        !WriteFileAtomic(files_.SloReportFile(), slo_->ReportJson()).ok()) {
      failed = true;
    }
    if (failed) {
      metrics_.counter("obs.metrics_flush_failures")->Add();
    } else {
      metrics_.counter("obs.metrics_flushes")->Add();
    }
    lock.lock();
  }
}

Status Database::OpenImpl() {
  // Tracing is configured before any component exists: every subsystem
  // caches metrics_.tracer() freely, and with a zero rate the tracer stays
  // un-Configured — enabled() is one relaxed load of false everywhere.
  if (options_.trace_sample_rate > 0.0) {
    TracerOptions topts;
    topts.sample_rate = options_.trace_sample_rate;
    topts.seed = options_.trace_seed;
    topts.ring_capacity = options_.trace_ring_capacity;
    metrics_.tracer()->Configure(topts);
  }
  CWDB_ASSIGN_OR_RETURN(
      image_, DbImage::Create(options_.arena_size, options_.page_size));
  // One static partition of the arena drives every sharded component:
  // spans are aligned to both the page and the protection region, so
  // neither ever straddles a shard boundary. 0 = one shard per hardware
  // thread; ShardMap clamps if the arena is too small for the request.
  const uint64_t shard_align = std::max<uint64_t>(
      options_.page_size, options_.protection.region_size);
  size_t requested =
      options_.shards == 0 ? EffectiveConcurrency(0) : options_.shards;
  shard_map_ = ShardMap(options_.arena_size, requested, shard_align);
  options_.protection.shards = shard_map_.shard_count();
  options_.protection.shard_align = shard_align;
  CWDB_ASSIGN_OR_RETURN(
      protection_,
      ProtectionManager::Create(options_.protection, image_.get(), &metrics_));

  // Flight recorder: stash the prior incarnation's black box first (a box
  // without the clean-shutdown mark is a crash episode — rotate it aside
  // for `cwdb_ctl postmortem` and remember it so a kCrash dossier can be
  // filed once forensics is up), then map a fresh box and start mirroring
  // before the first component that feeds it exists. Creation failure is
  // not fatal: the database runs fine without a box.
  if (options_.flight_recorder.enabled) {
    Result<BlackBoxReport> prior = ReadBlackBox(files_.BlackBox());
    if (prior.ok() && !prior->clean_shutdown) {
      prior_blackbox_ = std::move(prior.value());
      if (std::rename(files_.BlackBox().c_str(),
                      files_.BlackBoxPrev().c_str()) != 0) {
        metrics_.counter("obs.blackbox_rotate_failures")->Add();
      }
    }
    FlightRecorderInfo info;
    info.arena_size = options_.arena_size;
    info.page_size = options_.page_size;
    info.shard_count = static_cast<uint32_t>(shard_map_.shard_count());
    info.scheme = ProtectionSchemeName(options_.protection.scheme);
    info.boot_mono_ns = metrics_.boot_mono_ns();
    info.boot_wall_ns = metrics_.boot_wall_ns();
    Result<std::unique_ptr<FlightRecorder>> fr =
        FlightRecorder::Create(files_.BlackBox(), info);
    if (fr.ok()) {
      flight_recorder_ = std::move(fr.value());
      flight_recorder_->SetArena(image_->base(), image_->size(), &shard_map_);
      metrics_.trace().set_sink(flight_recorder_.get());
      // Armed crash points mirror into the box as they change (the
      // observer is process-wide, like the crashpoint registry; the last
      // database to open owns it, and ~Database clears it).
      FlightRecorder* recorder = flight_recorder_.get();
      crashpoint::SetArmObserver([recorder](const std::string& armed) {
        recorder->NoteStatusText(blackbox::StatusSlot::kArmedCrashpoints,
                                 armed);
      });
      if (options_.flight_recorder.install_fatal_handler) {
        flight_recorder_->InstallFatalHandler();
      }
    } else {
      metrics_.counter("obs.blackbox_create_failures")->Add();
    }
  }

  CWDB_ASSIGN_OR_RETURN(log_, SystemLog::Open(files_.SystemLog(), &metrics_,
                                              shard_map_.shard_count(),
                                              flight_recorder_.get()));
  txns_ = std::make_unique<TxnManager>(image_.get(), protection_.get(),
                                       log_.get(), &metrics_,
                                       shard_map_.shard_count());
  checkpointer_ = std::make_unique<Checkpointer>(
      files_, image_.get(), txns_.get(), log_.get(), protection_.get(),
      &metrics_);

  forensics_ = std::make_unique<ForensicsRecorder>(files_.dir(), image_.get(),
                                                   &metrics_);
  forensics_->set_scheme_name(
      ProtectionSchemeName(options_.protection.scheme));
  forensics_->set_codeword_probe(
      [this](DbPtr off, codeword_t* stored, codeword_t* computed) {
        return protection_->RegionCodewords(off, stored, computed);
      });
  forensics_->set_active_txns_fn([this] { return txns_->ActiveTxnIds(); });
  protection_->set_forensics(forensics_.get());
  // A live in-place repair writes image bytes, so it must order against
  // the checkpointer's copy phase like a prescribed update window.
  ProtectionManager::RepairHooks hooks;
  hooks.checkpoint_latch = &txns_->checkpoint_latch();
  protection_->set_repair_hooks(hooks);

  // A damaged WAL tail (a complete frame failing its CRC — not explainable
  // as a torn append) is a detection in its own right: file the dossier
  // before recovery truncates and moves on.
  const WalTailScan& tail = log_->tail_scan();
  if (tail.damaged) {
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "WAL tail failed CRC at byte %" PRIu64 " of %" PRIu64
                  "; log truncated to last valid prefix %" PRIu64,
                  tail.damage_off, tail.file_bytes, tail.valid_bytes);
    forensics_->RecordIncident(IncidentSource::kWalCrc,
                               /*lsn=*/tail.valid_bytes, LastCleanAuditLsn(),
                               {}, detail);
  }

  if (FileExists(files_.Anchor())) {
    Status recovered = RunRecovery();
    if (recovered.IsCorruption()) {
      // The checkpoint/metadata needed for recovery is itself unusable —
      // worth a dossier even though the open fails.
      forensics_->RecordIncident(
          IncidentSource::kCheckpointMeta, /*lsn=*/0, LastCleanAuditLsn(), {},
          "recovery could not use the active checkpoint: " +
              recovered.ToString());
    }
    CWDB_RETURN_IF_ERROR(recovered);
  } else {
    // Fresh database: the image is already formatted; take checkpoint zero
    // so restart always has an anchor to start from.
    CWDB_RETURN_IF_ERROR(protection_->ResetFromImage());
    CWDB_RETURN_IF_ERROR(checkpointer_->InitializeFresh());
    CWDB_RETURN_IF_ERROR(WriteAuditMeta(files_.AuditMeta(), 0));
  }
  // Arm hardware protection only once the database is open for business
  // (recovery and formatting write the image directly).
  CWDB_RETURN_IF_ERROR(protection_->ReprotectAll());

  // The prior incarnation died uncleanly: file the crash episode as a
  // dossier, carrying its trace tail (translated onto this incarnation's
  // time base so the per-event wall stamps stay honest) and — when the
  // fatal handler attributed the fault to the arena — the faulting byte,
  // which RecordIncident resolves to page/table/record like any
  // corruption range.
  if (prior_blackbox_) {
    const BlackBoxReport& box = *prior_blackbox_;
    char detail[256];
    if (box.crash.valid) {
      std::snprintf(detail, sizeof(detail),
                    "prior incarnation (pid %llu) died on signal %d at "
                    "addr 0x%llx%s; durable_lsn=%llu logical_end=%llu; "
                    "black box rotated to blackbox.prev.bin",
                    static_cast<unsigned long long>(box.pid), box.crash.signal,
                    static_cast<unsigned long long>(box.crash.fault_addr),
                    box.crash.fault_in_arena ? " (in arena)" : "",
                    static_cast<unsigned long long>(box.durable_lsn),
                    static_cast<unsigned long long>(box.logical_end_lsn));
    } else {
      std::snprintf(detail, sizeof(detail),
                    "prior incarnation (pid %llu) died uncleanly with no "
                    "fatal-signal record (killed, or _exit at a crash "
                    "point); durable_lsn=%llu logical_end=%llu; black box "
                    "rotated to blackbox.prev.bin",
                    static_cast<unsigned long long>(box.pid),
                    static_cast<unsigned long long>(box.durable_lsn),
                    static_cast<unsigned long long>(box.logical_end_lsn));
    }
    ForensicsRecorder::IncidentExtras extras;
    extras.override_recent_events = true;
    extras.recent_events = box.events;
    for (TraceEvent& e : extras.recent_events) {
      const uint64_t wall = box.WallFromMono(e.t_ns);
      e.t_ns = wall == 0 ? 0
                         : metrics_.boot_mono_ns() +
                               (wall - metrics_.boot_wall_ns());
    }
    std::vector<CorruptRange> ranges;
    if (box.crash.valid && box.crash.fault_in_arena &&
        box.crash.fault_off < image_->size()) {
      ranges.push_back(CorruptRange{box.crash.fault_off, 1});
    }
    crash_incident_id_ = forensics_->RecordIncident(
        IncidentSource::kCrash, log_->CurrentLsn(), LastCleanAuditLsn(),
        ranges, detail, extras);
    metrics_.counter("obs.crash_dossiers_filed")->Add();
  }

  if (options_.watchdog.enabled) {
    watchdog_ = std::make_unique<Watchdog>(
        &metrics_, forensics_.get(),
        [this] { return log_->end_of_stable_log(); });
    // Drainer: a requested flush whose stable frontier stops advancing.
    WatchdogProbe drainer;
    drainer.name = "wal.drainer";
    drainer.active = [this] { return log_->flush_pending(); };
    drainer.progress = [this] { return log_->end_of_stable_log(); };
    drainer.stall_ns = options_.watchdog.drainer_stall_ms * 1'000'000ull;
    watchdog_->AddProbe(std::move(drainer));
    // Checkpoint: a pass exceeding its SLO (progress = passes completed,
    // which only moves when one finishes).
    WatchdogProbe ckpt;
    ckpt.name = "checkpoint";
    ckpt.active = [this] { return checkpointer_->in_flight(); };
    ckpt.progress = [this] { return checkpointer_->checkpoints_taken(); };
    ckpt.stall_ns = options_.watchdog.checkpoint_slo_ms * 1'000'000ull;
    watchdog_->AddProbe(std::move(ckpt));
    // Oldest open transaction (opt-in): ids ascend, so the lowest active
    // id is unchanged exactly as long as that transaction stays open.
    if (options_.watchdog.txn_age_limit_ms > 0) {
      WatchdogProbe txn;
      txn.name = "txn.oldest";
      txn.active = [this] { return txns_->OldestActiveTxn() != 0; };
      txn.progress = [this] { return txns_->OldestActiveTxn(); };
      txn.stall_ns = options_.watchdog.txn_age_limit_ms * 1'000'000ull;
      watchdog_->AddProbe(std::move(txn));
    }
    watchdog_->Start(options_.watchdog.poll_interval_ms);
  }

  // Integrity coverage map: one entry per shard, published into scrub.*
  // gauges by the auditor and full audits.
  {
    std::vector<uint64_t> shard_lens(shard_map_.shard_count());
    for (size_t s = 0; s < shard_lens.size(); ++s)
      shard_lens[s] = shard_map_.ShardLen(s);
    scrub_ = std::make_unique<ScrubMap>(&metrics_, shard_lens);
  }

  // Metrics history: reload the previous incarnation's ring (tolerant of
  // torn/truncated files — a bad tail just shortens the history), then
  // refresh the scrub gauges and evaluate SLOs on every sample tick.
  history_ = std::make_unique<MetricsHistory>(&metrics_, options_.history);
  CWDB_RETURN_IF_ERROR(history_->LoadFrom(files_.MetricsHistoryFile()));
  history_->AddTickHook([this](uint64_t now_mono) {
    scrub_->UpdateGauges(now_mono);
    // Process-level gauges ride the sampling cadence so /metrics and the
    // history ring always carry fresh uptime/RSS/fd/disk numbers.
    PublishProcessStats(&metrics_,
                        SampleProcessStats(files_.dir(),
                                           metrics_.boot_mono_ns()));
  });
  if (options_.slo.enabled) {
    slo_ = std::make_unique<SloEngine>(&metrics_, history_.get(),
                                       scrub_.get(), forensics_.get(),
                                       BuildDefaultSlos(options_.slo));
    slo_->set_lsn_fn([this] { return log_->end_of_stable_log(); });
    history_->AddTickHook(
        [this](uint64_t now_mono) { slo_->EvaluateOnce(now_mono); });
  }
  if (flight_recorder_ != nullptr) {
    // The black box's metrics sample and watchdog/SLO status text refresh
    // on the same tick (after the scrub/SLO hooks above so it sees their
    // updates). Each is a seqlock'd in-place write into the mapping.
    history_->AddTickHook([this](uint64_t) {
      flight_recorder_->WriteMetricsSample(metrics_.Capture());
      if (watchdog_ != nullptr) {
        flight_recorder_->NoteStatusText(blackbox::StatusSlot::kWatchdog,
                                         watchdog_->DegradedReason());
      }
      if (slo_ != nullptr) {
        flight_recorder_->NoteStatusText(blackbox::StatusSlot::kSlo,
                                         slo_->BurnReason());
      }
    });
  }
  history_->Start();

  if (options_.metrics.flush_interval_ms > 0) {
    metrics_flusher_ = std::thread([this] { MetricsFlusherLoop(); });
  }
  if (options_.serve_stats) {
    stats_server_ = std::make_unique<StatsServer>();
    StatsServer::Hooks hooks;
    hooks.snapshot = [this] { return metrics_.Capture(); };
    hooks.incidents_jsonl = [this] {
      std::string body;
      if (!ReadFileToString(files_.IncidentsFile(), &body,
                            MissingFile::kTreatAsEmpty)
               .ok()) {
        body.clear();
      }
      return body;
    };
    hooks.healthy = [this] { return !FileExists(files_.CorruptNote()); };
    hooks.spans_json = [this] {
      return SpansToChromeJson(CaptureSpans(&metrics_));
    };
    hooks.degraded = [this] {
      return watchdog_ != nullptr ? watchdog_->DegradedReason()
                                  : std::string();
    };
    hooks.query = [this](std::string_view query) {
      return history_->QueryJson(query);
    };
    hooks.slo = [this] {
      return slo_ != nullptr ? slo_->BurnReason() : std::string();
    };
    CWDB_RETURN_IF_ERROR(
        stats_server_->Start(options_.stats_server, std::move(hooks)));
  }
  return Status::OK();
}

Lsn Database::LastCleanAuditLsn() const {
  Result<Lsn> lsn = ReadAuditMeta(files_.AuditMeta());
  return lsn.ok() ? *lsn : 0;
}

Status Database::RunRecovery() {
  RecoveryOptions ropts;
  ropts.redo_limit = options_.recover_to_lsn;
  ropts.use_logged_checksums =
      options_.protection.scheme == ProtectionScheme::kCodewordReadLog;
  if (FileExists(files_.CorruptNote())) {
    CWDB_ASSIGN_OR_RETURN(ropts.note,
                          ReadCorruptionNote(files_.CorruptNote()));
    ropts.corruption_recovery = true;
  } else if (ropts.use_logged_checksums) {
    // §4.3 Extension: with codewords in read log records, corruption
    // recovery runs on every restart — it can detect corruption that
    // happened after the last audit but before a true crash.
    ropts.corruption_recovery = true;
    ropts.note.last_clean_audit_lsn = LastCleanAuditLsn();
  }
  RecoveryDriver driver(files_, image_.get(), txns_.get(), log_.get(),
                        protection_.get(), checkpointer_.get());
  CWDB_ASSIGN_OR_RETURN(last_report_, driver.Run(ropts));
  // A rewind-at-open is one-shot: its final checkpoint made the prior
  // state the new truth, so later recoveries go to the latest state.
  options_.recover_to_lsn = kInvalidLsn;
  return Status::OK();
}

Result<Transaction*> Database::Begin() { return txns_->Begin(); }

Status Database::Commit(Transaction* txn) { return txns_->Commit(txn); }

Status Database::Abort(Transaction* txn) { return txns_->Abort(txn); }

Result<TableId> Database::CreateTable(Transaction* txn,
                                      const std::string& name,
                                      uint32_t record_size,
                                      uint64_t capacity) {
  return table_ops::CreateTable(*txns_, txn, name, record_size, capacity);
}

Result<TableId> Database::FindTable(const std::string& name) const {
  TableId t = image_->FindTable(name);
  if (t == kMaxTables) return Status::NotFound("no such table: " + name);
  return t;
}

Result<RecordId> Database::Insert(Transaction* txn, TableId table,
                                  Slice record) {
  return table_ops::Insert(*txns_, txn, table, record);
}

Status Database::Delete(Transaction* txn, TableId table, uint32_t slot) {
  return table_ops::Delete(*txns_, txn, table, slot);
}

Status Database::Update(Transaction* txn, TableId table, uint32_t slot,
                        uint32_t field_off, Slice data) {
  return table_ops::Update(*txns_, txn, table, slot, field_off, data);
}

Status Database::Read(Transaction* txn, TableId table, uint32_t slot,
                      std::string* out) {
  return table_ops::ReadRecord(*txns_, txn, table, slot, out);
}

Status Database::ReadField(Transaction* txn, TableId table, uint32_t slot,
                           uint32_t field_off, uint32_t len, void* out) {
  return table_ops::ReadField(*txns_, txn, table, slot, field_off, len, out);
}

Status Database::RawUpdate(Transaction* txn, DbPtr off, Slice data) {
  return table_ops::RawUpdate(*txns_, txn, off, data);
}

uint64_t Database::CountRecords(TableId table) const {
  return table_ops::CountRecords(*image_, table);
}

Status Database::Checkpoint() {
  const bool certify =
      options_.certify_checkpoints && options_.protection.UsesCodewords();
  // The certification audit begins no earlier than here.
  Lsn audit_lsn = log_->CurrentLsn();
  std::vector<CorruptRange> corrupt;
  Status s = checkpointer_->Checkpoint(certify, &corrupt);
  if (s.IsCorruption()) {
    CWDB_RETURN_IF_ERROR(
        NoteCorruption(corrupt, IncidentSource::kCertification));
    return s;
  }
  CWDB_RETURN_IF_ERROR(s);
  if (certify) {
    CWDB_RETURN_IF_ERROR(WriteAuditMeta(files_.AuditMeta(), audit_lsn));
  }
  return Status::OK();
}

Result<AuditReport> Database::Audit() {
  AuditReport report;
  // Mark the audit's position in the log: Audit_SN. A clean audit
  // certifies data read before this point.
  std::string payload;
  EncodeAuditBegin(&payload);
  report.audit_lsn = log_->Append(payload);
  metrics_.trace().Record(TraceEventType::kAuditPassBegin, report.audit_lsn,
                          0, 0);
  const uint64_t t0 = NowNs();
  uint64_t before = protection_->stats().regions_audited;
  Status s = protection_->AuditAll(&report.ranges);
  report.regions_audited = protection_->stats().regions_audited - before;
  metrics_.counter("audit.passes")->Add();
  metrics_.histogram("audit.pass_latency_ns")->Record(NowNs() - t0);
  metrics_.trace().Record(TraceEventType::kAuditPassEnd, report.audit_lsn,
                          report.regions_audited, report.ranges.size());
  if (s.IsCorruption()) {
    report.clean = false;
    CWDB_RETURN_IF_ERROR(NoteCorruption(report.ranges));
    return report;
  }
  CWDB_RETURN_IF_ERROR(s);
  report.clean = true;
  metrics_.counter("audit.clean_passes")->Add();
  // A clean full audit certifies every shard as of its begin LSN.
  if (scrub_ != nullptr) scrub_->NoteFullAudit(report.audit_lsn);
  CWDB_RETURN_IF_ERROR(WriteAuditMeta(files_.AuditMeta(), report.audit_lsn));
  return report;
}

Status Database::NoteCorruption(const std::vector<CorruptRange>& ranges,
                                IncidentSource source) {
  // Detection moment: stamp each range against any pending injected fault
  // (detection-latency measurement) and into the flight recorder.
  for (const CorruptRange& r : ranges) {
    metrics_.NoteDetection(r.off, r.len);
    metrics_.trace().Record(TraceEventType::kCorruptionDetected,
                            log_->CurrentLsn(), r.off, r.len,
                            shard_map_.ShardOf(r.off));
  }
  metrics_.counter("audit.corruptions_noted")->Add(ranges.size());
  CorruptionNote note;
  note.last_clean_audit_lsn = LastCleanAuditLsn();
  note.ranges = ranges;
  if (forensics_ != nullptr) {
    // The dossier goes to incidents.jsonl first (it captures the image
    // bytes as found, before any recovery rewrites them); the note then
    // carries its id so the post-restart provenance can point back.
    note.incident_id = forensics_->RecordIncident(
        source, log_->CurrentLsn(), note.last_clean_audit_lsn, ranges,
        "corruption note written; next recovery runs the "
        "delete-transaction algorithm");
  }
  return WriteCorruptionNote(files_.CorruptNote(), note);
}

Status Database::CacheRecover(const std::vector<CorruptRange>& ranges) {
  CWDB_RETURN_IF_ERROR(CacheRecoverRegions(files_, image_.get(), txns_.get(),
                                           log_.get(), protection_.get(),
                                           checkpointer_.get(), ranges));
  // The cache image is repaired; the noted corruption (if any) is resolved.
  return RemoveFileIfExists(files_.CorruptNote());
}

Status Database::ReportCorruption(const std::vector<CorruptRange>& ranges) {
  return NoteCorruption(ranges);
}

bool Database::TryRepairRanges(const std::vector<CorruptRange>& ranges,
                               IncidentSource source,
                               std::vector<CorruptRange>* unrepaired) {
  for (const CorruptRange& r : ranges) {
    metrics_.NoteDetection(r.off, r.len);
    metrics_.trace().Record(TraceEventType::kCorruptionDetected,
                            log_->CurrentLsn(), r.off, r.len,
                            shard_map_.ShardOf(r.off));
  }
  ProtectionManager::RepairEpisode episode;
  bool ok = protection_->RepairWithForensics(
      source, log_->CurrentLsn(), LastCleanAuditLsn(), ranges,
      "corruption detected; attempting in-place parity repair", &episode);
  if (unrepaired != nullptr) *unrepaired = episode.outcome.unrepaired;
  return ok;
}

Status Database::RecoverFromCorruption(const std::vector<CorruptRange>& ranges,
                                       std::optional<Lsn> not_before_lsn) {
  CorruptionNote note;
  note.last_clean_audit_lsn =
      not_before_lsn.has_value() ? *not_before_lsn : LastCleanAuditLsn();
  note.ranges = ranges;
  if (forensics_ != nullptr) {
    note.incident_id = forensics_->RecordIncident(
        IncidentSource::kOperator, log_->CurrentLsn(),
        note.last_clean_audit_lsn, ranges,
        "corruption reported through RecoverFromCorruption");
  }
  CWDB_RETURN_IF_ERROR(WriteCorruptionNote(files_.CorruptNote(), note));
  return CrashAndRecover();
}

Status Database::RecordCleanAudit(Lsn audit_lsn) {
  return WriteAuditMeta(files_.AuditMeta(), audit_lsn);
}

Status Database::RecoverToPriorState(Lsn point) {
  log_->DiscardTail();
  txns_->ClearForCrash();
  RecoveryOptions ropts;
  ropts.redo_limit = point;
  RecoveryDriver driver(files_, image_.get(), txns_.get(), log_.get(),
                        protection_.get(), checkpointer_.get());
  CWDB_ASSIGN_OR_RETURN(last_report_, driver.Run(ropts));
  return protection_->ReprotectAll();
}

Result<Lsn> Database::Archive(const std::string& archive_dir) {
  CWDB_RETURN_IF_ERROR(Checkpoint());
  CWDB_RETURN_IF_ERROR(log_->Flush());
  CWDB_ASSIGN_OR_RETURN(CheckpointMeta meta,
                        CreateArchive(files_, archive_dir));
  return meta.ck_end;
}

Status Database::CrashAndRecover() {
  // Everything volatile dies with the process: the un-flushed log tail,
  // the ATT with its local logs, and the lock tables.
  log_->DiscardTail();
  txns_->ClearForCrash();
  CWDB_RETURN_IF_ERROR(RunRecovery());
  CWDB_RETURN_IF_ERROR(protection_->ReprotectAll());
  return Status::OK();
}

DatabaseStats Database::GetStats() const {
  // One registry snapshot so all the counters are read at the same moment
  // (the accessors each re-read their own counter).
  MetricsSnapshot snap = metrics_.Capture();
  DatabaseStats stats;
  stats.commits = snap.CounterValue("txn.commits");
  stats.aborts = snap.CounterValue("txn.aborts");
  stats.checkpoints = snap.CounterValue("ckpt.checkpoints");
  stats.log_bytes_appended = snap.CounterValue("wal.bytes_appended");
  stats.log_flushes = snap.CounterValue("wal.flushes");
  stats.protection.updates = snap.CounterValue("protect.updates");
  stats.protection.codeword_folds = snap.CounterValue("protect.codeword_folds");
  stats.protection.prechecks = snap.CounterValue("protect.prechecks");
  stats.protection.regions_audited =
      snap.CounterValue("protect.regions_audited");
  stats.protection.audit_failures = snap.CounterValue("protect.audit_failures");
  stats.protection.mprotect_calls = snap.CounterValue("protect.mprotect_calls");
  stats.protection.pages_unprotected =
      snap.CounterValue("protect.pages_unprotected");
  stats.protection_space_overhead_bytes = protection_->SpaceOverheadBytes();
  return stats;
}

Result<std::string> Database::DumpMetrics() {
  // Refresh the process gauges so an explicit dump (and `cwdb_ctl stats`
  // reading its output) carries current uptime/RSS/fd/disk numbers even
  // when no history sampler is running.
  PublishProcessStats(
      &metrics_, SampleProcessStats(files_.dir(), metrics_.boot_mono_ns()));
  MetricsSnapshot snap = metrics_.Capture();
  if (flight_recorder_ != nullptr) flight_recorder_->WriteMetricsSample(snap);
  std::string json = snap.ToJson();
  CWDB_RETURN_IF_ERROR(WriteFileAtomic(files_.MetricsFile(), json));
  if (metrics_.tracer()->enabled()) {
    // The span dump rides along so post-mortem `cwdb_ctl trace-export` /
    // `spans` work on a closed database directory.
    CWDB_RETURN_IF_ERROR(WriteFileAtomic(
        files_.SpansFile(), SpansToJson(CaptureSpans(&metrics_))));
  }
  // The history ring and SLO report persist alongside so `cwdb_ctl top` /
  // `scrub-map` work on a closed directory.
  if (history_ != nullptr && history_->size() > 0) {
    CWDB_RETURN_IF_ERROR(history_->SaveTo(files_.MetricsHistoryFile()));
  }
  if (slo_ != nullptr) {
    CWDB_RETURN_IF_ERROR(
        WriteFileAtomic(files_.SloReportFile(), slo_->ReportJson()));
  }
  return json;
}

}  // namespace cwdb
