#ifndef CWDB_BLOB_BLOB_STORE_H_
#define CWDB_BLOB_BLOB_STORE_H_

#include <cstdint>
#include <string>

#include "core/database.h"

namespace cwdb {

/// Contiguous large-object storage — the Dalí property the paper calls out
/// in §2: because the system is not page-based, "objects larger than a
/// page [are stored] contiguously, and thus access them directly without
/// reassembly and copying".
///
/// The heap is one contiguous extent (carved as a capacity-1 table whose
/// single "record" is the whole heap, so it appears in the directory and
/// participates in integrity checks). Inside it, a first-fit free list of
/// blocks with 16-byte headers:
///
///   header: u32 magic('BLOB'/'FREE'), u32 reserved,
///           u64 size (payload bytes) ... then, for free blocks, the first
///           8 payload bytes hold the heap-relative offset of the next free
///           block + 1 (0 = end of list).
///
/// Every structural mutation (list surgery, header stamping) is a logged
/// raw-region operation whose logical undo restores the previous bytes, so
/// allocator state rolls back exactly with the transaction, recovers after
/// crashes, stays codeword-consistent, and — under read-logging schemes —
/// blob reads are traced by delete-transaction recovery like record reads.
/// Freed blocks are not coalesced (documented, like the image-level bump
/// allocator).
class BlobStore {
 public:
  /// Carves a heap of `heap_bytes` (rounded up to pages) inside `txn`.
  static Result<BlobStore> Create(Database* db, Transaction* txn,
                                  const std::string& name,
                                  uint64_t heap_bytes);

  static Result<BlobStore> Open(Database* db, const std::string& name);

  /// Allocates a blob of exactly `size` payload bytes (zero-initialized
  /// blocks come from the arena; recycled blocks retain old bytes — write
  /// before reading). Returns the blob's image offset (stable for its
  /// lifetime). kNoSpace when no free block fits.
  Result<DbPtr> Alloc(Transaction* txn, uint64_t size);

  /// Returns the blob's bytes to the free list.
  Status Free(Transaction* txn, DbPtr blob);

  /// Writes `data` at byte `off` within the blob (bounds-checked against
  /// the blob's allocated size).
  Status Write(Transaction* txn, DbPtr blob, uint64_t off, Slice data);

  /// Reads `len` bytes at `off` within the blob through the protected read
  /// path.
  Status Read(Transaction* txn, DbPtr blob, uint64_t off, uint64_t len,
              void* out);

  /// Payload size of an allocated blob.
  Result<uint64_t> SizeOf(DbPtr blob) const;

  /// Walks the heap validating headers and the free list; returns the
  /// number of free blocks or kCorruption with a diagnosis.
  Result<uint64_t> CheckHeap() const;

  uint64_t heap_bytes() const { return heap_bytes_; }
  DbPtr heap_start() const { return heap_start_; }
  TableId heap_table() const { return table_; }

 private:
  static constexpr uint32_t kAllocatedMagic = 0x424C4F42;  // 'BLOB'
  static constexpr uint32_t kFreeMagic = 0x46524545;       // 'FREE'
  static constexpr uint64_t kHeaderBytes = 16;
  static constexpr uint64_t kMinPayload = 16;

  BlobStore(Database* db, TableId table, DbPtr heap_start,
            uint64_t heap_bytes)
      : db_(db),
        table_(table),
        heap_start_(heap_start),
        heap_bytes_(heap_bytes) {}

  /// Heap-relative offset of the free-list head + 1 lives in the first 8
  /// bytes of the heap (a tiny superblock before the first block).
  static constexpr uint64_t kSuperblockBytes = 16;

  struct BlockView {
    uint32_t magic;
    uint64_t size;
    uint64_t next_plus_1;  ///< Free blocks only.
  };

  DbPtr HeapEnd() const { return heap_start_ + heap_bytes_; }
  Result<BlockView> ReadBlock(DbPtr header_off) const;
  Status LockHeap(Transaction* txn);

  Database* db_;
  TableId table_;
  DbPtr heap_start_;
  uint64_t heap_bytes_;
};

}  // namespace cwdb

#endif  // CWDB_BLOB_BLOB_STORE_H_
