#include "blob/blob_store.h"

#include <cstring>

namespace cwdb {

namespace {

std::string HeapName(const std::string& name) { return name + ".heap"; }

std::string EncodeHeader(uint32_t magic, uint64_t size) {
  std::string out(16, '\0');
  std::memcpy(out.data(), &magic, 4);
  std::memcpy(out.data() + 8, &size, 8);
  return out;
}

uint64_t AlignUp8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

}  // namespace

Result<BlobStore> BlobStore::Create(Database* db, Transaction* txn,
                                    const std::string& name,
                                    uint64_t heap_bytes) {
  if (heap_bytes < kSuperblockBytes + kHeaderBytes + kMinPayload ||
      heap_bytes > ~uint32_t{0}) {
    return Status::InvalidArgument("blob heap size out of range");
  }
  // The heap is a capacity-1 table: one contiguous extent, visible in the
  // directory, never accessed through record operations.
  CWDB_ASSIGN_OR_RETURN(
      TableId table,
      db->CreateTable(txn, HeapName(name),
                      static_cast<uint32_t>(heap_bytes), 1));
  DbPtr start = db->image()->table_meta(table)->data_off;
  BlobStore store(db, table, start, heap_bytes);

  // Superblock: free-list head -> the one block spanning the whole heap.
  uint64_t first_rel = kSuperblockBytes;
  uint64_t head_plus_1 = first_rel + 1;
  uint64_t zero = 0;
  CWDB_RETURN_IF_ERROR(db->RawUpdate(
      txn, start, Slice(reinterpret_cast<const char*>(&head_plus_1), 8)));
  CWDB_RETURN_IF_ERROR(db->RawUpdate(
      txn, start + 8, Slice(reinterpret_cast<const char*>(&zero), 8)));
  uint64_t payload = heap_bytes - kSuperblockBytes - kHeaderBytes;
  CWDB_RETURN_IF_ERROR(db->RawUpdate(txn, start + first_rel,
                                     EncodeHeader(kFreeMagic, payload)));
  // End-of-list marker in the free block's first payload bytes.
  CWDB_RETURN_IF_ERROR(db->RawUpdate(
      txn, start + first_rel + kHeaderBytes,
      Slice(reinterpret_cast<const char*>(&zero), 8)));
  return store;
}

Result<BlobStore> BlobStore::Open(Database* db, const std::string& name) {
  CWDB_ASSIGN_OR_RETURN(TableId table, db->FindTable(HeapName(name)));
  const TableMetaRaw* meta = db->image()->table_meta(table);
  return BlobStore(db, table, meta->data_off, meta->record_size);
}

Status BlobStore::LockHeap(Transaction* txn) {
  if (db_->txns()->recovery_mode()) return Status::OK();
  // Held for the transaction's duration: allocator surgery by one
  // transaction must stay invisible (and un-conflicted) until it commits
  // or its raw-region undo restores the lists.
  return db_->txns()->locks().Acquire(txn->id(), LockId::Table(table_),
                                      LockMode::kExclusive);
}

Result<BlobStore::BlockView> BlobStore::ReadBlock(DbPtr header_off) const {
  if (header_off < heap_start_ + kSuperblockBytes ||
      header_off + kHeaderBytes > HeapEnd()) {
    return Status::Corruption("block header outside the heap");
  }
  BlockView view;
  const uint8_t* p = db_->image()->At(header_off);
  std::memcpy(&view.magic, p, 4);
  std::memcpy(&view.size, p + 8, 8);
  view.next_plus_1 = 0;
  if (view.magic == kFreeMagic) {
    std::memcpy(&view.next_plus_1, p + kHeaderBytes, 8);
  } else if (view.magic != kAllocatedMagic) {
    return Status::Corruption("bad block magic");
  }
  if (view.size < kMinPayload ||
      header_off + kHeaderBytes + view.size > HeapEnd()) {
    return Status::Corruption("bad block size");
  }
  return view;
}

Result<DbPtr> BlobStore::Alloc(Transaction* txn, uint64_t size) {
  if (size == 0) return Status::InvalidArgument("zero-size blob");
  uint64_t need = AlignUp8(std::max(size, kMinPayload));
  CWDB_RETURN_IF_ERROR(LockHeap(txn));

  // First-fit walk. `link_off` is the absolute offset of the 8-byte link
  // pointing at the current block (superblock head, then predecessors'
  // next fields).
  DbPtr link_off = heap_start_;
  uint64_t cur_plus_1;
  std::memcpy(&cur_plus_1, db_->image()->At(link_off), 8);
  while (cur_plus_1 != 0) {
    DbPtr header = heap_start_ + (cur_plus_1 - 1);
    CWDB_ASSIGN_OR_RETURN(BlockView block, ReadBlock(header));
    if (block.magic != kFreeMagic) {
      return Status::Corruption("free list points at an allocated block");
    }
    if (block.size >= need) {
      uint64_t leftover = block.size - need;
      uint64_t next_for_link = block.next_plus_1;
      if (leftover >= kHeaderBytes + kMinPayload) {
        // Split: the tail becomes a new free block chained in our place.
        DbPtr rem_header = header + kHeaderBytes + need;
        CWDB_RETURN_IF_ERROR(db_->RawUpdate(
            txn, rem_header,
            EncodeHeader(kFreeMagic, leftover - kHeaderBytes)));
        CWDB_RETURN_IF_ERROR(db_->RawUpdate(
            txn, rem_header + kHeaderBytes,
            Slice(reinterpret_cast<const char*>(&block.next_plus_1), 8)));
        next_for_link = (rem_header - heap_start_) + 1;
      } else {
        need = block.size;  // Absorb the unsplittable remainder.
      }
      CWDB_RETURN_IF_ERROR(db_->RawUpdate(
          txn, link_off,
          Slice(reinterpret_cast<const char*>(&next_for_link), 8)));
      CWDB_RETURN_IF_ERROR(
          db_->RawUpdate(txn, header, EncodeHeader(kAllocatedMagic, need)));
      return header + kHeaderBytes;
    }
    link_off = header + kHeaderBytes;
    cur_plus_1 = block.next_plus_1;
  }
  return Status::NoSpace("no free block fits the blob");
}

Status BlobStore::Free(Transaction* txn, DbPtr blob) {
  DbPtr header = blob - kHeaderBytes;
  CWDB_ASSIGN_OR_RETURN(BlockView block, ReadBlock(header));
  if (block.magic != kAllocatedMagic) {
    return Status::InvalidArgument("not an allocated blob");
  }
  CWDB_RETURN_IF_ERROR(LockHeap(txn));
  uint64_t head_plus_1;
  std::memcpy(&head_plus_1, db_->image()->At(heap_start_), 8);
  // Push onto the free list (no coalescing; see class comment).
  CWDB_RETURN_IF_ERROR(
      db_->RawUpdate(txn, header, EncodeHeader(kFreeMagic, block.size)));
  CWDB_RETURN_IF_ERROR(db_->RawUpdate(
      txn, blob, Slice(reinterpret_cast<const char*>(&head_plus_1), 8)));
  uint64_t new_head = (header - heap_start_) + 1;
  return db_->RawUpdate(
      txn, heap_start_, Slice(reinterpret_cast<const char*>(&new_head), 8));
}

Status BlobStore::Write(Transaction* txn, DbPtr blob, uint64_t off,
                        Slice data) {
  CWDB_ASSIGN_OR_RETURN(uint64_t size, SizeOf(blob));
  if (off + data.size() > size) {
    return Status::InvalidArgument("write beyond blob bounds");
  }
  return db_->RawUpdate(txn, blob + off, data);
}

Status BlobStore::Read(Transaction* txn, DbPtr blob, uint64_t off,
                       uint64_t len, void* out) {
  CWDB_ASSIGN_OR_RETURN(uint64_t size, SizeOf(blob));
  if (off + len > size) {
    return Status::InvalidArgument("read beyond blob bounds");
  }
  return txn->Read(blob + off, out, static_cast<uint32_t>(len));
}

Result<uint64_t> BlobStore::SizeOf(DbPtr blob) const {
  CWDB_ASSIGN_OR_RETURN(BlockView block, ReadBlock(blob - kHeaderBytes));
  if (block.magic != kAllocatedMagic) {
    return Status::InvalidArgument("not an allocated blob");
  }
  return block.size;
}

Result<uint64_t> BlobStore::CheckHeap() const {
  // Pass 1: walk every block front to back.
  uint64_t free_blocks = 0;
  uint64_t seen_free_bytes = 0;
  DbPtr cur = heap_start_ + kSuperblockBytes;
  while (cur < HeapEnd()) {
    CWDB_ASSIGN_OR_RETURN(BlockView block, ReadBlock(cur));
    if (block.magic == kFreeMagic) {
      ++free_blocks;
      seen_free_bytes += block.size;
    }
    cur += kHeaderBytes + block.size;
  }
  if (cur != HeapEnd()) {
    return Status::Corruption("blocks do not tile the heap");
  }
  // Pass 2: the free list must reach exactly the free blocks.
  uint64_t listed = 0;
  uint64_t listed_bytes = 0;
  uint64_t cur_plus_1;
  std::memcpy(&cur_plus_1, db_->image()->At(heap_start_), 8);
  while (cur_plus_1 != 0) {
    if (listed > free_blocks) {
      return Status::Corruption("free list longer than free blocks (cycle?)");
    }
    CWDB_ASSIGN_OR_RETURN(BlockView block,
                          ReadBlock(heap_start_ + (cur_plus_1 - 1)));
    if (block.magic != kFreeMagic) {
      return Status::Corruption("free list entry not free");
    }
    ++listed;
    listed_bytes += block.size;
    cur_plus_1 = block.next_plus_1;
  }
  if (listed != free_blocks || listed_bytes != seen_free_bytes) {
    return Status::Corruption("free list does not match free blocks");
  }
  return free_blocks;
}

}  // namespace cwdb
