#ifndef CWDB_CWDB_H_
#define CWDB_CWDB_H_

/// Umbrella header for the cwdb library: a Dalí-style main-memory storage
/// manager with codeword-based protection against addressing errors and
/// delete-transaction corruption recovery, after Bohannon, Rastogi,
/// Seshadri, Silberschatz & Sudarshan, "Using Codewords to Protect
/// Database Data from a Class of Software Errors", ICDE 1999.
///
/// Most applications only need:
///   * cwdb::Database / cwdb::DatabaseOptions  — open, transact, recover
///   * cwdb::ProtectionScheme                  — pick a Table 2 scheme
///   * cwdb::BackgroundAuditor                 — asynchronous detection
///   * cwdb::LineageTracer                     — audit-trail queries
///   * cwdb::FaultInjector / cwdb::TpcbWorkload — evaluation harnesses

#include "core/auditor.h"
#include "core/database.h"
#include "core/lineage.h"
#include "faultinject/fault_injector.h"
#include "blob/blob_store.h"
#include "index/hash_index.h"
#include "index/ordered_index.h"
#include "workload/tpcb.h"

#endif  // CWDB_CWDB_H_
