#include "storage/attribution.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace cwdb {
namespace {

/// A resolved extent of the image with a single attribution.
struct Extent {
  DbPtr begin = 0;
  DbPtr end = 0;  ///< exclusive
  ImageAreaKind kind = ImageAreaKind::kUnallocated;
  TableId table = 0;
  std::string table_name;
  uint64_t record_size = 0;  ///< kRecordData only.
  DbPtr data_off = 0;        ///< kRecordData only.
};

std::string SafeTableName(const TableMetaRaw* m) {
  // The directory itself may be the corrupt bytes under attribution; cap at
  // the field width and stop at NUL so a scribbled name can't run away.
  size_t n = strnlen(m->name, kTableNameBytes);
  std::string out(m->name, n);
  for (char& c : out) {
    if (static_cast<unsigned char>(c) < 0x20 ||
        static_cast<unsigned char>(c) > 0x7E) {
      c = '?';
    }
  }
  return out;
}

/// Builds the sorted extent map of every structured area of the image.
std::vector<Extent> BuildExtents(const DbImage& image) {
  std::vector<Extent> out;
  out.push_back({kHeaderOff, kHeaderBytes, ImageAreaKind::kHeader, 0, "", 0, 0});
  out.push_back({kTableDirOff, kTableDirOff + kTableDirBytes,
                 ImageAreaKind::kTableDir, 0, "", 0, 0});
  for (TableId t = 0; t < kMaxTables; ++t) {
    const TableMetaRaw* m = image.table_meta(t);
    if (m->in_use != 1) continue;  // Defensive: a flipped flag reads as free.
    std::string name = SafeTableName(m);
    uint64_t bitmap_len = BitmapBytes(m->capacity);
    if (image.InBounds(m->bitmap_off, bitmap_len) && bitmap_len > 0) {
      out.push_back({m->bitmap_off, m->bitmap_off + bitmap_len,
                     ImageAreaKind::kBitmap, t, name, 0, 0});
    }
    uint64_t data_len =
        static_cast<uint64_t>(m->record_size) * m->capacity;
    if (m->record_size > 0 && image.InBounds(m->data_off, data_len) &&
        data_len > 0) {
      out.push_back({m->data_off, m->data_off + data_len,
                     ImageAreaKind::kRecordData, t, name, m->record_size,
                     m->data_off});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Extent& a, const Extent& b) { return a.begin < b.begin; });
  return out;
}

}  // namespace

const char* ImageAreaKindName(ImageAreaKind k) {
  switch (k) {
    case ImageAreaKind::kHeader: return "header";
    case ImageAreaKind::kTableDir: return "table_dir";
    case ImageAreaKind::kBitmap: return "bitmap";
    case ImageAreaKind::kRecordData: return "record_data";
    case ImageAreaKind::kUnallocated: return "unallocated";
  }
  return "unknown";
}

std::string RangeAttribution::ToString() const {
  char buf[256];
  switch (kind) {
    case ImageAreaKind::kRecordData:
      std::snprintf(buf, sizeof(buf),
                    "[%llu,+%llu) table '%s' (id %u) records %u..%u pages "
                    "%llu..%llu",
                    static_cast<unsigned long long>(off),
                    static_cast<unsigned long long>(len), table_name.c_str(),
                    static_cast<unsigned>(table), first_slot, last_slot,
                    static_cast<unsigned long long>(page_first),
                    static_cast<unsigned long long>(page_last));
      break;
    case ImageAreaKind::kBitmap:
      std::snprintf(buf, sizeof(buf),
                    "[%llu,+%llu) alloc bitmap of table '%s' (id %u) pages "
                    "%llu..%llu",
                    static_cast<unsigned long long>(off),
                    static_cast<unsigned long long>(len), table_name.c_str(),
                    static_cast<unsigned>(table),
                    static_cast<unsigned long long>(page_first),
                    static_cast<unsigned long long>(page_last));
      break;
    case ImageAreaKind::kTableDir:
      std::snprintf(buf, sizeof(buf),
                    "[%llu,+%llu) table directory slot %u pages %llu..%llu",
                    static_cast<unsigned long long>(off),
                    static_cast<unsigned long long>(len),
                    static_cast<unsigned>(table),
                    static_cast<unsigned long long>(page_first),
                    static_cast<unsigned long long>(page_last));
      break;
    default:
      std::snprintf(buf, sizeof(buf), "[%llu,+%llu) %s pages %llu..%llu",
                    static_cast<unsigned long long>(off),
                    static_cast<unsigned long long>(len),
                    ImageAreaKindName(kind),
                    static_cast<unsigned long long>(page_first),
                    static_cast<unsigned long long>(page_last));
  }
  return buf;
}

std::vector<RangeAttribution> AttributeRange(const DbImage& image, DbPtr off,
                                             uint64_t len) {
  std::vector<RangeAttribution> out;
  if (len == 0) return out;
  // Clamp to the image so a garbage range from a corrupt note can't index
  // out of bounds.
  if (off >= image.size()) {
    off = image.size();
    len = 0;
  } else if (len > image.size() - off) {
    len = image.size() - off;
  }
  if (len == 0) return out;

  std::vector<Extent> extents = BuildExtents(image);
  DbPtr pos = off;
  const DbPtr end = off + len;

  auto emit = [&](const Extent* e, DbPtr piece_begin, DbPtr piece_end) {
    RangeAttribution a;
    a.off = piece_begin;
    a.len = piece_end - piece_begin;
    a.page_first = image.PageOf(piece_begin);
    a.page_last = image.PageOf(piece_end - 1);
    if (e == nullptr) {
      a.kind = ImageAreaKind::kUnallocated;
    } else {
      a.kind = e->kind;
      a.table = e->table;
      a.table_name = e->table_name;
      if (e->kind == ImageAreaKind::kTableDir) {
        a.table = static_cast<TableId>((piece_begin - kTableDirOff) /
                                       kTableMetaBytes);
      } else if (e->kind == ImageAreaKind::kRecordData) {
        a.first_slot =
            static_cast<uint32_t>((piece_begin - e->data_off) / e->record_size);
        a.last_slot = static_cast<uint32_t>((piece_end - 1 - e->data_off) /
                                            e->record_size);
      }
    }
    out.push_back(std::move(a));
  };

  for (const Extent& e : extents) {
    if (pos >= end) break;
    if (e.end <= pos) continue;
    if (e.begin >= end) break;
    if (pos < e.begin) {
      emit(nullptr, pos, e.begin);  // Gap before this extent.
      pos = e.begin;
    }
    DbPtr piece_end = std::min(end, e.end);
    emit(&e, pos, piece_end);
    pos = piece_end;
  }
  if (pos < end) emit(nullptr, pos, end);
  return out;
}

}  // namespace cwdb
