#ifndef CWDB_STORAGE_ATTRIBUTION_H_
#define CWDB_STORAGE_ATTRIBUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/db_image.h"
#include "storage/layout.h"

namespace cwdb {

/// What part of the image a byte range falls in.
enum class ImageAreaKind : uint8_t {
  kHeader = 0,       ///< DbHeaderRaw at offset 0.
  kTableDir = 1,     ///< The table directory (TableMetaRaw slots).
  kBitmap = 2,       ///< A table's record-allocation bitmap extent.
  kRecordData = 3,   ///< A table's record extent.
  kUnallocated = 4,  ///< Beyond alloc_cursor / between extents.
};

const char* ImageAreaKindName(ImageAreaKind k);

/// One homogeneous piece of an attributed range: the bytes [off, off+len)
/// all belong to the same image area (and, for bitmap/record areas, the
/// same table).
struct RangeAttribution {
  ImageAreaKind kind = ImageAreaKind::kUnallocated;
  DbPtr off = 0;
  uint64_t len = 0;
  uint64_t page_first = 0;  ///< Database page ids covering the piece.
  uint64_t page_last = 0;

  // Valid for kBitmap / kRecordData (and kTableDir, where `table` is the
  // directory slot the bytes fall in):
  TableId table = 0;
  std::string table_name;
  uint32_t first_slot = kInvalidSlot;  ///< kRecordData: record slots covered.
  uint32_t last_slot = kInvalidSlot;

  std::string ToString() const;
};

/// Maps the byte range [off, off+len) through the table directory into a
/// sequence of homogeneous pieces, in ascending offset order. This is how a
/// dossier turns "bytes 73728..73791 failed their codeword" into "table
/// 'accounts' records 12..13, page 9". Tolerates a corrupt directory (it
/// reads in_use/offset fields defensively and falls back to kUnallocated);
/// never writes to the image.
std::vector<RangeAttribution> AttributeRange(const DbImage& image, DbPtr off,
                                             uint64_t len);

}  // namespace cwdb

#endif  // CWDB_STORAGE_ATTRIBUTION_H_
