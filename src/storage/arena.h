#ifndef CWDB_STORAGE_ARENA_H_
#define CWDB_STORAGE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/result.h"
#include "common/status.h"

namespace cwdb {

/// The database image: one contiguous, page-aligned anonymous mapping that
/// is directly visible to application code (the paper's system model maps
/// database data into the application's address space). The Hardware
/// Protection scheme changes page permissions on this mapping with
/// mprotect, which is why it must be a real OS mapping rather than heap
/// memory.
class Arena {
 public:
  /// Maps `size` bytes (rounded up to the OS page size), zero-filled.
  static Result<std::unique_ptr<Arena>> Create(size_t size);

  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  uint8_t* base() const { return base_; }
  size_t size() const { return size_; }

  /// Changes protection of [offset, offset+len) rounded out to OS pages.
  /// `writable` false maps to PROT_READ, true to PROT_READ|PROT_WRITE.
  Status Protect(size_t offset, size_t len, bool writable);

  /// OS page size used for mprotect granularity.
  static size_t OsPageSize();

 private:
  Arena(uint8_t* base, size_t size) : base_(base), size_(size) {}

  uint8_t* base_;
  size_t size_;
};

}  // namespace cwdb

#endif  // CWDB_STORAGE_ARENA_H_
