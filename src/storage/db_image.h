#ifndef CWDB_STORAGE_DB_IMAGE_H_
#define CWDB_STORAGE_DB_IMAGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/arena.h"
#include "storage/layout.h"

namespace cwdb {

/// Read-side view and address math over the database image. DbImage never
/// mutates persistent bytes itself: all writes to the arena must go through
/// the prescribed Transaction::BeginUpdate / EndUpdate interface so they are
/// logged, codeword-maintained and (optionally) mprotect-guarded. The two
/// exceptions are Format(), which runs once before any log exists, and
/// checkpoint load, which replaces the whole image before recovery.
///
/// DbImage also tracks volatile dirty-page state for the ping-pong
/// checkpointer: one dirty bitmap per checkpoint image (a page dirtied
/// since image A was last written must go to A next time, independent of B).
class DbImage {
 public:
  /// Creates a zeroed arena of `arena_size` and formats the header and
  /// table directory. `page_size` is the *database* page size used for
  /// dirty tracking and checkpoint granularity (a multiple of the OS page).
  static Result<std::unique_ptr<DbImage>> Create(uint64_t arena_size,
                                                 uint32_t page_size);

  /// Validates the header after the arena contents have been replaced by a
  /// checkpoint load.
  Status ValidateHeader() const;

  uint8_t* base() const { return arena_->base(); }
  uint64_t size() const { return arena_size_; }
  uint32_t page_size() const { return page_size_; }
  uint64_t page_count() const { return arena_size_ / page_size_; }
  Arena* arena() const { return arena_.get(); }

  /// Raw pointer into the image; callers must stay within bounds.
  uint8_t* At(DbPtr off) const { return arena_->base() + off; }

  bool InBounds(DbPtr off, uint64_t len) const {
    return off <= arena_size_ && len <= arena_size_ - off;
  }

  const DbHeaderRaw* header() const {
    return reinterpret_cast<const DbHeaderRaw*>(At(kHeaderOff));
  }
  const TableMetaRaw* table_meta(TableId t) const {
    return reinterpret_cast<const TableMetaRaw*>(At(TableMetaOff(t)));
  }

  /// Finds an in-use table by name. Returns kMaxTables if absent.
  TableId FindTable(const std::string& name) const;

  /// Image offset of record `slot` of table `t` (no liveness check).
  DbPtr RecordOff(TableId t, uint32_t slot) const {
    const TableMetaRaw* m = table_meta(t);
    return m->data_off + static_cast<uint64_t>(slot) * m->record_size;
  }

  /// True if `slot` is allocated in table `t`'s bitmap.
  bool SlotAllocated(TableId t, uint32_t slot) const;

  /// First free slot at or after `hint`, wrapping once; kInvalidSlot if the
  /// table is full. Read-only scan of the allocation bitmap.
  uint32_t FindFreeSlot(TableId t, uint32_t hint) const;

  uint64_t PageOf(DbPtr off) const { return off / page_size_; }

  /// Volatile per-table slot-allocation hint (purely an optimization for
  /// FindFreeSlot; safe to lose on crash).
  uint32_t alloc_hint(TableId t) const { return alloc_hint_[t]; }
  void set_alloc_hint(TableId t, uint32_t hint) { alloc_hint_[t] = hint; }

  // -- Volatile dirty-page tracking (two sets: ping-pong images A and B) --

  /// Marks pages covering [off, off+len) dirty in both checkpoint sets.
  void MarkDirty(DbPtr off, uint64_t len);

  /// Pages currently dirty with respect to checkpoint image `which` (0/1).
  std::vector<uint64_t> DirtyPages(int which) const;
  void ClearDirty(int which);
  /// Re-marks `pages` dirty in set `which` — a failed checkpoint restores
  /// the snapshot it cleared so the next checkpoint rewrites those pages.
  void MarkPagesDirty(int which, const std::vector<uint64_t>& pages);
  void MarkAllDirty();
  bool IsDirty(int which, uint64_t page) const {
    return dirty_[which].Test(page);
  }

 private:
  /// Bit-per-page dirty set over atomic words. Transactions in different
  /// shards mark pages concurrently (under the shared side of the checkpoint
  /// latch), and pages that share a 64-bit word must not race; fetch_or makes
  /// the bit sets independent. Relaxed ordering suffices — visibility to the
  /// checkpointer is ordered by the exclusive checkpoint latch acquisition.
  class DirtyBitmap {
   public:
    void Reset(uint64_t pages) {
      pages_ = pages;
      words_ = std::make_unique<std::atomic<uint64_t>[]>((pages + 63) / 64);
      Fill(false);
    }
    void Set(uint64_t page) {
      words_[page / 64].fetch_or(1ull << (page % 64),
                                 std::memory_order_relaxed);
    }
    bool Test(uint64_t page) const {
      return (words_[page / 64].load(std::memory_order_relaxed) >>
              (page % 64)) &
             1u;
    }
    void Fill(bool value) {
      uint64_t word_count = (pages_ + 63) / 64;
      for (uint64_t w = 0; w < word_count; ++w) {
        words_[w].store(value ? ~0ull : 0ull, std::memory_order_relaxed);
      }
    }
    uint64_t pages() const { return pages_; }

   private:
    std::unique_ptr<std::atomic<uint64_t>[]> words_;
    uint64_t pages_ = 0;
  };

  DbImage(std::unique_ptr<Arena> arena, uint64_t arena_size,
          uint32_t page_size);

  void FormatHeader();

  std::unique_ptr<Arena> arena_;
  uint64_t arena_size_;
  uint32_t page_size_;
  DirtyBitmap dirty_[2];
  uint32_t alloc_hint_[kMaxTables] = {};
};

}  // namespace cwdb

#endif  // CWDB_STORAGE_DB_IMAGE_H_
