#ifndef CWDB_STORAGE_LAYOUT_H_
#define CWDB_STORAGE_LAYOUT_H_

#include <cstdint>

namespace cwdb {

/// Persistent on-image layout. Everything below lives inside the arena and
/// is therefore checkpointed, logged, codeword-protected, and (under the
/// Hardware Protection scheme) covered by mprotect.
///
/// As in Dalí, allocation and control information is *not* stored on the
/// same pages as user record data: the header and table directory occupy
/// the front of the image, each table's record-allocation bitmap occupies
/// its own pages, and record data occupies separate contiguous pages. This
/// is what makes an update touch several distinct pages (the paper measures
/// ~11 under Hardware Protection) even though it modifies only a few tuples.
///
/// Image layout:
///   [0, kHeaderBytes)                     DbHeaderRaw
///   [kTableDirOff, kTableDirEnd)          kMaxTables * TableMetaRaw
///   [data area]                           bump-allocated: for each table, a
///                                         bitmap extent and a record extent,
///                                         both page-aligned.

using DbPtr = uint64_t;     ///< Byte offset into the database image.
using TableId = uint16_t;   ///< Index into the table directory.
using TxnId = uint64_t;

constexpr DbPtr kInvalidDbPtr = ~0ull;
constexpr uint32_t kInvalidSlot = ~0u;

/// A record is addressed by (table, slot); its bytes live at a fixed offset
/// computed from the table's metadata.
struct RecordId {
  TableId table = 0;
  uint32_t slot = kInvalidSlot;

  bool valid() const { return slot != kInvalidSlot; }
  bool operator==(const RecordId&) const = default;
};

/// A byte range of the image found inconsistent with its codeword (or
/// otherwise implicated by a detection path). Defined here rather than in
/// protect/ so attribution and forensics code can name ranges without
/// depending on a concrete protection scheme.
struct CorruptRange {
  DbPtr off = 0;
  uint64_t len = 0;

  bool operator==(const CorruptRange&) const = default;
};

constexpr uint64_t kDbMagic = 0x43574442'31393939ull;  // "CWDB1999"
constexpr uint32_t kDbVersion = 1;

constexpr uint64_t kHeaderOff = 0;
constexpr uint64_t kHeaderBytes = 4096;
constexpr uint32_t kMaxTables = 64;
constexpr uint32_t kTableMetaBytes = 128;
constexpr uint32_t kTableNameBytes = 48;
constexpr uint64_t kTableDirOff = kHeaderBytes;
constexpr uint64_t kTableDirBytes = kMaxTables * kTableMetaBytes;

/// Fixed-position header at offset 0 of the image.
struct DbHeaderRaw {
  uint64_t magic;
  uint32_t version;
  uint32_t page_size;
  uint64_t arena_size;
  /// Bump allocator over the data area: next free page-aligned offset.
  /// Space freed by DropTable is not reused (documented limitation).
  uint64_t alloc_cursor;
  uint32_t table_count;
  uint32_t pad;
};
static_assert(sizeof(DbHeaderRaw) <= kHeaderBytes);

/// One slot of the table directory.
struct TableMetaRaw {
  uint8_t in_use;
  uint8_t pad[3];
  uint32_t record_size;     ///< Bytes per record (fixed-size records).
  uint64_t capacity;        ///< Maximum number of records.
  uint64_t data_off;        ///< Image offset of the record extent.
  uint64_t bitmap_off;      ///< Image offset of the allocation bitmap extent.
  uint64_t record_count;    ///< Live records; maintained transactionally.
  char name[kTableNameBytes];
  uint8_t reserved[kTableMetaBytes - 4 - 4 - 8 * 4 - kTableNameBytes];
};
static_assert(sizeof(TableMetaRaw) == kTableMetaBytes);

/// Image offset of table `t`'s directory entry.
constexpr DbPtr TableMetaOff(TableId t) {
  return kTableDirOff + static_cast<uint64_t>(t) * kTableMetaBytes;
}

/// Image offset of the 64-bit bitmap word covering `slot`, relative to a
/// table whose bitmap extent begins at `bitmap_off`.
constexpr DbPtr BitmapWordOff(uint64_t bitmap_off, uint32_t slot) {
  return bitmap_off + (slot / 64) * 8;
}
constexpr uint64_t BitmapBitMask(uint32_t slot) {
  return 1ull << (slot % 64);
}
constexpr uint64_t BitmapBytes(uint64_t capacity) {
  return ((capacity + 63) / 64) * 8;
}

}  // namespace cwdb

#endif  // CWDB_STORAGE_LAYOUT_H_
