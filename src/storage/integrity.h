#ifndef CWDB_STORAGE_INTEGRITY_H_
#define CWDB_STORAGE_INTEGRITY_H_

#include <string>
#include <vector>

#include "storage/db_image.h"

namespace cwdb {

/// One structural-integrity violation.
struct IntegrityViolation {
  DbPtr off = 0;        ///< Start of the implicated bytes.
  uint64_t len = 0;     ///< Length of the implicated bytes.
  std::string message;  ///< Human-readable diagnosis.
};

/// Küspert-style structural audit of the image's control structures
/// (paper §4, citing [10]: "specific techniques for detecting corruption
/// of DBMS data structures"). Unlike the codeword audit — which compares
/// bytes against a checksum and knows nothing about meaning — this checks
/// the *semantic* invariants of the layout:
///
///  * header magic / version / geometry; allocation cursor aligned and in
///    bounds;
///  * every in-use table: sane record size and capacity, NUL-terminated
///    name, page-aligned extents inside the allocated area;
///  * no two tables' extents overlap;
///  * allocation bitmaps have no bits set beyond the table's capacity.
///
/// Violations identify the implicated byte ranges, suitable for
/// Database::RecoverFromCorruption when the damage is to control
/// structures that the codeword audit window has already certified past.
std::vector<IntegrityViolation> CheckImageIntegrity(const DbImage& image);

}  // namespace cwdb

#endif  // CWDB_STORAGE_INTEGRITY_H_
