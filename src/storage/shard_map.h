#ifndef CWDB_STORAGE_SHARD_MAP_H_
#define CWDB_STORAGE_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>

#include "common/logging.h"
#include "storage/layout.h"

namespace cwdb {

/// Static partition of the database image [0, arena_size) into N contiguous
/// shards. Each shard owns a page- and region-aligned span of the arena;
/// everything that scales with concurrency (protection latches, codeword
/// tables, lock tables, WAL append staging, audit cursors) is instantiated
/// per shard so unrelated transactions touch disjoint state.
///
/// The span is rounded up to `align` (the larger of the page size and the
/// protection region size, both powers of two), so a protection region or a
/// page never straddles a shard boundary — a range can be split at shard
/// boundaries without splitting a region. The final shard absorbs the
/// remainder. When the arena is too small for the requested shard count the
/// count is clamped so every shard owns at least one aligned span.
class ShardMap {
 public:
  ShardMap() : arena_size_(0), shards_(1), span_(0) {}

  ShardMap(uint64_t arena_size, size_t shards, uint64_t align) {
    CWDB_CHECK(align > 0 && (align & (align - 1)) == 0)
        << "shard alignment must be a power of two";
    CWDB_CHECK(arena_size % align == 0)
        << "arena size must be a multiple of the shard alignment";
    if (shards == 0) shards = 1;
    arena_size_ = arena_size;
    uint64_t spans = arena_size / align;
    if (shards > spans && spans > 0) shards = static_cast<size_t>(spans);
    shards_ = shards == 0 ? 1 : shards;
    // Round the span up to the alignment; the last shard takes the slack.
    uint64_t raw = arena_size / shards_;
    span_ = (raw + align - 1) / align * align;
    if (span_ == 0) span_ = align;
  }

  size_t shard_count() const { return shards_; }
  uint64_t arena_size() const { return arena_size_; }
  /// Nominal bytes per shard (the last shard may own more or fewer).
  uint64_t span() const { return span_; }

  /// Shard owning image offset `off`.
  size_t ShardOf(DbPtr off) const {
    size_t s = static_cast<size_t>(off / span_);
    return s >= shards_ ? shards_ - 1 : s;
  }

  /// Start of shard `s`'s range.
  uint64_t ShardStart(size_t s) const { return span_ * s; }

  /// Length of shard `s`'s range. The final shard runs to the end of the
  /// arena (which may be more than one span if rounding shrank the count,
  /// or less if the arena is not an exact multiple).
  uint64_t ShardLen(size_t s) const {
    uint64_t start = ShardStart(s);
    if (s + 1 == shards_) return arena_size_ - start;
    return span_;
  }

 private:
  uint64_t arena_size_;
  size_t shards_;
  uint64_t span_;
};

}  // namespace cwdb

#endif  // CWDB_STORAGE_SHARD_MAP_H_
