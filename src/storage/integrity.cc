#include "storage/integrity.h"

#include <algorithm>
#include <cstring>

namespace cwdb {

namespace {

void Violate(std::vector<IntegrityViolation>* out, DbPtr off, uint64_t len,
             std::string message) {
  out->push_back(IntegrityViolation{off, len, std::move(message)});
}

struct Extent {
  uint64_t start;
  uint64_t end;
  TableId table;
};

}  // namespace

std::vector<IntegrityViolation> CheckImageIntegrity(const DbImage& image) {
  std::vector<IntegrityViolation> out;
  const DbHeaderRaw* h = image.header();
  const uint64_t arena = image.size();
  const uint32_t page = image.page_size();

  if (h->magic != kDbMagic) {
    Violate(&out, kHeaderOff, sizeof(DbHeaderRaw), "bad header magic");
    return out;  // Nothing else is trustworthy.
  }
  if (h->version != kDbVersion) {
    Violate(&out, kHeaderOff, sizeof(DbHeaderRaw), "bad header version");
  }
  if (h->page_size != page || h->arena_size != arena) {
    Violate(&out, kHeaderOff, sizeof(DbHeaderRaw),
            "header geometry disagrees with the open image");
  }
  const uint64_t dir_end = kTableDirOff + kTableDirBytes;
  if (h->alloc_cursor % page != 0 || h->alloc_cursor < dir_end ||
      h->alloc_cursor > arena) {
    Violate(&out, kHeaderOff + offsetof(DbHeaderRaw, alloc_cursor), 8,
            "allocation cursor unaligned or out of bounds");
  }

  std::vector<Extent> extents;
  for (TableId t = 0; t < kMaxTables; ++t) {
    const TableMetaRaw* m = image.table_meta(t);
    if (!m->in_use) continue;
    const DbPtr meta_off = TableMetaOff(t);
    bool meta_ok = true;
    if (m->record_size == 0 || m->capacity == 0) {
      Violate(&out, meta_off, kTableMetaBytes,
              "table has zero record size or capacity");
      meta_ok = false;
    }
    if (std::find(m->name, m->name + kTableNameBytes, '\0') ==
        m->name + kTableNameBytes) {
      Violate(&out, meta_off, kTableMetaBytes,
              "table name is not NUL-terminated");
      meta_ok = false;
    }
    if (m->bitmap_off % page != 0 || m->data_off % page != 0) {
      Violate(&out, meta_off, kTableMetaBytes,
              "table extents are not page-aligned");
      meta_ok = false;
    }
    if (!meta_ok) continue;

    const uint64_t bitmap_bytes = BitmapBytes(m->capacity);
    const uint64_t data_bytes = m->capacity * m->record_size;
    // Overflow-safe bounds checks.
    if (m->bitmap_off > arena || bitmap_bytes > arena - m->bitmap_off ||
        m->bitmap_off + bitmap_bytes > h->alloc_cursor ||
        m->bitmap_off < dir_end) {
      Violate(&out, meta_off, kTableMetaBytes,
              "bitmap extent outside the allocated area");
      continue;
    }
    if (m->data_off > arena || data_bytes > arena - m->data_off ||
        m->data_off + data_bytes > h->alloc_cursor || m->data_off < dir_end) {
      Violate(&out, meta_off, kTableMetaBytes,
              "record extent outside the allocated area");
      continue;
    }
    extents.push_back(Extent{m->bitmap_off, m->bitmap_off + bitmap_bytes, t});
    extents.push_back(Extent{m->data_off, m->data_off + data_bytes, t});

    // Bits beyond capacity must be clear (FindFreeSlot relies on it).
    const uint64_t words = (m->capacity + 63) / 64;
    const uint64_t last_word_off = m->bitmap_off + (words - 1) * 8;
    uint64_t last_word;
    std::memcpy(&last_word, image.At(last_word_off), 8);
    const uint32_t valid_bits = static_cast<uint32_t>(
        m->capacity - (words - 1) * 64);
    if (valid_bits < 64 && (last_word >> valid_bits) != 0) {
      Violate(&out, last_word_off, 8,
              "allocation bits set beyond table capacity");
    }
  }

  // Extents must not overlap across (or within) tables.
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) { return a.start < b.start; });
  for (size_t i = 1; i < extents.size(); ++i) {
    if (extents[i].start < extents[i - 1].end) {
      Violate(&out, extents[i].start,
              extents[i - 1].end - extents[i].start,
              "table extents overlap (tables " +
                  std::to_string(extents[i - 1].table) + " and " +
                  std::to_string(extents[i].table) + ")");
    }
  }
  return out;
}

}  // namespace cwdb
