#include "storage/db_image.h"

#include <cstring>

#include "common/logging.h"

namespace cwdb {

DbImage::DbImage(std::unique_ptr<Arena> arena, uint64_t arena_size,
                 uint32_t page_size)
    : arena_(std::move(arena)),
      arena_size_(arena_size),
      page_size_(page_size) {
  uint64_t pages = arena_size_ / page_size_;
  dirty_[0].Reset(pages);
  dirty_[1].Reset(pages);
}

Result<std::unique_ptr<DbImage>> DbImage::Create(uint64_t arena_size,
                                                 uint32_t page_size) {
  if (page_size == 0 || (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument("page size must be a power of two");
  }
  if (page_size % Arena::OsPageSize() != 0) {
    return Status::InvalidArgument(
        "database page size must be a multiple of the OS page size");
  }
  if (arena_size % page_size != 0 ||
      arena_size < kTableDirOff + kTableDirBytes + page_size) {
    return Status::InvalidArgument("arena size too small or unaligned");
  }
  CWDB_ASSIGN_OR_RETURN(std::unique_ptr<Arena> arena,
                        Arena::Create(arena_size));
  std::unique_ptr<DbImage> image(
      new DbImage(std::move(arena), arena_size, page_size));
  image->FormatHeader();
  return image;
}

void DbImage::FormatHeader() {
  DbHeaderRaw h{};
  h.magic = kDbMagic;
  h.version = kDbVersion;
  h.page_size = page_size_;
  h.arena_size = arena_size_;
  // Data area begins at the first page boundary past the table directory.
  uint64_t dir_end = kTableDirOff + kTableDirBytes;
  h.alloc_cursor = (dir_end + page_size_ - 1) & ~(uint64_t{page_size_} - 1);
  h.table_count = 0;
  std::memcpy(At(kHeaderOff), &h, sizeof(h));
  // Table directory is already zero (mmap zero-fill) => all slots free.
}

Status DbImage::ValidateHeader() const {
  const DbHeaderRaw* h = header();
  if (h->magic != kDbMagic) {
    return Status::Corruption("bad image magic");
  }
  if (h->version != kDbVersion) {
    return Status::Corruption("unsupported image version");
  }
  if (h->page_size != page_size_ || h->arena_size != arena_size_) {
    return Status::Corruption("image geometry mismatch");
  }
  return Status::OK();
}

TableId DbImage::FindTable(const std::string& name) const {
  for (TableId t = 0; t < kMaxTables; ++t) {
    const TableMetaRaw* m = table_meta(t);
    if (m->in_use &&
        std::strncmp(m->name, name.c_str(), kTableNameBytes) == 0) {
      return t;
    }
  }
  return kMaxTables;
}

bool DbImage::SlotAllocated(TableId t, uint32_t slot) const {
  const TableMetaRaw* m = table_meta(t);
  CWDB_DCHECK(slot < m->capacity);
  uint64_t word;
  std::memcpy(&word, At(BitmapWordOff(m->bitmap_off, slot)), 8);
  return (word & BitmapBitMask(slot)) != 0;
}

uint32_t DbImage::FindFreeSlot(TableId t, uint32_t hint) const {
  const TableMetaRaw* m = table_meta(t);
  const uint64_t capacity = m->capacity;
  if (capacity == 0) return kInvalidSlot;
  if (hint >= capacity) hint = 0;
  // Scan bitmap words starting at the hint's word, wrapping once. The
  // first pass over the hint word ignores bits below the hint; the final
  // (wrap-around) pass revisits it without the mask so slots below the
  // hint are still found.
  const uint64_t words = (capacity + 63) / 64;
  uint64_t start_word = hint / 64;
  for (uint64_t i = 0; i <= words; ++i) {
    uint64_t wi = (start_word + i) % words;
    uint64_t word;
    std::memcpy(&word, At(m->bitmap_off + wi * 8), 8);
    if (i == 0 && (hint % 64) != 0) {
      word |= (1ull << (hint % 64)) - 1;  // Treat bits below hint as taken.
    }
    if (word == ~0ull) continue;
    // Bits beyond capacity in the final word are never set, so any clear
    // bit found must still be bounds-checked.
    for (int b = 0; b < 64; ++b) {
      if ((word & (1ull << b)) == 0) {
        uint64_t slot = wi * 64 + b;
        if (slot < capacity) return static_cast<uint32_t>(slot);
      }
    }
  }
  return kInvalidSlot;
}

void DbImage::MarkDirty(DbPtr off, uint64_t len) {
  if (len == 0) return;
  uint64_t first = PageOf(off);
  uint64_t last = PageOf(off + len - 1);
  for (uint64_t p = first; p <= last; ++p) {
    dirty_[0].Set(p);
    dirty_[1].Set(p);
  }
}

std::vector<uint64_t> DbImage::DirtyPages(int which) const {
  std::vector<uint64_t> pages;
  for (uint64_t p = 0; p < dirty_[which].pages(); ++p) {
    if (dirty_[which].Test(p)) pages.push_back(p);
  }
  return pages;
}

void DbImage::ClearDirty(int which) { dirty_[which].Fill(false); }

void DbImage::MarkPagesDirty(int which, const std::vector<uint64_t>& pages) {
  for (uint64_t p : pages) dirty_[which].Set(p);
}

void DbImage::MarkAllDirty() {
  dirty_[0].Fill(true);
  dirty_[1].Fill(true);
}

}  // namespace cwdb
