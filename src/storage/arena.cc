#include "storage/arena.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace cwdb {

size_t Arena::OsPageSize() {
  static const size_t kPage = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return kPage;
}

Result<std::unique_ptr<Arena>> Arena::Create(size_t size) {
  if (size == 0) {
    return Status::InvalidArgument("arena size must be positive");
  }
  const size_t page = OsPageSize();
  size = (size + page - 1) & ~(page - 1);
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    return Status::IoError(std::string("mmap: ") + std::strerror(errno));
  }
  return std::unique_ptr<Arena>(new Arena(static_cast<uint8_t*>(p), size));
}

Arena::~Arena() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
  }
}

Status Arena::Protect(size_t offset, size_t len, bool writable) {
  const size_t page = OsPageSize();
  size_t begin = offset & ~(page - 1);
  size_t end = (offset + len + page - 1) & ~(page - 1);
  if (end > size_) end = size_;
  int prot = writable ? (PROT_READ | PROT_WRITE) : PROT_READ;
  if (::mprotect(base_ + begin, end - begin, prot) != 0) {
    return Status::IoError(std::string("mprotect: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace cwdb
