#ifndef CWDB_TXN_TXN_MANAGER_H_
#define CWDB_TXN_TXN_MANAGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/latch.h"
#include "common/result.h"
#include "common/status.h"
#include "protect/protection.h"
#include "storage/db_image.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "wal/system_log.h"

namespace cwdb {

/// Transaction manager: owns the active transaction table (ATT) and
/// implements the Dalí multi-level transaction model (§2.1) —
///  * level 0: physical in-place updates (BeginUpdate/EndUpdate),
///  * level 1: operations (BeginOp/CommitOp carrying logical undo),
///  * level 2: transactions (Begin/Commit/Abort).
///
/// Redo is purely physical and moves from per-transaction local buffers to
/// the system log tail when an operation commits, before the operation's
/// lower-level locks are released. Rollback consumes the local undo log
/// LIFO: logical entries run the inverse operation as a first-class
/// operation (its redo is logged); physical entries are restored with a
/// logged compensating physical update. Because restart redo repeats all
/// history from an update-consistent checkpoint and physical undo is
/// value-restoring, a crash during rollback recovers correctly without
/// ARIES-style CLRs (see DESIGN.md).
class TxnManager {
 public:
  /// Commit/abort counts and latencies are reported into `metrics`
  /// (nullptr = a private registry, for standalone construction in tests).
  /// `lock_shards` sizes the lock manager's segment table (the Database
  /// passes its shard count; 1 = the pre-sharding single-segment table).
  TxnManager(DbImage* image, ProtectionManager* protection, SystemLog* log,
             MetricsRegistry* metrics = nullptr, size_t lock_shards = 1);

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  DbImage* image() const { return image_; }
  ProtectionManager* protection() const { return protection_; }
  SystemLog* log() const { return log_; }
  LockManager& locks() { return locks_; }
  MetricsRegistry* metrics() const { return metrics_; }

  /// Held shared by every update window and local-log mutation; held
  /// exclusively by the checkpointer while copying the image and ATT, which
  /// is what makes checkpoints update-consistent (DESIGN.md §2).
  Latch& checkpoint_latch() { return ckpt_latch_; }

  // -- Transactions --

  Result<Transaction*> Begin();
  /// Moves remaining redo + commit record to the system log, flushes it,
  /// releases all locks and retires the transaction.
  Status Commit(Transaction* txn);
  /// Rolls back and retires the transaction.
  Status Abort(Transaction* txn);

  // -- Operations (used by table_ops and recovery) --

  /// Opens an operation. The caller has already acquired `op_lock` (if
  /// any); it will be released at CommitOp. `raw_off`/`raw_len` describe
  /// the physical target of raw-region operations (0/0 otherwise) for the
  /// corruption-recovery conflict check.
  Status BeginOp(Transaction* txn, OpCode opcode, TableId table,
                 uint32_t slot, std::optional<LockId> op_lock,
                 DbPtr raw_off = 0, uint32_t raw_len = 0);
  /// Commits the open operation: logs the operation-commit record with its
  /// logical undo, replaces the operation's physical undo entries with the
  /// logical entry, moves local redo to the system log tail, and releases
  /// the operation lock.
  Status CommitOp(Transaction* txn, const LogicalUndo& undo);
  /// Aborts the open operation: physically restores its updates and
  /// discards its local redo (which never reached the system log).
  Status AbortOp(Transaction* txn);

  /// Executes one logical undo action as a first-class inverse operation.
  /// Used by rollback and by restart recovery's undo phase.
  Status ExecuteLogicalUndo(Transaction* txn, const LogicalUndo& undo);

  /// Rolls back `txn` (open operation first, then the undo log LIFO) and
  /// writes the abort record. Does not release locks or retire the
  /// transaction — Abort() wraps this.
  Status Rollback(Transaction* txn);

  // -- Savepoints (partial rollback) --

  /// Marks the current extent of `txn`'s work. No operation may be open.
  /// The id stays valid until the transaction ends or a rollback passes it.
  Result<uint64_t> CreateSavepoint(Transaction* txn);

  /// Undoes everything `txn` did after the savepoint (inverse operations
  /// and compensations are logged like any rollback; locks acquired since
  /// are retained, as is conventional). The transaction stays active and
  /// the savepoint may be rolled back to again.
  Status RollbackToSavepoint(Transaction* txn, uint64_t savepoint);

  // -- Recovery support --

  /// In recovery mode lock acquisition is skipped (recovery is offline and
  /// single-threaded) and reads are neither prechecked nor logged.
  bool recovery_mode() const { return recovery_mode_; }
  void set_recovery_mode(bool on) { recovery_mode_ = on; }

  /// Returns the ATT entry for `id`, creating an active transaction without
  /// logging a begin record (restart recovery rebuilding the ATT).
  Transaction* GetOrCreateRecovered(TxnId id);
  /// Drops a transaction from the ATT without any logging (recovery).
  void DropRecovered(TxnId id);

  const std::map<TxnId, std::unique_ptr<Transaction>>& att() const {
    return att_;
  }
  std::map<TxnId, std::unique_ptr<Transaction>>& mutable_att() {
    return att_;
  }

  /// Ids of all currently active transactions, under the ATT lock — safe
  /// to call from other threads (forensics snapshots the set into a
  /// corruption dossier).
  std::vector<TxnId> ActiveTxnIds();

  /// Lowest active transaction id, 0 when none. Ids ascend, so the
  /// watchdog's oldest-txn probe reads this as its progress value: it only
  /// changes when the oldest transaction retires.
  TxnId OldestActiveTxn() {
    std::lock_guard<std::mutex> guard(att_mu_);
    return att_.empty() ? 0 : att_.begin()->first;
  }

  /// Ensures future transaction / operation ids do not collide with
  /// recovered ones.
  void BumpIds(TxnId txn_floor, uint32_t op_floor);

  /// Completes the rollback of a recovered transaction: writes its abort
  /// record, moves remaining local redo to the system log, and drops it
  /// from the ATT. The undo log must already be empty.
  Status FinishRecoveredRollback(Transaction* txn);

  /// Crash simulation: discards all volatile transaction state (ATT, lock
  /// tables). Every outstanding Transaction* becomes invalid.
  void ClearForCrash();

  uint64_t commits() const { return ins_.commits->Value(); }
  uint64_t aborts() const { return ins_.aborts->Value(); }

 private:
  friend class Transaction;

  /// Appends every pending local-redo payload of `txn` to the system log
  /// tail (the paper's "redo log records are moved from the local redo log
  /// to the system log tail"). `trace`, when sampled, rides the staged
  /// frames to the drainer so its spans join the commit's trace (Commit
  /// passes the flush-wait context; mid-transaction moves pass nothing).
  void MoveRedoToSystemLog(Transaction* txn,
                           const SpanContext* trace = nullptr);

  /// Physically restores `before` at `off` as a logged compensation.
  Status ApplyCompensation(Transaction* txn, DbPtr off, const std::string& before);

  /// Applies-and-pops undo entries newest-first until `mark` entries
  /// remain. The caller has set in_rollback_.
  Status UndoDownTo(Transaction* txn, size_t mark);

  struct Instruments {
    Counter* commits;
    Counter* aborts;
    Gauge* active;
    Histogram* commit_latency_ns;
    Histogram* abort_latency_ns;
  };

  DbImage* image_;
  ProtectionManager* protection_;
  SystemLog* log_;
  std::unique_ptr<MetricsRegistry> own_metrics_;
  MetricsRegistry* metrics_;
  Instruments ins_;
  LockManager locks_;
  Latch ckpt_latch_;

  std::mutex att_mu_;
  std::map<TxnId, std::unique_ptr<Transaction>> att_;
  TxnId next_txn_id_ = 1;
  // BeginOp allocates operation ids outside att_mu_ (it runs on the caller's
  // thread after locks are held), so the counter must be atomic.
  std::atomic<uint32_t> next_op_id_{1};
  bool recovery_mode_ = false;
};

}  // namespace cwdb

#endif  // CWDB_TXN_TXN_MANAGER_H_
