#ifndef CWDB_TXN_TABLE_OPS_H_
#define CWDB_TXN_TABLE_OPS_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "txn/txn_manager.h"

namespace cwdb {
namespace table_ops {

/// Level-1 operations over fixed-size-record tables. Each runs as one
/// multi-level-recovery operation: BeginOp, physical updates through the
/// prescribed interface, CommitOp with a logical undo description.
///
/// Locking protocol (deadlock-free ordering: table operation lock before
/// record locks):
///  * Structure-modifying ops (insert/delete/create) take the table (or
///    directory) lock exclusively for the operation's duration.
///  * Record reads/writes take record locks for the transaction's duration
///    (strict 2PL).

/// Creates a table of `capacity` fixed-size records. The record extent and
/// the allocation-bitmap extent are carved from the image's bump allocator
/// on separate pages from each other and from the directory.
Result<TableId> CreateTable(TxnManager& mgr, Transaction* txn,
                            const std::string& name, uint32_t record_size,
                            uint64_t capacity);

/// Inserts a record (size must equal the table's record size); returns its
/// id. Logical undo: delete the slot.
Result<RecordId> Insert(TxnManager& mgr, Transaction* txn, TableId table,
                        Slice record);

/// Deletes the record. Logical undo: re-insert the old bytes at the slot.
Status Delete(TxnManager& mgr, Transaction* txn, TableId table,
              uint32_t slot);

/// Overwrites `data.size()` bytes at `field_off` within the record.
/// Logical undo: restore the previous field bytes.
Status Update(TxnManager& mgr, Transaction* txn, TableId table, uint32_t slot,
              uint32_t field_off, Slice data);

/// Reads the whole record into *out (resized to the record size).
Status ReadRecord(TxnManager& mgr, Transaction* txn, TableId table,
                  uint32_t slot, std::string* out);

/// Reads `len` bytes at `field_off` within the record.
Status ReadField(TxnManager& mgr, Transaction* txn, TableId table,
                 uint32_t slot, uint32_t field_off, uint32_t len, void* out);

/// In-place update of an arbitrary image range, for application code that
/// addresses the mapped database directly. Runs as an operation whose
/// logical undo restores the previous bytes. Takes no locks: the caller is
/// responsible for isolation of raw regions.
Status RawUpdate(TxnManager& mgr, Transaction* txn, DbPtr off, Slice data);

/// Live records in a table (allocation-bitmap scan; not transactional).
uint64_t CountRecords(const DbImage& image, TableId table);

/// Iterates the live records of `table` in slot order. Each visited record
/// is share-locked for the transaction's duration (strict 2PL) and read
/// through the protected read path (prechecked / read-logged per scheme).
/// `fn` receives the slot and the record bytes (valid only for the call);
/// a non-OK return stops the scan and is propagated.
Status Scan(TxnManager& mgr, Transaction* txn, TableId table,
            const std::function<Status(uint32_t slot, Slice record)>& fn);

/// Executes one logical undo action as a first-class inverse operation.
/// Idempotent: re-executing after a partial crash recovery is a no-op.
Status ExecuteLogicalUndo(TxnManager& mgr, Transaction* txn,
                          const LogicalUndo& undo);

}  // namespace table_ops
}  // namespace cwdb

#endif  // CWDB_TXN_TABLE_OPS_H_
