#include "txn/transaction.h"

#include <cstring>

#include "common/codeword.h"
#include "txn/txn_manager.h"

namespace cwdb {

Result<uint8_t*> Transaction::BeginUpdate(DbPtr off, uint32_t len) {
  CWDB_CHECK(state_ == State::kActive);
  CWDB_CHECK(!update_active_) << "nested BeginUpdate";
  // Every physical update belongs to an operation (so the undo-log
  // invariant "physical entries only at the tail, from the open operation"
  // holds); rollback compensation and recovery replay are the exceptions.
  CWDB_CHECK(open_op_.has_value() || in_rollback_ || mgr_->recovery_mode())
      << "physical update outside an operation";
  if (len == 0 || !mgr_->image()->InBounds(off, len)) {
    return Status::InvalidArgument("update range out of bounds");
  }
  mgr_->checkpoint_latch().LockShared();
  Status s = mgr_->protection()->BeginUpdate(off, len, &update_handle_);
  if (!s.ok()) {
    mgr_->checkpoint_latch().UnlockShared();
    return s;
  }
  update_before_.assign(reinterpret_cast<const char*>(mgr_->image()->At(off)),
                        len);
  if (!in_rollback_) {
    UndoRecord u;
    u.kind = UndoRecord::Kind::kPhysical;
    u.off = off;
    u.before = update_before_;
    u.codeword_applied = true;  // Set at beginUpdate, reset at endUpdate.
    undo_.push_back(std::move(u));
    update_undo_idx_ = undo_.size() - 1;
  } else {
    update_undo_idx_ = SIZE_MAX;
  }
  update_active_ = true;
  return mgr_->image()->At(off);
}

Status Transaction::EndUpdate() {
  CWDB_CHECK(update_active_) << "EndUpdate without BeginUpdate";
  const DbPtr off = update_handle_.off;
  const uint32_t len = update_handle_.len;
  const uint8_t* after = mgr_->image()->At(off);

  // Physical redo record; under Codeword Read Logging it carries a checksum
  // of the overwritten bytes so the write doubles as a read (§4.3).
  const ProtectionOptions& po = mgr_->protection()->options();
  codeword_t before_cksum = 0;
  const codeword_t* cksum_ptr = nullptr;
  if (po.LogsReadChecksums() && !mgr_->recovery_mode()) {
    before_cksum = CodewordFold(off & 3, update_before_.data(), len);
    cksum_ptr = &before_cksum;
  }
  std::string payload;
  EncodePhysRedo(&payload, id_, off,
                 Slice(reinterpret_cast<const char*>(after), len), cksum_ptr);
  local_redo_.push_back(std::move(payload));

  mgr_->image()->MarkDirty(off, len);
  const uint64_t fold_t0 = trace_ctx_.sampled() ? NowNs() : 0;
  mgr_->protection()->EndUpdate(
      update_handle_,
      reinterpret_cast<const uint8_t*>(update_before_.data()));
  if (fold_t0 != 0) {
    trace_ctx_.tracer->Record(trace_ctx_, SpanKind::kCodewordFold, fold_t0,
                              NowNs(), off, len);
  }
  if (update_undo_idx_ != SIZE_MAX) {
    undo_[update_undo_idx_].codeword_applied = false;
  }
  update_active_ = false;
  mgr_->checkpoint_latch().UnlockShared();
  return Status::OK();
}

Status Transaction::Update(DbPtr off, const void* data, uint32_t len) {
  CWDB_ASSIGN_OR_RETURN(uint8_t* p, BeginUpdate(off, len));
  std::memcpy(p, data, len);
  return EndUpdate();
}

Status Transaction::Read(DbPtr off, void* out, uint32_t len) {
  CWDB_CHECK(state_ == State::kActive);
  CWDB_CHECK(!update_active_)
      << "Read during an in-flight update would self-deadlock";
  if (len == 0 || !mgr_->image()->InBounds(off, len)) {
    return Status::InvalidArgument("read range out of bounds");
  }
  if (!mgr_->recovery_mode()) {
    const uint64_t precheck_t0 = trace_ctx_.sampled() ? NowNs() : 0;
    Status prechecked = mgr_->protection()->PrecheckRead(off, len);
    if (precheck_t0 != 0) {
      trace_ctx_.tracer->Record(trace_ctx_, SpanKind::kReadPrecheck,
                                precheck_t0, NowNs(), off, len);
    }
    CWDB_RETURN_IF_ERROR(prechecked);
  }
  std::memcpy(out, mgr_->image()->At(off), len);
  const ProtectionOptions& po = mgr_->protection()->options();
  if (po.LogsReads() && !in_rollback_ && !mgr_->recovery_mode()) {
    codeword_t cksum = 0;
    const codeword_t* cksum_ptr = nullptr;
    if (po.LogsReadChecksums()) {
      cksum = CodewordFold(off & 3, out, len);
      cksum_ptr = &cksum;
    }
    std::string payload;
    EncodeReadLog(&payload, id_, off, len, cksum_ptr);
    local_redo_.push_back(std::move(payload));
  }
  return Status::OK();
}

}  // namespace cwdb
