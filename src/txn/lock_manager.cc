#include "txn/lock_manager.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "obs/tracer.h"

namespace cwdb {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

LockManager::LockManager(size_t shards) {
  size_t n = NextPow2(std::max<size_t>(shards, 1));
  segments_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    segments_.push_back(std::make_unique<Segment>());
  }
  segment_mask_ = n - 1;
}

void LockManager::BindMetrics(MetricsRegistry* reg) {
  lock_waits_ = reg->counter("txn.lock_waits");
  deadlocks_ = reg->counter("txn.deadlocks");
  lock_wait_ns_ = reg->histogram("txn.lock_wait_ns");
  for (size_t i = 0; i < segments_.size(); ++i) {
    char name[48];
    std::snprintf(name, sizeof(name), "txn.lockshard%zu.waits", i);
    segments_[i]->waits = reg->counter(name);
  }
}

LockManager::Segment& LockManager::SegmentFor(LockId id) {
  uint64_t key = (static_cast<uint64_t>(id.table) << 32) | id.slot;
  size_t s = static_cast<size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) &
             segment_mask_;
  return *segments_[s];
}

const LockManager::Segment& LockManager::SegmentFor(LockId id) const {
  return const_cast<LockManager*>(this)->SegmentFor(id);
}

bool LockManager::Compatible(const Entry& e, TxnId txn, LockMode mode) {
  for (const auto& [holder, held_mode] : e.holders) {
    if (holder == txn) continue;  // Own holdings never conflict.
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

std::vector<TxnId> LockManager::ConflictingHolders(const Entry& e, TxnId txn,
                                                   LockMode mode) {
  std::vector<TxnId> out;
  for (const auto& [holder, held_mode] : e.holders) {
    if (holder == txn) continue;
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      out.push_back(holder);
    }
  }
  return out;
}

bool LockManager::CycleFrom(TxnId txn,
                            const std::vector<TxnId>& blockers) const {
  // DFS over the waits-for map only: every edge set was snapshotted under
  // the blocker's segment mutex and is kept exact by the grant/release
  // maintenance rules, so no segment mutex is needed here (and none may be
  // taken: wf_mu_ is ordered after the segment mutexes).
  std::vector<TxnId> frontier(blockers);
  std::set<TxnId> visited;
  while (!frontier.empty()) {
    TxnId t = frontier.back();
    frontier.pop_back();
    if (t == txn) return true;
    if (!visited.insert(t).second) continue;
    auto wit = waiting_.find(t);
    if (wit == waiting_.end()) continue;  // Running: no outgoing edges.
    frontier.insert(frontier.end(), wit->second.blockers.begin(),
                    wit->second.blockers.end());
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, LockId id, LockMode mode) {
  Segment& seg = SegmentFor(id);
  std::unique_lock<std::mutex> guard(seg.mu);
  Entry& e = seg.locks[id];
  auto self = e.holders.find(txn);
  if (self != e.holders.end()) {
    if (self->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::OK();  // Already held strongly enough.
    }
    // Upgrade request falls through to the wait loop below.
  }
  // First conflicting probe counts as one wait; the histogram covers the
  // whole blocked span, however many wakeups it takes.
  uint64_t wait_start = 0;
  while (!Compatible(e, txn, mode)) {
    std::vector<TxnId> blockers = ConflictingHolders(e, txn, mode);
    {
      std::lock_guard<std::mutex> wf(wf_mu_);
      if (CycleFrom(txn, blockers)) {
        if (deadlocks_ != nullptr) deadlocks_->Add();
        return Status::Deadlock("waits-for cycle acquiring lock");
      }
      waiting_[txn] = Waiter{id, mode, std::move(blockers)};
    }
    if (wait_start == 0) {
      wait_start = NowNs();
      if (lock_waits_ != nullptr) lock_waits_->Add();
      if (seg.waits != nullptr) seg.waits->Add();
    }
    ++e.waiters;
    seg.cv.wait(guard);
    --e.waiters;
    {
      std::lock_guard<std::mutex> wf(wf_mu_);
      waiting_.erase(txn);
    }
  }
  if (wait_start != 0) {
    if (lock_wait_ns_ != nullptr) lock_wait_ns_->Record(NowNs() - wait_start);
    // Acquire takes a TxnId, not a Transaction*, so a sampled caller leaves
    // its context in TLS (table_ops::AcquireLock) for the blocked span.
    SpanContext ctx = Tracer::Current();
    if (ctx.sampled()) {
      ctx.tracer->Record(ctx, SpanKind::kLockWait, wait_start, NowNs(),
                         id.table, id.slot);
    }
  }
  e.holders[txn] = mode;
  seg.held[txn].insert(id);
  if (e.waiters > 0) {
    // Granting past sleeping waiters (a shared grant on a lock with an
    // exclusive waiter): no release will wake them to refresh their edge
    // sets, so add the new edge here or a cycle through this grant would
    // go unseen until the waiters' next wakeup.
    std::lock_guard<std::mutex> wf(wf_mu_);
    for (auto& [t, w] : waiting_) {
      if (t == txn || !(w.id == id)) continue;
      if (w.mode == LockMode::kExclusive || mode == LockMode::kExclusive) {
        w.blockers.push_back(txn);
      }
    }
  }
  return Status::OK();
}

void LockManager::Release(TxnId txn, LockId id) {
  Segment& seg = SegmentFor(id);
  std::lock_guard<std::mutex> guard(seg.mu);
  auto it = seg.locks.find(id);
  if (it == seg.locks.end()) return;
  it->second.holders.erase(txn);
  auto held = seg.held.find(txn);
  if (held != seg.held.end()) {
    held->second.erase(id);
    if (held->second.empty()) seg.held.erase(held);
  }
  bool had_waiters = it->second.waiters > 0;
  if (had_waiters) {
    // Drop this transaction from the blocker sets of the lock's waiters:
    // they will re-snapshot when they wake, but until then a stale edge
    // could fabricate a cycle for some third requester.
    std::lock_guard<std::mutex> wf(wf_mu_);
    for (auto& [t, w] : waiting_) {
      if (!(w.id == id)) continue;
      w.blockers.erase(std::remove(w.blockers.begin(), w.blockers.end(), txn),
                       w.blockers.end());
    }
  }
  if (it->second.holders.empty() && it->second.waiters == 0) {
    seg.locks.erase(it);
  }
  if (had_waiters) seg.cv.notify_all();
}

void LockManager::ReleaseAll(TxnId txn) {
  for (auto& segp : segments_) {
    Segment& seg = *segp;
    std::lock_guard<std::mutex> guard(seg.mu);
    auto held = seg.held.find(txn);
    if (held == seg.held.end()) continue;
    bool notify = false;
    bool any_waiters = false;
    for (LockId id : held->second) {
      auto it = seg.locks.find(id);
      if (it == seg.locks.end()) continue;
      it->second.holders.erase(txn);
      if (it->second.waiters > 0) {
        notify = true;
        any_waiters = true;
      }
      if (it->second.holders.empty() && it->second.waiters == 0) {
        seg.locks.erase(it);
      }
    }
    if (any_waiters) {
      std::lock_guard<std::mutex> wf(wf_mu_);
      for (auto& [t, w] : waiting_) {
        if (held->second.find(w.id) == held->second.end()) continue;
        w.blockers.erase(
            std::remove(w.blockers.begin(), w.blockers.end(), txn),
            w.blockers.end());
      }
    }
    seg.held.erase(held);
    if (notify) seg.cv.notify_all();
  }
}

bool LockManager::Holds(TxnId txn, LockId id, LockMode mode) const {
  const Segment& seg = SegmentFor(id);
  std::lock_guard<std::mutex> guard(seg.mu);
  auto it = seg.locks.find(id);
  if (it == seg.locks.end()) return false;
  auto h = it->second.holders.find(txn);
  if (h == it->second.holders.end()) return false;
  return mode == LockMode::kShared || h->second == LockMode::kExclusive;
}

void LockManager::Clear() {
  for (auto& segp : segments_) {
    Segment& seg = *segp;
    std::lock_guard<std::mutex> guard(seg.mu);
    seg.locks.clear();
    seg.held.clear();
    seg.cv.notify_all();
  }
  std::lock_guard<std::mutex> wf(wf_mu_);
  waiting_.clear();
}

size_t LockManager::LockedCount() const {
  size_t n = 0;
  for (const auto& segp : segments_) {
    const Segment& seg = *segp;
    std::lock_guard<std::mutex> guard(seg.mu);
    for (const auto& [id, e] : seg.locks) {
      (void)id;
      if (!e.holders.empty()) ++n;
    }
  }
  return n;
}

}  // namespace cwdb
