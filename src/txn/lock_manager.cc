#include "txn/lock_manager.h"

#include "common/logging.h"

namespace cwdb {

bool LockManager::Compatible(const Entry& e, TxnId txn, LockMode mode) const {
  for (const auto& [holder, held_mode] : e.holders) {
    if (holder == txn) continue;  // Own holdings never conflict.
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

bool LockManager::WouldDeadlock(TxnId txn, const Entry& e,
                                LockMode mode) const {
  // DFS over waits-for: txn waits for the conflicting holders of `e`; each
  // waiting transaction waits for the conflicting holders of the lock it is
  // blocked on. mu_ is held by the caller.
  std::vector<TxnId> frontier;
  std::set<TxnId> visited;
  for (const auto& [holder, held_mode] : e.holders) {
    if (holder == txn) continue;
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      frontier.push_back(holder);
    }
  }
  while (!frontier.empty()) {
    TxnId t = frontier.back();
    frontier.pop_back();
    if (t == txn) return true;
    if (!visited.insert(t).second) continue;
    auto wit = waiting_for_.find(t);
    if (wit == waiting_for_.end()) continue;
    auto lit = locks_.find(wit->second);
    if (lit == locks_.end()) continue;
    for (const auto& [holder, held_mode] : lit->second.holders) {
      (void)held_mode;
      if (holder != t) frontier.push_back(holder);
    }
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, LockId id, LockMode mode) {
  std::unique_lock<std::mutex> guard(mu_);
  Entry& e = locks_[id];
  auto self = e.holders.find(txn);
  if (self != e.holders.end()) {
    if (self->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::OK();  // Already held strongly enough.
    }
    // Upgrade request falls through to the wait loop below.
  }
  // First conflicting probe counts as one wait; the histogram covers the
  // whole blocked span, however many wakeups it takes.
  uint64_t wait_start = 0;
  while (!Compatible(e, txn, mode)) {
    if (WouldDeadlock(txn, e, mode)) {
      if (deadlocks_ != nullptr) deadlocks_->Add();
      return Status::Deadlock("waits-for cycle acquiring lock");
    }
    if (wait_start == 0) {
      wait_start = NowNs();
      if (lock_waits_ != nullptr) lock_waits_->Add();
    }
    waiting_for_[txn] = id;
    ++e.waiters;
    cv_.wait(guard);
    --e.waiters;
    waiting_for_.erase(txn);
  }
  if (wait_start != 0 && lock_wait_ns_ != nullptr) {
    lock_wait_ns_->Record(NowNs() - wait_start);
  }
  e.holders[txn] = mode;
  return Status::OK();
}

void LockManager::Release(TxnId txn, LockId id) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = locks_.find(id);
  if (it == locks_.end()) return;
  it->second.holders.erase(txn);
  bool had_waiters = it->second.waiters > 0;
  if (it->second.holders.empty() && it->second.waiters == 0) {
    locks_.erase(it);
  }
  if (had_waiters) cv_.notify_all();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> guard(mu_);
  bool notify = false;
  for (auto it = locks_.begin(); it != locks_.end();) {
    it->second.holders.erase(txn);
    notify = notify || it->second.waiters > 0;
    if (it->second.holders.empty() && it->second.waiters == 0) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  if (notify) cv_.notify_all();
}

bool LockManager::Holds(TxnId txn, LockId id, LockMode mode) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = locks_.find(id);
  if (it == locks_.end()) return false;
  auto h = it->second.holders.find(txn);
  if (h == it->second.holders.end()) return false;
  return mode == LockMode::kShared || h->second == LockMode::kExclusive;
}

void LockManager::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  locks_.clear();
  waiting_for_.clear();
  cv_.notify_all();
}

size_t LockManager::LockedCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  size_t n = 0;
  for (const auto& [id, e] : locks_) {
    (void)id;
    if (!e.holders.empty()) ++n;
  }
  return n;
}

}  // namespace cwdb
