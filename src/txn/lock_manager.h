#ifndef CWDB_TXN_LOCK_MANAGER_H_
#define CWDB_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/layout.h"

namespace cwdb {

/// Lockable unit: a record (table, slot), a whole table (slot ==
/// kInvalidSlot), or the table directory (table == kMaxTables).
struct LockId {
  TableId table = 0;
  uint32_t slot = kInvalidSlot;

  static LockId Record(TableId t, uint32_t s) { return LockId{t, s}; }
  static LockId Table(TableId t) { return LockId{t, kInvalidSlot}; }
  static LockId Directory() { return LockId{kMaxTables, kInvalidSlot}; }

  auto operator<=>(const LockId&) const = default;
};

enum class LockMode : uint8_t { kShared, kExclusive };

/// Two-level lock manager for the Dalí-style transaction model:
///  * Transaction-duration record locks (strict 2PL) — released only by
///    ReleaseAll at commit/abort.
///  * Operation-duration locks (the "lower level locks" of multi-level
///    recovery, §2.1) — released explicitly when the operation commits.
/// Both kinds live in the same table and the same waits-for graph.
///
/// Deadlocks are detected at wait time by a cycle search over the waits-for
/// graph; the *requesting* transaction is the victim and gets kDeadlock.
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Points the wait instruments at `reg` (TxnManager calls this once at
  /// construction, before any Acquire can run). Without it the manager
  /// simply does not report waits.
  void BindMetrics(MetricsRegistry* reg) {
    lock_waits_ = reg->counter("txn.lock_waits");
    deadlocks_ = reg->counter("txn.deadlocks");
    lock_wait_ns_ = reg->histogram("txn.lock_wait_ns");
  }

  /// Blocks until granted or deadlock. Re-entrant: a transaction already
  /// holding the lock in a mode >= `mode` is granted immediately; a shared
  /// holder requesting exclusive is upgraded when possible.
  Status Acquire(TxnId txn, LockId id, LockMode mode);

  /// Releases one lock (operation-duration locks at operation commit).
  void Release(TxnId txn, LockId id);

  /// Releases every lock held by `txn` (transaction commit/abort).
  void ReleaseAll(TxnId txn);

  /// True if `txn` currently holds `id` in at least `mode`.
  bool Holds(TxnId txn, LockId id, LockMode mode) const;

  /// Number of distinct lock ids with any holder (tests).
  size_t LockedCount() const;

  /// Drops all lock state (crash simulation: lock tables are volatile).
  void Clear();

 private:
  struct Entry {
    // Holders and their modes. Exclusive implies it is the only holder
    // (except during upgrade, where the upgrader is also a shared holder).
    std::map<TxnId, LockMode> holders;
    int waiters = 0;
  };

  bool Compatible(const Entry& e, TxnId txn, LockMode mode) const;
  /// True if granting would deadlock: `txn` transitively waits for itself.
  bool WouldDeadlock(TxnId txn, const Entry& e, LockMode mode) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<LockId, Entry> locks_;
  /// txn -> lock id it is currently waiting for (at most one).
  std::map<TxnId, LockId> waiting_for_;
  Counter* lock_waits_ = nullptr;
  Counter* deadlocks_ = nullptr;
  Histogram* lock_wait_ns_ = nullptr;
};

}  // namespace cwdb

#endif  // CWDB_TXN_LOCK_MANAGER_H_
