#ifndef CWDB_TXN_LOCK_MANAGER_H_
#define CWDB_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/layout.h"

namespace cwdb {

/// Lockable unit: a record (table, slot), a whole table (slot ==
/// kInvalidSlot), or the table directory (table == kMaxTables).
struct LockId {
  TableId table = 0;
  uint32_t slot = kInvalidSlot;

  static LockId Record(TableId t, uint32_t s) { return LockId{t, s}; }
  static LockId Table(TableId t) { return LockId{t, kInvalidSlot}; }
  static LockId Directory() { return LockId{kMaxTables, kInvalidSlot}; }

  auto operator<=>(const LockId&) const = default;
};

enum class LockMode : uint8_t { kShared, kExclusive };

/// Two-level lock manager for the Dalí-style transaction model:
///  * Transaction-duration record locks (strict 2PL) — released only by
///    ReleaseAll at commit/abort.
///  * Operation-duration locks (the "lower level locks" of multi-level
///    recovery, §2.1) — released explicitly when the operation commits.
///
/// The lock table is sharded: lock ids hash onto `shards` independent
/// segments, each with its own mutex, condition variable, lock map and
/// per-transaction held-lock index — so transactions touching disjoint
/// data never contend on lock-manager state, and ReleaseAll walks only the
/// locks the transaction actually holds instead of the whole table.
///
/// Deadlock detection stays global and *precise*: a single waits-for map
/// (guarded by its own mutex, always acquired after a segment mutex, never
/// before) records, for each waiting transaction, the snapshot of holders
/// blocking it. The snapshot is kept exact by three maintenance rules:
///  * a waiter (re)records its blockers under the segment mutex each time
///    it is about to sleep;
///  * a grant on a lock with waiters adds the grantee to the blocker set
///    of every conflicting waiter (closing the shared-grant-while-waiting
///    hole: no release, hence no wakeup, would otherwise refresh them);
///  * a release on a lock with waiters removes the releasing transaction
///    from those waiters' blocker sets (so no stale edge survives to
///    manufacture a false cycle).
/// The cycle search therefore never needs a segment mutex — it walks only
/// the waits-for map. The *requesting* transaction is the victim and gets
/// kDeadlock.
class LockManager {
 public:
  /// `shards` = number of lock-table segments (rounded up to a power of
  /// two, minimum 1). The default matches the engine's one-segment
  /// pre-sharding behavior; the Database passes its shard count.
  explicit LockManager(size_t shards = 1);
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Points the wait instruments at `reg` (TxnManager calls this once at
  /// construction, before any Acquire can run). Without it the manager
  /// simply does not report waits.
  void BindMetrics(MetricsRegistry* reg);

  /// Blocks until granted or deadlock. Re-entrant: a transaction already
  /// holding the lock in a mode >= `mode` is granted immediately; a shared
  /// holder requesting exclusive is upgraded when possible.
  Status Acquire(TxnId txn, LockId id, LockMode mode);

  /// Releases one lock (operation-duration locks at operation commit).
  void Release(TxnId txn, LockId id);

  /// Releases every lock held by `txn` (transaction commit/abort).
  void ReleaseAll(TxnId txn);

  /// True if `txn` currently holds `id` in at least `mode`.
  bool Holds(TxnId txn, LockId id, LockMode mode) const;

  /// Number of distinct lock ids with any holder (tests).
  size_t LockedCount() const;

  /// Drops all lock state (crash simulation: lock tables are volatile).
  void Clear();

  size_t shard_count() const { return segments_.size(); }

 private:
  struct Entry {
    // Holders and their modes. Exclusive implies it is the only holder
    // (except during upgrade, where the upgrader is also a shared holder).
    std::map<TxnId, LockMode> holders;
    int waiters = 0;
  };

  /// One lock-table segment. Padded so neighboring segments' mutexes do
  /// not share a cache line.
  struct alignas(64) Segment {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::map<LockId, Entry> locks;
    /// Per-transaction index of held lock ids in this segment, so
    /// ReleaseAll is O(locks held), not O(locks in the table).
    std::map<TxnId, std::set<LockId>> held;
    Counter* waits = nullptr;  ///< Per-segment wait counter.
  };

  /// A waiting transaction's edge set in the waits-for graph.
  struct Waiter {
    LockId id;
    LockMode mode;
    std::vector<TxnId> blockers;
  };

  Segment& SegmentFor(LockId id);
  const Segment& SegmentFor(LockId id) const;

  static bool Compatible(const Entry& e, TxnId txn, LockMode mode);
  /// Conflicting holders of `e` from `txn`'s point of view.
  static std::vector<TxnId> ConflictingHolders(const Entry& e, TxnId txn,
                                               LockMode mode);
  /// True if `txn`, blocked by `blockers`, transitively waits for itself.
  /// wf_mu_ held by the caller.
  bool CycleFrom(TxnId txn, const std::vector<TxnId>& blockers) const;

  std::vector<std::unique_ptr<Segment>> segments_;
  size_t segment_mask_;

  /// Global waits-for graph. Lock order: segment.mu before wf_mu_; never
  /// take a segment mutex while holding wf_mu_.
  mutable std::mutex wf_mu_;
  std::map<TxnId, Waiter> waiting_;

  Counter* lock_waits_ = nullptr;
  Counter* deadlocks_ = nullptr;
  Histogram* lock_wait_ns_ = nullptr;
};

}  // namespace cwdb

#endif  // CWDB_TXN_LOCK_MANAGER_H_
