#include "txn/table_ops.h"

#include <bit>
#include <cstddef>
#include <cstring>
#include <thread>

#include "common/logging.h"

namespace cwdb {
namespace table_ops {

namespace {

Status ValidateTable(const DbImage& image, TableId table,
                     const TableMetaRaw** meta) {
  if (table >= kMaxTables) {
    return Status::InvalidArgument("table id out of range");
  }
  const TableMetaRaw* m = image.table_meta(table);
  if (!m->in_use) {
    return Status::NotFound("table not in use");
  }
  *meta = m;
  return Status::OK();
}

/// Lock acquisition that tolerates being on a rollback path: a rollback
/// must eventually succeed, so a deadlock verdict against it is retried
/// after a yield (operation locks are short-duration, so the conflicting
/// holder makes progress). In recovery mode locks are skipped entirely.
Status AcquireLock(TxnManager& mgr, Transaction* txn, LockId id,
                   LockMode mode) {
  if (mgr.recovery_mode()) return Status::OK();
  // The lock manager sees only the TxnId; park the transaction's span
  // context in TLS so its blocking path can attach lock-wait spans.
  ScopedSpanContext ambient(txn->trace_ctx());
  while (true) {
    Status s = mgr.locks().Acquire(txn->id(), id, mode);
    if (s.ok() || !s.IsDeadlock() || !txn->in_rollback()) return s;
    std::this_thread::yield();
  }
}

void ReleaseLock(TxnManager& mgr, Transaction* txn, LockId id) {
  if (mgr.recovery_mode()) return;
  mgr.locks().Release(txn->id(), id);
}

/// Sets or clears one allocation-bitmap bit through the prescribed update
/// interface (allocation info is persistent image state and must be logged
/// and codeword-maintained like any other update).
Status WriteBitmapBit(TxnManager& mgr, Transaction* txn,
                      const TableMetaRaw* meta, uint32_t slot, bool set) {
  DbPtr word_off = BitmapWordOff(meta->bitmap_off, slot);
  uint64_t word;
  std::memcpy(&word, mgr.image()->At(word_off), 8);
  if (set) {
    word |= BitmapBitMask(slot);
  } else {
    word &= ~BitmapBitMask(slot);
  }
  return txn->Update(word_off, &word, 8);
}

uint64_t RoundUpToPage(uint64_t n, uint32_t page) {
  return (n + page - 1) & ~(uint64_t{page} - 1);
}

}  // namespace

Result<TableId> CreateTable(TxnManager& mgr, Transaction* txn,
                            const std::string& name, uint32_t record_size,
                            uint64_t capacity) {
  if (name.empty() || name.size() >= kTableNameBytes) {
    return Status::InvalidArgument("bad table name");
  }
  if (record_size == 0 || capacity == 0) {
    return Status::InvalidArgument("record size and capacity must be > 0");
  }
  const DbImage* image = mgr.image();
  LockId dir_lock = LockId::Directory();
  CWDB_RETURN_IF_ERROR(AcquireLock(mgr, txn, dir_lock, LockMode::kExclusive));

  if (image->FindTable(name) != kMaxTables) {
    ReleaseLock(mgr, txn, dir_lock);
    return Status::AlreadyExists("table exists: " + name);
  }
  TableId t = kMaxTables;
  for (TableId i = 0; i < kMaxTables; ++i) {
    if (!image->table_meta(i)->in_use) {
      t = i;
      break;
    }
  }
  if (t == kMaxTables) {
    ReleaseLock(mgr, txn, dir_lock);
    return Status::NoSpace("table directory full");
  }
  const uint32_t page = image->page_size();
  uint64_t bitmap_bytes = RoundUpToPage(BitmapBytes(capacity), page);
  uint64_t data_bytes = RoundUpToPage(capacity * record_size, page);
  uint64_t cursor = image->header()->alloc_cursor;
  if (cursor + bitmap_bytes + data_bytes > image->size()) {
    ReleaseLock(mgr, txn, dir_lock);
    return Status::NoSpace("image full");
  }

  CWDB_RETURN_IF_ERROR(mgr.BeginOp(txn, OpCode::kCreateTable, t,
                                   kInvalidSlot, dir_lock));
  uint64_t new_cursor = cursor + bitmap_bytes + data_bytes;
  CWDB_RETURN_IF_ERROR(txn->Update(
      kHeaderOff + offsetof(DbHeaderRaw, alloc_cursor), &new_cursor, 8));
  TableMetaRaw m{};
  m.in_use = 1;
  m.record_size = record_size;
  m.capacity = capacity;
  m.bitmap_off = cursor;
  m.data_off = cursor + bitmap_bytes;
  std::strncpy(m.name, name.c_str(), kTableNameBytes - 1);
  CWDB_RETURN_IF_ERROR(txn->Update(TableMetaOff(t), &m, sizeof(m)));

  LogicalUndo undo;
  undo.code = UndoCode::kDropTable;
  undo.table = t;
  CWDB_RETURN_IF_ERROR(mgr.CommitOp(txn, undo));
  return t;
}

Result<RecordId> Insert(TxnManager& mgr, Transaction* txn, TableId table,
                        Slice record) {
  const TableMetaRaw* meta;
  CWDB_RETURN_IF_ERROR(ValidateTable(*mgr.image(), table, &meta));
  if (record.size() != meta->record_size) {
    return Status::InvalidArgument("record size mismatch");
  }
  LockId table_lock = LockId::Table(table);
  CWDB_RETURN_IF_ERROR(
      AcquireLock(mgr, txn, table_lock, LockMode::kExclusive));
  uint32_t slot =
      mgr.image()->FindFreeSlot(table, mgr.image()->alloc_hint(table));
  if (slot == kInvalidSlot) {
    ReleaseLock(mgr, txn, table_lock);
    return Status::NoSpace("table full");
  }
  Status s = AcquireLock(mgr, txn, LockId::Record(table, slot),
                         LockMode::kExclusive);
  if (!s.ok()) {
    ReleaseLock(mgr, txn, table_lock);
    return s;
  }

  CWDB_RETURN_IF_ERROR(
      mgr.BeginOp(txn, OpCode::kInsert, table, slot, table_lock));
  CWDB_RETURN_IF_ERROR(WriteBitmapBit(mgr, txn, meta, slot, true));
  CWDB_RETURN_IF_ERROR(txn->Update(mgr.image()->RecordOff(table, slot),
                                   record.data(),
                                   static_cast<uint32_t>(record.size())));
  mgr.image()->set_alloc_hint(table, slot + 1);

  LogicalUndo undo;
  undo.code = UndoCode::kDeleteSlot;
  undo.table = table;
  undo.slot = slot;
  CWDB_RETURN_IF_ERROR(mgr.CommitOp(txn, undo));
  return RecordId{table, slot};
}

Status Delete(TxnManager& mgr, Transaction* txn, TableId table,
              uint32_t slot) {
  const TableMetaRaw* meta;
  CWDB_RETURN_IF_ERROR(ValidateTable(*mgr.image(), table, &meta));
  if (slot >= meta->capacity) {
    return Status::InvalidArgument("slot out of range");
  }
  LockId table_lock = LockId::Table(table);
  CWDB_RETURN_IF_ERROR(
      AcquireLock(mgr, txn, table_lock, LockMode::kExclusive));
  Status s = AcquireLock(mgr, txn, LockId::Record(table, slot),
                         LockMode::kExclusive);
  if (!s.ok()) {
    ReleaseLock(mgr, txn, table_lock);
    return s;
  }
  if (!mgr.image()->SlotAllocated(table, slot)) {
    ReleaseLock(mgr, txn, table_lock);
    return Status::NotFound("record not allocated");
  }
  std::string old(
      reinterpret_cast<const char*>(
          mgr.image()->At(mgr.image()->RecordOff(table, slot))),
      meta->record_size);

  CWDB_RETURN_IF_ERROR(
      mgr.BeginOp(txn, OpCode::kDelete, table, slot, table_lock));
  CWDB_RETURN_IF_ERROR(WriteBitmapBit(mgr, txn, meta, slot, false));

  LogicalUndo undo;
  undo.code = UndoCode::kReinsertSlot;
  undo.table = table;
  undo.slot = slot;
  undo.payload = std::move(old);
  return mgr.CommitOp(txn, undo);
}

Status Update(TxnManager& mgr, Transaction* txn, TableId table, uint32_t slot,
              uint32_t field_off, Slice data) {
  const TableMetaRaw* meta;
  CWDB_RETURN_IF_ERROR(ValidateTable(*mgr.image(), table, &meta));
  if (slot >= meta->capacity ||
      field_off + data.size() > meta->record_size) {
    return Status::InvalidArgument("field range out of record bounds");
  }
  CWDB_RETURN_IF_ERROR(AcquireLock(mgr, txn, LockId::Record(table, slot),
                                   LockMode::kExclusive));
  // Stable under our record lock: deallocation requires the record lock.
  if (!mgr.image()->SlotAllocated(table, slot)) {
    return Status::NotFound("record not allocated");
  }
  DbPtr field_ptr = mgr.image()->RecordOff(table, slot) + field_off;
  std::string before(reinterpret_cast<const char*>(mgr.image()->At(field_ptr)),
                     data.size());

  CWDB_RETURN_IF_ERROR(
      mgr.BeginOp(txn, OpCode::kUpdate, table, slot, std::nullopt));
  CWDB_RETURN_IF_ERROR(
      txn->Update(field_ptr, data.data(), static_cast<uint32_t>(data.size())));

  LogicalUndo undo;
  undo.code = UndoCode::kWriteField;
  undo.table = table;
  undo.slot = slot;
  undo.field_off = field_off;
  undo.payload = std::move(before);
  return mgr.CommitOp(txn, undo);
}

Status ReadRecord(TxnManager& mgr, Transaction* txn, TableId table,
                  uint32_t slot, std::string* out) {
  const TableMetaRaw* meta;
  CWDB_RETURN_IF_ERROR(ValidateTable(*mgr.image(), table, &meta));
  if (slot >= meta->capacity) {
    return Status::InvalidArgument("slot out of range");
  }
  CWDB_RETURN_IF_ERROR(AcquireLock(mgr, txn, LockId::Record(table, slot),
                                   LockMode::kShared));
  if (!mgr.image()->SlotAllocated(table, slot)) {
    return Status::NotFound("record not allocated");
  }
  out->resize(meta->record_size);
  return txn->Read(mgr.image()->RecordOff(table, slot), out->data(),
                   meta->record_size);
}

Status ReadField(TxnManager& mgr, Transaction* txn, TableId table,
                 uint32_t slot, uint32_t field_off, uint32_t len, void* out) {
  const TableMetaRaw* meta;
  CWDB_RETURN_IF_ERROR(ValidateTable(*mgr.image(), table, &meta));
  if (slot >= meta->capacity || field_off + len > meta->record_size) {
    return Status::InvalidArgument("field range out of record bounds");
  }
  CWDB_RETURN_IF_ERROR(AcquireLock(mgr, txn, LockId::Record(table, slot),
                                   LockMode::kShared));
  if (!mgr.image()->SlotAllocated(table, slot)) {
    return Status::NotFound("record not allocated");
  }
  return txn->Read(mgr.image()->RecordOff(table, slot) + field_off, out, len);
}

Status RawUpdate(TxnManager& mgr, Transaction* txn, DbPtr off, Slice data) {
  if (data.empty() ||
      !mgr.image()->InBounds(off, data.size())) {
    return Status::InvalidArgument("raw update out of bounds");
  }
  std::string before(reinterpret_cast<const char*>(mgr.image()->At(off)),
                     data.size());
  CWDB_RETURN_IF_ERROR(mgr.BeginOp(txn, OpCode::kUpdate, kMaxTables,
                                   kInvalidSlot, std::nullopt, off,
                                   static_cast<uint32_t>(data.size())));
  CWDB_RETURN_IF_ERROR(
      txn->Update(off, data.data(), static_cast<uint32_t>(data.size())));

  LogicalUndo undo;
  undo.code = UndoCode::kWriteRaw;
  undo.raw_off = off;
  undo.payload = std::move(before);
  return mgr.CommitOp(txn, undo);
}

uint64_t CountRecords(const DbImage& image, TableId table) {
  const TableMetaRaw* m = image.table_meta(table);
  if (!m->in_use) return 0;
  uint64_t count = 0;
  const uint64_t words = (m->capacity + 63) / 64;
  for (uint64_t w = 0; w < words; ++w) {
    uint64_t word;
    std::memcpy(&word, image.At(m->bitmap_off + w * 8), 8);
    count += static_cast<uint64_t>(std::popcount(word));
  }
  return count;
}

Status Scan(TxnManager& mgr, Transaction* txn, TableId table,
            const std::function<Status(uint32_t, Slice)>& fn) {
  const TableMetaRaw* meta;
  CWDB_RETURN_IF_ERROR(ValidateTable(*mgr.image(), table, &meta));
  std::string buf(meta->record_size, '\0');
  for (uint64_t slot = 0; slot < meta->capacity; ++slot) {
    uint32_t s = static_cast<uint32_t>(slot);
    // Cheap unlocked liveness probe first; re-checked under the lock.
    if (!mgr.image()->SlotAllocated(table, s)) continue;
    CWDB_RETURN_IF_ERROR(
        AcquireLock(mgr, txn, LockId::Record(table, s), LockMode::kShared));
    if (!mgr.image()->SlotAllocated(table, s)) continue;  // Deleted racily.
    CWDB_RETURN_IF_ERROR(txn->Read(mgr.image()->RecordOff(table, s),
                                   buf.data(), meta->record_size));
    CWDB_RETURN_IF_ERROR(fn(s, Slice(buf.data(), buf.size())));
  }
  return Status::OK();
}

Status ExecuteLogicalUndo(TxnManager& mgr, Transaction* txn,
                          const LogicalUndo& undo) {
  const DbImage* image = mgr.image();
  switch (undo.code) {
    case UndoCode::kNone:
      return Status::OK();

    case UndoCode::kDeleteSlot: {
      // Undo of insert. Idempotent: slot already free means a prior
      // (crashed) execution completed. The probe must run under the table
      // lock — concurrent inserts write the same bitmap word under it, so
      // an unlocked read here would race them.
      const TableMetaRaw* meta = image->table_meta(undo.table);
      LockId table_lock = LockId::Table(undo.table);
      CWDB_RETURN_IF_ERROR(
          AcquireLock(mgr, txn, table_lock, LockMode::kExclusive));
      if (!image->SlotAllocated(undo.table, undo.slot)) return Status::OK();
      std::string old(
          reinterpret_cast<const char*>(
              image->At(image->RecordOff(undo.table, undo.slot))),
          meta->record_size);
      CWDB_RETURN_IF_ERROR(mgr.BeginOp(txn, OpCode::kDelete, undo.table,
                                       undo.slot, table_lock));
      CWDB_RETURN_IF_ERROR(WriteBitmapBit(mgr, txn, meta, undo.slot, false));
      LogicalUndo inverse;
      inverse.code = UndoCode::kReinsertSlot;
      inverse.table = undo.table;
      inverse.slot = undo.slot;
      inverse.payload = std::move(old);
      return mgr.CommitOp(txn, inverse);
    }

    case UndoCode::kReinsertSlot: {
      // Undo of delete: put the old bytes back at the same slot. Runs
      // unconditionally; re-running overwrites with identical bytes.
      const TableMetaRaw* meta = image->table_meta(undo.table);
      LockId table_lock = LockId::Table(undo.table);
      CWDB_RETURN_IF_ERROR(
          AcquireLock(mgr, txn, table_lock, LockMode::kExclusive));
      CWDB_RETURN_IF_ERROR(mgr.BeginOp(txn, OpCode::kInsert, undo.table,
                                       undo.slot, table_lock));
      CWDB_RETURN_IF_ERROR(WriteBitmapBit(mgr, txn, meta, undo.slot, true));
      CWDB_RETURN_IF_ERROR(
          txn->Update(image->RecordOff(undo.table, undo.slot),
                      undo.payload.data(),
                      static_cast<uint32_t>(undo.payload.size())));
      LogicalUndo inverse;
      inverse.code = UndoCode::kDeleteSlot;
      inverse.table = undo.table;
      inverse.slot = undo.slot;
      return mgr.CommitOp(txn, inverse);
    }

    case UndoCode::kWriteField: {
      DbPtr field_ptr =
          image->RecordOff(undo.table, undo.slot) + undo.field_off;
      std::string current(
          reinterpret_cast<const char*>(image->At(field_ptr)),
          undo.payload.size());
      CWDB_RETURN_IF_ERROR(mgr.BeginOp(txn, OpCode::kUpdate, undo.table,
                                       undo.slot, std::nullopt));
      CWDB_RETURN_IF_ERROR(
          txn->Update(field_ptr, undo.payload.data(),
                      static_cast<uint32_t>(undo.payload.size())));
      LogicalUndo inverse;
      inverse.code = UndoCode::kWriteField;
      inverse.table = undo.table;
      inverse.slot = undo.slot;
      inverse.field_off = undo.field_off;
      inverse.payload = std::move(current);
      return mgr.CommitOp(txn, inverse);
    }

    case UndoCode::kWriteRaw: {
      std::string current(
          reinterpret_cast<const char*>(image->At(undo.raw_off)),
          undo.payload.size());
      CWDB_RETURN_IF_ERROR(mgr.BeginOp(
          txn, OpCode::kUpdate, kMaxTables, kInvalidSlot, std::nullopt,
          undo.raw_off, static_cast<uint32_t>(undo.payload.size())));
      CWDB_RETURN_IF_ERROR(
          txn->Update(undo.raw_off, undo.payload.data(),
                      static_cast<uint32_t>(undo.payload.size())));
      LogicalUndo inverse;
      inverse.code = UndoCode::kWriteRaw;
      inverse.raw_off = undo.raw_off;
      inverse.payload = std::move(current);
      return mgr.CommitOp(txn, inverse);
    }

    case UndoCode::kDropTable: {
      // Undo of create-table: free the directory slot. The bump-allocated
      // extents are intentionally leaked (DESIGN.md).
      const TableMetaRaw* meta = image->table_meta(undo.table);
      if (!meta->in_use) return Status::OK();
      LockId dir_lock = LockId::Directory();
      CWDB_RETURN_IF_ERROR(
          AcquireLock(mgr, txn, dir_lock, LockMode::kExclusive));
      std::string old_meta(
          reinterpret_cast<const char*>(image->At(TableMetaOff(undo.table))),
          kTableMetaBytes);
      CWDB_RETURN_IF_ERROR(mgr.BeginOp(txn, OpCode::kCreateTable, undo.table,
                                       kInvalidSlot, dir_lock));
      uint8_t not_in_use = 0;
      CWDB_RETURN_IF_ERROR(
          txn->Update(TableMetaOff(undo.table), &not_in_use, 1));
      LogicalUndo inverse;
      inverse.code = UndoCode::kWriteRaw;
      inverse.raw_off = TableMetaOff(undo.table);
      inverse.payload = std::move(old_meta);
      return mgr.CommitOp(txn, inverse);
    }
  }
  return Status::Internal("unknown logical undo code");
}

}  // namespace table_ops
}  // namespace cwdb
