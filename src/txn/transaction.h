#ifndef CWDB_TXN_TRANSACTION_H_
#define CWDB_TXN_TRANSACTION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/span.h"
#include "protect/protection.h"
#include "storage/layout.h"
#include "txn/lock_manager.h"
#include "wal/log_record.h"

namespace cwdb {

class TxnManager;

/// One entry of a transaction's local undo log (Dalí local logging, §2.1).
/// Physical entries carry the undo (before) image of one in-place update;
/// when an operation commits they are replaced by a single logical entry
/// describing the inverse operation.
struct UndoRecord {
  enum class Kind : uint8_t { kPhysical, kLogical };
  Kind kind = Kind::kPhysical;

  // kPhysical.
  DbPtr off = 0;
  std::string before;
  /// The paper's codeword-applied flag (§3.1): set at beginUpdate, reset at
  /// endUpdate. While set, rolling back must restore the undo image without
  /// adjusting the codeword (the codeword still describes the old bytes).
  bool codeword_applied = false;

  // kLogical.
  uint32_t op_id = 0;
  uint8_t level = 1;
  LogicalUndo undo;
};

/// State of the (at most one) operation a transaction has open.
struct OpenOp {
  uint32_t op_id = 0;
  uint8_t level = 1;
  OpCode opcode = OpCode::kInsert;
  /// Lower-level (operation-duration) lock to release at operation commit.
  std::optional<LockId> op_lock;
  /// Lengths of the undo log / local redo buffer at BeginOp, used to
  /// replace physical undo with logical undo at CommitOp, and to discard
  /// the operation's redo on operation abort.
  size_t undo_mark = 0;
  size_t redo_mark = 0;
};

/// A transaction. Created by TxnManager::Begin; all methods must be called
/// from a single thread at a time (different transactions may run on
/// different threads concurrently).
///
/// The "prescribed interface" of the paper's update model is
/// BeginUpdate / EndUpdate: every in-place write to the database image must
/// be bracketed by them so that undo/redo logging, codeword maintenance and
/// page exposure happen. Writing to the image any other way is exactly the
/// direct physical corruption the codeword schemes exist to catch.
class Transaction {
 public:
  enum class State : uint8_t { kActive, kCommitted, kAborted };

  TxnId id() const { return id_; }
  State state() const { return state_; }

  /// Starts an in-place update of [off, off+len): acquires protection
  /// latches / exposes pages, captures the undo image, and returns a
  /// writable pointer to the bytes. At most one update may be in flight.
  Result<uint8_t*> BeginUpdate(DbPtr off, uint32_t len);

  /// Completes the in-flight update: emits the physical redo record,
  /// performs codeword maintenance from the undo image, clears the
  /// codeword-applied flag, and releases latches.
  Status EndUpdate();

  /// Convenience: BeginUpdate + memcpy + EndUpdate.
  Status Update(DbPtr off, const void* data, uint32_t len);

  /// Transactional read of [off, off+len) into `out`. Under Read
  /// Prechecking this verifies the covering regions' codewords first and
  /// returns kCorruption on mismatch; under the read-logging schemes it
  /// appends a read log record (identity + optional checksum, §4.2).
  Status Read(DbPtr off, void* out, uint32_t len);

  /// True between BeginUpdate and EndUpdate.
  bool update_active() const { return update_active_; }
  bool has_open_op() const { return open_op_.has_value(); }
  bool in_rollback() const { return in_rollback_; }

  /// Bytes of undo/redo state held locally (tests, space studies).
  size_t undo_entries() const { return undo_.size(); }

  /// The local undo log (checkpointer, recovery, tests). Reading it is only
  /// safe with the checkpoint latch held exclusively or from the owning
  /// thread.
  const std::vector<UndoRecord>& undo_log() const { return undo_; }
  /// Recovery-only: restart rebuilds undo logs directly.
  std::vector<UndoRecord>& mutable_undo_log() { return undo_; }

  /// This transaction's span context (unsampled unless the tracer picked
  /// it at Begin). Pipeline stages record their spans under it.
  const SpanContext& trace_ctx() const { return trace_ctx_; }

 private:
  friend class TxnManager;
  friend class Checkpointer;
  friend class RecoveryDriver;

  Transaction(TxnManager* mgr, TxnId id) : mgr_(mgr), id_(id) {}

  TxnManager* mgr_;
  TxnId id_;
  State state_ = State::kActive;

  std::vector<UndoRecord> undo_;
  /// Encoded record payloads not yet moved to the system log tail. Moved
  /// at operation commit (before lower-level locks are released) and at
  /// transaction commit/abort.
  std::vector<std::string> local_redo_;

  std::optional<OpenOp> open_op_;

  // In-flight update state.
  bool update_active_ = false;
  ProtectionManager::UpdateHandle update_handle_;
  std::string update_before_;
  /// Index of the in-flight update's undo entry, or SIZE_MAX if rollback
  /// suppressed it.
  size_t update_undo_idx_ = 0;

  /// Set while this transaction is being rolled back: compensating actions
  /// must not grow the undo log being consumed.
  bool in_rollback_ = false;

  /// Tracing state, set at Begin when this transaction is sampled: the
  /// context child spans attach to, the pre-allocated root span id (the
  /// root is recorded when the transaction retires), and the root's start.
  SpanContext trace_ctx_;
  uint64_t trace_root_span_ = 0;
  uint64_t trace_start_ns_ = 0;
};

}  // namespace cwdb

#endif  // CWDB_TXN_TRANSACTION_H_
