#include "txn/txn_manager.h"

#include <cstring>
#include <thread>

#include "txn/table_ops.h"

namespace cwdb {

TxnManager::TxnManager(DbImage* image, ProtectionManager* protection,
                       SystemLog* log, MetricsRegistry* metrics,
                       size_t lock_shards)
    : image_(image),
      protection_(protection),
      log_(log),
      metrics_(FallbackRegistry(metrics, &own_metrics_)),
      locks_(lock_shards) {
  ins_.commits = metrics_->counter("txn.commits");
  ins_.aborts = metrics_->counter("txn.aborts");
  ins_.active = metrics_->gauge("txn.active");
  ins_.commit_latency_ns = metrics_->histogram("txn.commit_latency_ns");
  ins_.abort_latency_ns = metrics_->histogram("txn.abort_latency_ns");
  locks_.BindMetrics(metrics_);
}

Result<Transaction*> TxnManager::Begin() {
  Tracer* tracer = metrics_->tracer();
  const uint64_t t0 = tracer->enabled() ? NowNs() : 0;
  std::lock_guard<std::mutex> guard(att_mu_);
  TxnId id = next_txn_id_++;
  auto txn = std::unique_ptr<Transaction>(new Transaction(this, id));
  Transaction* raw = txn.get();
  if (t0 != 0 && !recovery_mode_) {
    uint64_t root_span = 0;
    raw->trace_ctx_ = tracer->MaybeStartTrace(&root_span);
    if (raw->trace_ctx_.sampled()) {
      raw->trace_root_span_ = root_span;
      raw->trace_start_ns_ = t0;
      tracer->Record(raw->trace_ctx_, SpanKind::kTxnBegin, t0, NowNs(), id);
    }
  }
  std::string payload;
  EncodeBeginTxn(&payload, id);
  raw->local_redo_.push_back(std::move(payload));
  att_[id] = std::move(txn);
  ins_.active->Add(1);
  return raw;
}

void TxnManager::MoveRedoToSystemLog(Transaction* txn,
                                     const SpanContext* trace) {
  // One batched staging call: a single LSN reservation for the whole local
  // redo buffer, so an operation's records occupy contiguous LSNs and the
  // append path touches its shard mutex once per operation commit.
  log_->AppendAll(txn->local_redo_, trace);
  txn->local_redo_.clear();
}

Status TxnManager::BeginOp(Transaction* txn, OpCode opcode, TableId table,
                           uint32_t slot, std::optional<LockId> op_lock,
                           DbPtr raw_off, uint32_t raw_len) {
  CWDB_CHECK(txn->state_ == Transaction::State::kActive);
  CWDB_CHECK(!txn->open_op_.has_value()) << "nested operation";
  CWDB_CHECK(!txn->update_active_);
  OpenOp op;
  op.op_id = next_op_id_.fetch_add(1, std::memory_order_relaxed);
  op.level = 1;
  op.opcode = opcode;
  op.op_lock = op_lock;
  op.undo_mark = txn->undo_.size();
  op.redo_mark = txn->local_redo_.size();
  std::string payload;
  EncodeBeginOp(&payload, txn->id_, op.op_id, op.level, opcode, table, slot,
                raw_off, raw_len);
  txn->local_redo_.push_back(std::move(payload));
  txn->open_op_ = op;
  return Status::OK();
}

Status TxnManager::CommitOp(Transaction* txn, const LogicalUndo& undo) {
  CWDB_CHECK(txn->open_op_.has_value());
  CWDB_CHECK(!txn->update_active_);
  OpenOp op = *txn->open_op_;
  std::string payload;
  EncodeCommitOp(&payload, txn->id_, op.op_id, op.level, undo);
  txn->local_redo_.push_back(std::move(payload));
  {
    // The undo-log rewrite and the move of redo to the system log happen
    // atomically with respect to the checkpointer's ATT copy.
    SharedGuard guard(ckpt_latch_);
    if (!txn->in_rollback_) {
      // Replace the operation's physical undo with its logical undo (§2.1).
      txn->undo_.resize(op.undo_mark);
      UndoRecord u;
      u.kind = UndoRecord::Kind::kLogical;
      u.op_id = op.op_id;
      u.level = op.level;
      u.undo = undo;
      txn->undo_.push_back(std::move(u));
    }
    // "Both steps take place prior to the release of lower level locks."
    MoveRedoToSystemLog(txn);
  }
  if (op.op_lock.has_value() && !recovery_mode_) {
    locks_.Release(txn->id_, *op.op_lock);
  }
  txn->open_op_.reset();
  return Status::OK();
}

Status TxnManager::AbortOp(Transaction* txn) {
  CWDB_CHECK(txn->open_op_.has_value());
  CWDB_CHECK(!txn->update_active_);
  OpenOp op = *txn->open_op_;
  // Physically restore the operation's updates, newest first. These
  // restorations are unlogged: the operation's redo never left the local
  // buffer, so after discarding it the system log never saw the operation.
  for (size_t i = txn->undo_.size(); i > op.undo_mark; --i) {
    UndoRecord& u = txn->undo_[i - 1];
    CWDB_CHECK(u.kind == UndoRecord::Kind::kPhysical)
        << "open operation has non-physical undo";
    CWDB_CHECK(!u.codeword_applied);
    ProtectionManager::UpdateHandle h;
    ckpt_latch_.LockShared();
    Status s = protection_->BeginUpdate(u.off, u.before.size(), &h);
    CWDB_CHECK(s.ok()) << s.ToString();
    std::string current(
        reinterpret_cast<const char*>(image_->At(u.off)), u.before.size());
    std::memcpy(image_->At(u.off), u.before.data(), u.before.size());
    image_->MarkDirty(u.off, u.before.size());
    protection_->EndUpdate(
        h, reinterpret_cast<const uint8_t*>(current.data()));
    ckpt_latch_.UnlockShared();
  }
  {
    SharedGuard guard(ckpt_latch_);
    txn->undo_.resize(op.undo_mark);
    txn->local_redo_.resize(op.redo_mark);
  }
  if (op.op_lock.has_value() && !recovery_mode_) {
    locks_.Release(txn->id_, *op.op_lock);
  }
  txn->open_op_.reset();
  return Status::OK();
}

Status TxnManager::ApplyCompensation(Transaction* txn, DbPtr off,
                                     const std::string& before) {
  CWDB_ASSIGN_OR_RETURN(
      uint8_t* p,
      txn->BeginUpdate(off, static_cast<uint32_t>(before.size())));
  std::memcpy(p, before.data(), before.size());
  return txn->EndUpdate();
}

Status TxnManager::ExecuteLogicalUndo(Transaction* txn,
                                      const LogicalUndo& undo) {
  return table_ops::ExecuteLogicalUndo(*this, txn, undo);
}

Status TxnManager::UndoDownTo(Transaction* txn, size_t mark) {
  // Consume the undo log newest-first down to `mark`. Each entry is
  // applied before it is popped, and every application is idempotent, so a
  // checkpoint (or crash + repeat-history recovery) at any interleaving
  // point re-applies at most a no-op (see DESIGN.md on CLR-free rollback).
  while (txn->undo_.size() > mark) {
    const UndoRecord& u = txn->undo_.back();
    if (u.kind == UndoRecord::Kind::kPhysical) {
      CWDB_CHECK(!u.codeword_applied);
      CWDB_RETURN_IF_ERROR(ApplyCompensation(txn, u.off, u.before));
    } else {
      CWDB_RETURN_IF_ERROR(ExecuteLogicalUndo(txn, u.undo));
    }
    SharedGuard guard(ckpt_latch_);
    txn->undo_.pop_back();
  }
  return Status::OK();
}

Result<uint64_t> TxnManager::CreateSavepoint(Transaction* txn) {
  CWDB_CHECK(txn->state_ == Transaction::State::kActive);
  if (txn->open_op_.has_value() || txn->update_active_) {
    return Status::InvalidArgument(
        "savepoints must be created between operations");
  }
  return static_cast<uint64_t>(txn->undo_.size());
}

Status TxnManager::RollbackToSavepoint(Transaction* txn,
                                       uint64_t savepoint) {
  CWDB_CHECK(txn->state_ == Transaction::State::kActive);
  if (txn->open_op_.has_value() || txn->update_active_) {
    return Status::InvalidArgument(
        "cannot roll back with an operation in flight");
  }
  if (savepoint > txn->undo_.size()) {
    return Status::InvalidArgument(
        "savepoint is no longer valid (already rolled back past it)");
  }
  txn->in_rollback_ = true;
  Status s = UndoDownTo(txn, static_cast<size_t>(savepoint));
  txn->in_rollback_ = false;
  return s;
}

Status TxnManager::Rollback(Transaction* txn) {
  CWDB_CHECK(txn->state_ == Transaction::State::kActive);
  txn->in_rollback_ = true;

  // An update in flight has not advanced the codeword (codeword-applied is
  // still set): restore the undo image without codeword maintenance (§3.1).
  if (txn->update_active_) {
    std::memcpy(image_->At(txn->update_handle_.off),
                txn->update_before_.data(), txn->update_before_.size());
    image_->MarkDirty(txn->update_handle_.off, txn->update_before_.size());
    protection_->AbortUpdate(txn->update_handle_);
    txn->update_active_ = false;
    if (txn->update_undo_idx_ != SIZE_MAX) {
      // Still under the checkpoint latch held since BeginUpdate, so the
      // restore above and this pop are atomic w.r.t. the checkpointer.
      CWDB_CHECK(txn->update_undo_idx_ == txn->undo_.size() - 1);
      txn->undo_.pop_back();
    }
    ckpt_latch_.UnlockShared();  // Held since BeginUpdate.
  }
  if (txn->open_op_.has_value()) {
    CWDB_RETURN_IF_ERROR(AbortOp(txn));
  }

  CWDB_RETURN_IF_ERROR(UndoDownTo(txn, 0));

  std::string payload;
  EncodeAbortTxn(&payload, txn->id_);
  txn->local_redo_.push_back(std::move(payload));
  {
    SharedGuard guard(ckpt_latch_);
    MoveRedoToSystemLog(txn);
  }
  txn->in_rollback_ = false;
  txn->state_ = Transaction::State::kAborted;
  return Status::OK();
}

Status TxnManager::Commit(Transaction* txn) {
  CWDB_CHECK(txn->state_ == Transaction::State::kActive);
  CWDB_CHECK(!txn->open_op_.has_value() && !txn->update_active_)
      << "commit with an operation or update in flight";
  const uint64_t t0 = NowNs();
  Tracer* tracer = metrics_->tracer();
  const SpanContext ctx = txn->trace_ctx_;
  const bool traced = ctx.sampled();
  // The flush-wait span id is allocated up front: the drainer-side spans
  // (queue wait, batch write, fsync) parent to it via the WalTraceTag even
  // though the span itself is only recorded after Flush returns.
  SpanContext flush_ctx;
  uint64_t flush_span = 0;
  if (traced) {
    flush_span = tracer->NewSpanId();
    flush_ctx = ctx.Under(flush_span);
  }
  std::string payload;
  EncodeCommitTxn(&payload, txn->id_);
  txn->local_redo_.push_back(std::move(payload));
  uint64_t t_stage_end = 0;
  {
    SharedGuard guard(ckpt_latch_);
    MoveRedoToSystemLog(txn, traced ? &flush_ctx : nullptr);
    if (traced) t_stage_end = NowNs();
    txn->undo_.clear();
    txn->state_ = Transaction::State::kCommitted;
  }
  if (traced) tracer->Record(ctx, SpanKind::kWalStage, t0, t_stage_end);
  // Group side effects: flush through the commit record, then release locks.
  const uint64_t t_flush = traced ? NowNs() : 0;
  Status flushed = log_->Flush();
  if (traced) {
    tracer->RecordWithId(ctx, flush_span, SpanKind::kFlushWait, t_flush,
                         NowNs());
  }
  CWDB_RETURN_IF_ERROR(flushed);
  const uint64_t t_ack = traced ? NowNs() : 0;
  locks_.ReleaseAll(txn->id_);
  ins_.commits->Add();
  ins_.active->Sub(1);
  ins_.commit_latency_ns->Record(NowNs() - t0);
  if (traced) {
    const uint64_t now = NowNs();
    tracer->Record(ctx, SpanKind::kCommitAck, t_ack, now);
    // Root span last: parentless, spanning Begin through ack.
    tracer->RecordWithId(ctx.Under(0), txn->trace_root_span_, SpanKind::kTxn,
                         txn->trace_start_ns_, now, txn->id_, 0);
  }
  std::lock_guard<std::mutex> guard(att_mu_);
  att_.erase(txn->id_);  // Destroys txn.
  return Status::OK();
}

Status TxnManager::Abort(Transaction* txn) {
  const uint64_t t0 = NowNs();
  const SpanContext ctx = txn->trace_ctx_;
  CWDB_RETURN_IF_ERROR(Rollback(txn));
  locks_.ReleaseAll(txn->id_);
  ins_.aborts->Add();
  ins_.active->Sub(1);
  ins_.abort_latency_ns->Record(NowNs() - t0);
  if (ctx.sampled()) {
    // b=1 marks an aborted root so the exporter can tell the outcomes apart.
    ctx.tracer->RecordWithId(ctx.Under(0), txn->trace_root_span_,
                             SpanKind::kTxn, txn->trace_start_ns_, NowNs(),
                             txn->id_, 1);
  }
  std::lock_guard<std::mutex> guard(att_mu_);
  att_.erase(txn->id_);  // Destroys txn.
  return Status::OK();
}

std::vector<TxnId> TxnManager::ActiveTxnIds() {
  std::lock_guard<std::mutex> guard(att_mu_);
  std::vector<TxnId> ids;
  ids.reserve(att_.size());
  for (const auto& [id, txn] : att_) ids.push_back(id);
  return ids;
}

Transaction* TxnManager::GetOrCreateRecovered(TxnId id) {
  std::lock_guard<std::mutex> guard(att_mu_);
  auto it = att_.find(id);
  if (it != att_.end()) return it->second.get();
  auto txn = std::unique_ptr<Transaction>(new Transaction(this, id));
  Transaction* raw = txn.get();
  att_[id] = std::move(txn);
  if (id >= next_txn_id_) next_txn_id_ = id + 1;
  return raw;
}

void TxnManager::DropRecovered(TxnId id) {
  std::lock_guard<std::mutex> guard(att_mu_);
  att_.erase(id);
}

Status TxnManager::FinishRecoveredRollback(Transaction* txn) {
  CWDB_CHECK(recovery_mode_);
  CWDB_CHECK(txn->undo_.empty());
  std::string payload;
  EncodeAbortTxn(&payload, txn->id_);
  txn->local_redo_.push_back(std::move(payload));
  MoveRedoToSystemLog(txn);
  txn->in_rollback_ = false;
  txn->state_ = Transaction::State::kAborted;
  DropRecovered(txn->id_);
  return Status::OK();
}

void TxnManager::ClearForCrash() {
  std::lock_guard<std::mutex> guard(att_mu_);
  att_.clear();
  locks_.Clear();
  ins_.active->Set(0);  // The ATT is volatile; nothing survives the crash.
}

void TxnManager::BumpIds(TxnId txn_floor, uint32_t op_floor) {
  std::lock_guard<std::mutex> guard(att_mu_);
  if (txn_floor >= next_txn_id_) next_txn_id_ = txn_floor + 1;
  uint32_t cur = next_op_id_.load(std::memory_order_relaxed);
  if (op_floor >= cur) {
    next_op_id_.store(op_floor + 1, std::memory_order_relaxed);
  }
}

}  // namespace cwdb
