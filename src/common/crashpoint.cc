#include "common/crashpoint.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "common/file_util.h"

namespace cwdb {
namespace crashpoint {

namespace {

/// The registered points, in the order the torture matrix sweeps them.
/// Write points (torn-write / bit-flip capable) are flagged.
struct PointDef {
  const char* name;
  bool is_write;
};

constexpr PointDef kPoints[] = {
    {"wal.flush.pwrite", true},
    {"wal.flush.fdatasync", false},
    {"ckpt.image.setsize", false},
    {"ckpt.page.pwrite", true},
    {"ckpt.image.fsync", false},
    {"ckpt.meta.tmp_write", true},
    {"ckpt.meta.tmp_fsync", false},
    {"ckpt.meta.rename", false},
    {"ckpt.meta.dir_fsync", false},
    {"ckpt.anchor.tmp_write", true},
    {"ckpt.anchor.tmp_fsync", false},
    {"ckpt.anchor.rename", false},
    {"ckpt.anchor.dir_fsync", false},
    {"archive.file.tmp_write", true},
    {"archive.file.tmp_fsync", false},
    {"archive.file.rename", false},
    {"archive.file.dir_fsync", false},
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Spec> armed;
  std::unordered_map<std::string, uint64_t> hits;
  std::atomic<uint64_t> fired{0};
  /// Fast path: number of armed points; when zero, a hit only bumps its
  /// counter. These boundaries sit next to syscalls, so the lock is noise.
  std::atomic<int> armed_count{0};
  std::function<void(const std::string&)> observer;
};

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kOff: return "off";
    case Mode::kAbort: return "abort";
    case Mode::kEio: return "eio";
    case Mode::kTornWrite: return "torn";
    case Mode::kBitFlip: return "bitflip";
  }
  return "?";
}

/// Renders the armed set and hands it to the observer. Caller holds reg.mu.
void NotifyObserverLocked(Registry& reg) {
  if (!reg.observer) return;
  std::string out;
  for (const PointDef& p : kPoints) {  // Stable order for the rendering.
    auto it = reg.armed.find(p.name);
    if (it == reg.armed.end()) continue;
    if (!out.empty()) out.push_back(',');
    out += p.name;
    out.push_back('=');
    out += ModeName(it->second.mode);
    out.push_back(':');
    out += std::to_string(it->second.countdown);
  }
  reg.observer(out);
}

Registry& Reg() {
  static Registry* r = new Registry;  // Leaked: alive through _exit paths.
  return *r;
}

void ArmFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("CWDB_CRASHPOINT");
    if (env != nullptr && *env != '\0') {
      // A malformed spec in the environment is a harness bug; surface it
      // loudly rather than silently running without injection.
      Status s = ArmFromString(env);
      if (!s.ok()) {
        std::fprintf(stderr, "CWDB_CRASHPOINT: %s\n", s.ToString().c_str());
        std::abort();
      }
    }
  });
}

/// Decides what the hit of `name` should do. Returns the firing spec with
/// mode kOff when the point does not fire.
Spec OnHit(const char* name) {
  ArmFromEnvOnce();
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  ++reg.hits[name];
  if (reg.armed_count.load(std::memory_order_relaxed) == 0) return Spec{};
  auto it = reg.armed.find(name);
  if (it == reg.armed.end()) return Spec{};
  if (--it->second.countdown > 0) return Spec{};
  Spec spec = it->second;
  // One-shot: the point disarms itself so a retry of the failed operation
  // runs clean.
  reg.armed.erase(it);
  reg.armed_count.fetch_sub(1, std::memory_order_relaxed);
  reg.fired.fetch_add(1, std::memory_order_relaxed);
  // Tell the observer only when the process survives the firing (kEio,
  // kBitFlip). The dying modes _exit on the next line of the caller: the
  // black box must keep the pre-fire armed set so the postmortem shows
  // which point killed the process, not a freshly-cleared mirror.
  if (spec.mode == Mode::kEio || spec.mode == Mode::kBitFlip) {
    NotifyObserverLocked(reg);
  }
  return spec;
}

Status InjectedEio(const char* name) {
  return Status::IoError(std::string("crashpoint ") + name + ": injected EIO");
}

[[noreturn]] void Die() { ::_exit(kCrashExitCode); }

}  // namespace

void Arm(const std::string& name, const Spec& spec) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto [it, inserted] = reg.armed.insert_or_assign(name, spec);
  (void)it;
  if (inserted) reg.armed_count.fetch_add(1, std::memory_order_relaxed);
  NotifyObserverLocked(reg);
}

void Disarm(const std::string& name) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.armed.erase(name) > 0) {
    reg.armed_count.fetch_sub(1, std::memory_order_relaxed);
    NotifyObserverLocked(reg);
  }
}

void DisarmAll() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.armed.clear();
  reg.armed_count.store(0, std::memory_order_relaxed);
  NotifyObserverLocked(reg);
}

void SetArmObserver(std::function<void(const std::string&)> observer) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.observer = std::move(observer);
  // Seed the new observer with the current set (points may have been armed
  // from the environment before the database opened).
  NotifyObserverLocked(reg);
}

Status ArmFromString(const std::string& specs) {
  size_t pos = 0;
  while (pos < specs.size()) {
    size_t end = specs.find(',', pos);
    if (end == std::string::npos) end = specs.size();
    std::string one = specs.substr(pos, end - pos);
    pos = end + 1;
    if (one.empty()) continue;
    size_t eq = one.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("crashpoint spec missing '=': " + one);
    }
    std::string name = one.substr(0, eq);
    bool known = false;
    for (const PointDef& p : kPoints) known = known || name == p.name;
    if (!known) {
      return Status::InvalidArgument("unknown crashpoint: " + name);
    }
    Spec spec;
    std::string rest = one.substr(eq + 1);
    std::string mode = rest.substr(0, rest.find(':'));
    if (mode == "abort") {
      spec.mode = Mode::kAbort;
    } else if (mode == "eio") {
      spec.mode = Mode::kEio;
    } else if (mode == "torn") {
      spec.mode = Mode::kTornWrite;
    } else if (mode == "bitflip") {
      spec.mode = Mode::kBitFlip;
    } else {
      return Status::InvalidArgument("bad crashpoint mode: " + mode);
    }
    size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      char* after = nullptr;
      spec.countdown =
          static_cast<uint32_t>(std::strtoul(rest.c_str() + colon + 1,
                                             &after, 10));
      if (spec.countdown == 0) {
        return Status::InvalidArgument("crashpoint countdown must be >= 1");
      }
      if (after != nullptr && *after == ':') {
        spec.param = std::strtoull(after + 1, nullptr, 10);
      }
    }
    Arm(name, spec);
  }
  return Status::OK();
}

uint64_t Hits(const std::string& name) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.hits.find(name);
  return it == reg.hits.end() ? 0 : it->second;
}

uint64_t Fired() { return Reg().fired.load(std::memory_order_relaxed); }

const std::vector<std::string>& AllPoints() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>;
    for (const PointDef& p : kPoints) v->push_back(p.name);
    return v;
  }();
  return *names;
}

bool IsWritePoint(const std::string& name) {
  for (const PointDef& p : kPoints) {
    if (name == p.name) return p.is_write;
  }
  return false;
}

Status Check(const char* name) {
  Spec spec = OnHit(name);
  switch (spec.mode) {
    case Mode::kOff:
    case Mode::kBitFlip:  // No buffer to corrupt here.
      return Status::OK();
    case Mode::kEio:
      return InjectedEio(name);
    case Mode::kAbort:
    case Mode::kTornWrite:  // No buffer to tear: degrade to abort.
      Die();
  }
  return Status::OK();
}

Status InjectedPWrite(const char* name, int fd, const void* data, size_t len,
                      uint64_t offset) {
  Spec spec = OnHit(name);
  switch (spec.mode) {
    case Mode::kOff:
      break;
    case Mode::kEio:
      return InjectedEio(name);
    case Mode::kAbort:
      Die();
    case Mode::kTornWrite: {
      size_t keep = spec.param != 0 ? static_cast<size_t>(spec.param)
                                    : len / 2;
      if (keep > len) keep = len;
      (void)PWriteAll(fd, data, keep, offset);
      ::fsync(fd);  // Make the tear itself durable before dying.
      Die();
    }
    case Mode::kBitFlip: {
      if (len > 0) {
        std::string flipped(static_cast<const char*>(data), len);
        uint64_t bit = spec.param % (static_cast<uint64_t>(len) * 8);
        flipped[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        return PWriteAll(fd, flipped.data(), len, offset);
      }
      break;
    }
  }
  return PWriteAll(fd, data, len, offset);
}

}  // namespace crashpoint
}  // namespace cwdb
