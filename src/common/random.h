#ifndef CWDB_COMMON_RANDOM_H_
#define CWDB_COMMON_RANDOM_H_

#include <cstdint>

namespace cwdb {

/// Small deterministic PRNG (xorshift64*). Workloads and fault-injection
/// campaigns take an explicit seed so every experiment is reproducible.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability p_num / p_den.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  uint32_t Next32() { return static_cast<uint32_t>(Next() >> 32); }

 private:
  uint64_t state_;
};

}  // namespace cwdb

#endif  // CWDB_COMMON_RANDOM_H_
