#ifndef CWDB_COMMON_STATUS_H_
#define CWDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace cwdb {

/// Outcome of a cwdb operation. The library does not use exceptions; every
/// fallible call returns a Status (or a Result<T>, see result.h).
///
/// Codes of note:
///  * kCorruption       — a codeword audit or precheck failed: the bytes of a
///                        protection region no longer match its codeword.
///  * kProtectionFault  — a write was refused by the Hardware Protection
///                        scheme (the page was read-only).
///  * kDeadlock         — the lock manager aborted this transaction to break
///                        a waits-for cycle; the caller should retry.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kCorruption,
    kProtectionFault,
    kDeadlock,
    kIoError,
    kNoSpace,
    kBusy,
    kAborted,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status ProtectionFault(std::string msg) {
    return Status(Code::kProtectionFault, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(Code::kDeadlock, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status NoSpace(std::string msg) {
    return Status(Code::kNoSpace, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsProtectionFault() const { return code_ == Code::kProtectionFault; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }

  /// "OK" or "<code name>: <message>", for logs and test failure output.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller. Standard early-return macro.
#define CWDB_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::cwdb::Status _cwdb_status = (expr);          \
    if (!_cwdb_status.ok()) return _cwdb_status;   \
  } while (0)

}  // namespace cwdb

#endif  // CWDB_COMMON_STATUS_H_
