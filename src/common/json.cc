#include "common/json.h"

#include <cstdio>
#include <cstdlib>

namespace cwdb {
namespace {

class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char Take() { return text_[pos_++]; }
  bool Consume(char c) {
    if (AtEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }
  size_t pos() const { return pos_; }
  std::string_view Slice(size_t begin) const {
    return text_.substr(begin, pos_ - begin);
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : cur_(text) {}

  Result<JsonValue> Parse() {
    cur_.SkipWs();
    JsonValue v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    cur_.SkipWs();
    if (!cur_.AtEnd()) return Fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const char* what) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "json parse error at byte %zu: %s",
                  cur_.pos(), what);
    return Status::InvalidArgument(buf);
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    cur_.SkipWs();
    if (cur_.AtEnd()) return Fail("unexpected end of input");
    char c = cur_.Peek();
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->str_);
      case 't':
        if (!cur_.ConsumeWord("true")) return Fail("bad literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        if (!cur_.ConsumeWord("false")) return Fail("bad literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        if (!cur_.ConsumeWord("null")) return Fail("bad literal");
        out->type_ = JsonValue::Type::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    cur_.Take();  // '{'
    out->type_ = JsonValue::Type::kObject;
    cur_.SkipWs();
    if (cur_.Consume('}')) return Status::OK();
    while (true) {
      cur_.SkipWs();
      if (cur_.AtEnd() || cur_.Peek() != '"') return Fail("expected key");
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      cur_.SkipWs();
      if (!cur_.Consume(':')) return Fail("expected ':'");
      JsonValue v;
      s = ParseValue(&v, depth + 1);
      if (!s.ok()) return s;
      out->obj_.emplace_back(std::move(key), std::move(v));
      cur_.SkipWs();
      if (cur_.Consume(',')) continue;
      if (cur_.Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    cur_.Take();  // '['
    out->type_ = JsonValue::Type::kArray;
    cur_.SkipWs();
    if (cur_.Consume(']')) return Status::OK();
    while (true) {
      JsonValue v;
      Status s = ParseValue(&v, depth + 1);
      if (!s.ok()) return s;
      out->arr_.push_back(std::move(v));
      cur_.SkipWs();
      if (cur_.Consume(',')) continue;
      if (cur_.Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    cur_.Take();  // '"'
    out->clear();
    while (true) {
      if (cur_.AtEnd()) return Fail("unterminated string");
      char c = cur_.Take();
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (cur_.AtEnd()) return Fail("unterminated escape");
      char e = cur_.Take();
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // The engine only ever escapes control bytes as \u00XX; decode
          // those and reject anything wider rather than mis-handle it.
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            if (cur_.AtEnd()) return Fail("truncated \\u escape");
            char h = cur_.Take();
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          if (v > 0x7F) return Fail("non-ASCII \\u escape unsupported");
          out->push_back(static_cast<char>(v));
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t begin = cur_.pos();
    cur_.Consume('-');
    bool any = false;
    while (!cur_.AtEnd()) {
      char c = cur_.Peek();
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        cur_.Take();
        any = true;
      } else {
        break;
      }
    }
    if (!any) return Fail("expected value");
    out->type_ = JsonValue::Type::kNumber;
    out->str_ = std::string(cur_.Slice(begin));
    return Status::OK();
  }

  JsonCursor cur_;
};

uint64_t JsonValue::AsU64() const {
  if (type_ != Type::kNumber) return 0;
  return std::strtoull(str_.c_str(), nullptr, 10);
}

int64_t JsonValue::AsI64() const {
  if (type_ != Type::kNumber) return 0;
  return std::strtoll(str_.c_str(), nullptr, 10);
}

double JsonValue::AsDouble() const {
  if (type_ != Type::kNumber) return 0.0;
  return std::strtod(str_.c_str(), nullptr);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

uint64_t JsonValue::U64(std::string_view key, uint64_t fallback) const {
  const JsonValue* v = Find(key);
  return v ? v->AsU64() : fallback;
}

std::string JsonValue::Str(std::string_view key) const {
  const JsonValue* v = Find(key);
  return v && v->is_string() ? v->string_value() : std::string();
}

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

void JsonAppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  JsonAppendEscaped(&out, s);
  out.push_back('"');
  return out;
}

}  // namespace cwdb
