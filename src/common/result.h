#ifndef CWDB_COMMON_RESULT_H_
#define CWDB_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace cwdb {

/// A value or an error Status. The library's no-exceptions analogue of
/// absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` from Result-returning
  /// functions, mirroring StatusOr.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK Status: allows `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    CWDB_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    CWDB_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  const T& value() const& {
    CWDB_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CWDB_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// assigns the value into `lhs` (a declaration or existing variable).
#define CWDB_ASSIGN_OR_RETURN(lhs, expr)                       \
  CWDB_ASSIGN_OR_RETURN_IMPL_(                                 \
      CWDB_RESULT_CONCAT_(_cwdb_result, __LINE__), lhs, expr)

#define CWDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define CWDB_RESULT_CONCAT_INNER_(a, b) a##b
#define CWDB_RESULT_CONCAT_(a, b) CWDB_RESULT_CONCAT_INNER_(a, b)

}  // namespace cwdb

#endif  // CWDB_COMMON_RESULT_H_
