#include "common/codeword_kernel.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define CWDB_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#endif

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define CWDB_LITTLE_ENDIAN 1
#else
#define CWDB_LITTLE_ENDIAN 0
#endif

namespace cwdb {

namespace {

/// Folds the word-aligned-phase suffix [i, len) after a wide kernel has
/// consumed [0, i): whole 32-bit words first, then the zero-padded tail.
/// `i` must be a multiple of 4 so the lane phase is 0.
codeword_t FinishTail(const uint8_t* p, size_t i, size_t len, codeword_t cw) {
  while (i + 4 <= len) {
    uint32_t w;
    std::memcpy(&w, p + i, 4);
    cw ^= w;
    i += 4;
  }
  size_t tail = len - i;
  if (tail != 0) {
    uint32_t w = 0;
    std::memcpy(&w, p + i, tail);
    cw ^= w;
  }
  return cw;
}

// ---------------------------------------------------------------------------
// Tier kScalar — the reference loop (4 bytes per iteration). Every other
// tier must match it bit for bit; codeword_kernel_test enforces this.
// ---------------------------------------------------------------------------

codeword_t ComputeScalar(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  codeword_t cw = 0;
  // memcpy keeps the loads alignment-safe and compiles to plain loads.
  size_t words = len / 4;
  for (size_t i = 0; i < words; ++i) {
    uint32_t w;
    std::memcpy(&w, p + 4 * i, 4);
    cw ^= w;
  }
  // Tail bytes occupy the low lanes of a final zero-padded word.
  size_t tail = len & 3;
  if (tail != 0) {
    uint32_t w = 0;
    std::memcpy(&w, p + 4 * words, tail);
    cw ^= w;
  }
  return cw;
}

// ---------------------------------------------------------------------------
// Tier kWide64 — two 32-bit lanes ride in each 64-bit accumulator; four
// independent accumulators hide load latency. Little-endian only: a 64-bit
// load of bytes b0..b7 is word(b0..b3) | word(b4..b7) << 32, so XOR-folding
// the high half into the low half at the end lands every byte in its lane.
// ---------------------------------------------------------------------------

codeword_t ComputeWide64(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    uint64_t a, b, c, d;
    std::memcpy(&a, p + i, 8);
    std::memcpy(&b, p + i + 8, 8);
    std::memcpy(&c, p + i + 16, 8);
    std::memcpy(&d, p + i + 24, 8);
    acc0 ^= a;
    acc1 ^= b;
    acc2 ^= c;
    acc3 ^= d;
  }
  uint64_t acc = (acc0 ^ acc1) ^ (acc2 ^ acc3);
  for (; i + 8 <= len; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    acc ^= w;
  }
  codeword_t cw =
      static_cast<codeword_t>(acc) ^ static_cast<codeword_t>(acc >> 32);
  return FinishTail(p, i, len, cw);
}

// ---------------------------------------------------------------------------
// Tier kSSE2 — 16-byte unaligned vector loads, two accumulators (x86-64
// baseline, so no runtime feature check is needed where it compiles).
// ---------------------------------------------------------------------------

#if defined(__SSE2__) && CWDB_LITTLE_ENDIAN
codeword_t ComputeSse2(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  __m128i acc0 = _mm_setzero_si128();
  __m128i acc1 = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    acc0 = _mm_xor_si128(
        acc0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i)));
    acc1 = _mm_xor_si128(
        acc1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i + 16)));
    acc0 = _mm_xor_si128(
        acc0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i + 32)));
    acc1 = _mm_xor_si128(
        acc1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i + 48)));
  }
  for (; i + 16 <= len; i += 16) {
    acc0 = _mm_xor_si128(
        acc0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i)));
  }
  uint64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes),
                   _mm_xor_si128(acc0, acc1));
  uint64_t acc = lanes[0] ^ lanes[1];
  codeword_t cw =
      static_cast<codeword_t>(acc) ^ static_cast<codeword_t>(acc >> 32);
  return FinishTail(p, i, len, cw);
}
#define CWDB_HAVE_SSE2_KERNEL 1
#endif

// ---------------------------------------------------------------------------
// Tier kAVX2 — 32-byte vector loads behind a function-level target
// attribute, so the translation unit builds without -mavx2 and the binary
// still runs on pre-AVX2 parts (the tier is only selected after CPUID says
// yes). The compiler inserts vzeroupper on return.
// ---------------------------------------------------------------------------

#if defined(CWDB_HAVE_AVX2_KERNEL) && CWDB_LITTLE_ENDIAN
__attribute__((target("avx2"))) codeword_t ComputeAvx2(const void* data,
                                                       size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 128 <= len; i += 128) {
    acc0 = _mm256_xor_si256(
        acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)));
    acc1 = _mm256_xor_si256(
        acc1,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 32)));
    acc0 = _mm256_xor_si256(
        acc0,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 64)));
    acc1 = _mm256_xor_si256(
        acc1,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 96)));
  }
  for (; i + 32 <= len; i += 32) {
    acc0 = _mm256_xor_si256(
        acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)));
  }
  __m256i acc = _mm256_xor_si256(acc0, acc1);
  __m128i v = _mm_xor_si128(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  uint64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), v);
  uint64_t a = lanes[0] ^ lanes[1];
  codeword_t cw = static_cast<codeword_t>(a) ^ static_cast<codeword_t>(a >> 32);
  return FinishTail(p, i, len, cw);
}
#else
#undef CWDB_HAVE_AVX2_KERNEL
#endif

// ---------------------------------------------------------------------------
// Positioned folds: every tier shares the scalar head (align the lane phase
// to 0) and tail (bytes land in the low lanes of the next word); the
// word-phase middle is the tier's compute kernel. This is what makes the
// unaligned-lane cases cheap to keep correct across tiers.
// ---------------------------------------------------------------------------

using ComputeFn = codeword_t (*)(const void*, size_t);

template <ComputeFn kMiddle>
codeword_t FoldWith(size_t lane_offset, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  codeword_t cw = 0;
  size_t i = 0;
  // Leading bytes until the lane phase (offset mod 4) reaches 0.
  size_t lane = lane_offset & 3;
  while (lane != 0 && i < len) {
    cw ^= static_cast<codeword_t>(p[i]) << (8 * lane);
    lane = (lane + 1) & 3;
    ++i;
  }
  // Whole words at phase 0 — the wide middle.
  size_t mid = (len - i) & ~static_cast<size_t>(3);
  if (mid != 0) {
    cw ^= kMiddle(p + i, mid);
    i += mid;
  }
  // Trailing bytes land in the low lanes of the next word.
  lane = 0;
  while (i < len) {
    cw ^= static_cast<codeword_t>(p[i]) << (8 * lane);
    ++lane;
    ++i;
  }
  return cw;
}

struct Kernel {
  CodewordKernelTier tier;
  const char* name;
  ComputeFn compute;
  codeword_t (*fold)(size_t, const void*, size_t);
};

constexpr Kernel kScalarKernel = {CodewordKernelTier::kScalar, "scalar",
                                  &ComputeScalar, &FoldWith<&ComputeScalar>};
#if CWDB_LITTLE_ENDIAN
constexpr Kernel kWide64Kernel = {CodewordKernelTier::kWide64, "wide64",
                                  &ComputeWide64, &FoldWith<&ComputeWide64>};
#endif
#if defined(CWDB_HAVE_SSE2_KERNEL)
constexpr Kernel kSse2Kernel = {CodewordKernelTier::kSSE2, "sse2",
                                &ComputeSse2, &FoldWith<&ComputeSse2>};
#endif
#if defined(CWDB_HAVE_AVX2_KERNEL)
constexpr Kernel kAvx2Kernel = {CodewordKernelTier::kAVX2, "avx2",
                                &ComputeAvx2, &FoldWith<&ComputeAvx2>};
#endif

const Kernel* KernelFor(CodewordKernelTier tier) {
  switch (tier) {
    case CodewordKernelTier::kScalar:
      return &kScalarKernel;
    case CodewordKernelTier::kWide64:
#if CWDB_LITTLE_ENDIAN
      return &kWide64Kernel;
#else
      return nullptr;
#endif
    case CodewordKernelTier::kSSE2:
#if defined(CWDB_HAVE_SSE2_KERNEL)
      return &kSse2Kernel;
#else
      return nullptr;
#endif
    case CodewordKernelTier::kAVX2:
#if defined(CWDB_HAVE_AVX2_KERNEL)
      // Compiled in, but only runnable where CPUID reports AVX2.
      return __builtin_cpu_supports("avx2") ? &kAvx2Kernel : nullptr;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

CodewordKernelTier DetectBestTier() {
  if (const char* env = std::getenv("CWDB_CODEWORD_KERNEL")) {
    for (CodewordKernelTier t :
         {CodewordKernelTier::kScalar, CodewordKernelTier::kWide64,
          CodewordKernelTier::kSSE2, CodewordKernelTier::kAVX2}) {
      if (std::strcmp(env, CodewordKernelTierName(t)) == 0 &&
          KernelFor(t) != nullptr) {
        return t;
      }
    }
    // Unknown or unsupported override: fall through to auto-detection.
  }
  for (CodewordKernelTier t :
       {CodewordKernelTier::kAVX2, CodewordKernelTier::kSSE2,
        CodewordKernelTier::kWide64}) {
    if (KernelFor(t) != nullptr) return t;
  }
  return CodewordKernelTier::kScalar;
}

/// The active kernel pointer. Initialized lazily; a racing first use is
/// benign (both initializers store the same detected pointer, and every
/// kernel computes identical values anyway).
std::atomic<const Kernel*> g_active{nullptr};

const Kernel* ActiveKernel() {
  const Kernel* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = KernelFor(DetectBestTier());
    g_active.store(k, std::memory_order_release);
  }
  return k;
}

}  // namespace

const char* CodewordKernelTierName(CodewordKernelTier tier) {
  switch (tier) {
    case CodewordKernelTier::kScalar:
      return "scalar";
    case CodewordKernelTier::kWide64:
      return "wide64";
    case CodewordKernelTier::kSSE2:
      return "sse2";
    case CodewordKernelTier::kAVX2:
      return "avx2";
  }
  return "unknown";
}

bool CodewordKernelSupported(CodewordKernelTier tier) {
  return KernelFor(tier) != nullptr;
}

CodewordKernelTier CodewordKernelBestTier() { return DetectBestTier(); }

CodewordKernelTier CodewordKernelActiveTier() { return ActiveKernel()->tier; }

bool CodewordKernelSetTier(CodewordKernelTier tier) {
  const Kernel* k = KernelFor(tier);
  if (k == nullptr) return false;
  g_active.store(k, std::memory_order_release);
  return true;
}

codeword_t CodewordComputeTier(CodewordKernelTier tier, const void* data,
                               size_t len) {
  const Kernel* k = KernelFor(tier);
  CWDB_CHECK(k != nullptr) << "codeword kernel tier "
                           << CodewordKernelTierName(tier)
                           << " not supported on this machine";
  return k->compute(data, len);
}

codeword_t CodewordFoldTier(CodewordKernelTier tier, size_t lane_offset,
                            const void* data, size_t len) {
  const Kernel* k = KernelFor(tier);
  CWDB_CHECK(k != nullptr) << "codeword kernel tier "
                           << CodewordKernelTierName(tier)
                           << " not supported on this machine";
  return k->fold(lane_offset, data, len);
}

// ---------------------------------------------------------------------------
// Public entry points (codeword.h): one relaxed pointer load, then the
// active tier. Callers — CodewordTable, the protection schemes, recovery's
// read-checksum evaluation — speed up with no call-site changes.
// ---------------------------------------------------------------------------

codeword_t CodewordCompute(const void* data, size_t len) {
  return ActiveKernel()->compute(data, len);
}

codeword_t CodewordFold(size_t lane_offset, const void* data, size_t len) {
  return ActiveKernel()->fold(lane_offset, data, len);
}

codeword_t CodewordDelta(size_t lane_offset, const void* before,
                         const void* after, size_t len) {
  const Kernel* k = ActiveKernel();
  return k->fold(lane_offset, before, len) ^ k->fold(lane_offset, after, len);
}

}  // namespace cwdb
