#ifndef CWDB_COMMON_CODEWORD_KERNEL_H_
#define CWDB_COMMON_CODEWORD_KERNEL_H_

#include <cstddef>
#include <cstdint>

#include "common/codeword.h"

namespace cwdb {

/// Tiered implementations of the codeword fold primitive (the XOR of the
/// 32-bit words of a byte range). Every codeword scheme bottlenecks on this
/// loop — it runs on each in-place update, each read precheck, each audit
/// slice and each post-checkpoint rebuild — so it gets the same treatment a
/// storage engine gives its checksum kernel:
///
///  * kScalar  — the 4-bytes-per-iteration reference loop. Always present;
///               selectable at runtime so any faster tier can be verified
///               against it.
///  * kWide64  — portable 8-bytes-per-load path: two 32-bit lanes ride in a
///               64-bit accumulator (unrolled 4x) and are combined with one
///               shift-XOR at the end. Works on any little-endian target.
///  * kSSE2    — 16-byte vector XOR (x86-64 baseline, compiled whenever the
///               target supports it).
///  * kAVX2    — 32-byte vector XOR, compiled behind a function-level
///               `target("avx2")` attribute and only ever *selected* when
///               CPUID reports AVX2, so the binary stays runnable on older
///               x86-64 parts.
///
/// Dispatch is one relaxed atomic pointer load; the public entry points in
/// codeword.h route through the active tier. All tiers produce bit-identical
/// results for every (lane_offset, data, len) — enforced by
/// codeword_kernel_test.
enum class CodewordKernelTier : uint8_t {
  kScalar = 0,
  kWide64 = 1,
  kSSE2 = 2,
  kAVX2 = 3,
};

/// Human-readable tier name ("scalar", "wide64", "sse2", "avx2").
const char* CodewordKernelTierName(CodewordKernelTier tier);

/// True if this build *and* this CPU can run `tier`.
bool CodewordKernelSupported(CodewordKernelTier tier);

/// The fastest supported tier on this machine (what dispatch picks by
/// default). Honors the CWDB_CODEWORD_KERNEL environment variable
/// ("scalar" | "wide64" | "sse2" | "avx2") as an operational override.
CodewordKernelTier CodewordKernelBestTier();

/// The tier the public CodewordCompute/CodewordFold entry points currently
/// dispatch to.
CodewordKernelTier CodewordKernelActiveTier();

/// Forces dispatch to `tier` (verification, benchmarking). Returns false —
/// leaving the active tier unchanged — if the tier is not supported here.
bool CodewordKernelSetTier(CodewordKernelTier tier);

/// Direct, non-dispatched entry points for one tier. Used by the
/// equivalence property test and the per-kernel benchmarks; callers must
/// check CodewordKernelSupported() first (an unsupported tier aborts).
codeword_t CodewordComputeTier(CodewordKernelTier tier, const void* data,
                               size_t len);
codeword_t CodewordFoldTier(CodewordKernelTier tier, size_t lane_offset,
                            const void* data, size_t len);

}  // namespace cwdb

#endif  // CWDB_COMMON_CODEWORD_KERNEL_H_
