#ifndef CWDB_COMMON_CODEWORD_H_
#define CWDB_COMMON_CODEWORD_H_

#include <cstddef>
#include <cstdint>

namespace cwdb {

/// Codeword arithmetic (paper, Section 3).
///
/// The codeword of a protection region is the bitwise exclusive-or of the
/// 32-bit words of the region: bit i of the codeword is the parity of bit i
/// across all words. Two properties make this cheap to maintain:
///
///  1. XOR is its own inverse, so an in-place update can adjust the stored
///     codeword incrementally from the undo image and the new value:
///         cw' = cw ^ fold(offset, before) ^ fold(offset, after)
///     with no need to rescan the whole region (Section 3.1, "the undo image
///     stored in the log and the current value of the updated region are
///     used to update the codeword").
///
///  2. The fold of a byte range depends only on the bytes and their byte
///     lane (offset mod 4) within the region, so unaligned updates that
///     cover partial words are handled by placing each byte into its lane.
///
/// A region whose length is not a multiple of 4 is treated as if it were
/// zero-padded to the next word boundary.
///
/// These entry points dispatch at runtime to the fastest codeword kernel
/// the machine supports (scalar reference, portable 64-bit wide, SSE2,
/// AVX2); see common/codeword_kernel.h to pin a tier for verification or
/// benchmarking. All tiers are bit-identical for every input.
using codeword_t = uint32_t;

/// Codeword of a whole region starting at `data` (lane 0), `len` bytes.
codeword_t CodewordCompute(const void* data, size_t len);

/// Positioned fold of `len` bytes that begin `lane_offset` bytes past some
/// word-aligned origin (a region start). XOR-ing folds of the before and
/// after images of an update into a stored codeword keeps it consistent.
codeword_t CodewordFold(size_t lane_offset, const void* data, size_t len);

/// Incremental maintenance: the delta to XOR into a stored codeword when
/// bytes at `lane_offset` change from `before` to `after` (`len` bytes).
codeword_t CodewordDelta(size_t lane_offset, const void* before,
                         const void* after, size_t len);

}  // namespace cwdb

#endif  // CWDB_COMMON_CODEWORD_H_
