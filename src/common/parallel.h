#ifndef CWDB_COMMON_PARALLEL_H_
#define CWDB_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cwdb {

/// Resolves a user-facing thread-count option: 0 means "one per hardware
/// thread", anything else is taken literally (minimum 1).
size_t EffectiveConcurrency(size_t requested);

/// A small fixed-size pool of worker threads for the bulk codeword sweeps
/// (RebuildAll, AuditAll, background-audit slices). Workers sit blocked on
/// a condition variable between calls, so an idle pool costs nothing but
/// stack space; the pool is created lazily by its owners precisely so that
/// single-threaded configurations never pay even that.
///
/// Only ParallelFor is offered — the sweeps are embarrassingly parallel
/// range partitions, and keeping the interface to "split [0, n) into
/// contiguous chunks, run them, wait" keeps the concurrency argument easy
/// to audit: no task ever outlives the ParallelFor call that spawned it.
class ThreadPool {
 public:
  /// `concurrency` counts the caller too: a pool built with concurrency c
  /// spawns c - 1 workers and runs the remaining chunk on the calling
  /// thread. concurrency <= 1 spawns nothing and ParallelFor runs inline.
  explicit ThreadPool(size_t concurrency);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the caller's).
  size_t concurrency() const { return workers_.size() + 1; }

  /// Partitions [0, n) into at most min(width, concurrency()) contiguous
  /// chunks and invokes body(begin, end) for each, one chunk per lane, then
  /// waits for all of them. `body` must be safe to call concurrently for
  /// disjoint ranges. Exceptions must not escape `body`.
  ///
  /// Serialized against itself: one ParallelFor runs at a time (the bulk
  /// sweeps are rare, and this keeps the pool trivially correct).
  void ParallelFor(uint64_t n, size_t width,
                   const std::function<void(uint64_t, uint64_t)>& body);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< Workers wait for a round.
  std::condition_variable done_cv_;   ///< ParallelFor waits for completion.
  std::mutex round_mu_;               ///< Serializes ParallelFor callers.

  // State of the current round, guarded by mu_.
  const std::function<void(uint64_t, uint64_t)>* body_ = nullptr;
  std::vector<std::pair<uint64_t, uint64_t>> chunks_;
  size_t next_chunk_ = 0;
  size_t pending_chunks_ = 0;
  uint64_t round_ = 0;
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace cwdb

#endif  // CWDB_COMMON_PARALLEL_H_
