#ifndef CWDB_COMMON_LOGGING_H_
#define CWDB_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace cwdb {
namespace internal_logging {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used by CWDB_CHECK; invariant violations in a storage manager must not
/// be allowed to keep running and corrupt persistent state further.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << "CWDB_CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

struct Voidify {
  // Lowest-precedence operator: lets the macro below swallow the stream
  // expression while keeping `CWDB_CHECK(x) << "msg"` well-formed.
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace cwdb

/// Always-on invariant check (release builds included). Database invariant
/// violations abort rather than continue with corrupt state.
#define CWDB_CHECK(expr)                                                   \
  (expr) ? (void)0                                                         \
         : ::cwdb::internal_logging::Voidify() &                           \
               ::cwdb::internal_logging::CheckFailure(__FILE__, __LINE__,  \
                                                      #expr)               \
                   .stream()

#ifndef NDEBUG
#define CWDB_DCHECK(expr) CWDB_CHECK(expr)
#else
#define CWDB_DCHECK(expr) \
  while (false) CWDB_CHECK(expr)
#endif

#endif  // CWDB_COMMON_LOGGING_H_
