#include "common/codeword.h"

#include <cstring>

namespace cwdb {

codeword_t CodewordCompute(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  codeword_t cw = 0;
  // Whole words first; memcpy keeps this alignment-safe and compiles to a
  // plain load on this platform.
  size_t words = len / 4;
  for (size_t i = 0; i < words; ++i) {
    uint32_t w;
    std::memcpy(&w, p + 4 * i, 4);
    cw ^= w;
  }
  // Tail bytes occupy the low lanes of a final zero-padded word.
  size_t tail = len & 3;
  if (tail != 0) {
    uint32_t w = 0;
    std::memcpy(&w, p + 4 * words, tail);
    cw ^= w;
  }
  return cw;
}

codeword_t CodewordFold(size_t lane_offset, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  codeword_t cw = 0;
  size_t i = 0;
  // Leading bytes until we reach a word boundary relative to the origin.
  size_t lane = lane_offset & 3;
  while (lane != 0 && i < len) {
    cw ^= static_cast<codeword_t>(p[i]) << (8 * lane);
    lane = (lane + 1) & 3;
    ++i;
  }
  // Aligned middle.
  while (i + 4 <= len) {
    uint32_t w;
    std::memcpy(&w, p + i, 4);
    cw ^= w;
    i += 4;
  }
  // Trailing bytes land in the low lanes of the next word.
  lane = 0;
  while (i < len) {
    cw ^= static_cast<codeword_t>(p[i]) << (8 * lane);
    ++lane;
    ++i;
  }
  return cw;
}

codeword_t CodewordDelta(size_t lane_offset, const void* before,
                         const void* after, size_t len) {
  return CodewordFold(lane_offset, before, len) ^
         CodewordFold(lane_offset, after, len);
}

}  // namespace cwdb
