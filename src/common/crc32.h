#ifndef CWDB_COMMON_CRC32_H_
#define CWDB_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace cwdb {

/// CRC-32C (Castagnoli). Used to frame records in the stable system log and
/// to validate checkpoint metadata; *not* used as the region codeword (the
/// paper's codeword is the XOR parity in codeword.h — CRC protects the I/O
/// path, codewords protect the in-memory image).
uint32_t Crc32c(const void* data, size_t len);

/// Streaming form: continue a CRC over another chunk.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

}  // namespace cwdb

#endif  // CWDB_COMMON_CRC32_H_
