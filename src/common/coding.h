#ifndef CWDB_COMMON_CODING_H_
#define CWDB_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace cwdb {

/// Little-endian fixed-width binary encoding helpers for log records and
/// checkpoint metadata. The host is little-endian; memcpy keeps the code
/// alignment-safe and the explicit helpers document intent at call sites.

inline void PutFixed16(std::string* dst, uint16_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutFixed32(std::string* dst, uint32_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutFixed8(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

/// Length-prefixed byte string.
inline void PutLengthPrefixed(std::string* dst, Slice value) {
  PutFixed32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

inline uint16_t DecodeFixed16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Sequential decoder over a byte buffer. Decoding failures (truncated
/// input) are flagged rather than aborting: log tails can legitimately be
/// torn at the last record.
class Decoder {
 public:
  explicit Decoder(Slice input) : p_(input.data()), end_(p_ + input.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  uint8_t GetFixed8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(*p_++);
  }
  uint16_t GetFixed16() {
    if (!Require(2)) return 0;
    uint16_t v = DecodeFixed16(p_);
    p_ += 2;
    return v;
  }
  uint32_t GetFixed32() {
    if (!Require(4)) return 0;
    uint32_t v = DecodeFixed32(p_);
    p_ += 4;
    return v;
  }
  uint64_t GetFixed64() {
    if (!Require(8)) return 0;
    uint64_t v = DecodeFixed64(p_);
    p_ += 8;
    return v;
  }
  Slice GetLengthPrefixed() {
    uint32_t n = GetFixed32();
    if (!Require(n)) return Slice();
    Slice s(p_, n);
    p_ += n;
    return s;
  }
  Slice GetBytes(size_t n) {
    if (!Require(n)) return Slice();
    Slice s(p_, n);
    p_ += n;
    return s;
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || static_cast<size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

}  // namespace cwdb

#endif  // CWDB_COMMON_CODING_H_
