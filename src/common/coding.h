#ifndef CWDB_COMMON_CODING_H_
#define CWDB_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace cwdb {

/// Little-endian fixed-width binary encoding helpers for log records and
/// checkpoint metadata. The host is little-endian; memcpy keeps the code
/// alignment-safe and the explicit helpers document intent at call sites.

inline void PutFixed16(std::string* dst, uint16_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutFixed32(std::string* dst, uint32_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutFixed8(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

/// Length-prefixed byte string.
inline void PutLengthPrefixed(std::string* dst, Slice value) {
  PutFixed32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

/// LEB128 varint: 7 value bits per byte, high bit = continuation. Used by
/// the delta-encoded metrics-history records, where successive samples of a
/// counter differ by small amounts and fixed64 would waste 7 bytes each.
inline void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

/// Zigzag-mapped signed varint (0,-1,1,-2,... -> 0,1,2,3,...), so small
/// negative deltas (a gauge dipping, a counter reset) stay one byte.
inline void PutVarintSigned(std::string* dst, int64_t v) {
  PutVarint64(dst, (static_cast<uint64_t>(v) << 1) ^
                       static_cast<uint64_t>(v >> 63));
}

inline int64_t ZigzagDecode(uint64_t u) {
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

inline uint16_t DecodeFixed16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Sequential decoder over a byte buffer. Decoding failures (truncated
/// input) are flagged rather than aborting: log tails can legitimately be
/// torn at the last record.
class Decoder {
 public:
  explicit Decoder(Slice input) : p_(input.data()), end_(p_ + input.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  uint8_t GetFixed8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(*p_++);
  }
  uint16_t GetFixed16() {
    if (!Require(2)) return 0;
    uint16_t v = DecodeFixed16(p_);
    p_ += 2;
    return v;
  }
  uint32_t GetFixed32() {
    if (!Require(4)) return 0;
    uint32_t v = DecodeFixed32(p_);
    p_ += 4;
    return v;
  }
  uint64_t GetFixed64() {
    if (!Require(8)) return 0;
    uint64_t v = DecodeFixed64(p_);
    p_ += 8;
    return v;
  }
  uint64_t GetVarint64() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!Require(1)) return 0;
      uint8_t byte = static_cast<uint8_t>(*p_++);
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    ok_ = false;  // Continuation bit past 64 value bits: malformed.
    return 0;
  }
  int64_t GetVarintSigned() { return ZigzagDecode(GetVarint64()); }
  Slice GetLengthPrefixed() {
    uint32_t n = GetFixed32();
    if (!Require(n)) return Slice();
    Slice s(p_, n);
    p_ += n;
    return s;
  }
  Slice GetBytes(size_t n) {
    if (!Require(n)) return Slice();
    Slice s(p_, n);
    p_ += n;
    return s;
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || static_cast<size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

}  // namespace cwdb

#endif  // CWDB_COMMON_CODING_H_
