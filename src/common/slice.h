#ifndef CWDB_COMMON_SLICE_H_
#define CWDB_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace cwdb {

/// A non-owning view of a byte range. Mirrors the classic storage-engine
/// Slice: cheap to copy, never owns, caller guarantees lifetime.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}          // NOLINT

  const char* data() const { return data_; }
  const unsigned char* udata() const {
    return reinterpret_cast<const unsigned char*>(data_);
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  bool operator==(const Slice& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace cwdb

#endif  // CWDB_COMMON_SLICE_H_
