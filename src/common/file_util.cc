#include "common/file_util.h"

#include <fcntl.h>
#include <libgen.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/crashpoint.h"

namespace cwdb {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// Crash-point name "<scope>.<site>", or nullptr when no scope is set.
/// Storage lives in `buf` so the callers stay allocation-free when off.
const char* ScopedPoint(const char* scope, const char* site,
                        std::string* buf) {
  if (scope == nullptr) return nullptr;
  *buf = std::string(scope) + "." + site;
  return buf->c_str();
}

Status CheckPoint(const char* name) {
  return name == nullptr ? Status::OK() : crashpoint::Check(name);
}

}  // namespace

Status ReadFileToString(const std::string& path, std::string* out,
                        MissingFile missing) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      if (missing == MissingFile::kTreatAsEmpty) {
        out->clear();
        return Status::OK();
      }
      return Status::NotFound("no such file: " + path);
    }
    return Errno("open", path);
  }
  out->clear();
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out->append(buf, static_cast<size_t>(n));
  }
  Status s = n < 0 ? Errno("read", path) : Status::OK();
  ::close(fd);
  return s;
}

Status WriteFileAtomic(const std::string& path, const std::string& data,
                       const char* crash_scope) {
  std::string point;
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  {
    // The tmp file is freshly truncated, so a sequential full write is a
    // positional write at offset 0.
    const char* p = ScopedPoint(crash_scope, "tmp_write", &point);
    Status s = p != nullptr
                   ? crashpoint::InjectedPWrite(p, fd, data.data(),
                                                data.size(), 0)
                   : PWriteAll(fd, data.data(), data.size(), 0);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
  }
  Status s = CheckPoint(ScopedPoint(crash_scope, "tmp_fsync", &point));
  if (s.ok() && ::fsync(fd) != 0) s = Errno("fsync", tmp);
  ::close(fd);
  CWDB_RETURN_IF_ERROR(s);
  CWDB_RETURN_IF_ERROR(CheckPoint(ScopedPoint(crash_scope, "rename", &point)));
  if (::rename(tmp.c_str(), path.c_str()) != 0) return Errno("rename", path);
  // fsync the directory so the rename itself is durable.
  CWDB_RETURN_IF_ERROR(
      CheckPoint(ScopedPoint(crash_scope, "dir_fsync", &point)));
  return FsyncParentDir(path);
}

Status PWriteAll(int fd, const void* data, size_t len, uint64_t offset) {
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pwrite(fd, p + done, len - done,
                         static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PReadAll(int fd, void* data, size_t len, uint64_t offset) {
  char* p = static_cast<char*>(data);
  size_t done = 0;
  while (done < len) {
    ssize_t n =
        ::pread(fd, p + done, len - done, static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IoError("pread: unexpected EOF");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status EnsureFileSize(const std::string& path, uint64_t size) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Errno("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("fstat", path);
    ::close(fd);
    return s;
  }
  Status s = Status::OK();
  if (static_cast<uint64_t>(st.st_size) != size) {
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      s = Errno("ftruncate", path);
    }
    // The new length (and, for a fresh file, its existence) must survive a
    // crash: a shorter-than-arena checkpoint image fails recovery's
    // PReadAll with "unexpected EOF".
    if (s.ok() && ::fsync(fd) != 0) s = Errno("fsync", path);
    if (s.ok()) s = FsyncParentDir(path);
  }
  ::close(fd);
  return s;
}

Status FsyncFd(int fd) {
  if (::fsync(fd) != 0) {
    return Status::IoError(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status FsyncParentDir(const std::string& path) {
  std::vector<char> dir(path.begin(), path.end());
  dir.push_back('\0');
  int dfd = ::open(::dirname(dir.data()), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Status MakeDirs(const std::string& path) {
  std::string partial;
  size_t pos = 0;
  while (pos < path.size()) {
    size_t next = path.find('/', pos + 1);
    if (next == std::string::npos) next = path.size();
    partial = path.substr(0, next);
    if (!partial.empty() && partial != "/") {
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return Errno("mkdir", partial);
      }
    }
    pos = next;
  }
  return Status::OK();
}

}  // namespace cwdb
