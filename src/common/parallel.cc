#include "common/parallel.h"

#include <algorithm>

namespace cwdb {

size_t EffectiveConcurrency(size_t requested) {
  if (requested != 0) return std::max<size_t>(requested, 1);
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(size_t concurrency) {
  size_t workers = concurrency > 1 ? concurrency - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_round = 0;
  std::unique_lock<std::mutex> guard(mu_);
  while (true) {
    work_cv_.wait(guard,
                  [&] { return stop_ || (round_ != seen_round && body_); });
    if (stop_) return;
    seen_round = round_;
    while (next_chunk_ < chunks_.size()) {
      auto [begin, end] = chunks_[next_chunk_++];
      guard.unlock();
      (*body_)(begin, end);
      guard.lock();
      if (--pending_chunks_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    uint64_t n, size_t width,
    const std::function<void(uint64_t, uint64_t)>& body) {
  if (n == 0) return;
  size_t lanes = std::min<size_t>(std::max<size_t>(width, 1), concurrency());
  lanes = static_cast<size_t>(std::min<uint64_t>(lanes, n));
  if (lanes <= 1) {
    body(0, n);
    return;
  }
  // One ParallelFor at a time; later callers queue here.
  std::lock_guard<std::mutex> round_guard(round_mu_);
  {
    std::lock_guard<std::mutex> guard(mu_);
    chunks_.clear();
    uint64_t base = n / lanes, extra = n % lanes;
    uint64_t begin = 0;
    for (size_t i = 0; i < lanes; ++i) {
      uint64_t end = begin + base + (i < extra ? 1 : 0);
      chunks_.emplace_back(begin, end);
      begin = end;
    }
    body_ = &body;
    next_chunk_ = 0;
    pending_chunks_ = chunks_.size();
    ++round_;
  }
  work_cv_.notify_all();
  // The caller is a lane too: steal chunks alongside the workers.
  {
    std::unique_lock<std::mutex> guard(mu_);
    while (next_chunk_ < chunks_.size()) {
      auto [begin, end] = chunks_[next_chunk_++];
      guard.unlock();
      body(begin, end);
      guard.lock();
      if (--pending_chunks_ == 0) done_cv_.notify_all();
    }
    done_cv_.wait(guard, [&] { return pending_chunks_ == 0; });
    body_ = nullptr;
  }
}

}  // namespace cwdb
