#include "common/crc32.h"

namespace cwdb {

namespace {

// Table-driven CRC-32C, generated at first use (polynomial 0x82F63B78,
// reflected).
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const Crc32cTable& t = Table();
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = t.entries[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

}  // namespace cwdb
