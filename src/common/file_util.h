#ifndef CWDB_COMMON_FILE_UTIL_H_
#define CWDB_COMMON_FILE_UTIL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace cwdb {

/// Small POSIX file helpers used by the checkpointer and recovery. All
/// return Status; none throw.

/// What ReadFileToString does when the file does not exist.
enum class MissingFile {
  kError,         ///< Return NotFound.
  kTreatAsEmpty,  ///< Return OK with *out empty (a never-written log).
};

/// Reads the whole file into *out. A missing file follows `missing`.
Status ReadFileToString(const std::string& path, std::string* out,
                        MissingFile missing = MissingFile::kError);

/// Writes `data` to a temp file, fsyncs, renames over `path`, and fsyncs
/// the parent directory — the classic atomic small-file update (used for
/// the checkpoint anchor and side notes). When `crash_scope` is non-null,
/// the four internal durability boundaries are crash points named
/// <scope>.tmp_write, <scope>.tmp_fsync, <scope>.rename and
/// <scope>.dir_fsync (see common/crashpoint.h).
Status WriteFileAtomic(const std::string& path, const std::string& data,
                       const char* crash_scope = nullptr);

/// pwrite the full buffer at `offset` of the (pre-opened) fd.
Status PWriteAll(int fd, const void* data, size_t len, uint64_t offset);

/// pread exactly `len` bytes at `offset`.
Status PReadAll(int fd, void* data, size_t len, uint64_t offset);

/// Creates (if absent) a file of exactly `size` bytes. Any creation or
/// resize is made durable (file fsync + parent directory fsync) before
/// returning, so a crash cannot leave the file shorter than `size`.
Status EnsureFileSize(const std::string& path, uint64_t size);

Status FsyncFd(int fd);

/// fsyncs the directory containing `path` (durability of a creation or
/// rename within it). Best-effort on filesystems without directory fds.
Status FsyncParentDir(const std::string& path);

bool FileExists(const std::string& path);

Status RemoveFileIfExists(const std::string& path);

/// mkdir -p.
Status MakeDirs(const std::string& path);

}  // namespace cwdb

#endif  // CWDB_COMMON_FILE_UTIL_H_
