#ifndef CWDB_COMMON_FILE_UTIL_H_
#define CWDB_COMMON_FILE_UTIL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace cwdb {

/// Small POSIX file helpers used by the checkpointer and recovery. All
/// return Status; none throw.

/// Reads the whole file into *out. NotFound if it does not exist.
Status ReadFileToString(const std::string& path, std::string* out);

/// Writes `data` to a temp file, fsyncs, renames over `path`, and fsyncs
/// the parent directory — the classic atomic small-file update (used for
/// the checkpoint anchor and side notes).
Status WriteFileAtomic(const std::string& path, const std::string& data);

/// pwrite the full buffer at `offset` of the (pre-opened) fd.
Status PWriteAll(int fd, const void* data, size_t len, uint64_t offset);

/// pread exactly `len` bytes at `offset`.
Status PReadAll(int fd, void* data, size_t len, uint64_t offset);

/// Creates (if absent) a file of exactly `size` bytes.
Status EnsureFileSize(const std::string& path, uint64_t size);

Status FsyncFd(int fd);

bool FileExists(const std::string& path);

Status RemoveFileIfExists(const std::string& path);

/// mkdir -p.
Status MakeDirs(const std::string& path);

}  // namespace cwdb

#endif  // CWDB_COMMON_FILE_UTIL_H_
