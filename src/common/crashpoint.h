#ifndef CWDB_COMMON_CRASHPOINT_H_
#define CWDB_COMMON_CRASHPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace cwdb {
namespace crashpoint {

/// Crash points: named fault sites compiled into every durability boundary
/// of the engine (WAL pwrite/fdatasync, checkpoint page writes and fsync,
/// checkpoint meta, the anchor toggle, archive copies). A crash-point
/// torture run arms one point and drives a workload; the point then either
/// kills the process mid-operation, fails the I/O, tears the write, or
/// corrupts it — the four failure shapes a real system must survive.
///
/// Arming is per-process (the registry is a process-wide singleton) via
/// Arm()/ArmFromString(), or via the environment:
///
///   CWDB_CRASHPOINT="wal.flush.fdatasync=abort"
///   CWDB_CRASHPOINT="ckpt.page.pwrite=torn:3:100,ckpt.meta.rename=eio"
///
/// parsed once, at the first crash-point hit. Every hit of every point is
/// counted whether or not it fires, so a torture driver can prove its
/// workload actually reaches the boundary it is testing.

/// What an armed point does when its countdown expires. A point fires once
/// and disarms itself (so a failed I/O can be retried cleanly).
enum class Mode {
  kOff,        ///< Not armed.
  kAbort,      ///< _exit(kCrashExitCode) before the operation runs.
  kEio,        ///< Fail with an injected IoError; the I/O is not performed.
  kTornWrite,  ///< Write only a prefix of the buffer, then abort. At a
               ///< non-write point this degrades to kAbort.
  kBitFlip,    ///< Flip one bit of the buffer, perform the write, continue.
               ///< At a non-write point this is a no-op.
};

/// Exit code of injected aborts, so a supervising process can tell an
/// intentional crash from any other death.
constexpr int kCrashExitCode = 42;

struct Spec {
  Mode mode = Mode::kOff;
  /// Fires on the countdown-th hit of the point after arming (1 = next).
  uint32_t countdown = 1;
  /// kTornWrite: bytes of the buffer to keep (0 = half).
  /// kBitFlip: bit index into the buffer (taken modulo the buffer size).
  uint64_t param = 0;
};

void Arm(const std::string& name, const Spec& spec);
void Disarm(const std::string& name);
void DisarmAll();

/// Observes armed-set changes: called with a rendered "name=mode:countdown"
/// comma list (empty string = nothing armed) on every Arm/Disarm and on a
/// point's one-shot self-disarm, plus once at installation with the current
/// set. The flight recorder mirrors this into the black box so a postmortem
/// shows which points were live when the process died. Called under the
/// registry lock: the observer must not call back into crashpoint:: and
/// must be async-light (the flight recorder's seqlocked text store is).
/// Pass nullptr to uninstall. Process-wide, like the registry itself.
void SetArmObserver(std::function<void(const std::string&)> observer);

/// Parses and arms one or more comma-separated specs of the form
/// "name=mode[:countdown[:param]]", mode in {abort, eio, torn, bitflip}.
Status ArmFromString(const std::string& specs);

/// Times `name` has been reached since process start (fired or not).
uint64_t Hits(const std::string& name);

/// Times any armed point has fired. Only the surviving modes (kEio,
/// kBitFlip) can observe a non-zero value — the others never return.
uint64_t Fired();

/// Every crash point compiled into the engine, in stable order; the
/// torture matrix sweeps this list. Keep in sync with the call sites.
const std::vector<std::string>& AllPoints();

/// True if the point wraps a write (kTornWrite / kBitFlip meaningful).
bool IsWritePoint(const std::string& name);

/// A non-write durability boundary (fsync, rename, ftruncate). Returns an
/// injected IoError in kEio mode, dies in kAbort/kTornWrite mode, OK
/// otherwise.
Status Check(const char* name);

/// A full positional write through a crash boundary: PWriteAll with the
/// armed mode applied first — kEio fails without writing, kAbort dies
/// before writing, kTornWrite writes a prefix and dies, kBitFlip flips a
/// bit and carries on.
Status InjectedPWrite(const char* name, int fd, const void* data, size_t len,
                      uint64_t offset);

}  // namespace crashpoint
}  // namespace cwdb

#endif  // CWDB_COMMON_CRASHPOINT_H_
