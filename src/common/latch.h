#ifndef CWDB_COMMON_LATCH_H_
#define CWDB_COMMON_LATCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "common/logging.h"

namespace cwdb {

/// Short-duration shared/exclusive latch (storage-manager sense: protects
/// physical consistency, not transactional isolation — those are locks, see
/// txn/lock_manager.h).
class Latch {
 public:
  Latch() = default;
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void LockExclusive() { mu_.lock(); }
  void UnlockExclusive() { mu_.unlock(); }
  void LockShared() { mu_.lock_shared(); }
  void UnlockShared() { mu_.unlock_shared(); }
  bool TryLockExclusive() { return mu_.try_lock(); }

 private:
  std::shared_mutex mu_;
};

/// RAII guards.
class ExclusiveGuard {
 public:
  explicit ExclusiveGuard(Latch& latch) : latch_(latch) {
    latch_.LockExclusive();
  }
  ~ExclusiveGuard() { latch_.UnlockExclusive(); }
  ExclusiveGuard(const ExclusiveGuard&) = delete;
  ExclusiveGuard& operator=(const ExclusiveGuard&) = delete;

 private:
  Latch& latch_;
};

class SharedGuard {
 public:
  explicit SharedGuard(Latch& latch) : latch_(latch) { latch_.LockShared(); }
  ~SharedGuard() { latch_.UnlockShared(); }
  SharedGuard(const SharedGuard&) = delete;
  SharedGuard& operator=(const SharedGuard&) = delete;

 private:
  Latch& latch_;
};

/// Fixed pool of latches indexed by hashing a key (paper, Sections 3.1/3.2:
/// one protection latch per protection region). With 64-byte regions a
/// per-region latch would dwarf the data, so regions share latches by
/// striping; correctness only requires that a region maps to a stable
/// stripe. Stripe count is a power of two.
class StripedLatchTable {
 public:
  explicit StripedLatchTable(size_t stripes = 1024)
      : mask_(stripes - 1), latches_(new Latch[stripes]) {
    CWDB_CHECK((stripes & mask_) == 0) << "stripe count must be a power of 2";
  }

  size_t stripe_count() const { return mask_ + 1; }

  /// Stable stripe index for a region id.
  size_t StripeOf(uint64_t region_id) const {
    // Fibonacci hash spreads consecutive region ids across stripes.
    return static_cast<size_t>((region_id * 0x9E3779B97F4A7C15ull) >> 32) &
           mask_;
  }

  Latch& LatchFor(uint64_t region_id) {
    return latches_[StripeOf(region_id)];
  }
  Latch& LatchAt(size_t stripe) { return latches_[stripe]; }

 private:
  size_t mask_;
  std::unique_ptr<Latch[]> latches_;
};

}  // namespace cwdb

#endif  // CWDB_COMMON_LATCH_H_
