#ifndef CWDB_COMMON_JSON_H_
#define CWDB_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace cwdb {

/// Minimal JSON document model for the engine's own machine-readable
/// artifacts (metrics.json, incidents.jsonl, recovery_provenance.json).
/// It exists so offline tools (`cwdb_ctl trace|incidents|explain-recovery`)
/// can decode what the engine wrote without an external dependency; it is
/// not a general-purpose JSON library (no \uXXXX surrogate pairs, numbers
/// are kept as their source token so 64-bit nanosecond timestamps survive
/// without a double round-trip).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }

  bool bool_value() const { return bool_; }
  /// Unescaped string contents.
  const std::string& string_value() const { return str_; }
  /// The raw number token (e.g. "18446744073709551615").
  const std::string& number_token() const { return str_; }
  uint64_t AsU64() const;
  int64_t AsI64() const;
  double AsDouble() const;

  const std::vector<JsonValue>& array() const { return arr_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return obj_;
  }

  /// First member named `key`; nullptr if absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Find + AsU64, with `fallback` when the member is absent.
  uint64_t U64(std::string_view key, uint64_t fallback = 0) const;
  /// Find + string_value, empty when absent.
  std::string Str(std::string_view key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string str_;  ///< String contents or raw number token.
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
Result<JsonValue> ParseJson(std::string_view text);

/// Appends `s` JSON-escaped (quotes not included).
void JsonAppendEscaped(std::string* out, std::string_view s);
/// `"s"` with escaping.
std::string JsonQuote(std::string_view s);

}  // namespace cwdb

#endif  // CWDB_COMMON_JSON_H_
