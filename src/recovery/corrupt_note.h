#ifndef CWDB_RECOVERY_CORRUPT_NOTE_H_
#define CWDB_RECOVERY_CORRUPT_NOTE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "protect/protection.h"
#include "wal/log_record.h"

namespace cwdb {

/// Side note written when an audit fails (paper §4.3: "On detecting an
/// error, we simply note the region(s) failing the audit, and cause the
/// database to crash"). Recovery reads it to drive the delete-transaction
/// algorithm.
struct CorruptionNote {
  /// Audit_SN / Audit_LSN: the log position at which the last *clean* audit
  /// began. Data certified clean before this point; the recovery algorithm
  /// conservatively assumes the error occurred immediately after it.
  Lsn last_clean_audit_lsn = 0;
  /// Regions the failing audit found inconsistent with their codewords.
  std::vector<CorruptRange> ranges;
  /// Id of the incident dossier filed for this detection (incidents.jsonl),
  /// so the post-crash restart can link its recovery provenance back to the
  /// full forensic record. 0 = none (or a pre-dossier note file).
  uint64_t incident_id = 0;
};

Status WriteCorruptionNote(const std::string& path,
                           const CorruptionNote& note);
Result<CorruptionNote> ReadCorruptionNote(const std::string& path);

/// audit.meta: the LSN at which the most recent clean audit began
/// (including checkpoint certification audits).
Status WriteAuditMeta(const std::string& path, Lsn last_clean_audit_lsn);
Result<Lsn> ReadAuditMeta(const std::string& path);

}  // namespace cwdb

#endif  // CWDB_RECOVERY_CORRUPT_NOTE_H_
