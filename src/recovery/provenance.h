#ifndef CWDB_RECOVERY_PROVENANCE_H_
#define CWDB_RECOVERY_PROVENANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/db_image.h"
#include "storage/layout.h"
#include "wal/log_record.h"

namespace cwdb {

/// Why the delete-transaction algorithm (§4.3) implicated a transaction.
enum class ProvenanceReason : uint8_t {
  kReadCorruptRange = 0,     ///< A logged read overlapped corrupt data.
  kWroteCorruptRange = 1,    ///< A physical write overlapped corrupt data.
  kChecksumMismatch = 2,     ///< Logged read checksum != recovered image.
  kConflictWithUndo = 3,     ///< Begin-op conflicted with a corrupt txn's
                             ///< undo log (would block its rollback).
  kCommittedAfterLimit = 4,  ///< Prior-state model: committed at/after the
                             ///< redo limit.
};

const char* ProvenanceReasonName(ProvenanceReason r);

/// One implication: `txn` became corrupt/deleted because of `reason`,
/// observed at log position `at_lsn`, through byte range `via` (when range
/// based). `from_txn` is the upstream corrupt transaction whose taint
/// propagated — 0 means the taint came straight from the incident's
/// directly-corrupt ranges (the roots).
struct ProvenanceEdge {
  TxnId txn = 0;
  ProvenanceReason reason = ProvenanceReason::kReadCorruptRange;
  Lsn at_lsn = 0;
  CorruptRange via;
  TxnId from_txn = 0;
};

/// The implication chain recovery followed: corrupt range → reader txn →
/// its writes → further readers. Exactly one edge per implicated
/// transaction (the first implication wins; later ones are redundant for
/// the delete decision).
struct ProvenanceGraph {
  uint64_t incident_id = 0;          ///< Dossier that triggered recovery.
  Lsn last_clean_audit_lsn = 0;
  std::vector<CorruptRange> roots;   ///< The incident's corrupt ranges.
  std::vector<ProvenanceEdge> edges;

  const ProvenanceEdge* EdgeFor(TxnId txn) const;

  /// The reason path for `txn`: its own edge first, then each upstream
  /// carrier's, ending at the edge whose from_txn is 0 (rooted in the
  /// incident ranges). Empty if `txn` has no edge. Cycle-safe.
  std::vector<const ProvenanceEdge*> PathFor(TxnId txn) const;

  /// Pretty-printed JSON. With `image`, root ranges carry their
  /// page/table/record attribution.
  std::string ToJson(const DbImage* image = nullptr) const;
  /// Graphviz DOT: range roots as boxes, transactions as ellipses.
  std::string ToDot() const;
};

}  // namespace cwdb

#endif  // CWDB_RECOVERY_PROVENANCE_H_
