#ifndef CWDB_RECOVERY_RECOVERY_H_
#define CWDB_RECOVERY_RECOVERY_H_

#include <set>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/result.h"
#include "common/status.h"
#include "protect/protection.h"
#include "recovery/corrupt_note.h"
#include "recovery/interval_set.h"
#include "recovery/provenance.h"
#include "storage/db_image.h"
#include "txn/txn_manager.h"
#include "wal/system_log.h"

namespace cwdb {

/// How the restart should treat corruption.
struct RecoveryOptions {
  /// Run the delete-transaction corruption recovery algorithm (§4.3)
  /// instead of plain restart recovery.
  bool corruption_recovery = false;

  /// The failing audit's note (Audit_LSN + directly corrupt regions). Used
  /// only when corruption_recovery is true.
  CorruptionNote note;

  /// Codeword Read Logging extension (§4.3): decide "read corrupt data"
  /// from logged checksums compared against the image being recovered,
  /// instead of the CorruptDataTable. Yields view-consistent recovery and
  /// also detects corruption after a true crash (no failed audit needed).
  bool use_logged_checksums = false;

  /// Prior-state model (§4.1): replay only log records below this LSN,
  /// returning the database to a transaction-consistent state before the
  /// first possible occurrence of corruption. Every transaction that
  /// committed at or after the limit is discarded and reported in
  /// deleted_txns ("it is up to the user to deal with compensating for
  /// ALL transactions which have occurred after the corruption"). The
  /// active checkpoint's CK_end must precede the limit. kInvalidLsn
  /// disables the limit.
  Lsn redo_limit = kInvalidLsn;
};

/// What recovery did — in the delete-transaction model the identity of the
/// deleted transactions "is returned to the user to allow manual
/// compensation" (§4.1).
struct RecoveryReport {
  std::vector<TxnId> deleted_txns;      ///< Removed from history (corrupt).
  std::vector<TxnId> rolled_back_txns;  ///< Merely incomplete at the crash.
  Lsn redo_start = 0;
  Lsn redo_end = 0;
  uint64_t redo_records_applied = 0;
  uint64_t redo_records_skipped = 0;  ///< Writes of deleted transactions.
  uint64_t corrupt_data_bytes = 0;    ///< Final CorruptDataTable coverage.

  /// Why each deleted transaction was deleted: the implication chain from
  /// the incident's corrupt ranges to every entry of deleted_txns. Also
  /// persisted to DbFiles::ProvenanceFile() in corruption-recovery runs.
  ProvenanceGraph provenance;
};

/// Restart recovery (paper §2.1) with optional delete-transaction
/// corruption recovery (§4.3) layered on the same forward scan:
///
///  1. Load the active (update-consistent, certified) checkpoint image and
///     its ATT; redo from CK_end repeating history physically, rebuilding
///     local undo logs (physical entries replaced by logical undo at each
///     operation commit).
///  2. In corruption mode, maintain CorruptTransTable / CorruptDataTable:
///     writes of corrupt transactions are suppressed and their target
///     bytes marked corrupt; reads (and writes) of corrupt bytes make the
///     reader corrupt; begin-operation records conflicting with a corrupt
///     transaction's undo log make that transaction corrupt too.
///  3. Undo incomplete transactions level by level (physical entries of
///     open operations first, then logical undo), corrupt transactions'
///     pre-corruption prefixes included.
///  4. Take a fresh (certified) checkpoint so a later crash cannot
///     rediscover the same corruption.
class RecoveryDriver {
 public:
  RecoveryDriver(const DbFiles& files, DbImage* image, TxnManager* txns,
                 SystemLog* log, ProtectionManager* protection,
                 Checkpointer* checkpointer);

  Result<RecoveryReport> Run(const RecoveryOptions& options);

 private:
  struct ConflictSet {
    std::set<std::pair<TableId, uint32_t>> targets;
    std::vector<CorruptRange> ranges;
  };

  /// Applies one physical redo record to the image, appending the
  /// pre-image to the transaction's undo log.
  void ApplyRedo(Transaction* txn, const LogRecord& rec);

  /// True if `txn` must be considered to have read corrupt data given this
  /// read/write record (§4.3 definition, both variants).
  bool ReadsCorruptData(const LogRecord& rec) const;

  /// Conflict targets/ranges of one operation-begin record.
  ConflictSet TargetsOf(const LogRecord& rec) const;
  /// Conflict set of a corrupt transaction's current undo log.
  ConflictSet TargetsOfUndoLog(const Transaction& txn) const;
  static bool Conflicts(const ConflictSet& a, const ConflictSet& b);
  /// Conflicts() plus the overlapping byte range that witnesses the
  /// conflict (zero-length when the conflict is target-based only).
  static bool ConflictWitness(const ConflictSet& a, const ConflictSet& b,
                              CorruptRange* witness);

  DbFiles files_;
  DbImage* image_;
  TxnManager* txns_;
  SystemLog* log_;
  ProtectionManager* protection_;
  Checkpointer* checkpointer_;

  RecoveryOptions options_;
  std::set<TxnId> corrupt_txns_;
  IntervalSet corrupt_data_;
  uint64_t suppressed_bytes_ = 0;
  std::map<TxnId, ConflictSet> corrupt_conflicts_;
};

/// Cache-recovery model (§4.1/§4.2): repairs directly corrupted regions of
/// the in-memory image from the checkpoint plus the redo log, assuming no
/// indirect corruption (the Read Prechecking scheme guarantees corrupt data
/// was never returned to a transaction). Requires a quiesced system: no
/// active transactions (abort them first) and a flushed log.
Status CacheRecoverRegions(const DbFiles& files, DbImage* image,
                           TxnManager* txns, SystemLog* log,
                           ProtectionManager* protection,
                           Checkpointer* checkpointer,
                           const std::vector<CorruptRange>& ranges);

}  // namespace cwdb

#endif  // CWDB_RECOVERY_RECOVERY_H_
