#include "recovery/corrupt_note.h"

#include "common/coding.h"
#include "common/crc32.h"
#include "common/file_util.h"

namespace cwdb {

namespace {

constexpr uint64_t kNoteMagic = 0x434F52525550544Eull;   // "CORRUPTN"
constexpr uint64_t kAuditMagic = 0x41554449544D4554ull;  // "AUDITMET"

std::string Sealed(const std::string& body) {
  std::string out = body;
  PutFixed32(&out, Crc32c(body.data(), body.size()));
  return out;
}

Status Unseal(const std::string& contents, std::string* body) {
  if (contents.size() < 4) return Status::Corruption("note too short");
  *body = contents.substr(0, contents.size() - 4);
  uint32_t crc = DecodeFixed32(contents.data() + contents.size() - 4);
  if (Crc32c(body->data(), body->size()) != crc) {
    return Status::Corruption("note CRC mismatch");
  }
  return Status::OK();
}

}  // namespace

Status WriteCorruptionNote(const std::string& path,
                           const CorruptionNote& note) {
  std::string body;
  PutFixed64(&body, kNoteMagic);
  PutFixed64(&body, note.last_clean_audit_lsn);
  PutFixed32(&body, static_cast<uint32_t>(note.ranges.size()));
  for (const CorruptRange& r : note.ranges) {
    PutFixed64(&body, r.off);
    PutFixed64(&body, r.len);
  }
  // Trailing optional field: readers that predate it stop at the range
  // list, readers that know it check the remaining byte count.
  PutFixed64(&body, note.incident_id);
  return WriteFileAtomic(path, Sealed(body));
}

Result<CorruptionNote> ReadCorruptionNote(const std::string& path) {
  std::string contents;
  CWDB_RETURN_IF_ERROR(ReadFileToString(path, &contents));
  std::string body;
  CWDB_RETURN_IF_ERROR(Unseal(contents, &body));
  Decoder dec(body);
  if (dec.GetFixed64() != kNoteMagic) {
    return Status::Corruption("bad corruption-note magic");
  }
  CorruptionNote note;
  note.last_clean_audit_lsn = dec.GetFixed64();
  uint32_t n = dec.GetFixed32();
  for (uint32_t i = 0; i < n && dec.ok(); ++i) {
    CorruptRange r;
    r.off = dec.GetFixed64();
    r.len = dec.GetFixed64();
    note.ranges.push_back(r);
  }
  if (!dec.ok()) return Status::Corruption("truncated corruption note");
  if (dec.remaining() >= 8) note.incident_id = dec.GetFixed64();
  return note;
}

Status WriteAuditMeta(const std::string& path, Lsn last_clean_audit_lsn) {
  std::string body;
  PutFixed64(&body, kAuditMagic);
  PutFixed64(&body, last_clean_audit_lsn);
  return WriteFileAtomic(path, Sealed(body));
}

Result<Lsn> ReadAuditMeta(const std::string& path) {
  std::string contents;
  CWDB_RETURN_IF_ERROR(ReadFileToString(path, &contents));
  std::string body;
  CWDB_RETURN_IF_ERROR(Unseal(contents, &body));
  Decoder dec(body);
  if (dec.GetFixed64() != kAuditMagic) {
    return Status::Corruption("bad audit-meta magic");
  }
  Lsn lsn = dec.GetFixed64();
  if (!dec.ok()) return Status::Corruption("truncated audit meta");
  return lsn;
}

}  // namespace cwdb
