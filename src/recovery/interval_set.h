#ifndef CWDB_RECOVERY_INTERVAL_SET_H_
#define CWDB_RECOVERY_INTERVAL_SET_H_

#include <cstdint>
#include <map>

namespace cwdb {

/// Set of disjoint half-open byte intervals [start, end) over the database
/// image; adjacent/overlapping inserts are coalesced. This is the
/// CorruptDataTable of the delete-transaction recovery algorithm (§4.3):
/// every byte a deleted transaction would have written is recorded here so
/// later readers of those bytes can be detected.
class IntervalSet {
 public:
  void Insert(uint64_t start, uint64_t len) {
    if (len == 0) return;
    uint64_t end = start + len;
    // Find the first interval that could touch [start, end).
    auto it = intervals_.upper_bound(start);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) {  // Overlaps or abuts on the left.
        it = prev;
        start = prev->first;
      }
    }
    while (it != intervals_.end() && it->first <= end) {
      end = std::max(end, it->second);
      it = intervals_.erase(it);
    }
    intervals_[start] = end;
  }

  bool Overlaps(uint64_t start, uint64_t len) const {
    if (len == 0) return false;
    uint64_t end = start + len;
    auto it = intervals_.upper_bound(start);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > start) return true;
    }
    return it != intervals_.end() && it->first < end;
  }

  bool empty() const { return intervals_.empty(); }
  size_t size() const { return intervals_.size(); }
  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const auto& [s, e] : intervals_) total += e - s;
    return total;
  }

  const std::map<uint64_t, uint64_t>& intervals() const { return intervals_; }

 private:
  std::map<uint64_t, uint64_t> intervals_;  // start -> end.
};

}  // namespace cwdb

#endif  // CWDB_RECOVERY_INTERVAL_SET_H_
