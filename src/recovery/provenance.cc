#include "recovery/provenance.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <set>

#include "common/json.h"
#include "storage/attribution.h"

namespace cwdb {
namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

}  // namespace

const char* ProvenanceReasonName(ProvenanceReason r) {
  switch (r) {
    case ProvenanceReason::kReadCorruptRange: return "read_corrupt_range";
    case ProvenanceReason::kWroteCorruptRange: return "wrote_corrupt_range";
    case ProvenanceReason::kChecksumMismatch: return "checksum_mismatch";
    case ProvenanceReason::kConflictWithUndo: return "conflict_with_undo";
    case ProvenanceReason::kCommittedAfterLimit:
      return "committed_after_limit";
  }
  return "unknown";
}

const ProvenanceEdge* ProvenanceGraph::EdgeFor(TxnId txn) const {
  for (const ProvenanceEdge& e : edges) {
    if (e.txn == txn) return &e;
  }
  return nullptr;
}

std::vector<const ProvenanceEdge*> ProvenanceGraph::PathFor(TxnId txn) const {
  std::vector<const ProvenanceEdge*> path;
  std::set<TxnId> seen;
  const ProvenanceEdge* e = EdgeFor(txn);
  while (e != nullptr && seen.insert(e->txn).second) {
    path.push_back(e);
    if (e->from_txn == 0) break;
    e = EdgeFor(e->from_txn);
  }
  return path;
}

std::string ProvenanceGraph::ToJson(const DbImage* image) const {
  std::string out = "{\n";
  Appendf(&out, "  \"incident_id\": %" PRIu64 ",\n", incident_id);
  Appendf(&out, "  \"last_clean_audit_lsn\": %" PRIu64 ",\n",
          last_clean_audit_lsn);
  out += "  \"roots\": [";
  bool first = true;
  for (const CorruptRange& r : roots) {
    if (!first) out.push_back(',');
    first = false;
    Appendf(&out, "\n    {\"off\": %" PRIu64 ", \"len\": %" PRIu64, r.off,
            r.len);
    if (image != nullptr) {
      out += ", \"attribution\": [";
      bool afirst = true;
      for (const RangeAttribution& a : AttributeRange(*image, r.off, r.len)) {
        if (!afirst) out.push_back(',');
        afirst = false;
        Appendf(&out,
                "{\"kind\": \"%s\", \"page_first\": %" PRIu64
                ", \"page_last\": %" PRIu64,
                ImageAreaKindName(a.kind), a.page_first, a.page_last);
        if (a.kind == ImageAreaKind::kRecordData ||
            a.kind == ImageAreaKind::kBitmap) {
          Appendf(&out, ", \"table\": %u, \"table_name\": ",
                  static_cast<unsigned>(a.table));
          out += JsonQuote(a.table_name);
        }
        if (a.kind == ImageAreaKind::kRecordData &&
            a.first_slot != kInvalidSlot) {
          Appendf(&out, ", \"first_slot\": %u, \"last_slot\": %u",
                  a.first_slot, a.last_slot);
        }
        out.push_back('}');
      }
      out.push_back(']');
    }
    out.push_back('}');
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"edges\": [";
  first = true;
  for (const ProvenanceEdge& e : edges) {
    if (!first) out.push_back(',');
    first = false;
    Appendf(&out,
            "\n    {\"txn\": %" PRIu64 ", \"reason\": \"%s\", \"at_lsn\": %"
            PRIu64 ", \"via_off\": %" PRIu64 ", \"via_len\": %" PRIu64
            ", \"from_txn\": %" PRIu64 "}",
            e.txn, ProvenanceReasonName(e.reason), e.at_lsn, e.via.off,
            e.via.len, e.from_txn);
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string ProvenanceGraph::ToDot() const {
  std::string out = "digraph recovery_provenance {\n  rankdir=LR;\n";
  Appendf(&out, "  label=\"incident %" PRIu64 " — delete-transaction "
          "implication chain\";\n", incident_id);
  std::set<uint64_t> root_nodes;
  for (size_t i = 0; i < roots.size(); ++i) {
    Appendf(&out,
            "  range%zu [shape=box, style=filled, fillcolor=\"#f4cccc\", "
            "label=\"corrupt bytes\\n[%" PRIu64 ",+%" PRIu64 ")\"];\n",
            i, roots[i].off, roots[i].len);
  }
  for (const ProvenanceEdge& e : edges) {
    Appendf(&out, "  txn%" PRIu64 " [label=\"txn %" PRIu64 "\"];\n", e.txn,
            e.txn);
  }
  auto overlapping_root = [&](const CorruptRange& via) -> int {
    for (size_t i = 0; i < roots.size(); ++i) {
      if (via.off < roots[i].off + roots[i].len &&
          roots[i].off < via.off + via.len) {
        return static_cast<int>(i);
      }
    }
    return roots.empty() ? -1 : 0;
  };
  for (const ProvenanceEdge& e : edges) {
    if (e.from_txn != 0) {
      Appendf(&out,
              "  txn%" PRIu64 " -> txn%" PRIu64 " [label=\"%s @%" PRIu64
              "\"];\n",
              e.from_txn, e.txn, ProvenanceReasonName(e.reason), e.at_lsn);
    } else if (e.reason == ProvenanceReason::kCommittedAfterLimit) {
      Appendf(&out,
              "  limit [shape=box, label=\"redo limit\"];\n  limit -> txn%"
              PRIu64 " [label=\"%s\"];\n",
              e.txn, ProvenanceReasonName(e.reason));
    } else {
      int root = overlapping_root(e.via);
      if (root >= 0) {
        Appendf(&out,
                "  range%d -> txn%" PRIu64 " [label=\"%s @%" PRIu64 "\"];\n",
                root, e.txn, ProvenanceReasonName(e.reason), e.at_lsn);
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace cwdb
