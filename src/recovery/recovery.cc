#include "recovery/recovery.h"

#include <algorithm>
#include <cstring>

#include "ckpt/att_codec.h"
#include "common/file_util.h"

namespace cwdb {

namespace {

bool RangesOverlap(const CorruptRange& a, const CorruptRange& b) {
  return a.off < b.off + b.len && b.off < a.off + a.len;
}

}  // namespace

RecoveryDriver::RecoveryDriver(const DbFiles& files, DbImage* image,
                               TxnManager* txns, SystemLog* log,
                               ProtectionManager* protection,
                               Checkpointer* checkpointer)
    : files_(files),
      image_(image),
      txns_(txns),
      log_(log),
      protection_(protection),
      checkpointer_(checkpointer) {}

void RecoveryDriver::ApplyRedo(Transaction* txn, const LogRecord& rec) {
  CWDB_CHECK(image_->InBounds(rec.off, rec.len)) << "redo out of bounds";
  UndoRecord u;
  u.kind = UndoRecord::Kind::kPhysical;
  u.off = rec.off;
  u.before.assign(reinterpret_cast<const char*>(image_->At(rec.off)),
                  rec.len);
  txn->mutable_undo_log().push_back(std::move(u));
  std::memcpy(image_->At(rec.off), rec.after.data(), rec.len);
  image_->MarkDirty(rec.off, rec.len);
}

bool RecoveryDriver::ReadsCorruptData(const LogRecord& rec) const {
  // Data whose recovery-time value is known to differ from what the
  // original execution saw is tracked in the CorruptDataTable; reading it
  // makes the reader corrupt. Under Codeword Read Logging the table holds
  // only the *rolled-back prefixes* of deleted transactions (a logged
  // checksum cannot anticipate an undo that happens after the scan), while
  // suppressed writes are judged by comparing the logged checksum against
  // the image being recovered — view-consistently: a reader whose bytes
  // match anyway is spared (§4.3 Extension).
  if (corrupt_data_.Overlaps(rec.off, rec.len)) return true;
  if (options_.use_logged_checksums && rec.has_cksum) {
    return ProtectionManager::ChecksumBytes(*image_, rec.off, rec.len) !=
           rec.cksum;
  }
  return false;
}

RecoveryDriver::ConflictSet RecoveryDriver::TargetsOf(
    const LogRecord& rec) const {
  ConflictSet cs;
  if (rec.table >= kMaxTables) {
    // Raw-region operation: its physical range is in the record.
    if (rec.len > 0) cs.ranges.push_back(CorruptRange{rec.off, rec.len});
    return cs;
  }
  cs.targets.insert({rec.table, rec.slot});
  const TableMetaRaw* m = image_->table_meta(rec.table);
  switch (rec.opcode) {
    case OpCode::kInsert:
    case OpCode::kDelete:
      if (m->in_use && rec.slot != kInvalidSlot) {
        cs.ranges.push_back(CorruptRange{
            m->data_off + static_cast<uint64_t>(rec.slot) * m->record_size,
            m->record_size});
        cs.ranges.push_back(
            CorruptRange{BitmapWordOff(m->bitmap_off, rec.slot), 8});
      }
      break;
    case OpCode::kUpdate:
      if (m->in_use && rec.slot != kInvalidSlot) {
        cs.ranges.push_back(CorruptRange{
            m->data_off + static_cast<uint64_t>(rec.slot) * m->record_size,
            m->record_size});
      }
      break;
    case OpCode::kCreateTable:
      cs.ranges.push_back(
          CorruptRange{TableMetaOff(rec.table), kTableMetaBytes});
      cs.ranges.push_back(
          CorruptRange{kHeaderOff + offsetof(DbHeaderRaw, alloc_cursor), 8});
      break;
  }
  return cs;
}

RecoveryDriver::ConflictSet RecoveryDriver::TargetsOfUndoLog(
    const Transaction& txn) const {
  ConflictSet cs;
  for (const UndoRecord& u : txn.undo_log()) {
    if (u.kind == UndoRecord::Kind::kPhysical) {
      cs.ranges.push_back(
          CorruptRange{u.off, static_cast<uint64_t>(u.before.size())});
      continue;
    }
    const LogicalUndo& lu = u.undo;
    switch (lu.code) {
      case UndoCode::kNone:
        break;
      case UndoCode::kDeleteSlot:
      case UndoCode::kReinsertSlot:
      case UndoCode::kWriteField: {
        cs.targets.insert({lu.table, lu.slot});
        const TableMetaRaw* m = image_->table_meta(lu.table);
        if (m->in_use && lu.slot != kInvalidSlot) {
          cs.ranges.push_back(CorruptRange{
              m->data_off + static_cast<uint64_t>(lu.slot) * m->record_size,
              m->record_size});
          if (lu.code != UndoCode::kWriteField) {
            cs.ranges.push_back(
                CorruptRange{BitmapWordOff(m->bitmap_off, lu.slot), 8});
          }
        }
        break;
      }
      case UndoCode::kWriteRaw:
        cs.ranges.push_back(CorruptRange{
            lu.raw_off, static_cast<uint64_t>(lu.payload.size())});
        break;
      case UndoCode::kDropTable:
        cs.targets.insert({lu.table, kInvalidSlot});
        cs.ranges.push_back(
            CorruptRange{TableMetaOff(lu.table), kTableMetaBytes});
        break;
    }
  }
  return cs;
}

bool RecoveryDriver::Conflicts(const ConflictSet& a, const ConflictSet& b) {
  CorruptRange witness;
  return ConflictWitness(a, b, &witness);
}

bool RecoveryDriver::ConflictWitness(const ConflictSet& a,
                                     const ConflictSet& b,
                                     CorruptRange* witness) {
  // Prefer a byte-range witness: it attributes the conflict to concrete
  // image bytes the provenance graph can show.
  for (const CorruptRange& ra : a.ranges) {
    for (const CorruptRange& rb : b.ranges) {
      if (RangesOverlap(ra, rb)) {
        uint64_t lo = std::max(ra.off, rb.off);
        uint64_t hi = std::min(ra.off + ra.len, rb.off + rb.len);
        *witness = CorruptRange{lo, hi - lo};
        return true;
      }
    }
  }
  for (const auto& t : a.targets) {
    if (b.targets.count(t)) {
      *witness = CorruptRange{0, 0};
      return true;
    }
  }
  return false;
}

Result<RecoveryReport> RecoveryDriver::Run(const RecoveryOptions& options) {
  options_ = options;
  corrupt_txns_.clear();
  corrupt_data_ = IntervalSet();
  suppressed_bytes_ = 0;
  corrupt_conflicts_.clear();
  RecoveryReport report;

  // Phase transitions go to the flight recorder; counts and the total
  // duration land in recovery.* instruments once the run finishes.
  MetricsRegistry* metrics = txns_->metrics();
  EventTrace& trace = metrics->trace();
  const uint64_t t0 = NowNs();
  // Every recovery run is traced (forced): each phase transition closes the
  // previous phase's span under a kRecovery root recorded at the end.
  Tracer* tracer = metrics->tracer();
  uint64_t rec_root = 0;
  SpanContext rec_ctx = tracer->StartForcedTrace(&rec_root);
  uint64_t phase_start_ns = t0;
  RecoveryPhase prev_phase = RecoveryPhase::kLoadCheckpoint;
  bool phase_open = false;
  auto enter_phase = [&](RecoveryPhase p, Lsn at) {
    trace.Record(TraceEventType::kRecoveryPhase, at,
                 static_cast<uint64_t>(p), 0);
    if (rec_ctx.sampled()) {
      const uint64_t now = NowNs();
      if (phase_open) {
        tracer->Record(rec_ctx, SpanKind::kRecoveryPhase, phase_start_ns,
                       now, static_cast<uint64_t>(prev_phase), at);
      }
      phase_start_ns = now;
      prev_phase = p;
      phase_open = p != RecoveryPhase::kDone;
    }
  };

  txns_->set_recovery_mode(true);
  CWDB_RETURN_IF_ERROR(protection_->ExposeAll());

  enter_phase(RecoveryPhase::kLoadCheckpoint, 0);
  CWDB_ASSIGN_OR_RETURN(CheckpointMeta meta, checkpointer_->LoadActive());
  if (options.redo_limit != kInvalidLsn && meta.ck_end > options.redo_limit) {
    return Status::InvalidArgument(
        "prior-state point predates the active checkpoint; restore an "
        "archived checkpoint first");
  }
  CWDB_RETURN_IF_ERROR(DecodeAttInto(meta.att_blob, txns_));
  report.redo_start = meta.ck_end;

  // The failing audit's regions enter the CorruptDataTable once the scan
  // passes Audit_LSN — the point where the last clean audit began; before
  // it the data was certified clean (§4.3). With logged checksums the
  // table is not consulted (the checksum against the recovered image *is*
  // the corruption test), matching "the CorruptDataTable can be dispensed
  // with".
  const Lsn audit_lsn = options.note.last_clean_audit_lsn;
  if (options.corruption_recovery) {
    report.provenance.incident_id = options.note.incident_id;
    report.provenance.last_clean_audit_lsn = audit_lsn;
    report.provenance.roots = options.note.ranges;
  }

  // Provenance taints mirror every CorruptDataTable insertion, tagged with
  // the transaction whose suppressed/rolled-back bytes produced it (0 =
  // the incident's own ranges), so each implication edge can name its
  // carrier. Shadow taints cover checksum-mode suppressed writes, which
  // never enter the table but still explain later checksum mismatches.
  struct Taint {
    CorruptRange range;
    TxnId src;
  };
  std::vector<Taint> taints;
  std::vector<Taint> shadow_taints;
  auto find_taint = [](const std::vector<Taint>& v, DbPtr off,
                       uint64_t len) -> const Taint* {
    for (const Taint& t : v) {
      if (RangesOverlap(t.range, CorruptRange{off, len})) return &t;
    }
    return nullptr;
  };

  bool note_ranges_added = false;
  auto add_note_ranges = [&]() {
    for (const CorruptRange& r : options_.note.ranges) {
      corrupt_data_.Insert(r.off, r.len);
      taints.push_back(Taint{r, 0});
    }
    note_ranges_added = true;
  };
  if (options.corruption_recovery && audit_lsn <= meta.ck_end) {
    add_note_ranges();
  }

  auto mark_corrupt = [&](TxnId id, ProvenanceEdge edge) {
    Transaction* t = txns_->GetOrCreateRecovered(id);
    corrupt_txns_.insert(id);
    if (report.provenance.EdgeFor(id) == nullptr) {
      edge.txn = id;
      report.provenance.edges.push_back(edge);
    }
    // Freeze the conflict set now: nothing is appended to a corrupt
    // transaction's undo log after this point.
    ConflictSet cs = TargetsOfUndoLog(*t);
    // A deleted transaction is deleted *entirely*: its pre-corruption
    // writes will be rolled back in the undo phase, so their values in the
    // delete history differ from what later readers saw in the original
    // history. Mark that footprint corrupt so such readers are deleted
    // too (this is what makes the paper's claim "any data that could
    // possibly have been read with different values was previously placed
    // in CorruptDataTable" hold for rolled-back prefixes). Under strict
    // two-phase record locking no one read these bytes *before* this
    // point, so forward-only marking suffices.
    for (const CorruptRange& r : cs.ranges) {
      corrupt_data_.Insert(r.off, r.len);
      taints.push_back(Taint{r, id});
    }
    corrupt_conflicts_[id] = std::move(cs);
  };

  // Builds the provenance edge for a read/write that tripped
  // ReadsCorruptData: a taint overlap names the byte range and its carrier;
  // otherwise the trigger was a logged-checksum mismatch against the
  // recovered image (§4.3 Extension), whose carrier — if any — is a
  // suppressed write recorded in the shadow taints.
  auto implication_edge = [&](const LogRecord& rec, Lsn at,
                              ProvenanceReason range_reason) {
    ProvenanceEdge e;
    e.txn = rec.txn;
    e.at_lsn = at;
    e.via = CorruptRange{rec.off, rec.len};
    if (const Taint* t = find_taint(taints, rec.off, rec.len)) {
      uint64_t lo = std::max<uint64_t>(rec.off, t->range.off);
      uint64_t hi = std::min<uint64_t>(rec.off + rec.len,
                                       t->range.off + t->range.len);
      e.reason = range_reason;
      e.via = CorruptRange{lo, hi - lo};
      e.from_txn = t->src;
    } else {
      e.reason = ProvenanceReason::kChecksumMismatch;
      const Taint* s = find_taint(shadow_taints, rec.off, rec.len);
      e.from_txn = s != nullptr ? s->src : 0;
    }
    return e;
  };

  TxnId max_txn = 0;
  uint32_t max_op = 0;
  std::map<TxnId, size_t> open_op_marks;

  enter_phase(RecoveryPhase::kRedo, meta.ck_end);
  CWDB_ASSIGN_OR_RETURN(
      std::unique_ptr<LogReader> reader,
      LogReader::Open(files_.SystemLog(), meta.ck_end, options.redo_limit));
  LogRecord rec;
  Lsn lsn;
  while (reader->Next(&rec, &lsn)) {
    if (options.corruption_recovery && !note_ranges_added &&
        lsn >= audit_lsn) {
      add_note_ranges();
    }
    max_txn = std::max(max_txn, rec.txn);
    bool is_corrupt = corrupt_txns_.count(rec.txn) > 0;
    switch (rec.type) {
      case LogRecordType::kBeginTxn:
        txns_->GetOrCreateRecovered(rec.txn);
        break;

      case LogRecordType::kPhysRedo: {
        Transaction* t = txns_->GetOrCreateRecovered(rec.txn);
        if (options.corruption_recovery) {
          if (!is_corrupt && ReadsCorruptData(rec)) {
            mark_corrupt(rec.txn,
                         implication_edge(
                             rec, lsn, ProvenanceReason::kWroteCorruptRange));
            is_corrupt = true;
          }
          if (is_corrupt) {
            // The data this transaction would have written is corrupt; the
            // write itself is suppressed (§4.3, redo phase case 2). With
            // logged checksums the suppressed bytes are *not* put in the
            // table — later readers are judged by checksum against the
            // recovered image, which spares readers whose bytes match
            // anyway (view-consistency); the plain scheme must be
            // conservative and range-based.
            if (!options_.use_logged_checksums) {
              corrupt_data_.Insert(rec.off, rec.len);
              taints.push_back(
                  Taint{CorruptRange{rec.off, rec.len}, rec.txn});
            } else {
              shadow_taints.push_back(
                  Taint{CorruptRange{rec.off, rec.len}, rec.txn});
            }
            suppressed_bytes_ += rec.len;
            ++report.redo_records_skipped;
            break;
          }
        }
        ApplyRedo(t, rec);
        ++report.redo_records_applied;
        break;
      }

      case LogRecordType::kReadLog:
        if (options.corruption_recovery && !is_corrupt &&
            ReadsCorruptData(rec)) {
          mark_corrupt(rec.txn,
                       implication_edge(
                           rec, lsn, ProvenanceReason::kReadCorruptRange));
        }
        break;

      case LogRecordType::kBeginOp: {
        max_op = std::max(max_op, rec.op_id);
        if (is_corrupt) break;
        if (options.corruption_recovery && !corrupt_conflicts_.empty()) {
          ConflictSet mine = TargetsOf(rec);
          for (const auto& [id, cs] : corrupt_conflicts_) {
            CorruptRange witness{0, 0};
            if (ConflictWitness(mine, cs, &witness)) {
              // Beginning this operation would prevent rolling back the
              // corrupt transaction; delete this transaction too (§4.3).
              ProvenanceEdge e;
              e.txn = rec.txn;
              e.reason = ProvenanceReason::kConflictWithUndo;
              e.at_lsn = lsn;
              e.via = witness;
              e.from_txn = id;
              mark_corrupt(rec.txn, e);
              is_corrupt = true;
              break;
            }
          }
          if (is_corrupt) break;
        }
        Transaction* t = txns_->GetOrCreateRecovered(rec.txn);
        open_op_marks[rec.txn] = t->undo_log().size();
        break;
      }

      case LogRecordType::kCommitOp: {
        if (is_corrupt) break;  // Logical records of corrupt txns ignored.
        Transaction* t = txns_->GetOrCreateRecovered(rec.txn);
        auto it = open_op_marks.find(rec.txn);
        CWDB_CHECK(it != open_op_marks.end())
            << "operation commit without begin in redo scan";
        auto& undo = t->mutable_undo_log();
        undo.resize(it->second);
        UndoRecord u;
        u.kind = UndoRecord::Kind::kLogical;
        u.op_id = rec.op_id;
        u.level = rec.level;
        u.undo = rec.undo;
        undo.push_back(std::move(u));
        open_op_marks.erase(it);
        break;
      }

      case LogRecordType::kCommitTxn:
      case LogRecordType::kAbortTxn:
        if (!is_corrupt) {
          txns_->DropRecovered(rec.txn);
          open_op_marks.erase(rec.txn);
        }
        break;

      case LogRecordType::kAuditBegin:
        break;
    }
  }
  report.redo_end = reader->position();

  // Prior-state model: every transaction that committed at or beyond the
  // limit is removed from history — report it so the user can compensate
  // (§4.1; the paper notes this covers "all transactions which have
  // occurred after the corruption, rather than just the ones determined
  // to be possibly affected").
  if (options.redo_limit != kInvalidLsn) {
    CWDB_ASSIGN_OR_RETURN(
        std::unique_ptr<LogReader> discarded,
        LogReader::Open(files_.SystemLog(), options.redo_limit,
                        kInvalidLsn));
    while (discarded->Next(&rec, &lsn)) {
      max_txn = std::max(max_txn, rec.txn);
      if (rec.type == LogRecordType::kCommitTxn) {
        report.deleted_txns.push_back(rec.txn);
        if (report.provenance.EdgeFor(rec.txn) == nullptr) {
          ProvenanceEdge e;
          e.txn = rec.txn;
          e.reason = ProvenanceReason::kCommittedAfterLimit;
          e.at_lsn = lsn;
          report.provenance.edges.push_back(e);
        }
      }
    }
  }
  txns_->BumpIds(max_txn, max_op);

  // --- Undo phase: roll back incomplete transactions level by level. The
  // corrupt transactions' (possibly empty) pre-corruption prefixes are
  // rolled back exactly like ordinary incomplete transactions. ---
  enter_phase(RecoveryPhase::kUndo, report.redo_end);
  std::vector<TxnId> incomplete;
  for (const auto& [id, txn] : txns_->att()) {
    incomplete.push_back(id);
    if (corrupt_txns_.count(id)) {
      report.deleted_txns.push_back(id);
    } else {
      report.rolled_back_txns.push_back(id);
    }
  }

  // Level 0: physical undo of open (uncommitted) operations.
  for (TxnId id : incomplete) {
    Transaction* t = txns_->GetOrCreateRecovered(id);
    t->in_rollback_ = true;
    auto& undo = t->mutable_undo_log();
    while (!undo.empty() &&
           undo.back().kind == UndoRecord::Kind::kPhysical) {
      UndoRecord u = std::move(undo.back());
      undo.pop_back();
      CWDB_CHECK(!u.codeword_applied);
      CWDB_ASSIGN_OR_RETURN(
          uint8_t* p,
          t->BeginUpdate(u.off, static_cast<uint32_t>(u.before.size())));
      std::memcpy(p, u.before.data(), u.before.size());
      CWDB_RETURN_IF_ERROR(t->EndUpdate());
    }
  }
  // Level 1: logical undo, newest-first within each transaction.
  for (TxnId id : incomplete) {
    Transaction* t = txns_->GetOrCreateRecovered(id);
    auto& undo = t->mutable_undo_log();
    while (!undo.empty()) {
      UndoRecord u = std::move(undo.back());
      undo.pop_back();
      CWDB_CHECK(u.kind == UndoRecord::Kind::kLogical)
          << "physical undo below a logical entry";
      CWDB_RETURN_IF_ERROR(txns_->ExecuteLogicalUndo(t, u.undo));
    }
  }
  for (TxnId id : incomplete) {
    CWDB_RETURN_IF_ERROR(
        txns_->FinishRecoveredRollback(txns_->GetOrCreateRecovered(id)));
  }

  report.corrupt_data_bytes = corrupt_data_.TotalBytes() + suppressed_bytes_;

  // The recovered image is rebuilt from trusted sources (certified
  // checkpoint + redo log), so re-deriving protection state from it is
  // sound.
  CWDB_RETURN_IF_ERROR(protection_->ResetFromImage());
  txns_->set_recovery_mode(false);

  // --- Final checkpoint so a future restart cannot rediscover the same
  // corruption and start deleting post-recovery transactions (§4.3). ---
  enter_phase(RecoveryPhase::kFinalCheckpoint, log_->CurrentLsn());
  std::vector<CorruptRange> corrupt_after;
  Status ckpt_status = checkpointer_->Checkpoint(
      protection_->options().UsesCodewords(), &corrupt_after);
  CWDB_RETURN_IF_ERROR(ckpt_status);

  CWDB_RETURN_IF_ERROR(RemoveFileIfExists(files_.CorruptNote()));
  CWDB_RETURN_IF_ERROR(
      WriteAuditMeta(files_.AuditMeta(), log_->CurrentLsn()));

  std::sort(report.deleted_txns.begin(), report.deleted_txns.end());
  std::sort(report.rolled_back_txns.begin(), report.rolled_back_txns.end());

  // Persist the implication chain for `cwdb_ctl explain-recovery`. Best
  // effort: the graph is diagnostic, never consulted by recovery itself.
  if (options.corruption_recovery || options.redo_limit != kInvalidLsn) {
    Status prov_status = WriteFileAtomic(files_.ProvenanceFile(),
                                         report.provenance.ToJson(image_));
    if (!prov_status.ok()) {
      metrics->counter("recovery.provenance_write_failures")->Add();
    }
  }

  enter_phase(RecoveryPhase::kDone, log_->CurrentLsn());
  for (TxnId id : report.deleted_txns) {
    trace.Record(TraceEventType::kTxnDeleted, report.redo_end, id, 0);
  }
  metrics->counter("recovery.runs")->Add();
  metrics->counter("recovery.redo_records_applied")
      ->Add(report.redo_records_applied);
  metrics->counter("recovery.redo_records_skipped")
      ->Add(report.redo_records_skipped);
  metrics->counter("recovery.deleted_txns")->Add(report.deleted_txns.size());
  metrics->counter("recovery.rolled_back_txns")
      ->Add(report.rolled_back_txns.size());
  metrics->histogram("recovery.duration_ns")->Record(NowNs() - t0);
  if (rec_ctx.sampled()) {
    tracer->RecordWithId(rec_ctx.Under(0), rec_root, SpanKind::kRecovery, t0,
                         NowNs(), report.deleted_txns.size(),
                         report.rolled_back_txns.size());
  }
  return report;
}

Status CacheRecoverRegions(const DbFiles& files, DbImage* image,
                           TxnManager* txns, SystemLog* log,
                           ProtectionManager* protection,
                           Checkpointer* checkpointer,
                           const std::vector<CorruptRange>& ranges) {
  if (!txns->att().empty()) {
    return Status::Busy(
        "cache recovery requires no active transactions; abort them first");
  }
  if (ranges.empty()) return Status::OK();
  CWDB_RETURN_IF_ERROR(log->Flush());

  CWDB_ASSIGN_OR_RETURN(CheckpointMeta meta, checkpointer->ReadActiveMeta());

  // Restore the corrupt regions from the certified-clean checkpoint image.
  for (const CorruptRange& r : ranges) {
    if (!image->InBounds(r.off, r.len)) {
      return Status::InvalidArgument("corrupt range out of bounds");
    }
    CWDB_RETURN_IF_ERROR(
        checkpointer->ReadImageBytes(r.off, r.len, image->At(r.off)));
  }

  // Replay the intersection of every later physical redo with the corrupt
  // ranges (only the overlapping bytes: bytes outside the ranges are
  // already current in the live image).
  CWDB_ASSIGN_OR_RETURN(
      std::unique_ptr<LogReader> reader,
      LogReader::Open(files.SystemLog(), meta.ck_end, kInvalidLsn));
  LogRecord rec;
  while (reader->Next(&rec, nullptr)) {
    if (rec.type != LogRecordType::kPhysRedo) continue;
    for (const CorruptRange& r : ranges) {
      uint64_t lo = std::max<uint64_t>(rec.off, r.off);
      uint64_t hi = std::min<uint64_t>(rec.off + rec.len, r.off + r.len);
      if (lo >= hi) continue;
      std::memcpy(image->At(lo), rec.after.data() + (lo - rec.off), hi - lo);
    }
  }
  for (const CorruptRange& r : ranges) {
    image->MarkDirty(r.off, r.len);
  }

  // The repaired bytes are reconstructed from trusted sources; recompute
  // only the covering codewords. Regions outside the repaired ranges keep
  // their stored codewords, so corruption elsewhere stays detectable.
  for (const CorruptRange& r : ranges) {
    CWDB_RETURN_IF_ERROR(protection->RecomputeRegions(r.off, r.len));
  }
  return Status::OK();
}

}  // namespace cwdb
